// Package semstm is a Go reproduction of "Extending TM Primitives using Low
// Level Semantics" (Saad, Palmieri, Hassan, Ravindran; SPAA 2016): a software
// transactional memory library whose API includes the paper's TM-friendly
// semantic primitives (conditional operators and deferred increments), the
// S-NOrec and S-TL2 algorithms together with their classical baselines, a
// TxC-to-GIMPLE compiler with the tm_mark/tm_optimize passes, and the
// benchmark suite (micro-benchmarks plus STAMP ports) that regenerates every
// table and figure of the paper's evaluation.
//
// Start with package semstm/stm for the library API, cmd/semstm-bench for
// the experiments, and cmd/tmc for the compiler. The repository-level
// benchmarks in bench_test.go mirror the experiment registry.
package semstm
