module semstm

go 1.22
