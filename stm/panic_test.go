package stm_test

import (
	"sync"
	"testing"

	"semstm/stm"
)

// TestUserPanicRollback verifies, for every algorithm, that a panic thrown
// by user code inside an atomic block (not the abort sentinel) propagates to
// the caller with the attempt rolled back: no global lock, orec, or ring
// slot stays held, the pooled descriptor remains usable, and buffered writes
// are discarded (except under SGL, which writes in place by design).
func TestUserPanicRollback(t *testing.T) {
	type boom struct{ msg string }
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		x := stm.NewVar(10)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("user panic was swallowed")
				}
				if b, ok := r.(boom); !ok || b.msg != "user bug" {
					t.Fatalf("panic value mangled: %v", r)
				}
			}()
			rt.Atomically(func(tx *stm.Tx) {
				tx.Write(x, 99)
				panic(boom{"user bug"})
			})
		}()
		if got := x.Load(); got != 10 && rt.Algorithm() != stm.SGL {
			t.Fatalf("buffered write leaked through panic: x = %d", got)
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatalf("resource leaked through panic: %v", err)
		}
		// The descriptor that unwound must come out of the pool reusable.
		for i := 0; i < 10; i++ {
			rt.Atomically(func(tx *stm.Tx) { tx.Inc(x, 1) })
		}
		sn := rt.Stats()
		if sn.Commits != 10 {
			t.Fatalf("commits = %d, want 10", sn.Commits)
		}
		// The HTM family may add simulated spurious aborts of its own; the
		// software algorithms see exactly the one panicked attempt.
		htm := rt.Algorithm() == stm.HTM || rt.Algorithm() == stm.SHTM
		if sn.Aborts != 1 && !htm {
			t.Fatalf("aborts = %d, want 1", sn.Aborts)
		}
		if htm && sn.Aborts < 1 {
			t.Fatalf("aborts = %d, want >= 1", sn.Aborts)
		}
	})
}

// TestUserPanicDoesNotBlockOthers verifies a panicked transaction leaves the
// runtime fully operational for concurrent goroutines: everyone else keeps
// committing while one worker repeatedly panics out of atomic blocks.
func TestUserPanicDoesNotBlockOthers(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		const committers, per, panics = 4, 200, 50
		c := stm.NewVar(0)
		var wg sync.WaitGroup
		for w := 0; w < committers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					rt.Atomically(func(tx *stm.Tx) { tx.Inc(c, 1) })
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < panics; i++ {
				func() {
					defer func() { recover() }()
					rt.Atomically(func(tx *stm.Tx) {
						tx.Read(c)
						panic("chaos monkey")
					})
				}()
			}
		}()
		wg.Wait()
		if got := c.Load(); got != committers*per {
			t.Fatalf("counter = %d, want %d", got, committers*per)
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPanicInsideEscalation verifies a user panic thrown while a transaction
// runs in the irrevocable serializing mode still releases the escalation
// gate, so later transactions are not wedged behind a dead escalator.
func TestPanicInsideEscalation(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	rt.SetBackoff(stm.BackoffYield)
	rt.SetFaultPlan(stm.NewFaultPlan(9).WithSpurious(stm.SiteCommit, 100))
	rt.SetEscalateAfter(10)
	x := stm.NewVar(0)
	attempts := 0
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed")
			}
		}()
		rt.Atomically(func(tx *stm.Tx) {
			attempts++
			if attempts > 10 { // first escalated run: fault plan is disarmed
				panic("bug in escalated body")
			}
			tx.Inc(x, 1)
		})
	}()
	// The gate must be released: a fresh bounded run should make progress
	// (and itself escalate past the 100% commit faults to commit).
	if err := rt.TryAtomically(func(tx *stm.Tx) { tx.Inc(x, 1) }, stm.MaxAttempts(50)); err != nil {
		t.Fatalf("runtime wedged after escalated panic: %v", err)
	}
	if got := x.Load(); got != 1 {
		t.Fatalf("x = %d, want 1", got)
	}
	if err := rt.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}
