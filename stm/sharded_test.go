package stm_test

// Sharded-runtime correctness suite (DESIGN.md §11): cross-shard atomicity
// (conservation when every transfer spans a shard boundary, with and without
// fault injection into phase 1 of the two-phase commit), shard routing
// isolation (single-shard traffic must never move another shard's commit
// metadata), and the cross-shard semantics of the composed primitives.

import (
	"sync"
	"testing"
	"time"

	"semstm/stm"
)

// shardableAlgos are the concrete two-phase engines a sharded runtime
// composes — both classical/semantic pairs of the TL2 and NOrec families,
// plus the progressive hybrid engines (whose irrevocable fallback the shard
// layer disables in favor of the runtime escalation gate).
var shardableAlgos = []stm.Algorithm{
	stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2, stm.HyTM, stm.HyTMMid,
}

func eachShardable(t *testing.T, nshards int, f func(t *testing.T, rt *stm.Runtime)) {
	t.Helper()
	for _, a := range shardableAlgos {
		t.Run(a.String(), func(t *testing.T) {
			f(t, stm.NewShardedRuntime(a, nshards))
		})
	}
}

// shardedAccounts builds `per` accounts on each of rt's shards, all holding
// initial.
func shardedAccounts(rt *stm.Runtime, per int, initial int64) [][]*stm.Var {
	shards := make([][]*stm.Var, rt.Shards())
	for s := range shards {
		shards[s] = stm.NewVarsOn(s, per, initial)
	}
	return shards
}

func shardedTotal(shards [][]*stm.Var) int64 {
	var sum int64
	for _, sh := range shards {
		for _, a := range sh {
			sum += a.Load()
		}
	}
	return sum
}

// xorshift is the allocation-free per-worker PRNG of the concurrency tests.
func xorshift(s *uint64) uint64 {
	*s ^= *s << 13
	*s ^= *s >> 7
	*s ^= *s << 17
	return *s
}

// crossTransfers hammers rt with transfers in which the source and
// destination accounts ALWAYS live on different shards, so every commit runs
// the two-phase cross-shard path.
func crossTransfers(rt *stm.Runtime, shards [][]*stm.Var, workers, per int) {
	n := len(shards)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ss := int(xorshift(&seed) % uint64(n))
				ds := int(xorshift(&seed) % uint64(n-1))
				if ds >= ss {
					ds++ // ds != ss: the transfer must cross shards
				}
				src := shards[ss][xorshift(&seed)%uint64(len(shards[ss]))]
				dst := shards[ds][xorshift(&seed)%uint64(len(shards[ds]))]
				amt := int64(1 + xorshift(&seed)%50)
				rt.Atomically(func(tx *stm.Tx) {
					if tx.GTE(src, amt) {
						tx.Dec(src, amt)
						tx.Inc(dst, amt)
					}
				})
			}
		}(uint64(w)*0x9E3779B9 + 1)
	}
	wg.Wait()
}

// TestShardedBankConservationCross asserts the cross-shard commit is atomic:
// with every transfer spanning shards, money is conserved, the runtime
// quiesces cleanly, and the cross-shard machinery demonstrably ran (ticket
// advanced, per-shard cross counters non-zero).
func TestShardedBankConservationCross(t *testing.T) {
	const nshards, per, initial = 4, 8, 1000
	workers, ops := 8, 400
	if testing.Short() {
		workers, ops = 4, 120
	}
	eachShardable(t, nshards, func(t *testing.T, rt *stm.Runtime) {
		shards := shardedAccounts(rt, per, initial)
		crossTransfers(rt, shards, workers, ops)
		if got, want := shardedTotal(shards), int64(nshards*per*initial); got != want {
			t.Fatalf("money not conserved across shards: total %d, want %d", got, want)
		}
		if rt.ShardTicket() == 0 {
			t.Fatal("no cross-shard commit advanced the ticket (test drove only cross transfers)")
		}
		crossed := uint64(0)
		for _, ss := range rt.ShardStats() {
			crossed += ss.CrossCommits
		}
		if crossed == 0 {
			t.Fatal("per-shard cross-commit counters stayed zero")
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatalf("runtime not quiescent after cross-shard traffic: %v", err)
		}
	})
}

// TestShardedPhase1FaultInjection injects failures into phase 1 of the
// two-phase commit — forced validation failures, spurious commit-site aborts,
// and stretched commit windows — and asserts that an aborted cross-shard
// commit never publishes partially: conservation holds, every abort carries a
// valid typed reason, and no shard leaks a lock.
func TestShardedPhase1FaultInjection(t *testing.T) {
	const nshards, per, initial = 4, 8, 1000
	workers, ops := 8, 300
	if testing.Short() {
		workers, ops = 4, 100
	}
	validReasons := map[string]bool{
		"validation": true, "cmp-flip": true, "orec-locked": true,
		"capacity": true, "spurious": true, "explicit": true,
		"hw-conflict": true, "hw-capacity": true,
	}
	eachShardable(t, nshards, func(t *testing.T, rt *stm.Runtime) {
		rt.SetFaultPlan(stm.NewFaultPlan(0x5A4D).
			WithValidationFail(10).
			WithSpurious(stm.SiteCommit, 10).
			WithCommitDelay(5, 20*time.Microsecond))
		shards := shardedAccounts(rt, per, initial)
		crossTransfers(rt, shards, workers, ops)
		if got, want := shardedTotal(shards), int64(nshards*per*initial); got != want {
			t.Fatalf("fault-injected phase 1 leaked a partial publish: total %d, want %d", got, want)
		}
		sn := rt.Stats()
		if sn.Aborts == 0 {
			t.Fatal("fault plan armed but nothing aborted (injection not reaching the sharded path)")
		}
		for reason, n := range sn.ReasonCounts() {
			if !validReasons[reason] && n > 0 {
				t.Fatalf("abort recorded under invalid reason %q (%d times)", reason, n)
			}
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatalf("lock leaked through fault-injected cross-shard aborts: %v", err)
		}
	})
}

// hammerShard runs single-shard transactions (reads, semantic conditionals,
// increments, write-back) confined to the given shard's variables.
func hammerShard(rt *stm.Runtime, vars []*stm.Var, workers, per int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a := vars[xorshift(&seed)%uint64(len(vars))]
				b := vars[xorshift(&seed)%uint64(len(vars))]
				rt.Atomically(func(tx *stm.Tx) {
					if tx.GTE(a, 1) {
						tx.Dec(a, 1)
						tx.Inc(b, 1)
					}
					tx.Write(b, tx.Read(b))
				})
			}
		}(uint64(w)*0xDEADBEEF + 7)
	}
	wg.Wait()
}

// TestShardRoutingIsolation is the routing property test: transactions
// confined to shard 0 must never move any other shard's commit metadata —
// clocks stay put, other shards' commit counters stay zero, and the
// cross-shard ticket never advances.
func TestShardRoutingIsolation(t *testing.T) {
	const nshards = 4
	workers, ops := 4, 300
	if testing.Short() {
		ops = 100
	}
	eachShardable(t, nshards, func(t *testing.T, rt *stm.Runtime) {
		home := stm.NewVarsOn(0, 16, 1000)
		for s := 1; s < nshards; s++ {
			stm.NewVarsOn(s, 16, 1000) // populated but never touched
		}
		clocks := make([]uint64, nshards)
		for s := 1; s < nshards; s++ {
			c, ok := rt.ShardClock(s)
			if !ok {
				t.Fatalf("shard %d exposes no clock probe", s)
			}
			clocks[s] = c
		}
		hammerShard(rt, home, workers, ops)
		for s := 1; s < nshards; s++ {
			if c, _ := rt.ShardClock(s); c != clocks[s] {
				t.Errorf("shard %d clock moved %d -> %d on single-shard traffic to shard 0", s, clocks[s], c)
			}
		}
		stats := rt.ShardStats()
		if stats[0].SingleCommits == 0 {
			t.Fatal("shard 0 recorded no single-shard commits")
		}
		for s := 1; s < nshards; s++ {
			if stats[s].SingleCommits != 0 || stats[s].CrossCommits != 0 {
				t.Errorf("shard %d saw traffic (%+v) although every transaction was confined to shard 0", s, stats[s])
			}
		}
		if tk := rt.ShardTicket(); tk != 0 {
			t.Errorf("cross-shard ticket advanced to %d with no cross-shard transaction", tk)
		}
	})
}

// TestShardRoutingIsolationAdaptive repeats the routing property while an
// Adaptive runtime is forced through its engine ladder mid-run: switching
// engines must not leak traffic onto untouched shards either (per-shard
// counters accumulate across every engine instance the runtime built).
func TestShardRoutingIsolationAdaptive(t *testing.T) {
	const nshards = 4
	rt := stm.NewShardedRuntime(stm.Adaptive, nshards)
	home := stm.NewVarsOn(0, 16, 1000)
	for s := 1; s < nshards; s++ {
		stm.NewVarsOn(s, 16, 1000)
	}
	ladder := []stm.Algorithm{stm.SNOrec, stm.STL2, stm.SGL}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := rt.SwitchEngine(ladder[i%len(ladder)]); err != nil {
				t.Errorf("SwitchEngine: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	hammerShard(rt, home, 4, 300)
	close(stop)
	wg.Wait()
	stats := rt.ShardStats()
	if stats[0].SingleCommits == 0 {
		t.Fatal("shard 0 recorded no single-shard commits under adaptive switching")
	}
	for s := 1; s < nshards; s++ {
		if stats[s].SingleCommits != 0 || stats[s].CrossCommits != 0 {
			t.Errorf("shard %d saw traffic (%+v) during adaptive switching of shard-0-only load", s, stats[s])
		}
	}
	if tk := rt.ShardTicket(); tk != 0 {
		t.Errorf("cross-shard ticket advanced to %d with no cross-shard transaction", tk)
	}
	if err := rt.CheckQuiescent(); err != nil {
		t.Fatalf("not quiescent after adaptive switching: %v", err)
	}
}

// TestShardedCrossSemantics pins the intra-transaction semantics of the
// cross-shard path: read-your-writes and increment visibility across shard
// boundaries, and the documented degradation of the composed primitives
// (CmpSum / CmpVars spanning shards still compute the right answer).
func TestShardedCrossSemantics(t *testing.T) {
	eachShardable(t, 3, func(t *testing.T, rt *stm.Runtime) {
		a := stm.NewVarOn(0, 10)
		b := stm.NewVarOn(1, 20)
		c := stm.NewVarOn(2, 30)

		rt.Atomically(func(tx *stm.Tx) {
			tx.Write(a, 100)
			tx.Inc(b, 5)
			if got := tx.Read(a); got != 100 {
				t.Errorf("cross-shard read-your-writes: read %d, want 100", got)
			}
			if got := tx.Read(b); got != 25 {
				t.Errorf("cross-shard inc visibility: read %d, want 25", got)
			}
			// Sum spans all three shards: 100 + 25 + 30 = 155.
			if !tx.CmpSum(stm.OpEQ, 155, a, b, c) {
				t.Error("cross-shard CmpSum(EQ, 155) = false")
			}
			if !tx.CmpVars(a, stm.OpGT, c) {
				t.Error("cross-shard CmpVars(a > c) = false with a=100, c=30")
			}
		})
		if a.Load() != 100 || b.Load() != 25 || c.Load() != 30 {
			t.Fatalf("post-commit state a=%d b=%d c=%d, want 100/25/30", a.Load(), b.Load(), c.Load())
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestShardedRuntimeMisuse pins the constructor's validation surface.
func TestShardedRuntimeMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewShardedRuntime(NOrec, 0)", func() { stm.NewShardedRuntime(stm.NOrec, 0) })
	mustPanic("NewShardedRuntime(Ring, 4)", func() { stm.NewShardedRuntime(stm.Ring, 4) })
	mustPanic("NewShardedRuntime(HTM, 4)", func() { stm.NewShardedRuntime(stm.HTM, 4) })

	// SGL shards by degenerating to one serializing instance — allowed.
	rt := stm.NewShardedRuntime(stm.SGL, 4)
	v := stm.NewVarOn(2, 1)
	rt.Atomically(func(tx *stm.Tx) { tx.Inc(v, 1) })
	if v.Load() != 2 {
		t.Fatalf("sharded SGL lost an increment: %d", v.Load())
	}

	// Classic runtimes report no sharding surface.
	classic := stm.New(stm.NOrec)
	if classic.Shards() != 0 || classic.ShardStats() != nil {
		t.Fatal("classic runtime leaks a sharding surface")
	}
	if _, ok := classic.ShardClock(0); ok {
		t.Fatal("classic runtime answered a shard clock probe")
	}
}
