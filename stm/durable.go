// Durable runtimes: the public face of the write-ahead-logged commit
// pipeline (DESIGN.md §12). OpenDurable recovers a log directory, binds a
// sharded runtime whose commits append semantic redo records before
// publishing, and hands variables back their pre-crash state.
package stm

import (
	"fmt"
	"sync"
	"time"

	"semstm/internal/core"
	"semstm/internal/shard"
	"semstm/internal/wal"
)

// Durable wraps a sharded Runtime whose commits are written ahead to a
// segmented per-shard redo log. Variables participate by stable durable
// key (Durable.Var); volatile Vars (NewVar/NewVarOn) keep working unlogged.
//
//	d, err := stm.OpenDurable(dir, stm.SNOrec, 8)
//	acct := d.Var(0, 1, 1000) // shard 0, key 1, initial 1000 (or recovered)
//	d.Runtime().Atomically(func(tx *stm.Tx) { tx.Inc(acct, -50) })
//	d.Close()
type Durable struct {
	rt  *Runtime
	set *wal.Set
	rec RecoveryInfo

	mu   sync.Mutex
	keys map[uint64]bool
}

// RecoveryInfo summarizes what opening the log directory replayed and
// repaired — the numbers the crash-recovery suites assert on.
type RecoveryInfo struct {
	// Frames is how many intact log frames replay applied; CrossApplied how
	// many distinct cross-shard commits they formed.
	Frames, CrossApplied uint64
	// TornShards counts shards whose log tail was truncated mid-frame (a
	// torn write); CutFrames counts intact frames discarded because an
	// incomplete cross-shard commit made their suffix unsound.
	CutFrames  uint64
	TornShards int
	// FactsChecked counts logged semantic facts re-verified against the
	// replayed prefix state.
	FactsChecked uint64
}

// WALStats is the group-commit accounting of a durable runtime: frames
// appended, batches written, fsyncs issued, and the mean frames-per-batch
// (the fsync amortization factor).
type WALStats struct {
	Appends   uint64
	Batches   uint64
	Fsyncs    uint64
	GroupSize float64
}

// DurableOption configures OpenDurable.
type DurableOption func(*durableCfg)

type durableCfg struct {
	policy   string
	interval time.Duration
	segBytes int64
	logFacts bool
	plan     *FaultPlan
}

// WithFsync selects the fsync policy: "always" (every group-commit batch,
// the default), "interval" (at most one fsync per window), or "none".
func WithFsync(policy string) DurableOption {
	return func(c *durableCfg) { c.policy = policy }
}

// WithFsyncInterval sets the "interval" policy's window. The default is 2ms
// scaled by the shard count: each shard log has its own background flusher,
// and the scaled window keeps the set-wide fsync rate constant however the
// log is partitioned.
func WithFsyncInterval(d time.Duration) DurableOption {
	return func(c *durableCfg) { c.interval = d }
}

// WithSegmentBytes sets the log segment roll threshold (default 4 MiB).
func WithSegmentBytes(n int64) DurableOption {
	return func(c *durableCfg) { c.segBytes = n }
}

// WithFactLogging additionally logs every single-variable semantic
// comparison outcome as a fact record, which recovery re-verifies against
// the replayed state — a self-checking log at the cost of one record per
// cmp. Off by default.
func WithFactLogging() DurableOption {
	return func(c *durableCfg) { c.logFacts = true }
}

// WithCrashPlan arms a fault plan on both the runtime (spurious aborts,
// validation failures) and the log writer (WithCrash crash sites) — the
// chaos suites' injection point.
func WithCrashPlan(p *FaultPlan) DurableOption {
	return func(c *durableCfg) { c.plan = p }
}

// OpenDurable opens (creating or recovering) the write-ahead log under dir
// and binds a sharded runtime of the given algorithm to it. Recovery
// verifies each shard's hash chain, truncates torn tails, discards
// incomplete cross-shard commits, and replays the surviving prefix;
// Durable.Var then resolves each durable key against the replayed state.
// The algorithm must be shardable (the TL2/NOrec families, SGL, Adaptive);
// nshards must match the directory's manifest on reopen.
func OpenDurable(dir string, algo Algorithm, nshards int, opts ...DurableOption) (*Durable, error) {
	if nshards < 1 {
		return nil, fmt.Errorf("stm: invalid shard count %d", nshards)
	}
	desc, ok := core.EngineFor(algo)
	if !ok {
		return nil, fmt.Errorf("stm: unknown algorithm %d", int(algo))
	}
	if !desc.Composite && !desc.TwoPhase && !desc.Irrevocable {
		return nil, fmt.Errorf("stm: engine %q cannot run durably (no two-phase commit)", desc.Name)
	}
	cfg := durableCfg{policy: "always"}
	for _, opt := range opts {
		opt(&cfg)
	}
	policy, err := wal.ParseSyncPolicy(cfg.policy)
	if err != nil {
		return nil, err
	}
	set, err := wal.Open(dir, nshards, wal.Options{
		Policy:       policy,
		Interval:     cfg.interval,
		SegmentBytes: cfg.segBytes,
		Plan:         cfg.plan,
	})
	if err != nil {
		return nil, err
	}
	rs := set.Recovered()
	d := &Durable{
		rt:  newRuntime(algo, nshards, set, cfg.logFacts),
		set: set,
		rec: RecoveryInfo{
			Frames:       rs.Frames,
			CrossApplied: rs.CrossApplied,
			CutFrames:    rs.CutFrames,
			TornShards:   rs.TornShards,
			FactsChecked: rs.FactsChecked,
		},
		keys: make(map[uint64]bool),
	}
	if cfg.plan != nil {
		d.rt.SetFaultPlan(cfg.plan)
	}
	return d, nil
}

// Runtime returns the bound runtime; transactions run through it exactly as
// on a volatile runtime.
func (d *Durable) Runtime() *Runtime { return d.rt }

// Recovery reports what opening the log directory replayed.
func (d *Durable) Recovery() RecoveryInfo { return d.rec }

// Var allocates (or recovers) a durable transactional variable: shard
// affinity, a stable key naming it in the log across process lifetimes, and
// the value to start from when the log has never seen the key. A key
// resolved from the log yields the replayed value — for increment-only
// history, initial plus the replayed delta. Keys must be nonzero and unique
// within the Durable; reusing one panics, since two variables logging under
// one name would corrupt recovery.
func (d *Durable) Var(shard int, key uint64, initial int64) *Var {
	d.mu.Lock()
	if d.keys[key] {
		d.mu.Unlock()
		panic(fmt.Sprintf("stm: durable key %d allocated twice", key))
	}
	d.keys[key] = true
	d.mu.Unlock()
	return core.NewVarDurable(shard, key, d.set.Recovered().Resolve(key, initial))
}

// Vars allocates n durable variables with consecutive keys firstKey,
// firstKey+1, ..., all on the given shard — the block allocator for
// shard-affine durable structures.
func (d *Durable) Vars(shard int, firstKey uint64, n int, initial int64) []*Var {
	out := make([]*Var, n)
	for i := range out {
		out[i] = d.Var(shard, firstKey+uint64(i), initial)
	}
	return out
}

// WALStats returns the group-commit accounting accumulated since open.
func (d *Durable) WALStats() WALStats {
	st := d.set.Stats()
	return WALStats{Appends: st.Appends, Batches: st.Batches, Fsyncs: st.Fsyncs, GroupSize: st.Group}
}

// WALFailed reports whether a log-write failure has latched the runtime
// into volatile degraded mode (see AbortLogFail).
func (d *Durable) WALFailed() bool {
	d.rt.engMu.Lock()
	defer d.rt.engMu.Unlock()
	for _, eng := range d.rt.engines {
		if se, ok := eng.(*shard.Engine); ok && se.WALFailed() {
			return true
		}
	}
	return false
}

// InjectLogFailure latches err as the log's terminal error — the
// deterministic stand-in for a dying disk. The next durable commit aborts
// with AbortLogFail, escalates to the irrevocable mode, and completes
// volatile; the runtime keeps serving transactions. Testing hook.
func (d *Durable) InjectLogFailure(err error) { d.set.InjectFailure(err) }

// Close seals every shard's log. The runtime must be quiescent.
func (d *Durable) Close() error { return d.set.Close() }
