package stm_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"semstm/stm"
)

// adaptiveLadderHas reports whether a is one of the runtime's ladder rungs.
func adaptiveLadderHas(rt *stm.Runtime, a stm.Algorithm) bool {
	for _, l := range rt.AdaptiveConfig().Ladder {
		if l == a {
			return true
		}
	}
	return false
}

// TestAdaptiveContentionRampSwitches is the headline scenario of the
// adaptive controller: a workload that starts uncontended and ramps into a
// single-cell classical read-modify-write storm must push the abort-reason
// mix over the escalation threshold and trigger at least one online engine
// switch — observed through Snapshot.EngineSwitches — while committing every
// transaction exactly once.
func TestAdaptiveContentionRampSwitches(t *testing.T) {
	rt := stm.New(stm.Adaptive)
	rt.SetAdaptiveConfig(stm.AdaptiveConfig{
		Epoch:         8,
		MinSample:     32,
		EscalatePct:   10,
		DeescalatePct: -1, // one-way ramp: the test asserts escalation only
		MinDwell:      1,
	})
	rt.SetYieldEvery(1) // interleave attempts aggressively (single-core box)
	if got := rt.CurrentAlgorithm(); got != stm.SNOrec {
		t.Fatalf("initial engine %v, want ladder head %v", got, stm.SNOrec)
	}

	const rampTxns = 200
	hot := stm.NewVar(0)
	// Phase 1: uncontended ramp — no aborts, so the policy must hold.
	for i := 0; i < rampTxns; i++ {
		rt.Atomically(func(tx *stm.Tx) { tx.Inc(hot, 1) })
	}
	if sn := rt.Stats(); sn.EngineSwitches != 0 {
		t.Fatalf("switched %d times during the uncontended ramp", sn.EngineSwitches)
	}

	// Phase 2: contention storm — classical RMW on one cell from many
	// goroutines makes validation aborts dominate.
	const workers, per = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rt.Atomically(func(tx *stm.Tx) { tx.Write(hot, tx.Read(hot)+1) })
			}
		}()
	}
	wg.Wait()

	sn := rt.Stats()
	if want := uint64(rampTxns + workers*per); sn.Commits != want {
		t.Fatalf("commits = %d, want %d", sn.Commits, want)
	}
	if got := hot.Load(); got != rampTxns+workers*per {
		t.Fatalf("counter = %d, want %d", got, rampTxns+workers*per)
	}
	if sn.EngineSwitches == 0 {
		t.Fatalf("contention ramp triggered no engine switch (aborts=%d, %.1f%%)",
			sn.Aborts, sn.AbortRate())
	}
	if cur := rt.CurrentAlgorithm(); cur == stm.SNOrec || !adaptiveLadderHas(rt, cur) {
		t.Fatalf("after the storm the engine is %v; want a higher ladder rung", cur)
	}
	if err := rt.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	t.Logf("switches=%d final=%v aborts=%.1f%%", sn.EngineSwitches, rt.CurrentAlgorithm(), sn.AbortRate())
}

// TestAdaptiveDeescalates checks the downward walk: forced onto a higher
// rung, a contention-free workload must bring the runtime back to the ladder
// head once the dwell windows pass.
func TestAdaptiveDeescalates(t *testing.T) {
	rt := stm.New(stm.Adaptive)
	rt.SetAdaptiveConfig(stm.AdaptiveConfig{
		Epoch:         8,
		MinSample:     16,
		DeescalatePct: 5,
		MinDwell:      1,
	})
	if err := rt.SwitchEngine(stm.SGL); err != nil {
		t.Fatal(err)
	}
	if got := rt.CurrentAlgorithm(); got != stm.SGL {
		t.Fatalf("SwitchEngine left engine %v", got)
	}
	v := stm.NewVar(0)
	const txns = 2000
	for i := 0; i < txns; i++ {
		rt.Atomically(func(tx *stm.Tx) { tx.Inc(v, 1) })
	}
	if got := rt.CurrentAlgorithm(); got != stm.SNOrec {
		t.Fatalf("no de-escalation: still on %v after %d uncontended txns", got, txns)
	}
	if got := v.Load(); got != txns {
		t.Fatalf("counter = %d, want %d", got, txns)
	}
	// The forced switch plus at least SGL→S-TL2→S-NOrec.
	if sn := rt.Stats(); sn.EngineSwitches < 3 {
		t.Fatalf("EngineSwitches = %d, want >= 3", sn.EngineSwitches)
	}
}

// TestAdaptiveHybridLadderRamp drives the five-rung hybrid ladder through a
// full contention cycle: start on the progressive HyTM tier, escalate off
// the hardware rungs when a conflict storm makes the typed hardware aborts
// dominate, then walk back down into the HTM tiers once the workload goes
// quiet — the "ladder demonstrably reaches the HTM tiers" acceptance check.
func TestAdaptiveHybridLadderRamp(t *testing.T) {
	t.Run("EscalatesOffHardware", func(t *testing.T) {
		rt := stm.New(stm.Adaptive)
		rt.SetAdaptiveConfig(stm.AdaptiveConfig{
			Epoch:         8,
			MinSample:     32,
			EscalatePct:   10,
			DeescalatePct: -1, // one-way ramp: the quiet storm tail must not walk back
			MinDwell:      1,
			Ladder:        stm.HybridLadder(),
		})
		rt.ConfigureHTM(64, 4, 0) // deterministic hardware: no spurious noise
		rt.SetYieldEvery(1)
		if got := rt.CurrentAlgorithm(); got != stm.HyTM {
			t.Fatalf("initial engine %v, want hybrid ladder head %v", got, stm.HyTM)
		}

		// Contention storm — classical RMW on one cell. On the fast path
		// every interleaved commit is a typed hw-conflict, so the storm must
		// push the runtime off the hardware rungs.
		const workers, per = 8, 300
		hot := stm.NewVar(0)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					rt.Atomically(func(tx *stm.Tx) { tx.Write(hot, tx.Read(hot)+1) })
				}
			}()
		}
		wg.Wait()
		sn := rt.Stats()
		if got := hot.Load(); got != workers*per {
			t.Fatalf("counter = %d, want %d", got, workers*per)
		}
		if sn.EngineSwitches == 0 {
			t.Fatalf("storm triggered no escalation (aborts=%d, %.1f%%)",
				sn.Aborts, sn.AbortRate())
		}
		cur := rt.CurrentAlgorithm()
		if cur == stm.HyTM || !adaptiveLadderHas(rt, cur) {
			t.Fatalf("after the storm the engine is %v; want a higher ladder rung", cur)
		}
		hwAborts := sn.AbortReasons[stm.AbortHWConflict] +
			sn.AbortReasons[stm.AbortHWCapacity]
		if hwAborts == 0 {
			t.Fatal("storm produced no typed hardware aborts on the hybrid tier")
		}
		if sn.HWFastCommits == 0 {
			t.Fatal("the hybrid rung never committed on its fast path")
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
		t.Logf("switches=%d final=%v hwAborts=%d fast=%d middle=%d",
			sn.EngineSwitches, cur, hwAborts, sn.HWFastCommits, sn.HWMiddleCommits)
	})

	t.Run("DeescalatesIntoHardware", func(t *testing.T) {
		rt := stm.New(stm.Adaptive)
		rt.SetAdaptiveConfig(stm.AdaptiveConfig{
			Epoch:     8,
			MinSample: 16,
			MinDwell:  1,
			Ladder:    stm.HybridLadder(),
		})
		rt.ConfigureHTM(64, 4, 0)
		// Force the runtime up to the software tier, then run contention-free
		// traffic: the policy must walk back down through HyTM-mid (paying
		// the doubled hardware re-entry dwell) to the fast-path rung.
		if err := rt.SwitchEngine(stm.SNOrec); err != nil {
			t.Fatal(err)
		}
		hot := stm.NewVar(0)
		const quiet = 6000
		for i := 0; i < quiet; i++ {
			rt.Atomically(func(tx *stm.Tx) { tx.Inc(hot, 1) })
		}
		if got := rt.CurrentAlgorithm(); got != stm.HyTM {
			t.Fatalf("quiet traffic ended on %v; want the hybrid ladder head", got)
		}
		if got := hot.Load(); got != quiet {
			t.Fatalf("counter = %d, want %d", got, quiet)
		}
		sn := rt.Stats()
		// Forced switch plus at least S-NOrec→HyTM-mid→HyTM.
		if sn.EngineSwitches < 3 {
			t.Fatalf("EngineSwitches = %d, want >= 3", sn.EngineSwitches)
		}
		if sn.HWFastCommits == 0 {
			t.Fatal("re-entered hybrid rung never committed on its fast path")
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAdaptiveManualSwitchChaos is the mid-switch safety test: with the
// policy disabled, a driver goroutine forces engine switches across the
// whole concrete-engine spectrum while workers hammer bank transfers under
// full fault injection. Conservation, exact commit counts, and quiescence
// must hold across every transition (run under -race by scripts/check.sh).
func TestAdaptiveManualSwitchChaos(t *testing.T) {
	rt := stm.New(stm.Adaptive)
	rt.SetAdaptiveConfig(stm.AdaptiveConfig{Epoch: -1}) // manual control only
	rt.SetFaultPlan(chaosPlan(0x5111C))
	rt.SetEscalateAfter(64)
	workers, per := chaosScale(t)
	const accounts, initial = 16, 1000
	accts := stm.NewVars(accounts, initial)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := seed
			next := func(n int64) int64 {
				r = r*6364136223846793005 + 1442695040888963407
				v := (r >> 33) % n
				if v < 0 {
					v += n
				}
				return v
			}
			for i := 0; i < per; i++ {
				from := accts[next(accounts)]
				to := accts[next(accounts)]
				amt := next(50) + 1
				rt.Atomically(func(tx *stm.Tx) {
					if tx.GTE(from, amt) {
						tx.Inc(from, -amt)
						tx.Inc(to, amt)
					}
				})
			}
		}(int64(w) + 1)
	}
	// The switch driver cycles through every concrete engine family while
	// the workers run, then returns to the ladder head.
	cycle := []stm.Algorithm{
		stm.STL2, stm.Ring, stm.HTM, stm.SGL, stm.SRing, stm.SHTM,
		stm.NOrec, stm.TL2, stm.SNOrec,
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	switches := 0
	for {
		quit := false
		for _, a := range cycle {
			if err := rt.SwitchEngine(a); err != nil {
				t.Errorf("SwitchEngine(%v): %v", a, err)
			}
			switches++
			select {
			case <-done:
				quit = true
			default:
			}
			if quit {
				break
			}
		}
		if quit {
			break
		}
	}
	var sum int64
	for _, a := range accts {
		sum += a.Load()
	}
	if sum != accounts*initial {
		t.Fatalf("balance not conserved across switches: %d, want %d", sum, accounts*initial)
	}
	sn := rt.Stats()
	if want := uint64(workers * per); sn.Commits != want {
		t.Fatalf("commits = %d, want %d (lost or duplicated commits)", sn.Commits, want)
	}
	if sn.EngineSwitches != uint64(switches) {
		t.Fatalf("EngineSwitches = %d, drove %d", sn.EngineSwitches, switches)
	}
	if err := rt.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveBoundedAPIs exercises TryAtomically and AtomicallyCtx on an
// adaptive runtime: bounded failure must surface as the usual typed
// *AbortError, cancellation must be honored, and a healthy context run must
// commit.
func TestAdaptiveBoundedAPIs(t *testing.T) {
	t.Run("TryAtomically", func(t *testing.T) {
		rt := stm.New(stm.Adaptive)
		rt.SetEscalateAfter(0)
		rt.SetFaultPlan(stm.NewFaultPlan(11).WithSpurious(stm.SiteCommit, 100))
		v := stm.NewVar(0)
		err := rt.TryAtomically(func(tx *stm.Tx) { tx.Inc(v, 1) }, stm.MaxAttempts(4))
		var ae *stm.AbortError
		if !errors.As(err, &ae) || ae.Attempts != 4 {
			t.Fatalf("err = %v", err)
		}
		if v.Load() != 0 {
			t.Fatal("failed transaction leaked a write")
		}
	})
	t.Run("CtxCancelled", func(t *testing.T) {
		rt := stm.New(stm.Adaptive)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		err := rt.AtomicallyCtx(ctx, func(tx *stm.Tx) {})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("CtxCommits", func(t *testing.T) {
		rt := stm.New(stm.Adaptive)
		v := stm.NewVar(0)
		if err := rt.AtomicallyCtx(context.Background(), func(tx *stm.Tx) { tx.Inc(v, 1) }); err != nil {
			t.Fatal(err)
		}
		if v.Load() != 1 {
			t.Fatal("commit lost")
		}
	})
}

// TestSwitchEngineErrors pins the misuse surface of the manual switch API.
func TestSwitchEngineErrors(t *testing.T) {
	fixed := stm.New(stm.SNOrec)
	if err := fixed.SwitchEngine(stm.SGL); err == nil {
		t.Fatal("SwitchEngine on a fixed runtime succeeded")
	}
	rt := stm.New(stm.Adaptive)
	if err := rt.SwitchEngine(stm.Adaptive); err == nil {
		t.Fatal("SwitchEngine to the composite engine succeeded")
	}
	if err := rt.SwitchEngine(stm.Algorithm(99)); err == nil {
		t.Fatal("SwitchEngine to an unregistered id succeeded")
	}
	if got := rt.Stats().EngineSwitches; got != 0 {
		t.Fatalf("failed switches were counted: %d", got)
	}
	if err := rt.SwitchEngine(stm.Ring); err != nil {
		t.Fatal(err)
	}
	if got := rt.CurrentAlgorithm(); got != stm.Ring {
		t.Fatalf("engine = %v after SwitchEngine(Ring)", got)
	}
	if got := rt.Stats().EngineSwitches; got != 1 {
		t.Fatalf("EngineSwitches = %d, want 1", got)
	}
	// Algorithm() keeps reporting the composite identity.
	if rt.Algorithm() != stm.Adaptive {
		t.Fatalf("Algorithm() = %v", rt.Algorithm())
	}
}

// TestAdaptiveConfigPanics pins the constructor-time validation.
func TestAdaptiveConfigPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("SetAdaptiveConfig on fixed runtime", func() {
		stm.New(stm.TL2).SetAdaptiveConfig(stm.AdaptiveConfig{})
	})
	mustPanic("composite ladder entry", func() {
		stm.New(stm.Adaptive).SetAdaptiveConfig(stm.AdaptiveConfig{
			Ladder: []stm.Algorithm{stm.SNOrec, stm.Adaptive},
		})
	})
	mustPanic("unregistered ladder entry", func() {
		stm.New(stm.Adaptive).SetAdaptiveConfig(stm.AdaptiveConfig{
			Ladder: []stm.Algorithm{stm.Algorithm(42)},
		})
	})
}
