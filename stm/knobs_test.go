package stm_test

import (
	"sync"
	"testing"

	"semstm/stm"
)

// TestReadDedupPreservesSemantics: the de-duplication ablation knob must not
// change observable behaviour, only read-set size.
func TestReadDedupPreservesSemantics(t *testing.T) {
	for _, dedup := range []bool{false, true} {
		rt := stm.New(stm.SNOrec)
		rt.SetReadDedup(dedup)
		v := stm.NewVar(10)
		w := stm.NewVar(0)
		got := stm.Run(rt, func(tx *stm.Tx) int64 {
			a := tx.Read(v)
			b := tx.Read(v) // duplicate read
			c := tx.Read(v)
			tx.Write(w, a+b+c)
			return a + b + c
		})
		if got != 30 || w.Load() != 30 {
			t.Fatalf("dedup=%v: got %d, w=%d", dedup, got, w.Load())
		}
	}
}

func TestReadDedupUnderConcurrency(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	rt.SetReadDedup(true)
	c := stm.NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				rt.Atomically(func(tx *stm.Tx) {
					// read-modify-write with redundant reads
					a := tx.Read(c)
					_ = tx.Read(c)
					tx.Write(c, a+1)
				})
			}
		}()
	}
	wg.Wait()
	if c.Load() != 6*300 {
		t.Fatalf("counter = %d", c.Load())
	}
}

// TestNoExtendStillCorrect: disabling S-TL2's phase-1 extension only loses
// performance, never correctness.
func TestNoExtendStillCorrect(t *testing.T) {
	rt := stm.New(stm.STL2)
	rt.SetNoExtend(true)
	accts := stm.NewVars(16, 100)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := seed
			for i := 0; i < 400; i++ {
				r = r*6364136223846793005 + 1442695040888963407
				from := accts[uint64(r>>33)%16]
				r = r*6364136223846793005 + 1442695040888963407
				to := accts[uint64(r>>33)%16]
				rt.Atomically(func(tx *stm.Tx) {
					if tx.GTE(from, 5) {
						tx.Dec(from, 5)
						tx.Inc(to, 5)
					}
				})
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	var sum int64
	for _, a := range accts {
		if a.Load() < 0 {
			t.Fatal("negative balance")
		}
		sum += a.Load()
	}
	if sum != 1600 {
		t.Fatalf("sum = %d", sum)
	}
}

// TestBackoffPoliciesCorrect: every contention-management policy still
// produces correct results under contention.
func TestBackoffPoliciesCorrect(t *testing.T) {
	for _, p := range []stm.BackoffPolicy{stm.BackoffExp, stm.BackoffYield, stm.BackoffNone} {
		rt := stm.New(stm.NOrec)
		rt.SetBackoff(p)
		rt.SetYieldEvery(2)
		c := stm.NewVar(0)
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					rt.Atomically(func(tx *stm.Tx) { tx.Write(c, tx.Read(c)+1) })
				}
			}()
		}
		wg.Wait()
		if c.Load() != 6*200 {
			t.Fatalf("policy %d: counter = %d", p, c.Load())
		}
	}
}

// TestConfigureHTMThroughRuntime: capacity tuning reaches the hardware path
// and the fallback statistics surface.
func TestConfigureHTMThroughRuntime(t *testing.T) {
	rt := stm.New(stm.HTM)
	rt.ConfigureHTM(8, 1, 0)
	vars := stm.NewVars(32, 0)
	rt.Atomically(func(tx *stm.Tx) {
		for i, v := range vars {
			tx.Write(v, int64(i))
		}
	})
	fallbacks, hwAborts := rt.HTMStats()
	if fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1 (32 writes >> capacity 8)", fallbacks)
	}
	if hwAborts == 0 {
		t.Fatal("no hardware aborts recorded")
	}
	for i, v := range vars {
		if v.Load() != int64(i) {
			t.Fatalf("write %d lost", i)
		}
	}
	// Non-HTM runtimes report zeros.
	if f, h := stm.New(stm.NOrec).HTMStats(); f != 0 || h != 0 {
		t.Fatal("non-HTM runtime must report zero HTM stats")
	}
}

// TestExpressionAPIAcrossAlgorithms: CmpSum/CmpAny agree with the classical
// evaluation on every algorithm (native or delegated).
func TestExpressionAPIAcrossAlgorithms(t *testing.T) {
	for _, a := range stm.Algorithms() {
		rt := stm.New(a)
		x, y := stm.NewVar(7), stm.NewVar(-3)
		rt.Atomically(func(tx *stm.Tx) {
			if !tx.CmpSum(stm.OpGT, 0, x, y) {
				t.Errorf("%v: 7-3 > 0", a)
			}
			if tx.CmpSum(stm.OpGT, 10, x, y) {
				t.Errorf("%v: !(4 > 10)", a)
			}
			if !tx.CmpAny(
				stm.Cond{Var: x, Op: stm.OpLT, Operand: 0},
				stm.Cond{Var: y, Op: stm.OpLT, Operand: 0},
			) {
				t.Errorf("%v: y < 0 clause must carry", a)
			}
			if tx.CmpAny(stm.Cond{Var: x, Op: stm.OpLT, Operand: 0}) {
				t.Errorf("%v: single false clause", a)
			}
		})
	}
}

// TestYieldEveryCorrectness: the interleave simulation must not affect
// results.
func TestYieldEveryCorrectness(t *testing.T) {
	rt := stm.New(stm.STL2)
	rt.SetYieldEvery(1) // yield on every single operation
	c := stm.NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rt.Atomically(func(tx *stm.Tx) { tx.Inc(c, 1) })
			}
		}()
	}
	wg.Wait()
	if c.Load() != 800 {
		t.Fatalf("counter = %d", c.Load())
	}
}
