// Online adaptive algorithm switching (DESIGN.md §9).
//
// An Adaptive runtime binds new attempts to one concrete engine at a time
// and re-decides that binding online from abort telemetry: every Epoch
// attempts a descriptor folds the runtime's abort-reason mix over the last
// window into a contention estimate and walks a configured engine ladder —
// escalating toward pessimistic concurrency control when contention aborts
// dominate, de-escalating back when they vanish. The switch itself reuses
// the escalator of the irrevocable mode, extended with a real drain: raise
// the gate (new attempts park), wait until every in-flight attempt has
// committed or aborted, flip the published engine slot, drop the gate.
// Because no attempt of the old engine overlaps any attempt of the new one,
// each engine still only ever synchronizes with itself, and opacity is
// inherited from whichever engine is current — the argument DESIGN.md §9
// spells out.
package stm

import (
	"fmt"
	"runtime"
	"sync"

	"semstm/internal/core"
)

// AdaptiveConfig tunes the online switching policy of an Adaptive runtime.
// The zero value of any field selects its default; the whole config must be
// installed (SetAdaptiveConfig) before the runtime is shared.
type AdaptiveConfig struct {
	// Epoch is how many attempts one descriptor runs between policy
	// evaluations (default 128). Negative disables online switching —
	// the runtime stays on Ladder[0] unless SwitchEngine is called.
	Epoch int
	// MinSample is the minimum number of attempts (commits + aborts) the
	// evaluation window must contain before the policy judges it
	// (default 64); smaller windows are carried into the next epoch.
	MinSample uint64
	// EscalatePct is the contention-abort percentage at or above which the
	// policy moves one rung up the ladder (default 40).
	EscalatePct float64
	// DeescalatePct is the contention-abort percentage at or below which
	// the policy moves one rung down (default 5). Negative disables
	// de-escalation.
	DeescalatePct float64
	// MinDwell is how many judged windows the policy must sit out after a
	// switch before it may switch again (default 2), damping oscillation.
	// De-escalating *into* an HTM-backed rung doubles the dwell: hardware
	// tiers are the most expensive rungs to be wrong about (a capacity-bound
	// workload aborts every attempt before telemetry catches up), so
	// re-entry is deliberately sticky.
	MinDwell int
	// CapacityEscalatePct is the capacity-abort percentage (HTM tracked-set
	// or ring overflow, including the progressive engine's hw-capacity
	// demotions) at or above which the policy escalates off an HTM-backed
	// rung even when total contention sits below EscalatePct (default 10).
	// Capacity aborts are footprint, not contention: retrying the same
	// transactions on the same hardware tier cannot help, so the ladder
	// moves to a software rung at a much lower threshold. Negative disables
	// the rule; it never applies on software rungs.
	CapacityEscalatePct float64
	// Ladder is the escalation order, most optimistic first (default
	// S-NOrec, S-TL2, SGL). Every entry must be a registered concrete
	// engine; the runtime starts on Ladder[0].
	Ladder []Algorithm
}

// HybridLadder returns the escalation order for runtimes that should start
// on the progressive HyTM tiers: HyTM (uninstrumented fast path first),
// HyTM-mid (instrumentation always on), then the software ladder S-NOrec,
// S-TL2, SGL. It is not the default — engine mixes with no hardware story
// keep the software ladder — but it is the ladder the contention-ramp and
// hybrid benchmarks run.
func HybridLadder() []Algorithm {
	return []Algorithm{HyTM, HyTMMid, SNOrec, STL2, SGL}
}

// withDefaults fills zero-valued fields and validates the ladder.
func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Epoch == 0 {
		c.Epoch = 128
	}
	if c.MinSample == 0 {
		c.MinSample = 64
	}
	if c.EscalatePct == 0 {
		c.EscalatePct = 40
	}
	if c.DeescalatePct == 0 {
		c.DeescalatePct = 5
	}
	if c.MinDwell == 0 {
		c.MinDwell = 2
	}
	if c.CapacityEscalatePct == 0 {
		c.CapacityEscalatePct = 10
	}
	if len(c.Ladder) == 0 {
		c.Ladder = []Algorithm{SNOrec, STL2, SGL}
	}
	for _, a := range c.Ladder {
		if d, ok := core.EngineFor(a); !ok || d.Composite {
			panic(fmt.Sprintf("stm: adaptive ladder entry %v is not a concrete engine", a))
		}
	}
	return c
}

// adaptiveState is the controller of one Adaptive runtime.
type adaptiveState struct {
	cfg AdaptiveConfig

	// mu serializes policy evaluations; descriptors reaching an epoch
	// boundary while an evaluation runs just skip theirs (TryLock), so the
	// policy never blocks the retry loop.
	mu sync.Mutex
	// last is the stats snapshot the previous judged window ended at.
	last core.Snapshot
	// pos is the current rung on cfg.Ladder.
	pos int
	// dwell is how many more judged windows must pass before switching.
	dwell int
}

func newAdaptiveState() *adaptiveState {
	return &adaptiveState{cfg: AdaptiveConfig{}.withDefaults()}
}

// SetAdaptiveConfig installs the switching policy of an Adaptive runtime and
// rebases it onto the new Ladder[0]. Like the other knobs, it must be called
// before the runtime is shared between goroutines; it panics on a
// non-adaptive runtime or an invalid ladder.
func (rt *Runtime) SetAdaptiveConfig(cfg AdaptiveConfig) {
	if rt.adapt == nil {
		panic("stm: SetAdaptiveConfig on a non-adaptive runtime")
	}
	a := rt.adapt
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cfg = cfg.withDefaults()
	if rt.nshards > 0 {
		for _, alg := range a.cfg.Ladder {
			if d, ok := core.EngineFor(alg); ok && !d.TwoPhase && !d.Irrevocable {
				panic(fmt.Sprintf("stm: adaptive ladder entry %v cannot be sharded", alg))
			}
		}
	}
	a.pos = 0
	a.dwell = 0
	a.last = rt.stats.Snapshot()
	first := a.cfg.Ladder[0]
	if rt.cur.Load().algo != first {
		rt.cur.Store(&engineSlot{algo: first, eng: rt.engineFor(first)})
	}
}

// AdaptiveConfig returns the active switching policy (with defaults filled
// in) of an Adaptive runtime, and the zero config for fixed runtimes.
func (rt *Runtime) AdaptiveConfig() AdaptiveConfig {
	if rt.adapt == nil {
		return AdaptiveConfig{}
	}
	rt.adapt.mu.Lock()
	defer rt.adapt.mu.Unlock()
	return rt.adapt.cfg
}

// noteAttempt is the per-attempt policy hook of adaptive runtimes, called by
// the retry engine after each non-escalated attempt (with the descriptor's
// active flag already cleared, so an evaluation that drains never waits on
// its own caller). It only counts until the descriptor's epoch boundary.
func (rt *Runtime) noteAttempt(tx *Tx) {
	epoch := rt.adapt.cfg.Epoch
	if epoch <= 0 {
		return
	}
	tx.sinceAdapt++
	if tx.sinceAdapt < epoch {
		return
	}
	tx.sinceAdapt = 0
	rt.maybeAdapt()
}

// contentionAborts counts the aborts of a snapshot window that indicate
// data contention: failed validations, flipped semantic facts, locked
// ownership records, and capacity overflow (ring wrap / HTM tracked-set
// exhaustion). Spurious aborts (simulated-hardware noise and injected
// faults) and explicit restarts are excluded — they say nothing about which
// concurrency control would do better, and counting them would let a fault
// plan or a Restart loop thrash the ladder.
func contentionAborts(d core.Snapshot) uint64 {
	return d.AbortReasons[core.ReasonValidation] +
		d.AbortReasons[core.ReasonCmpFlip] +
		d.AbortReasons[core.ReasonOrecLocked] +
		d.AbortReasons[core.ReasonCapacity] +
		d.AbortReasons[core.ReasonHWConflict] +
		d.AbortReasons[core.ReasonHWCapacity]
}

// capacityAborts counts the aborts of a snapshot window that indicate the
// footprint outgrew a bounded resource — the signal the capacity-escalation
// rule keys on when the current rung is HTM-backed.
func capacityAborts(d core.Snapshot) uint64 {
	return d.AbortReasons[core.ReasonCapacity] +
		d.AbortReasons[core.ReasonHWCapacity]
}

// maybeAdapt runs one policy evaluation: judge the abort mix since the last
// judged window and walk the ladder if it crosses a threshold. Contended
// evaluations are skipped rather than queued — with many descriptors hitting
// epoch boundaries, one judgment per window is plenty.
func (rt *Runtime) maybeAdapt() {
	a := rt.adapt
	if !a.mu.TryLock() {
		return
	}
	defer a.mu.Unlock()
	snap := rt.stats.Snapshot()
	d := snap.Sub(a.last)
	sample := d.Commits + d.Aborts
	if sample < a.cfg.MinSample {
		return // window too small to judge; keep accumulating
	}
	a.last = snap
	if a.dwell > 0 {
		a.dwell--
		return
	}
	pct := 100 * float64(contentionAborts(d)) / float64(sample)
	onHW := engineIsHTMBacked(a.cfg.Ladder[a.pos])
	capPct := 0.0
	if onHW {
		capPct = 100 * float64(capacityAborts(d)) / float64(sample)
	}
	var target int
	switch {
	case pct >= a.cfg.EscalatePct && a.pos+1 < len(a.cfg.Ladder):
		target = a.pos + 1
	case onHW && a.cfg.CapacityEscalatePct >= 0 &&
		capPct >= a.cfg.CapacityEscalatePct && a.pos+1 < len(a.cfg.Ladder):
		// Capacity aborts are footprint, not contention: leave the hardware
		// tier at a much lower threshold than the conflict rule.
		target = a.pos + 1
	case a.cfg.DeescalatePct >= 0 && pct <= a.cfg.DeescalatePct && a.pos > 0:
		target = a.pos - 1
	default:
		return
	}
	if rt.switchTo(a.cfg.Ladder[target], false) {
		down := target < a.pos
		a.pos = target
		a.dwell = a.cfg.MinDwell
		if down && engineIsHTMBacked(a.cfg.Ladder[target]) {
			// Sticky re-entry: being wrong about a hardware tier is the most
			// expensive mistake the ladder can make.
			a.dwell = 2 * a.cfg.MinDwell
		}
	}
}

// engineIsHTMBacked reports whether the registered engine runs on the
// simulated hardware path.
func engineIsHTMBacked(alg Algorithm) bool {
	d, ok := core.EngineFor(alg)
	return ok && d.HTMBacked
}

// SwitchEngine forces an Adaptive runtime onto the given engine through the
// same quiescent transition the policy uses, blocking until the switch
// completes. It returns an error on a non-adaptive runtime or a target that
// is not a registered concrete engine. If the target sits on the configured
// ladder the policy resumes from that rung; either way the policy keeps
// running afterwards (disable it with a negative Epoch for manual control).
func (rt *Runtime) SwitchEngine(target Algorithm) error {
	if rt.adapt == nil {
		return fmt.Errorf("stm: SwitchEngine on a non-adaptive %v runtime", rt.algo)
	}
	if d, ok := core.EngineFor(target); !ok || d.Composite {
		return fmt.Errorf("stm: SwitchEngine target %d is not a concrete engine", int(target))
	}
	a := rt.adapt
	a.mu.Lock()
	defer a.mu.Unlock()
	rt.switchTo(target, true)
	a.pos = 0
	for i, alg := range a.cfg.Ladder {
		if alg == target {
			a.pos = i
			break
		}
	}
	a.dwell = a.cfg.MinDwell
	a.last = rt.stats.Snapshot()
	return nil
}

// switchTo performs the quiescent engine transition. It serializes against
// irrevocable escalations and other switches through the escalator mutex
// (TryLock on the policy path — a switch that loses to an escalation is
// simply retried at a later epoch), then raises the gate so no new attempt
// starts, drains the in-flight attempts, publishes the new slot, and drops
// the gate. It reports whether the transition ran.
func (rt *Runtime) switchTo(target Algorithm, block bool) bool {
	if block {
		rt.esc.mu.Lock()
	} else if !rt.esc.mu.TryLock() {
		return false
	}
	defer rt.esc.mu.Unlock()
	if rt.cur.Load().algo == target {
		return true // already there (raced with SwitchEngine)
	}
	rt.esc.gate.Store(1)
	defer rt.esc.gate.Store(0)
	rt.drainAttempts()
	rt.cur.Store(&engineSlot{algo: target, eng: rt.engineFor(target)})
	rt.stats.CountEngineSwitch()
	return true
}

// drainAttempts waits until no attempt is executing. Called with the gate
// raised, so the in-flight set is finite and strictly shrinking: an attempt
// either entered before the gate (its active flag is up and will drop at
// commit/abort) or it parks at the gate and never raises the flag.
func (rt *Runtime) drainAttempts() {
	rt.descMu.Lock()
	descs := make([]*Tx, len(rt.descs))
	copy(descs, rt.descs)
	rt.descMu.Unlock()
	for _, tx := range descs {
		for tx.active.Load() != 0 {
			runtime.Gosched()
		}
	}
}

// enterAttempt is the attempt-side half of the switch protocol, run before
// every non-escalated attempt of an adaptive runtime: bind to the current
// engine, raise the active flag, then re-check that no switch is pending or
// has completed (the flag-then-check order pairs with the switcher's
// gate-then-drain order — seq-cst atomics make at least one side see the
// other, so no attempt of a superseded engine slips past a drain). It
// reports false only when done fires while parked at the gate.
func (rt *Runtime) enterAttempt(tx *Tx, done <-chan struct{}) bool {
	for {
		if slot := rt.cur.Load(); tx.slot != slot {
			tx.rebind(slot)
		}
		tx.active.Store(1)
		if rt.esc.gate.Load() == 0 && rt.cur.Load() == tx.slot {
			return true
		}
		// A switch (or an escalation) is pending or just completed: back
		// out, park until the gate drops, and re-bind.
		tx.active.Store(0)
		if !rt.esc.wait(done) {
			return false
		}
	}
}

func init() {
	core.RegisterEngine(core.EngineDesc{
		ID:           core.EngineAdaptive,
		Name:         "Adaptive",
		DisplayOrder: 11,
		// The default ladder is all-semantic, and semantic calls are honored
		// as facts whenever the current engine supports them.
		Semantic:  true,
		Composite: true,
	})
}
