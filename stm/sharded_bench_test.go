package stm_test

// Sharded-runtime barrier benchmarks. They ride the BenchmarkBarrier* name
// prefix on purpose: scripts/check.sh gates every BenchmarkBarrier*
// sub-benchmark at exactly 0 allocs/op, so the sharded fast path (and the
// two-phase cross-shard commit) inherit the repo's allocation discipline
// mechanically.
//
// Run with:
//
//	go test ./stm -bench=BenchmarkBarrierSharded -benchtime=2s

import (
	"testing"

	"semstm/stm"
)

// shardedBenchAlgos: the gate engine pair of the sharded grid — the
// value-validating baseline and its semantic extension — plus the TL2 pair,
// so both orec-based and seqlock-based two-phase paths are covered.
var shardedBenchAlgos = []stm.Algorithm{stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2}

func benchSharded(b *testing.B, nshards int, fn func(b *testing.B, rt *stm.Runtime)) {
	for _, a := range shardedBenchAlgos {
		b.Run(a.String(), func(b *testing.B) {
			fn(b, stm.NewShardedRuntime(a, nshards))
		})
	}
}

// BenchmarkBarrierShardedSingleRead measures the sharded single-shard read
// path: 16 reads confined to one shard of an 8-way partition — the routing
// overhead on top of the classic BenchmarkBarrierReadEmptyWS shape.
func BenchmarkBarrierShardedSingleRead(b *testing.B) {
	benchSharded(b, 8, func(b *testing.B, rt *stm.Runtime) {
		vars := stm.NewVarsOn(3, 16, 7)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				for _, v := range vars {
					sink += tx.Read(v)
				}
			})
		}
		_ = sink
	})
}

// BenchmarkBarrierShardedSingleMix measures the sharded single-shard
// update path: semantic conditional + increments + write-back on one shard,
// committing through that shard's engine unchanged.
func BenchmarkBarrierShardedSingleMix(b *testing.B) {
	benchSharded(b, 8, func(b *testing.B, rt *stm.Runtime) {
		vars := stm.NewVarsOn(5, 8, 1000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				if tx.GTE(vars[0], 1) {
					tx.Dec(vars[0], 1)
					tx.Inc(vars[1], 1)
				}
				for _, v := range vars[2:] {
					tx.Write(v, tx.Read(v)+1)
				}
			})
		}
	})
}

// BenchmarkBarrierShardedCrossCommit measures the two-phase cross-shard
// commit: a transfer whose source and destination live on different shards —
// per-shard Prepare/Validate, the ticket advance, and per-shard Publish every
// iteration.
func BenchmarkBarrierShardedCrossCommit(b *testing.B) {
	benchSharded(b, 8, func(b *testing.B, rt *stm.Runtime) {
		src := stm.NewVarOn(1, 1<<40)
		dst := stm.NewVarOn(6, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				if tx.GTE(src, 1) {
					tx.Dec(src, 1)
					tx.Inc(dst, 1)
				}
			})
		}
	})
}
