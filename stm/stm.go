// Package stm is the public API of the semantic software transactional
// memory library, a Go reproduction of "Extending TM Primitives using Low
// Level Semantics" (Saad, Palmieri, Hassan, Ravindran; SPAA 2016).
//
// The library provides the four classical TM constructs — transaction
// boundaries plus Read and Write barriers — and the paper's TM-friendly
// semantic extensions of Table 1: the six conditional operators (GT, GTE,
// LT, LTE, EQ, NEQ, in both address–value and address–address form) and
// Inc/Dec. Semantic operations record *facts* ("x > 0") instead of values,
// so concurrent writers that do not change the fact's outcome no longer
// abort the reader; increments defer their read to commit time.
//
// Engines are registered, not hard-wired: every STM algorithm lives in the
// core engine registry with a capability descriptor (semantic facts,
// composed expressions, irrevocability, HTM backing), and a Runtime is bound
// to one registered engine — NOrec and TL2 (the classical baselines, which
// transparently delegate semantic calls to classical barriers), their
// semantic extensions S-NOrec and S-TL2 (Algorithms 6 and 7 of the paper),
// RingSTM and S-RingSTM (signature-based validation), a simulated
// best-effort HTM pair, a single-global-lock sanity baseline — or to
// Adaptive, which starts on one engine and switches engines online from
// abort telemetry through a quiescent transition (see adaptive.go).
//
// Basic use:
//
//	rt := stm.New(stm.SNOrec)
//	x := stm.NewVar(5)
//	rt.Atomically(func(tx *stm.Tx) {
//		if tx.GT(x, 0) {
//			tx.Inc(x, -1)
//		}
//	})
package stm

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"semstm/internal/core"
	"semstm/internal/htm"
	"semstm/internal/shard"

	// The backend packages register their engines into the core registry at
	// init time; linking them here is what makes every algorithm selectable
	// through stm.New.
	_ "semstm/internal/norec"
	_ "semstm/internal/ringstm"
	_ "semstm/internal/sgl"
	_ "semstm/internal/tl2"
)

// Var is a transactional memory cell holding one 64-bit signed word. Allocate
// with NewVar/NewVars; access inside transactions through Tx methods.
type Var = core.Var

// Op is a semantic comparison operator.
type Op = core.Op

// The six conditional operators of the extended TM API (Table 1).
const (
	OpEQ  = core.OpEQ
	OpNEQ = core.OpNEQ
	OpGT  = core.OpGT
	OpGTE = core.OpGTE
	OpLT  = core.OpLT
	OpLTE = core.OpLTE
)

// Snapshot is a point-in-time copy of a runtime's aggregate counters.
type Snapshot = core.Snapshot

// Cond is one clause of a composed condition for Tx.CmpAny: "*Var Op
// Operand".
type Cond = core.Cond

// NewVar allocates a transactional variable with the given initial value.
func NewVar(initial int64) *Var { return core.NewVar(initial) }

// NewVars allocates n transactional variables in one contiguous block.
func NewVars(n int, initial int64) []*Var { return core.NewVars(n, initial) }

// NewVarOn allocates a transactional variable with the given initial value
// and shard affinity (see NewShardedRuntime). Unsharded runtimes ignore the
// assignment.
func NewVarOn(shard int, initial int64) *Var { return core.NewVarOn(shard, initial) }

// NewVarsOn allocates n transactional variables in one contiguous block, all
// assigned to the given shard.
func NewVarsOn(shard, n int, initial int64) []*Var { return core.NewVarsOn(shard, n, initial) }

// Algorithm selects the STM engine backing a Runtime. It aliases the core
// registry's engine identifier: String(), Semantic(), and the set returned
// by Algorithms() all come from the registered engine descriptors rather
// than per-algorithm switch statements.
type Algorithm = core.EngineID

const (
	// NOrec is the value-based baseline [PPoPP 2010]; semantic calls are
	// delegated to classical read/write barriers.
	NOrec = core.EngineNOrec
	// SNOrec is S-NOrec, Algorithm 6 of the paper: NOrec with semantic
	// validation, compare facts, and deferred increments.
	SNOrec = core.EngineSNOrec
	// TL2 is the version-based baseline [DISC 2006]; semantic calls are
	// delegated to classical read/write barriers.
	TL2 = core.EngineTL2
	// STL2 is S-TL2, Algorithm 7 of the paper: TL2 with a compare-set,
	// phase-1 start-version extension, and CAS-based clock increments.
	STL2 = core.EngineSTL2
	// SGL is a single-global-lock baseline (not in the paper's plots;
	// used for testing and sanity comparisons).
	SGL = core.EngineSGL
	// HTM is a simulated best-effort hardware TM with a single-global-lock
	// fallback (capacity limits, spurious aborts, lock subscription) — the
	// hybrid-TM substrate of the paper's introduction.
	HTM = core.EngineHTM
	// SHTM applies the semantic primitives to the simulated hardware path
	// (the paper's stated future work): facts and deferred increments
	// shrink the tracked set, saving capacity aborts as well as conflicts.
	SHTM = core.EngineSHTM
	// Ring is RingSTM [SPAA 2008], the signature-based validation family:
	// commits publish Bloom-filter write signatures on a global ring and
	// readers abort on any signature intersection.
	Ring = core.EngineRing
	// SRing is S-RingSTM: the paper's methodology applied to signature
	// validation — an intersection triggers semantic re-validation of the
	// recorded facts instead of an unconditional abort, so Bloom false
	// positives and benign value changes stop aborting readers.
	SRing = core.EngineSRing
	// Adaptive is the composite policy engine: the runtime starts on the
	// first engine of its AdaptiveConfig ladder and switches engines online
	// when the per-epoch abort-reason mix says a different concurrency
	// control would win (see adaptive.go and DESIGN.md §9).
	Adaptive = core.EngineAdaptive
	// HyTM is the progressive hybrid engine (DESIGN.md §13): an
	// uninstrumented hardware fast path (no read-set, no facts — one
	// conflict-detection-epoch load per barrier), an instrumented hardware
	// middle path that coexists with software transactions, and a software
	// slow path, with typed abort reasons (AbortHWConflict, AbortHWCapacity)
	// driving per-path demotion.
	HyTM = core.EngineHyTM
	// HyTMMid is HyTM with the fast path forced off — every hardware attempt
	// starts on the instrumented middle path. It is the instrumentation-cost
	// ablation cell the EXPERIMENTS.md hybrid table compares HyTM against.
	HyTMMid = core.EngineHyTMMid

	numAlgorithms = core.NumEngines
)

// Algorithms lists every selectable algorithm in display order, straight
// from the engine registry.
func Algorithms() []Algorithm {
	descs := core.Engines()
	out := make([]Algorithm, 0, len(descs))
	for _, d := range descs {
		out = append(out, d.ID)
	}
	return out
}

// engineSlot pairs a concrete engine instance with its algorithm. The
// runtime publishes the current slot through one atomic pointer, so a
// descriptor can detect a superseded binding by pointer identity alone.
type engineSlot struct {
	algo Algorithm
	eng  core.Engine
}

// Runtime is an STM instance: one engine (or, for Adaptive, a set of engines
// behind one current slot), the engine's global metadata, and aggregate
// statistics. Independent Runtimes do not synchronize with each other, so a
// Var must only ever be accessed through a single Runtime at a time.
type Runtime struct {
	algo  Algorithm
	stats core.Stats
	// nshards is 0 on classic runtimes (New) and the shard count on sharded
	// runtimes (NewShardedRuntime) — where every engine instance is wrapped
	// in a shard.Engine partition.
	nshards int

	// cur is the engine executing new attempts. Fixed runtimes store it once
	// at construction; Adaptive runtimes replace it inside the quiescent
	// switch protocol (adaptive.go).
	cur atomic.Pointer[engineSlot]
	// engines holds the lazily created engine instances, indexed by
	// algorithm; engMu guards the slots (switches, stats probes).
	engMu   sync.Mutex
	engines [numAlgorithms]core.Engine

	// descs lists every descriptor ever built for this runtime, so an engine
	// switch can wait for the in-flight attempts to drain.
	descMu sync.Mutex
	descs  []*Tx

	// adapt is the online-switching controller; nil on fixed runtimes, which
	// is also the fast-path discriminator in the retry loop.
	adapt *adaptiveState

	txPool     sync.Pool
	yieldEvery int
	esc        escalator // quiesce protocol of the irrevocable mode and of engine switches

	// walLogger is the durable redo sink installed on every sharded engine
	// instance the runtime builds (OpenDurable); nil on volatile runtimes.
	// walFacts additionally logs single-variable cmp outcomes as
	// self-checking fact records.
	walLogger shard.Logger
	walFacts  bool

	// Ablation and tuning knobs, set before the runtime is shared.
	dedupReads    bool
	noExtend      bool
	backoff       BackoffPolicy
	htmCapacity   int
	htmRetries    int
	htmSpurious   float64
	faultPlan     *core.FaultPlan
	escalateAfter int
}

// New creates a runtime for the given algorithm. The algorithm must be
// registered in the engine registry (every Algorithm constant is).
func New(algo Algorithm) *Runtime { return newRuntime(algo, 0, nil, false) }

// NewShardedRuntime creates a runtime whose engine is partitioned into
// nshards independent instances — per-shard TL2 clocks and orec tables,
// per-shard NOrec sequence locks (DESIGN.md §11). Variables carry a shard
// assignment from NewVarOn/NewVarsOn; a transaction that touches one shard
// runs the engine completely unchanged against that shard's private metadata,
// and a transaction that spans shards commits through the two-phase
// cross-shard protocol. The engine must support sharding: every concrete
// engine of the TL2/NOrec families does (two-phase commit), SGL degenerates
// to one serializing instance, and Adaptive requires a ladder of shardable
// engines (the default ladder qualifies); other engines panic here.
// NewShardedRuntime(algo, 1) is a valid single-partition runtime — useful as
// the 1-shard cell of scaling measurements, since it pays the same routing
// costs as wider partitions.
func NewShardedRuntime(algo Algorithm, nshards int) *Runtime {
	if nshards < 1 {
		panic(fmt.Sprintf("stm: invalid shard count %d", nshards))
	}
	desc, ok := core.EngineFor(algo)
	if !ok {
		panic(fmt.Sprintf("stm: unknown algorithm %d", int(algo)))
	}
	if !desc.Composite && !desc.TwoPhase && !desc.Irrevocable {
		panic(fmt.Sprintf("stm: engine %q cannot be sharded (no two-phase commit)", desc.Name))
	}
	return newRuntime(algo, nshards, nil, false)
}

func newRuntime(algo Algorithm, nshards int, logger shard.Logger, logFacts bool) *Runtime {
	desc, ok := core.EngineFor(algo)
	if !ok {
		panic(fmt.Sprintf("stm: unknown algorithm %d", int(algo)))
	}
	rt := &Runtime{
		algo:          algo,
		nshards:       nshards,
		walLogger:     logger,
		walFacts:      logFacts,
		htmCapacity:   htm.DefaultCapacity,
		htmRetries:    htm.DefaultMaxHWRetries,
		htmSpurious:   htm.DefaultSpuriousPct,
		escalateAfter: DefaultEscalateAfter,
	}
	if desc.Composite {
		rt.adapt = newAdaptiveState()
		first := rt.adapt.cfg.Ladder[0]
		rt.cur.Store(&engineSlot{algo: first, eng: rt.engineFor(first)})
	} else {
		rt.cur.Store(&engineSlot{algo: algo, eng: rt.engineFor(algo)})
	}
	rt.txPool.New = func() any { return rt.newTx() }
	return rt
}

// engineFor returns this runtime's instance of the algorithm's engine,
// creating it on first use. Lazy creation matters for Adaptive: engines the
// policy never switches to (a 4 MiB TL2 orec table, say) are never built.
func (rt *Runtime) engineFor(algo Algorithm) core.Engine {
	rt.engMu.Lock()
	defer rt.engMu.Unlock()
	if rt.engines[algo] == nil {
		desc, ok := core.EngineFor(algo)
		if !ok || desc.Composite {
			panic(fmt.Sprintf("stm: %v is not a concrete engine", algo))
		}
		if rt.nshards > 0 {
			se := shard.NewEngine(desc, rt.nshards)
			if rt.walLogger != nil {
				se.SetLogger(rt.walLogger, rt.walFacts)
			}
			rt.engines[algo] = se
		} else {
			rt.engines[algo] = desc.New()
		}
	}
	return rt.engines[algo]
}

// txConfig snapshots the runtime's descriptor-level knobs for an engine's
// NewTx. Every field is filled; engines apply the subset they understand.
func (rt *Runtime) txConfig() core.TxConfig {
	return core.TxConfig{
		DedupReads:  rt.dedupReads,
		NoExtend:    rt.noExtend,
		HTMCapacity: rt.htmCapacity,
		HTMRetries:  rt.htmRetries,
		HTMSpurious: rt.htmSpurious,
		Seed:        uniqueSeed(),
	}
}

// newTx builds a fresh transaction descriptor bound to the current engine.
// Each descriptor registers its own stats shard: descriptors are owned by
// one goroutine at a time (sync.Pool), so commit/abort folding stays on
// thread-private cache lines instead of contending on global counters.
// RNG seeds come from uniqueSeed, not the raw clock: descriptors allocated
// in the same nanosecond must not share backoff or spurious-abort streams.
// The generator is math/rand/v2 (PCG): the v1 rand.Seed path is deprecated,
// and the v2 PCG is both cheaper per draw and seedable per descriptor.
func (rt *Runtime) newTx() *Tx {
	tx := &Tx{
		rt:    rt,
		shard: rt.stats.Register(),
		rng:   rand.New(rand.NewPCG(uint64(uniqueSeed()), uint64(uniqueSeed()))),
		pin:   core.RegisterEpochPin(),
	}
	tx.rebind(rt.cur.Load())
	rt.descMu.Lock()
	rt.descs = append(rt.descs, tx)
	rt.descMu.Unlock()
	return tx
}

// epochResetter is the optional TxImpl interface for per-call (as opposed to
// per-attempt) state resets; the HTM backends use it to reset their
// hardware-failure budget. The assertion is cached on the descriptor at
// rebind time: asserting on every Atomically call showed up in the escape
// audit as a per-call dynamic type check on the hot path.
type epochResetter interface{ NewEpoch() }

// rebind points the descriptor at an engine slot, building a fresh
// engine-level descriptor from it. Called at construction and whenever the
// retry loop observes that an engine switch superseded the binding.
func (tx *Tx) rebind(slot *engineSlot) {
	tx.slot = slot
	tx.impl = slot.eng.NewTx(tx.rt.txConfig())
	tx.epoch, _ = tx.impl.(epochResetter)
	tx.priv, _ = tx.impl.(core.Privatizer)
	tx.impl.SetFaultPlan(tx.rt.faultPlan)
}

// poisonedReason is the out-of-range sentinel releaseTx stamps on a
// descriptor's per-call state. Any code path that reads a released
// descriptor's reason before an attempt rewrote it surfaces the value as the
// "invalid" bucket (Reason.String) instead of silently reporting the
// previous transaction's reason — the pool-reuse analogue of poisoning freed
// memory.
const poisonedReason = AbortReason(core.NumReasons)

// releaseTx returns a descriptor to the pool, poisoning per-call state so
// leaks between logically distinct transactions are detectable (the
// descriptor-reuse fuzz test asserts no poison is ever observed).
func (rt *Runtime) releaseTx(tx *Tx) {
	if tx.active.Load() != 0 {
		panic("stm: descriptor released with an attempt still active")
	}
	tx.lastReason = poisonedReason
	rt.txPool.Put(tx)
}

// Algorithm reports which algorithm the runtime was created with (Adaptive
// for adaptive runtimes; see CurrentAlgorithm for the live engine).
func (rt *Runtime) Algorithm() Algorithm { return rt.algo }

// CurrentAlgorithm reports the concrete engine currently executing new
// attempts: equal to Algorithm() on fixed runtimes, and the engine the
// adaptive controller most recently switched to on Adaptive runtimes.
func (rt *Runtime) CurrentAlgorithm() Algorithm { return rt.cur.Load().algo }

// SetYieldEvery makes every transaction yield the processor after each n
// transactional operations (0 disables). On machines with few cores,
// goroutines rarely preempt mid-transaction, which hides the conflict
// dynamics a multicore exhibits; the benchmark harness enables this to
// simulate concurrent interleaving (see DESIGN.md). It must be set before
// the runtime is shared between goroutines.
func (rt *Runtime) SetYieldEvery(n int) { rt.yieldEvery = n }

// SetReadDedup enables read-after-read de-duplication in the NOrec family —
// the trade-off Section 4.1 of the paper discusses (the scan cost versus
// redundant read-set entries). Off by default, matching the paper.
func (rt *Runtime) SetReadDedup(on bool) { rt.dedupReads = on }

// SetNoExtend disables S-TL2's phase-1 snapshot extension (an ablation of
// the optimization of Algorithm 7 lines 19-25). Off by default.
func (rt *Runtime) SetNoExtend(on bool) { rt.noExtend = on }

// SetBackoff selects the contention-management policy applied between
// attempts.
func (rt *Runtime) SetBackoff(p BackoffPolicy) { rt.backoff = p }

// ConfigureHTM tunes the simulated hardware: tracked-location capacity,
// hardware retries before fallback, and spurious-abort percentage. It only
// affects the HTM and S-HTM algorithms.
func (rt *Runtime) ConfigureHTM(capacity, retries int, spuriousPct float64) {
	rt.htmCapacity = capacity
	rt.htmRetries = retries
	rt.htmSpurious = spuriousPct
}

// htmReporter is the optional interface HTM-backed engines expose for the
// fallback and hardware-abort tallies.
type htmReporter interface {
	Fallbacks() uint64
	HWAborts() uint64
}

// HTMStats reports (fallbacks, hardwareAborts) summed over the runtime's
// HTM-backed engines, and zeros for runtimes that never ran one.
func (rt *Runtime) HTMStats() (fallbacks, hwAborts uint64) {
	rt.engMu.Lock()
	defer rt.engMu.Unlock()
	for _, eng := range rt.engines {
		if r, ok := eng.(htmReporter); ok {
			fallbacks += r.Fallbacks()
			hwAborts += r.HWAborts()
		}
	}
	return fallbacks, hwAborts
}

// Stats returns a snapshot of the aggregate counters (commits, aborts, and
// per-category operation counts — the raw material of Table 3).
func (rt *Runtime) Stats() Snapshot { return rt.stats.Snapshot() }

// Shards reports the runtime's shard count: 0 for classic runtimes, the
// NewShardedRuntime count otherwise.
func (rt *Runtime) Shards() int { return rt.nshards }

// ShardStats is a point-in-time copy of one shard's commit counters.
type ShardStats struct {
	// SingleCommits counts transactions that touched only this shard and
	// committed through its engine unchanged (the zero-cross-traffic path).
	SingleCommits uint64
	// CrossCommits counts two-phase cross-shard commits this shard
	// participated in.
	CrossCommits uint64
	// BatchedRequests counts the logical requests folded into this shard's
	// commits by AtomicallyBatch callers (the coalescing server front-end);
	// BatchedRequests/SingleCommits is the shard's observed amortization
	// factor.
	BatchedRequests uint64
}

// ShardStats returns the per-shard commit counters, summed over every engine
// instance the runtime has built (an Adaptive runtime accumulates across its
// ladder rungs). It returns nil on classic runtimes.
func (rt *Runtime) ShardStats() []ShardStats {
	if rt.nshards == 0 {
		return nil
	}
	out := make([]ShardStats, rt.nshards)
	rt.engMu.Lock()
	defer rt.engMu.Unlock()
	for _, eng := range rt.engines {
		se, ok := eng.(*shard.Engine)
		if !ok {
			continue
		}
		for i, sn := range se.Snapshots() {
			out[i].SingleCommits += sn.SingleCommits
			out[i].CrossCommits += sn.CrossCommits
			out[i].BatchedRequests += sn.BatchedRequests
		}
	}
	return out
}

// ShardTicket returns the cross-shard commit ticket, summed over every
// sharded engine instance — zero exactly when no cross-shard commit has run.
func (rt *Runtime) ShardTicket() uint64 {
	var t uint64
	rt.engMu.Lock()
	defer rt.engMu.Unlock()
	for _, eng := range rt.engines {
		if se, ok := eng.(*shard.Engine); ok {
			t += se.Ticket()
		}
	}
	return t
}

// ShardClock probes shard s's commit metadata (TL2 version clock or NOrec
// sequence lock) on the engine currently executing new attempts. The second
// result is false on classic runtimes, out-of-range shards, and engines
// without a clock probe. Routing tests use it to assert that single-shard
// traffic never moves another shard's clock.
func (rt *Runtime) ShardClock(s int) (uint64, bool) {
	if se, ok := rt.cur.Load().eng.(*shard.Engine); ok {
		return se.ClockValue(s)
	}
	return 0, false
}

// Atomically executes fn as one transaction, retrying on conflict until it
// commits. The function may run several times; it must confine its side
// effects to transactional variables (and idempotent local state). A panic
// other than the internal abort signal propagates to the caller after the
// attempt is rolled back. A transaction that aborts EscalateAfter times in a
// row escalates to the irrevocable serializing mode and is guaranteed to
// commit (see progress.go); use AtomicallyCtx or TryAtomically for bounded
// execution.
func (rt *Runtime) Atomically(fn func(tx *Tx)) {
	rt.run(fn, runCfg{}) // unbounded: the only exit is a commit
}

// tryOnce runs a single attempt, returning whether it committed and, on
// abort, the typed reason (also latched on the descriptor for the retry
// engine's reason log).
func (rt *Runtime) tryOnce(tx *Tx, fn func(tx *Tx), cfg runCfg) (committed bool, reason AbortReason) {
	defer func() {
		if r := recover(); r != nil {
			tx.impl.Cleanup()
			tx.shard.Merge(tx.impl.AttemptStats(), false)
			// The attempt is rolled back: run the abort hooks (allocator
			// reclamation and the like) before anything can observe the
			// descriptor again — for user panics too, since the body will not
			// re-run and whatever the hooks guard would otherwise leak.
			tx.runAbortHooks()
			if !core.IsAbort(r) {
				// A user panic unwinds straight past the retry loop's normal
				// active-flag clear; drop the flag here or the descriptor
				// would re-enter the pool still marked in-flight (which an
				// adaptive drain would wait on forever, and which releaseTx
				// now rejects).
				tx.active.Store(0)
				panic(r)
			}
			reason, _ = core.ReasonOf(r)
			tx.lastReason = reason
			tx.shard.CountAbortReason(reason)
		}
	}()
	tx.clearAbortHooks()
	tx.impl.Start()
	fn(tx)
	if cfg.privatize && tx.priv != nil {
		tx.priv.CommitPrivatize()
	} else {
		tx.impl.Commit()
	}
	if cfg.batchUnits > 0 {
		noteBatch(tx, cfg.batchUnits)
	}
	tx.shard.Merge(tx.impl.AttemptStats(), true)
	tx.clearAbortHooks()
	return true, AbortUnknown
}

// Run executes fn transactionally and returns its result, a convenience for
// read-mostly transactions that produce a value.
func Run[T any](rt *Runtime, fn func(tx *Tx) T) T {
	var out T
	rt.Atomically(func(tx *Tx) { out = fn(tx) })
	return out
}

// Tx is a live transaction handle, valid only inside the function passed to
// Atomically, and only on the goroutine that received it.
type Tx struct {
	rt         *Runtime
	impl       core.TxImpl
	epoch      epochResetter    // impl's cached NewEpoch assertion; nil if absent
	priv       core.Privatizer  // impl's cached privatizing-commit assertion
	slot       *engineSlot      // the engine binding impl was built from
	pin        *core.EpochPin   // reclamation-epoch pin (held across each run)
	shard      *core.StatsShard // this descriptor's slice of the runtime counters
	rng        *rand.Rand
	ops        int
	lastReason AbortReason // reason of the most recent aborted attempt
	// reasonBuf backs the bounded-mode abort-reason log of run(): recording a
	// reason is a store into this descriptor-owned ring rather than a slice
	// append, so TryAtomically/AtomicallyCtx allocate only when they actually
	// fail (runErr copies the buffer into the returned AbortError).
	reasonBuf [abortReasonCap]AbortReason

	// active is 1 while an attempt is executing between the switch-gate
	// check and its commit/abort; the engine-switch drain waits on it. Only
	// adaptive runtimes use it (see Runtime.enterAttempt).
	active atomic.Uint32
	// sinceAdapt counts attempts since this descriptor last triggered a
	// policy evaluation.
	sinceAdapt int

	// abortHooks are per-attempt callbacks registered with OnAbort, run after
	// an attempt's rollback and discarded on commit. Transaction-aware
	// allocators (internal/txds) use them to reclaim side-effect allocations
	// the engine's rollback cannot see.
	abortHooks []func()
}

// OnAbort registers fn to run if — and only if — the current attempt aborts,
// after the engine has rolled the attempt back. Hooks registered during an
// attempt are discarded when that attempt commits, and the set starts empty
// on every attempt, so a hook never outlives (or predates) the attempt that
// registered it. Hooks run in registration order on the transaction's
// goroutine; they must not use tx.
//
// This is the reclamation channel for non-transactional side effects of a
// transaction body: a pool allocator that hands out a node inside an attempt
// registers a hook returning it to the free list, so an aborted insert does
// not leak the node (the engine only rolls back Var writes).
func (tx *Tx) OnAbort(fn func()) {
	tx.abortHooks = append(tx.abortHooks, fn)
}

// runAbortHooks fires the attempt's abort hooks in registration order and
// clears the set.
func (tx *Tx) runAbortHooks() {
	for i, fn := range tx.abortHooks {
		tx.abortHooks[i] = nil
		fn()
	}
	tx.abortHooks = tx.abortHooks[:0]
}

// clearAbortHooks discards the attempt's abort hooks without running them
// (commit path, and attempt start), nilling entries so pooled descriptors do
// not retain closures.
func (tx *Tx) clearAbortHooks() {
	if len(tx.abortHooks) == 0 {
		return
	}
	for i := range tx.abortHooks {
		tx.abortHooks[i] = nil
	}
	tx.abortHooks = tx.abortHooks[:0]
}

// BackoffPolicy selects how a transaction waits between attempts — the
// contention-manager choice the TM literature studies ([Scherer & Scott,
// PODC 2005]); the ablation benchmarks compare them.
type BackoffPolicy int

const (
	// BackoffExp (default): a few polite yields, then randomized
	// exponential sleeps.
	BackoffExp BackoffPolicy = iota
	// BackoffYield: always just yield the processor.
	BackoffYield
	// BackoffNone: retry immediately.
	BackoffNone
)

// maybeYield implements the interleave simulation of SetYieldEvery.
func (tx *Tx) maybeYield() {
	if n := tx.rt.yieldEvery; n > 0 {
		tx.ops++
		if tx.ops%n == 0 {
			runtime.Gosched()
		}
	}
}

// backoff applies the runtime's contention-management policy between
// attempts. The default is randomized exponential backoff: polite yields for
// the first conflicts, short randomized sleeps after that. Two progress
// amendments: budget caps the cumulative sleep of one Atomically-family call
// (once spent, backoff degrades to yields, so a starving transaction reaches
// its escalation threshold in bounded time), and a non-nil done channel
// cuts any sleep short on cancellation.
func (tx *Tx) backoff(attempt int, done <-chan struct{}, budget *time.Duration) {
	switch tx.rt.backoff {
	case BackoffNone:
		return
	case BackoffYield:
		runtime.Gosched()
		return
	}
	if attempt < 4 {
		runtime.Gosched()
		return
	}
	shift := attempt
	if shift > 12 {
		shift = 12
	}
	max := 1 << shift // microseconds
	d := time.Duration(1+tx.rng.IntN(max)) * time.Microsecond
	if d > *budget {
		d = *budget
	}
	if d <= 0 {
		runtime.Gosched()
		return
	}
	*budget -= d
	if done == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
	}
}

// Read is the classical TM_READ barrier: it returns the transactional value
// of v.
func (tx *Tx) Read(v *Var) int64 { tx.maybeYield(); return tx.impl.Read(v) }

// Write is the classical TM_WRITE barrier: it buffers the store of val to v.
func (tx *Tx) Write(v *Var, val int64) { tx.maybeYield(); tx.impl.Write(v, val) }

// Cmp evaluates the semantic conditional "*v op operand" (TM_GT and friends,
// address–value form).
func (tx *Tx) Cmp(v *Var, op Op, operand int64) bool {
	tx.maybeYield()
	return tx.impl.Cmp(v, op, operand)
}

// CmpVars evaluates the address–address conditional "*a op *b" (_ITM_S2R).
func (tx *Tx) CmpVars(a *Var, op Op, b *Var) bool { tx.maybeYield(); return tx.impl.CmpVars(a, op, b) }

// GT reports whether *v > operand (TM_GT).
func (tx *Tx) GT(v *Var, operand int64) bool {
	tx.maybeYield()
	return tx.impl.Cmp(v, core.OpGT, operand)
}

// GTE reports whether *v >= operand (TM_GTE).
func (tx *Tx) GTE(v *Var, operand int64) bool {
	tx.maybeYield()
	return tx.impl.Cmp(v, core.OpGTE, operand)
}

// LT reports whether *v < operand (TM_LT).
func (tx *Tx) LT(v *Var, operand int64) bool {
	tx.maybeYield()
	return tx.impl.Cmp(v, core.OpLT, operand)
}

// LTE reports whether *v <= operand (TM_LTE).
func (tx *Tx) LTE(v *Var, operand int64) bool {
	tx.maybeYield()
	return tx.impl.Cmp(v, core.OpLTE, operand)
}

// EQ reports whether *v == operand (TM_EQ).
func (tx *Tx) EQ(v *Var, operand int64) bool {
	tx.maybeYield()
	return tx.impl.Cmp(v, core.OpEQ, operand)
}

// NEQ reports whether *v != operand (TM_NEQ).
func (tx *Tx) NEQ(v *Var, operand int64) bool {
	tx.maybeYield()
	return tx.impl.Cmp(v, core.OpNEQ, operand)
}

// Inc adds delta (which may be negative) to *v (TM_INC / TM_DEC). The read
// half of the update is deferred to commit time unless a later read of v in
// the same transaction promotes it.
func (tx *Tx) Inc(v *Var, delta int64) { tx.maybeYield(); tx.impl.Inc(v, delta) }

// Dec subtracts delta from *v; Dec(v, d) is Inc(v, -d).
func (tx *Tx) Dec(v *Var, delta int64) { tx.maybeYield(); tx.impl.Inc(v, -delta) }

// CmpSum evaluates the arithmetic conditional "(*vars[0] + *vars[1] + ...)
// op rhs". Under S-NOrec and S-HTM the whole comparison is one semantic
// fact, so compensating changes to the addends never abort the reader (the
// "x + y > 0" extension of the paper's technical report); other algorithms
// delegate to classical reads.
func (tx *Tx) CmpSum(op Op, rhs int64, vars ...*Var) bool {
	tx.maybeYield()
	return tx.impl.CmpSum(op, rhs, vars)
}

// CmpAny evaluates the composed condition "c1 || c2 || ...". Under S-NOrec
// and S-HTM the disjunction is one semantic fact — a clause may flip as long
// as the overall outcome holds (the full-strength version of the paper's
// Algorithm 1 example); S-TL2 records each evaluated clause as its own fact.
func (tx *Tx) CmpAny(conds ...Cond) bool {
	tx.maybeYield()
	return tx.impl.CmpAny(conds)
}

// Restart aborts the current attempt and re-executes the transaction from
// the beginning (an external abort in TM terms); the attempt is recorded
// with AbortExplicit. An unconditional Restart defeats every progress
// guarantee, including escalation — the retry-loop idiom is to Restart only
// while a predicate fails.
func (tx *Tx) Restart() { core.AbortWith(core.ReasonExplicit) }
