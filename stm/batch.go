// Batch execution: many logical transactions folded into one commit.
//
// The networked store (internal/server) amortizes the commit path by
// coalescing a window of compatible client requests into one Atomically per
// shard: the per-commit fixed costs — descriptor setup, clock/seqlock
// acquisition, validation, the WAL append and its fsync share — are paid once
// per window instead of once per request (DESIGN.md §15). AtomicallyBatch is
// the runtime entry point for that pattern: it runs the caller-assembled
// batch body as one bounded transaction and, on commit, accounts the folded
// logical requests to the engine (per-shard on sharded runtimes), so the
// amortization factor is observable instead of inferred.
//
// Failure semantics are the batcher's contract: the batch either commits as
// a whole or, once its attempt budget is exhausted, returns the typed
// *AbortError — at which point the caller re-executes the batch's units solo
// so one doomed unit cannot abort its batchmates (the straggler re-execution
// rule).
package stm

import "semstm/internal/core"

// DefaultBatchAttempts is the attempt budget of AtomicallyBatch when no
// MaxAttempts option is given. It is deliberately much smaller than
// DefaultMaxAttempts: a batch that keeps aborting should fall apart into
// solo re-execution quickly — retrying a doomed unit's batchmates behind it
// just multiplies the wasted work by the batch width.
const DefaultBatchAttempts = 4

// AtomicallyBatch executes body — a caller-assembled batch of units logical
// transactions — as one bounded transaction. It returns nil once an attempt
// commits, or the *AbortError of the exhausted budget (default
// DefaultBatchAttempts; override with MaxAttempts), after which the caller
// should re-execute the batch's units individually.
//
// On commit, the units count is folded into the engine's batched-request
// accounting (ShardStats.Batched on sharded runtimes): one engine commit
// carrying units logical requests. units is accounting only; the body is
// responsible for actually executing every unit.
func (rt *Runtime) AtomicallyBatch(units int, body func(tx *Tx), opts ...TryOption) error {
	max := DefaultBatchAttempts
	if len(opts) > 0 {
		o := tryOpts{maxAttempts: max}
		for _, opt := range opts {
			opt(&o)
		}
		max = o.maxAttempts
	}
	if max < 1 {
		max = 1
	}
	return rt.run(body, runCfg{maxAttempts: max, batchUnits: units})
}

// noteBatch folds a committed batch's unit count into the engine-level
// accounting, when the engine keeps any (sharded engines do, per shard).
func noteBatch(tx *Tx, units int) {
	if bn, ok := tx.impl.(core.BatchNoter); ok {
		bn.NoteBatch(units)
	}
}
