//go:build !race

// The race detector instruments every memory access with heap-allocated
// shadow state, so AllocsPerRun can never reach zero under -race; the
// zero-allocation contract is asserted in regular test runs only (the race
// configuration still runs the pool-poisoning fuzz over the same paths).

package stm_test

import (
	"context"
	"runtime"
	"testing"

	"semstm/stm"
)

// zeroAllocEngines is the acceptance matrix of ISSUE 5: every fixed engine
// family plus the adaptive composite must run the transaction lifecycle
// allocation-free after warm-up.
var zeroAllocEngines = []stm.Algorithm{
	stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2,
	stm.Ring, stm.SRing, stm.SGL, stm.HTM, stm.SHTM, stm.Adaptive,
	stm.HyTM, stm.HyTMMid,
}

// assertZeroAllocs runs fn once to warm the descriptor pool, settles the
// heap, and then requires testing.AllocsPerRun to report exactly zero.
func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm-up: populate the pool, grow the reusable sets
	runtime.GC()
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		t.Errorf("%s: %.2f allocs/op after warm-up, want 0", name, n)
	}
}

// TestZeroAllocLifecycle pins the steady-state allocation count of all three
// public entry points — Atomically, TryAtomically, AtomicallyCtx — at zero on
// every engine, for a small read-write transaction (2 reads, 2 writes).
func TestZeroAllocLifecycle(t *testing.T) {
	for _, algo := range zeroAllocEngines {
		t.Run(algo.String(), func(t *testing.T) {
			rt := stm.New(algo)
			vars := stm.NewVars(8, 1)
			body := func(tx *stm.Tx) {
				s := tx.Read(vars[0]) + tx.Read(vars[1])
				tx.Write(vars[2], s)
				tx.Write(vars[3], s+1)
			}
			assertZeroAllocs(t, "Atomically", func() { rt.Atomically(body) })
			assertZeroAllocs(t, "TryAtomically", func() {
				if err := rt.TryAtomically(body); err != nil {
					t.Fatalf("TryAtomically: %v", err)
				}
			})
			ctx := context.Background()
			assertZeroAllocs(t, "AtomicallyCtx", func() {
				if err := rt.AtomicallyCtx(ctx, body); err != nil {
					t.Fatalf("AtomicallyCtx: %v", err)
				}
			})
		})
	}
}

// TestZeroAllocFallbackHTM pins the forced-fallback HTM configuration: the
// capacity abort, the unwind through the pre-boxed abort signal, and the
// irrevocable lock commit must all stay off the heap too.
func TestZeroAllocFallbackHTM(t *testing.T) {
	rt := stm.New(stm.HTM)
	rt.ConfigureHTM(1, 0, 0)
	vars := stm.NewVars(8, 1)
	assertZeroAllocs(t, "fallback", func() {
		rt.Atomically(func(tx *stm.Tx) {
			tx.Write(vars[0], tx.Read(vars[1])+1)
		})
	})
}
