package stm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"semstm/stm"
)

// TestTryAtomicallyCommits verifies the bounded API returns nil on a
// successful transaction under every algorithm.
func TestTryAtomicallyCommits(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		x := stm.NewVar(1)
		if err := rt.TryAtomically(func(tx *stm.Tx) { tx.Inc(x, 1) }); err != nil {
			t.Fatalf("TryAtomically: %v", err)
		}
		if got := x.Load(); got != 2 {
			t.Fatalf("x = %d, want 2", got)
		}
	})
}

// TestTryAtomicallyExhaustion verifies an always-restarting transaction
// exhausts its attempt budget and returns a typed *AbortError carrying the
// attempt count and per-attempt reasons.
func TestTryAtomicallyExhaustion(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		x := stm.NewVar(0)
		err := rt.TryAtomically(func(tx *stm.Tx) {
			tx.Inc(x, 1)
			tx.Restart()
		}, stm.MaxAttempts(5))
		var ae *stm.AbortError
		if !errors.As(err, &ae) {
			t.Fatalf("err = %v (%T), want *AbortError", err, err)
		}
		if ae.Attempts != 5 || len(ae.Reasons) != 5 {
			t.Fatalf("Attempts=%d Reasons=%v, want 5 attempts with 5 reasons", ae.Attempts, ae.Reasons)
		}
		for _, r := range ae.Reasons {
			if r != stm.AbortExplicit {
				t.Fatalf("reason %v, want explicit", r)
			}
		}
		if ae.Cause != nil || ae.Escalated {
			t.Fatalf("unexpected Cause=%v Escalated=%v", ae.Cause, ae.Escalated)
		}
		// SGL is exempt from the rollback assertion: it writes in place
		// with no undo log (it cannot abort on its own; only a user
		// Restart unwinds it), so restarted writes are visible by design.
		if got := x.Load(); got != 0 && rt.Algorithm() != stm.SGL {
			t.Fatalf("aborted attempts leaked a write: x = %d", got)
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
		sn := rt.Stats()
		if sn.Commits != 0 || sn.Aborts != 5 || sn.AbortReasons[stm.AbortExplicit] != 5 {
			t.Fatalf("stats = %+v", sn)
		}
	})
}

// TestTryAtomicallyReasonCap verifies the per-attempt reason log is bounded.
func TestTryAtomicallyReasonCap(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	rt.SetEscalateAfter(0)
	err := rt.TryAtomically(func(tx *stm.Tx) { tx.Restart() }, stm.MaxAttempts(100))
	var ae *stm.AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v", err)
	}
	if ae.Attempts != 100 || len(ae.Reasons) != 64 {
		t.Fatalf("Attempts=%d len(Reasons)=%d, want 100 and 64", ae.Attempts, len(ae.Reasons))
	}
	if ae.Error() == "" {
		t.Fatal("empty error string")
	}
}

// TestAtomicallyCtxCancelled verifies cancellation: an already-ended context
// returns immediately, and cancelling mid-livelock unwinds with a typed
// error that errors.Is-matches the context error.
func TestAtomicallyCtxCancelled(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		rt.SetEscalateAfter(0) // keep the livelock spinning until cancel

		pre, cancel := context.WithCancel(context.Background())
		cancel()
		if err := rt.AtomicallyCtx(pre, func(tx *stm.Tx) {}); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-cancelled ctx: err = %v", err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		attempts := 0
		err := rt.AtomicallyCtx(ctx, func(tx *stm.Tx) {
			attempts++
			if attempts >= 10 {
				cancel()
			}
			tx.Restart()
		})
		var ae *stm.AbortError
		if !errors.As(err, &ae) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v (%T)", err, err)
		}
		if ae.Attempts < 10 {
			t.Fatalf("Attempts = %d, want >= 10", ae.Attempts)
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAtomicallyCtxCommits verifies the happy path returns nil.
func TestAtomicallyCtxCommits(t *testing.T) {
	rt := stm.New(stm.STL2)
	x := stm.NewVar(0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := rt.AtomicallyCtx(ctx, func(tx *stm.Tx) { tx.Write(x, 7) }); err != nil {
		t.Fatal(err)
	}
	if got := x.Load(); got != 7 {
		t.Fatalf("x = %d", got)
	}
}

// TestEscalationGuaranteesCommit is the acceptance scenario of the progress
// layer: with 100% commit-site fault injection a transaction is starved for
// exactly EscalateAfter attempts, then escalates to the irrevocable
// serializing mode (fault plan disarmed) and commits. The counters must read
// aborts == EscalateAfter, escalations == 1, commits == 1.
func TestEscalationGuaranteesCommit(t *testing.T) {
	const starve = 1000
	for _, a := range []stm.Algorithm{stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2, stm.Ring, stm.SRing} {
		t.Run(a.String(), func(t *testing.T) {
			rt := stm.New(a)
			rt.SetBackoff(stm.BackoffYield) // don't sleep through 1000 dooms
			rt.SetFaultPlan(stm.NewFaultPlan(1).WithSpurious(stm.SiteCommit, 100))
			rt.SetEscalateAfter(starve)
			x := stm.NewVar(0)
			rt.Atomically(func(tx *stm.Tx) { tx.Inc(x, 1) })
			if got := x.Load(); got != 1 {
				t.Fatalf("x = %d, want 1", got)
			}
			sn := rt.Stats()
			if sn.Commits != 1 || sn.Aborts != starve || sn.Escalations != 1 {
				t.Fatalf("commits=%d aborts=%d escalations=%d, want 1/%d/1",
					sn.Commits, sn.Aborts, sn.Escalations, starve)
			}
			if sn.AbortReasons[stm.AbortSpurious] != starve {
				t.Fatalf("spurious aborts = %d, want %d", sn.AbortReasons[stm.AbortSpurious], starve)
			}
			if err := rt.CheckQuiescent(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEscalationDisabled verifies SetEscalateAfter(0) leaves the bounded API
// to exhaust its budget against permanent injection instead of escalating.
func TestEscalationDisabled(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	rt.SetBackoff(stm.BackoffYield)
	rt.SetFaultPlan(stm.NewFaultPlan(2).WithSpurious(stm.SiteCommit, 100))
	rt.SetEscalateAfter(0)
	err := rt.TryAtomically(func(tx *stm.Tx) {}, stm.MaxAttempts(50))
	var ae *stm.AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v", err)
	}
	if ae.Attempts != 50 || ae.Escalated {
		t.Fatalf("Attempts=%d Escalated=%v", ae.Attempts, ae.Escalated)
	}
	sn := rt.Stats()
	if sn.Escalations != 0 || sn.AbortReasons[stm.AbortSpurious] != 50 {
		t.Fatalf("stats = %+v", sn)
	}
}

// TestEscalationHTMFallback: the HTM backend has its own escape hatch (the
// lock fallback), which must engage before runtime escalation even under
// 100% injected commit faults — injected faults are folded into the
// hardware-failure budget.
func TestEscalationHTMFallback(t *testing.T) {
	for _, a := range []stm.Algorithm{stm.HTM, stm.SHTM} {
		t.Run(a.String(), func(t *testing.T) {
			rt := stm.New(a)
			rt.SetFaultPlan(stm.NewFaultPlan(3).WithSpurious(stm.SiteCommit, 100))
			x := stm.NewVar(0)
			rt.Atomically(func(tx *stm.Tx) { tx.Inc(x, 1) })
			if got := x.Load(); got != 1 {
				t.Fatalf("x = %d", got)
			}
			sn := rt.Stats()
			if sn.Commits != 1 || sn.Escalations != 0 {
				t.Fatalf("commits=%d escalations=%d, want fallback commit without escalation",
					sn.Commits, sn.Escalations)
			}
			fallbacks, _ := rt.HTMStats()
			if fallbacks == 0 {
				t.Fatal("lock fallback never engaged")
			}
			if err := rt.CheckQuiescent(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckQuiescentClean verifies the probe reports clean on a fresh
// runtime and after ordinary commits, for every algorithm.
func TestCheckQuiescentClean(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatalf("fresh runtime: %v", err)
		}
		x := stm.NewVar(0)
		for i := 0; i < 100; i++ {
			rt.Atomically(func(tx *stm.Tx) { tx.Inc(x, 1) })
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}
