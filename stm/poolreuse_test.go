package stm_test

// Descriptor-pool reuse fuzz: the zero-allocation lifecycle recycles fully
// built descriptors through a sync.Pool, so the isolation between two
// logically distinct transactions now depends on Reset discipline instead of
// fresh memory. This test hammers that discipline under -race (the package is
// in check.sh's RACE_PKGS): concurrent workers mix all three entry points,
// force explicit aborts, cancel contexts, and run under fault injection and a
// low escalation threshold, while a chaos goroutine switches the Adaptive
// runtime between concrete engines — every switch rebinding live pooled
// descriptors.
//
// What would leak if Reset discipline broke, and what catches it:
//
//   - write-set entries replayed from a previous transaction corrupt the
//     transfer amounts → the conservation invariant fails;
//   - a stale abort-reason log (or the release-time poison sentinel, which
//     stringifies as "invalid") surfaces in a later call's AbortError →
//     the reason-validity assertion fails;
//   - a descriptor released with its adaptive active flag still raised
//     panics in releaseTx, and one leaked raised flag deadlocks the next
//     engine switch's drain → the test hangs instead of passing;
//   - engine metadata left locked by a recycled descriptor → CheckQuiescent
//     fails after the run.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"semstm/stm"
)

// validReasons is the exhaustive stringification of the abort-reason enum;
// anything else in an AbortError — in particular the pool poison, which
// prints as "invalid" — is leaked descriptor state.
var validReasons = map[string]bool{
	"unknown": true, "validation": true, "cmp-flip": true, "orec-locked": true,
	"capacity": true, "spurious": true, "explicit": true,
}

func assertReasonsValid(t *testing.T, err error) {
	var ae *stm.AbortError
	if !errors.As(err, &ae) {
		return
	}
	for _, r := range ae.Reasons {
		if !validReasons[r.String()] {
			t.Errorf("leaked descriptor state: abort reason %q (%d) in %v", r.String(), int(r), ae)
			return
		}
	}
}

func TestPoolReusePoisoningFuzz(t *testing.T) {
	workers, per := chaosScale(t)
	rt := stm.New(stm.Adaptive)
	rt.SetFaultPlan(chaosPlan(0x9015011))
	rt.SetEscalateAfter(48) // low: drive pooled descriptors through escalation
	const accounts, initial = 16, 1000
	accts := stm.NewVars(accounts, initial)

	var wg sync.WaitGroup
	stopSwitch := make(chan struct{})
	// Chaos switcher: cycle the runtime across concrete engines so pooled
	// descriptors are continually rebound mid-lifecycle.
	ladder := []stm.Algorithm{stm.NOrec, stm.TL2, stm.Ring, stm.SGL, stm.HTM, stm.SNOrec}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopSwitch:
				return
			default:
			}
			if err := rt.SwitchEngine(ladder[i%len(ladder)]); err != nil {
				t.Errorf("SwitchEngine: %v", err)
				return
			}
		}
	}()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled: exercises the immediate-return path
	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(seed int64) {
			defer workerWG.Done()
			r := seed
			next := func(n int64) int64 {
				r = r*6364136223846793005 + 1442695040888963407
				v := (r >> 33) % n
				if v < 0 {
					v += n
				}
				return v
			}
			for i := 0; i < per; i++ {
				from, to := next(accounts), next(accounts)
				amt := 1 + next(7)
				transfer := func(tx *stm.Tx) {
					tx.Inc(accts[from], -amt)
					tx.Inc(accts[to], amt)
				}
				switch next(5) {
				case 0:
					rt.Atomically(transfer)
				case 1:
					// Tiny budget: frequently exhausts and returns the
					// per-attempt reason log from the descriptor buffer.
					assertReasonsValid(t, rt.TryAtomically(transfer, stm.MaxAttempts(int(1+next(3)))))
				case 2:
					assertReasonsValid(t, rt.AtomicallyCtx(context.Background(), transfer))
				case 3:
					assertReasonsValid(t, rt.AtomicallyCtx(cancelled, transfer))
				default:
					// Explicit restart on the first attempt: the returned
					// AbortError must carry this call's "explicit" reason,
					// never residue from the descriptor's previous life.
					first := true
					err := rt.TryAtomically(func(tx *stm.Tx) {
						if first {
							first = false
							tx.Restart()
						}
						transfer(tx)
					}, stm.MaxAttempts(1))
					if err == nil {
						t.Error("TryAtomically(MaxAttempts(1)) with Restart: want error")
					}
					assertReasonsValid(t, err)
				}
			}
		}(int64(w)*0x9E3779B9 + 1)
	}
	workerWG.Wait()
	close(stopSwitch)
	wg.Wait()

	var sum int64
	rt.Atomically(func(tx *stm.Tx) {
		sum = 0
		for _, a := range accts {
			sum += tx.Read(a)
		}
	})
	if want := int64(accounts * initial); sum != want {
		t.Errorf("conservation violated: total %d, want %d (leaked write-set state?)", sum, want)
	}
	if err := rt.CheckQuiescent(); err != nil {
		t.Errorf("after fuzz: %v", err)
	}
}
