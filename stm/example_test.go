package stm_test

import (
	"fmt"

	"semstm/stm"
)

// The classic inventory pattern: check availability semantically, then
// update with deferred increments.
func ExampleRuntime_Atomically() {
	rt := stm.New(stm.SNOrec)
	stock := stm.NewVar(3)
	sold := stm.NewVar(0)

	for i := 0; i < 5; i++ {
		rt.Atomically(func(tx *stm.Tx) {
			if tx.GT(stock, 0) { // TM_GT: a fact, not a value
				tx.Dec(stock, 1) // TM_DEC: no read, applied at commit
				tx.Inc(sold, 1)
			}
		})
	}
	fmt.Println(stock.Load(), sold.Load())
	// Output: 0 3
}

// Run returns a value computed inside the transaction.
func ExampleRun() {
	rt := stm.New(stm.STL2)
	x := stm.NewVar(20)
	y := stm.NewVar(22)
	sum := stm.Run(rt, func(tx *stm.Tx) int64 {
		return tx.Read(x) + tx.Read(y)
	})
	fmt.Println(sum)
	// Output: 42
}

// The address–address form compares two transactional variables as one
// semantic fact — the queue-emptiness test of the paper's Algorithm 3.
func ExampleTx_CmpVars() {
	rt := stm.New(stm.SNOrec)
	head := stm.NewVar(4)
	tail := stm.NewVar(7)
	empty := stm.Run(rt, func(tx *stm.Tx) bool {
		return tx.CmpVars(head, stm.OpEQ, tail)
	})
	fmt.Println(empty)
	// Output: false
}

// CmpSum treats an arithmetic comparison over several variables as one
// fact: concurrent transfers between x and y can never abort this check.
func ExampleTx_CmpSum() {
	rt := stm.New(stm.SNOrec)
	x := stm.NewVar(100)
	y := stm.NewVar(-40)
	solvent := stm.Run(rt, func(tx *stm.Tx) bool {
		return tx.CmpSum(stm.OpGT, 0, x, y)
	})
	fmt.Println(solvent)
	// Output: true
}

// CmpAny treats a disjunction as one fact: a clause may flip as long as
// another carries the OR (the paper's Algorithm 1, full strength).
func ExampleTx_CmpAny() {
	rt := stm.New(stm.SNOrec)
	x := stm.NewVar(-5)
	y := stm.NewVar(9)
	ok := stm.Run(rt, func(tx *stm.Tx) bool {
		return tx.CmpAny(
			stm.Cond{Var: x, Op: stm.OpGT, Operand: 0},
			stm.Cond{Var: y, Op: stm.OpGT, Operand: 0},
		)
	})
	fmt.Println(ok)
	// Output: true
}

// Restart retries the transaction from scratch — an external abort.
func ExampleTx_Restart() {
	rt := stm.New(stm.SNOrec)
	turn := stm.NewVar(0)
	attempts := 0
	rt.Atomically(func(tx *stm.Tx) {
		attempts++
		if attempts < 3 {
			tx.Restart()
		}
		tx.Write(turn, int64(attempts))
	})
	fmt.Println(attempts, turn.Load())
	// Output: 3 3
}

// Runtimes expose the statistics behind the paper's Table 3.
func ExampleRuntime_Stats() {
	rt := stm.New(stm.SNOrec)
	v := stm.NewVar(1)
	rt.Atomically(func(tx *stm.Tx) {
		if tx.GT(v, 0) {
			tx.Inc(v, 1)
		}
	})
	sn := rt.Stats()
	fmt.Println(sn.Commits, sn.Compares, sn.Incs)
	// Output: 1 1 1
}
