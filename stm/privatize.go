// Privatization-safe Var lifecycle (DESIGN.md §14).
//
// Transactional data structures that physically unlink nodes face the classic
// STM privatization problem: after a commit removes a cell from every shared
// structure, doomed ("zombie") transactions that captured the cell's address
// before the commit may still dereference it — and an allocator that recycles
// the cell immediately would hand their stale reads somebody else's data.
//
// The lifecycle this file exposes closes both halves of that race:
//
//   - AtomicallyPrivatize commits through the engine's privatizing commit
//     variant (core.Privatizer): after the commit linearizes, the committer
//     waits until every concurrent transaction has finished or revalidated
//     past it. When the call returns, the caller owns whatever the
//     transaction unlinked — plain Var.Load/StoreNT access, no
//     instrumentation, no torn values.
//   - Retire parks a privatized Var on the epoch-based reclamation limbo
//     lists; once every transaction descriptor has moved two epochs past the
//     retirement, the cell (memory and allocation id) recycles through the
//     NewVar* allocation paths.
//
// The two compose into the privatize-then-free idiom:
//
//	var victim *stm.Var
//	rt.AtomicallyPrivatize(func(tx *stm.Tx) {
//		victim = unlink(tx) // rewrite links so victim is unreachable
//	})
//	sum := victim.Load() // private now: uninstrumented access is safe
//	stm.Retire(victim)   // epoch-deferred recycling
package stm

import "semstm/internal/core"

// AtomicallyPrivatize executes fn as one transaction whose commit doubles as
// a privatization barrier: when the call returns, no concurrently started
// transaction can still observe state predating fn's commit, so memory fn
// made unreachable belongs to the caller outright. Aborted attempts retry
// exactly like Atomically (no barrier is paid until an attempt commits).
//
// The barrier drains only the engine instances the transaction touched — on
// a sharded runtime, untouched shards never stall — and costs one reader-table
// scan plus however long in-flight doomed readers take to abort, commit, or
// revalidate. Use Atomically for ordinary transactions; reserve this variant
// for structural unlinks whose results will be accessed uninstrumented or
// handed to Retire.
func (rt *Runtime) AtomicallyPrivatize(fn func(tx *Tx)) {
	rt.run(fn, runCfg{privatize: true})
}

// Retire hands a privatized Var to the epoch-based reclaimer. The caller
// asserts v is unreachable through every transactional structure — the
// contract an AtomicallyPrivatize unlink establishes — and must not touch v
// afterwards. Retiring the same Var twice panics.
//
// Reclamation is automatic: sustained Retire traffic periodically advances
// the reclamation epoch, and cells retired two epochs ago recycle through
// NewVar/NewVarOn/NewVarDurable with their allocation id intact (stable orec
// homes, no unbounded id growth). AdvanceEpoch exposes the pump for callers
// that want deterministic reclamation points.
func Retire(v *Var) { core.Retire(v) }

// AdvanceEpoch attempts one reclamation-epoch advance, returning whether it
// succeeded. An advance fails while any transaction is still pinned to an
// older epoch. Two successful advances after a Retire make the retired cell
// available for recycling; steady-state workloads never need to call this —
// Retire self-pumps — but deterministic tests and teardown paths do.
func AdvanceEpoch() bool { return core.AdvanceEpoch() }
