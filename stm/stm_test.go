package stm_test

import (
	"sync"
	"testing"

	"semstm/stm"
)

// forEachAlgo runs the test once per algorithm, semantic and not.
func forEachAlgo(t *testing.T, f func(t *testing.T, rt *stm.Runtime)) {
	t.Helper()
	for _, a := range stm.Algorithms() {
		t.Run(a.String(), func(t *testing.T) { f(t, stm.New(a)) })
	}
}

func TestCounterIncrements(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		const workers, per = 8, 500
		c := stm.NewVar(0)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					rt.Atomically(func(tx *stm.Tx) { tx.Inc(c, 1) })
				}
			}()
		}
		wg.Wait()
		if got := c.Load(); got != workers*per {
			t.Fatalf("counter = %d, want %d", got, workers*per)
		}
	})
}

func TestBankConservation(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		const accounts, workers, per, initial = 32, 6, 300, 1000
		accts := stm.NewVars(accounts, initial)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := seed
				next := func(n int64) int64 {
					r = r*6364136223846793005 + 1442695040888963407
					v := (r >> 33) % n
					if v < 0 {
						v += n
					}
					return v
				}
				for i := 0; i < per; i++ {
					from := accts[next(accounts)]
					to := accts[next(accounts)]
					amt := next(50) + 1
					rt.Atomically(func(tx *stm.Tx) {
						// Overdraft check via semantic GTE, then
						// semantic transfer (Bank benchmark pattern).
						if tx.GTE(from, amt) {
							tx.Dec(from, amt)
							tx.Inc(to, amt)
						}
					})
				}
			}(int64(w + 1))
		}
		wg.Wait()
		var sum int64
		for _, a := range accts {
			v := a.Load()
			if v < 0 {
				t.Fatalf("negative balance %d: overdraft check violated", v)
			}
			sum += v
		}
		if sum != accounts*initial {
			t.Fatalf("total = %d, want %d (money not conserved)", sum, accounts*initial)
		}
	})
}

// TestSnapshotConsistency is an opacity smoke test: writers keep x == y at
// all times; any transaction that observes x != y has read an inconsistent
// snapshot.
func TestSnapshotConsistency(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		x, y := stm.NewVar(0), stm.NewVar(0)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rt.Atomically(func(tx *stm.Tx) {
					tx.Write(x, i)
					tx.Write(y, i)
				})
			}
		}()
		var violations int
		for i := 0; i < 2000; i++ {
			a, b := int64(0), int64(0)
			rt.Atomically(func(tx *stm.Tx) {
				a = tx.Read(x)
				b = tx.Read(y)
			})
			if a != b {
				violations++
			}
		}
		close(stop)
		wg.Wait()
		if violations != 0 {
			t.Fatalf("%d inconsistent snapshots observed", violations)
		}
	})
}

// TestSemanticSnapshotConsistency: same invariant expressed semantically —
// a transaction compares x and y for equality through the address–address
// conditional; the outcome must always be true.
func TestSemanticSnapshotConsistency(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		x, y := stm.NewVar(0), stm.NewVar(0)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rt.Atomically(func(tx *stm.Tx) {
					tx.Write(x, i)
					tx.Write(y, i)
				})
			}
		}()
		for i := 0; i < 2000; i++ {
			equal := stm.Run(rt, func(tx *stm.Tx) bool {
				return tx.CmpVars(x, stm.OpEQ, y)
			})
			if !equal {
				close(stop)
				wg.Wait()
				t.Fatal("semantic snapshot saw x != y")
			}
		}
		close(stop)
		wg.Wait()
	})
}

func TestRunReturnsValue(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	v := stm.NewVar(41)
	got := stm.Run(rt, func(tx *stm.Tx) int64 {
		tx.Inc(v, 1)
		return tx.Read(v)
	})
	if got != 42 || v.Load() != 42 {
		t.Fatalf("Run = %d, memory = %d", got, v.Load())
	}
}

func TestRestartRetries(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	v := stm.NewVar(0)
	attempts := 0
	rt.Atomically(func(tx *stm.Tx) {
		attempts++
		tx.Write(v, int64(attempts))
		if attempts < 3 {
			tx.Restart()
		}
	})
	if attempts != 3 || v.Load() != 3 {
		t.Fatalf("attempts=%d v=%d", attempts, v.Load())
	}
	sn := rt.Stats()
	if sn.Commits != 1 || sn.Aborts != 2 {
		t.Fatalf("stats %+v", sn)
	}
}

func TestUserPanicPropagates(t *testing.T) {
	for _, a := range stm.Algorithms() {
		rt := stm.New(a)
		v := stm.NewVar(0)
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("%v: recovered %v", a, r)
				}
			}()
			rt.Atomically(func(tx *stm.Tx) {
				tx.Write(v, 1)
				panic("boom")
			})
		}()
		// The runtime must still be usable afterwards (locks released,
		// descriptor state reset).
		rt.Atomically(func(tx *stm.Tx) { tx.Write(v, 5) })
		if v.Load() != 5 {
			t.Fatalf("%v: runtime wedged after user panic", a)
		}
	}
}

func TestAbortsHappenUnderContention(t *testing.T) {
	for _, a := range []stm.Algorithm{stm.NOrec, stm.TL2} {
		rt := stm.New(a)
		v := stm.NewVar(0)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					rt.Atomically(func(tx *stm.Tx) {
						tx.Write(v, tx.Read(v)+1)
					})
				}
			}()
		}
		wg.Wait()
		sn := rt.Stats()
		if sn.Commits != 8*300 {
			t.Fatalf("%v: commits = %d", a, sn.Commits)
		}
		if v.Load() != 8*300 {
			t.Fatalf("%v: value = %d", a, v.Load())
		}
		t.Logf("%v: aborts = %d (%.1f%%)", a, sn.Aborts, sn.AbortRate())
	}
}

func TestAlgorithmMetadata(t *testing.T) {
	want := map[stm.Algorithm]struct {
		name     string
		semantic bool
	}{
		stm.NOrec:    {"NOrec", false},
		stm.SNOrec:   {"S-NOrec", true},
		stm.TL2:      {"TL2", false},
		stm.STL2:     {"S-TL2", true},
		stm.SGL:      {"SGL", false},
		stm.HTM:      {"HTM", false},
		stm.SHTM:     {"S-HTM", true},
		stm.Ring:     {"RingSTM", false},
		stm.SRing:    {"S-RingSTM", true},
		stm.Adaptive: {"Adaptive", true},
		stm.HyTM:     {"HyTM", true},
		stm.HyTMMid:  {"HyTM-mid", true},
	}
	for a, w := range want {
		if a.String() != w.name {
			t.Errorf("%d: name %q, want %q", a, a.String(), w.name)
		}
		if a.Semantic() != w.semantic {
			t.Errorf("%s: Semantic() = %v", a, a.Semantic())
		}
	}
	if len(stm.Algorithms()) != 12 {
		t.Errorf("Algorithms() lists %d", len(stm.Algorithms()))
	}
}

func TestNewUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	stm.New(stm.Algorithm(99))
}

func TestComparatorConvenienceMethods(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	v := stm.NewVar(10)
	rt.Atomically(func(tx *stm.Tx) {
		checks := []struct {
			name string
			got  bool
			want bool
		}{
			{"GT", tx.GT(v, 9), true},
			{"GT=", tx.GT(v, 10), false},
			{"GTE", tx.GTE(v, 10), true},
			{"LT", tx.LT(v, 11), true},
			{"LTE", tx.LTE(v, 10), true},
			{"LTE<", tx.LTE(v, 9), false},
			{"EQ", tx.EQ(v, 10), true},
			{"NEQ", tx.NEQ(v, 10), false},
			{"Cmp", tx.Cmp(v, stm.OpNEQ, 3), true},
		}
		for _, c := range checks {
			if c.got != c.want {
				t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
			}
		}
	})
}

// TestTable3DelegationAccounting: the base-vs-semantic operation profile of
// Table 3 must arise from a single application source. One bank-style
// transaction (1 cmp + 2 incs) yields 1 compare + 2 incs under S-NOrec and
// 3 reads + 2 writes under NOrec.
func TestTable3DelegationAccounting(t *testing.T) {
	run := func(a stm.Algorithm) stm.Snapshot {
		rt := stm.New(a)
		from, to := stm.NewVar(100), stm.NewVar(100)
		rt.Atomically(func(tx *stm.Tx) {
			if tx.GTE(from, 10) {
				tx.Dec(from, 10)
				tx.Inc(to, 10)
			}
		})
		return rt.Stats()
	}
	sem := run(stm.SNOrec)
	if sem.Compares != 1 || sem.Incs != 2 || sem.Reads != 0 || sem.Writes != 0 {
		t.Fatalf("semantic profile %+v", sem)
	}
	base := run(stm.NOrec)
	if base.Reads != 3 || base.Writes != 2 || base.Compares != 0 || base.Incs != 0 {
		t.Fatalf("base profile %+v", base)
	}
}

func TestDecIsNegativeInc(t *testing.T) {
	rt := stm.New(stm.STL2)
	v := stm.NewVar(10)
	rt.Atomically(func(tx *stm.Tx) { tx.Dec(v, 4) })
	if v.Load() != 6 {
		t.Fatalf("v = %d", v.Load())
	}
}
