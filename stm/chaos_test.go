package stm_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"semstm/stm"
)

// chaosPlan arms every injection class: spurious aborts at all four sites
// (>=10% at commit), forced validation failures, and commit-window delays.
func chaosPlan(seed uint64) *stm.FaultPlan {
	return stm.NewFaultPlan(seed).
		WithSpurious(stm.SiteStart, 2).
		WithSpurious(stm.SiteRead, 5).
		WithSpurious(stm.SiteCmp, 5).
		WithSpurious(stm.SiteCommit, 10).
		WithValidationFail(10).
		WithCommitDelay(1, 20*time.Microsecond)
}

// chaosScale returns (workers, perWorker): a quick configuration for -short
// and the heavy sweep otherwise.
func chaosScale(t *testing.T) (int, int) {
	if testing.Short() {
		return 4, 150
	}
	return 8, 600
}

// TestChaosBankConservation runs concurrent bank transfers under full fault
// injection on every algorithm and asserts the linearizability proxy (total
// balance conserved), completion (Atomically always commits eventually —
// through escalation if starved), and cleanliness (no lock, orec, or ring
// slot leaked).
func TestChaosBankConservation(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		workers, per := chaosScale(t)
		rt.SetFaultPlan(chaosPlan(0xC4405))
		rt.SetEscalateAfter(64) // low threshold: let escalation fire under chaos
		const accounts, initial = 16, 1000
		accts := stm.NewVars(accounts, initial)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := seed
				next := func(n int64) int64 {
					r = r*6364136223846793005 + 1442695040888963407
					v := (r >> 33) % n
					if v < 0 {
						v += n
					}
					return v
				}
				for i := 0; i < per; i++ {
					from := accts[next(accounts)]
					to := accts[next(accounts)]
					amt := next(50) + 1
					rt.Atomically(func(tx *stm.Tx) {
						if tx.GTE(from, amt) {
							tx.Inc(from, -amt)
							tx.Inc(to, amt)
						}
					})
				}
			}(int64(w) + 1)
		}
		wg.Wait()
		var sum int64
		for _, a := range accts {
			sum += a.Load()
		}
		if sum != accounts*initial {
			t.Fatalf("balance not conserved under faults: %d, want %d", sum, accounts*initial)
		}
		sn := rt.Stats()
		if want := uint64(workers * per); sn.Commits != want {
			t.Fatalf("commits = %d, want %d", sn.Commits, want)
		}
		if sn.Aborts == 0 {
			t.Fatal("fault plan injected nothing")
		}
		var reasonSum uint64
		for _, n := range sn.AbortReasons {
			reasonSum += n
		}
		if reasonSum != sn.Aborts {
			t.Fatalf("reason buckets (%d) do not account for all aborts (%d)", reasonSum, sn.Aborts)
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestChaosCounterExact asserts the stronger linearizability proxy — an
// exact final counter — under fault injection plus a panicking bystander.
func TestChaosCounterExact(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		workers, per := chaosScale(t)
		rt.SetFaultPlan(chaosPlan(0xC0FFEE))
		rt.SetEscalateAfter(64)
		c := stm.NewVar(0)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					rt.Atomically(func(tx *stm.Tx) { tx.Inc(c, 1) })
				}
			}()
		}
		wg.Add(1)
		go func() { // user panics must not corrupt anything under injection
			defer wg.Done()
			for i := 0; i < 25; i++ {
				func() {
					defer func() { recover() }()
					rt.Atomically(func(tx *stm.Tx) {
						tx.Read(c)
						panic("chaos bystander")
					})
				}()
			}
		}()
		wg.Wait()
		if got := c.Load(); got != int64(workers*per) {
			t.Fatalf("counter = %d, want %d", got, workers*per)
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestChaosTryAtomically verifies the bounded API under injection: every
// call either commits or returns a typed *AbortError, and the final counter
// equals exactly the number of commits.
func TestChaosTryAtomically(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		workers, per := chaosScale(t)
		rt.SetFaultPlan(chaosPlan(0x7EA))
		rt.SetEscalateAfter(0) // force budget exhaustion to surface as errors
		c := stm.NewVar(0)
		var committed, failed atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					err := rt.TryAtomically(func(tx *stm.Tx) { tx.Inc(c, 1) }, stm.MaxAttempts(3))
					if err == nil {
						committed.Add(1)
						continue
					}
					var ae *stm.AbortError
					if !errors.As(err, &ae) {
						t.Errorf("untyped error: %v (%T)", err, err)
						return
					}
					if ae.Attempts != 3 || len(ae.Reasons) != 3 {
						t.Errorf("malformed AbortError: %+v", ae)
						return
					}
					failed.Add(1)
				}
			}()
		}
		wg.Wait()
		if got := c.Load(); got != committed.Load() {
			t.Fatalf("counter = %d but %d commits reported", got, committed.Load())
		}
		if committed.Load()+failed.Load() != int64(workers*per) {
			t.Fatal("lost calls")
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestChaosHybridPaths storms the progressive HyTM engine's hardware paths
// specifically: a fault plan firing spurious aborts mid-commit, a high
// simulated spurious rate, and a tracking capacity small enough that real
// transactions overflow it — so every demotion edge (fast→middle on
// conflict/spurious budget, →middle and →slow on capacity) is exercised
// under -race. Asserts conservation, exact commit accounting, that every
// abort lands in a valid typed bucket, and that the per-path commit counters
// stay consistent with the engine's configuration.
func TestChaosHybridPaths(t *testing.T) {
	for _, algo := range []stm.Algorithm{stm.HyTM, stm.HyTMMid} {
		t.Run(algo.String(), func(t *testing.T) {
			workers, per := chaosScale(t)
			rt := stm.New(algo)
			// Capacity 6: the 3-location transfers fit every path, while the
			// 16-addend audit sweep overflows the uninstrumented fast path
			// (16 tracked reads) but fits the middle path as a single
			// composed fact — the demotion edge the paper's primitives are
			// for. 20% simulated spurious commit failures on top of the
			// injected mid-commit aborts.
			rt.ConfigureHTM(6, 2, 20)
			rt.SetFaultPlan(stm.NewFaultPlan(0xB0B).
				WithSpurious(stm.SiteCommit, 15).
				WithSpurious(stm.SiteRead, 3).
				WithValidationFail(5).
				WithCommitDelay(1, 20*time.Microsecond))
			rt.SetEscalateAfter(64)
			const accounts, initial = 16, 1000
			accts := stm.NewVars(accounts, initial)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := seed
					next := func(n int64) int64 {
						r = r*6364136223846793005 + 1442695040888963407
						v := (r >> 33) % n
						if v < 0 {
							v += n
						}
						return v
					}
					for i := 0; i < per; i++ {
						if i%8 == 7 {
							// Audit sweep: footprint 16 on the fast path,
							// one expression fact on the instrumented paths.
							rt.Atomically(func(tx *stm.Tx) {
								if !tx.CmpSum(stm.OpGTE, 0, accts...) {
									t.Error("audit sweep saw a negative total")
								}
							})
							continue
						}
						if i%16 == 3 {
							// Batch rebalance: 8 distinct write entries
							// overflow capacity 6 on *both* hardware paths,
							// forcing the demotion chain down to the
							// unbounded software slow path.
							base := next(accounts-8) & ^int64(1)
							rt.Atomically(func(tx *stm.Tx) {
								for p := int64(0); p < 8; p += 2 {
									tx.Inc(accts[base+p], -1)
									tx.Inc(accts[base+p+1], 1)
								}
							})
							continue
						}
						from := accts[next(accounts)]
						to := accts[next(accounts)]
						amt := next(50) + 1
						rt.Atomically(func(tx *stm.Tx) {
							if tx.GTE(from, amt) {
								tx.Inc(from, -amt)
								tx.Inc(to, amt)
							}
						})
					}
				}(int64(w) + 1)
			}
			wg.Wait()
			var sum int64
			for _, a := range accts {
				sum += a.Load()
			}
			if sum != accounts*initial {
				t.Fatalf("balance not conserved under hybrid faults: %d, want %d",
					sum, accounts*initial)
			}
			sn := rt.Stats()
			if want := uint64(workers * per); sn.Commits != want {
				t.Fatalf("commits = %d, want %d", sn.Commits, want)
			}
			if sn.Aborts == 0 {
				t.Fatal("storm injected nothing")
			}
			var reasonSum uint64
			for _, n := range sn.AbortReasons {
				reasonSum += n
			}
			if reasonSum != sn.Aborts {
				t.Fatalf("reason buckets (%d) do not account for all aborts (%d)",
					reasonSum, sn.Aborts)
			}
			hw := sn.AbortReasons[stm.AbortHWConflict] + sn.AbortReasons[stm.AbortHWCapacity]
			if hw == 0 {
				t.Fatal("no typed hardware aborts under a hardware storm")
			}
			if sn.HWFastCommits+sn.HWMiddleCommits > sn.Commits {
				t.Fatalf("path commits (%d fast + %d middle) exceed total %d",
					sn.HWFastCommits, sn.HWMiddleCommits, sn.Commits)
			}
			if sn.AbortReasons[stm.AbortHWCapacity] == 0 {
				t.Fatal("batch rebalances never overflowed a hardware path")
			}
			if algo == stm.HyTM {
				if sn.HWFastCommits == 0 {
					t.Fatal("storm never committed on the fast path")
				}
			} else if sn.HWFastCommits != 0 {
				t.Fatalf("HyTM-mid took %d fast-path commits", sn.HWFastCommits)
			}
			if sn.HWMiddleCommits == 0 {
				t.Fatal("storm never committed on the instrumented middle path")
			}
			if err := rt.CheckQuiescent(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosDeterministicReplay runs the same single-threaded workload twice
// under the same fault-plan seed and demands identical outcomes and
// counters — the property that makes an injected failure reproducible. The
// HTM algorithms are excluded: their simulated hardware draws from its own
// per-descriptor RNG, which is deliberately decorrelated across runtimes.
func TestChaosDeterministicReplay(t *testing.T) {
	algos := []stm.Algorithm{
		stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2, stm.Ring, stm.SRing, stm.SGL,
	}
	for _, a := range algos {
		t.Run(a.String(), func(t *testing.T) {
			run := func() (int64, stm.Snapshot) {
				rt := stm.New(a)
				rt.SetBackoff(stm.BackoffNone) // backoff draws must not matter
				rt.SetFaultPlan(chaosPlan(0xD5))
				rt.SetEscalateAfter(16)
				x := stm.NewVar(0)
				for i := 0; i < 500; i++ {
					rt.Atomically(func(tx *stm.Tx) {
						if tx.GTE(x, 0) {
							tx.Inc(x, 1)
						}
					})
				}
				return x.Load(), rt.Stats()
			}
			v1, s1 := run()
			v2, s2 := run()
			if v1 != v2 || s1 != s2 {
				t.Fatalf("same seed diverged:\n run1 x=%d stats=%+v\n run2 x=%d stats=%+v", v1, s1, v2, s2)
			}
			if s1.Aborts == 0 {
				t.Fatal("fault plan injected nothing")
			}
		})
	}
}
