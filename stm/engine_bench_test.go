package stm_test

import (
	"testing"

	"semstm/stm"
)

// BenchmarkAtomicallyEmpty measures the retry engine's fixed per-transaction
// cost in isolation: descriptor pool round-trip, attempt dispatch, abort
// recovery scaffolding, stats fold, and the progress-layer checks (escalation
// gate load, bounded-mode branches) — everything Atomically pays before the
// first barrier runs. Backend cost is excluded by running an empty body on
// NOrec, whose Start/Commit on a read-only attempt are two loads. Compare
// this before/after any change to the Atomically/tryOnce path.
func BenchmarkAtomicallyEmpty(b *testing.B) {
	rt := stm.New(stm.NOrec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Atomically(func(tx *stm.Tx) {})
	}
}
