package stm_test

// Crash-recovery chaos (DESIGN.md §12): run the bank and hashtable drivers
// on a durable runtime with a deterministic crash armed at one injection
// site, let the simulated process death freeze the log mid-commit, then
// recover the directory and assert the three invariants of the suite —
// conservation (money/keys are neither created nor destroyed by a crash),
// chain integrity (recovery re-verifies every surviving frame against the
// hash chain; OpenDurable fails otherwise), and prefix consistency (the
// recovered state is exactly what some serial prefix of committed
// transactions produces: no partial publish is ever observable).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"semstm/internal/apps"
	"semstm/internal/core"
	"semstm/stm"
)

const (
	chaosShards   = 4
	chaosPerShard = 24
	chaosInitial  = 1000
)

// crashCells pairs every crash site with the fsync policy whose guarantees
// it stresses hardest: a torn write under always (the strongest promise must
// survive a half-written frame), a pre-fsync death under interval (the
// window the policy explicitly admits losing), and a pre-publish death under
// none (the fully-logged-but-unpublished commit must replay all-or-nothing
// even with no fsync on the commit path).
var crashCells = []struct {
	site   stm.CrashSite
	policy string
}{
	{stm.CrashTornWrite, "always"},
	{stm.CrashPreFsync, "interval"},
	{stm.CrashPostFsyncPrePublish, "none"},
}

// durableEngines is the crash-matrix engine set: both semantic engines, both
// classical baselines, and the irrevocable SGL (which exercises the
// log-then-commit branch of the durable single-shard path).
var durableEngines = []stm.Algorithm{stm.SNOrec, stm.STL2, stm.NOrec, stm.TL2, stm.SGL}

// Matrix sweep knobs (scripts/crash_matrix.sh): SEMSTM_CRASH_SEED perturbs
// every cell's deterministic seed and SEMSTM_CRASH_POLICY overrides the
// site-paired fsync policy for every cell, turning the fixed suite into a
// seeds × sites × policies sweep. Unset, the suite is fully deterministic.
func crashSeedOffset() uint64 {
	n, err := strconv.ParseUint(os.Getenv("SEMSTM_CRASH_SEED"), 10, 64)
	if err != nil {
		return 0
	}
	return n * 0x9E3779B97F4A7C15 // golden-ratio spread between adjacent seeds
}

func crashPolicy(def string) string {
	if p := os.Getenv("SEMSTM_CRASH_POLICY"); p != "" {
		return p
	}
	return def
}

// chaosBankVars allocates (first open) or recovers (reopen) the bank's
// account blocks under stable durable keys.
func chaosBankVars(d *stm.Durable) [][]*stm.Var {
	out := make([][]*stm.Var, chaosShards)
	for s := 0; s < chaosShards; s++ {
		out[s] = d.Vars(s, uint64(s*chaosPerShard+1), chaosPerShard, chaosInitial)
	}
	return out
}

// checkBankVars asserts conservation and the overdraft invariant directly on
// a recovered account set. Any prefix of a valid transfer history satisfies
// both, so a violation means recovery produced a state no serial execution
// could — a partial publish or a mis-replayed record.
func checkBankVars(t *testing.T, tag string, shards [][]*stm.Var) {
	t.Helper()
	var sum, accounts int64
	for s, block := range shards {
		for i, v := range block {
			x := v.Load()
			if x < 0 {
				t.Fatalf("%s: shard %d account %d negative (%d)", tag, s, i, x)
			}
			sum += x
			accounts++
		}
	}
	if want := accounts * chaosInitial; sum != want {
		t.Fatalf("%s: conservation violated: total %d, want %d", tag, sum, want)
	}
}

// runUntilCrash drives op from several workers until the armed crash fires.
// The first worker to unwind with the crash sentinel stops the others;
// stragglers mid-commit when the log freezes either finish against other
// shards' logs (recovery treats their frames normally) or hit the latched
// CrashedError and unwind too — both are legal post-mortem states for the
// recovery scan.
func runUntilCrash(t *testing.T, plan *stm.FaultPlan, seed uint64, op func(rng *rand.Rand)) {
	t.Helper()
	const workers = 4
	var crashed atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)*31 + int64(id)))
			for i := 0; i < 20000 && !crashed.Load(); i++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							crashed.Store(true)
							if _, ok := core.IsCrash(r); !ok {
								errc <- fmt.Errorf("worker %d: unexpected panic: %v", id, r)
							}
						}
					}()
					op(rng)
				}()
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if !plan.Crashed() {
		t.Fatal("armed crash never fired — injection site unreachable from this workload")
	}
}

// TestCrashRecoveryBank is the crash matrix over the bank driver: every
// engine × every crash site, each cell crashing once, recovering twice, and
// running post-recovery traffic in between to prove the repaired chain
// extends cleanly.
func TestCrashRecoveryBank(t *testing.T) {
	for _, algo := range durableEngines {
		for ci, cell := range crashCells {
			t.Run(fmt.Sprintf("%v/%v", algo, cell.site), func(t *testing.T) {
				dir := t.TempDir()
				seed := uint64(0xC7A51+ci*131+int(algo)*17) + crashSeedOffset()
				plan := stm.NewFaultPlan(seed).WithCrash(cell.site, int64(6+seed%13))
				d, err := stm.OpenDurable(dir, algo, chaosShards,
					stm.WithFsync(crashPolicy(cell.policy)), stm.WithCrashPlan(plan))
				if err != nil {
					t.Fatal(err)
				}
				rt := d.Runtime()
				rt.SetEscalateAfter(0)
				bank := apps.NewShardedBankVars(rt, chaosBankVars(d), chaosInitial, 0.15)
				bank.Window = 4
				runUntilCrash(t, plan, seed, bank.Op)
				d.Close()

				d2, err := stm.OpenDurable(dir, algo, chaosShards, stm.WithFsync("always"))
				if err != nil {
					t.Fatalf("recovery refused the post-crash log: %v", err)
				}
				if cell.site == stm.CrashTornWrite && d2.Recovery().TornShards == 0 {
					t.Error("torn-write crash left no torn tail for recovery to truncate")
				}
				vars2 := chaosBankVars(d2)
				checkBankVars(t, "after recovery", vars2)

				bank2 := apps.NewShardedBankVars(d2.Runtime(), vars2, chaosInitial, 0.15)
				bank2.Window = 4
				rng := rand.New(rand.NewSource(int64(seed)))
				for i := 0; i < 300; i++ {
					bank2.Op(rng)
				}
				checkBankVars(t, "after post-recovery traffic", vars2)
				if err := d2.Close(); err != nil {
					t.Fatal(err)
				}

				d3, err := stm.OpenDurable(dir, algo, chaosShards)
				if err != nil {
					t.Fatalf("second recovery refused the extended log: %v", err)
				}
				checkBankVars(t, "after second recovery", chaosBankVars(d3))
				d3.Close()
			})
		}
	}
}

// durTable is the durable hashtable driver: per shard, one size counter
// (logged as increments) and a block of occupancy slots (logged as absolute
// writes). Every transaction keeps counter and slots consistent, so after
// recovery "size == occupied slots" on every shard is a direct partial-
// publish detector — a frame applied halfway, or one half of a cross-shard
// migration, breaks it immediately.
type durTable struct {
	rt    *stm.Runtime
	size  []*stm.Var
	slots [][]*stm.Var
}

const tableSlots = 32

func makeDurTable(d *stm.Durable) *durTable {
	dt := &durTable{
		rt:    d.Runtime(),
		size:  make([]*stm.Var, chaosShards),
		slots: make([][]*stm.Var, chaosShards),
	}
	for s := 0; s < chaosShards; s++ {
		base := uint64(1000 + s*(tableSlots+1))
		dt.size[s] = d.Var(s, base, 0)
		dt.slots[s] = d.Vars(s, base+1, tableSlots, 0)
	}
	return dt
}

func (dt *durTable) op(rng *rand.Rand) {
	home := rng.Intn(chaosShards)
	if rng.Float64() < 0.15 {
		// Cross-shard migration: move an occupied slot to a free slot of
		// another shard, adjusting both size counters in one transaction.
		dest := rng.Intn(chaosShards - 1)
		if dest >= home {
			dest++
		}
		src := dt.slots[home][rng.Intn(tableSlots)]
		dst := dt.slots[dest][rng.Intn(tableSlots)]
		dt.rt.Atomically(func(tx *stm.Tx) {
			if tx.Read(src) == 1 && tx.Read(dst) == 0 {
				tx.Write(src, 0)
				tx.Dec(dt.size[home], 1)
				tx.Write(dst, 1)
				tx.Inc(dt.size[dest], 1)
			}
		})
		return
	}
	slot := dt.slots[home][rng.Intn(tableSlots)]
	dt.rt.Atomically(func(tx *stm.Tx) {
		if tx.Read(slot) == 0 {
			tx.Write(slot, 1)
			tx.Inc(dt.size[home], 1)
		} else {
			tx.Write(slot, 0)
			tx.Dec(dt.size[home], 1)
		}
	})
}

func (dt *durTable) check(t *testing.T, tag string) {
	t.Helper()
	for s := range dt.slots {
		var occupied int64
		for i, v := range dt.slots[s] {
			x := v.Load()
			if x != 0 && x != 1 {
				t.Fatalf("%s: shard %d slot %d holds %d, want 0 or 1", tag, s, i, x)
			}
			occupied += x
		}
		if got := dt.size[s].Load(); got != occupied {
			t.Fatalf("%s: shard %d size counter %d but %d occupied slots — partial publish",
				tag, s, got, occupied)
		}
	}
}

// TestCrashRecoveryHashtable runs the crash cells over the slot/counter
// driver on both semantic engines: the size-versus-slots invariant is the
// sharpest zero-partial-publish assertion in the suite.
func TestCrashRecoveryHashtable(t *testing.T) {
	for _, algo := range []stm.Algorithm{stm.SNOrec, stm.STL2} {
		for ci, cell := range crashCells {
			t.Run(fmt.Sprintf("%v/%v", algo, cell.site), func(t *testing.T) {
				dir := t.TempDir()
				seed := uint64(0x4A5B+ci*97+int(algo)*13) + crashSeedOffset()
				plan := stm.NewFaultPlan(seed).WithCrash(cell.site, int64(5+seed%11))
				d, err := stm.OpenDurable(dir, algo, chaosShards,
					stm.WithFsync(crashPolicy(cell.policy)), stm.WithCrashPlan(plan))
				if err != nil {
					t.Fatal(err)
				}
				d.Runtime().SetEscalateAfter(0)
				dt := makeDurTable(d)
				runUntilCrash(t, plan, seed, dt.op)
				d.Close()

				d2, err := stm.OpenDurable(dir, algo, chaosShards)
				if err != nil {
					t.Fatalf("recovery refused the post-crash log: %v", err)
				}
				dt2 := makeDurTable(d2)
				dt2.check(t, "after recovery")
				rng := rand.New(rand.NewSource(int64(seed)))
				for i := 0; i < 300; i++ {
					dt2.op(rng)
				}
				dt2.check(t, "after post-recovery traffic")
				if err := d2.Close(); err != nil {
					t.Fatal(err)
				}

				d3, err := stm.OpenDurable(dir, algo, chaosShards)
				if err != nil {
					t.Fatalf("second recovery refused the extended log: %v", err)
				}
				makeDurTable(d3) // replays and re-verifies the chain
				d3.Close()
			})
		}
	}
}

// TestDurableRoundTrip is the no-crash baseline: commit, close cleanly,
// reopen, and every durable variable carries its exact pre-close value —
// including an increment-only counter resolved against its initial.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := stm.OpenDurable(dir, stm.SNOrec, 2, stm.WithFsync("always"))
	if err != nil {
		t.Fatal(err)
	}
	rt := d.Runtime()
	a := d.Var(0, 1, 100)
	b := d.Var(1, 2, 200)
	ctr := d.Var(0, 3, 1000) // increment-only: recovery must resolve delta+initial
	for i := 0; i < 10; i++ {
		rt.Atomically(func(tx *stm.Tx) {
			tx.Inc(a, -3)
			tx.Inc(b, 3)
			tx.Inc(ctr, 7)
		})
	}
	rt.Atomically(func(tx *stm.Tx) { tx.Write(a, 42) })
	st := d.WALStats()
	if st.Appends == 0 || st.Fsyncs == 0 {
		t.Fatalf("durable commits produced no WAL activity: %+v", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := stm.OpenDurable(dir, stm.SNOrec, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec := d2.Recovery(); rec.Frames == 0 || rec.TornShards != 0 || rec.CutFrames != 0 {
		t.Fatalf("clean close recovered oddly: %+v", rec)
	}
	if got := d2.Var(0, 1, 100).Load(); got != 42 {
		t.Fatalf("a recovered as %d, want 42", got)
	}
	if got := d2.Var(1, 2, 200).Load(); got != 230 {
		t.Fatalf("b recovered as %d, want 230", got)
	}
	if got := d2.Var(0, 3, 1000).Load(); got != 1070 {
		t.Fatalf("ctr recovered as %d, want 1070", got)
	}
}

// TestDurableLogFailureDegrades verifies the graceful-degradation contract:
// a latched log failure turns into one AbortLogFail + immediate irrevocable
// escalation for the transaction that hit it, and the runtime keeps
// committing volatile afterwards. Reopening then recovers exactly the
// pre-failure prefix — the commits the log acknowledged.
func TestDurableLogFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	d, err := stm.OpenDurable(dir, stm.STL2, 2, stm.WithFsync("always"))
	if err != nil {
		t.Fatal(err)
	}
	rt := d.Runtime()
	v := d.Var(0, 1, 0)
	for i := 0; i < 5; i++ {
		rt.Atomically(func(tx *stm.Tx) { tx.Inc(v, 1) })
	}
	d.InjectLogFailure(errors.New("simulated disk death"))
	for i := 0; i < 5; i++ {
		rt.Atomically(func(tx *stm.Tx) { tx.Inc(v, 1) }) // must still commit
	}
	if v.Load() != 10 {
		t.Fatalf("degraded runtime lost commits: %d, want 10", v.Load())
	}
	if !d.WALFailed() {
		t.Fatal("WALFailed not latched after injected log failure")
	}
	sn := rt.Stats()
	if sn.WALFailures == 0 {
		t.Fatalf("no WALFailures accounted: %+v", sn)
	}
	if sn.Escalations == 0 {
		t.Fatal("log failure did not escalate the failing transaction")
	}
	d.Close()

	d2, err := stm.OpenDurable(dir, stm.STL2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// Only the five pre-failure commits were durable; the degraded five were
	// volatile by contract.
	if got := d2.Var(0, 1, 0).Load(); got != 5 {
		t.Fatalf("recovered %d, want the 5 pre-failure commits", got)
	}
}

// TestOpenDurableErrors pins the constructor's failure modes: bad shard
// counts and policies, engines without a shardable commit, manifest
// mismatch on reopen, and durable-key misuse.
func TestOpenDurableErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := stm.OpenDurable(dir, stm.SNOrec, 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := stm.OpenDurable(dir, stm.SNOrec, 2, stm.WithFsync("sometimes")); err == nil {
		t.Error("unknown fsync policy accepted")
	}
	if _, err := stm.OpenDurable(dir, stm.HTM, 2); err == nil {
		t.Error("non-shardable engine accepted")
	}
	d, err := stm.OpenDurable(dir, stm.SNOrec, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Var(0, 7, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate durable key did not panic")
			}
		}()
		d.Var(1, 7, 0)
	}()
	d.Close()
	if _, err := stm.OpenDurable(dir, stm.SNOrec, 4); err == nil {
		t.Error("shard-count mismatch against the manifest accepted")
	}
}

// TestAtomicallyCtxCancelCrossShardPhaseOne closes the PR6 coverage gap:
// cancellation arriving while a cross-shard commit is inside phase 1 —
// locks acquired, ticket not yet taken. Every attempt reads a probe var and
// then hands a disturber goroutine a turn to overwrite it before the commit
// starts, so phase-1 validation deterministically fails with both shards'
// locks held and must roll them back. The context is cancelled
// synchronously inside one of those doomed attempts (so it is already set
// while that attempt holds its phase-1 locks). The runtime must (a) return
// the context error with nothing published, and (b) leave no shard lock
// behind — proven by committing over the same shards immediately after.
func TestAtomicallyCtxCancelCrossShardPhaseOne(t *testing.T) {
	for _, algo := range []stm.Algorithm{stm.SNOrec, stm.STL2, stm.NOrec, stm.TL2} {
		t.Run(algo.String(), func(t *testing.T) {
			rt := stm.NewShardedRuntime(algo, 4)
			rt.SetEscalateAfter(0)
			a := stm.NewVarOn(0, 5)
			b := stm.NewVarOn(1, 7)
			probe := stm.NewVarOn(0, 0)
			step := make(chan struct{})
			ack := make(chan struct{})
			stop := make(chan struct{})
			var disturber sync.WaitGroup
			disturber.Add(1)
			go func() {
				defer disturber.Done()
				for {
					select {
					case <-step:
						rt.Atomically(func(tx *stm.Tx) { tx.Inc(probe, 1) })
						ack <- struct{}{}
					case <-stop:
						return
					}
				}
			}()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var attempts atomic.Int32
			err := rt.AtomicallyCtx(ctx, func(tx *stm.Tx) {
				tx.Read(probe)
				tx.Inc(a, 1)
				tx.Inc(b, 1)
				if attempts.Add(1) == 4 {
					// Already-cancelled context, attempt still in flight: the
					// coming phase 1 runs with cancellation pending.
					cancel()
				}
				step <- struct{}{} // disturber bumps probe: phase 1 must abort
				<-ack
			})
			close(stop)
			disturber.Wait()
			if err == nil || !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if got := attempts.Load(); got < 4 {
				t.Fatalf("only %d attempts ran; cancellation never overlapped phase 1", got)
			}
			if a.Load() != 5 || b.Load() != 7 {
				t.Fatalf("cancelled cross-shard transaction published partially: a=%d b=%d",
					a.Load(), b.Load())
			}
			// Leak probe: with the disturber gone, a cross-shard commit over
			// the same two shards succeeds immediately — unless a phase-1
			// abort above leaked a lock, which would starve it to budget
			// exhaustion or hang its bounded waits.
			if err := rt.TryAtomically(func(tx *stm.Tx) {
				tx.Inc(a, 1)
				tx.Inc(b, 1)
			}); err != nil {
				t.Fatalf("cross-shard commit after cancellation failed — leaked phase-1 lock? %v", err)
			}
			if a.Load() != 6 || b.Load() != 8 {
				t.Fatalf("leak probe published partially: a=%d b=%d", a.Load(), b.Load())
			}
		})
	}
}

// TestFaultSiteExhaustiveness asserts every registered injection point —
// barrier fault sites, the validation and commit-delay streams, and all
// three crash sites — is consulted by one representative durable workload.
// A site nothing consults is a dead injection point: either the
// instrumentation hook was dropped in a refactor or a new site was
// registered without wiring, and this test catches both as the list grows.
func TestFaultSiteExhaustiveness(t *testing.T) {
	plan := stm.NewFaultPlan(0xE4A) // inert: no fault armed, only observation
	d, err := stm.OpenDurable(t.TempDir(), stm.STL2, 2,
		stm.WithFsync("always"), stm.WithCrashPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rt := d.Runtime()
	vars := d.Vars(0, 1, 4, 100)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				rt.Atomically(func(tx *stm.Tx) {
					tx.Read(vars[0])
					if tx.GTE(vars[1], 1) { // semantic cmp barrier
						tx.Inc(vars[2], 1)
					}
					tx.Write(vars[3], int64(id*1000+i))
				})
			}
		}(w)
	}
	wg.Wait()
	for site, n := range plan.SiteObservations() {
		if n == 0 {
			t.Errorf("injection site %q was never consulted — dead instrumentation", site)
		}
	}
	if got, want := len(plan.SiteObservations()), len(core.FaultSiteNames()); got != want {
		t.Fatalf("observation map has %d sites, registry names %d", got, want)
	}
}
