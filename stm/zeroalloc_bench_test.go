package stm_test

// Zero-allocation lifecycle benchmarks: after one warm-up transaction has
// sized the pooled descriptor, the steady-state barrier and commit paths of
// every registered engine must run without touching the heap. check.sh
// enforces this mechanically — `-bench=BenchmarkBarrier -benchtime=5000x
// -benchmem` must report 0 allocs/op for every sub-benchmark — so an
// accidental interface boxing, closure capture, or slice growth on the hot
// path fails the build instead of showing up as GC pauses in a later
// baseline.
//
// Shapes cover the acceptance matrix of the allocation gate: the read, write,
// and inc barriers in isolation (8 disjoint variables each) and the commit of
// a small read-write transaction (2 reads + 2 writes). Engines cover the full
// registry — including Adaptive, whose epoch gate and stats shards ride the
// same descriptors — plus an "HTM-fallback" variant configured (capacity 1,
// zero retries) so every transaction capacity-aborts the hardware attempt and
// commits under the irrevocable lock, pinning the abort-unwind and fallback
// paths to zero allocations as well.
//
// Run with:
//
//	go test ./stm -run='^$' -bench=BenchmarkBarrierZeroAlloc -benchtime=5000x -benchmem

import (
	"testing"

	"semstm/stm"
)

// zeroAllocShapes are the transaction bodies of the allocation gate. Each
// takes the variable slice by parameter so the closures passed to Atomically
// capture only non-escaping locals and stay off the heap themselves.
var zeroAllocShapes = []struct {
	name string
	run  func(rt *stm.Runtime, vars []*stm.Var) int64
}{
	{"Read", func(rt *stm.Runtime, vars []*stm.Var) int64 {
		var sink int64
		rt.Atomically(func(tx *stm.Tx) {
			sink = 0
			for _, v := range vars {
				sink += tx.Read(v)
			}
		})
		return sink
	}},
	{"Write", func(rt *stm.Runtime, vars []*stm.Var) int64 {
		rt.Atomically(func(tx *stm.Tx) {
			for j, v := range vars {
				tx.Write(v, int64(j))
			}
		})
		return 0
	}},
	{"Inc", func(rt *stm.Runtime, vars []*stm.Var) int64 {
		rt.Atomically(func(tx *stm.Tx) {
			for _, v := range vars {
				tx.Inc(v, 1)
			}
		})
		return 0
	}},
	{"CommitRW", func(rt *stm.Runtime, vars []*stm.Var) int64 {
		var sink int64
		rt.Atomically(func(tx *stm.Tx) {
			sink = tx.Read(vars[0]) + tx.Read(vars[1])
			tx.Write(vars[2], sink)
			tx.Write(vars[3], sink+1)
		})
		return sink
	}},
}

// BenchmarkBarrierZeroAlloc runs every shape on every registered engine and
// on the forced-fallback HTM variant. One warm-up transaction per
// sub-benchmark populates the descriptor pool and grows the reusable sets to
// their steady-state capacity before the timer starts.
func BenchmarkBarrierZeroAlloc(b *testing.B) {
	type variant struct {
		name  string
		newRT func() *stm.Runtime
	}
	var variants []variant
	for _, a := range stm.Algorithms() {
		variants = append(variants, variant{a.String(), func() *stm.Runtime { return stm.New(a) }})
	}
	variants = append(variants, variant{"HTM-fallback", func() *stm.Runtime {
		rt := stm.New(stm.HTM)
		// Capacity 1 capacity-aborts every hardware attempt; zero retries
		// sends the retry straight to the irrevocable lock fallback.
		rt.ConfigureHTM(1, 0, 0)
		return rt
	}})
	var sink int64
	for _, v := range variants {
		for _, sh := range zeroAllocShapes {
			b.Run(v.name+"/"+sh.name, func(b *testing.B) {
				rt := v.newRT()
				vars := stm.NewVars(8, 1)
				sink += sh.run(rt, vars) // warm-up: size the pooled descriptor
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sink += sh.run(rt, vars)
				}
			})
		}
	}
	_ = sink
}
