package stm_test

import (
	"math/rand"
	"reflect"
	"testing"

	"semstm/stm"
)

// TestAlgorithmsAgreeSequentially runs identical randomized single-threaded
// scripts — covering every API operation — on all nine algorithms and
// requires bit-identical observations and final memory. Any divergence in
// delegation, promotion, write-set merging, or expression handling shows up
// as a mismatch against the first algorithm's trace.
func TestAlgorithmsAgreeSequentially(t *testing.T) {
	const (
		vars    = 6
		txns    = 60
		opsPer  = 8
		rngSeed = 12345
	)
	operators := []stm.Op{stm.OpEQ, stm.OpNEQ, stm.OpGT, stm.OpGTE, stm.OpLT, stm.OpLTE}

	type step struct {
		kind    int // 0 read 1 write 2 cmp 3 cmpvars 4 inc 5 cmpsum 6 cmpany
		v, b, c int
		op      stm.Op
		arg     int64
	}
	// One fixed script for every algorithm.
	rng := rand.New(rand.NewSource(rngSeed))
	script := make([][]step, txns)
	for i := range script {
		script[i] = make([]step, opsPer)
		for j := range script[i] {
			script[i][j] = step{
				kind: rng.Intn(7),
				v:    rng.Intn(vars),
				b:    rng.Intn(vars),
				c:    rng.Intn(vars),
				op:   operators[rng.Intn(len(operators))],
				arg:  rng.Int63n(40) - 20,
			}
		}
	}

	run := func(algo stm.Algorithm) (trace []int64, final []int64) {
		rt := stm.New(algo)
		regs := stm.NewVars(vars, 0)
		for _, tvs := range script {
			rt.Atomically(func(tx *stm.Tx) {
				trace = trace[:0] // aborted attempts leave no trace
				for _, s := range tvs {
					switch s.kind {
					case 0:
						trace = append(trace, tx.Read(regs[s.v]))
					case 1:
						tx.Write(regs[s.v], s.arg)
					case 2:
						trace = append(trace, b2i(tx.Cmp(regs[s.v], s.op, s.arg)))
					case 3:
						trace = append(trace, b2i(tx.CmpVars(regs[s.v], s.op, regs[s.b])))
					case 4:
						tx.Inc(regs[s.v], s.arg)
					case 5:
						trace = append(trace, b2i(tx.CmpSum(s.op, s.arg, regs[s.v], regs[s.b], regs[s.c])))
					case 6:
						trace = append(trace, b2i(tx.CmpAny(
							stm.Cond{Var: regs[s.v], Op: s.op, Operand: s.arg},
							stm.Cond{Var: regs[s.b], Op: s.op.Inverse(), Operand: -s.arg},
						)))
					}
				}
			})
		}
		final = make([]int64, vars)
		for i, r := range regs {
			final[i] = r.Load()
		}
		return append([]int64(nil), trace...), final
	}

	algos := stm.Algorithms()
	refTrace, refFinal := run(algos[0])
	for _, a := range algos[1:] {
		trace, final := run(a)
		if !reflect.DeepEqual(final, refFinal) {
			t.Errorf("%v final memory %v, want %v (as %v)", a, final, refFinal, algos[0])
		}
		if !reflect.DeepEqual(trace, refTrace) {
			t.Errorf("%v last-txn trace %v, want %v (as %v)", a, trace, refTrace, algos[0])
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestOpInverseExported sanity-checks the exported operator helpers used by
// the equivalence script.
func TestOpInverseExported(t *testing.T) {
	if stm.OpGT.Inverse() != stm.OpLTE {
		t.Fatal("inverse")
	}
	if !stm.OpGTE.Eval(3, 3) {
		t.Fatal("eval")
	}
}
