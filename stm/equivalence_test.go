package stm_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"semstm/stm"
)

// TestAlgorithmsAgreeSequentially runs identical randomized single-threaded
// scripts — covering every API operation — on all nine algorithms and
// requires bit-identical observations and final memory. Any divergence in
// delegation, promotion, write-set merging, or expression handling shows up
// as a mismatch against the first algorithm's trace.
func TestAlgorithmsAgreeSequentially(t *testing.T) {
	const (
		vars    = 6
		txns    = 60
		opsPer  = 8
		rngSeed = 12345
	)
	operators := []stm.Op{stm.OpEQ, stm.OpNEQ, stm.OpGT, stm.OpGTE, stm.OpLT, stm.OpLTE}

	type step struct {
		kind    int // 0 read 1 write 2 cmp 3 cmpvars 4 inc 5 cmpsum 6 cmpany
		v, b, c int
		op      stm.Op
		arg     int64
	}
	// One fixed script for every algorithm.
	rng := rand.New(rand.NewSource(rngSeed))
	script := make([][]step, txns)
	for i := range script {
		script[i] = make([]step, opsPer)
		for j := range script[i] {
			script[i][j] = step{
				kind: rng.Intn(7),
				v:    rng.Intn(vars),
				b:    rng.Intn(vars),
				c:    rng.Intn(vars),
				op:   operators[rng.Intn(len(operators))],
				arg:  rng.Int63n(40) - 20,
			}
		}
	}

	run := func(algo stm.Algorithm) (trace []int64, final []int64) {
		rt := stm.New(algo)
		regs := stm.NewVars(vars, 0)
		for _, tvs := range script {
			rt.Atomically(func(tx *stm.Tx) {
				trace = trace[:0] // aborted attempts leave no trace
				for _, s := range tvs {
					switch s.kind {
					case 0:
						trace = append(trace, tx.Read(regs[s.v]))
					case 1:
						tx.Write(regs[s.v], s.arg)
					case 2:
						trace = append(trace, b2i(tx.Cmp(regs[s.v], s.op, s.arg)))
					case 3:
						trace = append(trace, b2i(tx.CmpVars(regs[s.v], s.op, regs[s.b])))
					case 4:
						tx.Inc(regs[s.v], s.arg)
					case 5:
						trace = append(trace, b2i(tx.CmpSum(s.op, s.arg, regs[s.v], regs[s.b], regs[s.c])))
					case 6:
						trace = append(trace, b2i(tx.CmpAny(
							stm.Cond{Var: regs[s.v], Op: s.op, Operand: s.arg},
							stm.Cond{Var: regs[s.b], Op: s.op.Inverse(), Operand: -s.arg},
						)))
					}
				}
			})
		}
		final = make([]int64, vars)
		for i, r := range regs {
			final[i] = r.Load()
		}
		return append([]int64(nil), trace...), final
	}

	algos := stm.Algorithms()
	refTrace, refFinal := run(algos[0])
	for _, a := range algos[1:] {
		trace, final := run(a)
		if !reflect.DeepEqual(final, refFinal) {
			t.Errorf("%v final memory %v, want %v (as %v)", a, final, refFinal, algos[0])
		}
		if !reflect.DeepEqual(trace, refTrace) {
			t.Errorf("%v last-txn trace %v, want %v (as %v)", a, trace, refTrace, algos[0])
		}
	}
}

// TestAlgorithmsAgreeRAWHeavy stresses the promotion semantics of
// Algorithm 6 lines 17–23 under the signature-indexed write-set: every
// transaction chains inc → read → write → inc (plus cmp probes) on the SAME
// variables, so nearly every barrier resolves against a non-empty write-set
// — entry kinds flip Inc→Write via promotion, deltas accumulate over written
// values, and reads must observe the merged entry bit-for-bit identically on
// all nine algorithms.
func TestAlgorithmsAgreeRAWHeavy(t *testing.T) {
	const (
		vars    = 8
		txns    = 80
		rngSeed = 424242
	)
	rng := rand.New(rand.NewSource(rngSeed))
	type rawTxn struct {
		v1, v2 int
		d1, d2 int64
		w      int64
		probe  int64
	}
	script := make([]rawTxn, txns)
	for i := range script {
		script[i] = rawTxn{
			v1:    rng.Intn(vars),
			v2:    rng.Intn(vars),
			d1:    rng.Int63n(20) - 10,
			d2:    rng.Int63n(20) - 10,
			w:     rng.Int63n(100) - 50,
			probe: rng.Int63n(40) - 20,
		}
	}

	run := func(algo stm.Algorithm) (trace []int64, final []int64) {
		rt := stm.New(algo)
		regs := stm.NewVars(vars, 5)
		for _, s := range script {
			a, b := regs[s.v1], regs[s.v2]
			rt.Atomically(func(tx *stm.Tx) {
				trace = trace[:0]
				tx.Inc(a, s.d1)                   // fresh EntryInc
				trace = append(trace, tx.Read(a)) // promote: Inc → Write
				tx.Write(a, s.w)                  // overwrite promoted entry
				tx.Inc(a, s.d2)                   // accumulate over EntryWrite
				trace = append(trace, tx.Read(a)) // plain RAW hit
				tx.Inc(b, s.d1)
				trace = append(trace, b2i(tx.GT(b, s.probe)))           // cmp promotes b
				trace = append(trace, b2i(tx.CmpVars(a, stm.OpLTE, b))) // both buffered
				tx.Inc(b, -s.d1)
				trace = append(trace, tx.Read(b))
			})
		}
		final = make([]int64, vars)
		for i, r := range regs {
			final[i] = r.Load()
		}
		return append([]int64(nil), trace...), final
	}

	algos := stm.Algorithms()
	refTrace, refFinal := run(algos[0])
	for _, a := range algos[1:] {
		trace, final := run(a)
		if !reflect.DeepEqual(final, refFinal) {
			t.Errorf("%v final memory %v, want %v (as %v)", a, final, refFinal, algos[0])
		}
		if !reflect.DeepEqual(trace, refTrace) {
			t.Errorf("%v last-txn trace %v, want %v (as %v)", a, trace, refTrace, algos[0])
		}
	}
}

// TestRAWHeavyConcurrentInvariant runs the inc→read→write→inc chain from
// many goroutines on every algorithm and checks a closed-form invariant:
// each committed transaction leaves its variable's value unchanged (the
// transaction adds d, reads, restores the read value minus d... net zero),
// so the final memory must equal the initial state no matter how attempts
// interleave or abort.
func TestRAWHeavyConcurrentInvariant(t *testing.T) {
	const (
		vars    = 4
		workers = 4
		perG    = 150
		initial = 1000
	)
	for _, algo := range stm.Algorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			rt := stm.New(algo)
			rt.SetYieldEvery(2)
			regs := stm.NewVars(vars, initial)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < perG; i++ {
						v := regs[rng.Intn(vars)]
						d := rng.Int63n(50) + 1
						rt.Atomically(func(tx *stm.Tx) {
							tx.Inc(v, d)       // pending increment
							cur := tx.Read(v)  // promotes: cur = mem + d
							tx.Write(v, cur-d) // restore original
							tx.Inc(v, 0)       // accumulate on the write
						})
					}
				}(int64(w) + 1)
			}
			wg.Wait()
			for i, r := range regs {
				if got := r.Load(); got != initial {
					t.Errorf("var %d = %d, want %d (promotion lost an update)", i, got, initial)
				}
			}
			if sn := rt.Stats(); sn.Commits != workers*perG {
				t.Errorf("commits = %d, want %d", sn.Commits, workers*perG)
			}
		})
	}
}

// TestComposedAgreeUnderFaults is the composed-expression equivalence sweep:
// a deterministic script dominated by CmpSum and CmpAny (the arithmetic and
// disjunctive composed facts, where the engines differ most — S-NOrec/S-HTM
// hold one composed fact, S-TL2 per-clause facts, classical engines delegate
// to reads) runs on every algorithm under deterministic fault injection at
// all four sites. Injected aborts only force retries, so every engine must
// still produce bit-identical observations and final memory — both against
// the reference engine and against its own fault-free run. This pins down
// that composed-fact re-validation and abort/replay paths cannot change the
// value semantics of the composed operators.
func TestComposedAgreeUnderFaults(t *testing.T) {
	const (
		vars    = 5
		txns    = 50
		rngSeed = 777
	)
	operators := []stm.Op{stm.OpEQ, stm.OpNEQ, stm.OpGT, stm.OpGTE, stm.OpLT, stm.OpLTE}
	type comboTxn struct {
		v1, v2, v3 int
		op1, op2   stm.Op
		rhs, d, w  int64
	}
	rng := rand.New(rand.NewSource(rngSeed))
	script := make([]comboTxn, txns)
	for i := range script {
		script[i] = comboTxn{
			v1:  rng.Intn(vars),
			v2:  rng.Intn(vars),
			v3:  rng.Intn(vars),
			op1: operators[rng.Intn(len(operators))],
			op2: operators[rng.Intn(len(operators))],
			rhs: rng.Int63n(60) - 30,
			d:   rng.Int63n(20) - 10,
			w:   rng.Int63n(40) - 20,
		}
	}

	run := func(algo stm.Algorithm, faults bool) (trace []int64, final []int64) {
		rt := stm.New(algo)
		if faults {
			rt.SetFaultPlan(stm.NewFaultPlan(0xC0FFEE).
				WithSpurious(stm.SiteStart, 2).
				WithSpurious(stm.SiteRead, 4).
				WithSpurious(stm.SiteCmp, 4).
				WithSpurious(stm.SiteCommit, 8).
				WithValidationFail(8))
		}
		regs := stm.NewVars(vars, 3)
		for _, s := range script {
			a, b, c := regs[s.v1], regs[s.v2], regs[s.v3]
			rt.Atomically(func(tx *stm.Tx) {
				trace = trace[:0] // aborted attempts leave no trace
				trace = append(trace, b2i(tx.CmpSum(s.op1, s.rhs, a, b, c)))
				tx.Inc(a, s.d)
				// Same sum shifted by the pending increment: exercises
				// composed facts over buffered state.
				trace = append(trace, b2i(tx.CmpSum(s.op1, s.rhs+s.d, a, b, c)))
				trace = append(trace, b2i(tx.CmpAny(
					stm.Cond{Var: a, Op: s.op1, Operand: s.rhs},
					stm.Cond{Var: b, Op: s.op2, Operand: s.w},
					stm.Cond{Var: c, Op: s.op2.Inverse(), Operand: s.w},
				)))
				tx.Write(b, s.w)
				trace = append(trace, b2i(tx.CmpAny(
					stm.Cond{Var: b, Op: stm.OpEQ, Operand: s.w},
				)))
				trace = append(trace, b2i(tx.CmpSum(s.op2, s.rhs, a, b)))
				tx.Inc(c, -s.d)
			})
		}
		final = make([]int64, vars)
		for i, r := range regs {
			final[i] = r.Load()
		}
		return append([]int64(nil), trace...), final
	}

	algos := stm.Algorithms()
	refTrace, refFinal := run(algos[0], false)
	for _, a := range algos {
		for _, faults := range []bool{false, true} {
			trace, final := run(a, faults)
			if !reflect.DeepEqual(final, refFinal) {
				t.Errorf("%v (faults=%v) final memory %v, want %v (as %v fault-free)",
					a, faults, final, refFinal, algos[0])
			}
			if !reflect.DeepEqual(trace, refTrace) {
				t.Errorf("%v (faults=%v) last-txn trace %v, want %v (as %v fault-free)",
					a, faults, trace, refTrace, algos[0])
			}
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestOpInverseExported sanity-checks the exported operator helpers used by
// the equivalence script.
func TestOpInverseExported(t *testing.T) {
	if stm.OpGT.Inverse() != stm.OpLTE {
		t.Fatal("inverse")
	}
	if !stm.OpGTE.Eval(3, 3) {
		t.Fatal("eval")
	}
}
