package stm_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"semstm/internal/core"
	"semstm/stm"
)

// drainFreeList empties the global reclaim free list so a test can attribute
// recycled allocations to its own retirements.
func drainFreeList() {
	for core.ReadEpochStats().Free > 0 {
		stm.NewVar(0)
	}
}

// TestAtomicallyPrivatizeCommits: the privatizing variant must have plain
// Atomically semantics on every engine — same commits, same final state —
// with the barrier as a pure add-on.
func TestAtomicallyPrivatizeCommits(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		const workers, per = 4, 200
		c := stm.NewVar(0)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					rt.AtomicallyPrivatize(func(tx *stm.Tx) { tx.Inc(c, 1) })
				}
			}()
		}
		wg.Wait()
		if got := c.Load(); got != workers*per {
			t.Fatalf("counter = %d, want %d", got, workers*per)
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestNewVarOnNegativeShardPanics: a Var's shard is an allocation-time
// property; negative values must fail loudly rather than truncate.
func TestNewVarOnNegativeShardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVarOn(-1, 0) did not panic")
		}
	}()
	stm.NewVarOn(-1, 0)
}

// TestRecycledVarShardRouting: a cell retired from one shard and recycled
// onto another must route to its new shard — traffic on the recycled Var
// moves only the new shard's clock.
func TestRecycledVarShardRouting(t *testing.T) {
	rt := stm.NewShardedRuntime(stm.SNOrec, 2)
	drainFreeList()

	old := stm.NewVarOn(1, 0)
	oldID := old.ID()
	rt.Atomically(func(tx *stm.Tx) { tx.Inc(old, 1) })
	stm.Retire(old)
	for i := 0; i < 10 && core.ReadEpochStats().Free == 0; i++ {
		stm.AdvanceEpoch()
	}

	v := stm.NewVarOn(0, 5)
	if v.ID() != oldID {
		t.Fatalf("recycled id = %d, want %d (free list not consumed)", v.ID(), oldID)
	}
	if v.Shard() != 0 {
		t.Fatalf("recycled shard = %d, want 0", v.Shard())
	}

	c0, ok0 := rt.ShardClock(0)
	c1, ok1 := rt.ShardClock(1)
	if !ok0 || !ok1 {
		t.Fatal("sharded runtime must expose per-shard clocks")
	}
	rt.Atomically(func(tx *stm.Tx) { tx.Inc(v, 1) })
	n0, _ := rt.ShardClock(0)
	n1, _ := rt.ShardClock(1)
	if n0 == c0 {
		t.Fatal("write to recycled shard-0 Var did not move shard 0's clock")
	}
	if n1 != c1 {
		t.Fatalf("write to recycled shard-0 Var moved shard 1's clock (%d -> %d)", c1, n1)
	}
	if v.Load() != 6 {
		t.Fatalf("recycled Var value = %d, want 6", v.Load())
	}
}

// chaosPrivatize races privatizing unlinkers against fault-plan-doomed
// readers over a generation chain: gen holds the index of the current node
// (a pair of Vars with invariant a == -b != 0), privatizers install a fresh
// pair and retire the old one, and readers assert snapshot atomicity over
// the pair. Premature reclamation — recycling a cell while a doomed reader
// is still pinned to it — would let a committed read observe a torn pair;
// -race additionally catches any unlink that skipped the barrier.
func chaosPrivatize(t *testing.T, rt *stm.Runtime, sharded bool) {
	t.Helper()
	workers, per := chaosScale(t)
	rt.SetFaultPlan(stm.NewFaultPlan(0x9E1).
		WithSpurious(stm.SiteRead, 5).
		WithSpurious(stm.SiteCommit, 8).
		WithValidationFail(10).
		WithCommitDelay(1, 20*time.Microsecond))
	rt.SetEscalateAfter(64)

	const privatizers = 2
	maxGen := 1 + privatizers*per + 1
	slots := make([][2]*stm.Var, maxGen)
	newPair := func(idx int64) [2]*stm.Var {
		shard := 0
		if sharded {
			shard = int(idx) % rt.Shards()
		}
		return [2]*stm.Var{stm.NewVarOn(shard, idx+1), stm.NewVarOn(shard, -(idx + 1))}
	}
	slots[0] = newPair(0)
	gen := stm.NewVar(0)
	var nextIdx atomic.Int64
	var violations atomic.Int64

	var wg sync.WaitGroup
	for p := 0; p < privatizers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				idx := nextIdx.Add(1)
				slots[idx] = newPair(idx)
				victim := int64(0)
				rt.AtomicallyPrivatize(func(tx *stm.Tx) {
					victim = tx.Read(gen)
					tx.Write(gen, idx)
				})
				pair := slots[victim]
				a, b := pair[0].Load(), pair[1].Load()
				if a != victim+1 || b != -(victim+1) {
					violations.Add(1)
				}
				stm.Retire(pair[0])
				stm.Retire(pair[1])
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var idx, a, b int64
				rt.Atomically(func(tx *stm.Tx) {
					idx = tx.Read(gen)
					a = tx.Read(slots[idx][0])
					b = tx.Read(slots[idx][1])
				})
				if a != idx+1 || a+b != 0 {
					violations.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d torn pairs observed past the privatization barrier", n)
	}
	if err := rt.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if s := core.ReadEpochStats(); s.Retired == 0 {
		t.Fatal("churn retired nothing")
	}
}

// TestChaosPrivatizeClassic covers the single-instance engines whose commit
// fences differ most: NOrec's seqlock drain, TL2's orec-version fence, and
// plain value/version baselines.
func TestChaosPrivatizeClassic(t *testing.T) {
	for _, a := range []stm.Algorithm{stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2, stm.SRing, stm.SGL} {
		t.Run(a.String(), func(t *testing.T) {
			chaosPrivatize(t, stm.New(a), false)
		})
	}
}

// TestChaosPrivatizeSharded covers the scoped cross-shard drain: pairs are
// spread across shards, so privatizing commits exercise both single-shard
// and two-phase cross-shard barriers.
func TestChaosPrivatizeSharded(t *testing.T) {
	for _, a := range []stm.Algorithm{stm.SNOrec, stm.STL2} {
		t.Run(a.String(), func(t *testing.T) {
			chaosPrivatize(t, stm.NewShardedRuntime(a, 4), true)
		})
	}
}

// TestChaosPrivatizeHybrid covers the progressive HyTM engine, where a
// privatizing commit additionally demotes the uninstrumented fast path for
// the duration of the drain window.
func TestChaosPrivatizeHybrid(t *testing.T) {
	for _, a := range []stm.Algorithm{stm.HyTM, stm.HyTMMid} {
		t.Run(a.String(), func(t *testing.T) {
			rt := stm.New(a)
			rt.ConfigureHTM(8, 2, 10)
			chaosPrivatize(t, rt, false)
		})
	}
}
