// Progress-guarantee layer: bounded and cancellable execution, typed abort
// errors, and the starvation escape to an irrevocable serializing mode.
//
// The paper's retry loop (Atomically) is obstruction-free at best: a
// transaction that keeps losing validation can spin forever. Following the
// argument of Kuznetsov & Ravi ("Why Transactional Memory Should Not Be
// Obstruction-Free") — and the role the lock fallback plays in making
// best-effort HTM deployable — this layer trades unbounded optimism for
// practical progress three ways:
//
//   - TryAtomically bounds the attempt count and returns a typed
//     *AbortError carrying every attempt's abort reason;
//   - AtomicallyCtx bounds execution by a context, so callers can cancel or
//     deadline a livelocked transaction;
//   - after EscalateAfter consecutive aborts, Atomically-family calls
//     escalate to an irrevocable serializing mode: the transaction takes a
//     serialization token that blocks all new attempts (the software
//     analogue of the HTM backend's single-global-lock fallback), outlasts
//     the finite in-flight attempts, and then runs alone, which commits
//     deterministically.
package stm

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"semstm/internal/core"
)

// AbortReason classifies why a transaction attempt aborted; see the core
// Reason constants re-exported below.
type AbortReason = core.Reason

// The abort-reason taxonomy, threaded from every backend's abort sites.
const (
	// AbortUnknown: an untagged abort (legacy call sites).
	AbortUnknown = core.ReasonUnknown
	// AbortValidation: classical read-set validation failed.
	AbortValidation = core.ReasonValidation
	// AbortCmpFlip: a recorded semantic fact changed outcome.
	AbortCmpFlip = core.ReasonCmpFlip
	// AbortOrecLocked: gave up waiting for a locked ownership record.
	AbortOrecLocked = core.ReasonOrecLocked
	// AbortCapacity: HTM capacity exhausted or RingSTM ring wrap.
	AbortCapacity = core.ReasonCapacity
	// AbortSpurious: simulated-hardware or injected spurious failure.
	AbortSpurious = core.ReasonSpurious
	// AbortExplicit: user code called Tx.Restart.
	AbortExplicit = core.ReasonExplicit
	// AbortLogFail: a durable runtime could not append the commit's redo
	// records to the write-ahead log. The retry loop escalates the next
	// attempt straight to the irrevocable serializing mode and the runtime
	// continues volatile (Durable.WALFailed reports the latched failure).
	AbortLogFail = core.ReasonLogFail
	// AbortHWConflict: a hardware path of the progressive HyTM engine lost
	// its conflict-detection epoch. Repeated hw-conflicts demote the
	// transaction one path down the fast → middle → slow ladder.
	AbortHWConflict = core.ReasonHWConflict
	// AbortHWCapacity: a hardware path of the progressive HyTM engine
	// overflowed the simulated tracking buffers; demotes immediately.
	AbortHWCapacity = core.ReasonHWCapacity
)

// CrashSite identifies a crash-injection point on the durable commit
// pipeline; arm one with FaultPlan.WithCrash on a durable runtime's plan.
type CrashSite = core.CrashSite

// The injectable crash sites (see the core package for their exact
// semantics): death before the batch fsync, death midway through a record
// write, and death after the records are durable but before publication.
const (
	CrashPreFsync            = core.CrashPreFsync
	CrashTornWrite           = core.CrashTornWrite
	CrashPostFsyncPrePublish = core.CrashPostFsyncPrePublish
)

// FaultPlan deterministically injects faults (spurious aborts, forced
// validation failures, commit delays) into the algorithm backends; see
// Runtime.SetFaultPlan and the core package for the knobs.
type FaultPlan = core.FaultPlan

// FaultSite identifies a backend instrumentation point of a FaultPlan.
type FaultSite = core.FaultSite

// The injectable fault sites, re-exported for FaultPlan configuration.
const (
	SiteStart  = core.SiteStart
	SiteRead   = core.SiteRead
	SiteCmp    = core.SiteCmp
	SiteCommit = core.SiteCommit
)

// NewFaultPlan returns an inert fault plan rooted at seed; arm it with the
// With* methods and install it with Runtime.SetFaultPlan before the runtime
// is shared.
func NewFaultPlan(seed uint64) *FaultPlan { return core.NewFaultPlan(seed) }

// AbortError is the typed failure of the bounded execution APIs: the
// transaction did not commit within its attempt budget (Cause == nil) or
// its context ended first (Cause == ctx.Err()).
type AbortError struct {
	// Attempts is how many attempts ran and aborted.
	Attempts int
	// Reasons holds the abort reason of each failed attempt, oldest first.
	// At most abortReasonCap entries are retained (the most recent ones),
	// so unbounded context-cancelled runs cannot accumulate memory.
	Reasons []AbortReason
	// Escalated reports whether the transaction had entered the irrevocable
	// serializing mode before giving up (once the last pre-gate attempt
	// finishes, only an explicit Restart or a context end can still abort an
	// escalated transaction).
	Escalated bool
	// Cause is the context error when the run was cancelled, nil when the
	// attempt budget was exhausted.
	Cause error
}

// abortReasonCap bounds AbortError.Reasons.
const abortReasonCap = 64

// Error summarizes the failure, with a reason histogram when one exists.
func (e *AbortError) Error() string {
	msg := fmt.Sprintf("stm: transaction aborted after %d attempt(s)", e.Attempts)
	if len(e.Reasons) > 0 {
		counts := make(map[string]int, 4)
		for _, r := range e.Reasons {
			counts[r.String()]++
		}
		msg += fmt.Sprintf(" (reasons: %v)", counts)
	}
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the context error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work on cancelled runs.
func (e *AbortError) Unwrap() error { return e.Cause }

// TryOption configures a TryAtomically call.
type TryOption func(*tryOpts)

type tryOpts struct {
	maxAttempts int
}

// DefaultMaxAttempts is TryAtomically's attempt budget when no MaxAttempts
// option is given.
const DefaultMaxAttempts = 64

// MaxAttempts bounds a TryAtomically call to n attempts (n >= 1).
func MaxAttempts(n int) TryOption {
	return func(o *tryOpts) { o.maxAttempts = n }
}

// DefaultEscalateAfter is the consecutive-abort threshold at which a
// transaction escalates to the irrevocable serializing mode. Workloads that
// abort this many times in a row are starving; serializing one transaction
// is cheaper than letting it spin indefinitely.
const DefaultEscalateAfter = 256

// maxBackoffPerCall caps the cumulative exponential-backoff sleep of one
// Atomically-family call, so a starved transaction reaches its escalation
// threshold (or its caller's deadline) in bounded wall-clock time instead of
// sleeping ever longer between doomed attempts.
const maxBackoffPerCall = 100 * time.Millisecond

// TryAtomically executes fn as one transaction with a bounded attempt
// budget. It returns nil once an attempt commits, or a *AbortError carrying
// the attempt count and the per-attempt abort reasons once the budget is
// exhausted. Escalation still applies if the budget exceeds the runtime's
// EscalateAfter threshold.
func (rt *Runtime) TryAtomically(fn func(tx *Tx), opts ...TryOption) error {
	max := DefaultMaxAttempts
	if len(opts) > 0 {
		// &o escapes into the option funcs, so the struct is only built when
		// options exist — the common zero-option call stays allocation-free.
		o := tryOpts{maxAttempts: DefaultMaxAttempts}
		for _, opt := range opts {
			opt(&o)
		}
		max = o.maxAttempts
	}
	if max < 1 {
		max = 1
	}
	return rt.run(fn, runCfg{maxAttempts: max})
}

// AtomicallyCtx executes fn as one transaction, retrying on conflict until
// it commits or ctx ends. On cancellation it returns a *AbortError whose
// Cause is ctx.Err() (and which errors.Is-matches the context error); the
// attempt in flight when the context ends is completed or rolled back, never
// torn.
func (rt *Runtime) AtomicallyCtx(ctx context.Context, fn func(tx *Tx)) error {
	if err := ctx.Err(); err != nil {
		return &AbortError{Cause: err}
	}
	return rt.run(fn, runCfg{done: ctx.Done(), ctx: ctx})
}

// runCfg bounds one run of the retry engine. It carries the context itself
// rather than a ctx.Err method value: binding the method allocated a closure
// on every AtomicallyCtx call, including the ones that commit first try.
type runCfg struct {
	maxAttempts int             // 0 = unbounded
	done        <-chan struct{} // non-nil under AtomicallyCtx
	ctx         context.Context // non-nil under AtomicallyCtx; supplies Cause
	privatize   bool            // commit through the engine's privatizing variant
	batchUnits  int             // logical transactions folded into this commit (AtomicallyBatch)
}

// run is the retry engine shared by Atomically, AtomicallyCtx, and
// TryAtomically: gated attempts, reason collection, cancellation-aware
// backoff, and the starvation escalation. The unbounded no-fault path must
// stay hot: per attempt it adds one load of the read-mostly escalator gate
// and predictable branches — everything else is behind `bounded` or the
// escalation threshold. The whole call is allocation-free after descriptor
// warm-up: the descriptor comes from the pool, the reason log lives in the
// descriptor's fixed buffer, and the only remaining allocation is the
// *AbortError built on the bounded failure path.
func (rt *Runtime) run(fn func(tx *Tx), cfg runCfg) error {
	tx := rt.txPool.Get().(*Tx)
	defer rt.releaseTx(tx)
	// Pin the reclamation epoch for the whole call (every attempt included):
	// any *Var pointer the body captures stays out of the recycler until the
	// pin drops (core/epoch.go). LIFO defers run Exit before the pool return.
	tx.pin.Enter()
	defer tx.pin.Exit()
	if tx.epoch != nil {
		tx.epoch.NewEpoch()
	}
	bounded := cfg.maxAttempts > 0 || cfg.done != nil
	adaptive := rt.adapt != nil
	escAfter := rt.escalateAfter
	reasons := tx.reasonBuf[:0]
	escalated := false
	budget := maxBackoffPerCall
	defer func() {
		if escalated {
			tx.impl.SetFaultPlan(rt.faultPlan)
			rt.esc.release()
		}
	}()
	for attempt := 0; ; attempt++ {
		if bounded {
			if cfg.done != nil {
				select {
				case <-cfg.done:
					return runErr(attempt, reasons, escalated, cfg)
				default:
				}
			}
			if cfg.maxAttempts > 0 && attempt >= cfg.maxAttempts {
				return runErr(attempt, reasons, escalated, cfg)
			}
		}
		entered := false
		if !escalated {
			// A log-write failure escalates immediately: the WAL is latched
			// failed, so the retry would succeed anyway, but the irrevocable
			// mode guarantees the degraded commit completes right now
			// instead of re-entering the optimistic scrum.
			logFailed := attempt > 0 && tx.lastReason == core.ReasonLogFail
			if logFailed || (escAfter > 0 && attempt >= escAfter) {
				escalated = true
				rt.esc.acquire()
				if adaptive {
					// An engine switch may have completed while this attempt
					// queued for the escalator mutex; holding the mutex now
					// blocks further switches, so a rebind here is final.
					// Rebind before disarming: rebind re-arms the fault plan.
					if slot := rt.cur.Load(); tx.slot != slot {
						tx.rebind(slot)
					}
				}
				tx.impl.SetFaultPlan(nil) // irrevocable mode must not abort
				tx.shard.CountEscalation()
			} else if adaptive {
				// Adaptive runtimes run the full switch protocol: bind, raise
				// the active flag, re-check the gate and the binding.
				if !rt.enterAttempt(tx, cfg.done) {
					return runErr(attempt, reasons, escalated, cfg)
				}
				entered = true
			} else if rt.esc.gate.Load() != 0 && !rt.esc.wait(cfg.done) {
				// Cancelled while parked behind an active escalation.
				return runErr(attempt, reasons, escalated, cfg)
			}
		}
		committed, _ := rt.tryOnce(tx, fn, cfg)
		if entered {
			tx.active.Store(0)
			rt.noteAttempt(tx)
		}
		if committed {
			return nil
		}
		if bounded {
			if len(reasons) == abortReasonCap {
				copy(reasons, reasons[1:])
				reasons = reasons[:abortReasonCap-1]
			}
			reasons = append(reasons, tx.lastReason)
		}
		if !escalated {
			tx.backoff(attempt, cfg.done, &budget)
		} else {
			runtime.Gosched() // let the remaining disturbers finish
		}
	}
}

// runErr builds the typed failure of a bounded run. The reason log is copied
// out of the descriptor's buffer here — the descriptor is about to return to
// the pool, and this failure path is the one place a bounded run allocates.
func runErr(attempts int, reasons []AbortReason, escalated bool, cfg runCfg) *AbortError {
	err := &AbortError{Attempts: attempts, Escalated: escalated}
	if len(reasons) > 0 {
		err.Reasons = append([]AbortReason(nil), reasons...)
	}
	if cfg.ctx != nil {
		err.Cause = cfg.ctx.Err()
	}
	return err
}

// escalator implements the serializing protocol of the irrevocable mode
// without touching the fast path: normal attempts only LOAD the read-mostly
// gate word (one predictable cache hit per attempt — no RMW, no shared-line
// write). An escalating transaction serializes behind a mutex and raises
// the gate; it does NOT wait for quiescence. Instead it relies on monotonic
// draining: no attempt that observes the raised gate starts, so the set of
// in-flight "disturber" attempts is finite and strictly shrinking — each
// can abort the escalated transaction at most once (by committing) before
// its own next attempt parks at the gate. After at most that many retries
// the escalated transaction runs alone, and every backend then commits it
// deterministically: there is nobody left to fail validation against, lock
// an orec, or move a clock.
type escalator struct {
	mu   sync.Mutex
	gate atomic.Uint32
}

// wait parks until the gate drops. It reports false only when done fires
// while waiting.
func (e *escalator) wait(done <-chan struct{}) bool {
	for e.gate.Load() != 0 {
		if done != nil {
			select {
			case <-done:
				return false
			default:
			}
		}
		runtime.Gosched()
	}
	return true
}

// acquire serializes this escalation and raises the gate.
func (e *escalator) acquire() {
	e.mu.Lock()
	e.gate.Store(1)
}

// release lowers the gate and lets normal attempts resume.
func (e *escalator) release() {
	e.gate.Store(0)
	e.mu.Unlock()
}

// SetFaultPlan installs a deterministic fault-injection plan on every
// transaction descriptor of the runtime (nil disarms). Like the other
// knobs, it must be set before the runtime is shared between goroutines.
// Escalated (irrevocable) transactions run with the plan disarmed — they
// are past the point of aborting.
func (rt *Runtime) SetFaultPlan(p *FaultPlan) { rt.faultPlan = p }

// SetEscalateAfter sets the consecutive-abort threshold at which one
// Atomically-family call escalates to the irrevocable serializing mode
// (default DefaultEscalateAfter; 0 disables escalation). Must be set before
// the runtime is shared.
func (rt *Runtime) SetEscalateAfter(n int) { rt.escalateAfter = n }

// CheckQuiescent verifies, at a point where no transaction is in flight,
// that the runtime's global metadata holds no leaked resources: the
// NOrec/HTM sequence locks are free, no TL2 ownership record is left
// locked, the newest RingSTM commit record is complete, and the SGL mutex
// is unlocked. The chaos and panic-rollback tests call it after every run;
// production code can use it as a health probe at quiescent points.
func (rt *Runtime) CheckQuiescent() error {
	rt.engMu.Lock()
	defer rt.engMu.Unlock()
	for _, eng := range rt.engines {
		if eng == nil {
			continue
		}
		if err := eng.Quiescent(); err != nil {
			return err
		}
	}
	return nil
}

// txSeedCtr decorrelates descriptor RNG seeds allocated in the same
// nanosecond (time.Now().UnixNano alone produced shared backoff and
// spurious-abort streams for descriptors born together).
var txSeedCtr atomic.Uint64

// uniqueSeed mixes the clock with a process-global counter through
// SplitMix64, so every descriptor draws an independent stream.
func uniqueSeed() int64 {
	x := uint64(time.Now().UnixNano()) + txSeedCtr.Add(1)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return int64(x ^ (x >> 31))
}
