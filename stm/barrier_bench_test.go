package stm_test

// Barrier microbenchmarks: per-operation cost of the hot transactional
// barriers, single-threaded, no contention. These isolate the instruction
// cost the write-set representation and the stats path add to every Read /
// Write / Cmp / Inc, which is the overhead the paper's "semantic barriers
// must stay cheap" argument depends on.
//
// The cases mirror the three shapes a read barrier can take:
//
//   - ReadEmptyWS:  read with an empty write-set (the common read-only case);
//   - ReadMissWS:   read with a non-empty write-set that does NOT contain the
//     variable (the dominant mixed-transaction case — a Bloom signature
//     should answer it without any lookup);
//   - ReadHitWS:    read-after-write on a buffered variable;
//   - WriteInsert:  first write to each variable (write-set insert);
//   - WriteUpdate:  repeated writes to one variable (write-set update);
//   - IncThenReadPromote: inc followed by read of the same variable
//     (the Algorithm 6 promotion path).
//
// Run with:
//
//	go test ./stm -bench=BenchmarkBarrier -benchtime=2s

import (
	"testing"

	"semstm/stm"
)

// barrierAlgos are the algorithms whose barrier costs the paper compares.
var barrierAlgos = []stm.Algorithm{stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2}

func benchBarrier(b *testing.B, fn func(b *testing.B, rt *stm.Runtime)) {
	for _, a := range barrierAlgos {
		b.Run(a.String(), func(b *testing.B) {
			rt := stm.New(a)
			fn(b, rt)
		})
	}
}

// BenchmarkBarrierReadEmptyWS measures the classical read barrier when the
// write-set is empty: 16 reads per transaction over disjoint variables.
func BenchmarkBarrierReadEmptyWS(b *testing.B) {
	benchBarrier(b, func(b *testing.B, rt *stm.Runtime) {
		vars := stm.NewVars(16, 7)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				for _, v := range vars {
					sink += tx.Read(v)
				}
			})
		}
		_ = sink
	})
}

// BenchmarkBarrierReadMissWS measures the read barrier when the write-set is
// non-empty but does not contain the variable being read: 4 writes followed
// by 16 reads of other variables. This is the path the Bloom signature
// accelerates (the acceptance target of the hot-path overhaul).
func BenchmarkBarrierReadMissWS(b *testing.B) {
	benchBarrier(b, func(b *testing.B, rt *stm.Runtime) {
		wvars := stm.NewVars(4, 0)
		rvars := stm.NewVars(16, 7)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				for j, v := range wvars {
					tx.Write(v, int64(j))
				}
				for _, v := range rvars {
					sink += tx.Read(v)
				}
			})
		}
		_ = sink
	})
}

// BenchmarkBarrierReadMissWSLarge is ReadMissWS with a 24-entry write-set,
// exercising the large-set index (beyond the small-set linear scan).
func BenchmarkBarrierReadMissWSLarge(b *testing.B) {
	benchBarrier(b, func(b *testing.B, rt *stm.Runtime) {
		wvars := stm.NewVars(24, 0)
		rvars := stm.NewVars(16, 7)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				for j, v := range wvars {
					tx.Write(v, int64(j))
				}
				for _, v := range rvars {
					sink += tx.Read(v)
				}
			})
		}
		_ = sink
	})
}

// BenchmarkBarrierReadHitWS measures the read-after-write path: 8 writes,
// then 8 reads of the same variables.
func BenchmarkBarrierReadHitWS(b *testing.B) {
	benchBarrier(b, func(b *testing.B, rt *stm.Runtime) {
		vars := stm.NewVars(8, 0)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				for j, v := range vars {
					tx.Write(v, int64(j))
				}
				for _, v := range vars {
					sink += tx.Read(v)
				}
			})
		}
		_ = sink
	})
}

// BenchmarkBarrierWriteInsert measures write-set inserts: 16 first writes per
// transaction.
func BenchmarkBarrierWriteInsert(b *testing.B) {
	benchBarrier(b, func(b *testing.B, rt *stm.Runtime) {
		vars := stm.NewVars(16, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				for j, v := range vars {
					tx.Write(v, int64(j))
				}
			})
		}
	})
}

// BenchmarkBarrierWriteUpdate measures write-set updates: one insert then 15
// overwrites of the same variable.
func BenchmarkBarrierWriteUpdate(b *testing.B) {
	benchBarrier(b, func(b *testing.B, rt *stm.Runtime) {
		v := stm.NewVar(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				for j := 0; j < 16; j++ {
					tx.Write(v, int64(j))
				}
			})
		}
	})
}

// BenchmarkBarrierIncThenReadPromote measures the promotion path of
// Algorithm 6 lines 17–23: inc then read of the same variable.
func BenchmarkBarrierIncThenReadPromote(b *testing.B) {
	benchBarrier(b, func(b *testing.B, rt *stm.Runtime) {
		vars := stm.NewVars(8, 0)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				for _, v := range vars {
					tx.Inc(v, 1)
					sink += tx.Read(v)
				}
			})
		}
		_ = sink
	})
}

// BenchmarkBarrierCmpMissWS measures the semantic compare barrier against a
// non-empty write-set that misses — the S-NOrec/S-TL2 analogue of ReadMissWS.
func BenchmarkBarrierCmpMissWS(b *testing.B) {
	benchBarrier(b, func(b *testing.B, rt *stm.Runtime) {
		wvars := stm.NewVars(4, 0)
		rvars := stm.NewVars(16, 7)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			rt.Atomically(func(tx *stm.Tx) {
				for j, v := range wvars {
					tx.Write(v, int64(j))
				}
				for _, v := range rvars {
					if tx.GT(v, 0) {
						sink++
					}
				}
			})
		}
		_ = sink
	})
}
