package stm

import (
	"strings"
	"testing"

	"semstm/internal/core"
)

// TestRegistryExhaustive pins the engine registry to the public Algorithm
// surface: every identifier below the numAlgorithms sentinel is registered,
// every registered engine is listed by Algorithms(), and the descriptor
// metadata (name, semantic flag, composite marker) is self-consistent. A new
// backend that registers an engine but misses one of the pieces — or a new
// Algorithm constant without a registration — fails here rather than as a
// construction panic deep in a benchmark.
func TestRegistryExhaustive(t *testing.T) {
	algos := Algorithms()
	if len(algos) != int(numAlgorithms) {
		t.Fatalf("Algorithms() lists %d engines, registry sentinel says %d",
			len(algos), int(numAlgorithms))
	}
	listed := make(map[Algorithm]bool, len(algos))
	names := make(map[string]Algorithm, len(algos))
	for _, a := range algos {
		listed[a] = true
	}
	composites := 0
	for id := Algorithm(0); id < numAlgorithms; id++ {
		desc, ok := core.EngineFor(id)
		if !ok {
			t.Errorf("algorithm %d has no registered engine", int(id))
			continue
		}
		if !listed[id] {
			t.Errorf("%s is registered but missing from Algorithms()", desc.Name)
		}
		if desc.ID != id {
			t.Errorf("%s: descriptor ID %d under key %d", desc.Name, int(desc.ID), int(id))
		}
		if strings.HasPrefix(id.String(), "Algorithm(") {
			t.Errorf("algorithm %d has the fallback String() %q", int(id), id.String())
		}
		if id.String() != desc.Name {
			t.Errorf("algorithm %d: String() %q != registered name %q",
				int(id), id.String(), desc.Name)
		}
		if prev, dup := names[desc.Name]; dup {
			t.Errorf("name %q registered by both %d and %d", desc.Name, int(prev), int(id))
		}
		names[desc.Name] = id
		if id.Semantic() != desc.Semantic {
			t.Errorf("%s: Semantic() %v != descriptor %v", desc.Name, id.Semantic(), desc.Semantic)
		}
		if desc.Composite != (desc.New == nil) {
			t.Errorf("%s: Composite=%v but New==nil is %v",
				desc.Name, desc.Composite, desc.New == nil)
		}
		if desc.Composite {
			composites++
		}
	}
	if composites != 1 {
		t.Errorf("registry holds %d composite engines, want exactly 1 (Adaptive)", composites)
	}
	// Unregistered identifiers keep the diagnostic fallback name and are
	// rejected by New (TestNewUnknownAlgorithmPanics covers the panic).
	if s := Algorithm(numAlgorithms).String(); !strings.HasPrefix(s, "Algorithm(") {
		t.Errorf("out-of-range algorithm stringifies as %q", s)
	}
}

// TestRegistryCapabilityFlags pins the capability bits the harness and the
// adaptive policy rely on.
func TestRegistryCapabilityFlags(t *testing.T) {
	expect := map[Algorithm]struct {
		semantic, composed, irrevocable, htm bool
	}{
		NOrec:    {false, false, false, false},
		SNOrec:   {true, true, false, false},
		TL2:      {false, false, false, false},
		STL2:     {true, false, false, false}, // per-clause facts, no composed representation
		SGL:      {false, false, true, false},
		HTM:      {false, false, false, true},
		SHTM:     {true, true, false, true},
		Ring:     {false, false, false, false},
		SRing:    {true, false, false, false},
		Adaptive: {true, false, false, false},
		HyTM:     {true, true, false, true},
		HyTMMid:  {true, true, false, true},
	}
	for _, id := range []Algorithm{HyTM, HyTMMid} {
		desc, ok := core.EngineFor(id)
		if !ok {
			t.Fatalf("%v not registered", id)
		}
		if !desc.ProgressiveHTM || !desc.TwoPhase {
			t.Errorf("%s: ProgressiveHTM=%v TwoPhase=%v, want both true",
				desc.Name, desc.ProgressiveHTM, desc.TwoPhase)
		}
	}
	for id, w := range expect {
		desc, ok := core.EngineFor(id)
		if !ok {
			t.Fatalf("%v not registered", id)
		}
		got := struct{ semantic, composed, irrevocable, htm bool }{
			desc.Semantic, desc.ComposedFacts, desc.Irrevocable, desc.HTMBacked,
		}
		if got != w {
			t.Errorf("%s: capability flags %+v, want %+v", desc.Name, got, w)
		}
	}
}
