#!/usr/bin/env sh
# bench_baseline.sh — reproducible perf-baseline gate for this repo.
#
# Runs, in order, failing fast on the first error:
#   1. tier-1: go build ./... && go test ./...
#   2. go vet ./...
#   3. a short JSON micro-benchmark baseline via `semstm-bench -json`
#      ({hashtable, bank} x {NOrec, S-NOrec, TL2, S-TL2, RingSTM, S-RingSTM}
#      x {1,2,4,8} threads, best of 3 reps per cell, scheduler width =
#      thread count per cell; schema v3)
#
# Output path defaults to BENCH_baseline.json; pass a path to override,
# e.g. `scripts/bench_baseline.sh BENCH_PR1.json` to refresh the committed
# PR baseline. Per-cell duration defaults to 300ms; override with
# BENCH_DUR (e.g. BENCH_DUR=1s for a less noisy run).
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_baseline.json}"
DUR="${BENCH_DUR:-300ms}"

echo "== tier-1: go build ./... =="
go build ./...

echo "== tier-1: go test ./... =="
go test ./...

echo "== go vet ./... =="
go vet ./...

echo "== baseline: semstm-bench -json $OUT (-dur $DUR) =="
go run ./cmd/semstm-bench -json "$OUT" -dur "$DUR"

echo "== ok: baseline written to $OUT =="
