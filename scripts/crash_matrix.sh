#!/usr/bin/env sh
# crash_matrix.sh — sweep the crash-recovery chaos suite (stm/crashchaos_test.go)
# over seeds × crash sites × fsync policies.
#
# The suite itself iterates every crash site (torn write, pre-fsync,
# post-fsync-pre-publish) and every durable engine on each run; this script
# adds the outer axes the in-tree defaults pin down:
#   - SEMSTM_CRASH_SEED perturbs every cell's deterministic seed, moving the
#     crash to a different commit in a different interleaving;
#   - SEMSTM_CRASH_POLICY overrides the site-paired fsync policy, so every
#     site is also exercised under the policies it is not paired with by
#     default ("" keeps the in-tree pairing).
#
# Usage:
#   scripts/crash_matrix.sh          full sweep: 5 seeds x 4 policy modes
#   scripts/crash_matrix.sh quick    1 seed, site-paired policies only (the
#                                    deterministic subset check.sh runs)
#
# Every run is race-instrumented; any invariant violation (conservation,
# chain integrity, prefix consistency) fails the matrix immediately.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "quick" ]; then
    SEEDS="1"
    POLICIES="paired"
else
    SEEDS="1 2 3 4 5"
    POLICIES="paired always interval none"
fi

for seed in $SEEDS; do
    for pol in $POLICIES; do
        if [ "$pol" = "paired" ]; then
            override=""
            label="site-paired"
        else
            override="$pol"
            label="$pol"
        fi
        echo "== crash matrix: seed $seed, fsync policy $label =="
        SEMSTM_CRASH_SEED="$seed" SEMSTM_CRASH_POLICY="$override" \
            go test -race -count=1 -run 'TestCrashRecovery' ./stm/
    done
done
echo "crash matrix passed"
