#!/usr/bin/env sh
# check.sh — correctness gate for this repo: tier-1, vet, and the race-
# instrumented robustness suites.
#
# Runs, in order, failing fast on the first error:
#   1. gofmt -l: the tree must be gofmt-clean
#   2. tier-1: go build ./... && go test ./...
#   3. go vet ./...
#   4. go test -race on the runtime-facing packages (the public stm API,
#      core, and every algorithm backend) — this is where the chaos,
#      panic-rollback, escalation, and adaptive engine-switch suites live.
#      The race pass runs the chaos suites in -short mode by default; set
#      CHECK_LONG=1 to run the full-size chaos sweep (heavier, minutes not
#      seconds).
#   5. the allocation gate: every BenchmarkBarrier* sub-benchmark — the
#      barrier shapes and the all-engine BenchmarkBarrierZeroAlloc lifecycle
#      matrix — must report exactly 0 allocs/op. The 5000x fixed iteration
#      count is load-bearing: one warm-up allocation amortizes to <0.5
#      allocs/op (which -benchmem truncates to 0) only at high counts, while
#      a genuine per-transaction allocation still shows as ≥1.
#   6. a bench-compare smoke: a tiny 2-thread baseline (40ms cells) is
#      captured and diffed against itself, so the BENCH_*.json plumbing and
#      the regression (throughput + allocs/tx) gate are exercised on every
#      check.
#   7. the shard-scaling gate: the 32-shard sharded runtime, running
#      single-shard transactions only, must out-commit the 1-shard cell by
#      at least 8x on both micro-benchmarks (NOrec, 32 workers under the
#      interleave simulation) — the PR6 acceptance bar defending the
#      per-shard-clock design against accidental cross-shard coupling.
#   8. the crash-recovery matrix, quick subset: one deterministic seed of
#      the chaos suite under the site-paired fsync policies (run
#      scripts/crash_matrix.sh for the full seeds x sites x policies sweep).
#   9. the durability-overhead gate: the durable sharded bank under the
#      "interval" fsync policy must keep >= 0.65 of the volatile cell's
#      throughput at 32 shards — the PR7 acceptance bar defending the
#      off-commit-path fsync design (background flusher, scaled window).
#  10. the instrumentation-cost gate: on the capacity-edge hashtable scan,
#      HyTM's uninstrumented fast path must out-commit classic fully
#      instrumented HTM by >= 1.5x — the PR8 acceptance bar defending the
#      progressive fast path (the instrumented engine's tracked footprint
#      overflows the simulated hardware budget; the fast path's first-touch
#      footprint fits and commits in hardware).
#  11. the privatization gate: on the snapshot-analytics workload under the
#      interleave simulation, a privatized scan (flip the buffer with
#      AtomicallyPrivatize, then read it raw) must out-scan the fully
#      instrumented transactional scan by >= 5x — the PR9 acceptance bar
#      defending the privatization barrier as the cheap way to read big
#      snapshots out from under live writers.
#  12. the reclamation gate: three sampled windows of single-threaded
#      NewVar -> Atomically -> Retire churn must hold runtime.MemStats
#      HeapAlloc steady (<= 10% growth + fixed slack from window 1 to 3,
#      with Reclaimed > 0) — the PR9 acceptance bar defending epoch-based
#      reclamation actually recycling cells instead of leaking them.
#  13. the commit-coalescing gate: the counter-heavy load generator at 1024
#      simulated connections over a durable 8-shard store (fsync "always")
#      must run >= 3x faster through the per-shard batcher than per-request
#      — the PR10 acceptance bar defending request coalescing actually
#      amortizing the commit + WAL-fsync path.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l =="
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== tier-1: go build ./... =="
go build ./...

echo "== tier-1: go test ./... =="
go test ./...

echo "== go vet ./... =="
go vet ./...

RACE_PKGS="./stm/... ./internal/core/... ./internal/norec/... ./internal/tl2/... ./internal/ringstm/... ./internal/htm/... ./internal/sgl/... ./internal/shard/... ./internal/wal/... ./internal/server/..."

if [ "${CHECK_LONG:-0}" = "1" ]; then
    echo "== go test -race (full chaos sweep) =="
    # shellcheck disable=SC2086
    go test -race -count=1 $RACE_PKGS
else
    echo "== go test -race -short (set CHECK_LONG=1 for the full sweep) =="
    # shellcheck disable=SC2086
    go test -race -short -count=1 $RACE_PKGS
fi

echo "== allocation gate: BenchmarkBarrier* must be 0 allocs/op =="
ALLOC_OUT="$(go test ./stm -run '^$' -bench 'BenchmarkBarrier' -benchtime 5000x -benchmem)"
echo "$ALLOC_OUT" | awk '
    /^BenchmarkBarrier/ {
        if ($(NF-1) + 0 != 0 || $NF != "allocs/op") {
            print "ALLOC REGRESSION: " $0
            bad = 1
        }
    }
    END { exit bad }
' || { echo "allocation gate failed (see lines above)" >&2; exit 1; }

echo "== bench-compare smoke (40ms cells, 2 threads) =="
SMOKE="$(mktemp -t bench_smoke.XXXXXX.json)"
trap 'rm -f "$SMOKE"' EXIT
go run ./cmd/semstm-bench -json "$SMOKE" -dur 40ms -threads 2 -reps 1 >/dev/null
go run ./cmd/bench-compare "$SMOKE" "$SMOKE" >/dev/null

echo "== shard-scaling gate (32 shards must be >= 8x the 1-shard cell) =="
go run ./cmd/semstm-bench -shardgate -dur 200ms -reps 2

echo "== crash-recovery matrix, quick subset (scripts/crash_matrix.sh for the sweep) =="
sh scripts/crash_matrix.sh quick

echo "== durability-overhead gate (durable interval >= 0.65x volatile at 32 shards) =="
go run ./cmd/semstm-bench -durgate -dur 300ms -reps 2

echo "== instrumentation-cost gate (HyTM fast path >= 1.5x classic HTM on the scan cell) =="
go run ./cmd/semstm-bench -hybridgate -dur 300ms -reps 2

echo "== privatization gate (privatized snapshot scan >= 5x instrumented) =="
go run ./cmd/semstm-bench -privgate -dur 200ms -reps 2

echo "== reclamation gate (steady-state heap under retire churn) =="
go run ./cmd/semstm-bench -reclaimgate -dur 200ms -reps 1

echo "== commit-coalescing gate (batched >= 3x unbatched on durable counter loadgen) =="
go run ./cmd/semstm-bench -servegate -dur 300ms -reps 2

echo "== ok =="
