#!/usr/bin/env sh
# profile.sh — capture CPU and heap (allocation) pprof profiles of the
# baseline benchmark grid, so a perf investigation starts from a flame graph
# instead of guesses.
#
# Usage:
#   scripts/profile.sh [extra semstm-bench flags...]
#
# Environment:
#   PROFILE_DIR  output directory (default: profiles/)
#   DUR          per-cell duration (default: 200ms)
#
# Writes $PROFILE_DIR/{cpu.pprof,mem.pprof,bench.json} and prints the top-10
# of each profile. Inspect interactively with:
#   go tool pprof -http=:8080 profiles/cpu.pprof
set -eu

cd "$(dirname "$0")/.."

OUT="${PROFILE_DIR:-profiles}"
DUR="${DUR:-200ms}"
mkdir -p "$OUT"

go run ./cmd/semstm-bench \
    -json "$OUT/bench.json" -dur "$DUR" -reps 1 \
    -cpuprofile "$OUT/cpu.pprof" -memprofile "$OUT/mem.pprof" "$@"

echo
echo "== top CPU (cumulative) =="
go tool pprof -top -nodecount=10 "$OUT/cpu.pprof" | sed -n '1,20p'
echo
echo "== top allocation sites (alloc_space) =="
go tool pprof -top -nodecount=10 -sample_index=alloc_space "$OUT/mem.pprof" | sed -n '1,20p'
echo
echo "profiles in $OUT/: cpu.pprof mem.pprof (go tool pprof -http=:8080 <file>)"
