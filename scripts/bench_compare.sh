#!/usr/bin/env sh
# bench_compare.sh — diff two BENCH_*.json baselines cell by cell and fail
# on throughput regressions beyond a tolerance.
#
# Usage:
#   scripts/bench_compare.sh OLD.json NEW.json [MAX_REGRESS_PCT]
#
# Cells are matched by (workload, algorithm, threads); the default tolerance
# is a 10% throughput drop per cell. Exit status 1 on any regression beyond
# the tolerance, so the script can gate CI:
#
#   scripts/bench_compare.sh BENCH_PR1.json BENCH_PR3.json
#   scripts/bench_compare.sh BENCH_PR1.json BENCH_PR3.json 5
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -lt 2 ]; then
    echo "usage: scripts/bench_compare.sh OLD.json NEW.json [MAX_REGRESS_PCT]" >&2
    exit 2
fi

OLD="$1"
NEW="$2"
MAX="${3:-10}"

exec go run ./cmd/bench-compare -max-regress "$MAX" "$OLD" "$NEW"
