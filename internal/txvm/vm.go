// Package txvm executes GIMPLE-like IR programs against the semantic STM
// runtime. It plays the role of the GCC-compiled binary in the paper's
// second evaluation: inside atomic regions *every* shared access goes
// through a TM barrier (whole-block speculation, unlike the explicit-API
// RSTM mode), and the semantic builtins emitted by the tm_mark pattern
// detection map onto the runtime's Cmp/CmpVars/Inc operations — or, on a
// non-semantic runtime, delegate to classical barriers ("NOrec
// Modified-GCC").
package txvm

import (
	"fmt"
	"math/rand"

	"semstm/internal/gimple"
	"semstm/stm"
)

// VM holds a program, its shared memory image, and the runtime executing its
// atomic regions.
type VM struct {
	prog   *gimple.Program
	rt     *stm.Runtime
	shared []*stm.Var
	// MaxSteps bounds the instructions of a single Call as a runaway-loop
	// backstop.
	MaxSteps int64
}

// New creates a VM with zeroed shared memory.
func New(prog *gimple.Program, rt *stm.Runtime) *VM {
	return &VM{
		prog:     prog,
		rt:       rt,
		shared:   stm.NewVars(int(prog.SharedSize), 0),
		MaxSteps: 1 << 30,
	}
}

// Runtime returns the backing STM runtime.
func (vm *VM) Runtime() *stm.Runtime { return vm.rt }

// SetShared initializes shared[name+offset] non-transactionally.
func (vm *VM) SetShared(name string, offset, val int64) error {
	base, ok := vm.prog.Symbols[name]
	if !ok {
		return fmt.Errorf("txvm: unknown shared symbol %q", name)
	}
	addr := base + offset
	if addr < 0 || addr >= vm.prog.SharedSize {
		return fmt.Errorf("txvm: %s[%d] out of range", name, offset)
	}
	vm.shared[addr].StoreNT(val)
	return nil
}

// SharedNT reads shared[name+offset] non-transactionally.
func (vm *VM) SharedNT(name string, offset int64) (int64, error) {
	base, ok := vm.prog.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("txvm: unknown shared symbol %q", name)
	}
	addr := base + offset
	if addr < 0 || addr >= vm.prog.SharedSize {
		return 0, fmt.Errorf("txvm: %s[%d] out of range", name, offset)
	}
	return vm.shared[addr].Load(), nil
}

// Thread is one executor; each OS-level worker should own one (it carries
// the PRNG backing the rand builtin).
type Thread struct {
	vm    *VM
	rng   *rand.Rand
	steps int64
}

// NewThread creates a thread with a seeded PRNG.
func (vm *VM) NewThread(seed int64) *Thread {
	return &Thread{vm: vm, rng: rand.New(rand.NewSource(seed))}
}

// vmError wraps a runtime error so it can unwind through Atomically.
type vmError struct{ err error }

// Call runs the named function to completion and returns its value.
func (th *Thread) Call(name string, args ...int64) (ret int64, err error) {
	f, err := th.vm.prog.Lookup(name)
	if err != nil {
		return 0, err
	}
	if len(args) != f.NumParams {
		return 0, fmt.Errorf("txvm: %s expects %d args, got %d", name, f.NumParams, len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if ve, ok := r.(vmError); ok {
				err = ve.err
				return
			}
			panic(r)
		}
	}()
	th.steps = 0
	return th.call(f, args, nil), nil
}

func (th *Thread) fail(format string, a ...any) {
	panic(vmError{fmt.Errorf("txvm: "+format, a...)})
}

// frame is one activation record.
type frame struct {
	f      *gimple.Function
	regs   []int64
	locals []int64
}

// call executes f with args under the given (possibly nil) transaction.
func (th *Thread) call(f *gimple.Function, args []int64, tx *stm.Tx) int64 {
	fr := &frame{
		f:      f,
		regs:   make([]int64, f.NumTemps),
		locals: make([]int64, f.NumLocals),
	}
	copy(fr.locals, args)
	ret, _, _, _ := th.run(fr, 0, 0, tx, false)
	return ret
}

// value resolves an operand against the frame.
func (th *Thread) value(fr *frame, o gimple.Operand) int64 {
	switch o.Kind {
	case gimple.Imm:
		return o.Val
	case gimple.Temp:
		return fr.regs[o.Val]
	case gimple.Local:
		return fr.locals[o.Val]
	default:
		th.fail("read of absent operand")
		return 0
	}
}

// assign writes a destination operand.
func (th *Thread) assign(fr *frame, o gimple.Operand, v int64) {
	switch o.Kind {
	case gimple.Temp:
		fr.regs[o.Val] = v
	case gimple.Local:
		fr.locals[o.Val] = v
	default:
		th.fail("write to absent operand")
	}
}

// cell resolves an address operand to a shared variable.
func (th *Thread) cell(fr *frame, o gimple.Operand) *stm.Var {
	addr := th.value(fr, o)
	if addr < 0 || addr >= int64(len(th.vm.shared)) {
		th.fail("shared address %d out of range [0,%d)", addr, len(th.vm.shared))
	}
	return th.vm.shared[addr]
}

// run interprets from (blk, pc). When stopAtTxEnd is set it returns at the
// matching depth-0 OpTxEnd with the position just past it; it also returns
// when the function returns. The boolean result reports "function returned".
func (th *Thread) run(fr *frame, blk, pc int, tx *stm.Tx, stopAtTxEnd bool) (ret int64, returned bool, exitBlk, exitPC int) {
	depth := 0
	for {
		if blk < 0 || blk >= len(fr.f.Blocks) {
			th.fail("%s: bad block B%d", fr.f.Name, blk)
		}
		instrs := fr.f.Blocks[blk].Instrs
		if pc >= len(instrs) {
			th.fail("%s: fell off B%d", fr.f.Name, blk)
		}
		in := instrs[pc]
		th.steps++
		if th.steps > th.vm.MaxSteps {
			th.fail("step budget exceeded in %s", fr.f.Name)
		}
		switch in.Op {
		case gimple.OpConst, gimple.OpMov:
			th.assign(fr, in.Dst, th.value(fr, in.A))
		case gimple.OpAdd:
			th.assign(fr, in.Dst, th.value(fr, in.A)+th.value(fr, in.B))
		case gimple.OpSub:
			th.assign(fr, in.Dst, th.value(fr, in.A)-th.value(fr, in.B))
		case gimple.OpMul:
			th.assign(fr, in.Dst, th.value(fr, in.A)*th.value(fr, in.B))
		case gimple.OpDiv:
			b := th.value(fr, in.B)
			if b == 0 {
				th.fail("division by zero in %s", fr.f.Name)
			}
			th.assign(fr, in.Dst, th.value(fr, in.A)/b)
		case gimple.OpMod:
			b := th.value(fr, in.B)
			if b == 0 {
				th.fail("modulo by zero in %s", fr.f.Name)
			}
			th.assign(fr, in.Dst, th.value(fr, in.A)%b)
		case gimple.OpCmp:
			v := int64(0)
			if in.Cond.Eval(th.value(fr, in.A), th.value(fr, in.B)) {
				v = 1
			}
			th.assign(fr, in.Dst, v)
		case gimple.OpNot:
			v := int64(0)
			if th.value(fr, in.A) == 0 {
				v = 1
			}
			th.assign(fr, in.Dst, v)

		case gimple.OpLoad:
			if tx != nil {
				th.fail("uninstrumented shared load inside atomic region (run tm_mark)")
			}
			th.assign(fr, in.Dst, th.cell(fr, in.A).Load())
		case gimple.OpStore:
			if tx != nil {
				th.fail("uninstrumented shared store inside atomic region (run tm_mark)")
			}
			th.cell(fr, in.A).StoreNT(th.value(fr, in.B))

		case gimple.OpTMRead:
			if tx == nil {
				th.fail("TM_READ outside atomic region")
			}
			th.assign(fr, in.Dst, tx.Read(th.cell(fr, in.A)))
		case gimple.OpTMWrite:
			if tx == nil {
				th.fail("TM_WRITE outside atomic region")
			}
			tx.Write(th.cell(fr, in.A), th.value(fr, in.B))
		case gimple.OpTMCmp:
			if tx == nil {
				th.fail("_ITM_S1R outside atomic region")
			}
			v := int64(0)
			if tx.Cmp(th.cell(fr, in.A), in.Cond, th.value(fr, in.B)) {
				v = 1
			}
			th.assign(fr, in.Dst, v)
		case gimple.OpTMCmp2:
			if tx == nil {
				th.fail("_ITM_S2R outside atomic region")
			}
			v := int64(0)
			if tx.CmpVars(th.cell(fr, in.A), in.Cond, th.cell(fr, in.B)) {
				v = 1
			}
			th.assign(fr, in.Dst, v)
		case gimple.OpTMInc:
			if tx == nil {
				th.fail("_ITM_SW outside atomic region")
			}
			tx.Inc(th.cell(fr, in.A), th.value(fr, in.B))
		case gimple.OpTMCmpSum:
			if tx == nil {
				th.fail("_ITM_SE outside atomic region")
			}
			vars := make([]*stm.Var, len(in.Args))
			for k, a := range in.Args {
				vars[k] = th.cell(fr, a)
			}
			v := int64(0)
			if tx.CmpSum(in.Cond, th.value(fr, in.B), vars...) {
				v = 1
			}
			th.assign(fr, in.Dst, v)

		case gimple.OpBr:
			if th.value(fr, in.A) != 0 {
				blk, pc = in.Then, 0
			} else {
				blk, pc = in.Else, 0
			}
			continue
		case gimple.OpJmp:
			blk, pc = in.Then, 0
			continue
		case gimple.OpRet:
			return th.value(fr, in.A), true, blk, pc

		case gimple.OpCall:
			th.assign(fr, in.Dst, th.doCall(fr, in, tx))

		case gimple.OpTxBegin:
			if tx != nil {
				depth++ // flattened nesting
				break
			}
			// Snapshot the frame so aborted attempts re-execute from the
			// same machine state.
			saveR := append([]int64(nil), fr.regs...)
			saveL := append([]int64(nil), fr.locals...)
			entryBlk, entryPC := blk, pc+1
			var r struct {
				ret      int64
				returned bool
				blk, pc  int
			}
			th.vm.rt.Atomically(func(t *stm.Tx) {
				copy(fr.regs, saveR)
				copy(fr.locals, saveL)
				r.ret, r.returned, r.blk, r.pc = th.run(fr, entryBlk, entryPC, t, true)
			})
			if r.returned {
				return r.ret, true, r.blk, r.pc
			}
			blk, pc = r.blk, r.pc
			continue

		case gimple.OpTxEnd:
			if tx == nil {
				th.fail("tx_end outside atomic region")
			}
			if depth > 0 {
				depth--
				break
			}
			if !stopAtTxEnd {
				th.fail("unbalanced tx_end in %s", fr.f.Name)
			}
			return 0, false, blk, pc + 1

		default:
			th.fail("unknown opcode %d", in.Op)
		}
		pc++
	}
}

// doCall dispatches a call instruction: the rand builtin or a user function.
func (th *Thread) doCall(fr *frame, in gimple.Instr, tx *stm.Tx) int64 {
	args := make([]int64, len(in.Args))
	for i, a := range in.Args {
		args[i] = th.value(fr, a)
	}
	if in.Fn == "rand" {
		if len(args) != 1 || args[0] <= 0 {
			th.fail("rand(n) requires n > 0, got %v", args)
		}
		return th.rng.Int63n(args[0])
	}
	f, err := th.vm.prog.Lookup(in.Fn)
	if err != nil {
		th.fail("call to unknown function %q", in.Fn)
	}
	return th.call(f, args, tx)
}
