package txvm

import (
	"sync"
	"testing"

	"semstm/internal/tmpass"
	"semstm/internal/txlang"
	"semstm/stm"
)

// build compiles src, runs the passes, and wires a VM to the algorithm.
func build(t *testing.T, src string, detect bool, algo stm.Algorithm) *VM {
	t.Helper()
	prog, err := txlang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmpass.Run(prog, tmpass.Options{DetectPatterns: detect, Optimize: detect}); err != nil {
		t.Fatal(err)
	}
	return New(prog, stm.New(algo))
}

func TestPureComputation(t *testing.T) {
	vm := build(t, `
func fact(n) {
	var r = 1;
	while (n > 1) {
		r = r * n;
		n = n - 1;
	}
	return r;
}
func pick(a, b) {
	if (a >= b) { return a; }
	return b;
}
func arith(a, b) {
	return (a + b) * 2 - a / b + a % b;
}`, true, stm.SNOrec)
	th := vm.NewThread(1)
	if v, err := th.Call("fact", 6); err != nil || v != 720 {
		t.Fatalf("fact(6) = %d, %v", v, err)
	}
	if v, err := th.Call("pick", 3, 9); err != nil || v != 9 {
		t.Fatalf("pick = %d, %v", v, err)
	}
	if v, err := th.Call("pick", 9, 3); err != nil || v != 9 {
		t.Fatalf("pick = %d, %v", v, err)
	}
	// (4+2)*2 - 4/2 + 4%2 = 12 - 2 + 0
	if v, err := th.Call("arith", 4, 2); err != nil || v != 10 {
		t.Fatalf("arith = %d, %v", v, err)
	}
}

func TestCallErrors(t *testing.T) {
	vm := build(t, `func f(a) { return a / 0 + a; } func g() { return 1; }`, false, stm.NOrec)
	th := vm.NewThread(1)
	if _, err := th.Call("missing"); err == nil {
		t.Error("missing function must error")
	}
	if _, err := th.Call("g", 1); err == nil {
		t.Error("arity mismatch must error")
	}
	if _, err := th.Call("f", 3); err == nil {
		t.Error("division by zero must error")
	}
}

func TestSharedAccessOutsideAtomic(t *testing.T) {
	vm := build(t, `
shared x;
func set(v) { x = v; return 0; }
func get() { return x; }`, false, stm.NOrec)
	th := vm.NewThread(1)
	if _, err := th.Call("set", 41); err != nil {
		t.Fatal(err)
	}
	if v, err := th.Call("get"); err != nil || v != 41 {
		t.Fatalf("get = %d, %v", v, err)
	}
	if v, _ := vm.SharedNT("x", 0); v != 41 {
		t.Fatalf("SharedNT = %d", v)
	}
}

func TestAtomicCommitAndReturnInside(t *testing.T) {
	for _, detect := range []bool{false, true} {
		vm := build(t, `
shared x;
func bump_and_get() {
	atomic {
		x = x + 1;
		return x;
	}
}`, detect, stm.SNOrec)
		if err := vm.SetShared("x", 0, 10); err != nil {
			t.Fatal(err)
		}
		th := vm.NewThread(1)
		v, err := th.Call("bump_and_get")
		if err != nil {
			t.Fatal(err)
		}
		// With pattern detection the increment defers, and the return
		// value reads it back (promoted); either way the result is 11.
		if v != 11 {
			t.Fatalf("detect=%v: got %d", detect, v)
		}
		if got, _ := vm.SharedNT("x", 0); got != 11 {
			t.Fatalf("detect=%v: memory %d", detect, got)
		}
	}
}

func TestNestedAtomicFlattens(t *testing.T) {
	vm := build(t, `
shared x;
func inner() {
	atomic { x = x + 1; }
	return 0;
}
func outer() {
	atomic {
		inner();
		inner();
		x = x + 10;
	}
	return x;
}`, true, stm.SNOrec)
	th := vm.NewThread(1)
	v, err := th.Call("outer")
	if err != nil {
		t.Fatal(err)
	}
	if v != 12 {
		t.Fatalf("outer = %d, want 12", v)
	}
}

func TestUninstrumentedAtomicAccessFails(t *testing.T) {
	// Build WITHOUT running tm_mark at all: shared access inside atomic
	// must be rejected by the VM.
	prog, err := txlang.Compile("shared x; func f() { atomic { x = 1; } return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog, stm.New(stm.NOrec))
	if _, err := vm.NewThread(1).Call("f"); err == nil {
		t.Fatal("expected instrumentation error")
	}
}

func TestSharedBoundsChecked(t *testing.T) {
	vm := build(t, `
shared arr[4];
func poke(i, v) { arr[i] = v; return 0; }`, false, stm.NOrec)
	th := vm.NewThread(1)
	if _, err := th.Call("poke", 3, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Call("poke", 4, 7); err == nil {
		t.Fatal("out-of-range store must error")
	}
	if _, err := th.Call("poke", -1, 7); err == nil {
		t.Fatal("negative address must error")
	}
}

func TestSetSharedValidation(t *testing.T) {
	vm := build(t, "shared a[4];", false, stm.NOrec)
	if err := vm.SetShared("a", 2, 5); err != nil {
		t.Fatal(err)
	}
	if err := vm.SetShared("a", 9, 5); err == nil {
		t.Error("offset past array must error")
	}
	if err := vm.SetShared("zzz", 0, 5); err == nil {
		t.Error("unknown symbol must error")
	}
	if _, err := vm.SharedNT("zzz", 0); err == nil {
		t.Error("unknown symbol read must error")
	}
}

func TestRandBuiltin(t *testing.T) {
	vm := build(t, "func roll(n) { return rand(n); }", false, stm.NOrec)
	th := vm.NewThread(42)
	for i := 0; i < 100; i++ {
		v, err := th.Call("roll", 6)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v >= 6 {
			t.Fatalf("rand out of range: %d", v)
		}
	}
	if _, err := th.Call("roll", 0); err == nil {
		t.Fatal("rand(0) must error")
	}
}

func TestStepBudget(t *testing.T) {
	vm := build(t, "func spin() { while (1) { } return 0; }", false, stm.NOrec)
	vm.MaxSteps = 10000
	if _, err := vm.NewThread(1).Call("spin"); err == nil {
		t.Fatal("expected step-budget error")
	}
}

// TestSumExpressionEndToEnd compiles a joint-balance check with the
// expression extension and verifies the _ITM_SE builtin runs correctly.
func TestSumExpressionEndToEnd(t *testing.T) {
	src := `
shared a;
shared b;
func solvent() {
	var r = 0;
	atomic {
		if (a + b > 0) { r = 1; }
	}
	return r;
}`
	prog, err := txlang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tmpass.Run(prog, tmpass.Options{
		DetectPatterns: true, Optimize: true, DetectExpressions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SE != 1 {
		t.Fatalf("SE = %d", st.SE)
	}
	vm := New(prog, stm.New(stm.SNOrec))
	if err := vm.SetShared("a", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := vm.SetShared("b", 0, -3); err != nil {
		t.Fatal(err)
	}
	th := vm.NewThread(1)
	if v, err := th.Call("solvent"); err != nil || v != 1 {
		t.Fatalf("solvent = %d, %v", v, err)
	}
	if err := vm.SetShared("b", 0, -50); err != nil {
		t.Fatal(err)
	}
	if v, err := th.Call("solvent"); err != nil || v != 0 {
		t.Fatalf("insolvent = %d, %v", v, err)
	}
	sn := vm.Runtime().Stats()
	if sn.Compares != 2 || sn.Reads != 0 {
		t.Fatalf("expression must be a single compare, no reads: %+v", sn)
	}
}

// TestConcurrentAtomicCounter runs the compiled counter kernel from many
// goroutines under every mode and checks the total — the VM's equivalent of
// the library-level counter test.
func TestConcurrentAtomicCounter(t *testing.T) {
	for _, cfg := range []struct {
		name   string
		detect bool
		algo   stm.Algorithm
	}{
		{"plain-norec", false, stm.NOrec},
		{"modified-norec", true, stm.NOrec},
		{"semantic-snorec", true, stm.SNOrec},
		{"semantic-stl2", true, stm.STL2},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			vm := build(t, `
shared counter;
func bump(n) {
	var i = 0;
	while (i < n) {
		atomic { counter = counter + 1; }
		i = i + 1;
	}
	return 0;
}`, cfg.detect, cfg.algo)
			const workers, per = 6, 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := vm.NewThread(seed)
					if _, err := th.Call("bump", per); err != nil {
						t.Error(err)
					}
				}(int64(w))
			}
			wg.Wait()
			if v, _ := vm.SharedNT("counter", 0); v != workers*per {
				t.Fatalf("counter = %d, want %d", v, workers*per)
			}
		})
	}
}

// TestAbortRetrySemantics: a transaction body whose locals are mutated
// mid-transaction must re-execute from its entry state after an abort. The
// bounded counter relies on it: the final value must never exceed the limit.
func TestAbortRetrySemantics(t *testing.T) {
	vm := build(t, `
shared counter;
shared limit;
func bounded(n) {
	var done = 0;
	var i = 0;
	while (i < n) {
		atomic {
			if (counter < limit) {
				counter = counter + 1;
				done = done + 1;
			}
		}
		i = i + 1;
	}
	return done;
}`, true, stm.SNOrec)
	if err := vm.SetShared("limit", 0, 500); err != nil {
		t.Fatal(err)
	}
	const workers, per = 6, 200 // 1200 attempts for 500 slots
	results := make(chan int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v, err := vm.NewThread(seed).Call("bounded", per)
			if err != nil {
				t.Error(err)
				results <- 0
				return
			}
			results <- v
		}(int64(w))
	}
	wg.Wait()
	close(results)
	var total int64
	for v := range results {
		total += v
	}
	c, _ := vm.SharedNT("counter", 0)
	if c != 500 {
		t.Fatalf("counter = %d, want exactly the limit", c)
	}
	if total != 500 {
		t.Fatalf("successful bumps reported %d, want 500", total)
	}
}
