package apps

import (
	"math/rand"
	"testing"

	"semstm/stm"
)

func eachAlgo(t *testing.T, f func(t *testing.T, rt *stm.Runtime)) {
	t.Helper()
	for _, a := range stm.Algorithms() {
		t.Run(a.String(), func(t *testing.T) { f(t, stm.New(a)) })
	}
}

// drive runs n operations concurrently on w from `threads` goroutines.
func drive(w interface {
	Op(rng *rand.Rand)
	Check() error
}, threads, n int) error {
	done := make(chan struct{})
	for t := 0; t < threads; t++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				w.Op(rng)
			}
			done <- struct{}{}
		}(int64(t) + 1)
	}
	for t := 0; t < threads; t++ {
		<-done
	}
	return w.Check()
}

func TestBankInvariants(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		b := NewBank(rt, 64, 1000)
		if err := drive(b, 4, 150); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBankSemanticProfile(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	b := NewBank(rt, 64, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		b.Op(rng)
	}
	sn := rt.Stats()
	if sn.Compares == 0 || sn.Incs == 0 {
		t.Fatalf("bank must exercise semantic ops: %+v", sn)
	}
	if sn.Incs < sn.Compares {
		t.Fatalf("each successful overdraft check yields two incs: %+v", sn)
	}
}

func TestLRUCacheInvariants(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		c := NewLRUCache(rt, 32, 4)
		if err := drive(c, 4, 200); err != nil {
			t.Fatal(err)
		}
	})
}

// TestLRUCompareDominance reproduces the Table 3 claim that under the LRU
// workload the vast majority of reads become cmps.
func TestLRUCompareDominance(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	c := NewLRUCache(rt, 32, 4)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		c.Op(rng)
	}
	sn := rt.Stats()
	total := float64(sn.Compares + sn.Reads)
	if total == 0 || float64(sn.Compares)/total < 0.75 {
		t.Fatalf("compare share %.2f too low: %+v", float64(sn.Compares)/total, sn)
	}
}

func TestHashtableInvariants(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		h := NewHashtable(rt, 1024)
		if err := drive(h, 4, 100); err != nil {
			t.Fatal(err)
		}
	})
}

// TestHashtableAllReadsBecomeCompares checks the defining property of the
// hashtable workload: probing uses only semantic conditionals (Table 3 shows
// 0 reads and 3440 compares for the semantic build).
func TestHashtableAllReadsBecomeCompares(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	h := NewHashtable(rt, 1024)
	before := rt.Stats()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		h.Op(rng)
	}
	sn := rt.Stats().Sub(before)
	if sn.Reads != 0 {
		t.Fatalf("hashtable workload performed %d classical reads", sn.Reads)
	}
	if sn.Compares == 0 {
		t.Fatal("no compares recorded")
	}
}

func TestSnapshotAnalyticsConservation(t *testing.T) {
	for _, privatized := range []bool{false, true} {
		name := "instrumented"
		if privatized {
			name = "privatized"
		}
		t.Run(name, func(t *testing.T) {
			eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
				s := NewSnapshotAnalytics(rt)
				s.Privatized = privatized
				if err := drive(s, 4, 200); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestSnapshotScanAgreement: at quiescence both scan modes must see the same
// live-buffer total, and a privatized scan must drain exactly what the
// instrumented scan just observed.
func TestSnapshotScanAgreement(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	s := NewSnapshotAnalytics(rt)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		s.Inc(rng)
	}
	inst := s.ScanInstrumented()
	priv := s.ScanPrivatized()
	if inst != priv {
		t.Fatalf("instrumented scan %d != privatized scan %d", inst, priv)
	}
	if got := s.ScanInstrumented(); got != 0 {
		t.Fatalf("live buffer not empty after flip: %d", got)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueAppConservation(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		q := NewQueueApp(rt, 64)
		if err := drive(q, 4, 300); err != nil {
			t.Fatal(err)
		}
	})
}
