package apps

import (
	"fmt"
	"math/rand"

	"semstm/internal/txds"
	"semstm/stm"
)

// Hashtable is the open-addressing hash table micro-benchmark: each
// transaction performs OpsPerTx operations on a shared table whose probing
// is fully semantic (Algorithm 2). The mix combines lookups, in-place entry
// refreshes (version bumps), and insert/remove churn. It is the workload
// with the largest semantic win in the paper (all reads become cmps, up to
// 4x): under value-based validation every refresh of a probed-over entry
// aborts the prober; under semantic validation the prober's "not my key"
// facts survive.
type Hashtable struct {
	rt    *stm.Runtime
	table *txds.OpenTable
	// OpsPerTx matches the paper's "10 set/get operations" per transaction.
	OpsPerTx int
	// InsertBias is the probability an operation is an insert/remove pair;
	// UpdateBias the probability it is an in-place refresh; the remainder
	// are lookups.
	InsertBias, UpdateBias float64
	// KeySpace bounds the keys used by Op.
	KeySpace int64
}

// NewHashtable creates the benchmark over a table of the given capacity,
// prefilled to a high load factor so probe chains are long — the regime of
// the paper's Table 3, where a transaction performs thousands of probe steps
// and value-based validation pins every probed-over cell.
func NewHashtable(rt *stm.Runtime, capacity int) *Hashtable {
	h := &Hashtable{
		rt:         rt,
		table:      txds.NewOpenTable(capacity),
		OpsPerTx:   10,
		InsertBias: 0.1,
		UpdateBias: 0.4,
		KeySpace:   (3 * int64(capacity)) / 4,
	}
	rng := rand.New(rand.NewSource(42))
	for h.table.SizeNT() < (capacity*7)/12 {
		k := 1 + rng.Int63n(h.KeySpace)
		rt.Atomically(func(tx *stm.Tx) { h.table.Insert(tx, k) })
	}
	return h
}

// opBufCap is the per-Op stack buffer size shared by the drivers whose
// operation count is configurable: common OpsPerTx values run without a
// per-transaction heap allocation (the harness drives millions of Ops, and a
// driver-side allocation per transaction would dominate every allocs/tx
// measurement of the STM itself); larger configurations fall back to make.
const opBufCap = 16

// Op runs one transaction of OpsPerTx table operations.
func (h *Hashtable) Op(rng *rand.Rand) {
	type access struct {
		key  int64
		kind int // 0 lookup, 1 insert/remove, 2 update
	}
	var buf [opBufCap]access
	ops := buf[:0]
	if h.OpsPerTx <= opBufCap {
		ops = buf[:h.OpsPerTx]
	} else {
		ops = make([]access, h.OpsPerTx)
	}
	for i := range ops {
		ops[i].key = 1 + rng.Int63n(h.KeySpace)
		switch p := rng.Float64(); {
		case p < h.InsertBias:
			ops[i].kind = 1
		case p < h.InsertBias+h.UpdateBias:
			ops[i].kind = 2
		}
	}
	h.rt.Atomically(func(tx *stm.Tx) {
		for _, op := range ops {
			switch op.kind {
			case 1:
				if !h.table.Insert(tx, op.key) {
					h.table.Remove(tx, op.key)
				}
			case 2:
				h.table.Update(tx, op.key)
			default:
				h.table.Contains(tx, op.key)
			}
		}
	})
}

// Check verifies the table stayed structurally sane.
func (h *Hashtable) Check() error {
	if h.table.SizeNT() > h.table.Cap() {
		return fmt.Errorf("hashtable: impossible size %d", h.table.SizeNT())
	}
	return nil
}
