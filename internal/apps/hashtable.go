package apps

import (
	"fmt"
	"math/rand"

	"semstm/internal/txds"
	"semstm/stm"
)

// Hashtable is the open-addressing hash table micro-benchmark: each
// transaction performs OpsPerTx operations on a shared table whose probing
// is fully semantic (Algorithm 2). The mix combines lookups, in-place entry
// refreshes (version bumps), and insert/remove churn. It is the workload
// with the largest semantic win in the paper (all reads become cmps, up to
// 4x): under value-based validation every refresh of a probed-over entry
// aborts the prober; under semantic validation the prober's "not my key"
// facts survive.
type Hashtable struct {
	rt    *stm.Runtime
	table *txds.OpenTable
	// OpsPerTx matches the paper's "10 set/get operations" per transaction.
	OpsPerTx int
	// InsertBias is the probability an operation is an insert/remove pair;
	// UpdateBias the probability it is an in-place refresh; the remainder
	// are lookups.
	InsertBias, UpdateBias float64
	// KeySpace bounds the keys used by Op.
	KeySpace int64
}

// NewHashtable creates the benchmark over a table of the given capacity,
// prefilled to a high load factor so probe chains are long — the regime of
// the paper's Table 3, where a transaction performs thousands of probe steps
// and value-based validation pins every probed-over cell.
func NewHashtable(rt *stm.Runtime, capacity int) *Hashtable {
	h := &Hashtable{
		rt:         rt,
		table:      txds.NewOpenTable(capacity),
		OpsPerTx:   10,
		InsertBias: 0.1,
		UpdateBias: 0.4,
		KeySpace:   (3 * int64(capacity)) / 4,
	}
	rng := rand.New(rand.NewSource(42))
	for h.table.SizeNT() < (capacity*7)/12 {
		k := 1 + rng.Int63n(h.KeySpace)
		rt.Atomically(func(tx *stm.Tx) { h.table.Insert(tx, k) })
	}
	return h
}

// NewReadMostlyHashtable creates the read-dominated variant of the benchmark:
// 90% lookups, 10% in-place refreshes, no insert/remove churn. This is the
// regime where an uninstrumented hardware fast path pays for itself — nearly
// every barrier is a probe read whose bookkeeping the fast path sheds — so it
// is the workload of the instrumentation-cost ablation and the -hybridgate CI
// gate (DESIGN.md §13). Zero churn is deliberate twice over: structurally,
// removals leave tombstones that lengthen every probe chain over the run, so
// a churning cell measures table aging (and, once chains outgrow the
// simulated HTM capacity, only the software slow path) rather than barrier
// cost; and behaviorally, refreshes keep the epoch moving without changing
// table shape, which is exactly the traffic the fast path's epoch
// subscription must survive.
// The variant also doubles OpsPerTx: read-mostly transactions in the wild
// are scans, and a 20-operation footprint — still far inside the simulated
// tracking budget — is where the instrumented paths' O(footprint)
// revalidation cost separates cleanly from the fast path's flat epoch check.
func NewReadMostlyHashtable(rt *stm.Runtime, capacity int) *Hashtable {
	h := NewHashtable(rt, capacity)
	h.OpsPerTx = 20
	h.InsertBias = 0
	h.UpdateBias = 0.1
	return h
}

// NewScanHashtable creates the capacity-edge scan variant: the read-mostly
// mix (90% lookups, 10% refreshes, zero churn) with a 64-operation footprint,
// sized so that value-pinning instrumentation — one read-set entry per
// barrier, ~230-240 per transaction across the probe chains — straddles a
// simulated HTM budget of ~256 tracked locations. The straddle is the
// point: a few percent of classic-HTM transactions overflow, and each one
// burns its whole hardware retry budget (the footprint cannot shrink by
// retrying), trips the contention manager's exponential backoff, and
// finishes irrevocably — a cascade expensive enough to collapse the cell
// several-fold. The instrumented semantic paths fold repeated probe facts
// per location and fit; the uninstrumented fast path tracks only distinct
// first-touches and fits with the least per-barrier work. This is the
// paper's capacity argument — semantic facts shrink the tracked set, so
// S-HTM survives footprints that break value-based HTM — carried one tier
// further down: no facts at all track less still.
func NewScanHashtable(rt *stm.Runtime, capacity int) *Hashtable {
	h := NewReadMostlyHashtable(rt, capacity)
	h.OpsPerTx = 64
	return h
}

// opBufCap is the per-Op stack buffer size shared by the drivers whose
// operation count is configurable: common OpsPerTx values run without a
// per-transaction heap allocation (the harness drives millions of Ops, and a
// driver-side allocation per transaction would dominate every allocs/tx
// measurement of the STM itself); larger configurations fall back to make.
const opBufCap = 64

// Op runs one transaction of OpsPerTx table operations. Keys and kinds come
// from one splitmix64 stream seeded per transaction off the harness rng: the
// driver sits between the harness and every barrier it measures, so its
// per-op cost must stay negligible next to the barrier cost — two rand.Rand
// virtual calls per op (key + kind) were a measurable slice of the
// instrumentation-ablation cells, where the barriers themselves are a few
// nanoseconds.
func (h *Hashtable) Op(rng *rand.Rand) {
	type access struct {
		key  int64
		kind int // 0 lookup, 1 insert/remove, 2 update
	}
	var buf [opBufCap]access
	ops := buf[:0]
	if h.OpsPerTx <= opBufCap {
		ops = buf[:h.OpsPerTx]
	} else {
		ops = make([]access, h.OpsPerTx)
	}
	insCut := uint64(h.InsertBias * (1 << 32))
	updCut := uint64((h.InsertBias + h.UpdateBias) * (1 << 32))
	x := rng.Uint64()
	for i := range ops {
		x += 0x9E3779B97F4A7C15 // splitmix64
		z := x
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		ops[i].key = 1 + int64((z>>32)%uint64(h.KeySpace))
		switch p := z & 0xFFFFFFFF; {
		case p < insCut:
			ops[i].kind = 1
		case p < updCut:
			ops[i].kind = 2
		}
	}
	h.rt.Atomically(func(tx *stm.Tx) {
		for _, op := range ops {
			switch op.kind {
			case 1:
				if !h.table.Insert(tx, op.key) {
					h.table.Remove(tx, op.key)
				}
			case 2:
				h.table.Update(tx, op.key)
			default:
				h.table.Contains(tx, op.key)
			}
		}
	})
}

// Check verifies the table stayed structurally sane.
func (h *Hashtable) Check() error {
	if h.table.SizeNT() > h.table.Cap() {
		return fmt.Errorf("hashtable: impossible size %d", h.table.SizeNT())
	}
	return nil
}
