package apps

import (
	"fmt"
	"math/rand"

	"semstm/stm"
)

// LRUCache simulates the paper's m×n software cache with frequency-based
// replacement: m cache lines of n buckets, each bucket holding a key and a
// hit counter. Lookups probe a line with semantic NEQ conditionals and bump
// the hit counter with a semantic increment; only the victim selection of a
// missing set reads exact counter values. The paper reports 93% of the reads
// turning into cmp operations under this workload.
type LRUCache struct {
	rt    *stm.Runtime
	lines int
	assoc int
	keys  []*stm.Var // lines*assoc, 0 = empty
	freqs []*stm.Var
	// OpsPerTx is how many cache entries one transaction touches.
	OpsPerTx int
	// LookupBias is the probability (0..1) that an operation is a lookup
	// rather than a set.
	LookupBias float64
	// KeySpace bounds the keys used by Op.
	KeySpace int64
}

// NewLRUCache creates a cache with the given geometry.
func NewLRUCache(rt *stm.Runtime, lines, assoc int) *LRUCache {
	return &LRUCache{
		rt:         rt,
		lines:      lines,
		assoc:      assoc,
		keys:       stm.NewVars(lines*assoc, 0),
		freqs:      stm.NewVars(lines*assoc, 0),
		OpsPerTx:   4,
		LookupBias: 0.8,
		KeySpace:   int64(lines * assoc * 4),
	}
}

func (c *LRUCache) line(key int64) int {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int(h>>40) % c.lines
}

// lookup probes key's line; on a hit it bumps the hit counter and returns
// true. Keys are positive, so probing compares bucket contents with NEQ.
func (c *LRUCache) lookup(tx *stm.Tx, key int64) bool {
	base := c.line(key) * c.assoc
	for j := 0; j < c.assoc; j++ {
		if !tx.NEQ(c.keys[base+j], key) { // semantic hit test
			tx.Inc(c.freqs[base+j], 1)
			return true
		}
	}
	return false
}

// set installs key in its line: a hit refreshes the counter; a miss evicts
// the least-frequently-used bucket.
func (c *LRUCache) set(tx *stm.Tx, key int64) {
	base := c.line(key) * c.assoc
	for j := 0; j < c.assoc; j++ {
		if !tx.NEQ(c.keys[base+j], key) {
			tx.Inc(c.freqs[base+j], 1)
			return
		}
	}
	victim, best := base, int64(1<<62)
	for j := 0; j < c.assoc; j++ {
		if f := tx.Read(c.freqs[base+j]); f < best {
			best, victim = f, base+j
		}
	}
	tx.Write(c.keys[victim], key)
	tx.Write(c.freqs[victim], 1)
}

// Op runs one cache transaction touching OpsPerTx entries.
func (c *LRUCache) Op(rng *rand.Rand) {
	type access struct {
		key    int64
		lookup bool
	}
	var buf [opBufCap]access
	ops := buf[:0]
	if c.OpsPerTx <= opBufCap {
		ops = buf[:c.OpsPerTx]
	} else {
		ops = make([]access, c.OpsPerTx)
	}
	for i := range ops {
		ops[i] = access{
			key:    1 + rng.Int63n(c.KeySpace),
			lookup: rng.Float64() < c.LookupBias,
		}
	}
	c.rt.Atomically(func(tx *stm.Tx) {
		for _, op := range ops {
			if op.lookup {
				c.lookup(tx, op.key)
			} else {
				c.set(tx, op.key)
			}
		}
	})
}

// Check verifies structural sanity: counters non-negative and no duplicate
// keys within a line.
func (c *LRUCache) Check() error {
	for l := 0; l < c.lines; l++ {
		seen := map[int64]bool{}
		for j := 0; j < c.assoc; j++ {
			i := l*c.assoc + j
			if f := c.freqs[i].Load(); f < 0 {
				return fmt.Errorf("lru: negative frequency at %d", i)
			}
			k := c.keys[i].Load()
			if k == 0 {
				continue
			}
			if seen[k] {
				return fmt.Errorf("lru: duplicate key %d in line %d", k, l)
			}
			seen[k] = true
		}
	}
	return nil
}
