package apps

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"semstm/stm"
)

// snapshotCells is the analytics buffer size: large enough that scan cost is
// dominated by per-cell read barriers (the quantity the privatized-vs-
// instrumented comparison measures), small enough that a scan is one short
// transaction for the instrumented mode.
const snapshotCells = 4096

// SnapshotAnalytics is the privatization showcase workload (DESIGN.md §14):
// writer transactions increment counters in the live half of a double buffer
// while an analytics thread periodically snapshots the other half. The flip
// commits through AtomicallyPrivatize, so when it returns the retired buffer
// is private — the scanner reads it with plain Var.Load, no instrumentation,
// no read-set, no validation — and can be zeroed in place for reuse.
//
// The instrumented alternative scans the live buffer inside an ordinary
// read-only transaction, paying one tracked read barrier per cell. The ratio
// of the two scan rates is the -privgate acceptance number: privatized
// snapshot reads must run at least 5x faster than instrumented ones.
type SnapshotAnalytics struct {
	rt   *stm.Runtime
	head *stm.Var      // index (0/1) of the buffer writers increment
	bufs [2][]*stm.Var // double-buffered counters
	n    int

	// Privatized selects the scan mode Op's analytics slice uses.
	Privatized bool
	// IncsPerTx is the writer batch size (increments per transaction).
	IncsPerTx int

	// scanMu serializes scans: the flip-zero-collect sequence of a privatized
	// scan must not interleave with another scan's flip.
	scanMu    sync.Mutex
	collected int64 // counts drained from retired buffers (under scanMu)
	incs      atomic.Int64
}

// NewSnapshotAnalytics creates the workload over 2 x snapshotCells counters.
func NewSnapshotAnalytics(rt *stm.Runtime) *SnapshotAnalytics {
	return &SnapshotAnalytics{
		rt:        rt,
		head:      stm.NewVar(0),
		bufs:      [2][]*stm.Var{stm.NewVars(snapshotCells, 0), stm.NewVars(snapshotCells, 0)},
		n:         snapshotCells,
		IncsPerTx: 8,
	}
}

// Inc runs one writer transaction: IncsPerTx semantic increments on random
// cells of the live buffer. Reading head transactionally is what makes the
// privatized flip sound — a writer that loses the race with a flip fails
// validation on head and retries against the new live buffer.
func (s *SnapshotAnalytics) Inc(rng *rand.Rand) {
	var idx [16]int
	k := s.IncsPerTx
	if k > len(idx) {
		k = len(idx)
	}
	for i := 0; i < k; i++ {
		idx[i] = rng.Intn(s.n)
	}
	s.rt.Atomically(func(tx *stm.Tx) {
		h := tx.Read(s.head)
		for i := 0; i < k; i++ {
			tx.Inc(s.bufs[h][idx[i]], 1)
		}
	})
	s.incs.Add(int64(k))
}

// ScanPrivatized flips the double buffer with a privatizing commit, then
// sums and zeroes the retired half uninstrumented. The two Load passes must
// agree: after the barrier no doomed writer can still touch the buffer, so a
// mismatch means the privatization fence leaked a zombie write.
func (s *SnapshotAnalytics) ScanPrivatized() int64 {
	s.scanMu.Lock()
	defer s.scanMu.Unlock()
	retired := int64(0)
	s.rt.AtomicallyPrivatize(func(tx *stm.Tx) {
		h := tx.Read(s.head)
		tx.Write(s.head, 1-h)
		retired = h
	})
	buf := s.bufs[retired]
	var sum1, sum2 int64
	for _, c := range buf {
		sum1 += c.Load()
	}
	for _, c := range buf {
		sum2 += c.Load()
	}
	if sum1 != sum2 {
		panic(fmt.Sprintf("apps: privatized buffer still moving (%d != %d): zombie writer past the barrier", sum1, sum2))
	}
	for _, c := range buf {
		c.StoreNT(0)
	}
	s.collected += sum1
	return sum1
}

// ScanInstrumented sums the live buffer inside an ordinary read-only
// transaction: one tracked read barrier per cell, full validation, and the
// scan aborts and retries whenever a flip or (engine-dependent) a writer
// commit invalidates it. It does not flip or drain.
func (s *SnapshotAnalytics) ScanInstrumented() int64 {
	s.scanMu.Lock()
	defer s.scanMu.Unlock()
	var sum int64
	s.rt.Atomically(func(tx *stm.Tx) {
		sum = 0
		h := tx.Read(s.head)
		for _, c := range s.bufs[h] {
			sum += tx.Read(c)
		}
	})
	return sum
}

// Op makes the workload drivable by the shared harness: most operations are
// writer batches; every 64th is a scan in the configured mode.
func (s *SnapshotAnalytics) Op(rng *rand.Rand) {
	if rng.Intn(64) == 0 {
		if s.Privatized {
			s.ScanPrivatized()
		} else {
			s.ScanInstrumented()
		}
		return
	}
	s.Inc(rng)
}

// Check verifies conservation at quiescence: every increment is either still
// in a buffer or was drained by a privatized scan.
func (s *SnapshotAnalytics) Check() error {
	s.scanMu.Lock()
	defer s.scanMu.Unlock()
	live := int64(0)
	for b := 0; b < 2; b++ {
		for _, c := range s.bufs[b] {
			live += c.Load()
		}
	}
	if got, want := live+s.collected, s.incs.Load(); got != want {
		return fmt.Errorf("snapshot: conservation broken: live %d + collected %d = %d, want %d increments",
			live, s.collected, got, want)
	}
	return nil
}
