package apps

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"semstm/internal/txds"
	"semstm/stm"
)

// ShardedBank is the money-transfer benchmark over a sharded runtime
// (DESIGN.md §11): accounts are distributed across the runtime's shards in
// shard-affine blocks (stm.NewVarsOn), each transaction transfers between
// accounts of one randomly chosen home shard, and with probability CrossPct
// the transaction instead targets a second shard — every one of its
// transfers then moves money across the shard boundary, exercising the
// two-phase cross-shard commit. The transfer bodies are identical to Bank's
// (semantic GTE overdraft check, Dec/Inc increments).
type ShardedBank struct {
	rt      *stm.Runtime
	shards  [][]*stm.Var
	initial int64
	// CrossPct is the probability one transaction is cross-shard (the swept
	// knob of the PR6 scaling grids: 0, 0.01, 0.10).
	CrossPct float64
	// Window is the width of the solvency scan run before each move: the
	// payer's window of consecutive accounts is checked account-by-account
	// with semantic GTE probes (the compliance-scan transaction of the bank
	// benchmark). Under the semantic engines each probe is one "account is
	// funded" fact that transfers almost never flip; the classical engines
	// pin every scanned balance, so any concurrent commit on the same clock
	// that touches the window aborts the scan — the contention the
	// shard-scaling grid measures. Default 48.
	Window int
	// AuditPct is the probability one transaction is an audit instead of a
	// transfer: a read-only sweep summing every account of the home shard —
	// the balance transaction of the classical bank benchmark. Off by
	// default (whole-shard read sets starve under contention); the
	// correctness tests enable it for the in-flight conservation assert.
	AuditPct float64
	// auditFail latches a conservation violation an audit observed in-flight
	// (only asserted while CrossPct == 0, when each shard's sum is invariant);
	// Check reports it.
	auditFail atomic.Int64
	// tellers assigns each worker (identified by its rng) a home shard
	// round-robin — the teller model the sharded runtime is designed for:
	// work arrives partitioned by shard, and only the CrossPct fraction
	// crosses a boundary.
	tellers    sync.Map // *rand.Rand -> int
	nextTeller atomic.Int64
}

// NewShardedBank creates a bank with perShard accounts on every shard of
// rt (one shard when rt is not sharded), each holding initial units.
func NewShardedBank(rt *stm.Runtime, perShard int, initial int64, crossPct float64) *ShardedBank {
	n := rt.Shards()
	if n < 1 {
		n = 1
	}
	shards := make([][]*stm.Var, n)
	for s := range shards {
		shards[s] = stm.NewVarsOn(s, perShard, initial)
	}
	return NewShardedBankVars(rt, shards, initial, crossPct)
}

// NewShardedBankVars wires the bank over caller-allocated account blocks,
// one per shard. This is the durable constructor: pass blocks built with
// stm.Durable.Vars and the accounts carry their recovered balances, while
// initial still names the per-account invariant total Check verifies —
// conservation makes the two agree across any number of crash/recover
// cycles.
func NewShardedBankVars(rt *stm.Runtime, shards [][]*stm.Var, initial int64, crossPct float64) *ShardedBank {
	if len(shards) == 0 {
		panic("apps: sharded bank needs at least one account block")
	}
	return &ShardedBank{
		rt:       rt,
		shards:   shards,
		initial:  initial,
		CrossPct: crossPct,
		Window:   48,
	}
}

// Shards returns the number of account shards.
func (b *ShardedBank) Shards() int { return len(b.shards) }

// teller returns the worker's home shard, assigning one round-robin on
// first use.
func (b *ShardedBank) teller(rng *rand.Rand) int {
	if v, ok := b.tellers.Load(rng); ok {
		return v.(int)
	}
	id := int(b.nextTeller.Add(1)-1) % len(b.shards)
	b.tellers.Store(rng, id)
	return id
}

// ShardedTransfersPerTx is the fixed number of moves per sharded transfer
// transaction.
const ShardedTransfersPerTx = 8

// Op runs one transfer transaction on the worker's home shard: each of its
// moves first scans the payer's solvency window (Window consecutive
// accounts, one semantic GTE probe per account), then performs the
// overdraft-checked transfer. With probability CrossPct the transfer
// targets land on a second shard instead, exercising the two-phase
// cross-shard commit.
func (b *ShardedBank) Op(rng *rand.Rand) {
	home := b.teller(rng)
	if b.AuditPct > 0 && rng.Float64() < b.AuditPct {
		b.audit(home)
		return
	}
	from, to := b.shards[home], b.shards[home]
	if len(b.shards) > 1 && b.CrossPct > 0 && rng.Float64() < b.CrossPct {
		dest := rng.Intn(len(b.shards) - 1)
		if dest >= home {
			dest++
		}
		to = b.shards[dest]
	}
	n, m2 := int64(len(from)), int64(len(to))
	w := int64(b.Window)
	if w < 1 || w > n {
		w = 1
	}
	type mv struct{ from, to, amt int64 }
	var buf [ShardedTransfersPerTx]mv
	moves := buf[:]
	for i := range moves {
		moves[i] = mv{from: rng.Int63n(n), to: rng.Int63n(m2), amt: 1 + rng.Int63n(20)}
	}
	b.rt.Atomically(func(tx *stm.Tx) {
		for _, m := range moves {
			src, dst := from[m.from], to[m.to]
			if src == dst {
				continue
			}
			// Compliance scan: at least half of the payer's window must be
			// funded. Each probe is an "account >= 1" fact under the
			// semantic engines and a value pin under the classical ones.
			funded := int64(0)
			for j := int64(0); j < w; j++ {
				if tx.GTE(from[(m.from+j)%n], 1) {
					funded++
				}
			}
			if funded < (w+1)/2 {
				continue
			}
			if tx.GTE(src, m.amt) { // overdraft check
				tx.Dec(src, m.amt)
				tx.Inc(dst, m.amt)
			}
		}
	})
}

// audit runs the balance transaction: sum every account of the home shard
// inside one transaction. While no transfer crosses shards, opacity makes
// the observed sum exactly the shard's invariant total — any deviation is a
// serializability violation, latched for Check.
func (b *ShardedBank) audit(home int) {
	shard := b.shards[home]
	var sum int64
	b.rt.Atomically(func(tx *stm.Tx) {
		sum = 0
		for _, a := range shard {
			sum += tx.Read(a)
		}
	})
	if b.CrossPct == 0 {
		if want := int64(len(shard)) * b.initial; sum != want {
			b.auditFail.Store(sum - want)
		}
	}
}

// Check verifies conservation of money across every shard and the overdraft
// invariant after the system quiesces.
func (b *ShardedBank) Check() error {
	if d := b.auditFail.Load(); d != 0 {
		return fmt.Errorf("sharded bank: audit observed a non-invariant shard sum (off by %d)", d)
	}
	var sum, accounts int64
	for s, shard := range b.shards {
		for i, a := range shard {
			v := a.Load()
			if v < 0 {
				return fmt.Errorf("sharded bank: shard %d account %d negative (%d)", s, i, v)
			}
			sum += v
			accounts++
		}
	}
	if want := accounts * b.initial; sum != want {
		return fmt.Errorf("sharded bank: total %d, want %d", sum, want)
	}
	return nil
}

// ShardedHashtable is the open-addressing hashtable benchmark over a sharded
// runtime: one table per shard (cells stamped with the shard's affinity),
// each transaction runs its operation mix against a random home shard's
// table, and with probability CrossPct the transaction instead migrates a
// key between two shards' tables — a remove on one shard and an insert on
// another inside one transaction, the cross-shard case.
type ShardedHashtable struct {
	rt     *stm.Runtime
	tables []*txds.OpenTable
	// OpsPerTx, InsertBias, UpdateBias, KeySpace mirror Hashtable's knobs.
	OpsPerTx               int
	InsertBias, UpdateBias float64
	KeySpace               int64
	// CrossPct is the probability one transaction is a cross-shard key
	// migration instead of a home-shard operation mix.
	CrossPct float64
	// tellers assigns each worker a home shard round-robin, like
	// ShardedBank's teller model.
	tellers    sync.Map // *rand.Rand -> int
	nextTeller atomic.Int64
}

// NewShardedHashtable creates one table of perShardCapacity cells on every
// shard of rt, each prefilled to the same high load factor as the unsharded
// benchmark so probe chains stay long.
func NewShardedHashtable(rt *stm.Runtime, perShardCapacity int, crossPct float64) *ShardedHashtable {
	n := rt.Shards()
	if n < 1 {
		n = 1
	}
	h := &ShardedHashtable{
		rt:         rt,
		tables:     make([]*txds.OpenTable, n),
		OpsPerTx:   10,
		InsertBias: 0.1,
		UpdateBias: 0.4,
		CrossPct:   crossPct,
	}
	for s := range h.tables {
		h.tables[s] = txds.NewOpenTableOn(s, perShardCapacity)
	}
	cap := h.tables[0].Cap()
	h.KeySpace = (3 * int64(cap)) / 4
	rng := rand.New(rand.NewSource(42))
	for _, t := range h.tables {
		for t.SizeNT() < (cap*7)/12 {
			k := 1 + rng.Int63n(h.KeySpace)
			rt.Atomically(func(tx *stm.Tx) { t.Insert(tx, k) })
		}
	}
	return h
}

// Shards returns the number of table shards.
func (h *ShardedHashtable) Shards() int { return len(h.tables) }

// teller returns the worker's home shard, assigning one round-robin on
// first use.
func (h *ShardedHashtable) teller(rng *rand.Rand) int {
	if v, ok := h.tellers.Load(rng); ok {
		return v.(int)
	}
	id := int(h.nextTeller.Add(1)-1) % len(h.tables)
	h.tellers.Store(rng, id)
	return id
}

// Op runs one transaction: an OpsPerTx operation mix on a random home
// shard's table, or (with probability CrossPct) a key migration between two
// shards' tables.
func (h *ShardedHashtable) Op(rng *rand.Rand) {
	home := h.teller(rng)
	if len(h.tables) > 1 && h.CrossPct > 0 && rng.Float64() < h.CrossPct {
		dest := rng.Intn(len(h.tables) - 1)
		if dest >= home {
			dest++
		}
		src, dst := h.tables[home], h.tables[dest]
		key := 1 + rng.Int63n(h.KeySpace)
		h.rt.Atomically(func(tx *stm.Tx) {
			// Migrate: move the key to the destination shard when the source
			// holds it, otherwise just record the (semantic) absence probes.
			if src.Remove(tx, key) {
				if !dst.Insert(tx, key) {
					// Already present on the destination: put it back, so the
					// multiset of keys is preserved.
					src.Insert(tx, key)
				}
			}
		})
		return
	}
	t := h.tables[home]
	type access struct {
		key  int64
		kind int // 0 lookup, 1 insert/remove, 2 update
	}
	var buf [opBufCap]access
	ops := buf[:0]
	if h.OpsPerTx <= opBufCap {
		ops = buf[:h.OpsPerTx]
	} else {
		ops = make([]access, h.OpsPerTx)
	}
	for i := range ops {
		ops[i].key = 1 + rng.Int63n(h.KeySpace)
		switch p := rng.Float64(); {
		case p < h.InsertBias:
			ops[i].kind = 1
		case p < h.InsertBias+h.UpdateBias:
			ops[i].kind = 2
		default:
			ops[i].kind = 0
		}
	}
	h.rt.Atomically(func(tx *stm.Tx) {
		for _, op := range ops {
			switch op.kind {
			case 1:
				if !t.Insert(tx, op.key) {
					t.Remove(tx, op.key)
				}
			case 2:
				t.Update(tx, op.key)
			default:
				t.Contains(tx, op.key)
			}
		}
	})
}

// Check verifies every shard's table stayed structurally sane.
func (h *ShardedHashtable) Check() error {
	for s, t := range h.tables {
		if t.SizeNT() > t.Cap() {
			return fmt.Errorf("sharded hashtable: shard %d impossible size %d", s, t.SizeNT())
		}
	}
	return nil
}
