// Package apps implements the paper's micro-benchmarks — Bank, LRU-Cache,
// Hashtable, and an array-queue workload — as reusable drivers over the
// semantic STM API. Each driver exposes one-transaction operations suitable
// for the benchmark harness plus a post-run invariant check.
package apps

import (
	"fmt"
	"math/rand"

	"semstm/stm"
)

// Bank simulates the money-transfer benchmark: each transaction performs up
// to MaxTransfersPerTx transfers between random accounts, skipping a
// transfer when the source balance is insufficient (the overdraft check).
// The overdraft check is a semantic GTE and the balance updates are semantic
// increments, so transactions that merely observe "balance is sufficient"
// do not conflict with concurrent transfers that keep it sufficient.
type Bank struct {
	rt       *stm.Runtime
	accounts []*stm.Var
	initial  int64
}

// MaxTransfersPerTx matches the paper's "multiple transfers (at most 10)".
const MaxTransfersPerTx = 10

// NewBank creates a bank with n accounts, each holding initial units.
func NewBank(rt *stm.Runtime, n int, initial int64) *Bank {
	return &Bank{rt: rt, accounts: stm.NewVars(n, initial), initial: initial}
}

// Accounts returns the number of accounts.
func (b *Bank) Accounts() int { return len(b.accounts) }

// Op runs one transfer transaction.
func (b *Bank) Op(rng *rand.Rand) {
	n := int64(len(b.accounts))
	k := 1 + rng.Intn(MaxTransfersPerTx)
	type mv struct{ from, to, amt int64 }
	// Fixed-size stack buffer: the transfer count is bounded by the constant,
	// so one Op performs no driver-side heap allocation (see opBufCap).
	var buf [MaxTransfersPerTx]mv
	moves := buf[:k]
	for i := range moves {
		moves[i] = mv{from: rng.Int63n(n), to: rng.Int63n(n), amt: 1 + rng.Int63n(20)}
	}
	b.rt.Atomically(func(tx *stm.Tx) {
		for _, m := range moves {
			if m.from == m.to {
				continue
			}
			if tx.GTE(b.accounts[m.from], m.amt) { // overdraft check
				tx.Dec(b.accounts[m.from], m.amt)
				tx.Inc(b.accounts[m.to], m.amt)
			}
		}
	})
}

// Check verifies conservation of money and the overdraft invariant after the
// system quiesces.
func (b *Bank) Check() error {
	var sum int64
	for i, a := range b.accounts {
		v := a.Load()
		if v < 0 {
			return fmt.Errorf("bank: account %d negative (%d)", i, v)
		}
		sum += v
	}
	want := int64(len(b.accounts)) * b.initial
	if sum != want {
		return fmt.Errorf("bank: total %d, want %d", sum, want)
	}
	return nil
}
