package apps

import (
	"math/rand"
	"testing"

	"semstm/stm"
)

// shardableAlgos are the engines a sharded runtime accepts (the two-phase
// families plus the degenerate serializing rung and the composite).
var shardableAlgos = []stm.Algorithm{
	stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2, stm.SGL, stm.Adaptive,
}

func eachSharded(t *testing.T, nshards int, f func(t *testing.T, rt *stm.Runtime)) {
	t.Helper()
	for _, a := range shardableAlgos {
		t.Run(a.String(), func(t *testing.T) { f(t, stm.NewShardedRuntime(a, nshards)) })
	}
}

func TestShardedBankInvariants(t *testing.T) {
	eachSharded(t, 4, func(t *testing.T, rt *stm.Runtime) {
		b := NewShardedBank(rt, 32, 1000, 0.2)
		b.Window = 8 // keep the scan cheap: this is a correctness test
		if err := drive(b, 4, 40); err != nil {
			t.Fatal(err)
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestShardedBankAudit enables the opt-in whole-shard audit transaction: with
// no cross-shard traffic each shard's sum is invariant, so any in-flight
// deviation an audit observes is a serializability violation Check reports.
func TestShardedBankAudit(t *testing.T) {
	eachSharded(t, 4, func(t *testing.T, rt *stm.Runtime) {
		b := NewShardedBank(rt, 16, 1000, 0)
		b.Window = 4
		b.AuditPct = 0.4
		if err := drive(b, 4, 60); err != nil {
			t.Fatal(err)
		}
	})
}

// TestShardedBankCrossTraffic pins that the CrossPct knob actually drives the
// two-phase path: with every transfer cross-shard the ticket must advance.
func TestShardedBankCrossTraffic(t *testing.T) {
	rt := stm.NewShardedRuntime(stm.SNOrec, 4)
	b := NewShardedBank(rt, 16, 1000, 1.0)
	b.Window = 4
	if err := drive(b, 4, 60); err != nil {
		t.Fatal(err)
	}
	if rt.ShardTicket() == 0 {
		t.Fatal("CrossPct=1 drove no cross-shard commit (ticket still zero)")
	}
}

func TestShardedHashtableInvariants(t *testing.T) {
	eachSharded(t, 4, func(t *testing.T, rt *stm.Runtime) {
		h := NewShardedHashtable(rt, 64, 0.2)
		if err := drive(h, 4, 60); err != nil {
			t.Fatal(err)
		}
		if err := rt.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestShardedDriversOnClassicWidth pins the drivers' degenerate case: a
// 1-shard runtime (and a classic Shards()==0 runtime) still runs them, with
// the cross path silently disabled.
func TestShardedDriversOnClassicWidth(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	b := NewShardedBank(rt, 16, 1000, 0.5)
	b.Window = 4
	h := NewShardedHashtable(rt, 64, 0.5)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		b.Op(rng)
		h.Op(rng)
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}
