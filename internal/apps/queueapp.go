package apps

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"semstm/internal/txds"
	"semstm/stm"
)

// QueueApp drives the Algorithm 3 array-queue workload: every thread
// alternates randomly between enqueues and dequeues on one shared bounded
// queue, the pattern whose enqueue/dequeue concurrency the semantic
// emptiness test re-enables.
type QueueApp struct {
	rt       *stm.Runtime
	queue    *txds.Queue
	enqueued atomic.Int64
	dequeued atomic.Int64
}

// NewQueueApp creates the workload over a queue of the given capacity,
// prefilled halfway so both operation kinds initially succeed.
func NewQueueApp(rt *stm.Runtime, capacity int) *QueueApp {
	q := &QueueApp{rt: rt, queue: txds.NewQueue(capacity)}
	for i := 0; i < capacity/2; i++ {
		v := int64(i)
		rt.Atomically(func(tx *stm.Tx) { q.queue.Enqueue(tx, v) })
		q.enqueued.Add(1)
	}
	return q
}

// Op runs one enqueue or dequeue transaction.
func (q *QueueApp) Op(rng *rand.Rand) {
	if rng.Intn(2) == 0 {
		v := rng.Int63()
		if stm.Run(q.rt, func(tx *stm.Tx) bool { return q.queue.Enqueue(tx, v) }) {
			q.enqueued.Add(1)
		}
	} else {
		ok := stm.Run(q.rt, func(tx *stm.Tx) bool {
			_, ok := q.queue.Dequeue(tx)
			return ok
		})
		if ok {
			q.dequeued.Add(1)
		}
	}
}

// Check verifies flow conservation: elements in = elements out + residue.
func (q *QueueApp) Check() error {
	in, out, left := q.enqueued.Load(), q.dequeued.Load(), int64(q.queue.LenNT())
	if in != out+left {
		return fmt.Errorf("queue: enqueued %d != dequeued %d + len %d", in, out, left)
	}
	return nil
}
