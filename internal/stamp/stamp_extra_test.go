package stamp

import (
	"math/rand"
	"testing"

	"semstm/stm"
)

// TestVacationOperationMix drives enough sessions that all three profiles
// (reserve, update, inquire) execute, then checks invariants.
func TestVacationOperationMix(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	v := NewVacation(rt, 64)
	v.ReservePct = 50
	v.UpdatePct = 25 // 25% inquiries
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		v.Op(rng)
	}
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
	sn := rt.Stats()
	if sn.Writes == 0 {
		t.Fatal("updateTables never wrote a price")
	}
	if v.booked.Load() == 0 {
		t.Fatal("no reservation succeeded")
	}
}

// TestVacationCapacityExhaustion: with tiny capacity, reservations must stop
// exactly when resources run out, never oversell.
func TestVacationCapacityExhaustion(t *testing.T) {
	rt := stm.New(stm.STL2)
	v := NewVacation(rt, 4) // tiny: 4 resources per kind, capacity 3-7 each
	v.ReservePct = 100
	if err := drive(v, 4, 200); err != nil {
		t.Fatal(err)
	}
	for slot, cap := range v.total {
		if free := v.numFree[slot].Load(); free != 0 && free != cap && (free < 0 || free > cap) {
			t.Fatalf("slot %d: free %d out of [0,%d]", slot, free, cap)
		}
	}
}

// TestGenomeSecondPhase: once the segment stream is exhausted, ops become
// read-only matching probes and the table stays stable.
func TestGenomeSecondPhase(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	g := NewGenome(rt, 80, 20)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 80/SegmentsPerOp+5; i++ {
		g.Op(rng) // drains the stream, then probes
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	size := g.table.SizeNT()
	for i := 0; i < 10; i++ {
		g.Op(rng) // pure phase-2 probes
	}
	if g.table.SizeNT() != size {
		t.Fatal("phase-2 probes mutated the table")
	}
}

// TestLabyrinthReset: routing far more work than the grid holds must keep
// succeeding thanks to the periodic transactional reset.
func TestLabyrinthReset(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	l := NewLabyrinth(rt, 8, 8, 2, true)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		l.Op(rng)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	if l.gen.Load() == 0 {
		t.Fatal("grid never reset despite saturating work")
	}
	if l.Routed() < 100 {
		t.Fatalf("only %d routes on a recycling grid", l.Routed())
	}
}

// TestKmeansNearestIsDeterministic: the assignment step is pure local math.
func TestKmeansNearestIsDeterministic(t *testing.T) {
	rt := stm.New(stm.NOrec)
	k := NewKmeans(rt, 8, 4)
	p := []int64{10, 20, 30, 40}
	a := k.nearest(p)
	for i := 0; i < 5; i++ {
		if k.nearest(p) != a {
			t.Fatal("nearest not deterministic")
		}
	}
	if a < 0 || a >= 8 {
		t.Fatalf("cluster %d out of range", a)
	}
}

// TestSSCA2DegreeBound: vertices refuse edges past their capacity.
func TestSSCA2DegreeBound(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	s := NewSSCA2(rt, 4, 3)
	added := 0
	for i := int64(0); i < 10; i++ {
		if stm.Run(rt, func(tx *stm.Tx) bool { return s.AddEdge(tx, 0, i) }) {
			added++
			s.added.Add(1) // keep the conservation check's ledger in sync
		}
	}
	if added != 3 {
		t.Fatalf("added %d edges to a degree-3 vertex", added)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestYadaTermination: refinement must terminate (strict quality
// improvement) even from a fully-bad initial mesh.
func TestYadaTermination(t *testing.T) {
	rt := stm.New(stm.STL2)
	y := NewYada(rt, 30, 4000)
	y.Drain(rand.New(rand.NewSource(2)))
	if y.QueueLen() != 0 {
		t.Fatal("drain left work")
	}
	if err := y.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestVacationHybridGate gates the Vacation workload on the progressive
// hybrid engines specifically — the additional STAMP cell of the tier-1 run
// that exercises the fast/middle/slow demotion ladder under real transaction
// shapes (deep tree traversals that strain the uninstrumented path's
// capacity, semantic bookings that fit the middle path's facts). Asserts the
// workload invariants, that both hardware paths actually committed work, and
// that every abort carries a valid typed reason.
func TestVacationHybridGate(t *testing.T) {
	for _, algo := range []stm.Algorithm{stm.HyTM, stm.HyTMMid} {
		t.Run(algo.String(), func(t *testing.T) {
			rt := stm.New(algo)
			// Roomy capacity: reservations traverse BSTs, so the fast path
			// needs headroom to commit at all; the overflowing sessions are
			// exactly what the demotion ladder is for.
			rt.ConfigureHTM(512, 4, 0.5)
			v := NewVacation(rt, 64)
			if err := drive(v, 4, 120); err != nil {
				t.Fatal(err)
			}
			sn := rt.Stats()
			if sn.HWFastCommits+sn.HWMiddleCommits == 0 {
				t.Fatalf("no hardware-path commits: %+v", sn)
			}
			if algo == stm.HyTMMid && sn.HWFastCommits != 0 {
				t.Fatalf("HyTM-mid took %d fast-path commits", sn.HWFastCommits)
			}
			if algo == stm.HyTM && sn.HWFastCommits == 0 {
				t.Fatal("HyTM never committed on the uninstrumented fast path")
			}
			var reasonSum uint64
			for _, n := range sn.AbortReasons {
				reasonSum += n
			}
			if reasonSum != sn.Aborts {
				t.Fatalf("reason buckets (%d) do not account for all aborts (%d)",
					reasonSum, sn.Aborts)
			}
			if err := rt.CheckQuiescent(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
