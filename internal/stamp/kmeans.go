package stamp

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"semstm/stm"
)

// Kmeans is the clustering workload. The dominant computation — finding the
// nearest center for a point — is thread-local; the transactional kernel is
// the shared accumulator update of Algorithm 5: one increment of the
// cluster's member count plus one increment per feature. The semantic build
// turns every update into a TM_INC, so transactions updating the same
// cluster no longer conflict; the base build expands each into read+write,
// making every concurrent update to a popular cluster a conflict.
type Kmeans struct {
	rt        *stm.Runtime
	clusters  int
	features  int
	centers   [][]int64  // fixed centers for the assignment step (read-only)
	newLen    []*stm.Var // new_centers_len, per cluster
	newSum    [][]*stm.Var
	processed atomic.Int64 // points folded in, counted post-commit
	featTotal []atomic.Int64

	// PointsPerOp is how many points one Op assigns and folds in (each in
	// its own transaction, as in STAMP's per-point loop body).
	PointsPerOp int
	// Spread bounds feature coordinates.
	Spread int64
}

// NewKmeans creates a workload with the given geometry.
func NewKmeans(rt *stm.Runtime, clusters, features int) *Kmeans {
	k := &Kmeans{
		rt:          rt,
		clusters:    clusters,
		features:    features,
		newLen:      stm.NewVars(clusters, 0),
		newSum:      make([][]*stm.Var, clusters),
		featTotal:   make([]atomic.Int64, features),
		PointsPerOp: 4,
		Spread:      1000,
	}
	rng := rand.New(rand.NewSource(7))
	k.centers = make([][]int64, clusters)
	for c := 0; c < clusters; c++ {
		k.newSum[c] = stm.NewVars(features, 0)
		k.centers[c] = make([]int64, features)
		for f := 0; f < features; f++ {
			k.centers[c][f] = rng.Int63n(k.Spread)
		}
	}
	return k
}

// nearest computes the closest fixed center to the point (squared Euclidean
// distance, all thread-local work).
func (k *Kmeans) nearest(point []int64) int {
	best, bestDist := 0, int64(1)<<62
	for c := 0; c < k.clusters; c++ {
		var d int64
		for f := 0; f < k.features; f++ {
			diff := point[f] - k.centers[c][f]
			d += diff * diff
		}
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// Op assigns PointsPerOp random points and folds each into the shared
// accumulators with the Algorithm 5 transaction.
func (k *Kmeans) Op(rng *rand.Rand) {
	point := make([]int64, k.features)
	for p := 0; p < k.PointsPerOp; p++ {
		for f := range point {
			point[f] = rng.Int63n(k.Spread)
		}
		idx := k.nearest(point)
		k.rt.Atomically(func(tx *stm.Tx) {
			tx.Inc(k.newLen[idx], 1)
			for f := 0; f < k.features; f++ {
				tx.Inc(k.newSum[idx][f], point[f])
			}
		})
		k.processed.Add(1)
		for f := 0; f < k.features; f++ {
			k.featTotal[f].Add(point[f])
		}
	}
}

// Check verifies accumulator conservation: member counts sum to the number
// of processed points, and per-feature sums across clusters equal the totals
// of all processed points.
func (k *Kmeans) Check() error {
	var members int64
	for c := 0; c < k.clusters; c++ {
		members += k.newLen[c].Load()
	}
	if want := k.processed.Load(); members != want {
		return fmt.Errorf("kmeans: members %d, processed %d", members, want)
	}
	for f := 0; f < k.features; f++ {
		var sum int64
		for c := 0; c < k.clusters; c++ {
			sum += k.newSum[c][f].Load()
		}
		if want := k.featTotal[f].Load(); sum != want {
			return fmt.Errorf("kmeans: feature %d sum %d, want %d", f, sum, want)
		}
	}
	return nil
}
