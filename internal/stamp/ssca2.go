package stamp

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"semstm/stm"
)

// SSCA2 is the scalable-graph-analysis kernel the paper measures: threads
// build a large sparse graph by appending edges to per-vertex adjacency
// arrays inside tiny transactions. The append reads the current length (to
// pick the slot), writes the slot, and advances the length — 2 reads + 2
// writes in the base build, and 1 read + 1 write + 1 inc in the semantic
// build, exactly the Table 3 profile.
type SSCA2 struct {
	rt     *stm.Runtime
	adjLen []*stm.Var
	adj    [][]*stm.Var
	maxDeg int64
	added  atomic.Int64
	// EdgesPerOp is how many edge insertions one Op performs.
	EdgesPerOp int
}

// NewSSCA2 creates a graph with `vertices` vertices and room for maxDegree
// out-edges each.
func NewSSCA2(rt *stm.Runtime, vertices, maxDegree int) *SSCA2 {
	s := &SSCA2{
		rt:         rt,
		adjLen:     stm.NewVars(vertices, 0),
		adj:        make([][]*stm.Var, vertices),
		maxDeg:     int64(maxDegree),
		EdgesPerOp: 8,
	}
	for v := range s.adj {
		s.adj[v] = stm.NewVars(maxDegree, -1)
	}
	return s
}

// AddEdge appends v to u's adjacency list, returning false when u's list is
// full. The length advance is a semantic increment; note the length *read*
// (needed to address the slot) immediately precedes it, so the increment is
// a write-after-read — covered by validation, no promotion.
func (s *SSCA2) AddEdge(tx *stm.Tx, u, v int64) bool {
	n := tx.Read(s.adjLen[u])
	if n >= s.maxDeg {
		return false
	}
	tx.Write(s.adj[u][n], v)
	tx.Inc(s.adjLen[u], 1)
	return true
}

// Op inserts EdgesPerOp random edges, one transaction each.
func (s *SSCA2) Op(rng *rand.Rand) {
	nv := int64(len(s.adjLen))
	for i := 0; i < s.EdgesPerOp; i++ {
		u, v := rng.Int63n(nv), rng.Int63n(nv)
		if stm.Run(s.rt, func(tx *stm.Tx) bool { return s.AddEdge(tx, u, v) }) {
			s.added.Add(1)
		}
	}
}

// Check verifies adjacency integrity: lengths within bounds, every slot
// below the length filled exactly once, and the total edge count matching
// the successful insertions.
func (s *SSCA2) Check() error {
	var total int64
	for u := range s.adj {
		n := s.adjLen[u].Load()
		if n < 0 || n > s.maxDeg {
			return fmt.Errorf("ssca2: vertex %d length %d out of range", u, n)
		}
		total += n
		for j := int64(0); j < n; j++ {
			if s.adj[u][j].Load() < 0 {
				return fmt.Errorf("ssca2: vertex %d slot %d empty below length %d", u, j, n)
			}
		}
		for j := n; j < s.maxDeg; j++ {
			if s.adj[u][j].Load() >= 0 {
				return fmt.Errorf("ssca2: vertex %d slot %d filled beyond length %d", u, j, n)
			}
		}
	}
	if total != s.added.Load() {
		return fmt.Errorf("ssca2: %d edges in graph, %d insertions succeeded", total, s.added.Load())
	}
	return nil
}
