package stamp

import (
	"math/rand"
	"testing"

	"semstm/stm"
)

func eachAlgo(t *testing.T, f func(t *testing.T, rt *stm.Runtime)) {
	t.Helper()
	for _, a := range stm.Algorithms() {
		t.Run(a.String(), func(t *testing.T) { f(t, stm.New(a)) })
	}
}

type workload interface {
	Op(rng *rand.Rand)
	Check() error
}

func drive(w workload, threads, opsPerThread int) error {
	done := make(chan struct{})
	for t := 0; t < threads; t++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerThread; i++ {
				w.Op(rng)
			}
			done <- struct{}{}
		}(int64(t) + 1)
	}
	for t := 0; t < threads; t++ {
		<-done
	}
	return w.Check()
}

func TestVacationInvariants(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		v := NewVacation(rt, 64)
		if err := drive(v, 4, 60); err != nil {
			t.Fatal(err)
		}
	})
}

// TestVacationSemanticProfile reproduces the paper's two observations: only
// a small fraction of reads become compares (tree traversals stay reads),
// and the booking increments get promoted by the sanity check.
func TestVacationSemanticProfile(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	v := NewVacation(rt, 64)
	if err := drive(v, 1, 300); err != nil {
		t.Fatal(err)
	}
	sn := rt.Stats()
	if sn.Compares == 0 || sn.Reads == 0 {
		t.Fatalf("expected mixed profile: %+v", sn)
	}
	if float64(sn.Compares)/float64(sn.Reads+sn.Compares) > 0.5 {
		t.Fatalf("compare share should be the minority (tree reads dominate): %+v", sn)
	}
	if sn.Promotes == 0 {
		t.Fatalf("booking sanity check must promote increments: %+v", sn)
	}
}

func TestKmeansConservation(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		k := NewKmeans(rt, 8, 4)
		if err := drive(k, 4, 40); err != nil {
			t.Fatal(err)
		}
	})
}

// TestKmeansAllIncs: the Algorithm 5 transformation leaves only increments
// in the transactional kernel (Table 3: 0 reads, 0 writes, 25 incs).
func TestKmeansAllIncs(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	k := NewKmeans(rt, 8, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		k.Op(rng)
	}
	sn := rt.Stats()
	if sn.Reads != 0 || sn.Writes != 0 || sn.Compares != 0 {
		t.Fatalf("kmeans kernel must be pure incs: %+v", sn)
	}
	if sn.Incs == 0 {
		t.Fatal("no incs recorded")
	}
}

func TestLabyrinthOriginal(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		l := NewLabyrinth(rt, 12, 12, 2, false)
		if err := drive(l, 3, 6); err != nil {
			t.Fatal(err)
		}
		if l.Routed() == 0 {
			t.Fatal("no path routed")
		}
	})
}

func TestLabyrinthOptimized(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		l := NewLabyrinth(rt, 12, 12, 2, true)
		if err := drive(l, 3, 10); err != nil {
			t.Fatal(err)
		}
		if l.Routed() == 0 {
			t.Fatal("no path routed")
		}
	})
}

// TestLabyrinthVariantsProfile: the original variant reads (semantically)
// the whole grid per transaction; the optimized variant touches only path
// cells, so its transactions are far smaller.
func TestLabyrinthVariantsProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rtA := stm.New(stm.SNOrec)
	a := NewLabyrinth(rtA, 12, 12, 2, false)
	for i := 0; i < 5; i++ {
		a.Op(rng)
	}
	perTxA := float64(rtA.Stats().Compares) / float64(rtA.Stats().Commits)

	rtB := stm.New(stm.SNOrec)
	b := NewLabyrinth(rtB, 12, 12, 2, true)
	for i := 0; i < 5; i++ {
		b.Op(rng)
	}
	snB := rtB.Stats()
	perTxB := float64(snB.Compares) / float64(snB.Commits)
	if perTxA < 4*perTxB {
		t.Fatalf("original %0.1f cmp/tx should dwarf optimized %0.1f", perTxA, perTxB)
	}
}

func TestYadaDrainSingleThread(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		y := NewYada(rt, 40, 4000)
		y.Drain(rand.New(rand.NewSource(3)))
		if y.QueueLen() != 0 {
			t.Fatalf("queue not drained: %d", y.QueueLen())
		}
		if err := y.Check(); err != nil {
			t.Fatal(err)
		}
		if y.Refined() == 0 {
			t.Fatal("no refinement happened")
		}
	})
}

func TestYadaConcurrent(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		y := NewYada(rt, 60, 8000)
		if err := drive(y, 4, 20); err != nil {
			t.Fatal(err)
		}
		// Finish the remaining work and check the final mesh.
		y.Drain(rand.New(rand.NewSource(4)))
		if err := y.Check(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGenomeDedup(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		g := NewGenome(rt, 800, 100)
		if err := drive(g, 4, 30); err != nil {
			t.Fatal(err)
		}
	})
}

func TestIntruderReassembly(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		in := NewIntruder(rt, 50)
		rng := rand.New(rand.NewSource(8))
		for in.Remaining() > 0 {
			in.Op(rng)
		}
		if err := in.Check(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestIntruderConcurrent(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		in := NewIntruder(rt, 40)
		// 4 threads * 10 ops * 4 packets = enough to drain 160 packets.
		if err := drive(in, 4, 10); err != nil {
			t.Fatal(err)
		}
		if in.Remaining() != 0 {
			t.Fatalf("%d packets left", in.Remaining())
		}
	})
}

func TestSSCA2Integrity(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		s := NewSSCA2(rt, 128, 16)
		if err := drive(s, 4, 40); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSSCA2Table3Profile: 1 read + 1 write + 1 inc per semantic insertion,
// 2 reads + 2 writes per base insertion.
func TestSSCA2Table3Profile(t *testing.T) {
	count := func(a stm.Algorithm) stm.Snapshot {
		rt := stm.New(a)
		s := NewSSCA2(rt, 64, 64)
		rt.Atomically(func(tx *stm.Tx) { s.AddEdge(tx, 1, 2) })
		return rt.Stats()
	}
	sem := count(stm.SNOrec)
	if sem.Reads != 1 || sem.Writes != 1 || sem.Incs != 1 || sem.Promotes != 0 {
		t.Fatalf("semantic profile %+v, want 1/1/1", sem)
	}
	base := count(stm.NOrec)
	if base.Reads != 2 || base.Writes != 2 {
		t.Fatalf("base profile %+v, want 2 reads 2 writes", base)
	}
}
