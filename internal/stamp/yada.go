package stamp

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"semstm/internal/txds"
	"semstm/stm"
)

// Yada is the Delaunay mesh-refinement workload (Ruppert's algorithm),
// reduced to its transactional skeleton: a shared pool of mesh elements,
// each with a quality measure (the minimum angle) and neighbor links, plus a
// shared work queue of bad elements. A refinement step pops a bad element,
// checks that it and its cavity are still alive (the isGarbage conditionals
// — semantic EQ checks), retires the cavity, and inserts replacement
// elements of strictly better quality, re-enqueueing any that are still
// below the threshold. Strict improvement guarantees termination.
type Yada struct {
	rt    *stm.Runtime
	alive []*stm.Var // 1 = live element, 0 = retired
	angle []*stm.Var // quality measure (degrees)
	links [][]*stm.Var
	queue *txds.Queue
	next  atomic.Int64

	// Threshold is the minimum acceptable angle; elements below it are
	// refined (STAMP uses 20 degrees).
	Threshold int64
	// Improvement is how much each refinement step raises the angle.
	Improvement int64
	// CavityFan is how many replacement elements a refinement inserts.
	CavityFan int

	refined atomic.Int64
}

const yadaDegree = 3 // triangle: three neighbor links

// NewYada creates a mesh with `elements` initial triangles of random
// quality, neighbors wired randomly, and all bad elements enqueued. The
// pool must be large enough for the refinement cascade: roughly
// elements * (Threshold/Improvement) * CavityFan entries.
func NewYada(rt *stm.Runtime, elements, pool int) *Yada {
	y := &Yada{
		rt:          rt,
		alive:       stm.NewVars(pool+1, 0),
		angle:       stm.NewVars(pool+1, 0),
		links:       make([][]*stm.Var, yadaDegree),
		queue:       txds.NewQueue(pool + 1),
		Threshold:   20,
		Improvement: 7,
		CavityFan:   2,
	}
	for d := 0; d < yadaDegree; d++ {
		y.links[d] = stm.NewVars(pool+1, 0)
	}
	y.next.Store(1)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < elements; i++ {
		e := y.next.Add(1) - 1
		y.alive[e].StoreNT(1)
		y.angle[e].StoreNT(5 + rng.Int63n(30))
		for d := 0; d < yadaDegree; d++ {
			y.links[d][e].StoreNT(1 + rng.Int63n(int64(elements)))
		}
		if y.angle[e].Load() < y.Threshold {
			ee := e
			rt.Atomically(func(tx *stm.Tx) { y.queue.Enqueue(tx, ee) })
		}
	}
	return y
}

// alloc reserves a fresh element slot.
func (y *Yada) alloc() int64 {
	i := y.next.Add(1) - 1
	if int(i) >= len(y.alive) {
		panic("stamp: yada element pool exhausted")
	}
	return i
}

// refineStep pops one bad element and refines it; it reports whether any
// work was found.
func (y *Yada) refineStep(rng *rand.Rand) bool {
	elem, ok := int64(0), false
	y.rt.Atomically(func(tx *stm.Tx) { elem, ok = y.queue.Dequeue(tx) })
	if !ok {
		return false
	}

	// Allocate replacements outside the transaction body so retries reuse
	// the same slots.
	fresh := make([]int64, y.CavityFan)
	for i := range fresh {
		fresh[i] = y.alloc()
	}
	angles := make([]int64, y.CavityFan)

	y.rt.Atomically(func(tx *stm.Tx) {
		// The element may have been retired by a neighbor's refinement
		// after it was enqueued: the isGarbage check is a semantic EQ.
		if !tx.EQ(y.alive[elem], 1) {
			return
		}
		a := tx.Read(y.angle[elem])

		// Cavity: the element plus its live neighbors.
		cavity := []int64{elem}
		for d := 0; d < yadaDegree; d++ {
			n := tx.Read(y.links[d][elem])
			if n != 0 && n != elem && tx.EQ(y.alive[n], 1) {
				cavity = append(cavity, n)
			}
		}
		// Retire the cavity.
		for _, c := range cavity {
			tx.Write(y.alive[c], 0)
		}
		// Insert replacements with strictly better quality, linked in a ring.
		for i, f := range fresh {
			angles[i] = a + y.Improvement + rng.Int63n(3)
			tx.Write(y.alive[f], 1)
			tx.Write(y.angle[f], angles[i])
			for d := 0; d < yadaDegree; d++ {
				tx.Write(y.links[d][f], fresh[(i+d+1)%len(fresh)])
			}
		}
		for i, f := range fresh {
			if angles[i] < y.Threshold {
				if !y.queue.Enqueue(tx, f) {
					panic("stamp: yada work queue full (size the pool up)")
				}
			}
		}
	})
	y.refined.Add(1)
	return true
}

// Op performs a handful of refinement steps (idle-spins briefly when the
// queue momentarily empties, like STAMP worker loops).
func (y *Yada) Op(rng *rand.Rand) {
	for i := 0; i < 4; i++ {
		y.refineStep(rng)
	}
}

// Drain refines until the work queue is empty (single-threaded convenience
// for tests).
func (y *Yada) Drain(rng *rand.Rand) {
	for y.refineStep(rng) {
	}
}

// QueueLen reports the remaining work items.
func (y *Yada) QueueLen() int { return y.queue.LenNT() }

// Refined reports how many refinement transactions ran.
func (y *Yada) Refined() int64 { return y.refined.Load() }

// Check verifies the refinement invariants after a Drain: no live element is
// below the threshold, and retired elements stay retired.
func (y *Yada) Check() error {
	if y.queue.LenNT() != 0 {
		// Mid-run checks are fine; only a drained mesh must be clean.
		return nil
	}
	top := y.next.Load()
	for e := int64(1); e < top; e++ {
		if y.alive[e].Load() == 1 && y.angle[e].Load() < y.Threshold {
			return fmt.Errorf("yada: live element %d below threshold (angle %d)", e, y.angle[e].Load())
		}
	}
	return nil
}
