package stamp

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"semstm/stm"
)

// Labyrinth is the multi-path maze router. The maze is a three-dimensional
// uniform grid; each operation connects a random source/destination pair
// with a shortest path of adjacent empty cells (Lee expansion) and claims
// the path in the shared grid.
//
// Two variants reproduce the paper's two panels:
//
//   - Original (Optimized=false): the router copies the whole shared grid
//     *inside* the transaction — every emptiness check is a transactional
//     isEmpty/isGarbage conditional, which the semantic build turns into a
//     cmp — then claims the path, all in one long transaction.
//   - Optimized (Optimized=true, [Ruan et al., TRANSACT 2014]): the grid
//     copy moves outside the transaction (plain loads); the transaction only
//     re-validates the chosen path cells as still empty and claims them, so
//     transactions shrink dramatically and the semantic gain with it.
type Labyrinth struct {
	rt      *stm.Runtime
	X, Y, Z int
	grid    []*stm.Var // 0 = empty, >0 = path id

	// Optimized selects the TRANSACT'14 variant.
	Optimized bool

	nextID  atomic.Int64
	routed  atomic.Int64
	failed  atomic.Int64
	claimed atomic.Int64 // cells currently claimed (approximate)
	gen     atomic.Int64 // bumped on every grid reset

	mu    sync.Mutex
	paths map[int64][]int // path id -> claimed cell indices
}

// NewLabyrinth creates an empty maze of the given dimensions.
func NewLabyrinth(rt *stm.Runtime, x, y, z int, optimized bool) *Labyrinth {
	l := &Labyrinth{
		rt:        rt,
		X:         x,
		Y:         y,
		Z:         z,
		grid:      stm.NewVars(x*y*z, 0),
		Optimized: optimized,
		paths:     make(map[int64][]int),
	}
	l.nextID.Store(1)
	return l
}

func (l *Labyrinth) idx(x, y, z int) int { return (z*l.Y+y)*l.X + x }

// neighbors appends the orthogonal neighbors of cell i to buf.
func (l *Labyrinth) neighbors(i int, buf []int) []int {
	x := i % l.X
	y := (i / l.X) % l.Y
	z := i / (l.X * l.Y)
	if x > 0 {
		buf = append(buf, i-1)
	}
	if x < l.X-1 {
		buf = append(buf, i+1)
	}
	if y > 0 {
		buf = append(buf, i-l.X)
	}
	if y < l.Y-1 {
		buf = append(buf, i+l.X)
	}
	if z > 0 {
		buf = append(buf, i-l.X*l.Y)
	}
	if z < l.Z-1 {
		buf = append(buf, i+l.X*l.Y)
	}
	return buf
}

// bfs runs a Lee expansion on the private free-cell map and returns a
// shortest src→dst path (inclusive), or nil.
func (l *Labyrinth) bfs(free []bool, src, dst int) []int {
	if !free[src] || !free[dst] {
		return nil
	}
	prev := make([]int, len(free))
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	var nbuf [6]int
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			break
		}
		for _, n := range l.neighbors(cur, nbuf[:0]) {
			if free[n] && prev[n] < 0 {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	if prev[dst] < 0 {
		return nil
	}
	var path []int
	for c := dst; ; c = prev[c] {
		path = append(path, c)
		if c == src {
			break
		}
	}
	return path
}

// routeOriginal copies the grid transactionally (the per-cell emptiness test
// is the semantic conditional), routes locally, and claims the path — one
// long transaction.
func (l *Labyrinth) routeOriginal(src, dst int, id int64) []int {
	var path []int
	l.rt.Atomically(func(tx *stm.Tx) {
		path = nil
		free := make([]bool, len(l.grid))
		for i, c := range l.grid {
			free[i] = tx.EQ(c, 0) // isEmpty check
		}
		path = l.bfs(free, src, dst)
		for _, c := range path {
			tx.Write(l.grid[c], id)
		}
	})
	return path
}

// routeOptimized snapshots the grid non-transactionally, routes locally, and
// only validates + claims the chosen cells inside the transaction, retrying
// with a fresh snapshot when the claim fails.
func (l *Labyrinth) routeOptimized(src, dst int, id int64) []int {
	const maxAttempts = 8
	for a := 0; a < maxAttempts; a++ {
		free := make([]bool, len(l.grid))
		for i, c := range l.grid {
			free[i] = c.Load() == 0
		}
		path := l.bfs(free, src, dst)
		if path == nil {
			return nil
		}
		claimed := stm.Run(l.rt, func(tx *stm.Tx) bool {
			for _, c := range path {
				if !tx.EQ(l.grid[c], 0) { // revalidate: still empty?
					return false
				}
			}
			for _, c := range path {
				tx.Write(l.grid[c], id)
			}
			return true
		})
		if claimed {
			return path
		}
	}
	return nil
}

// maybeReset clears the maze once routed paths claim a large fraction of the
// cells, so a long benchmark run keeps routing instead of degenerating into
// failures on a saturated grid. STAMP routes a finite input on a grid sized
// to fit; the periodic reset is the steady-state equivalent. The wipe is one
// big transaction, so concurrent claims serialize correctly against it.
func (l *Labyrinth) maybeReset() {
	if l.claimed.Load() < int64(2*len(l.grid)/5) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.claimed.Load() < int64(2*len(l.grid)/5) {
		return // someone else reset meanwhile
	}
	l.rt.Atomically(func(tx *stm.Tx) {
		for _, c := range l.grid {
			tx.Write(c, 0)
		}
	})
	l.paths = make(map[int64][]int)
	l.claimed.Store(0)
	l.gen.Add(1)
}

// Op routes one random pair.
func (l *Labyrinth) Op(rng *rand.Rand) {
	l.maybeReset()
	gen := l.gen.Load()
	src := rng.Intn(len(l.grid))
	dst := rng.Intn(len(l.grid))
	if src == dst {
		l.failed.Add(1)
		return
	}
	id := l.nextID.Add(1)
	var path []int
	if l.Optimized {
		path = l.routeOptimized(src, dst, id)
	} else {
		path = l.routeOriginal(src, dst, id)
	}
	if path == nil {
		l.failed.Add(1)
		return
	}
	l.routed.Add(1)
	l.claimed.Add(int64(len(path)))
	l.mu.Lock()
	// A reset may have wiped the cells between the claim and this record;
	// recording such a path would fail the intactness check, so skip it
	// (the claim itself was correct, its cells are simply gone or orphaned).
	if l.gen.Load() == gen {
		l.paths[id] = path
	}
	l.mu.Unlock()
}

// Routed reports how many pairs were successfully connected.
func (l *Labyrinth) Routed() int64 { return l.routed.Load() }

// Check verifies that every recorded path is intact in the grid (its cells
// hold its id, so recorded paths are disjoint) and connected. Cells claimed
// by transactions that raced a grid reset may be orphaned (claimed but
// unrecorded); they are benign and reclaimed by the next reset.
func (l *Labyrinth) Check() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for id, path := range l.paths {
		for k, c := range path {
			if got := l.grid[c].Load(); got != id {
				return fmt.Errorf("labyrinth: cell %d holds %d, want path %d", c, got, id)
			}
			if k > 0 && !adjacent(l, path[k-1], c) {
				return fmt.Errorf("labyrinth: path %d not connected at %d", id, k)
			}
		}
	}
	return nil
}

func adjacent(l *Labyrinth, a, b int) bool {
	var nbuf [6]int
	for _, n := range l.neighbors(a, nbuf[:0]) {
		if n == b {
			return true
		}
	}
	return false
}
