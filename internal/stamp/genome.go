package stamp

import (
	"fmt"
	"math/rand"
	"sync"

	"semstm/internal/txds"
	"semstm/stm"
)

// Genome is the gene-sequencing workload, dominated by its first phase:
// de-duplicating DNA segments by inserting them into a shared hash set. The
// transactions are short chain walks ending in at most one insert — almost
// no conditional or increment patterns, which is why Table 3 shows Genome
// essentially unchanged by the semantic build (the paper omits its plots for
// that reason; we reproduce the op counts).
type Genome struct {
	rt       *stm.Runtime
	segments []int64 // pre-generated segment stream with duplicates
	table    *txds.ChainTable

	mu     sync.Mutex
	cursor int
	unique map[int64]bool // reference model of distinct segments consumed
}

// NewGenome pre-generates `count` segments drawn from a pool of
// `distinct` values (so roughly count/distinct duplicates per segment).
func NewGenome(rt *stm.Runtime, count, distinct int) *Genome {
	rng := rand.New(rand.NewSource(23))
	g := &Genome{
		rt:       rt,
		segments: make([]int64, count),
		table:    txds.NewChainTable(distinct, count+1),
		unique:   make(map[int64]bool),
	}
	for i := range g.segments {
		g.segments[i] = 1 + rng.Int63n(int64(distinct))
	}
	return g
}

// SegmentsPerOp is how many segments one operation de-duplicates.
const SegmentsPerOp = 8

// Op consumes the next batch of segments from the stream and inserts each
// into the shared set in its own transaction (STAMP's per-segment loop).
func (g *Genome) Op(rng *rand.Rand) {
	g.mu.Lock()
	start := g.cursor
	g.cursor += SegmentsPerOp
	if g.cursor > len(g.segments) {
		g.cursor = len(g.segments)
	}
	batch := g.segments[start:g.cursor]
	for _, s := range batch {
		g.unique[s] = true
	}
	g.mu.Unlock()
	if len(batch) == 0 {
		// Stream exhausted: fall back to read-only matching probes, the
		// second phase's access pattern.
		for i := 0; i < SegmentsPerOp; i++ {
			s := 1 + rng.Int63n(int64(len(g.segments)))
			g.rt.Atomically(func(tx *stm.Tx) { g.table.Get(tx, s) })
		}
		return
	}
	for _, s := range batch {
		seg := s
		g.rt.Atomically(func(tx *stm.Tx) { g.table.PutIfAbsent(tx, seg, 1) })
	}
}

// Check verifies the set holds exactly the distinct consumed segments.
func (g *Genome) Check() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if got, want := g.table.SizeNT(), len(g.unique); got != want {
		return fmt.Errorf("genome: %d distinct segments in table, want %d", got, want)
	}
	return nil
}
