// Package stamp ports the transactional kernels of the STAMP benchmark suite
// [Minh et al., IISWC 2008] to the semantic STM API: Vacation, Kmeans,
// Labyrinth (original and the TRANSACT'14-optimized variant), Yada, Genome,
// Intruder, and SSCA2. Inputs are synthetic and deterministic; the kernels
// preserve the transaction shapes — and hence the base-vs-semantic operation
// profiles of Table 3 — that drive the paper's results.
package stamp

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"semstm/internal/txds"
	"semstm/stm"
)

// Resource kinds of the Vacation reservation system.
const (
	resCar = iota
	resFlight
	resRoom
	numResKinds
)

// Vacation is the travel-reservation OLTP workload. Each client session is
// one coarse transaction: a reservation scans candidate resources, keeps the
// most expensive one with free slots (Algorithm 4: the availability and
// price checks are semantic GTs), and books it with a semantic decrement
// followed by a sanity check that promotes the increment — reproducing the
// paper's observation that Vacation's semantic gains are limited.
type Vacation struct {
	rt     *stm.Runtime
	tables [numResKinds]*txds.BSTMap // id -> resource slot
	// Parallel resource pools, indexed by the slot stored in the tables.
	price   []*stm.Var
	numFree []*stm.Var
	total   []int64
	booked  atomic.Int64 // successful bookings, counted post-commit

	// Relations is how many resources exist per kind.
	Relations int
	// QueriesPerTx is how many candidate resources a reservation scans.
	QueriesPerTx int
	// ReservePct / UpdatePct split the operation mix; the remainder makes
	// balance inquiries.
	ReservePct, UpdatePct int
}

// NewVacation builds the reservation system with `relations` resources per
// kind, each with a random price and capacity.
func NewVacation(rt *stm.Runtime, relations int) *Vacation {
	v := &Vacation{
		rt:           rt,
		Relations:    relations,
		QueriesPerTx: 4,
		ReservePct:   90,
		UpdatePct:    5,
	}
	n := relations * numResKinds
	v.price = stm.NewVars(n, 0)
	v.numFree = stm.NewVars(n, 0)
	v.total = make([]int64, n)
	rng := rand.New(rand.NewSource(99))
	slot := 0
	for kind := 0; kind < numResKinds; kind++ {
		v.tables[kind] = txds.NewBSTMap(relations * 8)
		for id := int64(0); id < int64(relations); id++ {
			cap := 3 + rng.Int63n(5)
			v.price[slot].StoreNT(50 + rng.Int63n(450))
			v.numFree[slot].StoreNT(cap)
			v.total[slot] = cap
			s := int64(slot)
			rt.Atomically(func(tx *stm.Tx) { v.tables[kind].Put(tx, id, s) })
			slot++
		}
	}
	return v
}

// reserve is Algorithm 4: scan QueriesPerTx candidates of one resource kind,
// remember the most expensive available one, then book it.
func (v *Vacation) reserve(tx *stm.Tx, rng *rand.Rand) bool {
	kind := rng.Intn(numResKinds)
	maxPrice := int64(-1)
	maxSlot := int64(-1)
	for q := 0; q < v.QueriesPerTx; q++ {
		id := rng.Int63n(int64(v.Relations))
		slot, ok := v.tables[kind].Get(tx, id)
		if !ok {
			continue
		}
		if tx.GT(v.numFree[slot], 0) { // semantic availability check
			if tx.GT(v.price[slot], maxPrice) { // semantic price check
				maxPrice = tx.Read(v.price[slot])
				maxSlot = slot
			}
		}
	}
	if maxSlot < 0 {
		return false
	}
	tx.Inc(v.numFree[maxSlot], -1) // book one slot
	// STAMP's reservation_info bookkeeping re-checks the record; the check
	// touches the just-decremented counter, promoting the increment — the
	// effect the paper reports as "almost all the inc operations were
	// promoted ... because of an additional sanity check".
	if !tx.GTE(v.numFree[maxSlot], 0) {
		tx.Restart()
	}
	return true
}

// updateTables is the price-change profile: rewrite the price of a few
// random resources.
func (v *Vacation) updateTables(tx *stm.Tx, rng *rand.Rand) {
	for q := 0; q < v.QueriesPerTx; q++ {
		kind := rng.Intn(numResKinds)
		id := rng.Int63n(int64(v.Relations))
		if slot, ok := v.tables[kind].Get(tx, id); ok {
			tx.Write(v.price[slot], 50+rng.Int63n(450))
		}
	}
}

// inquire is a read-only session summing prices of random resources.
func (v *Vacation) inquire(tx *stm.Tx, rng *rand.Rand) int64 {
	var sum int64
	for q := 0; q < v.QueriesPerTx; q++ {
		kind := rng.Intn(numResKinds)
		id := rng.Int63n(int64(v.Relations))
		if slot, ok := v.tables[kind].Get(tx, id); ok {
			sum += tx.Read(v.price[slot])
		}
	}
	return sum
}

// Op runs one client session.
func (v *Vacation) Op(rng *rand.Rand) {
	p := rng.Intn(100)
	switch {
	case p < v.ReservePct:
		// The RNG is consumed inside the transaction body, so retries must
		// replay the same candidate set: snapshot the draw up front.
		seed := rng.Int63()
		if stm.Run(v.rt, func(tx *stm.Tx) bool {
			return v.reserve(tx, rand.New(rand.NewSource(seed)))
		}) {
			v.booked.Add(1)
		}
	case p < v.ReservePct+v.UpdatePct:
		seed := rng.Int63()
		v.rt.Atomically(func(tx *stm.Tx) {
			v.updateTables(tx, rand.New(rand.NewSource(seed)))
		})
	default:
		seed := rng.Int63()
		v.rt.Atomically(func(tx *stm.Tx) {
			v.inquire(tx, rand.New(rand.NewSource(seed)))
		})
	}
}

// Check verifies capacity invariants: free slots stay within [0, capacity]
// and the global booking count equals the capacity consumed.
func (v *Vacation) Check() error {
	var consumed int64
	for slot, cap := range v.total {
		free := v.numFree[slot].Load()
		if free < 0 || free > cap {
			return fmt.Errorf("vacation: slot %d free=%d cap=%d", slot, free, cap)
		}
		consumed += cap - free
	}
	if b := v.booked.Load(); b != consumed {
		return fmt.Errorf("vacation: booked %d but capacity consumed %d", b, consumed)
	}
	return nil
}
