package stamp

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"semstm/internal/txds"
	"semstm/stm"
)

// Intruder is the network-intrusion-detection workload: packets of
// fragmented flows arrive in arbitrary order on a shared queue; the capture
// transaction dequeues one packet, and the reassembly transaction folds the
// fragment into its flow, detecting flow completion. The fragment-count
// update is the workload's only increment; completion detection compares
// the count with the expected total.
type Intruder struct {
	rt       *stm.Runtime
	packets  *txds.Queue
	received *txds.ChainTable // flow id -> fragments received
	done     *txds.ChainTable // flow id -> 1 when completed

	// FragmentsPerFlow is the fixed flow length (packed into packet words).
	FragmentsPerFlow int64
	flows            int64
	completed        atomic.Int64
	processed        atomic.Int64
}

// NewIntruder pre-loads `flows` flows of FragmentsPerFlow fragments each,
// shuffled into the shared packet queue.
func NewIntruder(rt *stm.Runtime, flows int) *Intruder {
	in := &Intruder{
		rt:               rt,
		FragmentsPerFlow: 4,
		flows:            int64(flows),
		received:         txds.NewChainTable(flows, flows*8+1),
		done:             txds.NewChainTable(flows, flows*2+1),
	}
	total := int(in.FragmentsPerFlow) * flows
	in.packets = txds.NewQueue(total + 1)
	pkts := make([]int64, 0, total)
	for f := int64(1); f <= int64(flows); f++ {
		for frag := int64(0); frag < in.FragmentsPerFlow; frag++ {
			pkts = append(pkts, f) // packet word = flow id
		}
	}
	rng := rand.New(rand.NewSource(31))
	rng.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })
	for _, p := range pkts {
		pp := p
		rt.Atomically(func(tx *stm.Tx) { in.packets.Enqueue(tx, pp) })
	}
	return in
}

// Op captures and reassembles a few packets.
func (in *Intruder) Op(rng *rand.Rand) {
	for i := 0; i < 4; i++ {
		flow, ok := int64(0), false
		in.rt.Atomically(func(tx *stm.Tx) { flow, ok = in.packets.Dequeue(tx) })
		if !ok {
			return
		}
		completedNow := stm.Run(in.rt, func(tx *stm.Tx) bool {
			in.received.Inc(tx, flow, 1)
			v, _ := in.received.GetVar(tx, flow)
			if tx.EQ(v, in.FragmentsPerFlow) { // flow complete?
				in.done.PutIfAbsent(tx, flow, 1)
				return true
			}
			return false
		})
		in.processed.Add(1)
		if completedNow {
			in.completed.Add(1)
		}
	}
}

// Remaining reports how many packets are still queued.
func (in *Intruder) Remaining() int { return in.packets.LenNT() }

// Check verifies reassembly accounting: processed packets plus queued
// packets equal the injected total, and when the queue drains every flow is
// complete exactly once.
func (in *Intruder) Check() error {
	total := in.flows * in.FragmentsPerFlow
	if got := in.processed.Load() + int64(in.packets.LenNT()); got != total {
		return fmt.Errorf("intruder: %d packets accounted, want %d", got, total)
	}
	if in.packets.LenNT() == 0 {
		if c := in.completed.Load(); c != in.flows {
			return fmt.Errorf("intruder: %d flows completed, want %d", c, in.flows)
		}
		if got := int64(in.done.SizeNT()); got != in.flows {
			return fmt.Errorf("intruder: done table has %d flows, want %d", got, in.flows)
		}
	}
	return nil
}
