// Package harness runs STM workloads across thread counts and algorithms and
// formats the resulting series the way the paper's evaluation section reports
// them: throughput and abort-rate panels for the micro-benchmarks, execution
// time and abort-rate panels for the STAMP applications, and the
// per-transaction operation-count table (Table 3).
package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semstm/stm"
)

// Result captures one benchmark cell: one workload on one algorithm at one
// thread count.
type Result struct {
	Algorithm stm.Algorithm
	// FinalAlgorithm is the concrete engine the runtime ended the run on:
	// equal to Algorithm for fixed runtimes, and whatever rung the online
	// policy last switched to for Adaptive ones.
	FinalAlgorithm stm.Algorithm
	Threads        int
	// GOMAXPROCS is the scheduler width the cell actually ran under —
	// without it a committed baseline number cannot be reproduced, because
	// thread counts above GOMAXPROCS measure oversubscription, not
	// parallelism.
	GOMAXPROCS int
	Elapsed    time.Duration
	Ops        uint64       // application-level operations completed
	Stats      stm.Snapshot // runtime counters scoped to the run
	// Memory-discipline metrics (schema v5): process-wide runtime.MemStats
	// deltas scoped to the run, normalized per transaction (commits + aborts).
	// They cover everything the cell allocates — STM runtime, workload driver,
	// and harness — which is exactly the GC pressure the cell generates.
	AllocsPerTx float64
	BytesPerTx  float64
	// GCPause is the total stop-the-world pause time the run accumulated.
	GCPause time.Duration
}

// memDelta computes the per-transaction allocation metrics from the MemStats
// snapshots bracketing a run.
func memDelta(before, after *runtime.MemStats, txs uint64) (allocsPerTx, bytesPerTx float64, pause time.Duration) {
	pause = time.Duration(after.PauseTotalNs - before.PauseTotalNs)
	if txs == 0 {
		return 0, 0, pause
	}
	allocsPerTx = float64(after.Mallocs-before.Mallocs) / float64(txs)
	bytesPerTx = float64(after.TotalAlloc-before.TotalAlloc) / float64(txs)
	return allocsPerTx, bytesPerTx, pause
}

// ApplyProcs installs the per-cell GOMAXPROCS policy and returns the restore
// function. procs > 0 pins that width; procs == 0 matches the cell's thread
// count, so every worker goroutine can hold a P and the runtime's
// housekeeping amortizes across them; procs < 0 leaves the process setting
// untouched.
func ApplyProcs(procs, threads int) func() {
	target := procs
	if target == 0 {
		target = threads
	}
	if target <= 0 {
		return func() {}
	}
	prev := runtime.GOMAXPROCS(target)
	return func() { runtime.GOMAXPROCS(prev) }
}

// ThroughputKTx returns committed transactions per second, in thousands —
// the y-axis of the micro-benchmark throughput panels.
func (r Result) ThroughputKTx() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.Commits) / r.Elapsed.Seconds() / 1000
}

// AbortPct returns the abort rate percentage — the y-axis of the abort
// panels.
func (r Result) AbortPct() float64 { return r.Stats.AbortRate() }

// OpsPerCommit reports the average per-transaction operation profile, the
// rows of Table 3. Operations performed by aborted attempts are included in
// the numerator, matching runtime-collected statistics.
func (r Result) OpsPerCommit() OpProfile {
	c := float64(r.Stats.Commits)
	if c == 0 {
		return OpProfile{}
	}
	return OpProfile{
		Reads:    float64(r.Stats.Reads) / c,
		Writes:   float64(r.Stats.Writes) / c,
		Compares: float64(r.Stats.Compares) / c,
		Incs:     float64(r.Stats.Incs) / c,
		Promotes: float64(r.Stats.Promotes) / c,
	}
}

// OpProfile is one Table 3 column: average operations per transaction.
type OpProfile struct {
	Reads, Writes, Compares, Incs, Promotes float64
}

// Workload is a benchmark driver bound to a runtime: Op runs one
// application-level operation (one or more transactions) and Check verifies
// post-run invariants.
type Workload interface {
	Op(rng *rand.Rand)
	Check() error
}

// Builder constructs a fresh workload instance over a fresh runtime; every
// benchmark cell gets isolated state.
type Builder func(rt *stm.Runtime) Workload

// RunTimed drives the workload with the given number of threads for roughly
// the given duration and returns the measured cell.
func RunTimed(rt *stm.Runtime, w Workload, threads int, dur time.Duration) (Result, error) {
	before := rt.Stats()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := uint64(0)
			for !stop.Load() {
				w.Op(rng)
				local++
			}
			ops.Add(local)
		}(int64(t) + 1)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	res := Result{
		Algorithm:      rt.Algorithm(),
		FinalAlgorithm: rt.CurrentAlgorithm(),
		Threads:        threads,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Elapsed:        elapsed,
		Ops:            ops.Load(),
		Stats:          rt.Stats().Sub(before),
	}
	res.AllocsPerTx, res.BytesPerTx, res.GCPause =
		memDelta(&ms0, &ms1, res.Stats.Commits+res.Stats.Aborts)
	return res, w.Check()
}

// RunFixed drives totalOps operations split across the threads and returns
// the measured cell; Elapsed is the execution-time metric of the STAMP
// panels.
func RunFixed(rt *stm.Runtime, w Workload, threads, totalOps int) (Result, error) {
	before := rt.Stats()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var wg sync.WaitGroup
	per := totalOps / threads
	start := time.Now()
	for t := 0; t < threads; t++ {
		n := per
		if t == threads-1 {
			n = totalOps - per*(threads-1)
		}
		wg.Add(1)
		go func(seed int64, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				w.Op(rng)
			}
		}(int64(t)+1, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	res := Result{
		Algorithm:      rt.Algorithm(),
		FinalAlgorithm: rt.CurrentAlgorithm(),
		Threads:        threads,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Elapsed:        elapsed,
		Ops:            uint64(totalOps),
		Stats:          rt.Stats().Sub(before),
	}
	res.AllocsPerTx, res.BytesPerTx, res.GCPause =
		memDelta(&ms0, &ms1, res.Stats.Commits+res.Stats.Aborts)
	return res, w.Check()
}

// Series is a full panel: one row per thread count, one column per algorithm
// (or compiler mode, for the GCC panels).
type Series struct {
	Title   string
	Columns []string
	Threads []int
	Cells   map[string]map[int]Result
}

// AddCell records a measured cell under the named column, creating the
// column on first use.
func (s *Series) AddCell(column string, threads int, r Result) {
	if s.Cells == nil {
		s.Cells = make(map[string]map[int]Result)
	}
	if _, ok := s.Cells[column]; !ok {
		s.Cells[column] = make(map[int]Result)
		s.Columns = append(s.Columns, column)
	}
	s.Cells[column][threads] = r
}

// SweepConfig selects how a panel is produced.
type SweepConfig struct {
	// Algorithms selects the panel columns; empty means every registered
	// engine, in registry display order.
	Algorithms []stm.Algorithm
	Threads    []int
	// Timed selects duration-based throughput runs; otherwise fixed-ops
	// execution-time runs.
	Timed    bool
	Duration time.Duration // per cell, when Timed
	TotalOps int           // per cell, when !Timed
	// YieldEvery is passed to Runtime.SetYieldEvery on every cell's runtime
	// (interleave simulation for low-core machines; 0 disables).
	YieldEvery int
	// GOMAXPROCS is the per-cell scheduler-width policy (see ApplyProcs):
	// 0 matches each cell's thread count, > 0 pins a width, < 0 leaves the
	// process setting alone.
	GOMAXPROCS int
	// NewRuntime builds each cell's runtime; nil means stm.New. The sharded
	// panels pass stm.NewShardedRuntime closures here, so the rest of the
	// sweep machinery stays shard-agnostic.
	NewRuntime func(stm.Algorithm) *stm.Runtime
}

// Sweep measures a whole panel. Each cell is built from scratch so the cells
// are independent.
func Sweep(title string, build Builder, cfg SweepConfig) (*Series, error) {
	s := &Series{Title: title, Threads: cfg.Threads}
	algos := cfg.Algorithms
	if len(algos) == 0 {
		algos = stm.Algorithms()
	}
	newRuntime := cfg.NewRuntime
	if newRuntime == nil {
		newRuntime = stm.New
	}
	for _, a := range algos {
		for _, th := range cfg.Threads {
			rt := newRuntime(a)
			rt.SetYieldEvery(cfg.YieldEvery)
			w := build(rt)
			restore := ApplyProcs(cfg.GOMAXPROCS, th)
			var res Result
			var err error
			if cfg.Timed {
				res, err = RunTimed(rt, w, th, cfg.Duration)
			} else {
				res, err = RunFixed(rt, w, th, cfg.TotalOps)
			}
			restore()
			if err != nil {
				return nil, fmt.Errorf("%s [%v x%d]: %w", title, a, th, err)
			}
			s.AddCell(a.String(), th, res)
		}
	}
	return s, nil
}

// FormatThroughput renders the panel as a throughput table (k tx/s).
func (s *Series) FormatThroughput() string {
	return s.format("throughput (k tx/s)", func(r Result) float64 { return r.ThroughputKTx() })
}

// FormatAborts renders the panel as an abort-rate table (%).
func (s *Series) FormatAborts() string {
	return s.format("aborts (%)", func(r Result) float64 { return r.AbortPct() })
}

// FormatTime renders the panel as an execution-time table (seconds).
func (s *Series) FormatTime() string {
	return s.format("time (s)", func(r Result) float64 { return r.Elapsed.Seconds() })
}

func (s *Series) format(metric string, f func(Result) float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.Title, metric)
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, c := range s.Columns {
		fmt.Fprintf(&b, "%20s", c)
	}
	b.WriteByte('\n')
	for _, th := range s.Threads {
		fmt.Fprintf(&b, "%-8d", th)
		for _, c := range s.Columns {
			fmt.Fprintf(&b, "%20.2f", f(s.Cells[c][th]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Speedup reports how much faster (throughput) or shorter (time) the
// semantic column is versus its baseline at the given thread count.
func (s *Series) Speedup(base, sem string, threads int, timed bool) float64 {
	b, okB := s.Cells[base][threads]
	m, okM := s.Cells[sem][threads]
	if !okB || !okM {
		return 0
	}
	if timed {
		if m.ThroughputKTx() == 0 {
			return 0
		}
		return m.ThroughputKTx() / b.ThroughputKTx()
	}
	if m.Elapsed <= 0 {
		return 0
	}
	return b.Elapsed.Seconds() / m.Elapsed.Seconds()
}
