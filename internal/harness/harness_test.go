package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"semstm/stm"
)

// countingWorkload is a trivial workload for harness tests: each op is one
// increment transaction.
type countingWorkload struct {
	rt *stm.Runtime
	c  *stm.Var
}

func newCounting(rt *stm.Runtime) Workload {
	return &countingWorkload{rt: rt, c: stm.NewVar(0)}
}

func (w *countingWorkload) Op(rng *rand.Rand) {
	w.rt.Atomically(func(tx *stm.Tx) { tx.Inc(w.c, 1) })
}

func (w *countingWorkload) Check() error {
	if w.c.Load() <= 0 {
		return fmt.Errorf("counter did not move")
	}
	return nil
}

func TestRunFixedCountsOps(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	w := newCounting(rt)
	res, err := RunFixed(rt, w, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 100 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Stats.Commits != 100 {
		t.Fatalf("commits = %d", res.Stats.Commits)
	}
	if res.Threads != 3 || res.Algorithm != stm.SNOrec {
		t.Fatalf("metadata wrong: %+v", res)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestRunFixedUnevenSplit(t *testing.T) {
	rt := stm.New(stm.NOrec)
	w := newCounting(rt)
	// 10 ops across 3 threads: 3 + 3 + 4.
	res, err := RunFixed(rt, w, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Commits != 10 {
		t.Fatalf("commits = %d, want all ops to run", res.Stats.Commits)
	}
}

func TestRunTimedStops(t *testing.T) {
	rt := stm.New(stm.TL2)
	w := newCounting(rt)
	start := time.Now()
	res, err := RunTimed(rt, w, 2, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("RunTimed did not stop")
	}
	if res.Ops == 0 || res.Stats.Commits == 0 {
		t.Fatal("no work recorded")
	}
	if res.ThroughputKTx() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestOpsPerCommit(t *testing.T) {
	r := Result{Stats: stm.Snapshot{Commits: 4, Reads: 8, Writes: 4, Compares: 12, Incs: 2, Promotes: 1}}
	p := r.OpsPerCommit()
	if p.Reads != 2 || p.Writes != 1 || p.Compares != 3 || p.Incs != 0.5 || p.Promotes != 0.25 {
		t.Fatalf("profile %+v", p)
	}
	if (Result{}).OpsPerCommit() != (OpProfile{}) {
		t.Fatal("zero commits must yield zero profile")
	}
}

func TestSweepAndFormatting(t *testing.T) {
	s, err := Sweep("Test Panel", newCounting, SweepConfig{
		Algorithms: []stm.Algorithm{stm.NOrec, stm.SNOrec},
		Threads:    []int{1, 2},
		Timed:      false,
		TotalOps:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Columns) != 2 {
		t.Fatalf("columns %v", s.Columns)
	}
	for _, metric := range []string{s.FormatThroughput(), s.FormatAborts(), s.FormatTime()} {
		if !strings.Contains(metric, "Test Panel") ||
			!strings.Contains(metric, "NOrec") ||
			!strings.Contains(metric, "S-NOrec") {
			t.Fatalf("bad format:\n%s", metric)
		}
		lines := strings.Split(strings.TrimSpace(metric), "\n")
		if len(lines) != 4 { // title + header + 2 thread rows
			t.Fatalf("want 4 lines, got %d:\n%s", len(lines), metric)
		}
	}
}

func TestSeriesSpeedup(t *testing.T) {
	s := &Series{}
	s.AddCell("base", 2, Result{Elapsed: 2 * time.Second, Stats: stm.Snapshot{Commits: 1000}})
	s.AddCell("sem", 2, Result{Elapsed: time.Second, Stats: stm.Snapshot{Commits: 1000}})
	if got := s.Speedup("base", "sem", 2, false); got != 2 {
		t.Fatalf("time speedup = %v", got)
	}
	if got := s.Speedup("base", "sem", 2, true); got != 2 {
		t.Fatalf("throughput speedup = %v", got)
	}
	if s.Speedup("base", "sem", 99, true) != 0 {
		t.Fatal("missing cell must yield 0")
	}
}

func TestFormatTable3(t *testing.T) {
	out := FormatTable3([]OpRow{
		{
			Benchmark: "Bank",
			Base:      OpProfile{Reads: 22.5, Writes: 12.7},
			Semantic:  OpProfile{Compares: 10, Incs: 12.7, Promotes: 0.05},
		},
	})
	for _, want := range []string{"Table 3", "Bank", "base", "semantic", "22.50", "12.70"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSweepCheckFailurePropagates(t *testing.T) {
	bad := func(rt *stm.Runtime) Workload { return badWorkload{} }
	_, err := Sweep("bad", bad, SweepConfig{
		Algorithms: []stm.Algorithm{stm.NOrec},
		Threads:    []int{1},
		TotalOps:   1,
	})
	if err == nil {
		t.Fatal("check failure must propagate")
	}
}

type badWorkload struct{}

func (badWorkload) Op(*rand.Rand) {}
func (badWorkload) Check() error  { return fmt.Errorf("invariant violated") }
