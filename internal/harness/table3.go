package harness

import (
	"fmt"
	"strings"
)

// OpRow is one benchmark's base/semantic operation profile pair — one column
// group of Table 3.
type OpRow struct {
	Benchmark string
	Base      OpProfile
	Semantic  OpProfile
}

// FormatTable3 renders the per-transaction operation counts the way Table 3
// of the paper lays them out (one row per operation type, base and semantic
// sub-columns per benchmark, transposed here as one row group per benchmark
// for terminal readability).
func FormatTable3(rows []OpRow) string {
	var b strings.Builder
	b.WriteString("Table 3 — Average Number of Operations per Transaction\n")
	fmt.Fprintf(&b, "%-14s %-9s %10s %10s %10s %10s %10s\n",
		"benchmark", "build", "read", "write", "compare", "increment", "promote")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-9s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			r.Benchmark, "base",
			r.Base.Reads, r.Base.Writes, r.Base.Compares, r.Base.Incs, r.Base.Promotes)
		fmt.Fprintf(&b, "%-14s %-9s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			"", "semantic",
			r.Semantic.Reads, r.Semantic.Writes, r.Semantic.Compares, r.Semantic.Incs, r.Semantic.Promotes)
	}
	return b.String()
}
