// Package tl2 implements the TL2 STM algorithm [Dice, Shalev, Shavit; DISC
// 2006] and its semantic extension S-TL2 (Algorithm 7 of "Extending TM
// Primitives using Low Level Semantics", SPAA 2016).
//
// TL2 maps every transactional variable to an ownership record (orec) in a
// shared table. An orec packs a version and a lock bit in one word; writers
// lock the orecs of their write-set at commit, bump the global version clock,
// validate their read-set against their start version, write back, and
// release the orecs at the new version. S-TL2 adds a compare-set holding
// semantic facts, a phase-1 optimization that extends the start version while
// no classical read has been performed, and a CAS-based clock increment that
// keeps compare-set validation consistent with concurrent committers.
package tl2

import (
	"fmt"
	"sync/atomic"

	"semstm/internal/core"
)

// orecBits sets the table to 2^16 cache-line-sized ownership records (4 MiB).
// Before the padding pass the table was 2^18 sixteen-byte orecs — same
// memory, but four orecs per cache line, so a committer bumping one orec
// invalidated the line under readers of three unrelated ones. One orec per
// line kills that false sharing; the coarser hash costs collisions only at
// ~n²/2^17 for n live hot variables, negligible for the benchmark footprints
// (and a collision is a false conflict, never a correctness issue).
const orecBits = 16

// orec is one ownership record, padded to a full cache line. word packs
// version<<1 | lockBit; the version bits are preserved while locked, so
// readers can still see the pre-lock version. owner holds the locking
// attempt's unique id and is meaningful only while the lock bit is set;
// attempt ids are globally unique, so a stale owner value can never collide
// with a live attempt.
type orec struct {
	word  atomic.Uint64
	owner atomic.Uint64
	_     [core.CacheLine - 16]byte
}

func locked(w uint64) bool        { return w&1 == 1 }
func version(w uint64) uint64     { return w >> 1 }
func versionWord(v uint64) uint64 { return v << 1 }

// Global is the state shared by all transactions of one TL2 runtime. The
// two hottest words in the system — the version clock every transaction
// reads and every writer advances, and the attempt-id counter every Start
// bumps — each sit alone on their cache line: sharing a line would make
// every Start invalidate the clock under every in-flight reader.
type Global struct {
	clock atomic.Uint64
	_     core.PadWord
	txid  atomic.Uint64
	_     core.PadWord
	orecs [1 << orecBits]orec
	// readers is the privatization-barrier surface (DESIGN.md §14): each
	// descriptor publishes its start version in a slot here, and a
	// privatizing committer drains the table to its write version.
	readers core.ReaderTable
}

// NewGlobal returns a fresh runtime state with the clock at zero.
func NewGlobal() *Global { return &Global{} }

// Clock exposes the global version clock (tests only).
func (g *Global) Clock() uint64 { return g.clock.Load() }

// Quiescent verifies no ownership record is left locked: at a quiescent
// point every orec's lock bit must be clear, whatever aborts, injected
// faults, or user panics the preceding run went through. The scan covers the
// whole table (a few hundred thousand loads — cheap next to any test run).
func (g *Global) Quiescent() error {
	leaked := 0
	for i := range g.orecs {
		if locked(g.orecs[i].word.Load()) {
			leaked++
		}
	}
	if leaked != 0 {
		return fmt.Errorf("tl2: %d orec lock(s) leaked", leaked)
	}
	return nil
}

// orecIndexFor maps a variable to the index of its ownership record with a
// multiplicative (Fibonacci) hash of the allocation id, the analogue of
// hashing a raw address in native TL2.
func (g *Global) orecIndexFor(v *core.Var) int {
	h := v.ID() * 0x9E3779B97F4A7C15
	return int(h >> (64 - orecBits))
}

// orecFor maps a variable to its ownership record.
func (g *Global) orecFor(v *core.Var) *orec {
	return &g.orecs[g.orecIndexFor(v)]
}

// waitBound limits how many adaptive-waiter rounds (core.Waiter: exponential
// spin, then yields, then brief sleeps) a semantic operation politely waits
// for a locked orec before giving up and aborting — the paper's "timeout
// mechanism ... to avoid starvation". 64 rounds is roughly 15ms of
// wall-clock, comparable to the previous 4096 raw Gosched rounds, but the
// sleep tier actually frees the CPU for a preempted lock holder.
const waitBound = 64

// spinBound limits commit-time lock acquisition waiter rounds before
// aborting, which (together with index-ordered acquisition) rules out
// deadlock.
const spinBound = 64
