package tl2

import (
	"sort"

	"semstm/internal/core"
)

// heldLock records an orec locked at commit time together with its pre-lock
// word, so an aborting commit can restore it.
type heldLock struct {
	o    *orec
	prev uint64
}

// Tx is one TL2 / S-TL2 transaction descriptor, reused across attempts.
type Tx struct {
	g            *Global
	semantic     bool
	noExtend     bool
	id           uint64 // unique per attempt; owner stamp for locked orecs
	startVersion uint64
	reads        []*orec      // read-set: orecs of classical reads
	compares     *core.SemSet // compare-set: semantic facts (S-TL2 only)
	writes       *core.WriteSet
	fp           *core.FaultPlan // nil unless fault injection is armed
	held         []heldLock
	wv           uint64      // write version reserved by a two-phase Validate
	lockIdx      []int       // scratch: orec indices to lock, reused across commits
	waiter       core.Waiter // adaptive spin-then-yield backoff for locked orecs
	stats        core.TxStats
	readShrink   core.Shrinker // high-water-mark clamp for the read-set
	commitShrink core.Shrinker // same policy for the commit scratch (held/lockIdx)
	// slot publishes the start version to privatizing committers; lastW is
	// the write version of the last successful commit — the quiescence
	// point PrivatizeBarrier drains to.
	slot  *core.ReaderSlot
	lastW uint64
}

// readSetMinCap is the pre-sized (and clamp floor) capacity of the read-set.
const readSetMinCap = 32

// NewTx returns a transaction descriptor bound to g. If semantic is true the
// descriptor runs S-TL2; otherwise baseline TL2 with semantic operations
// delegated to classical barriers.
func NewTx(g *Global, semantic bool) *Tx {
	return &Tx{
		g:        g,
		semantic: semantic,
		reads:    make([]*orec, 0, readSetMinCap),
		compares: core.NewSemSet(),
		writes:   core.NewWriteSet(),
		slot:     g.readers.NewSlot(),
	}
}

// Start begins a new attempt (Algorithm 7 lines 1–3): snapshot the global
// version clock as the start version and draw a fresh attempt id. The
// descriptor-local slices retain capacity across attempts (zero-allocation
// steady state) under the core high-water-mark shrink policy: the read-set
// and the commit scratch are clamped back near their recent peak after
// ShrinkAfter consecutive small attempts.
func (tx *Tx) Start() {
	if peak, ok := tx.readShrink.Note(len(tx.reads), cap(tx.reads)); ok {
		tx.reads = make([]*orec, 0, core.ShrinkCap(peak, readSetMinCap))
	} else {
		tx.reads = tx.reads[:0]
	}
	tx.compares.Reset()
	tx.writes.Reset()
	// held is empty here on every path (write-back and Cleanup both truncate
	// it); lockIdx still holds the previous commit's lock list, which is the
	// usage signal for the commit-scratch clamp.
	if peak, ok := tx.commitShrink.Note(len(tx.lockIdx), cap(tx.lockIdx)); ok {
		tx.lockIdx = make([]int, 0, core.ShrinkCap(peak, 0))
		tx.held = nil
	} else {
		tx.held = tx.held[:0]
	}
	tx.stats.Reset()
	tx.id = tx.g.txid.Add(1)
	// Pin-then-recheck: publish the reader slot before trusting the start
	// version. Without the recheck a privatizing committer could advance the
	// clock and scan the reader table between our clock load and the pin —
	// and a TL2 zombie that captured a pre-unlink pointer is invisible to
	// orec validation when it dereferences into cells the privatizer never
	// wrote. A failed recheck re-pins at the newer clock value; the window
	// between load and pin is a couple of loads, so repeated failures need a
	// commit to land inside it every time.
	for {
		s := tx.g.clock.Load()
		tx.slot.Pin(s)
		if tx.g.clock.Load() == s {
			tx.startVersion = s
			break
		}
	}
	if tx.fp != nil {
		tx.fp.Step(core.SiteStart)
	}
}

// SetFaultPlan arms or disarms deterministic fault injection.
func (tx *Tx) SetFaultPlan(p *core.FaultPlan) { tx.fp = p }

// readConsistent performs the TL2 consistent-read protocol on v and appends
// its orec to the read-set (Algorithm 7 lines 40–49): sample the orec, read
// the value, re-sample, and abort on any lock or version movement beyond the
// start version.
func (tx *Tx) readConsistent(v *core.Var) int64 {
	o := tx.g.orecFor(v)
	w1 := o.word.Load()
	if locked(w1) {
		core.AbortWith(core.ReasonOrecLocked)
	}
	val := v.Load()
	w2 := o.word.Load()
	if w1 != w2 || version(w1) > tx.startVersion {
		core.AbortWith(core.ReasonValidation)
	}
	tx.reads = append(tx.reads, o)
	return val
}

// raw resolves a read-after-write against write-set entry e. A pending
// increment is promoted exactly as in S-NOrec, except that the read part uses
// the TL2 consistent-read protocol and therefore lands in the read-set —
// moving the transaction to phase 2.
func (tx *Tx) raw(v *core.Var, e *core.WriteEntry) int64 {
	if e.Kind == core.EntryInc {
		val := tx.readConsistent(v)
		tx.writes.Promote(v, e.Val+val)
		tx.stats.Promotes++
	}
	return e.Val
}

// Read implements the classical TM_READ barrier (Algorithm 7 lines 37–50).
func (tx *Tx) Read(v *core.Var) int64 {
	tx.stats.Reads++
	if tx.fp != nil {
		tx.fp.Step(core.SiteRead)
	}
	if e := tx.writes.Get(v); e != nil {
		return tx.raw(v, e)
	}
	return tx.readConsistent(v)
}

// Write implements the classical TM_WRITE barrier (buffered, as in TL2).
func (tx *Tx) Write(v *core.Var, val int64) {
	tx.stats.Writes++
	tx.writes.PutWrite(v, val)
}

// Cmp implements the semantic conditional of Algorithm 7 (lines 4–36). In
// phase 1 — before the first classical read — the comparison may observe a
// version newer than the start version; the compare-set is then revalidated
// under a stable clock and the start version is extended. In phase 2 the
// comparison must stay consistent with prior reads and follows the classical
// TL2 version checks, but the fact still lands in the compare-set so that
// commit-time validation is semantic.
func (tx *Tx) Cmp(v *core.Var, op core.Op, operand int64) bool {
	if !tx.semantic {
		return op.Eval(tx.Read(v), operand)
	}
	tx.stats.Compares++
	if tx.fp != nil {
		tx.fp.Step(core.SiteCmp)
	}
	if e := tx.writes.Get(v); e != nil {
		return op.Eval(tx.raw(v, e), operand)
	}
	o := tx.g.orecFor(v)
	if len(tx.reads) == 0 {
		return tx.cmpPhase1(v, o, op, operand)
	}
	return tx.cmpPhase2(v, o, op, operand)
}

// cmpPhase1 handles a semantic conditional before any classical read
// (Algorithm 7 lines 10–25).
func (tx *Tx) cmpPhase1(v *core.Var, o *orec, op core.Op, operand int64) bool {
	var val int64
	var w1 uint64
	tx.waiter.Reset()
	for {
		w1 = o.word.Load()
		if locked(w1) && o.owner.Load() != tx.id {
			tx.stats.SpinWaits++
			if tx.waiter.Wait() > waitBound { // line 12: wait until unlocked
				core.AbortWith(core.ReasonOrecLocked)
			}
			continue
		}
		val = v.Load()
		w2 := o.word.Load()
		if w1 != w2 {
			tx.stats.SpinWaits++
			if tx.waiter.Wait() > waitBound { // line 16: retry read
				core.AbortWith(core.ReasonOrecLocked)
			}
			continue
		}
		break
	}
	result := op.Eval(val, operand)
	tx.compares.AppendOutcome(v, op, operand, result)
	if version(w1) > tx.startVersion {
		if tx.noExtend {
			core.AbortWith(core.ReasonValidation) // ablation: behave like phase 2 from the start
		}
		for {
			time := tx.g.clock.Load()
			tx.validateCompareSet()
			if time == tx.g.clock.Load() {
				tx.startVersion = time // line 25: extend start version
				// Forward pin movement (no recheck needed: we stayed pinned
				// at the old version throughout the extension).
				tx.slot.Pin(time)
				break
			}
			// line 23: a concurrent commit moved the clock; retry.
		}
	}
	return result
}

// cmpPhase2 handles a semantic conditional after the first classical read
// (Algorithm 7 lines 26–35): the start version can no longer be extended, so
// the read of the operand must pass the classical TL2 checks.
func (tx *Tx) cmpPhase2(v *core.Var, o *orec, op core.Op, operand int64) bool {
	w1 := o.word.Load()
	if locked(w1) && o.owner.Load() != tx.id {
		core.AbortWith(core.ReasonOrecLocked)
	}
	val := v.Load()
	w2 := o.word.Load()
	if version(w1) > tx.startVersion || w1 != w2 {
		core.AbortWith(core.ReasonValidation)
	}
	result := op.Eval(val, operand)
	tx.compares.AppendOutcome(v, op, operand, result)
	return result
}

// CmpVars implements the address–address conditional (_ITM_S2R). With clean
// operands S-TL2 records a single two-address fact in the compare-set; the
// consistent-pair read follows the same phase rules as Cmp, sampling both
// orecs around the loads. Operands with buffered writes fall back to the
// address–value machinery.
func (tx *Tx) CmpVars(a *core.Var, op core.Op, b *core.Var) bool {
	if !tx.semantic {
		operand := tx.Read(b)
		return op.Eval(tx.Read(a), operand)
	}
	// One indexed lookup per operand (see the WriteSet Bloom fast path).
	if eb := tx.writes.Get(b); eb != nil || tx.writes.Get(a) != nil {
		var operand int64
		if eb != nil {
			operand = tx.raw(b, eb)
		} else {
			tx.stats.Reads++
			operand = tx.readConsistent(b)
		}
		return tx.Cmp(a, op, operand)
	}
	tx.stats.Compares++
	oa, ob := tx.g.orecFor(a), tx.g.orecFor(b)
	if len(tx.reads) == 0 {
		return tx.cmpVarsPhase1(a, b, oa, ob, op)
	}
	return tx.cmpVarsPhase2(a, b, oa, ob, op)
}

// cmpVarsPhase1 performs the two-address comparison before any classical
// read, extending the start version through compare-set revalidation when
// either orec is newer than the snapshot.
func (tx *Tx) cmpVarsPhase1(a, b *core.Var, oa, ob *orec, op core.Op) bool {
	var va, vb int64
	var wa, wb uint64
	tx.waiter.Reset()
	for {
		wa = oa.word.Load()
		wb = ob.word.Load()
		if (locked(wa) && oa.owner.Load() != tx.id) ||
			(locked(wb) && ob.owner.Load() != tx.id) {
			tx.stats.SpinWaits++
			if tx.waiter.Wait() > waitBound { // wait until unlocked
				core.AbortWith(core.ReasonOrecLocked)
			}
			continue
		}
		va, vb = a.Load(), b.Load()
		if oa.word.Load() != wa || ob.word.Load() != wb {
			tx.stats.SpinWaits++
			if tx.waiter.Wait() > waitBound { // retry the pair read
				core.AbortWith(core.ReasonOrecLocked)
			}
			continue
		}
		break
	}
	result := op.Eval(va, vb)
	tx.compares.AppendOutcomeVar(a, op, b, result)
	if version(wa) > tx.startVersion || version(wb) > tx.startVersion {
		if tx.noExtend {
			core.AbortWith(core.ReasonValidation) // ablation: phase-1 extension disabled
		}
		for {
			time := tx.g.clock.Load()
			tx.validateCompareSet()
			if time == tx.g.clock.Load() {
				tx.startVersion = time
				tx.slot.Pin(time) // forward pin movement, as in cmpPhase1
				break
			}
		}
	}
	return result
}

// cmpVarsPhase2 performs the two-address comparison after the first
// classical read: both orecs must be consistent with the frozen snapshot.
func (tx *Tx) cmpVarsPhase2(a, b *core.Var, oa, ob *orec, op core.Op) bool {
	wa := oa.word.Load()
	wb := ob.word.Load()
	if (locked(wa) && oa.owner.Load() != tx.id) ||
		(locked(wb) && ob.owner.Load() != tx.id) {
		core.AbortWith(core.ReasonOrecLocked)
	}
	va, vb := a.Load(), b.Load()
	if version(wa) > tx.startVersion || version(wb) > tx.startVersion ||
		oa.word.Load() != wa || ob.word.Load() != wb {
		core.AbortWith(core.ReasonValidation)
	}
	result := op.Eval(va, vb)
	tx.compares.AppendOutcomeVar(a, op, b, result)
	return result
}

// CmpSum evaluates "(Σ vars) op rhs" by delegation to classical reads: the
// version-based algorithm has no native expression support (the paper's
// technical-report extension is value-based; see DESIGN.md), so the sum pins
// its addends.
func (tx *Tx) CmpSum(op core.Op, rhs int64, vars []*core.Var) bool {
	var sum int64
	for _, v := range vars {
		sum += tx.Read(v)
	}
	return op.Eval(sum, rhs)
}

// CmpAny evaluates the composed condition clause by clause with
// short-circuiting; under S-TL2 every evaluated clause is its own semantic
// fact, which is exactly how the published algorithm treats composed
// conditions.
func (tx *Tx) CmpAny(conds []core.Cond) bool {
	for _, c := range conds {
		if tx.Cmp(c.Var, c.Op, c.Operand) {
			return true
		}
	}
	return false
}

// Inc implements the semantic increment; write-set handling is identical to
// S-NOrec (the paper omits it from Algorithm 7 for that reason).
func (tx *Tx) Inc(v *core.Var, delta int64) {
	if !tx.semantic {
		tx.Write(v, tx.Read(v)+delta)
		return
	}
	tx.stats.Incs++
	tx.writes.PutInc(v, delta)
}

// validateCompareSet re-evaluates the semantic facts against current memory
// (Algorithm 7 lines 56–65), version-filtered (DESIGN.md §8): a fact whose
// orec is unlocked and still at or below the start version cannot have been
// modified since the facts were last known valid — every committed write
// bumps its orec past the committer's (higher) write version — so only
// entries whose orecs moved or are locked pay the value re-load and
// re-evaluation. This is the TL2-side analogue of NOrec's coalescing: the
// version metadata NOrec lacks makes a per-entry skip sound here, where
// NOrec can only skip whole walks. If a fact's variable is locked by
// another transaction, the validator politely waits for the lock to be
// released — the value is about to change, and only its final state decides
// the semantic outcome — bounded by the starvation timeout.
func (tx *Tx) validateCompareSet() {
	if tx.fp != nil && tx.fp.ValidationFail() {
		core.AbortWith(core.ReasonCmpFlip)
	}
	tx.stats.Validations++
	for i := range tx.compares.Entries() {
		e := &tx.compares.Entries()[i]
		if tx.orecUnchanged(e.Var) && (e.OperandVar == nil || tx.orecUnchanged(e.OperandVar)) {
			continue
		}
		tx.stats.ValEntries++
		tx.waitUnlocked(tx.g.orecFor(e.Var))
		if e.OperandVar != nil {
			tx.waitUnlocked(tx.g.orecFor(e.OperandVar))
		}
		if !e.Holds() {
			core.AbortWith(core.ReasonCmpFlip) // line 64: semantic validation failed
		}
	}
}

// orecUnchanged reports whether v's ownership record is unlocked and still
// at or below the start version, i.e. *v provably has not been modified by
// any commit since this transaction's facts were last valid. An orec-table
// collision can only make this return false for an untouched variable —
// a spurious full re-check, never a missed one.
func (tx *Tx) orecUnchanged(v *core.Var) bool {
	w := tx.g.orecFor(v).word.Load()
	return !locked(w) && version(w) <= tx.startVersion
}

// waitUnlocked waits politely (adaptive spin-then-yield) while o is locked
// by another transaction, bounded by the starvation timeout.
func (tx *Tx) waitUnlocked(o *orec) {
	tx.waiter.Reset()
	for {
		w := o.word.Load()
		if !locked(w) || o.owner.Load() == tx.id {
			return
		}
		tx.stats.SpinWaits++
		if tx.waiter.Wait() > waitBound {
			core.AbortWith(core.ReasonOrecLocked)
		}
	}
}

// validateReadSet checks that no orec in the read-set is locked by another
// transaction or versioned beyond the start version (Algorithm 7 lines
// 51–55). Orecs locked by this transaction are checked against their
// preserved pre-lock version.
func (tx *Tx) validateReadSet() {
	if tx.fp != nil && tx.fp.ValidationFail() {
		core.AbortWith(core.ReasonValidation)
	}
	tx.stats.Validations++
	tx.stats.ValEntries += uint64(len(tx.reads))
	for _, o := range tx.reads {
		w := o.word.Load()
		if locked(w) && o.owner.Load() != tx.id {
			core.AbortWith(core.ReasonOrecLocked)
		}
		if version(w) > tx.startVersion {
			core.AbortWith(core.ReasonValidation)
		}
	}
}

// acquireWriteLocks locks the distinct orecs covering the write-set in table
// order (deadlock avoidance) with bounded spinning. Held locks are recorded
// with their pre-lock words so Cleanup can roll back.
func (tx *Tx) acquireWriteLocks() {
	entries := tx.writes.Entries()
	tx.lockIdx = tx.lockIdx[:0]
	for i := range entries {
		tx.lockIdx = append(tx.lockIdx, tx.g.orecIndexFor(entries[i].Var))
	}
	sort.Ints(tx.lockIdx)
	prev := -1
	for _, idx := range tx.lockIdx {
		if idx == prev {
			continue // two variables sharing an orec: lock once
		}
		prev = idx
		o := &tx.g.orecs[idx]
		tx.waiter.Reset()
		for {
			w := o.word.Load()
			if !locked(w) && o.word.CompareAndSwap(w, w|1) {
				o.owner.Store(tx.id)
				tx.held = append(tx.held, heldLock{o: o, prev: w})
				break
			}
			tx.stats.SpinWaits++
			if tx.waiter.Wait() > spinBound {
				core.AbortWith(core.ReasonOrecLocked)
			}
		}
	}
}

// Commit publishes the transaction (Algorithm 7 lines 66–77). Read-only
// transactions — and in S-TL2, compare-only transactions — commit
// immediately with zero clock traffic: every read and comparison was already
// validated against the start version.
//
// Writers lock their orecs, then advance the clock by one of two schemes
// (DESIGN.md §8):
//
//   - No semantic facts recorded (baseline TL2, or an S-TL2 transaction
//     whose compare-set stayed empty): plain fetch-and-add, TL2's original
//     GV1 increment. There is nothing for a concurrent committer to
//     invalidate — read-set validation is version-based and happens after
//     the increment — so the CAS retry loop would be pure contention.
//     Under k concurrent committers CAS-retry does O(k²) clock operations;
//     fetch-and-add does k.
//
//   - Semantic facts present: the compare-set was validated under a clock
//     reading, and the paper's S-TL2 requires the clock advance to certify
//     that validation (no commit may land between the validation and the
//     tick). That needs the CAS — but on CAS failure we adopt the observed
//     newer timestamp for the next round (GV5/GV6-style pass-on-failure)
//     instead of spinning the same value, and each adoption is counted
//     (Snapshot.ClockAdopts). Validation is also skipped entirely while the
//     clock still equals the start version — nothing committed, so the
//     facts established during the attempt still hold.
//
// Read-set validation is skipped only when no other writer committed since
// the snapshot.
func (tx *Tx) Commit() {
	if tx.fp != nil {
		tx.fp.Step(core.SiteCommit)
	}
	if tx.writes.Len() == 0 {
		tx.lastW = tx.startVersion
		tx.slot.Clear()
		return
	}
	tx.acquireWriteLocks()
	if tx.fp != nil {
		tx.fp.CommitDelay() // stretch the window with the orecs held
	}
	if !tx.semantic || tx.compares.Len() == 0 {
		// Contention-free scheme: one atomic add, no retries possible.
		wv := tx.g.clock.Add(1)
		if wv != tx.startVersion+1 {
			tx.validateReadSet()
		}
		tx.writeBack(wv)
		tx.finishCommit(wv)
		return
	}
	time := tx.g.clock.Load()
	for {
		if tx.startVersion != time {
			tx.validateCompareSet()
		}
		if tx.g.clock.CompareAndSwap(time, time+1) {
			if tx.startVersion != time {
				tx.validateReadSet()
			}
			tx.writeBack(time + 1)
			tx.finishCommit(time + 1)
			return
		}
		// A concurrent commit advanced the clock: adopt the newer timestamp
		// and revalidate against it rather than retrying the stale CAS.
		tx.stats.ClockAdopts++
		time = tx.g.clock.Load()
	}
}

// finishCommit records the quiescence point of a successful commit and
// retires the reader slot. Any reader pinned at or past wv loaded the clock
// after this transaction's orecs were locked (lock first, then tick), so it
// cannot have captured pre-write-back state.
func (tx *Tx) finishCommit(wv uint64) {
	tx.lastW = wv
	tx.slot.Clear()
}

// CommitPrivatize is Commit with privatization-barrier semantics (the
// TL2 orec-version fence): after write-back it drains the reader table to
// the write version, waiting out every transaction whose start version
// predates the commit — including zombies whose captured pointers lead to
// cells this commit never wrote, which orec validation alone would never
// catch. Aborts exactly like Commit, in which case no drain runs.
func (tx *Tx) CommitPrivatize() {
	tx.Commit()
	tx.g.readers.Drain(tx.lastW)
}

// PrivatizeBarrier is the drain alone, valid after a successful
// Commit/Publish on this descriptor; the sharded runtime composes it per
// touched shard.
func (tx *Tx) PrivatizeBarrier() { tx.g.readers.Drain(tx.lastW) }

// writeBack applies the write-set and releases every held orec at the new
// version wv. Increments read memory here, under the orec lock, which is the
// deferred "actual read at commit time" of Section 3.
func (tx *Tx) writeBack(wv uint64) {
	for _, e := range tx.writes.Entries() {
		if e.Kind == core.EntryInc {
			e.Var.StoreNT(e.Var.Load() + e.Val)
		} else {
			e.Var.StoreNT(e.Val)
		}
	}
	for _, h := range tx.held {
		h.o.word.Store(versionWord(wv))
	}
	tx.held = tx.held[:0]
}

// Prepare is phase 1 of the two-phase (cross-shard) commit: acquire the
// write-set's orec locks, exactly as Commit does. The orec locks are
// per-record, so — unlike NOrec's sequence lock — holding them does not
// freeze the instance: disjoint commits into this shard proceed, which is
// what keeps the single-shard path progressive while a cross-shard commit is
// in flight.
func (tx *Tx) Prepare() {
	tx.wv = 0
	if tx.writes.Len() == 0 {
		return
	}
	tx.acquireWriteLocks()
}

// Validate re-certifies this instance's snapshot for a two-phase commit.
//
// A writer participant (Prepare acquired locks) runs the certification of
// Commit — read-set validation and, with semantic facts, the CAS-certified
// clock advance — and reserves its write version in tx.wv, so Publish is
// left with only the infallible write-back. Advancing the per-shard clock
// here, before the global linearization ticket, is harmless on abort: a
// clock tick with no write-back only causes spurious revalidations.
//
// A lock-free participant (read-only on this shard, or a live multi-shard
// snapshot being re-certified after a ticket movement) re-checks its reads
// and facts against the per-shard start version; when the clock has not
// moved since the snapshot the whole check is skipped.
func (tx *Tx) Validate() {
	if len(tx.held) != 0 {
		if !tx.semantic || tx.compares.Len() == 0 {
			wv := tx.g.clock.Add(1)
			if wv != tx.startVersion+1 {
				tx.validateReadSet()
			}
			tx.wv = wv
			return
		}
		time := tx.g.clock.Load()
		for {
			if tx.startVersion != time {
				tx.validateCompareSet()
			}
			if tx.g.clock.CompareAndSwap(time, time+1) {
				if tx.startVersion != time {
					tx.validateReadSet()
				}
				tx.wv = time + 1
				return
			}
			tx.stats.ClockAdopts++
			time = tx.g.clock.Load()
		}
	}
	if tx.g.clock.Load() == tx.startVersion {
		return
	}
	tx.validateReadSet()
	if tx.semantic && tx.compares.Len() != 0 {
		tx.validateCompareSet()
	}
}

// Publish is phase 2: apply the write-set and release the orecs at the
// version Validate reserved. It must not fail; lock-free participants do
// nothing.
func (tx *Tx) Publish() {
	if len(tx.held) == 0 {
		tx.finishCommit(tx.startVersion)
		return
	}
	if tx.fp != nil {
		tx.fp.CommitDelay() // stretch the publish window with the orecs held
	}
	tx.writeBack(tx.wv)
	tx.finishCommit(tx.wv)
}

// Cleanup restores the pre-lock word of every orec still held by a failed
// commit, releasing the locks without changing versions.
func (tx *Tx) Cleanup() {
	for _, h := range tx.held {
		h.o.word.Store(h.prev)
	}
	tx.held = tx.held[:0]
	tx.slot.Clear()
}

// AttemptStats exposes the per-attempt operation counters.
func (tx *Tx) AttemptStats() *core.TxStats { return &tx.stats }

// SetNoExtend disables the phase-1 snapshot-extension optimization
// (Algorithm 7 lines 19–25), turning every stale-version cmp into an abort.
// It exists for the ablation benchmarks that quantify the optimization.
func (tx *Tx) SetNoExtend(on bool) { tx.noExtend = on }

// ReadSetLen reports the number of read-set entries (tests and diagnostics).
func (tx *Tx) ReadSetLen() int { return len(tx.reads) }

// CompareSetLen reports the number of compare-set facts (tests only).
func (tx *Tx) CompareSetLen() int { return tx.compares.Len() }

// InPhase1 reports whether the transaction has not yet performed a classical
// read, i.e. the start version may still be extended (tests only).
func (tx *Tx) InPhase1() bool { return len(tx.reads) == 0 }

// StartVersion exposes the current start version (tests only).
func (tx *Tx) StartVersion() uint64 { return tx.startVersion }
