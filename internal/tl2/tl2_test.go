package tl2

import (
	"testing"

	"semstm/internal/core"
	"semstm/internal/txtest"
)

func TestCommitVisibility(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		v := core.NewVar(1)
		tx := NewTx(g, semantic)
		if !txtest.MustCommit(tx, func() {
			if got := tx.Read(v); got != 1 {
				t.Fatalf("Read = %d", got)
			}
			tx.Write(v, 2)
		}) {
			t.Fatal("solo writer must commit")
		}
		if v.Load() != 2 {
			t.Fatalf("semantic=%v: memory = %d", semantic, v.Load())
		}
	}
}

func TestClockAdvancesPerWriterCommit(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	tx := NewTx(g, true)
	for i := 0; i < 4; i++ {
		txtest.MustCommit(tx, func() { tx.Write(v, int64(i)) })
	}
	if g.Clock() != 4 {
		t.Fatalf("clock = %d, want 4", g.Clock())
	}
	// Read-only and compare-only transactions never move the clock.
	txtest.MustCommit(tx, func() { _ = tx.Read(v) })
	txtest.MustCommit(tx, func() { _ = tx.Cmp(v, core.OpGTE, 0) })
	if g.Clock() != 4 {
		t.Fatalf("clock moved to %d on read-only commits", g.Clock())
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		v := core.NewVar(1)
		tx := NewTx(g, semantic)
		txtest.MustCommit(tx, func() {
			tx.Write(v, 7)
			if got := tx.Read(v); got != 7 {
				t.Fatalf("RAW = %d", got)
			}
			if v.Load() != 1 {
				t.Fatal("write must be buffered")
			}
		})
	}
}

func TestStaleReadAborts(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start() // start version 0
	txtest.MustCommit(t2, func() { t2.Write(v, 9) })
	if txtest.Step(t1, func() { _ = t1.Read(v) }) {
		t.Fatal("classical read of a newer version must abort")
	}
}

// TestPaperAlgorithm1 under S-TL2: the whole scenario happens in phase 1
// (T1 performs no classical read), so the compare-set revalidation extends
// the snapshot and T1 commits; baseline TL2 aborts.
func TestPaperAlgorithm1(t *testing.T) {
	run := func(semantic bool) (committed bool, z *core.Var) {
		g := NewGlobal()
		x, y := core.NewVar(5), core.NewVar(5)
		z = core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		if !txtest.Step(t1, func() {
			if !t1.Cmp(x, core.OpGT, 0) || !t1.Cmp(y, core.OpGT, 0) {
				t.Fatal("conditions must hold initially")
			}
		}) {
			return false, z
		}

		txtest.MustCommit(t2, func() {
			t2.Inc(x, 1)
			t2.Inc(y, -1)
		})

		committed = txtest.MustCommitRest(t1, func() { t1.Write(z, 1) })
		return committed, z
	}

	if ok, z := run(true); !ok || z.Load() != 1 {
		t.Errorf("S-TL2 must commit T1 (semantic facts still hold); committed=%v", ok)
	}
	if ok, _ := run(false); ok {
		t.Error("baseline TL2 must abort T1")
	}
}

// TestPhase1SnapshotExtension: a cmp that observes a version beyond the
// start version triggers compare-set revalidation and extends the snapshot.
func TestPhase1SnapshotExtension(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(5), core.NewVar(5)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	if sv := t1.StartVersion(); sv != 0 {
		t.Fatalf("start version = %d", sv)
	}
	_ = t1.Cmp(x, core.OpGT, 0)

	txtest.MustCommit(t2, func() { t2.Write(y, 6) }) // clock -> 1

	// Cmp on the freshly written y: version 1 > start version 0, but we are
	// in phase 1 and the compare-set (x>0) still holds, so the snapshot is
	// extended instead of aborting.
	if !txtest.Step(t1, func() {
		if !t1.Cmp(y, core.OpGT, 0) {
			t.Fatal("y > 0 must hold")
		}
	}) {
		t.Fatal("phase-1 cmp must survive via snapshot extension")
	}
	if sv := t1.StartVersion(); sv != 1 {
		t.Fatalf("start version = %d, want extended to 1", sv)
	}
	if !t1.InPhase1() {
		t.Fatal("no classical read was performed; still phase 1")
	}
	if !txtest.MustCommitRest(t1, func() {}) {
		t.Fatal("compare-only transaction must commit")
	}
}

// TestPhase1ExtensionFailsWhenFactBroken: the extension path must abort if
// an earlier fact no longer holds.
func TestPhase1ExtensionFailsWhenFactBroken(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(5), core.NewVar(5)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	_ = t1.Cmp(x, core.OpGT, 0)

	txtest.MustCommit(t2, func() {
		t2.Write(x, -1) // breaks the recorded fact
		t2.Write(y, 6)  // forces version bump on y too
	})

	if txtest.Step(t1, func() { _ = t1.Cmp(y, core.OpGT, 0) }) {
		t.Fatal("revalidation during extension must abort: x > 0 broken")
	}
}

// TestPhase2CmpIsConservative: after the first classical read, a cmp on a
// variable with a newer version aborts even if the fact would hold.
func TestPhase2CmpIsConservative(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(5), core.NewVar(5)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	_ = t1.Read(x) // leaves phase 1
	if t1.InPhase1() {
		t.Fatal("should be phase 2")
	}

	txtest.MustCommit(t2, func() { t2.Write(y, 6) })

	if txtest.Step(t1, func() { _ = t1.Cmp(y, core.OpGT, 0) }) {
		t.Fatal("phase-2 cmp of a newer version must abort (start version frozen)")
	}
}

// TestPaperAlgorithm8 under S-TL2: T1's read of y follows T2's commit, and
// the frozen start version makes the read abort — S-TL2 is more conservative
// than S-NOrec on this history (the history itself is opaque; aborting is
// always safe).
func TestPaperAlgorithm8(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(0), core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	if !t1.Cmp(x, core.OpGTE, 0) {
		t.Fatal("x >= 0 must hold")
	}
	txtest.MustCommit(t2, func() {
		t2.Write(x, 1)
		t2.Write(y, 1)
	})
	if txtest.Step(t1, func() { _ = t1.Read(y) }) {
		t.Fatal("S-TL2 aborts the read: version > frozen start version")
	}
}

// TestPaperAlgorithm9 under S-TL2: the phase-2 cmp after an invalidating
// commit must abort (non-opaque otherwise).
func TestPaperAlgorithm9(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(0), core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	_ = t1.Read(y)
	txtest.MustCommit(t2, func() {
		t2.Write(x, 1)
		t2.Write(y, 1)
	})
	if txtest.Step(t1, func() { _ = t1.Cmp(x, core.OpGTE, 1) }) {
		t.Fatal("S-TL2 must abort the phase-2 cmp")
	}
}

// TestCmpVarsSurvivesDualUpdate: the queue head/tail scenario under S-TL2 —
// both cursors move, the two-address fact holds, phase-1 extension lets the
// transaction commit; baseline TL2 aborts on the pinned reads.
func TestCmpVarsSurvivesDualUpdate(t *testing.T) {
	run := func(semantic bool) bool {
		g := NewGlobal()
		head, tail, z := core.NewVar(2), core.NewVar(5), core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		var empty bool
		if !txtest.Step(t1, func() { empty = t1.CmpVars(head, core.OpEQ, tail) }) {
			return false
		}
		if empty {
			t.Fatal("queue should be non-empty")
		}
		txtest.MustCommit(t2, func() {
			t2.Inc(head, 1)
			t2.Inc(tail, 1)
		})
		return txtest.MustCommitRest(t1, func() { t1.Write(z, 1) })
	}
	if !run(true) {
		t.Error("S-TL2 must commit: head != tail still holds")
	}
	if run(false) {
		t.Error("baseline TL2 must abort")
	}
}

// TestCmpVarsPhase1Extension: a two-address comparison touching freshly
// written variables extends the snapshot in phase 1.
func TestCmpVarsPhase1Extension(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(1), core.NewVar(2)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	txtest.MustCommit(t2, func() {
		t2.Write(x, 10)
		t2.Write(y, 20)
	})
	if !txtest.Step(t1, func() {
		if !t1.CmpVars(x, core.OpLT, y) {
			t.Fatal("10 < 20")
		}
	}) {
		t.Fatal("phase-1 two-address cmp must survive via extension")
	}
	if t1.StartVersion() != 1 {
		t.Fatalf("start version = %d, want extended to 1", t1.StartVersion())
	}
	if !txtest.MustCommitRest(t1, func() {}) {
		t.Fatal("compare-only transaction must commit")
	}
}

func TestIncConcurrencyWin(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(100)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	t1.Inc(v, 1)
	txtest.MustCommit(t2, func() { t2.Write(v, 500) })
	if txtest.Aborted(func() { t1.Commit() }) {
		t1.Cleanup()
		t.Fatal("S-TL2 inc-only transaction must survive a concurrent write")
	}
	if v.Load() != 501 {
		t.Fatalf("final = %d, want 501", v.Load())
	}
}

func TestIncBaselineAborts(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(100)
	t1 := NewTx(g, false)
	t2 := NewTx(g, false)

	t1.Start()
	t1.Inc(v, 1)
	txtest.MustCommit(t2, func() { t2.Write(v, 500) })
	if !txtest.Aborted(func() { t1.Commit() }) {
		t.Fatal("baseline TL2 must abort the read+write expansion")
	}
	t1.Cleanup()
}

// TestWriteSkewSecondCommitterAborts also exercises Cleanup: the aborted
// committer holds orec locks when read-set validation fails, and must
// release them so later transactions can proceed.
func TestWriteSkewSecondCommitterAborts(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		x, y := core.NewVar(0), core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		t2.Start()
		_ = t1.Read(x)
		_ = t2.Read(y)
		t1.Write(y, 1)
		t2.Write(x, 1)

		if txtest.Aborted(func() { t1.Commit() }) {
			t.Fatal("first committer must succeed")
		}
		if !txtest.Aborted(func() { t2.Commit() }) {
			t.Fatalf("semantic=%v: write skew must abort second committer", semantic)
		}
		t2.Cleanup()

		// The aborted commit must have released its locks: a fresh
		// transaction can write both variables.
		t3 := NewTx(g, semantic)
		if !txtest.MustCommit(t3, func() {
			t3.Write(x, 7)
			t3.Write(y, 7)
		}) {
			t.Fatal("locks leaked by aborted commit")
		}
		if x.Load() != 7 || y.Load() != 7 {
			t.Fatal("post-cleanup writes lost")
		}
	}
}

func TestCompareSetSeparateFromReadSet(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(1), core.NewVar(2)
	tx := NewTx(g, true)
	txtest.MustCommit(tx, func() {
		_ = tx.Cmp(x, core.OpGT, 0)
		_ = tx.Read(y)
		if tx.CompareSetLen() != 1 || tx.ReadSetLen() != 1 {
			t.Fatalf("compare-set=%d read-set=%d, want 1/1",
				tx.CompareSetLen(), tx.ReadSetLen())
		}
	})
}

func TestDelegationStats(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(5)
	base := NewTx(g, false)
	txtest.MustCommit(base, func() {
		_ = base.Cmp(v, core.OpGT, 0)
		base.Inc(v, 1)
	})
	bs := base.AttemptStats()
	if bs.Compares != 0 || bs.Incs != 0 || bs.Reads != 2 || bs.Writes != 1 {
		t.Fatalf("baseline delegation counts: %+v", bs)
	}
}

// TestCommitSkipsReadValidationWhenQuiescent: classic TL2 fast path — if no
// other writer committed since the snapshot, read-set validation is skipped
// (and must still be correct).
func TestCommitSkipsReadValidationWhenQuiescent(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(0), core.NewVar(0)
	tx := NewTx(g, true)
	if !txtest.MustCommit(tx, func() {
		_ = tx.Read(x)
		tx.Write(y, 1)
	}) {
		t.Fatal("quiescent read+write must commit")
	}
	if y.Load() != 1 {
		t.Fatal("write lost")
	}
}

func TestOrecHashStableAndInRange(t *testing.T) {
	g := NewGlobal()
	vs := core.NewVars(1000, 0)
	for _, v := range vs {
		i := g.orecIndexFor(v)
		if i < 0 || i >= len(g.orecs) {
			t.Fatalf("orec index %d out of range", i)
		}
		if j := g.orecIndexFor(v); j != i {
			t.Fatal("orec hash not stable")
		}
	}
}

func TestVersionWordEncoding(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 1 << 40} {
		w := versionWord(v)
		if locked(w) {
			t.Fatalf("versionWord(%d) reads as locked", v)
		}
		if version(w) != v {
			t.Fatalf("version(versionWord(%d)) = %d", v, version(w))
		}
		if !locked(w | 1) {
			t.Fatal("lock bit not detected")
		}
		if version(w|1) != v {
			t.Fatal("version not preserved under lock bit")
		}
	}
}
