package tl2

import "semstm/internal/core"

// engine adapts a TL2 Global (clock + orec table) to the core.Engine
// registry interface; the semantic flag selects S-TL2 descriptors.
type engine struct {
	g        *Global
	semantic bool
}

func (e engine) NewTx(cfg core.TxConfig) core.TxImpl {
	tx := NewTx(e.g, e.semantic)
	tx.SetNoExtend(cfg.NoExtend)
	return tx
}

func (e engine) Quiescent() error { return e.g.Quiescent() }

// ClockValue exposes the engine instance's version clock — the per-shard
// "clock" probe sharded runtimes use to assert that single-shard
// transactions never move another shard's commit metadata.
func (e engine) ClockValue() uint64 { return e.g.Clock() }

func init() {
	core.RegisterEngine(core.EngineDesc{
		ID:           core.EngineTL2,
		Name:         "TL2",
		DisplayOrder: 2,
		TwoPhase:     true,
		New:          func() core.Engine { return engine{g: NewGlobal()} },
	})
	core.RegisterEngine(core.EngineDesc{
		ID:           core.EngineSTL2,
		Name:         "S-TL2",
		DisplayOrder: 3,
		Semantic:     true,
		// S-TL2 records each evaluated clause of CmpAny as its own fact
		// (per-orec versioning has no composed-fact representation), so
		// ComposedFacts stays false.
		TwoPhase: true,
		New:      func() core.Engine { return engine{g: NewGlobal(), semantic: true} },
	})
}
