package tl2

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"semstm/internal/core"
	"semstm/internal/txtest"
)

// TestLayoutPadding pins the false-sharing contract of orec.go: one orec per
// cache line, and the clock and txid hot words on lines of their own.
func TestLayoutPadding(t *testing.T) {
	if s := unsafe.Sizeof(orec{}); s != core.CacheLine {
		t.Fatalf("sizeof(orec) = %d, want %d", s, core.CacheLine)
	}
	var g Global
	clockOff := unsafe.Offsetof(g.clock)
	txidOff := unsafe.Offsetof(g.txid)
	orecsOff := unsafe.Offsetof(g.orecs)
	if txidOff-clockOff < core.CacheLine {
		t.Fatalf("clock (+%d) and txid (+%d) share a cache line", clockOff, txidOff)
	}
	if orecsOff-txidOff < core.CacheLine {
		t.Fatalf("txid (+%d) and orecs (+%d) share a cache line", txidOff, orecsOff)
	}
}

// TestFetchAddCommitPath checks the contention-free clock scheme: commits
// that recorded no semantic facts advance the clock by exactly one each and
// never take the adoption branch, whether the descriptor is baseline TL2 or
// an S-TL2 descriptor whose compare-set stayed empty.
func TestFetchAddCommitPath(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		v := core.NewVar(0)
		tx := NewTx(g, semantic)
		for i := 0; i < 8; i++ {
			if !txtest.MustCommit(tx, func() { tx.Write(v, int64(i)) }) {
				t.Fatal("solo writer must commit")
			}
		}
		if g.Clock() != 8 {
			t.Fatalf("semantic=%v: clock = %d, want 8", semantic, g.Clock())
		}
		if a := tx.AttemptStats().ClockAdopts; a != 0 {
			t.Fatalf("semantic=%v: solo commits adopted %d clock values", semantic, a)
		}
	}
}

// TestSemanticCommitRevalidatesOnMovedClock drives the CAS-certified path:
// when the clock moved past the start version, commit must revalidate the
// compare-set before ticking the clock — aborting when a concurrent commit
// broke a fact, committing when the fact still holds.
func TestSemanticCommitRevalidatesOnMovedClock(t *testing.T) {
	// Broken fact: T1 holds x==0, T2 makes x nonzero, T1's commit must abort.
	g := NewGlobal()
	x, y, z := core.NewVar(0), core.NewVar(0), core.NewVar(0)
	t1, t2 := NewTx(g, true), NewTx(g, true)
	t1.Start()
	if !txtest.Step(t1, func() {
		if !t1.Cmp(x, core.OpEQ, 0) {
			t.Fatal("x==0 must hold")
		}
		t1.Write(y, 1)
	}) {
		t.Fatal("facts step must survive")
	}
	txtest.MustCommit(t2, func() { t2.Write(x, 5) })
	if txtest.MustCommitRest(t1, func() {}) {
		t.Fatal("commit with a broken fact must abort")
	}
	if y.Load() != 0 {
		t.Fatal("aborted writer leaked its write")
	}

	// Surviving fact: an unrelated commit moves the clock; T1 revalidates
	// and commits.
	t1.Start()
	if !txtest.Step(t1, func() {
		if t1.Cmp(x, core.OpEQ, 5) != true {
			t.Fatal("x==5 must hold")
		}
		t1.Write(y, 2)
	}) {
		t.Fatal("facts step must survive")
	}
	txtest.MustCommit(t2, func() { t2.Write(z, 9) })
	if !txtest.MustCommitRest(t1, func() {}) {
		t.Fatal("commit with an intact fact must survive a moved clock")
	}
	if y.Load() != 2 {
		t.Fatalf("committed write lost: y = %d", y.Load())
	}
	if v := tx1Validations(t1); v == 0 {
		t.Fatal("moved-clock commit must count a validation pass")
	}
}

func tx1Validations(tx *Tx) uint64 { return tx.AttemptStats().Validations }

// TestClockAdoptionUnderContention hammers the CAS-certified commit path
// from several goroutines and checks the system-wide invariant the adoption
// scheme must preserve: every writer commit advances the clock by exactly
// one, no matter how many CAS failures were resolved by adopting a newer
// timestamp. Adoption counts are workload- and scheduler-dependent, so they
// are reported, not asserted.
func TestClockAdoptionUnderContention(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const workers, txPerWorker = 4, 200
	g := NewGlobal()
	vars := make([]*core.Var, workers)
	for i := range vars {
		vars[i] = core.NewVar(1)
	}
	var commits, adopts atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := NewTx(g, true)
			mine := vars[w]
			for i := 0; i < txPerWorker; i++ {
				for { // retry aborts
					if txtest.MustCommit(tx, func() {
						// A fact on a neighbour plus a write keeps the
						// compare-set non-empty, forcing the CAS path.
						_ = tx.Cmp(vars[(w+1)%workers], core.OpGTE, 1)
						tx.Write(mine, tx.Read(mine)+1)
					}) {
						commits.Add(1)
						break
					}
				}
				adopts.Store(tx.AttemptStats().ClockAdopts)
			}
		}(w)
	}
	wg.Wait()
	if got, want := g.Clock(), commits.Load(); got != want {
		t.Fatalf("clock = %d after %d writer commits", got, want)
	}
	for i := range vars {
		if vars[i].Load() != 1+txPerWorker {
			t.Fatalf("var %d = %d, want %d", i, vars[i].Load(), 1+txPerWorker)
		}
	}
	t.Logf("clock adoptions observed (last worker sample): %d", adopts.Load())
}
