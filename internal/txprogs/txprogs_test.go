package txprogs

import (
	"sync"
	"testing"
)

func TestModesCompile(t *testing.T) {
	for _, src := range []string{HashtableSrc, VacationSrc, CounterSrc} {
		for _, m := range Modes() {
			if _, _, err := Build(src, m); err != nil {
				t.Fatalf("%v: %v", m, err)
			}
		}
	}
}

func TestModeNames(t *testing.T) {
	names := map[Mode]string{
		PlainGCC:    "NOrec",
		ModifiedGCC: "NOrec Modified-GCC",
		SemanticGCC: "S-NOrec",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d: %q, want %q", m, m.String(), want)
		}
	}
}

// TestHashtablePassStats: with pattern detection on, the probe conditionals
// become _ITM_S1R calls and their feeding reads disappear.
func TestHashtablePassStats(t *testing.T) {
	_, stPlain, err := Compile(HashtableSrc, PlainGCC)
	if err != nil {
		t.Fatal(err)
	}
	if stPlain.S1R != 0 || stPlain.SW != 0 || stPlain.RemovedReads != 0 {
		t.Fatalf("plain mode must not transform: %+v", stPlain)
	}
	_, st, err := Compile(HashtableSrc, ModifiedGCC)
	if err != nil {
		t.Fatal(err)
	}
	if st.S1R < 8 {
		t.Fatalf("expected many S1R conversions in the probe loops: %+v", st)
	}
	if st.RemovedReads == 0 {
		t.Fatalf("expected dead probe reads removed: %+v", st)
	}
}

// TestVacationPassStats: the reservation kernel yields both conditional and
// increment conversions.
func TestVacationPassStats(t *testing.T) {
	_, st, err := Compile(VacationSrc, SemanticGCC)
	if err != nil {
		t.Fatal(err)
	}
	if st.S1R < 3 {
		t.Fatalf("expected availability/price/sanity conditionals: %+v", st)
	}
	if st.SW != 1 {
		t.Fatalf("expected exactly the booking decrement as SW: %+v", st)
	}
}

// TestCounterPassStats: x++ is one SW; the bounded variant adds one S1R.
func TestCounterPassStats(t *testing.T) {
	_, st, err := Compile(CounterSrc, SemanticGCC)
	if err != nil {
		t.Fatal(err)
	}
	if st.SW != 2 {
		t.Fatalf("SW = %d, want 2 (bump and bounded_bump)", st.SW)
	}
	if st.S2R != 1 {
		t.Fatalf("S2R = %d, want 1 (counter < limit compares two shared addresses)", st.S2R)
	}
}

// TestHashtableEquivalenceAcrossModes drives the compiled hashtable
// concurrently under each mode and checks structural sanity plus sequential
// behaviour: after inserting a known key, contains finds it; after removing,
// it does not.
func TestHashtableBehaviour(t *testing.T) {
	for _, m := range Modes() {
		vm, _, err := Build(HashtableSrc, m)
		if err != nil {
			t.Fatal(err)
		}
		th := vm.NewThread(1)
		mustCall := func(fn string, args ...int64) int64 {
			v, err := th.Call(fn, args...)
			if err != nil {
				t.Fatalf("%v: %s: %v", m, fn, err)
			}
			return v
		}
		if mustCall("contains", 7) != 0 {
			t.Fatalf("%v: empty table contains 7", m)
		}
		if mustCall("insert", 7) != 1 {
			t.Fatalf("%v: insert failed", m)
		}
		if mustCall("insert", 7) != -1 {
			t.Fatalf("%v: duplicate insert not detected", m)
		}
		if mustCall("contains", 7) != 1 {
			t.Fatalf("%v: inserted key missing", m)
		}
		if mustCall("remove", 7) != 1 {
			t.Fatalf("%v: remove failed", m)
		}
		if mustCall("contains", 7) != 0 {
			t.Fatalf("%v: removed key still present", m)
		}
		// Collision chain: 5 and 5+1024 hash to the same slot... the key
		// space is mod 1024, so use adjacent-slot collisions instead.
		if mustCall("insert", 100) != 1 || mustCall("insert", 101) != 1 {
			t.Fatalf("%v: chain inserts failed", m)
		}
		if mustCall("contains", 100) != 1 || mustCall("contains", 101) != 1 {
			t.Fatalf("%v: chain lookups failed", m)
		}
	}
}

func TestHashtableConcurrent(t *testing.T) {
	for _, m := range Modes() {
		vm, _, err := Build(HashtableSrc, m)
		if err != nil {
			t.Fatal(err)
		}
		const workers, txPerWorker = 4, 30
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				th := vm.NewThread(seed)
				for i := 0; i < txPerWorker; i++ {
					if _, err := th.Call("txn10"); err != nil {
						errs <- err
						return
					}
				}
			}(int64(w) + 1)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%v: %v", m, err)
		}
		sn := vm.Runtime().Stats()
		if sn.Commits == 0 {
			t.Fatalf("%v: nothing committed", m)
		}
		if m == SemanticGCC && sn.Compares == 0 {
			t.Fatalf("%v: semantic mode recorded no compares: %+v", m, sn)
		}
		if m != SemanticGCC && sn.Compares != 0 {
			t.Fatalf("%v: non-semantic runtime recorded compares: %+v", m, sn)
		}
	}
}

// TestVacationConservation: capacity is only consumed by successful
// reservations and can never go negative.
func TestVacationConservation(t *testing.T) {
	for _, m := range Modes() {
		vm, _, err := Build(VacationSrc, m)
		if err != nil {
			t.Fatal(err)
		}
		var totalCap int64
		for i := int64(0); i < 256; i++ {
			cap := 2 + i%4
			if err := vm.SetShared("numfree", i, cap); err != nil {
				t.Fatal(err)
			}
			if err := vm.SetShared("price", i, 100+i); err != nil {
				t.Fatal(err)
			}
			totalCap += cap
		}
		const workers, sessions = 4, 60
		sanityFailures := make(chan int64, workers)
		booked := make(chan int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				th := vm.NewThread(seed)
				var mine, bad int64
				for i := 0; i < sessions; i++ {
					v, err := th.Call("client", int64(i%100))
					if err != nil {
						t.Error(err)
						break
					}
					if v == 1 {
						mine++
					}
					if v == -1 {
						bad++
					}
				}
				booked <- mine
				sanityFailures <- bad
			}(int64(w) + 1)
		}
		wg.Wait()
		close(booked)
		close(sanityFailures)
		var totalBooked, totalBad int64
		for v := range booked {
			totalBooked += v
		}
		for v := range sanityFailures {
			totalBad += v
		}
		if totalBad != 0 {
			t.Fatalf("%v: %d sanity failures (negative capacity observed)", m, totalBad)
		}
		var left int64
		for i := int64(0); i < 256; i++ {
			v, _ := vm.SharedNT("numfree", i)
			if v < 0 {
				t.Fatalf("%v: negative capacity at %d", m, i)
			}
			left += v
		}
		if left+totalBooked != totalCap {
			t.Fatalf("%v: capacity leak: left %d + booked %d != %d", m, left, totalBooked, totalCap)
		}
	}
}
