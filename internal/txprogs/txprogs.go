// Package txprogs holds the canonical TxC programs of the GCC-based
// evaluation (Figure 2 of the paper) and helpers to build them into runnable
// VMs under the three compiler/runtime configurations the paper compares.
package txprogs

import (
	"fmt"

	"semstm/internal/gimple"
	"semstm/internal/tmpass"
	"semstm/internal/txlang"
	"semstm/internal/txvm"
	"semstm/stm"
)

// Mode is one compiler/runtime configuration of Section 7.2.
type Mode int

const (
	// PlainGCC: classical instrumentation only (no pattern detection, no
	// tm_optimize), NOrec runtime — the paper's "NOrec" GCC curve.
	PlainGCC Mode = iota
	// ModifiedGCC: pattern detection + tm_optimize, but the semantic ABI
	// calls delegate to classical barriers inside a NOrec runtime — the
	// paper's "NOrec Modified-GCC" curve (fewer TM calls, same semantics).
	ModifiedGCC
	// SemanticGCC: pattern detection + tm_optimize on an S-NOrec runtime —
	// the paper's "S-NOrec" GCC curve.
	SemanticGCC
)

// String names the mode as the paper's legends do.
func (m Mode) String() string {
	switch m {
	case PlainGCC:
		return "NOrec"
	case ModifiedGCC:
		return "NOrec Modified-GCC"
	case SemanticGCC:
		return "S-NOrec"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists the three configurations in display order.
func Modes() []Mode { return []Mode{PlainGCC, ModifiedGCC, SemanticGCC} }

// Compile compiles src and runs the passes for the mode, returning the
// program and the pass statistics.
func Compile(src string, mode Mode) (*gimple.Program, tmpass.Stats, error) {
	prog, err := txlang.Compile(src)
	if err != nil {
		return nil, tmpass.Stats{}, err
	}
	opts := tmpass.Options{
		DetectPatterns: mode != PlainGCC,
		Optimize:       mode != PlainGCC,
	}
	st, err := tmpass.Run(prog, opts)
	if err != nil {
		return nil, st, err
	}
	return prog, st, nil
}

// Build compiles src for the mode and wires it to the matching runtime.
func Build(src string, mode Mode) (*txvm.VM, tmpass.Stats, error) {
	prog, st, err := Compile(src, mode)
	if err != nil {
		return nil, st, err
	}
	algo := stm.NOrec
	if mode == SemanticGCC {
		algo = stm.SNOrec
	}
	return txvm.New(prog, stm.New(algo)), st, nil
}

// HashtableSrc is the open-addressing hash table of Algorithm 2 written in
// TxC: cell states are 0=FREE, 1=IN-USE, 2=REMOVED; every probe step is a
// conditional over transactional reads that the pattern detection turns into
// _ITM_S1R calls. txn10 is the Figure 2a workload: ten set/get operations
// per transaction over a half-size key space.
const HashtableSrc = `
// Open-addressing hashtable with tombstones and in-place entry refreshes
// (Algorithm 2). states: 0 = FREE, -1 = REMOVED, >= 1 = live entry version.
shared states[1024];
shared set[1024];

func contains(value) {
	var index = value % 1024;
	var found = 0;
	var steps = 0;
	atomic {
		while (steps < 1024 && states[index] != 0 && (states[index] == -1 || set[index] != value)) {
			index = (index + 1) % 1024;
			steps = steps + 1;
		}
		if (states[index] > 0) {
			found = 1;
		}
	}
	return found;
}

func insert(value) {
	var index = value % 1024;
	var reuse = -1;
	var r = 0;
	atomic {
		var done = 0;
		var steps = 0;
		while (done == 0 && steps < 1024) {
			if (states[index] == 0) {
				done = 1;
			} else {
				if (states[index] == -1) {
					if (reuse < 0) {
						reuse = index;
					}
					index = (index + 1) % 1024;
				} else {
					if (set[index] == value) {
						done = 1;
						r = -1;
					} else {
						index = (index + 1) % 1024;
					}
				}
			}
			steps = steps + 1;
		}
		if (r == 0 && done == 1) {
			if (reuse >= 0) {
				index = reuse;
			}
			states[index] = 1;
			set[index] = value;
			r = 1;
		}
	}
	return r;
}

func remove(value) {
	var index = value % 1024;
	var r = 0;
	var steps = 0;
	atomic {
		while (steps < 1024 && states[index] != 0 && (states[index] == -1 || set[index] != value)) {
			index = (index + 1) % 1024;
			steps = steps + 1;
		}
		if (states[index] > 0) {
			states[index] = -1;
			r = 1;
		}
	}
	return r;
}

// update refreshes a live entry in place: the version bump is detected as
// _ITM_SW, and probers passing over the cell keep their facts.
func update(value) {
	var index = value % 1024;
	var r = 0;
	var steps = 0;
	atomic {
		while (steps < 1024 && states[index] != 0 && (states[index] == -1 || set[index] != value)) {
			index = (index + 1) % 1024;
			steps = steps + 1;
		}
		if (states[index] > 0) {
			states[index] = states[index] + 1;
			r = 1;
		}
	}
	return r;
}

// txn10 is one benchmark transaction: 10 random table operations (half
// lookups, a third refreshes, the rest insert/remove churn).
func txn10() {
	atomic {
		var i = 0;
		while (i < 10) {
			var v = rand(512) + 1;
			var p = rand(10);
			if (p < 5) {
				contains(v);
			} else {
				if (p < 8) {
					update(v);
				} else {
					if (insert(v) == 0) {
						remove(v);
					}
				}
			}
			i = i + 1;
		}
	}
	return;
}
`

// VacationSrc is the reservation kernel of Algorithm 4 written in TxC: the
// availability and price checks become _ITM_S1R, the booking decrement
// becomes _ITM_SW, and the post-booking sanity check promotes it — the
// Figure 2c workload.
const VacationSrc = `
// Vacation-style reservations over flat resource tables (Algorithm 4).
shared price[256];
shared numfree[256];

func reserve() {
	var r = 0;
	atomic {
		var maxp = -1;
		var maxi = -1;
		var q = 0;
		while (q < 4) {
			var id = rand(256);
			if (numfree[id] > 0) {
				if (price[id] > maxp) {
					maxp = price[id];
					maxi = id;
				}
			}
			q = q + 1;
		}
		if (maxi >= 0) {
			numfree[maxi] = numfree[maxi] - 1;
			if (numfree[maxi] < 0) {
				r = -1;
			} else {
				r = 1;
			}
		}
	}
	return r;
}

func update() {
	atomic {
		var q = 0;
		while (q < 4) {
			var id = rand(256);
			price[id] = rand(450) + 50;
			q = q + 1;
		}
	}
	return;
}

// client runs one session: p in [0,100) selects the profile.
func client(p) {
	if (p < 90) {
		return reserve();
	}
	update();
	return 0;
}
`

// QueueSrc is the array-based queue of Algorithm 3 written literally in
// TxC: the emptiness test `head != tail` is an address–address conditional
// (detected as _ITM_S2R) and the cursor advances are increments (_ITM_SW),
// re-enabling enqueue/dequeue concurrency. Capacity discipline is the
// caller's job, as in the paper's pseudocode.
const QueueSrc = `
// Algorithm 3: array-based queue.
shared qdata[64];
shared head;
shared tail;

func enqueue(v) {
	atomic {
		qdata[tail % 64] = v;
		tail = tail + 1;
	}
	return 0;
}

func dequeue() {
	var item = -1;
	atomic {
		if (head != tail) {
			item = qdata[head % 64];
			head = head + 1;
		}
	}
	return item;
}
`

// BankSrc is the money-transfer kernel in TxC: the overdraft check becomes
// _ITM_S1R and the two balance updates become _ITM_SW.
const BankSrc = `
shared accounts[128];

func transfer(from, to, amt) {
	var r = 0;
	atomic {
		if (accounts[from] >= amt) {
			accounts[from] = accounts[from] - amt;
			accounts[to] = accounts[to] + amt;
			r = 1;
		}
	}
	return r;
}

// total sums all balances in one transaction (a long reader).
func total() {
	var s = 0;
	var i = 0;
	atomic {
		while (i < 128) {
			s = s + accounts[i];
			i = i + 1;
		}
	}
	return s;
}
`

// CounterSrc is a minimal increment kernel used by quick tests and the tmc
// example: the classic x++ pattern that becomes a single _ITM_SW.
const CounterSrc = `
shared counter;
shared limit;

func bump(n) {
	var i = 0;
	atomic {
		while (i < n) {
			counter = counter + 1;
			i = i + 1;
		}
	}
	return;
}

func bounded_bump() {
	var did = 0;
	atomic {
		if (counter < limit) {
			counter = counter + 1;
			did = 1;
		}
	}
	return did;
}
`
