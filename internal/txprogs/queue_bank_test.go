package txprogs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestQueuePassStats(t *testing.T) {
	_, st, err := Compile(QueueSrc, SemanticGCC)
	if err != nil {
		t.Fatal(err)
	}
	if st.S2R != 1 {
		t.Fatalf("S2R = %d, want 1 (head != tail)", st.S2R)
	}
	if st.SW != 2 {
		t.Fatalf("SW = %d, want 2 (head++ and tail++)", st.SW)
	}
}

func TestQueueFIFOAcrossModes(t *testing.T) {
	for _, m := range Modes() {
		vm, _, err := Build(QueueSrc, m)
		if err != nil {
			t.Fatal(err)
		}
		th := vm.NewThread(1)
		for i := int64(10); i < 15; i++ {
			if _, err := th.Call("enqueue", i); err != nil {
				t.Fatal(err)
			}
		}
		for i := int64(10); i < 15; i++ {
			v, err := th.Call("dequeue")
			if err != nil {
				t.Fatal(err)
			}
			if v != i {
				t.Fatalf("%v: dequeue = %d, want %d", m, v, i)
			}
		}
		if v, _ := th.Call("dequeue"); v != -1 {
			t.Fatalf("%v: empty dequeue = %d", m, v)
		}
	}
}

// TestQueuePipelineAcrossModes pipes items through the compiled queue with
// one producer and one consumer; every value must arrive exactly once and in
// order.
func TestQueuePipelineAcrossModes(t *testing.T) {
	const items = 300
	for _, m := range Modes() {
		vm, _, err := Build(QueueSrc, m)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var consumed atomic.Int64
		go func() {
			defer wg.Done()
			th := vm.NewThread(1)
			for i := int64(1); i <= items; i++ {
				// Capacity discipline is the caller's job (as in the
				// paper's Algorithm 3): keep fewer than 64 in flight.
				for i-consumed.Load() >= 60 {
					runtime.Gosched()
				}
				if _, err := th.Call("enqueue", i); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		var got []int64
		go func() {
			defer wg.Done()
			th := vm.NewThread(2)
			for len(got) < items {
				v, err := th.Call("dequeue")
				if err != nil {
					t.Error(err)
					return
				}
				if v >= 0 {
					got = append(got, v)
					consumed.Add(1)
				}
			}
		}()
		wg.Wait()
		if t.Failed() {
			return
		}
		for i, v := range got {
			if v != int64(i+1) {
				t.Fatalf("%v: item %d = %d (order broken)", m, i, v)
			}
		}
	}
}

func TestBankPassStats(t *testing.T) {
	_, st, err := Compile(BankSrc, SemanticGCC)
	if err != nil {
		t.Fatal(err)
	}
	if st.S1R != 1 {
		t.Fatalf("S1R = %d, want 1 (overdraft check)", st.S1R)
	}
	if st.SW != 2 {
		t.Fatalf("SW = %d, want 2 (debit and credit)", st.SW)
	}
}

// TestBankConservationAcrossModes: concurrent compiled transfers conserve
// the total under all three compiler/runtime configurations.
func TestBankConservationAcrossModes(t *testing.T) {
	const accounts, initial = 128, 1000
	for _, m := range Modes() {
		vm, _, err := Build(BankSrc, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < accounts; i++ {
			if err := vm.SetShared("accounts", i, initial); err != nil {
				t.Fatal(err)
			}
		}
		const workers, per = 4, 150
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				th := vm.NewThread(seed)
				r := seed
				next := func(n int64) int64 {
					r = r*6364136223846793005 + 1442695040888963407
					v := (r >> 33) % n
					if v < 0 {
						v += n
					}
					return v
				}
				for i := 0; i < per; i++ {
					if _, err := th.Call("transfer", next(accounts), next(accounts), 1+next(40)); err != nil {
						t.Error(err)
						return
					}
				}
			}(int64(w) + 1)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		// The long-reader total must see a conserved sum.
		th := vm.NewThread(99)
		sum, err := th.Call("total")
		if err != nil {
			t.Fatal(err)
		}
		if sum != accounts*initial {
			t.Fatalf("%v: total = %d, want %d", m, sum, accounts*initial)
		}
		var negative bool
		for i := int64(0); i < accounts; i++ {
			if v, _ := vm.SharedNT("accounts", i); v < 0 {
				negative = true
			}
		}
		if negative {
			t.Fatalf("%v: overdraft", m)
		}
	}
}
