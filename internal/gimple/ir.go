// Package gimple defines a GIMPLE-like intermediate representation: a
// language-independent, three-operand instruction form over single-
// assignment temporaries, the level at which GCC's tm_mark pass instruments
// transactional code. The paper's compiler work — detecting cmp/inc patterns
// and deleting never-live transactional reads — operates on this IR (see
// package tmpass); package txvm executes it against the STM runtime.
package gimple

import (
	"fmt"
	"strings"

	"semstm/internal/core"
)

// Opcode enumerates IR instructions.
type Opcode uint8

const (
	// OpConst: Dst = Imm.
	OpConst Opcode = iota
	// OpMov: Dst = A.
	OpMov
	// Arithmetic: Dst = A <op> B.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	// OpCmp: Dst = (A <Cond> B), 0 or 1.
	OpCmp
	// OpNot: Dst = !A (logical).
	OpNot
	// OpLoad: Dst = shared[A] (non-transactional global access; A holds the
	// address). Inside atomic regions tm_mark rewrites it to OpTMRead.
	OpLoad
	// OpStore: shared[A] = B.
	OpStore
	// OpTMRead: Dst = TM_READ(shared[A]).
	OpTMRead
	// OpTMWrite: TM_WRITE(shared[A], B).
	OpTMWrite
	// OpTMCmp: Dst = _ITM_S1R: semantic conditional shared[A] <Cond> B,
	// where B is a value operand (temp, local, or constant via a temp).
	OpTMCmp
	// OpTMCmp2: Dst = _ITM_S2R: semantic conditional shared[A] <Cond>
	// shared[B] (address–address form).
	OpTMCmp2
	// OpTMInc: _ITM_SW: shared[A] += B.
	OpTMInc
	// OpTMCmpSum: Dst = _ITM_SE: semantic arithmetic conditional
	// (shared[Args[0]] + shared[Args[1]] + ...) <Cond> B, the complex-
	// expression extension of the paper's technical report.
	OpTMCmpSum
	// OpBr: if A != 0 goto Then else goto Else (block indices).
	OpBr
	// OpJmp: goto Then.
	OpJmp
	// OpCall: Dst = call Fn(Args...).
	OpCall
	// OpRet: return A (or 0 when A is NoOperand).
	OpRet
	// OpTxBegin / OpTxEnd delimit an atomic region.
	OpTxBegin
	OpTxEnd
)

// OperandKind distinguishes instruction operand classes.
type OperandKind uint8

const (
	// NoOperand marks an unused operand slot.
	NoOperand OperandKind = iota
	// Temp is a single-assignment virtual register.
	Temp
	// Local is a mutable function-local variable slot.
	Local
	// Imm is an immediate constant.
	Imm
)

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind
	Val  int64 // temp index, local slot, or immediate value
}

// None is the absent operand.
var None = Operand{Kind: NoOperand}

// T returns a temp operand.
func T(i int) Operand { return Operand{Kind: Temp, Val: int64(i)} }

// L returns a local operand.
func L(i int) Operand { return Operand{Kind: Local, Val: int64(i)} }

// I returns an immediate operand.
func I(v int64) Operand { return Operand{Kind: Imm, Val: v} }

// Instr is one three-operand instruction.
type Instr struct {
	Op   Opcode
	Dst  Operand
	A, B Operand
	Cond core.Op // for OpCmp / OpTMCmp / OpTMCmp2
	Then int     // target block for OpBr/OpJmp
	Else int     // fall-through block for OpBr
	Fn   string  // callee for OpCall
	Args []Operand
}

// Block is a basic block: straight-line instructions whose last instruction
// may transfer control.
type Block struct {
	Instrs []Instr
}

// Function is a compiled function: parameters bind to the first local slots.
type Function struct {
	Name      string
	NumParams int
	NumLocals int
	NumTemps  int
	Blocks    []*Block
}

// NewTemp reserves a fresh temp index.
func (f *Function) NewTemp() Operand {
	t := f.NumTemps
	f.NumTemps++
	return T(t)
}

// NewBlock appends an empty block and returns its index.
func (f *Function) NewBlock() int {
	f.Blocks = append(f.Blocks, &Block{})
	return len(f.Blocks) - 1
}

// Emit appends an instruction to block b.
func (f *Function) Emit(b int, in Instr) {
	f.Blocks[b].Instrs = append(f.Blocks[b].Instrs, in)
}

// Program is a compiled TxC program: shared memory layout plus functions.
type Program struct {
	// SharedSize is the number of shared memory words; symbol addresses
	// index this space.
	SharedSize int64
	// Symbols maps shared variable names to base addresses.
	Symbols map[string]int64
	// Funcs maps function names to their bodies.
	Funcs map[string]*Function
}

// Lookup returns the named function.
func (p *Program) Lookup(name string) (*Function, error) {
	f, ok := p.Funcs[name]
	if !ok {
		return nil, fmt.Errorf("gimple: no function %q", name)
	}
	return f, nil
}

func (o Operand) String() string {
	switch o.Kind {
	case Temp:
		return fmt.Sprintf("t%d", o.Val)
	case Local:
		return fmt.Sprintf("l%d", o.Val)
	case Imm:
		return fmt.Sprintf("#%d", o.Val)
	default:
		return "_"
	}
}

func (in Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%v = const %v", in.Dst, in.A)
	case OpMov:
		return fmt.Sprintf("%v = %v", in.Dst, in.A)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		sym := map[Opcode]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%"}[in.Op]
		return fmt.Sprintf("%v = %v %s %v", in.Dst, in.A, sym, in.B)
	case OpCmp:
		return fmt.Sprintf("%v = %v %s %v", in.Dst, in.A, in.Cond, in.B)
	case OpNot:
		return fmt.Sprintf("%v = !%v", in.Dst, in.A)
	case OpLoad:
		return fmt.Sprintf("%v = shared[%v]", in.Dst, in.A)
	case OpStore:
		return fmt.Sprintf("shared[%v] = %v", in.A, in.B)
	case OpTMRead:
		return fmt.Sprintf("%v = TM_READ(%v)", in.Dst, in.A)
	case OpTMWrite:
		return fmt.Sprintf("TM_WRITE(%v, %v)", in.A, in.B)
	case OpTMCmp:
		return fmt.Sprintf("%v = _ITM_S1R(%v %s %v)", in.Dst, in.A, in.Cond, in.B)
	case OpTMCmp2:
		return fmt.Sprintf("%v = _ITM_S2R(%v %s %v)", in.Dst, in.A, in.Cond, in.B)
	case OpTMInc:
		return fmt.Sprintf("_ITM_SW(%v, %v)", in.A, in.B)
	case OpTMCmpSum:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = a.String()
		}
		return fmt.Sprintf("%v = _ITM_SE(sum(%s) %s %v)", in.Dst, strings.Join(parts, ", "), in.Cond, in.B)
	case OpBr:
		return fmt.Sprintf("br %v ? B%d : B%d", in.A, in.Then, in.Else)
	case OpJmp:
		return fmt.Sprintf("jmp B%d", in.Then)
	case OpCall:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = a.String()
		}
		return fmt.Sprintf("%v = call %s(%s)", in.Dst, in.Fn, strings.Join(parts, ", "))
	case OpRet:
		return fmt.Sprintf("ret %v", in.A)
	case OpTxBegin:
		return "tx_begin"
	case OpTxEnd:
		return "tx_end"
	default:
		return fmt.Sprintf("op%d", in.Op)
	}
}

// Dump renders the function as readable IR text.
func (f *Function) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (params=%d locals=%d temps=%d)\n",
		f.Name, f.NumParams, f.NumLocals, f.NumTemps)
	for i, blk := range f.Blocks {
		fmt.Fprintf(&b, "B%d:\n", i)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "\t%s\n", in.String())
		}
	}
	return b.String()
}
