package gimple

import (
	"strings"
	"testing"

	"semstm/internal/core"
)

func TestOperandConstructors(t *testing.T) {
	if T(3) != (Operand{Kind: Temp, Val: 3}) {
		t.Fatal("T")
	}
	if L(2) != (Operand{Kind: Local, Val: 2}) {
		t.Fatal("L")
	}
	if I(-7) != (Operand{Kind: Imm, Val: -7}) {
		t.Fatal("I")
	}
	if None.Kind != NoOperand {
		t.Fatal("None")
	}
}

func TestOperandString(t *testing.T) {
	cases := map[string]Operand{
		"t4": T(4), "l1": L(1), "#9": I(9), "_": None,
	}
	for want, o := range cases {
		if o.String() != want {
			t.Errorf("%v prints %q, want %q", o, o.String(), want)
		}
	}
}

func TestFunctionBuilders(t *testing.T) {
	f := &Function{Name: "f"}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	if b0 != 0 || b1 != 1 {
		t.Fatalf("block indices %d %d", b0, b1)
	}
	t0 := f.NewTemp()
	t1 := f.NewTemp()
	if t0 != T(0) || t1 != T(1) || f.NumTemps != 2 {
		t.Fatalf("temps %v %v (n=%d)", t0, t1, f.NumTemps)
	}
	f.Emit(b0, Instr{Op: OpConst, Dst: t0, A: I(5)})
	f.Emit(b0, Instr{Op: OpRet, A: t0})
	if len(f.Blocks[0].Instrs) != 2 {
		t.Fatalf("emit failed: %d instrs", len(f.Blocks[0].Instrs))
	}
}

func TestProgramLookup(t *testing.T) {
	p := &Program{Funcs: map[string]*Function{"main": {Name: "main"}}}
	if _, err := p.Lookup("main"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Lookup("missing"); err == nil {
		t.Fatal("missing function must error")
	}
}

// TestInstrStringAllOpcodes keeps the disassembler total: every opcode must
// render something meaningful.
func TestInstrStringAllOpcodes(t *testing.T) {
	instrs := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Dst: T(0), A: I(1)}, "const"},
		{Instr{Op: OpMov, Dst: L(0), A: T(1)}, "l0 = t1"},
		{Instr{Op: OpAdd, Dst: T(0), A: T(1), B: I(2)}, "+"},
		{Instr{Op: OpSub, Dst: T(0), A: T(1), B: I(2)}, "-"},
		{Instr{Op: OpMul, Dst: T(0), A: T(1), B: I(2)}, "*"},
		{Instr{Op: OpDiv, Dst: T(0), A: T(1), B: I(2)}, "/"},
		{Instr{Op: OpMod, Dst: T(0), A: T(1), B: I(2)}, "%"},
		{Instr{Op: OpCmp, Dst: T(0), A: T(1), B: I(2), Cond: core.OpLT}, "<"},
		{Instr{Op: OpNot, Dst: T(0), A: T(1)}, "!"},
		{Instr{Op: OpLoad, Dst: T(0), A: I(3)}, "shared[#3]"},
		{Instr{Op: OpStore, A: I(3), B: T(0)}, "shared[#3] ="},
		{Instr{Op: OpTMRead, Dst: T(0), A: I(3)}, "TM_READ"},
		{Instr{Op: OpTMWrite, A: I(3), B: T(0)}, "TM_WRITE"},
		{Instr{Op: OpTMCmp, Dst: T(0), A: I(3), B: I(0), Cond: core.OpGT}, "_ITM_S1R"},
		{Instr{Op: OpTMCmp2, Dst: T(0), A: I(3), B: I(4), Cond: core.OpEQ}, "_ITM_S2R"},
		{Instr{Op: OpTMInc, A: I(3), B: I(1)}, "_ITM_SW"},
		{Instr{Op: OpBr, A: T(0), Then: 1, Else: 2}, "br"},
		{Instr{Op: OpJmp, Then: 3}, "jmp B3"},
		{Instr{Op: OpCall, Dst: T(0), Fn: "g", Args: []Operand{I(1), L(0)}}, "call g(#1, l0)"},
		{Instr{Op: OpRet, A: I(0)}, "ret"},
		{Instr{Op: OpTxBegin}, "tx_begin"},
		{Instr{Op: OpTxEnd}, "tx_end"},
	}
	for _, c := range instrs {
		got := c.in.String()
		if !strings.Contains(got, c.want) {
			t.Errorf("%d: %q does not contain %q", c.in.Op, got, c.want)
		}
	}
}

func TestDumpContainsBlocksAndHeader(t *testing.T) {
	f := &Function{Name: "probe", NumParams: 1}
	b := f.NewBlock()
	f.Emit(b, Instr{Op: OpRet, A: I(0)})
	d := f.Dump()
	if !strings.Contains(d, "func probe") || !strings.Contains(d, "B0:") {
		t.Fatalf("dump:\n%s", d)
	}
}
