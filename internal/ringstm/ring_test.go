package ringstm

import (
	"sync"
	"testing"

	"semstm/internal/core"
	"semstm/internal/txtest"
)

func TestFilterBasics(t *testing.T) {
	var f, g filter
	if !f.empty() {
		t.Fatal("fresh filter not empty")
	}
	f.add(42)
	if f.empty() {
		t.Fatal("filter empty after add")
	}
	if f.intersects(&g) {
		t.Fatal("intersection with empty filter")
	}
	g.add(42)
	if !f.intersects(&g) {
		t.Fatal("same element must intersect (no false negatives)")
	}
	f.reset()
	if !f.empty() {
		t.Fatal("reset failed")
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	var f filter
	ids := []uint64{1, 7, 100, 1 << 40, 999999937}
	for _, id := range ids {
		f.add(id)
	}
	for _, id := range ids {
		var single filter
		single.add(id)
		if !f.intersects(&single) {
			t.Fatalf("id %d lost", id)
		}
	}
}

func TestCommitVisibility(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		v := core.NewVar(1)
		tx := NewTx(g, semantic)
		if !txtest.MustCommit(tx, func() {
			if got := tx.Read(v); got != 1 {
				t.Fatalf("Read = %d", got)
			}
			tx.Write(v, 2)
		}) {
			t.Fatal("solo writer must commit")
		}
		if v.Load() != 2 {
			t.Fatalf("memory = %d", v.Load())
		}
		if g.Head() != 1 {
			t.Fatalf("head = %d", g.Head())
		}
	}
}

func TestReadOnlyDoesNotAdvanceRing(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(3)
	tx := NewTx(g, true)
	txtest.MustCommit(tx, func() {
		_ = tx.Read(v)
		_ = tx.Cmp(v, core.OpGT, 0)
	})
	if g.Head() != 0 {
		t.Fatalf("read-only commit advanced the ring to %d", g.Head())
	}
}

// TestSignatureConflictAbortsBase: classic RingSTM aborts on a write-set /
// read-set signature intersection even when the value is semantically
// irrelevant; S-RingSTM re-validates the facts and survives.
func TestSignatureConflictSemanticRescue(t *testing.T) {
	run := func(semantic bool) bool {
		g := NewGlobal()
		x, z := core.NewVar(5), core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		if !t1.Cmp(x, core.OpGT, 0) {
			t.Fatal("x > 0 must hold")
		}
		txtest.MustCommit(t2, func() { t2.Inc(x, 1) }) // real intersection on x
		return txtest.MustCommitRest(t1, func() { t1.Write(z, 1) })
	}
	if !run(true) {
		t.Error("S-RingSTM must survive: fact x > 0 still holds")
	}
	if run(false) {
		t.Error("classic RingSTM must abort on the signature hit")
	}
}

func TestSemanticAbortsOnBrokenFact(t *testing.T) {
	g := NewGlobal()
	x, z := core.NewVar(5), core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	_ = t1.Cmp(x, core.OpGT, 0)
	txtest.MustCommit(t2, func() { t2.Write(x, -1) })
	if txtest.MustCommitRest(t1, func() { t1.Write(z, 1) }) {
		t.Fatal("fact broken; S-RingSTM must abort")
	}
}

func TestPaperAlgorithm1(t *testing.T) {
	run := func(semantic bool) bool {
		g := NewGlobal()
		x, y, z := core.NewVar(5), core.NewVar(5), core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		if !txtest.Step(t1, func() {
			if !t1.Cmp(x, core.OpGT, 0) || !t1.Cmp(y, core.OpGT, 0) {
				t.Fatal("conditions must hold")
			}
		}) {
			return false
		}
		txtest.MustCommit(t2, func() {
			t2.Inc(x, 1)
			t2.Inc(y, -1)
		})
		return txtest.MustCommitRest(t1, func() { t1.Write(z, 1) })
	}
	if !run(true) {
		t.Error("S-RingSTM must commit T1")
	}
	if run(false) {
		t.Error("classic RingSTM must abort T1")
	}
}

func TestIncDeferred(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(100)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	t1.Inc(v, 1)
	txtest.MustCommit(t2, func() { t2.Write(v, 500) })
	if txtest.Aborted(func() { t1.Commit() }) {
		t.Fatal("inc-only transaction must survive a concurrent write")
	}
	if v.Load() != 501 {
		t.Fatalf("final = %d", v.Load())
	}
}

func TestWriteSkew(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		x, y := core.NewVar(0), core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		t2.Start()
		_ = t1.Read(x)
		_ = t2.Read(y)
		t1.Write(y, 1)
		t2.Write(x, 1)
		if txtest.Aborted(func() { t1.Commit() }) {
			t.Fatal("first committer must succeed")
		}
		if !txtest.Aborted(func() { t2.Commit() }) {
			t.Fatalf("semantic=%v: write skew must abort", semantic)
		}
		t2.Cleanup()
	}
}

// TestRingWrapAborts: a transaction that falls ringSize commits behind must
// abort rather than validate against recycled slots.
func TestRingWrapAborts(t *testing.T) {
	g := NewGlobal()
	x := core.NewVar(0)
	old := NewTx(g, true)
	old.Start()
	_ = old.Read(x) // pins a signature and a start point

	w := NewTx(g, true)
	other := core.NewVar(0)
	for i := 0; i < ringSize+2; i++ {
		txtest.MustCommit(w, func() { w.Write(other, int64(i)) })
	}
	if txtest.MustCommitRest(old, func() { old.Write(x, 1) }) {
		t.Fatal("transaction older than the ring must abort")
	}
}

func TestConcurrentCounter(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		v := core.NewVar(0)
		const workers, per = 6, 300
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tx := NewTx(g, semantic)
				for i := 0; i < per; i++ {
					for !txtest.MustCommit(tx, func() { tx.Inc(v, 1) }) {
					}
				}
			}()
		}
		wg.Wait()
		if v.Load() != workers*per {
			t.Fatalf("semantic=%v: counter = %d", semantic, v.Load())
		}
	}
}

func TestDelegationStats(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(5)
	base := NewTx(g, false)
	txtest.MustCommit(base, func() {
		_ = base.Cmp(v, core.OpGT, 0)
		base.Inc(v, 1)
	})
	bs := base.AttemptStats()
	if bs.Compares != 0 || bs.Incs != 0 || bs.Reads != 2 || bs.Writes != 1 {
		t.Fatalf("baseline delegation counts: %+v", bs)
	}
}
