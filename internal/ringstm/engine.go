package ringstm

import "semstm/internal/core"

// engine adapts a RingSTM Global (commit-record ring) to the core.Engine
// registry interface; the semantic flag selects S-RingSTM descriptors.
type engine struct {
	g        *Global
	semantic bool
}

func (e engine) NewTx(cfg core.TxConfig) core.TxImpl {
	return NewTx(e.g, e.semantic)
}

func (e engine) Quiescent() error { return e.g.Quiescent() }

func init() {
	core.RegisterEngine(core.EngineDesc{
		ID:           core.EngineRing,
		Name:         "RingSTM",
		DisplayOrder: 4,
		New:          func() core.Engine { return engine{g: NewGlobal()} },
	})
	core.RegisterEngine(core.EngineDesc{
		ID:           core.EngineSRing,
		Name:         "S-RingSTM",
		DisplayOrder: 5,
		Semantic:     true,
		New:          func() core.Engine { return engine{g: NewGlobal(), semantic: true} },
	})
}
