package ringstm

import (
	"fmt"
	"sync/atomic"

	"semstm/internal/core"
)

// ringSize is the number of retained commit records; a transaction that
// falls more than ringSize commits behind aborts (ring wrap).
const ringSize = 1024

// entry statuses.
const (
	statusWriting  = 1
	statusComplete = 2
)

// entry is one ring slot: the write signature of the commit with timestamp
// ts. The publishing order is: filter words (plain), then ts (atomic,
// release), then the write-back, then status = complete. A reader that
// observes ts == i may therefore read the filter safely; it must wait for
// statusComplete only when it needs the written values to be stable
// (semantic re-validation).
type entry struct {
	ts     atomic.Uint64
	status atomic.Uint32
	wf     filter
}

// Global is the state shared by all transactions of one RingSTM runtime.
// The head — polled by every barrier of every thread and CASed by every
// committer — sits alone on its cache line; without the pad it shares a line
// with ring[0]'s timestamp and status words, so every wrap-around write-back
// of slot 0 would invalidate the head under all readers.
type Global struct {
	head atomic.Uint64 // number of commits; ring[i%ringSize] holds commit i
	_    core.PadWord
	ring [ringSize]entry
	// readers is the privatization-barrier surface (DESIGN.md §14): each
	// descriptor publishes its consistent point in a slot here, and a
	// privatizing committer drains the table to its commit timestamp.
	readers core.ReaderTable
}

// NewGlobal returns a fresh ring with no commits.
func NewGlobal() *Global { return &Global{} }

// Head exposes the commit count (tests only).
func (g *Global) Head() uint64 { return g.head.Load() }

// Quiescent verifies the newest commit record is fully written back: an
// abort or user panic must never leave a claimed ring slot incomplete, or
// every later transaction would spin on it forever.
func (g *Global) Quiescent() error {
	h := g.head.Load()
	if h == 0 {
		return nil
	}
	e := &g.ring[h%ringSize]
	if e.ts.Load() != h || e.status.Load() != statusComplete {
		return fmt.Errorf("ringstm: newest ring entry %d not complete", h)
	}
	return nil
}

// Tx is one RingSTM / S-RingSTM transaction descriptor.
type Tx struct {
	g        *Global
	semantic bool
	start    uint64        // newest commit known consistent with the read-set
	rf       filter        // read signature
	wf       filter        // write signature
	reads    *core.SemSet  // semantic facts (values for re-validation)
	exprs    *core.ExprSet // expression facts (extension)
	writes   *core.WriteSet
	waiter   core.Waiter
	slot     *core.ReaderSlot // published consistent point (privatization)
	lastW    uint64           // timestamp of the last commit (drain bound)
	fp       *core.FaultPlan  // nil unless fault injection is armed
	stats    core.TxStats
}

// NewTx returns a descriptor bound to g; semantic selects S-RingSTM.
func NewTx(g *Global, semantic bool) *Tx {
	return &Tx{
		g:        g,
		semantic: semantic,
		reads:    core.NewSemSet(),
		exprs:    core.NewExprSet(),
		writes:   core.NewWriteSet(),
		slot:     g.readers.NewSlot(),
	}
}

// Start begins an attempt: snapshot the ring head as the consistent point.
// The newest commit's write-back may still be in flight (write-backs are
// serialized, so only the newest can be); reads must not begin until memory
// reflects the snapshot, so Start waits it out.
func (tx *Tx) Start() {
	tx.rf.reset()
	tx.wf.reset()
	tx.reads.Reset()
	tx.exprs.Reset()
	tx.writes.Reset()
	tx.stats.Reset()
	if tx.fp != nil {
		tx.fp.Step(core.SiteStart)
	}
	tx.waiter.Reset()
	for {
		h := tx.g.head.Load()
		if h != 0 && !published(&tx.g.ring[h%ringSize], h) {
			tx.waiter.Wait()
			tx.stats.SpinWaits++
			continue
		}
		// Pin-then-recheck: the pin must be visible before the snapshot can
		// be trusted, or a privatizing committer could drain between the head
		// load and the pin publication (DESIGN.md §14).
		tx.slot.Pin(h)
		if tx.g.head.Load() == h {
			tx.start = h
			return
		}
	}
}

// SetFaultPlan arms or disarms deterministic fault injection.
func (tx *Tx) SetFaultPlan(p *core.FaultPlan) { tx.fp = p }

// published reports whether commit i's entry is fully written back.
func published(e *entry, i uint64) bool {
	return e.ts.Load() == i && e.status.Load() == statusComplete
}

// waitComplete waits (adaptively) until commit i's write-back has finished.
func (tx *Tx) waitComplete(i uint64) {
	e := &tx.g.ring[i%ringSize]
	tx.waiter.Reset()
	for e.ts.Load() == i && e.status.Load() != statusComplete {
		tx.waiter.Wait()
		tx.stats.SpinWaits++
	}
}

// validateTo brings the transaction's consistent point up to the current
// head: every commit in (start, head] either has a write signature disjoint
// from the read signature, or — in S-RingSTM — the semantic facts still hold
// after its write-back completes. Classic RingSTM aborts on any
// intersection. Returns the head the read-set is now consistent with.
func (tx *Tx) validateTo() uint64 {
	for {
		h := tx.g.head.Load()
		if h == tx.start {
			return h
		}
		if h-tx.start >= ringSize {
			core.AbortWith(core.ReasonCapacity) // fell off the ring
		}
		if tx.fp != nil && tx.fp.ValidationFail() {
			core.AbortWith(core.ReasonValidation)
		}
		tx.stats.Validations++
		tx.stats.ValEntries += h - tx.start // ring entries this pass examines
		for i := tx.start + 1; i <= h; i++ {
			e := &tx.g.ring[i%ringSize]
			// Wait for the entry to be published.
			tx.waiter.Reset()
			for e.ts.Load() < i {
				tx.waiter.Wait()
				tx.stats.SpinWaits++
			}
			if e.ts.Load() != i {
				core.AbortWith(core.ReasonCapacity) // slot already reused: too far behind
			}
			// Advancing the consistent point past commit i requires its
			// write-back to have landed: otherwise a later first read of a
			// variable i wrote could still observe the pre-i value.
			tx.waitComplete(i)
			if e.ts.Load() != i {
				core.AbortWith(core.ReasonCapacity) // slot reused while waiting
			}
			disjoint := tx.rf.empty() || !e.wf.intersects(&tx.rf)
			// A reusing writer flips status to writing before touching the
			// filter words, so this recheck certifies the filter we just
			// read was stable.
			if e.ts.Load() != i || e.status.Load() != statusComplete {
				core.AbortWith(core.ReasonCapacity)
			}
			if disjoint {
				continue // disjoint: reads unaffected
			}
			if !tx.semantic {
				core.AbortWith(core.ReasonValidation) // classic RingSTM: signature hit = conflict
			}
			// S-RingSTM: re-validate the facts by value.
			tx.stats.ValEntries += uint64(tx.reads.Len() + tx.exprs.Len())
			if ok, why := tx.reads.BrokenReason(); !ok {
				core.AbortWith(why)
			}
			if !tx.exprs.HoldsNow() {
				core.AbortWith(core.ReasonCmpFlip)
			}
		}
		tx.start = h
		// Forward pin movement: a reader validated up to h is no longer a
		// zombie with respect to any commit at or before h, so a privatizer
		// draining to w <= h may stop waiting on it. No recheck needed.
		tx.slot.Pin(h)
	}
}

// readStable loads *v at a point consistent with the read-set.
func (tx *Tx) readStable(v *core.Var) int64 {
	for {
		h := tx.validateTo()
		val := v.Load()
		if tx.g.head.Load() == h {
			return val
		}
	}
}

func (tx *Tx) raw(v *core.Var, e *core.WriteEntry) int64 {
	if e.Kind == core.EntryInc {
		val := tx.readStable(v)
		tx.rf.add(v.ID())
		tx.reads.Append(v, core.OpEQ, val)
		tx.writes.Promote(v, e.Val+val)
		tx.stats.Promotes++
	}
	return e.Val
}

// Read implements TM_READ: a stable load recorded in the read signature
// (and, for re-validation, as an EQ fact — classic RingSTM keeps no values
// and the base build never consults them).
func (tx *Tx) Read(v *core.Var) int64 {
	tx.stats.Reads++
	if tx.fp != nil {
		tx.fp.Step(core.SiteRead)
	}
	if e := tx.writes.Get(v); e != nil {
		return tx.raw(v, e)
	}
	val := tx.readStable(v)
	tx.rf.add(v.ID())
	if tx.semantic {
		tx.reads.Append(v, core.OpEQ, val)
	}
	return val
}

// Write implements TM_WRITE: buffered, signature-tracked.
func (tx *Tx) Write(v *core.Var, val int64) {
	tx.stats.Writes++
	tx.writes.PutWrite(v, val)
	tx.wf.add(v.ID())
}

// Cmp implements the semantic conditional: S-RingSTM records the fact and
// the signature bit; a later signature hit re-evaluates the fact instead of
// aborting.
func (tx *Tx) Cmp(v *core.Var, op core.Op, operand int64) bool {
	if !tx.semantic {
		return op.Eval(tx.Read(v), operand)
	}
	tx.stats.Compares++
	if tx.fp != nil {
		tx.fp.Step(core.SiteCmp)
	}
	if e := tx.writes.Get(v); e != nil {
		return op.Eval(tx.raw(v, e), operand)
	}
	val := tx.readStable(v)
	tx.rf.add(v.ID())
	result := op.Eval(val, operand)
	tx.reads.AppendOutcome(v, op, operand, result)
	return result
}

// CmpVars implements the address–address conditional with a two-address fact.
func (tx *Tx) CmpVars(a *core.Var, op core.Op, b *core.Var) bool {
	if !tx.semantic {
		operand := tx.Read(b)
		return op.Eval(tx.Read(a), operand)
	}
	// One indexed lookup per operand (see the WriteSet Bloom fast path).
	if eb := tx.writes.Get(b); eb != nil || tx.writes.Get(a) != nil {
		var operand int64
		if eb != nil {
			operand = tx.raw(b, eb)
		} else {
			tx.stats.Reads++
			operand = tx.readStable(b)
			tx.rf.add(b.ID())
			tx.reads.Append(b, core.OpEQ, operand)
		}
		return tx.Cmp(a, op, operand)
	}
	tx.stats.Compares++
	var va, vb int64
	for {
		h := tx.validateTo()
		va, vb = a.Load(), b.Load()
		if tx.g.head.Load() == h {
			break
		}
	}
	tx.rf.add(a.ID())
	tx.rf.add(b.ID())
	result := op.Eval(va, vb)
	tx.reads.AppendOutcomeVar(a, op, b, result)
	return result
}

// CmpSum implements the arithmetic-expression conditional (extension).
func (tx *Tx) CmpSum(op core.Op, rhs int64, vars []*core.Var) bool {
	delegate := !tx.semantic
	if !delegate {
		for _, v := range vars {
			if tx.writes.Get(v) != nil {
				delegate = true
				break
			}
		}
	}
	if delegate {
		var sum int64
		for _, v := range vars {
			sum += tx.Read(v)
		}
		return op.Eval(sum, rhs)
	}
	tx.stats.Compares++
	var sum int64
	for {
		h := tx.validateTo()
		sum = 0
		for _, v := range vars {
			sum += v.Load()
		}
		if tx.g.head.Load() == h {
			break
		}
	}
	for _, v := range vars {
		tx.rf.add(v.ID())
	}
	result := op.Eval(sum, rhs)
	tx.exprs.AppendSum(vars, op, rhs, result)
	return result
}

// CmpAny implements the composed condition (extension).
func (tx *Tx) CmpAny(conds []core.Cond) bool {
	if !tx.semantic {
		for _, c := range conds {
			if c.Op.Eval(tx.Read(c.Var), c.Operand) {
				return true
			}
		}
		return false
	}
	for _, c := range conds {
		if tx.writes.Get(c.Var) != nil {
			for _, cc := range conds {
				if tx.Cmp(cc.Var, cc.Op, cc.Operand) {
					return true
				}
			}
			return false
		}
	}
	tx.stats.Compares++
	var result bool
	for {
		h := tx.validateTo()
		result = false
		for _, c := range conds {
			if c.Eval() {
				result = true
				break
			}
		}
		if tx.g.head.Load() == h {
			break
		}
	}
	for _, c := range conds {
		tx.rf.add(c.Var.ID())
	}
	tx.exprs.AppendOr(conds, result)
	return result
}

// Inc implements the semantic increment.
func (tx *Tx) Inc(v *core.Var, delta int64) {
	if !tx.semantic {
		tx.Write(v, tx.Read(v)+delta)
		return
	}
	tx.stats.Incs++
	tx.writes.PutInc(v, delta)
	tx.wf.add(v.ID())
}

// Commit publishes the transaction. Read-only transactions are already
// consistent. Writers validate up to the head, claim the next ring slot
// with a CAS (the serialization point), publish their write signature, write
// back, and mark the entry complete. Write-backs are serialized: a writer
// waits for the previous entry to complete before claiming the next slot.
func (tx *Tx) Commit() {
	if tx.fp != nil {
		tx.fp.Step(core.SiteCommit)
	}
	if tx.writes.Len() == 0 {
		tx.lastW = tx.start
		tx.slot.Clear()
		return
	}
	tx.waiter.Reset()
	for {
		h := tx.validateTo()
		if h > 0 {
			// Serialize write-backs: the previous commit must be done.
			prev := &tx.g.ring[h%ringSize]
			if prev.ts.Load() == h && prev.status.Load() != statusComplete {
				tx.waiter.Wait()
				tx.stats.SpinWaits++
				continue
			}
		}
		if !tx.g.head.CompareAndSwap(h, h+1) {
			// A concurrent commit claimed slot h+1: adopt the newer head by
			// revalidating up to it on the next round.
			tx.stats.ClockAdopts++
			continue
		}
		slot := &tx.g.ring[(h+1)%ringSize]
		slot.status.Store(statusWriting)
		slot.wf = tx.wf
		slot.ts.Store(h + 1) // publish: readers may now see the filter
		if tx.fp != nil {
			tx.fp.CommitDelay() // stretch the publish-to-complete window
		}
		for _, e := range tx.writes.Entries() {
			if e.Kind == core.EntryInc {
				e.Var.StoreNT(e.Var.Load() + e.Val)
			} else {
				e.Var.StoreNT(e.Val)
			}
		}
		slot.status.Store(statusComplete)
		tx.lastW = h + 1
		tx.slot.Clear()
		return
	}
}

// CommitPrivatize is Commit with privatization-barrier semantics
// (core.Privatizer): after the commit's write-back completes, drain every
// reader still consistent with a pre-commit head. An abort unwinds like
// Commit and performs no drain.
func (tx *Tx) CommitPrivatize() {
	tx.Commit()
	tx.g.readers.Drain(tx.lastW)
}

// PrivatizeBarrier re-runs the drain of the last successful Commit.
func (tx *Tx) PrivatizeBarrier() { tx.g.readers.Drain(tx.lastW) }

// Cleanup has no locks to release: RingSTM only un-publishes the reader slot.
func (tx *Tx) Cleanup() { tx.slot.Clear() }

// AttemptStats exposes the per-attempt operation counters.
func (tx *Tx) AttemptStats() *core.TxStats { return &tx.stats }
