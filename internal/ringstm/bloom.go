// Package ringstm implements the RingSTM algorithm [Spear, Michael, von
// Praun; SPAA 2008] — the signature-based third family of STM validation the
// paper's introduction surveys ("compact bloom filters to track memory
// accesses, as used in RingSTM") — and S-RingSTM, its semantic extension
// following the paper's methodology: transactions additionally record
// semantic facts, and a signature intersection triggers semantic
// re-validation instead of an unconditional abort.
//
// The implementation follows the single-writer RingSW variant: commits
// serialize by a CAS on a global ring head; each ring entry publishes the
// committing transaction's write signature; readers validate by intersecting
// their read signature with the entries that appeared since their snapshot.
package ringstm

// filterWords gives a 1024-bit signature.
const filterWords = 16

// filter is a Bloom-filter signature over variable ids with two hash
// functions, the access-tracking structure of RingSTM.
type filter [filterWords]uint64

// two independent multiplicative hashes over the 10 bit positions.
func bitsOf(id uint64) (uint32, uint32) {
	h1 := uint32((id * 0x9E3779B97F4A7C15) >> 54) // 10 bits
	h2 := uint32((id * 0xC2B2AE3D27D4EB4F) >> 54)
	return h1, h2
}

// add sets the signature bits of id.
func (f *filter) add(id uint64) {
	b1, b2 := bitsOf(id)
	f[b1>>6] |= 1 << (b1 & 63)
	f[b2>>6] |= 1 << (b2 & 63)
}

// intersects reports whether the signatures may share an element (Bloom
// semantics: false positives possible, false negatives impossible).
func (f *filter) intersects(o *filter) bool {
	for i := range f {
		if f[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// reset clears the signature.
func (f *filter) reset() {
	*f = filter{}
}

// empty reports whether no element was added.
func (f *filter) empty() bool {
	for _, w := range f {
		if w != 0 {
			return false
		}
	}
	return true
}
