// Package wal is the durable half of the commit pipeline (DESIGN.md §12): a
// segmented, per-shard redo log whose records are the paper's *semantic*
// operations rather than value images. A deferred increment logs as `inc +δ`
// without ever reading the variable — the same low-level-semantics property
// that lets S-NOrec commit counter traffic without validation makes its redo
// record tiny and replay-commutative — and a composed fact logs as the fact
// itself, giving recovery a self-checking assertion stream.
//
// On-disk layout under the log directory:
//
//	manifest                     shard count, written once at creation
//	shard-NNN/seg-NNNNNNNN.wal   one shard's segments, in creation order
//
// Each segment opens with a fixed header carrying the SHA-256 hain value
// accumulated over every frame of every earlier segment, so the whole
// per-shard log is one hash chain (the Merkle-chained ledger idea of the
// audit-log exemplar in SNIPPETS.md, flattened to a linear chain): a frame
// cannot be altered, dropped, or reordered anywhere in the prefix without
// breaking verification of everything after it. Each frame — one committed
// transaction's records on one shard — additionally carries a CRC32C
// (Castagnoli) over its payload, which is what distinguishes a torn tail
// (truncate and continue) from interior corruption (refuse to recover).
//
// Frame wire format, little-endian:
//
//	u32 payload length
//	u32 CRC32C(payload)
//	payload:
//	  u64 seq         per-shard frame sequence number, dense from 0
//	  u64 crossID     0 for single-shard commits; cross-shard commits tag
//	                  every participant's frame with one engine-wide id
//	  u16 nparts      participant shard ids (empty for single-shard)
//	  u16 nrecs
//	  nparts × u32    participant shards, ascending
//	  nrecs × record  { u8 op, u8 aux, u64 key, i64 val }
//
// Records name variables by their stable durable key (core.Var.DurableKey),
// never by the process-local allocation id.
package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"semstm/internal/core"
)

// Op is a redo-record opcode.
type Op uint8

const (
	// OpWrite stores an absolute value: replay sets key = val. A write
	// anchors the key — from this record on, the log alone determines the
	// variable's value.
	OpWrite Op = iota
	// OpInc applies a deferred delta: replay adds val to key. Until a write
	// anchors the key, replayed deltas accumulate relative to the initial
	// value the application re-supplies at recovery (RecoveredVal.Anchored).
	OpInc
	// OpFact records a semantic fact the commit validated: `key <cmpop>
	// val` held (or did not — Aux carries the outcome). Facts mutate
	// nothing; replay re-evaluates them against the rebuilt prefix state and
	// treats a flip as corruption, making the log self-checking.
	OpFact
)

// FactHeld is the Aux bit marking that the fact evaluated true at commit
// time; the low bits carry the core.Op comparison code.
const FactHeld = 0x80

// Record is one semantic redo record.
type Record struct {
	Op  Op
	Aux uint8
	Key uint64
	Val int64
}

// FactRecord builds an OpFact record from a validated comparison outcome.
func FactRecord(key uint64, cmp core.Op, operand int64, held bool) Record {
	aux := uint8(cmp)
	if held {
		aux |= FactHeld
	}
	return Record{Op: OpFact, Aux: aux, Key: key, Val: operand}
}

const (
	frameHdrBytes = 8  // u32 length + u32 crc
	recBytes      = 18 // u8 op + u8 aux + u64 key + i64 val
	maxFrameBytes = 1 << 24

	segHeaderBytes = 56
	segMagic       = 0x53574C31 // "SWL1"
	segVersion     = 1
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors of the durable pipeline. ErrCorrupt covers everything recovery must
// refuse (interior CRC/chain/sequence damage, fact flips); a torn tail is
// not corruption and never surfaces as an error.
var (
	ErrCorrupt       = errors.New("wal: log corrupt")
	ErrShardMismatch = errors.New("wal: shard count differs from manifest")
)

// CrashedError is the latched terminal state of a log whose FaultPlan crash
// fired: the on-disk bytes are frozen exactly as the simulated process death
// left them and every further append is refused. The shard commit layer
// translates it into core.CrashPanic so the "dead" worker unwinds without
// retrying.
type CrashedError struct{ Site core.CrashSite }

func (e *CrashedError) Error() string {
	return fmt.Sprintf("wal: crashed at %s", e.Site)
}

// chain is the running SHA-256 hash-chain value. The genesis value is all
// zeros; each frame folds in as chain' = SHA256(chain ‖ frame bytes),
// over the full frame including its length/CRC header.
type chainVal [32]byte

func chainNext(prev chainVal, frame []byte) chainVal {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(frame)
	var out chainVal
	h.Sum(out[:0])
	return out
}

// appendFrame encodes one frame onto buf and returns the extended buffer.
func appendFrame(buf []byte, seq, crossID uint64, parts []int, recs []Record) []byte {
	payload := 8 + 8 + 2 + 2 + 4*len(parts) + recBytes*len(recs)
	start := len(buf)
	buf = append(buf, make([]byte, frameHdrBytes+payload)...)
	b := buf[start:]
	binary.LittleEndian.PutUint32(b[0:], uint32(payload))
	p := b[frameHdrBytes:]
	binary.LittleEndian.PutUint64(p[0:], seq)
	binary.LittleEndian.PutUint64(p[8:], crossID)
	binary.LittleEndian.PutUint16(p[16:], uint16(len(parts)))
	binary.LittleEndian.PutUint16(p[18:], uint16(len(recs)))
	off := 20
	for _, s := range parts {
		binary.LittleEndian.PutUint32(p[off:], uint32(s))
		off += 4
	}
	for _, r := range recs {
		p[off] = byte(r.Op)
		p[off+1] = r.Aux
		binary.LittleEndian.PutUint64(p[off+2:], r.Key)
		binary.LittleEndian.PutUint64(p[off+10:], uint64(r.Val))
		off += recBytes
	}
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(p, castagnoli))
	return buf
}

// frame is one decoded frame.
type frame struct {
	seq     uint64
	crossID uint64
	parts   []int
	recs    []Record
}

// parseFrame decodes the frame at the head of b. ok is false when b holds no
// complete, checksum-valid frame — the torn-tail condition when b is the
// tail of the last segment, corruption anywhere else (the caller decides).
func parseFrame(b []byte) (f frame, n int, ok bool) {
	if len(b) < frameHdrBytes {
		return f, 0, false
	}
	payload := int(binary.LittleEndian.Uint32(b[0:]))
	if payload < 20 || payload > maxFrameBytes || len(b) < frameHdrBytes+payload {
		return f, 0, false
	}
	p := b[frameHdrBytes : frameHdrBytes+payload]
	if crc32.Checksum(p, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return f, 0, false
	}
	f.seq = binary.LittleEndian.Uint64(p[0:])
	f.crossID = binary.LittleEndian.Uint64(p[8:])
	nparts := int(binary.LittleEndian.Uint16(p[16:]))
	nrecs := int(binary.LittleEndian.Uint16(p[18:]))
	if payload != 20+4*nparts+recBytes*nrecs {
		return frame{}, 0, false
	}
	off := 20
	if nparts > 0 {
		f.parts = make([]int, nparts)
		for i := range f.parts {
			f.parts[i] = int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
		}
	}
	if nrecs > 0 {
		f.recs = make([]Record, nrecs)
		for i := range f.recs {
			f.recs[i] = Record{
				Op:  Op(p[off]),
				Aux: p[off+1],
				Key: binary.LittleEndian.Uint64(p[off+2:]),
				Val: int64(binary.LittleEndian.Uint64(p[off+10:])),
			}
			off += recBytes
		}
	}
	return f, frameHdrBytes + payload, true
}

// encodeSegHeader builds the fixed segment header: magic, format version,
// segment index, the sequence number of the segment's first frame, and the
// chain value accumulated over every frame of every earlier segment.
func encodeSegHeader(segIndex, startSeq uint64, prev chainVal) []byte {
	b := make([]byte, segHeaderBytes)
	binary.LittleEndian.PutUint32(b[0:], segMagic)
	binary.LittleEndian.PutUint32(b[4:], segVersion)
	binary.LittleEndian.PutUint64(b[8:], segIndex)
	binary.LittleEndian.PutUint64(b[16:], startSeq)
	copy(b[24:], prev[:])
	return b
}

// parseSegHeader decodes a segment header; ok is false on a short or
// malformed header.
func parseSegHeader(b []byte) (segIndex, startSeq uint64, prev chainVal, ok bool) {
	if len(b) < segHeaderBytes ||
		binary.LittleEndian.Uint32(b[0:]) != segMagic ||
		binary.LittleEndian.Uint32(b[4:]) != segVersion {
		return 0, 0, chainVal{}, false
	}
	segIndex = binary.LittleEndian.Uint64(b[8:])
	startSeq = binary.LittleEndian.Uint64(b[16:])
	copy(prev[:], b[24:])
	return segIndex, startSeq, prev, true
}
