package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"semstm/internal/core"
)

// RecoveredVal is one variable's replayed state. Anchored means an OpWrite
// fixed the absolute value; an unanchored value is a pure increment delta —
// the log never read the variable, so recovery cannot know its base — and
// the application adds it to the initial value it re-supplies (Resolve).
type RecoveredVal struct {
	Val      int64
	Anchored bool
}

// RecoveredState is the outcome of replaying a log directory: the state of
// every logged variable plus the accounting the chaos suites assert on.
type RecoveredState struct {
	Shards int
	Vals   map[uint64]RecoveredVal

	Frames       uint64 // frames applied across all shards
	CrossApplied uint64 // distinct cross-shard commits applied
	TornShards   int    // shards whose tail was truncated mid-frame
	CutFrames    uint64 // intact frames discarded by the cross-completeness cut
	FactsChecked uint64 // OpFact records re-evaluated against the prefix state
}

// Resolve returns key's recovered value given the initial value the
// application would have used on a fresh start: the replayed absolute value
// if a write anchored the key, initial plus the replayed delta if only
// increments touched it, and initial when the log never saw the key.
func (rs *RecoveredState) Resolve(key uint64, initial int64) int64 {
	rv, ok := rs.Vals[key]
	switch {
	case !ok:
		return initial
	case rv.Anchored:
		return rv.Val
	default:
		return initial + rv.Val
	}
}

// scannedFrame is one intact frame with its physical location (for the
// repairing scan's exact-offset truncation) and the chain value after it
// (so a cross-cut can rewind the reopen state to any frame boundary).
type scannedFrame struct {
	frame
	seg        uint64
	path       string
	off        int64
	chainAfter chainVal
}

// shardScan is one shard's scan result: the intact frame prefix and the end
// state a reopened log continues from.
type shardScan struct {
	frames  []scannedFrame
	nextSeg uint64   // next free segment index
	nextSeq uint64   // next frame sequence number
	chain   chainVal // chain value after the last surviving frame
	torn    bool     // tail was truncated mid-frame

	// Cross-cut position, when crossCut discarded a suffix.
	cutValid bool
	cutPath  string
	cutOff   int64
	cutSeg   uint64
}

// scanShard reads shard dir's segments in order, verifying the header chain,
// per-frame CRCs, and sequence density. A bad frame at the very tail of the
// last segment is a torn tail; anything else is ErrCorrupt. With repair set,
// the torn bytes are physically truncated (and a last segment with a
// mangled header is removed) so the log can be reopened for appending.
func scanShard(dir string, repair bool) (*shardScan, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return &shardScan{}, nil
		}
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		if !e.IsDir() {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	sc := &shardScan{}
	for si, name := range segs {
		last := si == len(segs)-1
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		segIndex, startSeq, prev, ok := parseSegHeader(data)
		if !ok {
			if !last {
				return nil, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, path)
			}
			// A crash during segment roll can leave a partial header with
			// no frames; drop the file and end the scan one segment early.
			sc.torn = true
			if repair {
				if err := os.Remove(path); err != nil {
					return nil, err
				}
			}
			break
		}
		if segIndex != sc.nextSeg || startSeq != sc.nextSeq || prev != sc.chain {
			return nil, fmt.Errorf("%w: %s: segment header disagrees with chain", ErrCorrupt, path)
		}
		sc.nextSeg = segIndex + 1
		off := int64(segHeaderBytes)
		rest := data[segHeaderBytes:]
		for len(rest) > 0 {
			f, n, ok := parseFrame(rest)
			if !ok {
				if !last {
					return nil, fmt.Errorf("%w: %s: bad frame at offset %d", ErrCorrupt, path, off)
				}
				sc.torn = true
				if repair {
					if err := os.Truncate(path, off); err != nil {
						return nil, err
					}
				}
				rest = nil
				break
			}
			if f.seq != sc.nextSeq {
				return nil, fmt.Errorf("%w: %s: frame seq %d, want %d", ErrCorrupt, path, f.seq, sc.nextSeq)
			}
			sc.chain = chainNext(sc.chain, rest[:n])
			sc.nextSeq++
			sc.frames = append(sc.frames, scannedFrame{
				frame: f, seg: segIndex, path: path, off: off, chainAfter: sc.chain,
			})
			off += int64(n)
			rest = rest[n:]
		}
	}
	return sc, nil
}

// crossCut enforces cross-shard atomicity: a cross-shard commit is applied
// only if its frame is present in every participant's intact prefix. Each
// shard's frame list is cut at its first incomplete cross frame — everything
// after it might have serially depended on the lost commit, so the whole
// suffix goes, keeping the recovered state reachable by a serial prefix of
// committed transactions. Cutting can orphan further cross frames on other
// shards, so the cut iterates to a fixpoint (monotone, hence terminating).
// Returns the number of intact frames discarded.
func crossCut(scans []*shardScan) uint64 {
	var cut uint64
	for {
		// Which shards currently hold each cross commit?
		have := make(map[uint64]map[int]bool)
		for s, sc := range scans {
			for _, f := range sc.frames {
				if f.crossID != 0 {
					m := have[f.crossID]
					if m == nil {
						m = make(map[int]bool)
						have[f.crossID] = m
					}
					m[s] = true
				}
			}
		}
		changed := false
		for _, sc := range scans {
			for i, f := range sc.frames {
				if f.crossID == 0 {
					continue
				}
				complete := true
				for _, p := range f.parts {
					if p < 0 || p >= len(scans) || !have[f.crossID][p] {
						complete = false
						break
					}
				}
				if !complete {
					cut += uint64(len(sc.frames) - i)
					sc.frames = sc.frames[:i]
					sc.cutValid = true
					sc.cutPath, sc.cutOff, sc.cutSeg = f.path, f.off, f.seg
					changed = true
					break
				}
			}
		}
		if !changed {
			return cut
		}
	}
}

// repairCut physically truncates a shard's log at the recorded cross-cut
// position, removes any later segments, and rewinds the reopen state (next
// segment/sequence and chain value) to the surviving prefix.
func (sc *shardScan) repairCut(dir string) error {
	if !sc.cutValid {
		return nil
	}
	if err := os.Truncate(sc.cutPath, sc.cutOff); err != nil {
		return err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	keep := filepath.Base(sc.cutPath)
	for _, e := range ents {
		if !e.IsDir() && e.Name() > keep {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	sc.nextSeg = sc.cutSeg + 1
	if n := len(sc.frames); n > 0 {
		last := sc.frames[n-1]
		sc.nextSeq = last.seq + 1
		sc.chain = last.chainAfter
	} else {
		sc.nextSeq = 0
		sc.chain = chainVal{}
	}
	return nil
}

// replay folds every surviving frame into the value map, re-evaluating fact
// records against the rebuilt prefix state. Shards replay independently:
// each variable lives on exactly one shard, so all records touching it sit
// in that shard's log in serial commit order; cross-shard frames carry only
// their shard's record subset.
func replay(scans []*shardScan, rs *RecoveredState) error {
	crossSeen := make(map[uint64]bool)
	for s, sc := range scans {
		for _, f := range sc.frames {
			rs.Frames++
			if f.crossID != 0 && !crossSeen[f.crossID] {
				crossSeen[f.crossID] = true
				rs.CrossApplied++
			}
			for _, r := range f.recs {
				switch r.Op {
				case OpWrite:
					rs.Vals[r.Key] = RecoveredVal{Val: r.Val, Anchored: true}
				case OpInc:
					rv := rs.Vals[r.Key]
					rv.Val += r.Val
					rs.Vals[r.Key] = rv
				case OpFact:
					// A fact only verifies once a write anchored the key:
					// without the anchor the base value is unknown here.
					rv, ok := rs.Vals[r.Key]
					if !ok || !rv.Anchored {
						continue
					}
					rs.FactsChecked++
					op := core.Op(r.Aux &^ FactHeld)
					if op.Eval(rv.Val, r.Val) != (r.Aux&FactHeld != 0) {
						return fmt.Errorf("%w: shard %d seq %d: logged fact on key %d flipped on replay", ErrCorrupt, s, f.seq, r.Key)
					}
				default:
					return fmt.Errorf("%w: shard %d seq %d: unknown opcode %d", ErrCorrupt, s, f.seq, r.Op)
				}
			}
		}
	}
	return nil
}

// recoverScan is the shared engine of Recover (read-only) and Open
// (repairing): scan every shard, cut incomplete cross commits, replay.
func recoverScan(dir string, repair bool) ([]*shardScan, *RecoveredState, error) {
	nshards, err := readManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	scans := make([]*shardScan, nshards)
	for s := range scans {
		sc, err := scanShard(shardDir(dir, s), repair)
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		scans[s] = sc
	}
	rs := &RecoveredState{Shards: nshards, Vals: make(map[uint64]RecoveredVal)}
	for _, sc := range scans {
		if sc.torn {
			rs.TornShards++
		}
	}
	rs.CutFrames = crossCut(scans)
	if repair {
		for s, sc := range scans {
			if err := sc.repairCut(shardDir(dir, s)); err != nil {
				return nil, nil, fmt.Errorf("shard %d: %w", s, err)
			}
		}
	}
	if err := replay(scans, rs); err != nil {
		return nil, nil, err
	}
	return scans, rs, nil
}

// Recover replays the log directory read-only and returns the recovered
// state without modifying any file (the inspection entry point; Open is the
// repairing one).
func Recover(dir string) (*RecoveredState, error) {
	_, rs, err := recoverScan(dir, false)
	return rs, err
}

func shardDir(dir string, s int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", s))
}
