package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"semstm/internal/core"
)

func openT(t *testing.T, dir string, nshards int, opt Options) *Set {
	t.Helper()
	s, err := Open(dir, nshards, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// TestRoundTrip logs writes, increments, and facts across two shards and
// replays them: writes anchor absolute values, bare increments stay deltas
// resolved against the caller's initial value.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 2, Options{Policy: SyncAlways})
	if err := s.LogSingle(0, []Record{
		{Op: OpWrite, Key: 1, Val: 100},
		{Op: OpInc, Key: 1, Val: 5},
		FactRecord(1, core.OpGT, 50, true),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.LogSingle(1, []Record{{Op: OpInc, Key: 2, Val: -7}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Frames != 2 || rs.TornShards != 0 || rs.CutFrames != 0 {
		t.Fatalf("accounting: %+v", rs)
	}
	if got := rs.Resolve(1, 0); got != 105 {
		t.Fatalf("key 1: got %d, want 105", got)
	}
	if got := rs.Resolve(2, 1000); got != 993 {
		t.Fatalf("key 2: got %d, want 993 (initial+delta)", got)
	}
	if got := rs.Resolve(3, 42); got != 42 {
		t.Fatalf("unlogged key: got %d, want 42", got)
	}
	if rs.FactsChecked != 1 {
		t.Fatalf("facts checked: %d, want 1", rs.FactsChecked)
	}
}

// TestReopenExtendsChain closes and reopens the set twice; each generation
// appends into a fresh segment that must extend the verified chain.
func TestReopenExtendsChain(t *testing.T) {
	dir := t.TempDir()
	for round := int64(0); round < 3; round++ {
		s := openT(t, dir, 1, Options{Policy: SyncAlways})
		if err := s.LogSingle(0, []Record{{Op: OpInc, Key: 9, Val: 1}}); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := rs.Resolve(9, 0); got != 3 {
		t.Fatalf("key 9: got %d, want 3", got)
	}
	if rs.Frames != 3 {
		t.Fatalf("frames: %d, want 3", rs.Frames)
	}
}

// TestGroupCommit hammers one shard from many goroutines and checks every
// frame survives and the batcher actually grouped (batches < frames would
// be flaky to assert under scheduling, so only durability is required; the
// stats must at least be consistent).
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1, Options{Policy: SyncAlways})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.LogSingle(0, []Record{{Op: OpInc, Key: 7, Val: 1}}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Appends != workers*per || st.Batches == 0 || st.Batches > st.Appends {
		t.Fatalf("stats: %+v", st)
	}
	if st.Fsyncs != st.Batches {
		t.Fatalf("always policy must fsync per batch: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := rs.Resolve(7, 0); got != workers*per {
		t.Fatalf("key 7: got %d, want %d", got, workers*per)
	}
}

// TestSegmentRoll forces many tiny segments and checks the chain verifies
// across all of them.
func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1, Options{Policy: SyncNone, SegmentBytes: 256})
	for i := 0; i < 100; i++ {
		if err := s.LogSingle(0, []Record{{Op: OpInc, Key: 3, Val: 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := os.ReadDir(shardDir(dir, 0))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := rs.Resolve(3, 0); got != 200 {
		t.Fatalf("key 3: got %d, want 200", got)
	}
}

// lastSegment returns the path of the shard's newest segment file.
func lastSegment(t *testing.T, dir string, shard int) string {
	t.Helper()
	ents, err := os.ReadDir(shardDir(dir, shard))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(shardDir(dir, shard), ents[len(ents)-1].Name())
}

// TestTornTailTruncated hand-tears the last frame and checks recovery drops
// exactly it, and that a repairing reopen can append beyond the scar.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1, Options{Policy: SyncAlways})
	for i := int64(1); i <= 3; i++ {
		if err := s.LogSingle(0, []Record{{Op: OpWrite, Key: 4, Val: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir, 0)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.TornShards != 1 || rs.Frames != 2 {
		t.Fatalf("accounting: %+v", rs)
	}
	if got := rs.Resolve(4, 0); got != 2 {
		t.Fatalf("key 4: got %d, want 2 (third write torn)", got)
	}
	// Reopen repairs and extends.
	s = openT(t, dir, 1, Options{Policy: SyncAlways})
	if got := s.Recovered().Resolve(4, 0); got != 2 {
		t.Fatalf("reopen: got %d, want 2", got)
	}
	if err := s.LogSingle(0, []Record{{Op: OpWrite, Key: 4, Val: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err = Recover(dir)
	if err != nil {
		t.Fatalf("Recover after repair: %v", err)
	}
	if got := rs.Resolve(4, 0); got != 9 {
		t.Fatalf("key 4 after repair: got %d, want 9", got)
	}
}

// TestInteriorCorruptionRefused flips a byte inside a sealed (non-final)
// segment: that can never be a torn tail — tears only happen at the very
// end of the log — so recovery must refuse rather than truncate committed
// history. (A flipped byte in the final segment is indistinguishable from a
// torn write and is truncated as one; TestTornTailTruncated covers it.)
func TestInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1, Options{Policy: SyncAlways})
	for i := int64(0); i < 4; i++ {
		if err := s.LogSingle(0, []Record{{Op: OpWrite, Key: 5, Val: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen once so a second segment exists and the first is interior.
	s = openT(t, dir, 1, Options{Policy: SyncAlways})
	if err := s.LogSingle(0, []Record{{Op: OpWrite, Key: 5, Val: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(shardDir(dir, 0), segName(0))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[segHeaderBytes+frameHdrBytes+10] ^= 0xFF // first frame's payload
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestCrossCommitComplete logs a proper cross-shard commit and checks both
// subsets replay.
func TestCrossCommitComplete(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 2, Options{Policy: SyncAlways})
	err := s.LogCross([]int{0, 1}, [][]Record{
		{{Op: OpInc, Key: 10, Val: -3}},
		{{Op: OpInc, Key: 20, Val: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.CrossApplied != 1 || rs.CutFrames != 0 {
		t.Fatalf("accounting: %+v", rs)
	}
	if rs.Resolve(10, 100)+rs.Resolve(20, 100) != 200 {
		t.Fatalf("cross transfer not conserved: %+v", rs.Vals)
	}
}

// TestCrossCommitIncompleteCut writes a cross frame to only one participant
// (as a crash between the per-shard appends would) and checks the fixpoint
// cut discards it and everything after it on that shard.
func TestCrossCommitIncompleteCut(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 2, Options{Policy: SyncAlways})
	// A good single-shard frame first, then the orphaned cross frame, then
	// another single-shard frame that must be cut with it.
	if err := s.LogSingle(0, []Record{{Op: OpWrite, Key: 30, Val: 1}}); err != nil {
		t.Fatal(err)
	}
	id := s.crossCtr.Add(1)
	if err := s.logs[0].Append(id, []int{0, 1}, []Record{{Op: OpWrite, Key: 30, Val: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.LogSingle(0, []Record{{Op: OpWrite, Key: 30, Val: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.CutFrames != 2 {
		t.Fatalf("cut frames: %d, want 2 (orphan + dependent suffix)", rs.CutFrames)
	}
	if got := rs.Resolve(30, 0); got != 1 {
		t.Fatalf("key 30: got %d, want 1 (pre-orphan prefix)", got)
	}
	// The repairing reopen must land on the same prefix and keep appending.
	s = openT(t, dir, 2, Options{Policy: SyncAlways})
	if got := s.Recovered().Resolve(30, 0); got != 1 {
		t.Fatalf("reopen: got %d, want 1", got)
	}
	if err := s.LogSingle(0, []Record{{Op: OpWrite, Key: 30, Val: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if rs, err = Recover(dir); err != nil || rs.Resolve(30, 0) != 4 {
		t.Fatalf("after repair: val=%d err=%v", rs.Resolve(30, 0), err)
	}
}

// TestCrashTornWrite arms the torn-write crash: the dying batch persists a
// strict prefix, the log refuses further appends with CrashedError, and
// recovery truncates to the last whole frame.
func TestCrashTornWrite(t *testing.T) {
	dir := t.TempDir()
	plan := core.NewFaultPlan(1).WithCrash(core.CrashTornWrite, 3)
	s := openT(t, dir, 1, Options{Policy: SyncAlways, Plan: plan})
	var crashed int
	for i := int64(1); i <= 5; i++ {
		err := s.LogSingle(0, []Record{{Op: OpWrite, Key: 40, Val: i}})
		var ce *CrashedError
		if errors.As(err, &ce) {
			if ce.Site != core.CrashTornWrite {
				t.Fatalf("crash site: %v", ce.Site)
			}
			crashed++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if crashed != 3 || !plan.Crashed() {
		t.Fatalf("crashed appends: %d, want 3 (batch 3 and everything after)", crashed)
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.TornShards != 1 || rs.Frames != 2 {
		t.Fatalf("accounting: %+v", rs)
	}
	if got := rs.Resolve(40, 0); got != 2 {
		t.Fatalf("key 40: got %d, want 2", got)
	}
}

// TestCrashPreFsync arms the pre-fsync crash under the interval policy with
// a huge interval: no batch ever fsyncs, so the crash loses everything back
// to the segment header — and recovery must still verify cleanly.
func TestCrashPreFsync(t *testing.T) {
	dir := t.TempDir()
	plan := core.NewFaultPlan(1).WithCrash(core.CrashPreFsync, 3)
	s := openT(t, dir, 1, Options{Policy: SyncInterval, Interval: 1 << 40, Plan: plan})
	var crashed bool
	for i := int64(1); i <= 5; i++ {
		err := s.LogSingle(0, []Record{{Op: OpWrite, Key: 50, Val: i}})
		var ce *CrashedError
		if errors.As(err, &ce) {
			crashed = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !crashed {
		t.Fatal("crash never fired")
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Frames != 0 {
		t.Fatalf("frames: %d, want 0 (nothing was ever fsynced)", rs.Frames)
	}
	if got := rs.Resolve(50, 7); got != 7 {
		t.Fatalf("key 50: got %d, want initial", got)
	}
}

// TestInjectedFailureLatches checks the degrade hook: after InjectFailure
// every append returns the latched error.
func TestInjectedFailureLatches(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 2, Options{Policy: SyncNone})
	boom := errors.New("disk on fire")
	s.InjectFailure(boom)
	if err := s.LogSingle(0, []Record{{Op: OpInc, Key: 1, Val: 1}}); !errors.Is(err, boom) {
		t.Fatalf("want latched error, got %v", err)
	}
	if err := s.LogCross([]int{0, 1}, [][]Record{{}, {}}); !errors.Is(err, boom) {
		t.Fatalf("cross: want latched error, got %v", err)
	}
	s.Close()
}

// TestManifestMismatch pins the shard count.
func TestManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 2, Options{})
	s.Close()
	if _, err := Open(dir, 4, Options{}); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("want ErrShardMismatch, got %v", err)
	}
}

// TestFactFlipRefused hand-crafts a log whose fact contradicts its writes:
// replay must refuse it as corruption.
func TestFactFlipRefused(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1, Options{Policy: SyncAlways})
	if err := s.LogSingle(0, []Record{
		{Op: OpWrite, Key: 60, Val: 10},
		FactRecord(60, core.OpGT, 100, true), // 10 > 100 claimed true
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on fact flip, got %v", err)
	}
}
