package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"semstm/internal/core"
)

// SyncPolicy selects how a committed frame becomes durable.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs every group-commit batch before any committer in it
	// returns: a committed transaction survives any crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs off the commit path: committers return once their
	// frame is written, and a background flusher fsyncs the log at most once
	// per Interval while it is dirty, so a crash loses at most the unsynced
	// window — the classic group-commit trade (the walwriter design). The
	// fsync stall lands on the flusher, not on any committer.
	SyncInterval
	// SyncNone never fsyncs on the commit path (only on segment roll and
	// Close): durability is whatever the OS page cache survives.
	SyncNone
)

// String returns the stable label used by the bench schema and flags.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return "invalid"
	}
}

// ParseSyncPolicy parses the stable labels.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q", s)
}

// Options configures a log set.
type Options struct {
	// Policy is the fsync policy; Interval is its window for SyncInterval.
	// When unset it defaults to 2ms scaled by the shard count: every shard
	// log runs its own background flusher against the same device, so a
	// fixed window would multiply the set-wide fsync rate by the shard
	// count — the scaled default keeps it constant (~500 fsyncs/s) however
	// the log is partitioned.
	Policy   SyncPolicy
	Interval time.Duration
	// SegmentBytes is the roll threshold (default 4 MiB). Segments roll only
	// at batch boundaries, so a batch may overshoot the threshold.
	SegmentBytes int64
	// Plan arms deterministic crash injection (core.FaultPlan.WithCrash) on
	// the write path; nil runs crash-free.
	Plan *core.FaultPlan
}

func (o *Options) fill(nshards int) {
	if o.Interval <= 0 {
		if nshards < 1 {
			nshards = 1
		}
		o.Interval = time.Duration(nshards) * 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
}

// Log is one shard's segmented redo log with a group-commit batcher.
//
// Concurrency protocol: committers append their encoded frame to the pending
// buffer under mu (sequence number, CRC, and chain value are assigned there,
// so the chain is linear no matter how batches form) and note the batch
// generation that will carry it (gen+1). The first committer to find no
// flush in progress becomes the leader: it takes the whole pending buffer as
// batch gen+1, drops mu, writes the batch with one Write call (rolling the
// segment first if needed), fsyncs per policy, re-acquires mu, publishes
// writtenGen/syncedGen, and broadcasts. Followers wait on the condition
// variable until their generation is written (and synced, under SyncAlways).
// One fsync thus covers every commit that arrived during the previous
// batch's write — the batcher amortization of the SNIPPETS.md audit-log
// exemplar, applied to fsync instead of ledger round-trips.
type Log struct {
	dir   string
	shard int
	opt   Options

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File

	segIndex  uint64 // index of the open segment
	fileOff   int64  // append offset in f (leader-only outside mu)
	syncedOff int64  // offset covered by the last fsync of f (leader-only)

	seq        uint64   // next frame sequence number
	chain      chainVal // chain value after the last encoded frame
	takenChain chainVal // chain value after the last frame handed to a batch

	pending     []byte // encoded frames awaiting a leader
	pendingOffs []int  // frame start offsets within pending
	spare       []byte // recycled batch buffer
	spareOffs   []int

	gen        uint64 // generation of the last batch taken by a leader
	writtenGen uint64 // last generation fully written
	syncedGen  uint64 // last generation fsynced
	flushing   bool
	closed     bool
	stop       chan struct{} // stops the SyncInterval background flusher
	err        error         // latched terminal failure (I/O error or *CrashedError)

	// group-commit statistics, under mu
	frames  uint64
	batches uint64
	fsyncs  uint64
}

// newLog opens shard s's log for appending, starting a fresh segment that
// continues the recovered chain (segIndex is the next free index, seq and
// prev the scan's end state).
func newLog(dir string, shard int, segIndex, seq uint64, prev chainVal, opt Options) (*Log, error) {
	l := &Log{
		dir:        dir,
		shard:      shard,
		opt:        opt,
		segIndex:   segIndex,
		seq:        seq,
		chain:      prev,
		takenChain: prev,
		stop:       make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	if err := l.openSegment(segIndex, seq, prev); err != nil {
		return nil, err
	}
	if opt.Policy == SyncInterval {
		go l.syncLoop()
	}
	return l, nil
}

// openSegment creates segment segIndex, writes and fsyncs its header, and
// fsyncs the directory so the file itself survives a crash.
func (l *Log) openSegment(segIndex, startSeq uint64, prev chainVal) error {
	path := filepath.Join(l.dir, segName(segIndex))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSegHeader(segIndex, startSeq, prev)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.fileOff = segHeaderBytes
	l.syncedOff = segHeaderBytes
	return nil
}

func segName(i uint64) string { return fmt.Sprintf("seg-%08d.wal", i) }

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Append logs one frame and blocks until it is durable per the policy
// (written for interval/none, written+fsynced for always). It returns the
// latched error if the log has failed or crashed.
func (l *Log) Append(crossID uint64, parts []int, recs []Record) error {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	start := len(l.pending)
	l.pending = appendFrame(l.pending, l.seq, crossID, parts, recs)
	l.seq++
	l.chain = chainNext(l.chain, l.pending[start:])
	l.pendingOffs = append(l.pendingOffs, start)
	myGen := l.gen + 1
	for {
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return err
		}
		if l.writtenGen >= myGen && (l.opt.Policy != SyncAlways || l.syncedGen >= myGen) {
			l.mu.Unlock()
			return nil
		}
		if !l.flushing && l.gen < myGen {
			l.flush()
			continue
		}
		l.cond.Wait()
	}
}

// flush runs one batch as leader. Called and returns with mu held.
func (l *Log) flush() {
	l.flushing = true
	l.gen++
	g := l.gen
	buf, offs := l.pending, l.pendingOffs
	l.pending, l.pendingOffs = l.spare[:0], l.spareOffs[:0]
	l.spare, l.spareOffs = nil, nil
	prevChain := l.takenChain
	l.takenChain = l.chain
	startSeq := l.seq - uint64(len(offs))
	sync := l.opt.Policy == SyncAlways
	l.batches++
	l.frames += uint64(len(offs))

	l.mu.Unlock()
	synced, err := l.writeBatch(buf, offs, sync, prevChain, startSeq)
	l.mu.Lock()

	if err != nil {
		if l.err == nil {
			l.err = err
		}
	} else {
		l.writtenGen = g
		if synced {
			l.syncedGen = g
			l.fsyncs++
		}
		l.spare, l.spareOffs = buf, offs // recycle
	}
	l.flushing = false
	l.cond.Broadcast()
}

// syncLoop is the SyncInterval background flusher: at most once per Interval
// it fsyncs the log if any written batch is not yet durable. It borrows the
// flushing flag as its critical section — no leader writes or rolls while an
// fsync is in flight, which is what makes fileOff/syncedOff stable under it —
// so a committer that arrives mid-fsync queues for the next batch exactly as
// it would behind another committer's write.
func (l *Log) syncLoop() {
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
		}
		l.mu.Lock()
		for l.flushing {
			l.cond.Wait()
		}
		if l.closed || l.err != nil || l.f == nil {
			l.mu.Unlock()
			return
		}
		if l.syncedGen >= l.writtenGen {
			l.mu.Unlock()
			continue
		}
		l.flushing = true
		g := l.writtenGen
		f := l.f
		l.mu.Unlock()
		err := f.Sync()
		l.mu.Lock()
		if err != nil {
			if l.err == nil {
				l.err = err
			}
		} else {
			l.syncedGen = g
			l.syncedOff = l.fileOff
			l.fsyncs++
		}
		l.flushing = false
		l.cond.Broadcast()
		l.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// writeBatch performs the leader's I/O: roll if the segment is full, then
// one Write (or a torn prefix of it, under crash injection), then the fsync
// the policy asked for. Only the current leader touches fileOff/syncedOff.
func (l *Log) writeBatch(buf []byte, offs []int, sync bool, prevChain chainVal, startSeq uint64) (bool, error) {
	if l.fileOff+int64(len(buf)) > l.opt.SegmentBytes && l.fileOff > segHeaderBytes {
		if err := l.roll(prevChain, startSeq); err != nil {
			return false, err
		}
	}
	plan := l.opt.Plan
	if plan != nil && plan.CrashHit(core.CrashTornWrite) {
		// Simulated death mid-write: a strict prefix of the batch reaches
		// the disk, cutting the last frame in half, and even that prefix is
		// made durable — the worst torn tail recovery can face.
		cut := offs[len(offs)-1] + (len(buf)-offs[len(offs)-1])/2
		if cut >= len(buf) {
			cut = len(buf) - 1
		}
		l.f.Write(buf[:cut])
		l.f.Sync()
		return false, &CrashedError{Site: core.CrashTornWrite}
	}
	if _, err := l.f.Write(buf); err != nil {
		return false, err
	}
	l.fileOff += int64(len(buf))
	if plan != nil && plan.CrashHit(core.CrashPreFsync) {
		// Simulated death before the fsync: everything the page cache held
		// since the last fsync evaporates. Model it by truncating back to
		// the last synced offset — committers past syncedOff were told
		// "written", never "durable" (interval/none policies admit this).
		l.f.Truncate(l.syncedOff)
		l.f.Sync()
		return false, &CrashedError{Site: core.CrashPreFsync}
	}
	if sync {
		if err := l.f.Sync(); err != nil {
			return false, err
		}
		l.syncedOff = l.fileOff
		return true, nil
	}
	return false, nil
}

// roll seals the open segment (fsync regardless of policy — rolls are rare)
// and opens the next one.
func (l *Log) roll(prevChain chainVal, startSeq uint64) error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.segIndex++
	return l.openSegment(l.segIndex, startSeq, prevChain)
}

// fail latches err as the log's terminal state (test hook for the degrade
// path; real I/O errors latch through the same field).
func (l *Log) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// close fsyncs and closes the open segment. Pending frames have necessarily
// been flushed — every Append waits for its batch — so close only seals,
// after stopping the background flusher and waiting out any fsync it (or a
// straggling leader) has in flight.
func (l *Log) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if !l.closed {
		l.closed = true
		close(l.stop)
	}
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	if l.err == nil {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// snapshotStats returns (frames, batches, fsyncs).
func (l *Log) snapshotStats() (uint64, uint64, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frames, l.batches, l.fsyncs
}
