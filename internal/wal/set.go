package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// Set is the durable runtime's log set: one Log per shard plus the
// engine-wide cross-commit id counter. It is the object the sharded commit
// path drives (shard.Logger is its method set).
type Set struct {
	dir       string
	logs      []*Log
	crossCtr  atomic.Uint64
	recovered *RecoveredState
}

// SetStats aggregates the group-commit accounting across shards, the
// numbers the v7 bench schema exports per durable cell.
type SetStats struct {
	Appends uint64  // frames appended
	Batches uint64  // group-commit batches written
	Fsyncs  uint64  // fsyncs issued on the commit path
	Group   float64 // mean frames per batch
}

// Open opens (creating or recovering) the log set under dir for nshards
// shards. An existing directory is scanned and repaired — torn tails
// truncated, incomplete cross-shard commits cut — and the replayed state is
// available via Recovered; each shard then continues appending into a fresh
// segment extending the surviving hash chain. The shard count is pinned by
// a manifest written at creation; reopening with a different count fails
// with ErrShardMismatch.
func Open(dir string, nshards int, opt Options) (*Set, error) {
	if nshards < 1 {
		return nil, fmt.Errorf("wal: invalid shard count %d", nshards)
	}
	opt.fill(nshards)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := ensureManifest(dir, nshards); err != nil {
		return nil, err
	}
	scans, rs, err := recoverScan(dir, true)
	if err != nil {
		return nil, err
	}
	s := &Set{dir: dir, logs: make([]*Log, nshards), recovered: rs}
	for i := range s.logs {
		sd := shardDir(dir, i)
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return nil, err
		}
		sc := scans[i]
		l, err := newLog(sd, i, sc.nextSeg, sc.nextSeq, sc.chain, opt)
		if err != nil {
			for _, open := range s.logs {
				if open != nil {
					open.close()
				}
			}
			return nil, err
		}
		s.logs[i] = l
	}
	// Cross ids must never repeat across process lifetimes: an id reused
	// after recovery could make an old orphaned frame look complete. Resume
	// above every id the surviving logs carry.
	var maxCross uint64
	for _, sc := range scans {
		for _, f := range sc.frames {
			if f.crossID > maxCross {
				maxCross = f.crossID
			}
		}
	}
	s.crossCtr.Store(maxCross)
	return s, nil
}

// Recovered returns the state replayed when the set was opened.
func (s *Set) Recovered() *RecoveredState { return s.recovered }

// NumShards reports the manifest shard count.
func (s *Set) NumShards() int { return len(s.logs) }

// LogSingle appends one single-shard commit's records to shard's log and
// blocks until they are durable per the policy.
func (s *Set) LogSingle(shard int, recs []Record) error {
	return s.logs[shard].Append(0, nil, recs)
}

// LogCross appends one cross-shard commit: each participant's log receives
// that shard's record subset in a frame tagged with a fresh engine-wide
// cross id and the full participant list. Recovery applies the commit only
// if every participant's frame survived (crossCut), so a crash between the
// per-shard appends — or an fsync loss on any one shard — cannot publish a
// partial commit. parts must be ascending; recs[i] pairs with parts[i].
func (s *Set) LogCross(parts []int, recs [][]Record) error {
	id := s.crossCtr.Add(1)
	for i, p := range parts {
		if err := s.logs[p].Append(id, parts, recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// InjectFailure latches err as every shard log's terminal error — the
// deterministic stand-in for a dying disk that the degrade-path tests use.
func (s *Set) InjectFailure(err error) {
	for _, l := range s.logs {
		l.fail(err)
	}
}

// Stats sums the per-shard group-commit counters.
func (s *Set) Stats() SetStats {
	var st SetStats
	for _, l := range s.logs {
		f, b, fs := l.snapshotStats()
		st.Appends += f
		st.Batches += b
		st.Fsyncs += fs
	}
	if st.Batches > 0 {
		st.Group = float64(st.Appends) / float64(st.Batches)
	}
	return st
}

// Close seals every shard's log (final fsync + close). A crashed log keeps
// its frozen bytes untouched.
func (s *Set) Close() error {
	var first error
	for _, l := range s.logs {
		if err := l.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// The manifest pins the shard count of a log directory (the record layout
// is per-shard, so reopening at a different width would misroute keys).
const manifestName = "manifest"

func ensureManifest(dir string, nshards int) error {
	path := filepath.Join(dir, manifestName)
	if b, err := os.ReadFile(path); err == nil {
		n, perr := parseManifest(string(b))
		if perr != nil {
			return perr
		}
		if n != nshards {
			return fmt.Errorf("%w: manifest %d, requested %d", ErrShardMismatch, n, nshards)
		}
		return nil
	} else if !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "swal v1\nshards %d\n", nshards); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(dir)
}

func readManifest(dir string) (int, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, err
	}
	return parseManifest(string(b))
}

func parseManifest(s string) (int, error) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 2 || lines[0] != "swal v1" {
		return 0, fmt.Errorf("%w: malformed manifest", ErrCorrupt)
	}
	var n int
	if _, err := fmt.Sscanf(lines[1], "shards %d", &n); err != nil || n < 1 {
		return 0, fmt.Errorf("%w: malformed manifest", ErrCorrupt)
	}
	return n, nil
}
