// Package opacity provides a black-box serializability checker for the
// semantic TM API. It records the observable events of committed
// transactions — reads with their results, writes, semantic conditionals
// with their outcomes, and increments — and searches for a sequential order
// that explains every observation under the paper's sequential
// specification of a register (Section 5):
//
//   - a read returns v + Σd, where v is the latest preceding write and Σd
//     the increments since it;
//   - a cmp returns the boolean value of (v Op operand) evaluated against
//     that same state (for the address–address form, against both
//     registers' states).
//
// Committed transactions of an opaque history are serializable, so a failed
// search is a correctness bug; the deterministic interleaving tests in the
// algorithm packages cover the aborted-transaction side of opacity.
package opacity

import (
	"fmt"

	"semstm/internal/core"
)

// Kind is an event kind.
type Kind uint8

// The four observable operation kinds.
const (
	KindRead Kind = iota
	KindWrite
	KindCmp
	KindInc
)

// Event is one observable operation of a committed transaction.
type Event struct {
	Kind Kind
	Var  int     // register index
	Var2 int     // second register for address–address cmp, else -1
	Op   core.Op // comparison operator for KindCmp
	Arg  int64   // written value, inc delta, or cmp operand
	Ret  int64   // read result; 1/0 cmp outcome
}

// TxLog is the event sequence of one committed transaction.
type TxLog struct {
	Events []Event
}

// replay applies the transaction to state, reporting whether every
// observation matches the sequential specification. state is mutated; the
// caller passes a scratch copy.
func (l *TxLog) replay(state []int64) bool {
	for _, e := range l.Events {
		switch e.Kind {
		case KindRead:
			if state[e.Var] != e.Ret {
				return false
			}
		case KindWrite:
			state[e.Var] = e.Arg
		case KindInc:
			state[e.Var] += e.Arg
		case KindCmp:
			operand := e.Arg
			if e.Var2 >= 0 {
				operand = state[e.Var2]
			}
			if e.Op.Eval(state[e.Var], operand) != (e.Ret != 0) {
				return false
			}
		}
	}
	return true
}

// CheckRounds verifies round-structured histories: the transactions within
// one round ran concurrently, and every round completed before the next
// began. It searches, with backtracking across rounds, for per-round
// serialization orders that explain all observations starting from the
// initial register values. It returns nil when such orders exist.
func CheckRounds(initial []int64, rounds [][]TxLog) error {
	state := append([]int64(nil), initial...)
	if !solve(state, rounds, 0) {
		return fmt.Errorf("opacity: no serialization explains the %d-round history", len(rounds))
	}
	return nil
}

// solve finds a serialization of rounds[r:] starting from state.
func solve(state []int64, rounds [][]TxLog, r int) bool {
	if r == len(rounds) {
		return true
	}
	round := rounds[r]
	used := make([]bool, len(round))
	return permute(state, rounds, r, round, used, len(round))
}

// permute extends the current round's order by one transaction at a time,
// replaying as it goes so mismatches prune early.
func permute(state []int64, rounds [][]TxLog, r int, round []TxLog, used []bool, left int) bool {
	if left == 0 {
		return solve(state, rounds, r+1)
	}
	for i := range round {
		if used[i] {
			continue
		}
		next := append([]int64(nil), state...)
		if !round[i].replay(next) {
			continue
		}
		used[i] = true
		if permute(next, rounds, r, round, used, left-1) {
			return true
		}
		used[i] = false
	}
	return false
}

// Recorder builds a TxLog from inside a transaction body. Reset it at the
// top of the body so aborted attempts leave no trace.
type Recorder struct {
	log TxLog
}

// Reset clears the recorder for a fresh attempt.
func (r *Recorder) Reset() { r.log.Events = r.log.Events[:0] }

// Log returns a copy of the recorded events.
func (r *Recorder) Log() TxLog {
	return TxLog{Events: append([]Event(nil), r.log.Events...)}
}

// Read records a read observation.
func (r *Recorder) Read(v int, ret int64) {
	r.log.Events = append(r.log.Events, Event{Kind: KindRead, Var: v, Var2: -1, Ret: ret})
}

// Write records a write.
func (r *Recorder) Write(v int, val int64) {
	r.log.Events = append(r.log.Events, Event{Kind: KindWrite, Var: v, Var2: -1, Arg: val})
}

// Inc records an increment.
func (r *Recorder) Inc(v int, delta int64) {
	r.log.Events = append(r.log.Events, Event{Kind: KindInc, Var: v, Var2: -1, Arg: delta})
}

// Cmp records an address–value conditional and its outcome.
func (r *Recorder) Cmp(v int, op core.Op, operand int64, ret bool) {
	e := Event{Kind: KindCmp, Var: v, Var2: -1, Op: op, Arg: operand}
	if ret {
		e.Ret = 1
	}
	r.log.Events = append(r.log.Events, e)
}

// CmpVars records an address–address conditional and its outcome.
func (r *Recorder) CmpVars(a int, op core.Op, b int, ret bool) {
	e := Event{Kind: KindCmp, Var: a, Var2: b, Op: op}
	if ret {
		e.Ret = 1
	}
	r.log.Events = append(r.log.Events, e)
}
