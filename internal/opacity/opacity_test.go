package opacity

import (
	"math/rand"
	"sync"
	"testing"

	"semstm/internal/core"
	"semstm/stm"
)

func TestReplaySequentialSpec(t *testing.T) {
	// read returns latest write plus increments since it.
	l := TxLog{Events: []Event{
		{Kind: KindWrite, Var: 0, Var2: -1, Arg: 10},
		{Kind: KindInc, Var: 0, Var2: -1, Arg: 5},
		{Kind: KindInc, Var: 0, Var2: -1, Arg: -2},
		{Kind: KindRead, Var: 0, Var2: -1, Ret: 13},
		{Kind: KindCmp, Var: 0, Var2: -1, Op: core.OpGT, Arg: 12, Ret: 1},
		{Kind: KindCmp, Var: 0, Var2: -1, Op: core.OpGT, Arg: 13, Ret: 0},
	}}
	if !l.replay([]int64{0, 0}) {
		t.Fatal("legal log rejected")
	}
	bad := TxLog{Events: []Event{{Kind: KindRead, Var: 0, Var2: -1, Ret: 99}}}
	if bad.replay([]int64{0}) {
		t.Fatal("illegal read accepted")
	}
}

func TestReplayAddressAddress(t *testing.T) {
	l := TxLog{Events: []Event{
		{Kind: KindWrite, Var: 0, Var2: -1, Arg: 3},
		{Kind: KindWrite, Var: 1, Var2: -1, Arg: 7},
		{Kind: KindCmp, Var: 0, Var2: 1, Op: core.OpLT, Ret: 1},
		{Kind: KindCmp, Var: 1, Var2: 0, Op: core.OpLT, Ret: 0},
	}}
	if !l.replay([]int64{0, 0}) {
		t.Fatal("legal address-address log rejected")
	}
}

// TestCheckRoundsFindsOrder: two concurrent transactions whose observations
// only fit one order.
func TestCheckRoundsFindsOrder(t *testing.T) {
	// T1 writes x=1. T2 reads x=1 (so T1 must precede T2).
	t1 := TxLog{Events: []Event{{Kind: KindWrite, Var: 0, Var2: -1, Arg: 1}}}
	t2 := TxLog{Events: []Event{{Kind: KindRead, Var: 0, Var2: -1, Ret: 1}}}
	if err := CheckRounds([]int64{0}, [][]TxLog{{t2, t1}}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckRoundsRejectsImpossible: a circular observation no order explains.
func TestCheckRoundsRejectsImpossible(t *testing.T) {
	// T1: reads x=1, writes y=1. T2: reads y=1, writes x=1. Neither can go
	// first from x=y=0.
	t1 := TxLog{Events: []Event{
		{Kind: KindRead, Var: 0, Var2: -1, Ret: 1},
		{Kind: KindWrite, Var: 1, Var2: -1, Arg: 1},
	}}
	t2 := TxLog{Events: []Event{
		{Kind: KindRead, Var: 1, Var2: -1, Ret: 1},
		{Kind: KindWrite, Var: 0, Var2: -1, Arg: 1},
	}}
	if err := CheckRounds([]int64{0, 0}, [][]TxLog{{t1, t2}}); err == nil {
		t.Fatal("impossible history accepted")
	}
}

// TestCheckRoundsBacktracksAcrossRounds: the first round has two valid
// orders with different end states; only one is consistent with round two.
func TestCheckRoundsBacktracksAcrossRounds(t *testing.T) {
	w5 := TxLog{Events: []Event{{Kind: KindWrite, Var: 0, Var2: -1, Arg: 5}}}
	w9 := TxLog{Events: []Event{{Kind: KindWrite, Var: 0, Var2: -1, Arg: 9}}}
	// Round 2 observes 5, so round 1 must have ordered w9 before w5.
	r2 := TxLog{Events: []Event{{Kind: KindRead, Var: 0, Var2: -1, Ret: 5}}}
	if err := CheckRounds([]int64{0}, [][]TxLog{{w5, w9}, {r2}}); err != nil {
		t.Fatal(err)
	}
	// And observing 7 is impossible.
	bad := TxLog{Events: []Event{{Kind: KindRead, Var: 0, Var2: -1, Ret: 7}}}
	if err := CheckRounds([]int64{0}, [][]TxLog{{w5, w9}, {bad}}); err == nil {
		t.Fatal("impossible cross-round history accepted")
	}
}

// TestAlgorithmsSerializable is the main black-box check: random mixed
// workloads (reads, writes, cmps — both forms — and incs) run in concurrent
// rounds under every algorithm, and every round's committed observations
// must be serializable. A bug in validation, promotion, phase handling, or
// write-back shows up here as an unexplainable history.
func TestAlgorithmsSerializable(t *testing.T) {
	const (
		vars     = 4
		txPerRnd = 4
		rounds   = 120
		opsPerTx = 5
	)
	ops := []core.Op{core.OpEQ, core.OpNEQ, core.OpGT, core.OpGTE, core.OpLT, core.OpLTE}
	for _, algo := range stm.Algorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			rt := stm.New(algo)
			rt.SetYieldEvery(2) // maximize interleaving
			regs := stm.NewVars(vars, 0)
			history := make([][]TxLog, 0, rounds)
			for r := 0; r < rounds; r++ {
				logs := make([]TxLog, txPerRnd)
				var wg sync.WaitGroup
				for w := 0; w < txPerRnd; w++ {
					wg.Add(1)
					go func(w int, seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						// Pre-draw the operation script so retries replay it.
						type scripted struct {
							kind Kind
							v, b int
							op   core.Op
							arg  int64
						}
						script := make([]scripted, opsPerTx)
						for i := range script {
							script[i] = scripted{
								kind: Kind(rng.Intn(4)),
								v:    rng.Intn(vars),
								b:    rng.Intn(vars),
								op:   ops[rng.Intn(len(ops))],
								arg:  rng.Int63n(20) - 10,
							}
						}
						var rec Recorder
						rt.Atomically(func(tx *stm.Tx) {
							rec.Reset()
							for _, s := range script {
								switch s.kind {
								case KindRead:
									rec.Read(s.v, tx.Read(regs[s.v]))
								case KindWrite:
									tx.Write(regs[s.v], s.arg)
									rec.Write(s.v, s.arg)
								case KindInc:
									tx.Inc(regs[s.v], s.arg)
									rec.Inc(s.v, s.arg)
								case KindCmp:
									if s.arg%2 == 0 {
										rec.Cmp(s.v, s.op, s.arg, tx.Cmp(regs[s.v], s.op, s.arg))
									} else {
										rec.CmpVars(s.v, s.op, s.b, tx.CmpVars(regs[s.v], s.op, regs[s.b]))
									}
								}
							}
						})
						logs[w] = rec.Log()
					}(w, int64(r*txPerRnd+w+1))
				}
				wg.Wait()
				history = append(history, logs)
			}
			if err := CheckRounds(make([]int64, vars), history); err != nil {
				t.Fatal(err)
			}
		})
	}
}
