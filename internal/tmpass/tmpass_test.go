package tmpass

import (
	"testing"

	"semstm/internal/gimple"
	"semstm/internal/txlang"
)

func compile(t *testing.T, src string) *gimple.Program {
	t.Helper()
	prog, err := txlang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func countOps(f *gimple.Function) map[gimple.Opcode]int {
	m := map[gimple.Opcode]int{}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			m[in.Op]++
		}
	}
	return m
}

func TestMarkInstrumentsOnlyAtomic(t *testing.T) {
	prog := compile(t, `
shared x;
func f() {
	x = 1;         // outside: stays a plain store
	atomic { x = 2; }
	return x;      // outside: stays a plain load
}`)
	if _, err := Run(prog, Options{}); err != nil {
		t.Fatal(err)
	}
	ops := countOps(prog.Funcs["f"])
	if ops[gimple.OpStore] != 1 || ops[gimple.OpTMWrite] != 1 {
		t.Fatalf("stores: plain=%d tm=%d", ops[gimple.OpStore], ops[gimple.OpTMWrite])
	}
	if ops[gimple.OpLoad] != 1 || ops[gimple.OpTMRead] != 0 {
		t.Fatalf("loads: plain=%d tm=%d", ops[gimple.OpLoad], ops[gimple.OpTMRead])
	}
}

func TestMarkInstrumentsAcrossBlocks(t *testing.T) {
	prog := compile(t, `
shared x;
func f(n) {
	var i = 0;
	atomic {
		while (i < n) {
			x = x + 1;     // inside loop inside atomic
			i = i + 1;
		}
	}
	return 0;
}`)
	if _, err := Run(prog, Options{}); err != nil {
		t.Fatal(err)
	}
	ops := countOps(prog.Funcs["f"])
	if ops[gimple.OpLoad] != 0 || ops[gimple.OpStore] != 0 {
		t.Fatalf("plain accesses survived inside atomic: %v", ops)
	}
	if ops[gimple.OpTMRead] != 1 || ops[gimple.OpTMWrite] != 1 {
		t.Fatalf("tm accesses: %v", ops)
	}
}

func TestDetectS1R(t *testing.T) {
	prog := compile(t, `
shared x;
func f(k) {
	var r = 0;
	atomic {
		if (x > 0) { r = 1; }     // address-value, literal
		if (x == k) { r = 2; }    // address-value, local
	}
	return r;
}`)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.S1R != 2 || st.S2R != 0 {
		t.Fatalf("stats %+v, want 2 S1R", st)
	}
	ops := countOps(prog.Funcs["f"])
	if ops[gimple.OpTMCmp] != 2 {
		t.Fatalf("TMCmp = %d", ops[gimple.OpTMCmp])
	}
	if ops[gimple.OpTMRead] != 0 {
		t.Fatalf("feeding reads not removed: %d left", ops[gimple.OpTMRead])
	}
	if st.RemovedReads != 2 {
		t.Fatalf("removed reads = %d", st.RemovedReads)
	}
}

func TestDetectS1RMirrored(t *testing.T) {
	// literal on the left: 0 < x  ==>  x > 0.
	prog := compile(t, `
shared x;
func f() {
	var r = 0;
	atomic { if (0 < x) { r = 1; } }
	return r;
}`)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.S1R != 1 {
		t.Fatalf("stats %+v", st)
	}
	for _, blk := range prog.Funcs["f"].Blocks {
		for _, in := range blk.Instrs {
			if in.Op == gimple.OpTMCmp {
				if in.Cond.String() != ">" {
					t.Fatalf("mirrored cond = %s, want >", in.Cond)
				}
				if in.B.Kind != gimple.Imm || in.B.Val != 0 {
					t.Fatalf("operand %v", in.B)
				}
			}
		}
	}
}

func TestDetectS2R(t *testing.T) {
	prog := compile(t, `
shared head;
shared tail;
func empty() {
	var r = 0;
	atomic { if (head == tail) { r = 1; } }
	return r;
}`)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.S2R != 1 || st.S1R != 0 {
		t.Fatalf("stats %+v, want 1 S2R", st)
	}
	if st.RemovedReads != 2 {
		t.Fatalf("both feeding reads should die: %+v", st)
	}
}

func TestDetectSW(t *testing.T) {
	prog := compile(t, `
shared x;
shared arr[16];
func f(i, d) {
	atomic {
		x = x + 1;              // scalar, literal
		x = x - d;              // scalar, local, subtraction
		arr[i] = arr[i] + d;    // array element, local delta
	}
	return 0;
}`)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SW != 3 {
		t.Fatalf("stats %+v, want 3 SW", st)
	}
	ops := countOps(prog.Funcs["f"])
	if ops[gimple.OpTMInc] != 3 || ops[gimple.OpTMWrite] != 0 {
		t.Fatalf("ops %v", ops)
	}
	if ops[gimple.OpTMRead] != 0 {
		t.Fatalf("read halves not removed: %d", ops[gimple.OpTMRead])
	}
	if st.RemovedReads != 3 {
		t.Fatalf("removed reads = %d", st.RemovedReads)
	}
}

func TestNoDetectDifferentAddresses(t *testing.T) {
	prog := compile(t, `
shared arr[16];
func f(i, j) {
	atomic { arr[i] = arr[j] + 1; }   // not an increment of the same cell
	return 0;
}`)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SW != 0 {
		t.Fatalf("false positive inc detection: %+v", st)
	}
}

func TestNoDetectSharedOperand(t *testing.T) {
	// x = x + y with shared y is NOT an _ITM_SW pattern (the delta must be
	// a literal or local); it stays read/read/write.
	prog := compile(t, `
shared x;
shared y;
func f() {
	atomic { x = x + y; }
	return 0;
}`)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SW != 0 {
		t.Fatalf("false positive: %+v", st)
	}
	ops := countOps(prog.Funcs["f"])
	if ops[gimple.OpTMRead] != 2 || ops[gimple.OpTMWrite] != 1 {
		t.Fatalf("ops %v", ops)
	}
}

func TestNoDetectIndexMutatedBetween(t *testing.T) {
	// The index local changes between the read and the write, so the two
	// address computations are NOT the same cell: must stay read+write.
	prog := compile(t, `
shared arr[16];
func f(i) {
	var t = 0;
	atomic {
		t = arr[i];
		i = i + 1;
		arr[i] = t + 1;
	}
	return 0;
}`)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SW != 0 {
		t.Fatalf("false positive inc across index mutation: %+v", st)
	}
}

func TestOptimizeKeepsLiveReads(t *testing.T) {
	// The read's value is also returned, so the read must survive even
	// though the conditional was converted.
	prog := compile(t, `
shared x;
func f() {
	var v = 0;
	atomic {
		v = x;
		if (x > 0) { v = v + 1; }
	}
	return v;
}`)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.S1R != 1 {
		t.Fatalf("stats %+v", st)
	}
	ops := countOps(prog.Funcs["f"])
	if ops[gimple.OpTMRead] != 1 {
		t.Fatalf("live read count = %d, want 1 (v = x)", ops[gimple.OpTMRead])
	}
}

func TestPlainMarkLeavesPatterns(t *testing.T) {
	prog := compile(t, `
shared x;
func f() {
	var r = 0;
	atomic {
		if (x > 0) { x = x + 1; r = 1; }
	}
	return r;
}`)
	st, err := Run(prog, Options{DetectPatterns: false})
	if err != nil {
		t.Fatal(err)
	}
	if st.S1R != 0 || st.SW != 0 {
		t.Fatalf("plain mark must not rewrite patterns: %+v", st)
	}
	ops := countOps(prog.Funcs["f"])
	if ops[gimple.OpTMCmp] != 0 || ops[gimple.OpTMInc] != 0 {
		t.Fatalf("semantic builtins emitted in plain mode: %v", ops)
	}
	if ops[gimple.OpTMRead] != 2 || ops[gimple.OpTMWrite] != 1 {
		t.Fatalf("classical instrumentation wrong: %v", ops)
	}
}

// TestDetectSE: with DetectExpressions enabled, "x + y > 0" over two
// transactional reads becomes one _ITM_SE builtin and its feeding reads die.
func TestDetectSE(t *testing.T) {
	src := `
shared x;
shared y;
func f(k) {
	var r = 0;
	atomic {
		if (x + y > 0) { r = 1; }
		if (k < x + y) { r = r + 1; }    // mirrored: sum on the right
	}
	return r;
}`
	prog := compile(t, src)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true, DetectExpressions: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SE != 2 {
		t.Fatalf("SE = %d, want 2: %+v", st.SE, st)
	}
	ops := countOps(prog.Funcs["f"])
	if ops[gimple.OpTMCmpSum] != 2 || ops[gimple.OpTMRead] != 0 {
		t.Fatalf("ops %v", ops)
	}
	if st.RemovedReads != 4 {
		t.Fatalf("removed reads = %d, want 4", st.RemovedReads)
	}

	// Without the flag, the published passes leave the pattern alone.
	prog2 := compile(t, src)
	st2, err := Run(prog2, Options{DetectPatterns: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.SE != 0 {
		t.Fatalf("SE detected without the flag: %+v", st2)
	}
}

// TestDetectSENotForSharedRHS: the comparison operand must be a literal or
// local; a third shared read disqualifies the pattern.
func TestDetectSENotForSharedRHS(t *testing.T) {
	prog := compile(t, `
shared x;
shared y;
shared z;
func f() {
	var r = 0;
	atomic { if (x + y > z) { r = 1; } }
	return r;
}`)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true, DetectExpressions: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SE != 0 {
		t.Fatalf("false positive SE: %+v", st)
	}
}

func TestRunOnCompositeCondition(t *testing.T) {
	// Algorithm 1's motivating condition: both clauses detected separately.
	prog := compile(t, `
shared x;
shared y;
func f() {
	var r = 0;
	atomic {
		if (x > 0 || y > 0) { r = 1; }
	}
	return r;
}`)
	st, err := Run(prog, Options{DetectPatterns: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.S1R != 2 {
		t.Fatalf("both clauses must convert: %+v", st)
	}
	if st.RemovedReads != 2 {
		t.Fatalf("removed = %d", st.RemovedReads)
	}
}
