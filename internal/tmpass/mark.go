// Package tmpass implements the paper's two GCC compilation passes on the
// GIMPLE-like IR:
//
//   - Mark (the extended tm_mark): instruments every shared access inside an
//     atomic region with TM barriers and — when pattern detection is enabled
//     — recognizes conditional expressions over transactional reads and
//     read-add-write sequences, replacing them with the semantic builtins
//     _ITM_S1R (OpTMCmp), _ITM_S2R (OpTMCmp2) and _ITM_SW (OpTMInc).
//   - Optimize (tm_optimize): removes transactional reads whose result is
//     never live, which is exactly what the read half of a replaced inc
//     becomes.
package tmpass

import (
	"fmt"

	"semstm/internal/core"
	"semstm/internal/gimple"
)

// Stats reports what the passes did, mirroring the numbers the paper uses to
// argue the reduction of TM calls.
type Stats struct {
	S1R          int // address–value conditionals replaced
	S2R          int // address–address conditionals replaced
	SW           int // increments replaced
	SE           int // sum-expression conditionals replaced (extension)
	RemovedReads int // never-live TM reads deleted by Optimize
	RemovedOther int // other never-live pure instructions deleted
}

// Options selects pass behaviour.
type Options struct {
	// DetectPatterns enables the semantic cmp/inc pattern detection; with it
	// off, Mark performs only the classical instrumentation (plain GCC).
	DetectPatterns bool
	// Optimize runs the tm_optimize dead-read elimination after Mark.
	Optimize bool
	// DetectExpressions additionally matches sum-expression conditionals
	// (x + y > 0) — the technical-report extension the paper's published
	// GCC passes deliberately leave out. Off by default.
	DetectExpressions bool
}

// Run applies the passes to every function of the program and returns the
// aggregate statistics.
func Run(p *gimple.Program, opts Options) (Stats, error) {
	var st Stats
	for _, f := range p.Funcs {
		if err := mark(f, opts.DetectPatterns, opts.DetectExpressions, &st); err != nil {
			return st, fmt.Errorf("tm_mark %s: %w", f.Name, err)
		}
	}
	if opts.Optimize {
		for _, f := range p.Funcs {
			optimize(f, &st)
		}
	}
	return st, nil
}

// txDepths computes the atomic-region nesting depth at entry of every block
// by propagating depths along control-flow edges from the entry block.
func txDepths(f *gimple.Function) ([]int, error) {
	depth := make([]int, len(f.Blocks))
	seen := make([]bool, len(f.Blocks))
	type item struct{ blk, d int }
	work := []item{{0, 0}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[it.blk] {
			if depth[it.blk] != it.d {
				return nil, fmt.Errorf("inconsistent atomic depth at B%d (%d vs %d)",
					it.blk, depth[it.blk], it.d)
			}
			continue
		}
		seen[it.blk] = true
		depth[it.blk] = it.d
		d := it.d
		for _, in := range f.Blocks[it.blk].Instrs {
			switch in.Op {
			case gimple.OpTxBegin:
				d++
			case gimple.OpTxEnd:
				d--
				if d < 0 {
					return nil, fmt.Errorf("tx_end without tx_begin in B%d", it.blk)
				}
			case gimple.OpBr:
				work = append(work, item{in.Then, d}, item{in.Else, d})
			case gimple.OpJmp:
				work = append(work, item{in.Then, d})
			}
		}
	}
	return depth, nil
}

func mark(f *gimple.Function, detect, exprs bool, st *Stats) error {
	depth, err := txDepths(f)
	if err != nil {
		return err
	}
	// Phase 1: classical instrumentation — barriers on every shared access
	// inside an atomic region.
	for b, blk := range f.Blocks {
		d := depth[b]
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Op {
			case gimple.OpTxBegin:
				d++
			case gimple.OpTxEnd:
				d--
			case gimple.OpLoad:
				if d > 0 {
					in.Op = gimple.OpTMRead
				}
			case gimple.OpStore:
				if d > 0 {
					in.Op = gimple.OpTMWrite
				}
			}
		}
	}
	if !detect {
		return nil
	}
	if exprs {
		for _, blk := range f.Blocks {
			detectSumPatterns(blk, st)
		}
	}
	// Phase 2: semantic pattern detection, block-local as in the paper
	// ("simple expression patterns that usually reside in the same basic
	// block"), no alias analysis needed.
	for _, blk := range f.Blocks {
		detectPatterns(f, blk, st)
	}
	return nil
}

// detectSumPatterns rewrites branch conditions of the form
// "TM_READ(a) + TM_READ(b) <op> literal/local" into the _ITM_SE builtin.
// It runs before the plain cmp detection so the composite wins.
func detectSumPatterns(blk *gimple.Block, st *Stats) {
	defs := defIndex(blk)
	for i := range blk.Instrs {
		br := blk.Instrs[i]
		if br.Op != gimple.OpBr || br.A.Kind != gimple.Temp {
			continue
		}
		ci := resolve(blk, defs, br.A)
		if ci < 0 || blk.Instrs[ci].Op != gimple.OpCmp {
			continue
		}
		cmp := blk.Instrs[ci]
		cond := cmp.Cond
		sumOp, rhs := cmp.A, cmp.B
		if !isValueOperand(rhs) {
			if isValueOperand(sumOp) {
				sumOp, rhs = rhs, sumOp
				cond = mirror(cond)
			} else {
				continue
			}
		}
		ai := resolve(blk, defs, sumOp)
		if ai < 0 || blk.Instrs[ai].Op != gimple.OpAdd {
			continue
		}
		add := blk.Instrs[ai]
		la := resolve(blk, defs, add.A)
		lb := resolve(blk, defs, add.B)
		if la < 0 || lb < 0 ||
			blk.Instrs[la].Op != gimple.OpTMRead ||
			blk.Instrs[lb].Op != gimple.OpTMRead {
			continue
		}
		blk.Instrs[ci] = gimple.Instr{
			Op:   gimple.OpTMCmpSum,
			Dst:  cmp.Dst,
			B:    rhs,
			Cond: cond,
			Args: []gimple.Operand{blk.Instrs[la].A, blk.Instrs[lb].A},
		}
		st.SE++
	}
}

// defIndex maps each temp to the index of its defining instruction within
// the block (temps are single-assignment; defs from other blocks are absent,
// which keeps the matching conservative).
func defIndex(blk *gimple.Block) map[int64]int {
	defs := make(map[int64]int)
	for i, in := range blk.Instrs {
		if in.Dst.Kind == gimple.Temp {
			defs[in.Dst.Val] = i
		}
	}
	return defs
}

// resolve follows Mov chains to the origin instruction of a temp operand,
// returning its index or -1.
func resolve(blk *gimple.Block, defs map[int64]int, o gimple.Operand) int {
	for o.Kind == gimple.Temp {
		i, ok := defs[o.Val]
		if !ok {
			return -1
		}
		in := blk.Instrs[i]
		if in.Op == gimple.OpMov {
			o = in.A
			continue
		}
		return i
	}
	return -1
}

// isValueOperand reports whether o is a literal or a local variable — the
// operand classes the paper's detection accepts on the non-address side.
func isValueOperand(o gimple.Operand) bool {
	return o.Kind == gimple.Imm || o.Kind == gimple.Local
}

// mirror swaps the sides of a comparison: (a op b) == (b mirror(op) a).
func mirror(op core.Op) core.Op {
	switch op {
	case core.OpGT:
		return core.OpLT
	case core.OpGTE:
		return core.OpLTE
	case core.OpLT:
		return core.OpGT
	case core.OpLTE:
		return core.OpGTE
	default: // EQ, NEQ are symmetric
		return op
	}
}

// localsWrittenBetween reports whether any local is assigned between
// instruction indices (lo, hi) in the block — used to be sure two
// structurally equal address computations still see the same local values.
func localsWrittenBetween(blk *gimple.Block, lo, hi int) bool {
	for i := lo + 1; i < hi; i++ {
		in := blk.Instrs[i]
		if in.Dst.Kind == gimple.Local {
			return true
		}
		if in.Op == gimple.OpCall {
			return true // conservative: unknown effects on evaluation order
		}
	}
	return false
}

// sameAddress reports whether two address operands are provably equal within
// the block: identical immediates, the same temp, or temps computed by
// structurally identical pure additions with no intervening local writes.
func sameAddress(blk *gimple.Block, defs map[int64]int, a, b gimple.Operand) bool {
	if a == b {
		if a.Kind == gimple.Imm || a.Kind == gimple.Temp {
			return true
		}
		return false
	}
	if a.Kind == gimple.Temp && b.Kind == gimple.Temp {
		ia, okA := defs[a.Val]
		ib, okB := defs[b.Val]
		if !okA || !okB {
			return false
		}
		da, db := blk.Instrs[ia], blk.Instrs[ib]
		if da.Op != gimple.OpAdd || db.Op != gimple.OpAdd {
			return false
		}
		if da.A != db.A || da.B != db.B {
			return false
		}
		// The shared operands must be stable between the two computations.
		lo, hi := ia, ib
		if lo > hi {
			lo, hi = hi, lo
		}
		if (da.A.Kind == gimple.Local || da.B.Kind == gimple.Local) &&
			localsWrittenBetween(blk, lo, hi) {
			return false
		}
		return da.A.Kind != gimple.Temp && da.B.Kind != gimple.Temp
	}
	return false
}

// detectPatterns rewrites cmp and inc patterns within one block.
func detectPatterns(f *gimple.Function, blk *gimple.Block, st *Stats) {
	defs := defIndex(blk)

	// cmp detection: a branch condition computed by OpCmp whose operand
	// origins are transactional reads.
	for i := range blk.Instrs {
		br := blk.Instrs[i]
		if br.Op != gimple.OpBr || br.A.Kind != gimple.Temp {
			continue
		}
		ci := resolve(blk, defs, br.A)
		if ci < 0 || blk.Instrs[ci].Op != gimple.OpCmp {
			continue
		}
		cmp := blk.Instrs[ci]
		la := resolve(blk, defs, cmp.A)
		lb := resolve(blk, defs, cmp.B)
		aIsRead := la >= 0 && blk.Instrs[la].Op == gimple.OpTMRead
		bIsRead := lb >= 0 && blk.Instrs[lb].Op == gimple.OpTMRead
		switch {
		case aIsRead && bIsRead:
			blk.Instrs[ci] = gimple.Instr{
				Op: gimple.OpTMCmp2, Dst: cmp.Dst,
				A: blk.Instrs[la].A, B: blk.Instrs[lb].A, Cond: cmp.Cond,
			}
			st.S2R++
		case aIsRead && isValueOperand(cmp.B):
			blk.Instrs[ci] = gimple.Instr{
				Op: gimple.OpTMCmp, Dst: cmp.Dst,
				A: blk.Instrs[la].A, B: cmp.B, Cond: cmp.Cond,
			}
			st.S1R++
		case bIsRead && isValueOperand(cmp.A):
			blk.Instrs[ci] = gimple.Instr{
				Op: gimple.OpTMCmp, Dst: cmp.Dst,
				A: blk.Instrs[lb].A, B: cmp.A, Cond: mirror(cmp.Cond),
			}
			st.S1R++
		}
	}

	// inc detection: TM_WRITE whose value is an add/sub over a TM_READ of
	// the same address plus a literal or local.
	var out []gimple.Instr
	changed := false
	defs = defIndex(blk)
	for i := range blk.Instrs {
		w := blk.Instrs[i]
		if w.Op != gimple.OpTMWrite || w.B.Kind != gimple.Temp {
			out = append(out, w)
			continue
		}
		vi := resolve(blk, defs, w.B)
		if vi < 0 {
			out = append(out, w)
			continue
		}
		val := blk.Instrs[vi]
		if val.Op != gimple.OpAdd && val.Op != gimple.OpSub {
			out = append(out, w)
			continue
		}
		la := resolve(blk, defs, val.A)
		lb := resolve(blk, defs, val.B)
		aIsSelf := la >= 0 && blk.Instrs[la].Op == gimple.OpTMRead &&
			sameAddress(blk, defs, blk.Instrs[la].A, w.A)
		bIsSelf := lb >= 0 && blk.Instrs[lb].Op == gimple.OpTMRead &&
			sameAddress(blk, defs, blk.Instrs[lb].A, w.A)
		switch {
		case val.Op == gimple.OpAdd && aIsSelf && isValueOperand(val.B):
			out = append(out, gimple.Instr{Op: gimple.OpTMInc, A: w.A, B: val.B})
			st.SW++
			changed = true
		case val.Op == gimple.OpAdd && bIsSelf && isValueOperand(val.A):
			out = append(out, gimple.Instr{Op: gimple.OpTMInc, A: w.A, B: val.A})
			st.SW++
			changed = true
		case val.Op == gimple.OpSub && aIsSelf && isValueOperand(val.B):
			if val.B.Kind == gimple.Imm {
				out = append(out, gimple.Instr{Op: gimple.OpTMInc, A: w.A, B: gimple.I(-val.B.Val)})
			} else {
				neg := f.NewTemp()
				out = append(out,
					gimple.Instr{Op: gimple.OpSub, Dst: neg, A: gimple.I(0), B: val.B},
					gimple.Instr{Op: gimple.OpTMInc, A: w.A, B: neg})
			}
			st.SW++
			changed = true
		default:
			out = append(out, w)
		}
	}
	if changed {
		blk.Instrs = out
	}
}
