package tmpass

import "semstm/internal/gimple"

// pureProducer reports whether the instruction only defines a temp and has
// no side effects, so it can be deleted when the temp is never live.
// Transactional reads qualify: dropping a TM_READ can only reduce the
// read-set (this is the core of the paper's tm_optimize pass; GCC performs
// no liveness optimization on transactional code by itself).
func pureProducer(op gimple.Opcode) bool {
	switch op {
	case gimple.OpConst, gimple.OpMov, gimple.OpAdd, gimple.OpSub,
		gimple.OpMul, gimple.OpDiv, gimple.OpMod, gimple.OpCmp,
		gimple.OpNot, gimple.OpLoad, gimple.OpTMRead:
		return true
	default:
		return false
	}
}

// optimize deletes never-live pure instructions until fixpoint. Temps are
// single-assignment but may be read in other blocks, so uses are counted
// function-wide, which keeps the pass conservative ("it does not remove a
// read if there is no guarantee that it is never-live").
func optimize(f *gimple.Function, st *Stats) {
	for {
		uses := make(map[int64]int, f.NumTemps)
		countUse := func(o gimple.Operand) {
			if o.Kind == gimple.Temp {
				uses[o.Val]++
			}
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				countUse(in.A)
				countUse(in.B)
				for _, a := range in.Args {
					countUse(a)
				}
			}
		}
		removed := false
		for _, blk := range f.Blocks {
			out := blk.Instrs[:0]
			for _, in := range blk.Instrs {
				dead := pureProducer(in.Op) &&
					in.Dst.Kind == gimple.Temp &&
					uses[in.Dst.Val] == 0
				// Movs into locals are never dead (locals live across
				// blocks); pureProducer already requires a temp Dst.
				if dead {
					if in.Op == gimple.OpTMRead {
						st.RemovedReads++
					} else {
						st.RemovedOther++
					}
					removed = true
					continue
				}
				out = append(out, in)
			}
			blk.Instrs = out
		}
		if !removed {
			return
		}
	}
}
