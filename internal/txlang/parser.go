package txlang

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a TxC source file.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokKeyword, "shared"):
			d, err := p.sharedDecl()
			if err != nil {
				return nil, err
			}
			f.Shared = append(f.Shared, d)
		case p.at(tokKeyword, "func"):
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, p.errorf("expected 'shared' or 'func', got %q", p.cur().text)
		}
	}
	return f, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if !p.at(k, text) {
		return token{}, p.errorf("expected %q, got %q", text, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("txc:%d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) sharedDecl() (SharedDecl, error) {
	p.advance() // shared
	name, err := p.expectIdent()
	if err != nil {
		return SharedDecl{}, err
	}
	d := SharedDecl{Name: name, Size: 1}
	if p.accept(tokPunct, "[") {
		t := p.cur()
		if t.kind != tokInt {
			return SharedDecl{}, p.errorf("array size must be an integer literal")
		}
		p.advance()
		if t.val <= 0 {
			return SharedDecl{}, p.errorf("array size must be positive")
		}
		d.Size = t.val
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return SharedDecl{}, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return SharedDecl{}, err
	}
	return d, nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", p.cur().text)
	}
	return p.advance().text, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	p.advance() // func
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name}
	if !p.at(tokPunct, ")") {
		for {
			param, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, param)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.advance() // }
	return stmts, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.at(tokKeyword, "var"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept(tokPunct, "=") {
			init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return VarDecl{Name: name, Init: init}, nil

	case p.at(tokKeyword, "if"):
		p.advance()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept(tokKeyword, "else") {
			if p.at(tokKeyword, "if") {
				s, err := p.stmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return If{Cond: cond, Then: then, Else: els}, nil

	case p.at(tokKeyword, "while"):
		p.advance()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return While{Cond: cond, Body: body}, nil

	case p.at(tokKeyword, "return"):
		p.advance()
		var val Expr
		if !p.at(tokPunct, ";") {
			var err error
			val, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return Return{Value: val}, nil

	case p.at(tokKeyword, "atomic"):
		p.advance()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return Atomic{Body: body}, nil

	case p.at(tokKeyword, "break"):
		p.advance()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return Break{}, nil

	default:
		// Assignment or expression statement.
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.accept(tokPunct, "=") {
			switch e.(type) {
			case VarRef, IndexRef:
			default:
				return nil, p.errorf("invalid assignment target")
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return Assign{Target: e, Value: val}, nil
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return ExprStmt{X: e}, nil
	}
}

// Expression parsing with precedence climbing.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "||") {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "&&") {
		p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokPunct, "=="), p.at(tokPunct, "!="), p.at(tokPunct, "<"),
			p.at(tokPunct, "<="), p.at(tokPunct, ">"), p.at(tokPunct, ">="):
			op := p.advance().text
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: op, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "+") || p.at(tokPunct, "-") {
		op := p.advance().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "*") || p.at(tokPunct, "/") || p.at(tokPunct, "%") {
		op := p.advance().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.at(tokPunct, "!") || p.at(tokPunct, "-") {
		op := p.advance().text
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Unary{Op: op, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch {
	case p.cur().kind == tokInt:
		t := p.advance()
		return IntLit{Val: t.val}, nil
	case p.cur().kind == tokIdent:
		name := p.advance().text
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return IndexRef{Name: name, Idx: idx}, nil
		case p.accept(tokPunct, "("):
			var args []Expr
			if !p.at(tokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return Call{Name: name, Args: args}, nil
		default:
			return VarRef{Name: name}, nil
		}
	case p.accept(tokPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("unexpected token %q", p.cur().text)
	}
}
