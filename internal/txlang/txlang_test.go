package txlang

import (
	"strings"
	"testing"

	"semstm/internal/gimple"
)

func TestParseSharedDecls(t *testing.T) {
	f, err := Parse("shared x; shared arr[64];")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Shared) != 2 {
		t.Fatalf("shared decls = %d", len(f.Shared))
	}
	if f.Shared[0].Name != "x" || f.Shared[0].Size != 1 {
		t.Fatalf("decl 0: %+v", f.Shared[0])
	}
	if f.Shared[1].Name != "arr" || f.Shared[1].Size != 64 {
		t.Fatalf("decl 1: %+v", f.Shared[1])
	}
}

func TestParseFunction(t *testing.T) {
	src := `
func add(a, b) {
	var c = a + b;
	return c;
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 1 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	fn := f.Funcs[0]
	if fn.Name != "add" || len(fn.Params) != 2 || len(fn.Body) != 2 {
		t.Fatalf("fn: %+v", fn)
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse("func f(a, b, c) { return a + b * c; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body[0].(Return)
	add, ok := ret.Value.(Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("top op: %+v", ret.Value)
	}
	mul, ok := add.R.(Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("right op: %+v", add.R)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	f, err := Parse("func f(a, b, c) { return a == 1 || b == 2 && c == 3; }")
	if err != nil {
		t.Fatal(err)
	}
	or := f.Funcs[0].Body[0].(Return).Value.(Binary)
	if or.Op != "||" {
		t.Fatalf("top op %q, want ||", or.Op)
	}
	and, ok := or.R.(Binary)
	if !ok || and.Op != "&&" {
		t.Fatalf("right: %+v", or.R)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"shared;",
		"func f( { }",
		"func f() { var; }",
		"func f() { 1 + ; }",
		"func f() { if x { } }",   // missing parens
		"func f() { return 1 }",   // missing semicolon
		"func f() { x[ = 1; }",    // bad index
		"shared a[0];",            // non-positive size
		"func f() { @ }",          // lexer error
		"bogus",                   // top-level junk
		"func f() { y = (1; }",    // unbalanced paren
		"func f() { while (1) { ", // unterminated block
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
// leading comment
shared x; // trailing
func f() { // another
	return 0;
}`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undefined var", "func f() { return nope; }"},
		{"undefined array", "func f() { return nope[0]; }"},
		{"undefined func", "func f() { return g(); }"},
		{"arity", "func g(a) { return a; } func f() { return g(); }"},
		{"dup shared", "shared x; shared x;"},
		{"dup func", "func f() { return 0; } func f() { return 0; }"},
		{"dup local", "func f() { var a; var a; }"},
		{"dup param", "func f(a, a) { return 0; }"},
		{"shadow", "shared x; func f() { var x; }"},
		{"break outside loop", "func f() { break; }"},
		{"break out of atomic", "shared x; func f() { while (1) { atomic { break; } } }"},
		{"rand arity", "func f() { return rand(1, 2); }"},
		{"assign to literal", "func f() { 3 = 4; }"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: compile succeeded, want error", c.name)
		}
	}
}

func TestLowerSymbolLayout(t *testing.T) {
	prog, err := Compile("shared a; shared b[10]; shared c;")
	if err != nil {
		t.Fatal(err)
	}
	if prog.SharedSize != 12 {
		t.Fatalf("shared size = %d", prog.SharedSize)
	}
	if prog.Symbols["a"] != 0 || prog.Symbols["b"] != 1 || prog.Symbols["c"] != 11 {
		t.Fatalf("symbols: %+v", prog.Symbols)
	}
}

func TestLowerConstantFolding(t *testing.T) {
	prog, err := Compile("func f() { return 2 + 3 * 4; }")
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["f"]
	// The entire expression folds: no arithmetic instructions remain.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case gimple.OpAdd, gimple.OpMul:
				t.Fatalf("unfolded arithmetic: %s", in)
			case gimple.OpRet:
				if in.A.Kind != gimple.Imm || in.A.Val != 14 {
					t.Fatalf("ret operand %v", in.A)
				}
			}
		}
	}
}

func TestLowerAtomicBrackets(t *testing.T) {
	prog, err := Compile("shared x; func f() { atomic { x = 1; } return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	var begins, ends, stores int
	for _, blk := range prog.Funcs["f"].Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case gimple.OpTxBegin:
				begins++
			case gimple.OpTxEnd:
				ends++
			case gimple.OpStore:
				stores++
			}
		}
	}
	if begins != 1 || ends != 1 || stores != 1 {
		t.Fatalf("begins=%d ends=%d stores=%d", begins, ends, stores)
	}
}

// TestLowerShortCircuitIsControlFlow: && in branch context must become two
// separate conditional branches (the shape pattern detection needs), not a
// logical-and instruction.
func TestLowerShortCircuitIsControlFlow(t *testing.T) {
	prog, err := Compile(`
shared x; shared y;
func f() {
	var r = 0;
	atomic {
		if (x > 0 && y > 0) { r = 1; }
	}
	return r;
}`)
	if err != nil {
		t.Fatal(err)
	}
	var cmps, brs int
	for _, blk := range prog.Funcs["f"].Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case gimple.OpCmp:
				cmps++
			case gimple.OpBr:
				brs++
			}
		}
	}
	if cmps != 2 || brs < 2 {
		t.Fatalf("cmps=%d brs=%d, want 2 cmps each feeding a branch", cmps, brs)
	}
}

func TestDumpReadable(t *testing.T) {
	prog, err := Compile("shared x; func f(n) { atomic { x = x + n; } return x; }")
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Funcs["f"].Dump()
	for _, want := range []string{"func f", "tx_begin", "tx_end", "shared["} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}
