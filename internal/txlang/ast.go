package txlang

// File is a parsed TxC source file.
type File struct {
	Shared []SharedDecl
	Funcs  []*FuncDecl
}

// SharedDecl declares a shared (transactional) variable or array.
type SharedDecl struct {
	Name string
	Size int64 // 1 for scalars
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// VarDecl declares a function-local variable with an optional initializer.
type VarDecl struct {
	Name string
	Init Expr // may be nil
}

// Assign stores Value into Target (a local, shared scalar, or shared array
// element).
type Assign struct {
	Target Expr // VarRef or IndexRef
	Value  Expr
}

// If is a conditional statement.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
}

// While is a loop.
type While struct {
	Cond Expr
	Body []Stmt
}

// Return exits the function with an optional value.
type Return struct {
	Value Expr // may be nil
}

// Atomic is a transactional region.
type Atomic struct {
	Body []Stmt
}

// Break exits the innermost loop.
type Break struct{}

// ExprStmt evaluates an expression for its effects (calls).
type ExprStmt struct {
	X Expr
}

func (VarDecl) stmt()  {}
func (Assign) stmt()   {}
func (If) stmt()       {}
func (While) stmt()    {}
func (Return) stmt()   {}
func (Atomic) stmt()   {}
func (Break) stmt()    {}
func (ExprStmt) stmt() {}

// Expr is an expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	Val int64
}

// VarRef names a local or shared scalar.
type VarRef struct {
	Name string
}

// IndexRef names a shared array element.
type IndexRef struct {
	Name string
	Idx  Expr
}

// Binary applies a binary operator: one of + - * / % == != < <= > >= && ||.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary applies a unary operator: ! or unary -.
type Unary struct {
	Op string
	X  Expr
}

// Call invokes a function or the rand(n) builtin.
type Call struct {
	Name string
	Args []Expr
}

func (IntLit) expr()   {}
func (VarRef) expr()   {}
func (IndexRef) expr() {}
func (Binary) expr()   {}
func (Unary) expr()    {}
func (Call) expr()     {}
