package txlang

import (
	"fmt"

	"semstm/internal/core"
	"semstm/internal/gimple"
)

// Compile parses TxC source and lowers it to the GIMPLE-like IR. The output
// is *uninstrumented*: shared accesses are plain OpLoad/OpStore even inside
// atomic regions; package tmpass's Mark pass performs the transactional
// instrumentation (and, optionally, the semantic pattern detection), exactly
// as GCC's tm_mark does.
func Compile(src string) (*gimple.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(file)
}

// Lower lowers a parsed file to IR.
func Lower(file *File) (*gimple.Program, error) {
	prog := &gimple.Program{
		Symbols: make(map[string]int64),
		Funcs:   make(map[string]*gimple.Function),
	}
	for _, d := range file.Shared {
		if _, dup := prog.Symbols[d.Name]; dup {
			return nil, fmt.Errorf("txc: duplicate shared variable %q", d.Name)
		}
		prog.Symbols[d.Name] = prog.SharedSize
		prog.SharedSize += d.Size
	}
	for _, fd := range file.Funcs {
		if _, dup := prog.Funcs[fd.Name]; dup {
			return nil, fmt.Errorf("txc: duplicate function %q", fd.Name)
		}
		lw := &lowerer{file: file, prog: prog}
		fn, err := lw.lowerFunc(fd)
		if err != nil {
			return nil, err
		}
		prog.Funcs[fd.Name] = fn
	}
	return prog, nil
}

// loopCtx records a loop's exit block and the atomic depth it was entered at
// (break may not jump out of an atomic region).
type loopCtx struct {
	exit        int
	atomicDepth int
}

type lowerer struct {
	file *File
	prog *gimple.Program
	fn   *gimple.Function

	locals      map[string]int
	cur         int
	terminated  bool
	loops       []loopCtx
	atomicDepth int
}

func (lw *lowerer) lowerFunc(fd *FuncDecl) (*gimple.Function, error) {
	lw.fn = &gimple.Function{Name: fd.Name, NumParams: len(fd.Params)}
	lw.locals = make(map[string]int)
	for _, p := range fd.Params {
		if _, dup := lw.locals[p]; dup {
			return nil, fmt.Errorf("txc: duplicate parameter %q in %s", p, fd.Name)
		}
		lw.locals[p] = lw.newLocal()
	}
	lw.cur = lw.fn.NewBlock()
	lw.terminated = false
	if err := lw.stmts(fd.Body); err != nil {
		return nil, err
	}
	if !lw.terminated {
		lw.emit(gimple.Instr{Op: gimple.OpRet, A: gimple.I(0)})
		lw.terminated = true
	}
	// Terminate any dangling blocks (unreachable joins) with a return so the
	// VM never falls off a block.
	for i, b := range lw.fn.Blocks {
		if len(b.Instrs) == 0 || !isTerminator(b.Instrs[len(b.Instrs)-1].Op) {
			lw.fn.Emit(i, gimple.Instr{Op: gimple.OpRet, A: gimple.I(0)})
		}
	}
	return lw.fn, nil
}

func isTerminator(op gimple.Opcode) bool {
	return op == gimple.OpBr || op == gimple.OpJmp || op == gimple.OpRet
}

func (lw *lowerer) newLocal() int {
	i := lw.fn.NumLocals
	lw.fn.NumLocals++
	return i
}

func (lw *lowerer) emit(in gimple.Instr) {
	if lw.terminated {
		return // unreachable code after return/break
	}
	lw.fn.Emit(lw.cur, in)
	if isTerminator(in.Op) {
		lw.terminated = true
	}
}

// switchTo makes b the current block (assumed unterminated).
func (lw *lowerer) switchTo(b int) {
	lw.cur = b
	lw.terminated = false
}

// jumpTo terminates the current block with a jump to b (if not already
// terminated) and continues there.
func (lw *lowerer) jumpTo(b int) {
	lw.emit(gimple.Instr{Op: gimple.OpJmp, Then: b})
	lw.switchTo(b)
}

func (lw *lowerer) stmts(list []Stmt) error {
	for _, s := range list {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s Stmt) error {
	switch st := s.(type) {
	case VarDecl:
		if _, dup := lw.locals[st.Name]; dup {
			return fmt.Errorf("txc: duplicate local %q in %s", st.Name, lw.fn.Name)
		}
		if _, shadowed := lw.prog.Symbols[st.Name]; shadowed {
			return fmt.Errorf("txc: local %q shadows a shared variable", st.Name)
		}
		slot := lw.newLocal()
		lw.locals[st.Name] = slot
		if st.Init != nil {
			v, err := lw.expr(st.Init)
			if err != nil {
				return err
			}
			lw.emit(gimple.Instr{Op: gimple.OpMov, Dst: gimple.L(slot), A: v})
		}
		return nil

	case Assign:
		return lw.assign(st)

	case If:
		thenB := lw.fn.NewBlock()
		joinB := lw.fn.NewBlock()
		elseB := joinB
		if st.Else != nil {
			elseB = lw.fn.NewBlock()
		}
		if err := lw.cond(st.Cond, thenB, elseB); err != nil {
			return err
		}
		lw.switchTo(thenB)
		if err := lw.stmts(st.Then); err != nil {
			return err
		}
		lw.emit(gimple.Instr{Op: gimple.OpJmp, Then: joinB})
		if st.Else != nil {
			lw.switchTo(elseB)
			if err := lw.stmts(st.Else); err != nil {
				return err
			}
			lw.emit(gimple.Instr{Op: gimple.OpJmp, Then: joinB})
		}
		lw.switchTo(joinB)
		return nil

	case While:
		headB := lw.fn.NewBlock()
		bodyB := lw.fn.NewBlock()
		exitB := lw.fn.NewBlock()
		lw.jumpTo(headB)
		if err := lw.cond(st.Cond, bodyB, exitB); err != nil {
			return err
		}
		lw.switchTo(bodyB)
		lw.loops = append(lw.loops, loopCtx{exit: exitB, atomicDepth: lw.atomicDepth})
		err := lw.stmts(st.Body)
		lw.loops = lw.loops[:len(lw.loops)-1]
		if err != nil {
			return err
		}
		lw.emit(gimple.Instr{Op: gimple.OpJmp, Then: headB})
		lw.switchTo(exitB)
		return nil

	case Return:
		a := gimple.I(0)
		if st.Value != nil {
			v, err := lw.expr(st.Value)
			if err != nil {
				return err
			}
			a = v
		}
		lw.emit(gimple.Instr{Op: gimple.OpRet, A: a})
		return nil

	case Atomic:
		lw.emit(gimple.Instr{Op: gimple.OpTxBegin})
		lw.atomicDepth++
		err := lw.stmts(st.Body)
		lw.atomicDepth--
		if err != nil {
			return err
		}
		lw.emit(gimple.Instr{Op: gimple.OpTxEnd})
		return nil

	case Break:
		if len(lw.loops) == 0 {
			return fmt.Errorf("txc: break outside loop in %s", lw.fn.Name)
		}
		top := lw.loops[len(lw.loops)-1]
		if top.atomicDepth != lw.atomicDepth {
			return fmt.Errorf("txc: break may not jump out of an atomic block in %s", lw.fn.Name)
		}
		lw.emit(gimple.Instr{Op: gimple.OpJmp, Then: top.exit})
		return nil

	case ExprStmt:
		_, err := lw.expr(st.X)
		return err

	default:
		return fmt.Errorf("txc: unknown statement %T", s)
	}
}

func (lw *lowerer) assign(st Assign) error {
	val, err := lw.expr(st.Value)
	if err != nil {
		return err
	}
	switch tgt := st.Target.(type) {
	case VarRef:
		if slot, ok := lw.locals[tgt.Name]; ok {
			lw.emit(gimple.Instr{Op: gimple.OpMov, Dst: gimple.L(slot), A: val})
			return nil
		}
		if base, ok := lw.prog.Symbols[tgt.Name]; ok {
			lw.emit(gimple.Instr{Op: gimple.OpStore, A: gimple.I(base), B: val})
			return nil
		}
		return fmt.Errorf("txc: undefined variable %q in %s", tgt.Name, lw.fn.Name)
	case IndexRef:
		addr, err := lw.address(tgt)
		if err != nil {
			return err
		}
		lw.emit(gimple.Instr{Op: gimple.OpStore, A: addr, B: val})
		return nil
	default:
		return fmt.Errorf("txc: invalid assignment target %T", st.Target)
	}
}

// address lowers a shared array element reference to an address operand.
func (lw *lowerer) address(ix IndexRef) (gimple.Operand, error) {
	base, ok := lw.prog.Symbols[ix.Name]
	if !ok {
		return gimple.None, fmt.Errorf("txc: undefined shared array %q", ix.Name)
	}
	idx, err := lw.expr(ix.Idx)
	if err != nil {
		return gimple.None, err
	}
	if idx.Kind == gimple.Imm {
		return gimple.I(base + idx.Val), nil
	}
	t := lw.fn.NewTemp()
	lw.emit(gimple.Instr{Op: gimple.OpAdd, Dst: t, A: idx, B: gimple.I(base)})
	return t, nil
}

var cmpOps = map[string]core.Op{
	"==": core.OpEQ, "!=": core.OpNEQ,
	"<": core.OpLT, "<=": core.OpLTE,
	">": core.OpGT, ">=": core.OpGTE,
}

var arithOps = map[string]gimple.Opcode{
	"+": gimple.OpAdd, "-": gimple.OpSub,
	"*": gimple.OpMul, "/": gimple.OpDiv, "%": gimple.OpMod,
}

// expr lowers an expression in value context and returns its operand.
func (lw *lowerer) expr(e Expr) (gimple.Operand, error) {
	switch ex := e.(type) {
	case IntLit:
		return gimple.I(ex.Val), nil

	case VarRef:
		if slot, ok := lw.locals[ex.Name]; ok {
			return gimple.L(slot), nil
		}
		if base, ok := lw.prog.Symbols[ex.Name]; ok {
			t := lw.fn.NewTemp()
			lw.emit(gimple.Instr{Op: gimple.OpLoad, Dst: t, A: gimple.I(base)})
			return t, nil
		}
		return gimple.None, fmt.Errorf("txc: undefined variable %q in %s", ex.Name, lw.fn.Name)

	case IndexRef:
		addr, err := lw.address(ex)
		if err != nil {
			return gimple.None, err
		}
		t := lw.fn.NewTemp()
		lw.emit(gimple.Instr{Op: gimple.OpLoad, Dst: t, A: addr})
		return t, nil

	case Binary:
		if op, ok := arithOps[ex.Op]; ok {
			l, err := lw.expr(ex.L)
			if err != nil {
				return gimple.None, err
			}
			r, err := lw.expr(ex.R)
			if err != nil {
				return gimple.None, err
			}
			if l.Kind == gimple.Imm && r.Kind == gimple.Imm {
				if v, ok := foldArith(ex.Op, l.Val, r.Val); ok {
					return gimple.I(v), nil
				}
			}
			t := lw.fn.NewTemp()
			lw.emit(gimple.Instr{Op: op, Dst: t, A: l, B: r})
			return t, nil
		}
		if cop, ok := cmpOps[ex.Op]; ok {
			l, err := lw.expr(ex.L)
			if err != nil {
				return gimple.None, err
			}
			r, err := lw.expr(ex.R)
			if err != nil {
				return gimple.None, err
			}
			t := lw.fn.NewTemp()
			lw.emit(gimple.Instr{Op: gimple.OpCmp, Dst: t, A: l, B: r, Cond: cop})
			return t, nil
		}
		if ex.Op == "&&" || ex.Op == "||" {
			// Value-context short circuit: materialize through a hidden
			// local assigned on both paths.
			slot := lw.newLocal()
			thenB := lw.fn.NewBlock()
			elseB := lw.fn.NewBlock()
			joinB := lw.fn.NewBlock()
			if err := lw.cond(ex, thenB, elseB); err != nil {
				return gimple.None, err
			}
			lw.switchTo(thenB)
			lw.emit(gimple.Instr{Op: gimple.OpMov, Dst: gimple.L(slot), A: gimple.I(1)})
			lw.emit(gimple.Instr{Op: gimple.OpJmp, Then: joinB})
			lw.switchTo(elseB)
			lw.emit(gimple.Instr{Op: gimple.OpMov, Dst: gimple.L(slot), A: gimple.I(0)})
			lw.emit(gimple.Instr{Op: gimple.OpJmp, Then: joinB})
			lw.switchTo(joinB)
			return gimple.L(slot), nil
		}
		return gimple.None, fmt.Errorf("txc: unknown operator %q", ex.Op)

	case Unary:
		x, err := lw.expr(ex.X)
		if err != nil {
			return gimple.None, err
		}
		switch ex.Op {
		case "-":
			if x.Kind == gimple.Imm {
				return gimple.I(-x.Val), nil
			}
			t := lw.fn.NewTemp()
			lw.emit(gimple.Instr{Op: gimple.OpSub, Dst: t, A: gimple.I(0), B: x})
			return t, nil
		case "!":
			if x.Kind == gimple.Imm {
				if x.Val == 0 {
					return gimple.I(1), nil
				}
				return gimple.I(0), nil
			}
			t := lw.fn.NewTemp()
			lw.emit(gimple.Instr{Op: gimple.OpNot, Dst: t, A: x})
			return t, nil
		default:
			return gimple.None, fmt.Errorf("txc: unknown unary %q", ex.Op)
		}

	case Call:
		args := make([]gimple.Operand, len(ex.Args))
		for i, a := range ex.Args {
			v, err := lw.expr(a)
			if err != nil {
				return gimple.None, err
			}
			args[i] = v
		}
		if ex.Name != "rand" {
			callee := lw.findFunc(ex.Name)
			if callee == nil {
				return gimple.None, fmt.Errorf("txc: undefined function %q", ex.Name)
			}
			if len(callee.Params) != len(ex.Args) {
				return gimple.None, fmt.Errorf("txc: %s expects %d args, got %d",
					ex.Name, len(callee.Params), len(ex.Args))
			}
		} else if len(ex.Args) != 1 {
			return gimple.None, fmt.Errorf("txc: rand expects 1 arg")
		}
		t := lw.fn.NewTemp()
		lw.emit(gimple.Instr{Op: gimple.OpCall, Dst: t, Fn: ex.Name, Args: args})
		return t, nil

	default:
		return gimple.None, fmt.Errorf("txc: unknown expression %T", e)
	}
}

func (lw *lowerer) findFunc(name string) *FuncDecl {
	for _, f := range lw.file.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

func foldArith(op string, a, b int64) (int64, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case "%":
		if b == 0 {
			return 0, false
		}
		return a % b, true
	}
	return 0, false
}

// cond lowers an expression in branch context, jumping to thenB when it is
// true and elseB otherwise. Short-circuit operators become control flow, so
// every comparison reaches the IR as its own OpCmp feeding an OpBr — the
// shape tm_mark's pattern detection expects (the paper treats each clause of
// a composed condition as a separate semantic operation).
func (lw *lowerer) cond(e Expr, thenB, elseB int) error {
	switch ex := e.(type) {
	case Binary:
		switch ex.Op {
		case "&&":
			mid := lw.fn.NewBlock()
			if err := lw.cond(ex.L, mid, elseB); err != nil {
				return err
			}
			lw.switchTo(mid)
			return lw.cond(ex.R, thenB, elseB)
		case "||":
			mid := lw.fn.NewBlock()
			if err := lw.cond(ex.L, thenB, mid); err != nil {
				return err
			}
			lw.switchTo(mid)
			return lw.cond(ex.R, thenB, elseB)
		}
		if cop, ok := cmpOps[ex.Op]; ok {
			l, err := lw.expr(ex.L)
			if err != nil {
				return err
			}
			r, err := lw.expr(ex.R)
			if err != nil {
				return err
			}
			t := lw.fn.NewTemp()
			lw.emit(gimple.Instr{Op: gimple.OpCmp, Dst: t, A: l, B: r, Cond: cop})
			lw.emit(gimple.Instr{Op: gimple.OpBr, A: t, Then: thenB, Else: elseB})
			return nil
		}
	case Unary:
		if ex.Op == "!" {
			return lw.cond(ex.X, elseB, thenB)
		}
	}
	v, err := lw.expr(e)
	if err != nil {
		return err
	}
	lw.emit(gimple.Instr{Op: gimple.OpBr, A: v, Then: thenB, Else: elseB})
	return nil
}
