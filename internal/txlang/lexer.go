// Package txlang implements TxC, a small C-like language with
// `atomic { ... }` blocks, and its compiler to the GIMPLE-like IR of package
// gimple. It is this repository's stand-in for the paper's GCC front end:
// programs are written against shared variables with no TM calls at all, and
// the compiler (plus the passes in package tmpass) instruments and optimizes
// them exactly as the modified GCC does.
//
// Grammar sketch:
//
//	program  := (shared | func)*
//	shared   := "shared" IDENT ("[" INT "]")? ";"
//	func     := "func" IDENT "(" params? ")" block
//	stmt     := "var" IDENT ("=" expr)? ";" | lvalue "=" expr ";"
//	          | "if" "(" expr ")" block ("else" block)?
//	          | "while" "(" expr ")" block | "return" expr? ";"
//	          | "atomic" block | "break" ";" | expr ";"
//	expr     := the usual C operators: || && == != < <= > >= + - * / % ! ()
//	          | INT | IDENT | IDENT "[" expr "]" | IDENT "(" args? ")"
package txlang

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokKeyword
	tokPunct
)

type token struct {
	kind tokKind
	text string
	val  int64
	line int
}

var keywords = map[string]bool{
	"shared": true, "func": true, "var": true, "if": true, "else": true,
	"while": true, "return": true, "atomic": true, "break": true,
}

// lexer tokenizes TxC source.
type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src), line: 1} }

func (lx *lexer) error(format string, args ...any) error {
	return fmt.Errorf("txc:%d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekRune() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case unicode.IsSpace(c):
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil

scan:
	c := lx.src[lx.pos]
	start := lx.pos
	switch {
	case unicode.IsLetter(c) || c == '_':
		for lx.pos < len(lx.src) && (unicode.IsLetter(lx.src[lx.pos]) || unicode.IsDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '_') {
			lx.pos++
		}
		text := string(lx.src[start:lx.pos])
		k := tokIdent
		if keywords[text] {
			k = tokKeyword
		}
		return token{kind: k, text: text, line: lx.line}, nil
	case unicode.IsDigit(c):
		for lx.pos < len(lx.src) && unicode.IsDigit(lx.src[lx.pos]) {
			lx.pos++
		}
		text := string(lx.src[start:lx.pos])
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return token{}, lx.error("bad integer %q", text)
		}
		return token{kind: tokInt, text: text, val: v, line: lx.line}, nil
	default:
		two := ""
		if lx.pos+1 < len(lx.src) {
			two = string(lx.src[lx.pos : lx.pos+2])
		}
		switch two {
		case "==", "!=", "<=", ">=", "&&", "||":
			lx.pos += 2
			return token{kind: tokPunct, text: two, line: lx.line}, nil
		}
		switch c {
		case '+', '-', '*', '/', '%', '<', '>', '=', '!', '(', ')', '{', '}', '[', ']', ';', ',':
			lx.pos++
			return token{kind: tokPunct, text: string(c), line: lx.line}, nil
		}
		return token{}, lx.error("unexpected character %q", string(c))
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
