// Package txtest provides helpers for driving transaction descriptors
// step-by-step from a single goroutine, which lets tests reproduce the
// paper's interleavings (Algorithms 1, 8 and 9) deterministically.
package txtest

import "semstm/internal/core"

// Aborted runs f and reports whether it aborted (panicked with the
// transaction-abort sentinel). Any other panic propagates.
func Aborted(f func()) (aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if !core.IsAbort(r) {
				panic(r)
			}
			aborted = true
		}
	}()
	f()
	return false
}

// MustCommit runs Start, body, and Commit on impl, and reports whether the
// whole attempt committed. The descriptor's Cleanup is invoked on abort.
func MustCommit(impl core.TxImpl, body func()) bool {
	ok := !Aborted(func() {
		impl.Start()
		body()
		impl.Commit()
	})
	if !ok {
		impl.Cleanup()
	}
	return ok
}

// MustCommitRest runs body and then Commit on an already-started descriptor,
// reporting whether the attempt committed. Cleanup is invoked on abort.
func MustCommitRest(impl core.TxImpl, body func()) bool {
	ok := !Aborted(func() {
		body()
		impl.Commit()
	})
	if !ok {
		impl.Cleanup()
	}
	return ok
}

// Step runs a mid-transaction step (reads, writes, semantic ops) on an
// already-started descriptor and reports whether it survived (did not abort).
// On abort the descriptor's Cleanup is invoked.
func Step(impl core.TxImpl, body func()) bool {
	ok := !Aborted(body)
	if !ok {
		impl.Cleanup()
	}
	return ok
}
