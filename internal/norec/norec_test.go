package norec

import (
	"testing"

	"semstm/internal/core"
	"semstm/internal/txtest"
)

func TestCommitVisibility(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		v := core.NewVar(1)
		tx := NewTx(g, semantic)
		if !txtest.MustCommit(tx, func() {
			if got := tx.Read(v); got != 1 {
				t.Fatalf("Read = %d", got)
			}
			tx.Write(v, 2)
		}) {
			t.Fatal("solo writer must commit")
		}
		if v.Load() != 2 {
			t.Fatalf("semantic=%v: memory = %d after commit", semantic, v.Load())
		}
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		v := core.NewVar(1)
		tx := NewTx(g, semantic)
		txtest.MustCommit(tx, func() {
			tx.Write(v, 7)
			if got := tx.Read(v); got != 7 {
				t.Fatalf("semantic=%v: RAW = %d", semantic, got)
			}
			if v.Load() != 1 {
				t.Fatal("write must be buffered, not in place")
			}
		})
	}
}

func TestIncDeferredUntilCommit(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(10)
	tx := NewTx(g, true)
	txtest.MustCommit(tx, func() {
		tx.Inc(v, 5)
		tx.Inc(v, -2)
		if v.Load() != 10 {
			t.Fatal("inc must not touch memory before commit")
		}
		// No read was performed: the read-set must be empty, which is the
		// whole point of the deferred increment.
		if tx.ReadSetLen() != 0 {
			t.Fatalf("read-set has %d entries", tx.ReadSetLen())
		}
	})
	if v.Load() != 13 {
		t.Fatalf("after commit: %d, want 13", v.Load())
	}
}

// TestIncAppliesConcurrentDelta is the concurrency win of TM_INC: a writer
// that changes the variable *between* the inc and the commit does not abort
// the incrementing transaction, and the delta lands on the fresh value.
func TestIncAppliesConcurrentDelta(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(100)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	t1.Inc(v, 1)

	if !txtest.MustCommit(t2, func() { t2.Write(v, 500) }) {
		t.Fatal("t2 must commit")
	}

	if txtest.Aborted(func() { t1.Commit() }) {
		t.Fatal("S-NOrec inc-only transaction must survive a concurrent write")
	}
	if v.Load() != 501 {
		t.Fatalf("final = %d, want 501 (delta on fresh value)", v.Load())
	}
}

// TestIncAbortsUnderBaseline contrasts the previous test: baseline NOrec
// turns the inc into read+write, so the concurrent writer kills it.
func TestIncAbortsUnderBaseline(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(100)
	t1 := NewTx(g, false)
	t2 := NewTx(g, false)

	t1.Start()
	t1.Inc(v, 1) // delegates to Read + Write: pins value 100

	txtest.MustCommit(t2, func() { t2.Write(v, 500) })

	if !txtest.Aborted(func() { t1.Commit() }) {
		t.Fatal("baseline NOrec must abort: read-set value changed")
	}
	t1.Cleanup()
}

func TestIncPromotionOnRead(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(10)
	tx := NewTx(g, true)
	txtest.MustCommit(tx, func() {
		tx.Inc(v, 3)
		if got := tx.Read(v); got != 13 {
			t.Fatalf("promoted read = %d, want 13", got)
		}
		if tx.AttemptStats().Promotes != 1 {
			t.Fatalf("promotes = %d", tx.AttemptStats().Promotes)
		}
		// After promotion the entry is a plain write and the read-set now
		// pins the exact pre-image (Algorithm 6 lines 19-21).
		if tx.ReadSetLen() != 1 {
			t.Fatalf("read-set = %d entries", tx.ReadSetLen())
		}
	})
	if v.Load() != 13 {
		t.Fatalf("after commit: %d", v.Load())
	}
}

// TestPromotedIncPinsValue: once promoted, a concurrent writer aborts the
// transaction even under S-NOrec, because the promotion recorded an EQ fact.
func TestPromotedIncPinsValue(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(10)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	t1.Inc(v, 3)
	_ = t1.Read(v) // promotes

	txtest.MustCommit(t2, func() { t2.Write(v, 99) })

	if !txtest.Aborted(func() { t1.Commit() }) {
		t.Fatal("promoted inc must behave like read+write")
	}
	t1.Cleanup()
}

// TestPaperAlgorithm1 reproduces the motivating example: T1 checks x>0 and
// y>0; T2 increments x and decrements y and commits in between. The
// conditional outcomes still hold, so S-NOrec commits T1 while baseline
// NOrec aborts it — a "false conflict" at the semantic level.
func TestPaperAlgorithm1(t *testing.T) {
	run := func(semantic bool) (committed bool, final int64) {
		g := NewGlobal()
		x, y, z := core.NewVar(5), core.NewVar(5), core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		ok1 := t1.Cmp(x, core.OpGT, 0)
		ok2 := t1.Cmp(y, core.OpGT, 0)
		if !ok1 || !ok2 {
			t.Fatal("initial conditions must hold")
		}

		txtest.MustCommit(t2, func() {
			t2.Inc(x, 1)
			t2.Inc(y, -1)
		})

		committed = txtest.Step(t1, func() { t1.Write(z, 1) }) &&
			!txtest.Aborted(func() { t1.Commit() })
		if !committed {
			t1.Cleanup()
		}
		return committed, z.Load()
	}

	if ok, z := run(true); !ok || z != 1 {
		t.Errorf("S-NOrec: committed=%v z=%d, want commit with z=1", ok, z)
	}
	if ok, _ := run(false); ok {
		t.Error("baseline NOrec must abort T1 (value-based validation)")
	}
}

// TestPaperAlgorithm8 reproduces the opaque history of Algorithm 8: T1 does
// cmp(x>=0), T2 commits x=1,y=1, then T1 reads y and writes z. With the
// semantic API the history is opaque with serialization T2 -> T1, so S-NOrec
// commits and T1 must observe y=1.
func TestPaperAlgorithm8(t *testing.T) {
	g := NewGlobal()
	x, y, z := core.NewVar(0), core.NewVar(0), core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	if !t1.Cmp(x, core.OpGTE, 0) {
		t.Fatal("x >= 0 must hold")
	}

	txtest.MustCommit(t2, func() {
		t2.Write(x, 1)
		t2.Write(y, 1)
	})

	var yv int64
	if !txtest.Step(t1, func() { yv = t1.Read(y) }) {
		t.Fatal("S-NOrec must survive: the cmp fact x>=0 still holds")
	}
	if yv != 1 {
		t.Fatalf("T1 read y = %d; serialized after T2 it must see 1", yv)
	}
	if !txtest.MustCommitRest(t1, func() { t1.Write(z, yv) }) {
		t.Fatal("T1 must commit")
	}
	if z.Load() != 1 {
		t.Fatalf("z = %d", z.Load())
	}

	// Baseline NOrec aborts at the read of y: the read of x pinned value 0.
	g2 := NewGlobal()
	x2, y2 := core.NewVar(0), core.NewVar(0)
	b1 := NewTx(g2, false)
	b2 := NewTx(g2, false)
	b1.Start()
	_ = b1.Cmp(x2, core.OpGTE, 0)
	txtest.MustCommit(b2, func() {
		b2.Write(x2, 1)
		b2.Write(y2, 1)
	})
	if txtest.Step(b1, func() { _ = b1.Read(y2) }) {
		t.Fatal("baseline NOrec must abort on the read of y")
	}
}

// TestPaperAlgorithm9 reproduces the non-opaque history of Algorithm 9: T1
// reads y (=0), T2 commits x=1,y=1, then T1 evaluates cmp(x>=1). Committing
// would be inconsistent with the earlier read of y, so even S-NOrec must
// abort at the cmp.
func TestPaperAlgorithm9(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(0), core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	if got := t1.Read(y); got != 0 {
		t.Fatalf("read y = %d", got)
	}

	txtest.MustCommit(t2, func() {
		t2.Write(x, 1)
		t2.Write(y, 1)
	})

	if txtest.Step(t1, func() { _ = t1.Cmp(x, core.OpGTE, 1) }) {
		t.Fatal("S-NOrec must abort: cmp after an invalidated read breaks opacity")
	}
}

// TestCmpFalseOutcomeValidated checks the inverse-operator encoding end to
// end: a condition observed false keeps the transaction valid only while it
// stays false.
func TestCmpFalseOutcomeValidated(t *testing.T) {
	g := NewGlobal()
	x, z := core.NewVar(0), core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	if t1.Cmp(x, core.OpGT, 10) {
		t.Fatal("condition should be false")
	}

	// A write that keeps the condition false is harmless...
	txtest.MustCommit(t2, func() { t2.Write(x, 5) })
	if !txtest.Step(t1, func() { t1.Write(z, 1) }) ||
		txtest.Aborted(func() { t1.Commit() }) {
		t.Fatal("false-outcome fact still holds; T1 must commit")
	}

	// ...but one that flips it to true aborts the reader.
	t1.Start()
	if t1.Cmp(x, core.OpGT, 10) {
		t.Fatal("condition should be false")
	}
	txtest.MustCommit(t2, func() { t2.Write(x, 50) })
	t1.Write(z, 2)
	if !txtest.Aborted(func() { t1.Commit() }) {
		t.Fatal("flipped outcome must abort")
	}
	t1.Cleanup()
}

// TestWriteSkewAborted: NOrec's global validation forbids write skew.
func TestWriteSkewAborted(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		x, y := core.NewVar(0), core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		t2.Start()
		_ = t1.Read(x)
		_ = t2.Read(y)
		t1.Write(y, 1)
		t2.Write(x, 1)

		if txtest.Aborted(func() { t1.Commit() }) {
			t.Fatal("first committer must succeed")
		}
		if !txtest.Aborted(func() { t2.Commit() }) {
			t.Fatalf("semantic=%v: write skew must abort the second committer", semantic)
		}
		t2.Cleanup()
	}
}

func TestReadOnlyCommitLeavesLockAlone(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(3)
	tx := NewTx(g, true)
	before := g.Sequence()
	txtest.MustCommit(tx, func() {
		_ = tx.Read(v)
		_ = tx.Cmp(v, core.OpGT, 0)
	})
	if g.Sequence() != before {
		t.Fatal("read-only commit must not advance the sequence lock")
	}
}

func TestSequenceLockParity(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	tx := NewTx(g, true)
	for i := 0; i < 5; i++ {
		txtest.MustCommit(tx, func() { tx.Write(v, int64(i)) })
	}
	if seq := g.Sequence(); seq != 10 {
		t.Fatalf("sequence = %d, want 10 (two ticks per writer commit)", seq)
	}
	if g.Sequence()&1 != 0 {
		t.Fatal("lock must be released (even)")
	}
}

func TestDelegationStats(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(5)

	base := NewTx(g, false)
	txtest.MustCommit(base, func() {
		_ = base.Cmp(v, core.OpGT, 0)
		base.Inc(v, 1)
	})
	bs := base.AttemptStats()
	if bs.Compares != 0 || bs.Incs != 0 {
		t.Fatalf("baseline must delegate: %+v", bs)
	}
	if bs.Reads != 2 || bs.Writes != 1 {
		t.Fatalf("baseline delegation counts: %+v (want 2 reads, 1 write)", bs)
	}

	sem := NewTx(g, true)
	txtest.MustCommit(sem, func() {
		_ = sem.Cmp(v, core.OpGT, 0)
		sem.Inc(v, 1)
	})
	ss := sem.AttemptStats()
	if ss.Compares != 1 || ss.Incs != 1 || ss.Reads != 0 || ss.Writes != 0 {
		t.Fatalf("semantic counts: %+v", ss)
	}
}

func TestCmpVarsNativeFact(t *testing.T) {
	g := NewGlobal()
	a, b := core.NewVar(3), core.NewVar(7)
	tx := NewTx(g, true)
	txtest.MustCommit(tx, func() {
		if tx.CmpVars(a, core.OpLT, b) != true {
			t.Fatal("3 < 7")
		}
		if tx.CmpVars(b, core.OpLT, a) != false {
			t.Fatal("!(7 < 3)")
		}
	})
	st := tx.AttemptStats()
	if st.Reads != 0 || st.Compares != 2 {
		t.Fatalf("stats %+v: clean CmpVars is a single compare, no reads", st)
	}
}

// TestCmpVarsSurvivesDualUpdate is the queue head/tail scenario: both
// variables change but the recorded two-address fact (head != tail) still
// holds, so the semantic transaction commits while the baseline aborts.
func TestCmpVarsSurvivesDualUpdate(t *testing.T) {
	run := func(semantic bool) bool {
		g := NewGlobal()
		head, tail, z := core.NewVar(2), core.NewVar(5), core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		if t1.CmpVars(head, core.OpEQ, tail) {
			t.Fatal("queue should be non-empty")
		}
		// A concurrent enqueue+dequeue moves both cursors.
		txtest.MustCommit(t2, func() {
			t2.Inc(head, 1)
			t2.Inc(tail, 1)
		})
		return txtest.MustCommitRest(t1, func() { t1.Write(z, 1) })
	}
	if !run(true) {
		t.Error("S-NOrec must commit: head != tail still holds")
	}
	if run(false) {
		t.Error("baseline NOrec must abort: pinned cursor values changed")
	}
}

// TestCmpVarsAbortsOnOutcomeFlip: when the dual update flips the outcome
// (queue becomes empty), even the semantic build must abort.
func TestCmpVarsAbortsOnOutcomeFlip(t *testing.T) {
	g := NewGlobal()
	head, tail, z := core.NewVar(4), core.NewVar(5), core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	if t1.CmpVars(head, core.OpEQ, tail) {
		t.Fatal("queue should be non-empty")
	}
	txtest.MustCommit(t2, func() { t2.Inc(head, 1) }) // now head == tail
	if txtest.MustCommitRest(t1, func() { t1.Write(z, 1) }) {
		t.Fatal("fact head != tail was broken; T1 must abort")
	}
}

// TestCmpVarsWriteSetFallback: a buffered write on either operand forces the
// value-based path so the comparison sees the transaction's own writes.
func TestCmpVarsWriteSetFallback(t *testing.T) {
	g := NewGlobal()
	a, b := core.NewVar(3), core.NewVar(7)
	tx := NewTx(g, true)
	txtest.MustCommit(tx, func() {
		tx.Write(a, 9)
		if !tx.CmpVars(a, core.OpGT, b) {
			t.Fatal("own write a=9 must be visible: 9 > 7")
		}
		tx.Write(b, 20)
		if tx.CmpVars(a, core.OpGT, b) {
			t.Fatal("own write b=20 must be visible: !(9 > 20)")
		}
	})
}

// TestReadAfterReadDuplicates: the paper deliberately appends one entry per
// read rather than de-duplicating.
func TestReadAfterReadDuplicates(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(1)
	tx := NewTx(g, true)
	txtest.MustCommit(tx, func() {
		_ = tx.Read(v)
		_ = tx.Read(v)
		_ = tx.Cmp(v, core.OpGT, 0)
		if tx.ReadSetLen() != 3 {
			t.Fatalf("read-set = %d entries, want 3 (no dedup)", tx.ReadSetLen())
		}
	})
}
