package norec

import (
	"testing"

	"semstm/internal/core"
	"semstm/internal/txtest"
)

// TestCmpSumSurvivesCompensation: the x + y > 0 example of the technical
// report — a concurrent transfer that moves value between the addends keeps
// the sum, so the S-NOrec reader commits while the baseline aborts.
func TestCmpSumSurvivesCompensation(t *testing.T) {
	run := func(semantic bool) bool {
		g := NewGlobal()
		x, y, z := core.NewVar(10), core.NewVar(-3), core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		if !t1.CmpSum(core.OpGT, 0, []*core.Var{x, y}) {
			t.Fatal("10 + (-3) > 0 must hold")
		}
		txtest.MustCommit(t2, func() {
			t2.Inc(x, -5)
			t2.Inc(y, 5)
		})
		return txtest.MustCommitRest(t1, func() { t1.Write(z, 1) })
	}
	if !run(true) {
		t.Error("S-NOrec must commit: the sum is unchanged")
	}
	if run(false) {
		t.Error("baseline must abort: pinned addend values changed")
	}
}

func TestCmpSumAbortsOnOutcomeFlip(t *testing.T) {
	g := NewGlobal()
	x, y, z := core.NewVar(10), core.NewVar(-3), core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	_ = t1.CmpSum(core.OpGT, 0, []*core.Var{x, y})
	txtest.MustCommit(t2, func() { t2.Write(x, -100) })
	if txtest.MustCommitRest(t1, func() { t1.Write(z, 1) }) {
		t.Fatal("sum flipped negative; the fact is broken")
	}
}

// TestCmpAnySurvivesClauseFlip is the full-strength Algorithm 1: x > 0 || y
// > 0 recorded as ONE fact, so flipping only x negative is harmless.
func TestCmpAnySurvivesClauseFlip(t *testing.T) {
	run := func(semantic bool) bool {
		g := NewGlobal()
		x, y, z := core.NewVar(5), core.NewVar(5), core.NewVar(0)
		t1 := NewTx(g, semantic)
		t2 := NewTx(g, semantic)

		t1.Start()
		ok := t1.CmpAny([]core.Cond{
			{Var: x, Op: core.OpGT, Operand: 0},
			{Var: y, Op: core.OpGT, Operand: 0},
		})
		if !ok {
			t.Fatal("disjunction must hold initially")
		}
		txtest.MustCommit(t2, func() { t2.Write(x, -1) }) // kills clause 1 only
		return txtest.MustCommitRest(t1, func() { t1.Write(z, 1) })
	}
	if !run(true) {
		t.Error("S-NOrec with composed facts must commit: y > 0 carries the OR")
	}
	if run(false) {
		t.Error("baseline must abort")
	}
}

func TestCmpAnyAbortsWhenAllClausesDie(t *testing.T) {
	g := NewGlobal()
	x, y, z := core.NewVar(5), core.NewVar(5), core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	_ = t1.CmpAny([]core.Cond{
		{Var: x, Op: core.OpGT, Operand: 0},
		{Var: y, Op: core.OpGT, Operand: 0},
	})
	txtest.MustCommit(t2, func() {
		t2.Write(x, -1)
		t2.Write(y, -1)
	})
	if txtest.MustCommitRest(t1, func() { t1.Write(z, 1) }) {
		t.Fatal("both clauses died; the OR fact is broken")
	}
}

func TestCmpAnyFalseOutcome(t *testing.T) {
	g := NewGlobal()
	x, y, z := core.NewVar(-5), core.NewVar(-5), core.NewVar(0)
	t1 := NewTx(g, true)
	t2 := NewTx(g, true)

	t1.Start()
	if t1.CmpAny([]core.Cond{
		{Var: x, Op: core.OpGT, Operand: 0},
		{Var: y, Op: core.OpGT, Operand: 0},
	}) {
		t.Fatal("disjunction should be false")
	}
	// A change that keeps the disjunction false is harmless...
	txtest.MustCommit(t2, func() { t2.Write(x, -99) })
	if !txtest.MustCommitRest(t1, func() { t1.Write(z, 1) }) {
		t.Fatal("false outcome preserved; must commit")
	}

	// ...but making any clause true aborts.
	t1.Start()
	if t1.CmpAny([]core.Cond{
		{Var: x, Op: core.OpGT, Operand: 0},
		{Var: y, Op: core.OpGT, Operand: 0},
	}) {
		t.Fatal("disjunction should be false")
	}
	txtest.MustCommit(t2, func() { t2.Write(y, 7) })
	if txtest.MustCommitRest(t1, func() { t1.Write(z, 2) }) {
		t.Fatal("outcome flipped to true; must abort")
	}
}

// TestCmpSumWriteSetDelegation: addends with buffered writes must see the
// transaction's own values.
func TestCmpSumWriteSetDelegation(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(1), core.NewVar(1)
	tx := NewTx(g, true)
	txtest.MustCommit(tx, func() {
		tx.Write(x, 100)
		if !tx.CmpSum(core.OpGT, 50, []*core.Var{x, y}) {
			t.Fatal("own write must count: 100 + 1 > 50")
		}
	})
}

// TestCmpAnyWriteSetDelegation: clauses over buffered writes degrade to
// per-clause semantics and still see own writes.
func TestCmpAnyWriteSetDelegation(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(-1), core.NewVar(-1)
	tx := NewTx(g, true)
	txtest.MustCommit(tx, func() {
		tx.Write(x, 5)
		ok := tx.CmpAny([]core.Cond{
			{Var: x, Op: core.OpGT, Operand: 0},
			{Var: y, Op: core.OpGT, Operand: 0},
		})
		if !ok {
			t.Fatal("own write makes clause 1 true")
		}
	})
}

func TestExprStatsCount(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(1), core.NewVar(2)
	tx := NewTx(g, true)
	txtest.MustCommit(tx, func() {
		_ = tx.CmpSum(core.OpGT, 0, []*core.Var{x, y})
		_ = tx.CmpAny([]core.Cond{{Var: x, Op: core.OpGT, Operand: 0}})
	})
	st := tx.AttemptStats()
	if st.Compares != 2 || st.Reads != 0 {
		t.Fatalf("stats %+v: native expression facts are single compares", st)
	}
}
