package norec

import "semstm/internal/core"

// engine adapts a NOrec Global to the core.Engine registry interface; the
// semantic flag selects between baseline NOrec and S-NOrec descriptors over
// the same global sequence lock.
type engine struct {
	g        *Global
	semantic bool
}

func (e engine) NewTx(cfg core.TxConfig) core.TxImpl {
	tx := NewTx(e.g, e.semantic)
	tx.SetDedupReads(cfg.DedupReads)
	return tx
}

func (e engine) Quiescent() error { return e.g.Quiescent() }

// ClockValue exposes the engine instance's sequence-lock value — the
// per-shard "clock" probe sharded runtimes use to assert that single-shard
// transactions never move another shard's commit metadata.
func (e engine) ClockValue() uint64 { return e.g.Sequence() }

func init() {
	core.RegisterEngine(core.EngineDesc{
		ID:           core.EngineNOrec,
		Name:         "NOrec",
		DisplayOrder: 0,
		TwoPhase:     true,
		New:          func() core.Engine { return engine{g: NewGlobal()} },
	})
	core.RegisterEngine(core.EngineDesc{
		ID:            core.EngineSNOrec,
		Name:          "S-NOrec",
		DisplayOrder:  1,
		Semantic:      true,
		ComposedFacts: true,
		TwoPhase:      true,
		New:           func() core.Engine { return engine{g: NewGlobal(), semantic: true} },
	})
}
