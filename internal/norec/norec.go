// Package norec implements the NOrec STM algorithm [Dalessandro, Spear,
// Scott; PPoPP 2010] and its semantic extension S-NOrec (Algorithm 6 of
// "Extending TM Primitives using Low Level Semantics", SPAA 2016).
//
// NOrec serializes commit phases under a single timestamped sequence lock and
// validates transactions by value: the read-set stores (address, value) pairs
// that must still hold at validation time. S-NOrec generalizes value-based
// validation to semantic validation: plain reads are recorded as EQ facts,
// conditional operations record the operator (or its inverse when the
// observed outcome is false), and increments are buffered in the write-set
// and applied at commit. The baseline and the semantic variant share this
// implementation; the baseline simply *delegates* Cmp to Read and Inc to
// Read+Write, exactly like the paper's non-semantic builds.
package norec

import (
	"fmt"
	"sync/atomic"

	"semstm/internal/core"
)

// Global is the state shared by all transactions of one NOrec runtime: the
// global timestamped sequence lock. An odd value means a writer is committing.
// The lock word is the single hottest word in the whole algorithm — every
// barrier of every thread loads it and every writer CASes it — so it gets a
// cache line of its own rather than sharing one with whatever the runtime
// allocates next to the Global.
type Global struct {
	seq atomic.Uint64
	_   core.PadWord
	// readers is the privatization-barrier surface (DESIGN.md §14): every
	// descriptor publishes its active snapshot in a slot here, and a
	// privatizing committer drains the table to its commit timestamp.
	readers core.ReaderTable
}

// NewGlobal returns a fresh, unlocked global sequence lock.
func NewGlobal() *Global { return &Global{} }

// Sequence exposes the current value of the sequence lock (tests only).
func (g *Global) Sequence() uint64 { return g.seq.Load() }

// Quiescent verifies no commit lock is leaked: at a quiescent point (no
// transaction in flight) the sequence lock must be even. The chaos harness
// calls it after injected aborts and user panics.
func (g *Global) Quiescent() error {
	if s := g.seq.Load(); s&1 != 0 {
		return fmt.Errorf("norec: sequence lock leaked (seq=%d)", s)
	}
	return nil
}

// twoPhaseWaitBound caps how many waiter rounds a two-phase participant
// spends on an odd (writer-held) sequence lock before aborting. Unbounded
// waiting is fine for the single-instance algorithm — the lock holder always
// finishes — but a cross-shard participant may itself hold another shard's
// lock, and two such participants waiting on each other's shards would
// deadlock. Bounding the wait turns the cycle into an abort (counted under
// ReasonOrecLocked, the "locked metadata" bucket) that the retry loop's
// backoff then breaks.
const twoPhaseWaitBound = 128

// Tx is one NOrec transaction descriptor, reused across attempts.
type Tx struct {
	g        *Global
	semantic bool
	dedup    bool
	locked   bool // holds the sequence lock (two-phase Prepare..Publish window)
	snapshot uint64
	// valSeq is the validation watermark (DESIGN.md §8): the sequence value
	// at which the full read-set and expression-set were last known valid.
	// validate skips the whole walk when the lock still reads valSeq —
	// entries appended since then were each read at a stable sequence equal
	// to valSeq, so they hold at valSeq by construction. Once the lock moves
	// past the watermark the full set must be re-walked: value-based
	// validation cannot tell which entries the intervening commit touched.
	valSeq uint64
	reads  *core.SemSet
	exprs  *core.ExprSet // complex-expression facts (extension)
	writes *core.WriteSet
	waiter core.Waiter
	fp     *core.FaultPlan // nil unless fault injection is armed
	stats  core.TxStats
	// slot publishes the active snapshot to privatizing committers; lastW is
	// the quiescence timestamp of the last successful commit — the sequence
	// value from which PrivatizeBarrier drains.
	slot  *core.ReaderSlot
	lastW uint64
}

// NewTx returns a transaction descriptor bound to g. If semantic is true the
// descriptor runs S-NOrec; otherwise it runs baseline NOrec with semantic
// operations delegated to classical barriers.
func NewTx(g *Global, semantic bool) *Tx {
	return &Tx{
		g:        g,
		semantic: semantic,
		reads:    core.NewSemSet(),
		exprs:    core.NewExprSet(),
		writes:   core.NewWriteSet(),
		slot:     g.readers.NewSlot(),
	}
}

// Start begins a new attempt (Algorithm 6 lines 24–28): spin until the
// sequence lock is even and snapshot it.
func (tx *Tx) Start() {
	tx.reads.Reset()
	tx.exprs.Reset()
	tx.writes.Reset()
	tx.stats.Reset()
	tx.locked = false
	if tx.fp != nil {
		tx.fp.Step(core.SiteStart)
	}
	tx.waiter.Reset()
	for {
		s := tx.g.seq.Load()
		if s&1 == 0 {
			// Pin-then-recheck: the reader slot must be visible before the
			// snapshot can be trusted, or a privatizing committer could scan
			// the table between our load and the pin and miss this reader.
			tx.slot.Pin(s)
			if tx.g.seq.Load() == s {
				tx.snapshot = s
				// The empty read-set is trivially valid here, so the watermark
				// starts at the snapshot rather than carrying a value from the
				// previous attempt.
				tx.valSeq = s
				return
			}
			continue
		}
		tx.waiter.Wait()
		tx.stats.SpinWaits++
	}
}

// SetFaultPlan arms or disarms deterministic fault injection.
func (tx *Tx) SetFaultPlan(p *core.FaultPlan) { tx.fp = p }

// validate re-checks the whole read-set against current memory (Algorithm 6
// lines 1–9). It waits (adaptively — see core.Waiter) while a writer holds
// the sequence lock, performs the semantic validation, and confirms the lock
// did not move meanwhile. On success it returns the (even) time at which the
// read-set was known valid and advances the valSeq watermark to it; when the
// lock still reads the watermark the walk is skipped entirely (validation
// coalescing, DESIGN.md §8). On semantic failure it aborts.
func (tx *Tx) validate() uint64 { return tx.validateLimit(0) }

// validateLimit is validate with an optional bound on waiter rounds spent on
// an odd lock (limit 0 waits forever — the single-instance behaviour; the
// two-phase paths pass twoPhaseWaitBound and abort past it).
func (tx *Tx) validateLimit(limit int) uint64 {
	tx.waiter.Reset()
	spins := 0
	for {
		time := tx.g.seq.Load()
		if time&1 != 0 {
			if limit > 0 {
				if spins++; spins > limit {
					core.AbortWith(core.ReasonOrecLocked)
				}
			}
			tx.waiter.Wait()
			tx.stats.SpinWaits++
			continue
		}
		if time == tx.valSeq {
			// Nothing committed since the last full walk: every entry —
			// including ones appended after that walk, each read at a stable
			// sequence equal to the watermark — is known valid at this time.
			tx.slot.Pin(time)
			return time
		}
		if tx.fp != nil && tx.fp.ValidationFail() {
			core.AbortWith(core.ReasonValidation)
		}
		tx.stats.Validations++
		tx.stats.ValEntries += uint64(tx.reads.Len() + tx.exprs.Len())
		if ok, why := tx.reads.BrokenReason(); !ok {
			core.AbortWith(why)
		}
		if !tx.exprs.HoldsNow() {
			core.AbortWith(core.ReasonCmpFlip)
		}
		if time == tx.g.seq.Load() {
			tx.valSeq = time
			// Forward pin movement needs no recheck: a read-set just proven
			// valid at time is no zombie with respect to any commit <= time.
			tx.slot.Pin(time)
			return time
		}
	}
}

// readValid reads *v at a moment consistent with the read-set (Algorithm 6
// lines 10–16): if the sequence lock moved since the snapshot, revalidate and
// re-read until a stable snapshot is obtained.
func (tx *Tx) readValid(v *core.Var) int64 {
	val := v.Load()
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		val = v.Load()
	}
	return val
}

// raw resolves a read-after-write against write-set entry e (Algorithm 6
// lines 17–23). A pending increment is promoted: the current memory value is
// read consistently, recorded as an EQ fact, and folded into the entry, which
// becomes a standard write.
func (tx *Tx) raw(v *core.Var, e *core.WriteEntry) int64 {
	if e.Kind == core.EntryInc {
		val := tx.readValid(v)
		tx.reads.Append(v, core.OpEQ, val)
		tx.writes.Promote(v, e.Val+val)
		tx.stats.Promotes++
	}
	return e.Val
}

// Read implements the classical TM_READ barrier (Algorithm 6 lines 37–43).
func (tx *Tx) Read(v *core.Var) int64 {
	tx.stats.Reads++
	if tx.fp != nil {
		tx.fp.Step(core.SiteRead)
	}
	if e := tx.writes.Get(v); e != nil {
		return tx.raw(v, e)
	}
	val := tx.readValid(v)
	if !tx.dedup || !tx.reads.HasEQ(v, val) {
		tx.reads.Append(v, core.OpEQ, val)
	}
	return val
}

// SetDedupReads toggles read-after-read de-duplication: the paper
// deliberately appends one read-set entry per read because "the overhead of
// discovering duplicates may not be negligible"; this knob exists to measure
// exactly that trade-off (see the ablation benchmarks).
func (tx *Tx) SetDedupReads(on bool) { tx.dedup = on }

// Write implements the classical TM_WRITE barrier (Algorithm 6 lines 50–52).
func (tx *Tx) Write(v *core.Var, val int64) {
	tx.stats.Writes++
	tx.writes.PutWrite(v, val)
}

// Cmp implements the semantic conditional (Algorithm 6 lines 29–36). In the
// baseline (non-semantic) configuration it delegates to Read, reproducing the
// classical behaviour in which the conditional pins the exact value.
func (tx *Tx) Cmp(v *core.Var, op core.Op, operand int64) bool {
	if !tx.semantic {
		return op.Eval(tx.Read(v), operand)
	}
	tx.stats.Compares++
	if tx.fp != nil {
		tx.fp.Step(core.SiteCmp)
	}
	if e := tx.writes.Get(v); e != nil {
		return op.Eval(tx.raw(v, e), operand)
	}
	val := tx.readValid(v)
	result := op.Eval(val, operand)
	tx.reads.AppendOutcome(v, op, operand, result)
	return result
}

// CmpVars implements the address–address conditional (_ITM_S2R). When both
// operands are clean (not in the write-set), S-NOrec records a single
// two-address fact "*a op *b" whose validation re-reads both sides — so
// concurrent updates that move both values while preserving the outcome
// (e.g. head and tail both advancing while head != tail) no longer abort.
// Operands with buffered writes fall back to the address–value machinery.
func (tx *Tx) CmpVars(a *core.Var, op core.Op, b *core.Var) bool {
	if !tx.semantic {
		operand := tx.Read(b)
		return op.Eval(tx.Read(a), operand)
	}
	// One indexed lookup per operand: the write-set's Bloom signature makes
	// the common both-clean case two signature tests with no probing at all.
	if eb := tx.writes.Get(b); eb != nil || tx.writes.Get(a) != nil {
		var operand int64
		if eb != nil {
			operand = tx.raw(b, eb)
		} else {
			tx.stats.Reads++
			operand = tx.readValid(b)
			tx.reads.Append(b, core.OpEQ, operand)
		}
		return tx.Cmp(a, op, operand)
	}
	tx.stats.Compares++
	va, vb := a.Load(), b.Load()
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		va, vb = a.Load(), b.Load()
	}
	result := op.Eval(va, vb)
	tx.reads.AppendOutcomeVar(a, op, b, result)
	return result
}

// CmpSum implements the arithmetic-expression conditional "(Σ vars) op rhs"
// (technical-report extension): the whole sum comparison is recorded as one
// fact, so compensating modifications of the addends (x += d, y -= d) never
// abort the reader. Operands with buffered writes force delegation to
// classical reads.
func (tx *Tx) CmpSum(op core.Op, rhs int64, vars []*core.Var) bool {
	delegate := !tx.semantic
	if !delegate {
		for _, v := range vars {
			if tx.writes.Get(v) != nil {
				delegate = true
				break
			}
		}
	}
	if delegate {
		var sum int64
		for _, v := range vars {
			sum += tx.Read(v)
		}
		return op.Eval(sum, rhs)
	}
	tx.stats.Compares++
	sum := sumLoads(vars)
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		sum = sumLoads(vars)
	}
	result := op.Eval(sum, rhs)
	tx.exprs.AppendSum(vars, op, rhs, result)
	return result
}

func sumLoads(vars []*core.Var) int64 {
	var sum int64
	for _, v := range vars {
		sum += v.Load()
	}
	return sum
}

// CmpAny implements the composed condition "c1 || c2 || ..." as one semantic
// fact (technical-report extension): a clause flipping false is harmless
// while another clause keeps the disjunction true — the full strength of the
// paper's Algorithm 1 example. Clauses over buffered writes degrade to
// per-clause semantics.
func (tx *Tx) CmpAny(conds []core.Cond) bool {
	if !tx.semantic {
		for _, c := range conds {
			if c.Op.Eval(tx.Read(c.Var), c.Operand) {
				return true
			}
		}
		return false
	}
	for _, c := range conds {
		if tx.writes.Get(c.Var) != nil {
			// Per-clause semantic short-circuit (the published algorithm's
			// behaviour for composed conditions).
			for _, cc := range conds {
				if tx.Cmp(cc.Var, cc.Op, cc.Operand) {
					return true
				}
			}
			return false
		}
	}
	tx.stats.Compares++
	result := evalAny(conds)
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		result = evalAny(conds)
	}
	tx.exprs.AppendOr(conds, result)
	return result
}

func evalAny(conds []core.Cond) bool {
	for _, c := range conds {
		if c.Eval() {
			return true
		}
	}
	return false
}

// Inc implements the semantic increment (Algorithm 6 lines 44–49). In the
// baseline configuration it delegates to Read+Write.
func (tx *Tx) Inc(v *core.Var, delta int64) {
	if !tx.semantic {
		tx.Write(v, tx.Read(v)+delta)
		return
	}
	tx.stats.Incs++
	tx.writes.PutInc(v, delta)
}

// Commit publishes the transaction. Read-only (and in S-NOrec compare-only)
// transactions commit with zero CAS traffic: their last read/cmp was already
// validated, and the sequence lock is never touched. Writers acquire the
// sequence lock by CAS from their snapshot; each failure means a concurrent
// commit advanced the lock, so the newer timestamp is adopted by revalidating
// at it (counted as a clock adoption) before retrying. The write-set is then
// applied — increments read memory here, safely, since commit phases are
// serial — and the lock released two ticks later.
func (tx *Tx) Commit() {
	if tx.fp != nil {
		tx.fp.Step(core.SiteCommit)
	}
	if tx.writes.Len() == 0 {
		tx.lastW = tx.snapshot
		tx.slot.Clear()
		return
	}
	for !tx.g.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
		tx.stats.ClockAdopts++
		tx.snapshot = tx.validate()
	}
	if tx.fp != nil {
		tx.fp.CommitDelay() // stretch the commit window under the lock
	}
	for _, e := range tx.writes.Entries() {
		if e.Kind == core.EntryInc {
			e.Var.StoreNT(e.Var.Load() + e.Val)
		} else {
			e.Var.StoreNT(e.Val)
		}
	}
	tx.g.seq.Store(tx.snapshot + 2)
	// Quiescence timestamp: any reader that starts at (or extends past)
	// snapshot+2 observed this commit's write-back.
	tx.lastW = tx.snapshot + 2
	tx.slot.Clear()
}

// CommitPrivatize is Commit with privatization-barrier semantics: after the
// write-back is published it drains the reader table to the commit
// timestamp, waiting out every in-flight transaction whose snapshot
// predates it (the doomed zombies of the privatization literature). On
// return the caller owns whatever the transaction unlinked. Aborts exactly
// like Commit, in which case no drain runs.
func (tx *Tx) CommitPrivatize() {
	tx.Commit()
	tx.g.readers.Drain(tx.lastW)
}

// PrivatizeBarrier is the drain alone, valid after a successful
// Commit/Publish on this descriptor; the sharded runtime composes it per
// touched shard.
func (tx *Tx) PrivatizeBarrier() { tx.g.readers.Drain(tx.lastW) }

// Prepare acquires the sequence lock for a two-phase (cross-shard) commit —
// the same CAS-from-snapshot loop as Commit, but with bounded waiting inside
// the adopt-revalidate step so a participant that already holds another
// shard's lock cannot deadlock against a symmetric participant. Read-only
// participants (empty write-set) acquire nothing. A successful Prepare
// leaves the lock odd until Publish or Cleanup.
func (tx *Tx) Prepare() {
	if tx.writes.Len() == 0 {
		return
	}
	for !tx.g.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
		tx.stats.ClockAdopts++
		tx.snapshot = tx.validateLimit(twoPhaseWaitBound)
	}
	tx.locked = true
}

// Validate re-certifies this instance's snapshot for a two-phase commit.
// While the sequence lock is held (Prepare succeeded with writes), the
// instance's memory cannot change — every commit into a shard's variables
// goes through that shard's engine — and the CAS itself proved the read-set
// valid at lock time, so there is nothing to check. A lock-free participant
// (read-only on this shard, or a live multi-shard snapshot being re-certified
// after a ticket movement) runs a bounded validation walk and adopts the
// newer timestamp.
func (tx *Tx) Validate() {
	if tx.locked {
		return
	}
	tx.snapshot = tx.validateLimit(twoPhaseWaitBound)
}

// Publish is phase 2 of the two-phase commit: apply the write-set (deferred
// increments read memory here, safely — the lock serializes commits into
// this instance) and release the lock two ticks later. It must not fail;
// read-only participants do nothing.
func (tx *Tx) Publish() {
	if !tx.locked {
		tx.lastW = tx.snapshot
		tx.slot.Clear()
		return
	}
	if tx.fp != nil {
		tx.fp.CommitDelay() // stretch the publish window under the lock
	}
	for _, e := range tx.writes.Entries() {
		if e.Kind == core.EntryInc {
			e.Var.StoreNT(e.Var.Load() + e.Val)
		} else {
			e.Var.StoreNT(e.Val)
		}
	}
	tx.locked = false
	tx.g.seq.Store(tx.snapshot + 2)
	tx.lastW = tx.snapshot + 2
	tx.slot.Clear()
}

// Cleanup releases held resources after an abort. The single-instance
// algorithm aborts only while not holding the sequence lock; a two-phase
// participant, however, can abort between Prepare and Publish (another
// shard's validation failed), in which case the lock is restored to its
// pre-Prepare value — no memory was written, so reverting the lock word is
// indistinguishable from the lock never having been taken.
func (tx *Tx) Cleanup() {
	if tx.locked {
		tx.locked = false
		tx.g.seq.Store(tx.snapshot)
	}
	tx.slot.Clear()
}

// AttemptStats exposes the per-attempt operation counters.
func (tx *Tx) AttemptStats() *core.TxStats { return &tx.stats }

// ReadSetLen reports the number of read-set entries (tests and diagnostics).
func (tx *Tx) ReadSetLen() int { return tx.reads.Len() }

// WriteSetLen reports the number of write-set entries (tests and diagnostics).
func (tx *Tx) WriteSetLen() int { return tx.writes.Len() }
