package norec

import (
	"testing"

	"semstm/internal/core"
	"semstm/internal/txtest"
)

// TestCoalescedValidationCatchesLateWrite is the safety regression for
// validation coalescing: a write that lands exactly between a snapshot
// extension (which advanced the valSeq watermark) and the commit must still
// be caught. The watermark must never let the commit-time revalidation skip
// an entry that the late write invalidated.
func TestCoalescedValidationCatchesLateWrite(t *testing.T) {
	g := NewGlobal()
	x, y, z, w := core.NewVar(0), core.NewVar(0), core.NewVar(0), core.NewVar(0)
	t1 := NewTx(g, true)
	wr := NewTx(g, true)

	t1.Start()
	if !txtest.Step(t1, func() {
		if t1.Read(x) != 0 {
			t.Fatal("x must read 0")
		}
		t1.Write(w, 1)
	}) {
		t.Fatal("setup step aborted")
	}
	// Unrelated commit moves the lock; t1's next read extends the snapshot
	// with a full walk, advancing the watermark past the start snapshot.
	txtest.MustCommit(wr, func() { wr.Write(z, 1) })
	if !txtest.Step(t1, func() { _ = t1.Read(y) }) {
		t.Fatal("snapshot extension must succeed (x still 0)")
	}
	if t1.valSeq != g.Sequence() {
		t.Fatalf("watermark %d not extended to sequence %d", t1.valSeq, g.Sequence())
	}
	walks := t1.AttemptStats().Validations
	// The late write: lands after the extension, before the commit.
	txtest.MustCommit(wr, func() { wr.Write(x, 7) })
	if txtest.MustCommitRest(t1, func() {}) {
		t.Fatal("commit must abort: x EQ 0 was invalidated after the extension")
	}
	if w.Load() != 0 {
		t.Fatal("aborted writer leaked its write")
	}
	if t1.AttemptStats().Validations == walks {
		t.Fatal("commit-time revalidation was coalesced away")
	}
}

// TestAdoptedCommitSurvivesUnrelatedLateWrite is the liveness counterpart:
// an unrelated write landing between extension and commit costs one clock
// adoption plus one revalidation, not an abort.
func TestAdoptedCommitSurvivesUnrelatedLateWrite(t *testing.T) {
	g := NewGlobal()
	x, z, w := core.NewVar(3), core.NewVar(0), core.NewVar(0)
	t1 := NewTx(g, true)
	wr := NewTx(g, true)

	t1.Start()
	if !txtest.Step(t1, func() {
		if !t1.Cmp(x, core.OpGTE, 0) {
			t.Fatal("x >= 0 must hold")
		}
		t1.Write(w, 1)
	}) {
		t.Fatal("setup step aborted")
	}
	txtest.MustCommit(wr, func() { wr.Write(z, 1) })
	if !txtest.MustCommitRest(t1, func() {}) {
		t.Fatal("commit must survive: the late write did not break the fact")
	}
	if w.Load() != 1 {
		t.Fatalf("committed write lost: w = %d", w.Load())
	}
	if a := t1.AttemptStats().ClockAdopts; a != 1 {
		t.Fatalf("ClockAdopts = %d, want exactly 1", a)
	}
}

// TestWatermarkSkipsRedundantWalk drives validate directly: after a full
// walk advanced the watermark, another validate call at the same sequence
// must return without re-walking the read-set.
func TestWatermarkSkipsRedundantWalk(t *testing.T) {
	g := NewGlobal()
	x, z := core.NewVar(0), core.NewVar(0)
	t1 := NewTx(g, true)
	wr := NewTx(g, true)

	t1.Start()
	txtest.Step(t1, func() { _ = t1.Read(x) })
	txtest.MustCommit(wr, func() { wr.Write(z, 1) })
	if got := t1.validate(); got != g.Sequence() {
		t.Fatalf("validate returned %d, sequence is %d", got, g.Sequence())
	}
	walks, entries := t1.AttemptStats().Validations, t1.AttemptStats().ValEntries
	if walks == 0 {
		t.Fatal("first validate after a commit must walk")
	}
	for i := 0; i < 3; i++ {
		if got := t1.validate(); got != g.Sequence() {
			t.Fatalf("validate returned %d, sequence is %d", got, g.Sequence())
		}
	}
	if v := t1.AttemptStats().Validations; v != walks {
		t.Fatalf("redundant validates walked the set: %d -> %d passes", walks, v)
	}
	if e := t1.AttemptStats().ValEntries; e != entries {
		t.Fatalf("redundant validates re-checked entries: %d -> %d", entries, e)
	}
	t1.Cleanup()
}

// TestReadOnlyCommitZeroCAS pins the zero-CAS read-only commit: a
// transaction with an empty write-set never touches the sequence lock.
func TestReadOnlyCommitZeroCAS(t *testing.T) {
	g := NewGlobal()
	x := core.NewVar(5)
	for _, semantic := range []bool{false, true} {
		t1 := NewTx(g, semantic)
		before := g.Sequence()
		if !txtest.MustCommit(t1, func() {
			_ = t1.Read(x)
			_ = t1.Cmp(x, core.OpGTE, 1)
		}) {
			t.Fatal("read-only transaction must commit")
		}
		if after := g.Sequence(); after != before {
			t.Fatalf("semantic=%v: read-only commit moved the lock %d -> %d",
				semantic, before, after)
		}
	}
}
