// Wire front-end: a newline-delimited JSON request/response protocol over
// TCP, plus an HTTP /metrics endpoint in the Prometheus text format.
//
// One line, one transaction:
//
//	→ {"id":7,"ops":[{"op":"cmp","ks":"acct","key":1,"cmp":"gte","val":50},
//	                 {"op":"inc","ks":"acct","key":1,"val":-50},
//	                 {"op":"inc","ks":"acct","key":2,"val":50}]}
//	← {"id":7,"ok":true,"guard":true}
//
// "ok" is commitment, "guard" that every cmp held (writes applied); reads
// come back in op order. Requests on one connection execute in order; open
// many connections for concurrency (the loadgen simulates thousands).
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"

	"semstm/stm"
)

// WireOp is one operation on the wire.
type WireOp struct {
	Op  string `json:"op"`
	Ks  string `json:"ks,omitempty"`
	Key uint64 `json:"key"`
	Val int64  `json:"val,omitempty"`
	Cmp string `json:"cmp,omitempty"`
}

// WireRequest is one request line.
type WireRequest struct {
	ID  uint64   `json:"id"`
	Ops []WireOp `json:"ops"`
}

// WireResponse is one response line.
type WireResponse struct {
	ID    uint64  `json:"id"`
	OK    bool    `json:"ok"`
	Guard bool    `json:"guard"`
	Reads []int64 `json:"reads,omitempty"`
	Err   string  `json:"err,omitempty"`
}

// decode translates a wire request into an executable Request.
func (wr *WireRequest) decode() (*Request, error) {
	r := &Request{Ops: make([]Op, len(wr.Ops))}
	for i, wo := range wr.Ops {
		code, err := ParseOpCode(wo.Op)
		if err != nil {
			return nil, err
		}
		op := Op{Code: code, Ks: wo.Ks, Key: wo.Key, Val: wo.Val}
		if code == OpCmp {
			if op.Cmp, err = ParseCmp(wo.Cmp); err != nil {
				return nil, err
			}
		}
		r.Ops[i] = op
	}
	return r, nil
}

// cmpName spells a semantic operator as the wire protocol does.
func cmpName(op stm.Op) string {
	switch op {
	case stm.OpEQ:
		return "eq"
	case stm.OpNEQ:
		return "neq"
	case stm.OpGT:
		return "gt"
	case stm.OpGTE:
		return "gte"
	case stm.OpLT:
		return "lt"
	case stm.OpLTE:
		return "lte"
	default:
		return fmt.Sprintf("op%d", uint8(op))
	}
}

// Server owns the TCP listener and the metrics HTTP listener of one store.
type Server struct {
	store *Store
	ln    net.Listener
	mln   net.Listener
	hs    *http.Server
	wg    sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts the wire protocol on addr and, when metricsAddr is non-empty,
// the /metrics endpoint there. Pass ":0" to bind an ephemeral port; Addr and
// MetricsAddr report the bound addresses.
func Serve(store *Store, addr, metricsAddr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			ln.Close()
			return nil, err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			store.WriteMetrics(w)
		})
		srv.mln = mln
		srv.hs = &http.Server{Handler: mux}
		srv.wg.Add(1)
		go func() {
			defer srv.wg.Done()
			srv.hs.Serve(mln)
		}()
	}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv, nil
}

// Addr reports the wire listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr reports the metrics listener's address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.mln == nil {
		return ""
	}
	return s.mln.Addr().String()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// maxLine bounds one request line (1 MiB — thousands of ops).
const maxLine = 1 << 20

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 4096), maxLine)
	out := bufio.NewWriter(conn)
	enc := json.NewEncoder(out)
	for in.Scan() {
		line := in.Bytes()
		if len(line) == 0 {
			continue
		}
		var wr WireRequest
		resp := WireResponse{}
		if err := json.Unmarshal(line, &wr); err != nil {
			resp.Err = fmt.Sprintf("bad request: %v", err)
		} else {
			resp.ID = wr.ID
			req, err := wr.decode()
			if err != nil {
				resp.Err = err.Error()
			} else {
				res := s.store.Submit(req)
				resp.OK = res.Committed
				resp.Guard = res.GuardOK
				resp.Reads = res.Reads
				if res.Err != nil {
					resp.Err = res.Err.Error()
				}
			}
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// Close stops both listeners, closes every live connection, and waits for
// the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	if s.hs != nil {
		s.hs.Close()
	}
	s.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// Client is a minimal wire-protocol client (loadgen's TCP mode, tests).
type Client struct {
	conn net.Conn
	in   *bufio.Scanner
	enc  *json.Encoder
	out  *bufio.Writer
	next uint64
}

// Dial connects to a server's wire address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 4096), maxLine)
	out := bufio.NewWriter(conn)
	return &Client{conn: conn, in: in, enc: json.NewEncoder(out), out: out}, nil
}

// Do executes one request and returns its response.
func (c *Client) Do(ops []WireOp) (WireResponse, error) {
	c.next++
	if err := c.enc.Encode(&WireRequest{ID: c.next, Ops: ops}); err != nil {
		return WireResponse{}, err
	}
	if err := c.out.Flush(); err != nil {
		return WireResponse{}, err
	}
	if !c.in.Scan() {
		if err := c.in.Err(); err != nil {
			return WireResponse{}, err
		}
		return WireResponse{}, fmt.Errorf("server: connection closed")
	}
	var resp WireResponse
	if err := json.Unmarshal(c.in.Bytes(), &resp); err != nil {
		return WireResponse{}, err
	}
	return resp, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
