package server

import (
	"sync"
	"sync/atomic"
	"testing"

	"semstm/stm"
)

// chaosGrid is the batch/solo equivalence suite required by the PR: the same
// seeded transfer workload driven concurrently through the coalescing
// batcher and through per-request execution, under injected aborts and
// interleave yields, across the semantic engines and shard widths. The
// conservation invariant — the total balance is exactly what was seeded,
// whatever committed, aborted, guard-failed, merged, or fell out — holds on
// both arms; doomed requests must abort without taking batchmates with them.
func chaosGrid(t *testing.T, f func(t *testing.T, algo stm.Algorithm, shards int)) {
	t.Helper()
	for _, algo := range []stm.Algorithm{stm.SNOrec, stm.STL2} {
		for _, shards := range []int{1, 8} {
			name := algo.String() + "/shards=1"
			if shards != 1 {
				name = algo.String() + "/shards=8"
			}
			t.Run(name, func(t *testing.T) { f(t, algo, shards) })
		}
	}
}

// runConservation drives the seeded workload through one store and returns
// (committed, doomedCommitted) request counts. Every request either moves a
// unit between two cells or nothing at all, so the keyspace total is
// invariant.
func runConservation(t *testing.T, s *Store, workers, perWorker int, hot uint64, seed int64) (uint64, uint64) {
	t.Helper()
	const initial = int64(100)
	ks := s.Keyspace("")
	for k := uint64(0); k < hot; k++ {
		ks.Var(k).StoreNT(initial)
	}
	var wg sync.WaitGroup
	var commitCount, doomCommit, doomAborts atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newTestRng(seed + int64(w)*104729)
			r := &Request{}
			for i := 0; i < perWorker; i++ {
				a := rng.Uint64() % hot
				b := rng.Uint64() % hot
				if rng.Intn(2) == 0 {
					// Guarded transfer: in-place in a window (or solo when
					// the keys span shards).
					r.Ops = append(r.Ops[:0],
						Op{Code: OpCmp, Key: a, Cmp: stm.OpGTE, Val: 1},
						Op{Code: OpInc, Key: a, Val: -1},
						Op{Code: OpInc, Key: b, Val: 1},
					)
				} else {
					// Unguarded rotate: inc-only, merge-eligible.
					r.Ops = append(r.Ops[:0],
						Op{Code: OpInc, Key: a, Val: -1},
						Op{Code: OpInc, Key: b, Val: 1},
					)
				}
				doomed := i%61 == 17
				r.doom = doomed
				res := s.Submit(r)
				if res.Committed {
					commitCount.Add(1)
					if doomed {
						doomCommit.Add(1)
					}
				} else if doomed {
					doomAborts.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	var sum int64
	for k := uint64(0); k < hot; k++ {
		sum += ks.Var(k).Load()
	}
	if want := initial * int64(hot); sum != want {
		t.Fatalf("conservation violated: total = %d, want %d", sum, want)
	}
	if doomAborts.Load() == 0 {
		t.Fatalf("no doomed request ran")
	}
	return commitCount.Load(), doomCommit.Load()
}

// TestChaosConservationBatchVsSolo is the batch/solo equivalence chaos run.
func TestChaosConservationBatchVsSolo(t *testing.T) {
	chaosGrid(t, func(t *testing.T, algo stm.Algorithm, shards int) {
		const (
			workers   = 12
			perWorker = 120
			hot       = 48
		)
		for _, batching := range []bool{true, false} {
			s, err := Open(Config{Algo: algo, Shards: shards, Batching: batching, MaxBatch: 32})
			if err != nil {
				t.Fatal(err)
			}
			s.rt.SetYieldEvery(3)
			s.rt.SetFaultPlan(stm.NewFaultPlan(0xC0FFEE^uint64(shards)).WithSpurious(stm.SiteCommit, 15))
			commits, doomCommits := runConservation(t, s, workers, perWorker, hot, 7)
			if commits == 0 {
				t.Fatalf("batching=%v: nothing committed", batching)
			}
			if doomCommits != 0 {
				t.Fatalf("batching=%v: %d doomed requests committed", batching, doomCommits)
			}
			if batching {
				if s.metrics.Batches() == 0 {
					t.Fatalf("no batch window formed under concurrent load")
				}
				// A doomed single-shard request lands in windows; the
				// straggler rule must have torn at least one apart.
				if s.metrics.soloAbort.Load() == 0 && shards == 1 {
					t.Fatalf("doomed requests never tore a window (straggler rule untested)")
				}
			}
		}
	})
}

// TestChaosDurableBatching runs the counter workload against a durable
// batched store: group commit under the batcher on top of the WAL's own
// group commit, then verifies the log replays to the same totals.
func TestChaosDurableBatching(t *testing.T) {
	dir := t.TempDir()
	open := func(batching bool) *Store {
		s, err := Open(Config{Algo: stm.SNOrec, Shards: 4, DurableDir: dir, Fsync: "none", Batching: batching})
		if err != nil {
			t.Fatal(err)
		}
		s.rt.SetYieldEvery(2)
		return s
	}
	s := open(true)
	const workers, perWorker, hot = 8, 150, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newTestRng(int64(w) * 31)
			r := &Request{}
			for i := 0; i < perWorker; i++ {
				r.Ops = append(r.Ops[:0], Op{Code: OpInc, Key: rng.Uint64() % hot, Val: 1})
				if res := s.Submit(r); !res.Committed {
					t.Errorf("durable inc aborted: %+v", res)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var before int64
	for k := uint64(0); k < hot; k++ {
		before += s.Keyspace("").Var(k).Load()
	}
	if before != workers*perWorker {
		t.Fatalf("pre-close total = %d, want %d", before, workers*perWorker)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Reopen: recovery must replay the batched commits to the same totals.
	s2 := open(false)
	defer s2.Close()
	var after int64
	for k := uint64(0); k < hot; k++ {
		after += s2.Keyspace("").Var(k).Load()
	}
	if after != before {
		t.Fatalf("recovered total = %d, want %d", after, before)
	}
}
