package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"semstm/stm"
)

// TestWireRoundTrip drives the full network stack: server on ephemeral
// ports, concurrent clients over real TCP, and a /metrics scrape.
func TestWireRoundTrip(t *testing.T) {
	s := volatileStore(t, stm.SNOrec, 4, true)
	srv, err := Serve(s, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	resp, err := c.Do([]WireOp{{Op: "write", Ks: "acct", Key: 1, Val: 100}})
	if err != nil || !resp.OK || !resp.Guard {
		t.Fatalf("write: %+v err=%v", resp, err)
	}
	resp, err = c.Do([]WireOp{
		{Op: "cmp", Ks: "acct", Key: 1, Cmp: "gte", Val: 50},
		{Op: "inc", Ks: "acct", Key: 1, Val: -50},
		{Op: "read", Ks: "acct", Key: 1},
	})
	if err != nil || !resp.OK || !resp.Guard {
		t.Fatalf("guarded dec: %+v err=%v", resp, err)
	}
	// The read ran before commit applied the deferred inc's merge? No — the
	// read is in the same transaction and promotes the inc: 100-50.
	if len(resp.Reads) != 1 || resp.Reads[0] != 50 {
		t.Fatalf("reads = %v, want [50]", resp.Reads)
	}
	// Failed guard commits empty.
	resp, err = c.Do([]WireOp{
		{Op: "cmp", Ks: "acct", Key: 1, Cmp: "gte", Val: 1000},
		{Op: "write", Ks: "acct", Key: 1, Val: 0},
	})
	if err != nil || !resp.OK || resp.Guard {
		t.Fatalf("failed guard: %+v err=%v", resp, err)
	}
	// Malformed op reports per-request, connection stays usable.
	resp, err = c.Do([]WireOp{{Op: "nope", Key: 1}})
	if err != nil || resp.Err == "" {
		t.Fatalf("bad op: %+v err=%v", resp, err)
	}
	resp, err = c.Do([]WireOp{{Op: "read", Ks: "acct", Key: 1}})
	if err != nil || !resp.OK || resp.Reads[0] != 50 {
		t.Fatalf("read after error: %+v err=%v", resp, err)
	}

	// Concurrent connections hammering one hot counter.
	const conns, per = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc, err := Dial(srv.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cc.Close()
			for j := 0; j < per; j++ {
				if r, err := cc.Do([]WireOp{{Op: "inc", Ks: "hot", Key: 0, Val: 1}}); err != nil || !r.OK {
					t.Errorf("inc: %+v err=%v", r, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	resp, err = c.Do([]WireOp{{Op: "read", Ks: "hot", Key: 0}})
	if err != nil || resp.Reads[0] != conns*per {
		t.Fatalf("hot counter = %v (err=%v), want %d", resp.Reads, err, conns*per)
	}

	// Metrics endpoint serves the Prometheus families.
	hr, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.MetricsAddr()))
	if err != nil {
		t.Fatalf("metrics scrape: %v", err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if !strings.Contains(string(body), "semstm_requests_total") ||
		!strings.Contains(string(body), "semstm_batch_size_bucket") {
		t.Fatalf("metrics body missing families:\n%s", body)
	}
}

// TestRunLoadTCP smoke-tests the wire-mode load generator.
func TestRunLoadTCP(t *testing.T) {
	s := volatileStore(t, stm.SNOrec, 4, true)
	srv, err := Serve(s, "127.0.0.1:0", "")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	res, err := RunLoadTCP(srv.Addr(), LoadConfig{
		Workload: "counter", Connections: 4, Keys: 1 << 10, HotKeys: 64,
		Duration: 100 * 1e6, Seed: 3,
	})
	if err != nil {
		t.Fatalf("RunLoadTCP: %v", err)
	}
	if res.Requests == 0 || res.Committed == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
}

// TestRunLoadInProcess smoke-tests every in-process workload mix.
func TestRunLoadInProcess(t *testing.T) {
	for _, wl := range []string{"counter", "readmostly", "mixed"} {
		s := volatileStore(t, stm.SNOrec, 4, true)
		res, err := RunLoad(s, LoadConfig{
			Workload: wl, Connections: 8, Keys: 1 << 12, HotKeys: 128,
			Duration: 80 * 1e6, Seed: 11,
		})
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if res.Requests == 0 || res.Committed == 0 {
			t.Fatalf("%s: no traffic: %+v", wl, res)
		}
		if res.RequestsPerSec <= 0 {
			t.Fatalf("%s: rate = %v", wl, res.RequestsPerSec)
		}
	}
}
