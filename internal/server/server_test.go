package server

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"semstm/stm"
)

func asAbort(err error, target **stm.AbortError) bool { return errors.As(err, target) }

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func volatileStore(t *testing.T, algo stm.Algorithm, shards int, batching bool) *Store {
	t.Helper()
	s, err := Open(Config{Algo: algo, Shards: shards, Batching: batching})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.rt.SetYieldEvery(0)
	return s
}

func incReq(key uint64, delta int64) *Request {
	return &Request{Ops: []Op{{Code: OpInc, Key: key, Val: delta}}}
}

func readKey(t *testing.T, s *Store, key uint64) int64 {
	t.Helper()
	res := s.Submit(&Request{Ops: []Op{{Code: OpRead, Key: key}}})
	if !res.Committed || len(res.Reads) != 1 {
		t.Fatalf("read of key %d failed: %+v", key, res)
	}
	return res.Reads[0]
}

// TestSubmitBasics exercises the four op kinds and guard semantics through
// the public Submit path on batched and unbatched stores.
func TestSubmitBasics(t *testing.T) {
	for _, batching := range []bool{false, true} {
		s := volatileStore(t, stm.SNOrec, 4, batching)
		res := s.Submit(&Request{Ops: []Op{{Code: OpWrite, Key: 1, Val: 100}}})
		if !res.Committed || !res.GuardOK {
			t.Fatalf("write: %+v", res)
		}
		// Guard holds: write applies.
		res = s.Submit(&Request{Ops: []Op{
			{Code: OpCmp, Key: 1, Cmp: stm.OpGTE, Val: 50},
			{Code: OpInc, Key: 1, Val: -50},
		}})
		if !res.Committed || !res.GuardOK {
			t.Fatalf("guarded dec: %+v", res)
		}
		// Guard fails: commits empty, reads still served.
		res = s.Submit(&Request{Ops: []Op{
			{Code: OpCmp, Key: 1, Cmp: stm.OpGTE, Val: 1000},
			{Code: OpRead, Key: 1},
			{Code: OpInc, Key: 1, Val: -50},
		}})
		if !res.Committed || res.GuardOK {
			t.Fatalf("failed guard: %+v", res)
		}
		if len(res.Reads) != 1 || res.Reads[0] != 50 {
			t.Fatalf("failed-guard reads = %v, want [50]", res.Reads)
		}
		if got := readKey(t, s, 1); got != 50 {
			t.Fatalf("key 1 = %d, want 50 (guard-failed write applied?)", got)
		}
		// Distinct keyspaces are distinct cells.
		s.Submit(&Request{Ops: []Op{{Code: OpWrite, Ks: "other", Key: 1, Val: 7}}})
		if got := readKey(t, s, 1); got != 50 {
			t.Fatalf("keyspace bleed: key 1 = %d", got)
		}
	}
}

// TestIncMergingWindow drives an assembled window through carve+runWindow
// directly and asserts the merge fold: one engine commit, one accumulated
// delta per cell, per-shard batched accounting, and every member's outcome
// demultiplexed as committed.
func TestIncMergingWindow(t *testing.T) {
	s := volatileStore(t, stm.SNOrec, 4, true)
	const members = 16
	key := uint64(9)
	shard := s.shardOfKey(key)
	b := s.batchers[shard]
	before := s.rt.Stats().Commits

	var ps []*pending
	b.mu.Lock()
	for i := 0; i < members; i++ {
		r := incReq(key, 3)
		if err := s.prepare(r); err != nil {
			b.mu.Unlock()
			t.Fatalf("prepare: %v", err)
		}
		p := &pending{req: r}
		ps = append(ps, p)
		b.queue = append(b.queue, p)
	}
	b.carve()
	b.mu.Unlock()
	b.runWindow()

	for i, p := range ps {
		if !p.res.Committed || !p.res.GuardOK {
			t.Fatalf("member %d: %+v", i, p.res)
		}
	}
	// The whole window coalesced into one engine commit.
	if commits := s.rt.Stats().Commits - before; commits != 1 {
		t.Fatalf("engine commits = %d, want 1 (window did not coalesce)", commits)
	}
	if merged := s.metrics.mergedIncs.Load(); merged != members-1 {
		t.Fatalf("mergedIncs = %d, want %d", merged, members-1)
	}
	if mean := s.metrics.MeanBatch(); mean != members {
		t.Fatalf("MeanBatch = %v, want %d", mean, members)
	}
	batched := uint64(0)
	for _, ss := range s.rt.ShardStats() {
		batched += ss.BatchedRequests
	}
	if batched != members {
		t.Fatalf("ShardStats batched = %d, want %d", batched, members)
	}
	if got := readKey(t, s, key); got != 3*members {
		t.Fatalf("key = %d, want %d", got, 3*members)
	}
}

// TestDoomedRequestAbortsAlone assembles a window with one doomed member and
// asserts the straggler rule: the window tears apart, the doomed request
// reports its abort, and every batchmate still commits.
func TestDoomedRequestAbortsAlone(t *testing.T) {
	for _, algo := range []stm.Algorithm{stm.SNOrec, stm.STL2} {
		t.Run(algo.String(), func(t *testing.T) {
			s := volatileStore(t, algo, 4, true)
			key := uint64(5)
			shard := s.shardOfKey(key)
			b := s.batchers[shard]

			// A second key on the same shard, so the guarded batchmate joins
			// the window in place instead of falling out as a conflict.
			key2 := key + 1
			for s.shardOfKey(key2) != shard {
				key2++
			}
			doomed := incReq(key, 1)
			doomed.Doom()
			mates := []*Request{incReq(key, 10), incReq(key, 100),
				{Ops: []Op{{Code: OpCmp, Key: key2, Cmp: stm.OpGTE, Val: 0}, {Code: OpWrite, Key: key2, Val: 7}}}}

			var ps []*pending
			b.mu.Lock()
			for _, r := range append([]*Request{doomed}, mates...) {
				if err := s.prepare(r); err != nil {
					b.mu.Unlock()
					t.Fatalf("prepare: %v", err)
				}
				p := &pending{req: r}
				ps = append(ps, p)
				b.queue = append(b.queue, p)
			}
			b.carve()
			b.mu.Unlock()
			b.runWindow()

			if ps[0].res.Committed {
				t.Fatalf("doomed request committed: %+v", ps[0].res)
			}
			var abortErr *stm.AbortError
			if ps[0].res.Err == nil {
				t.Fatalf("doomed request has no error")
			} else if !asAbort(ps[0].res.Err, &abortErr) {
				t.Fatalf("doomed request error %T, want *stm.AbortError", ps[0].res.Err)
			}
			for i, p := range ps[1:] {
				if !p.res.Committed {
					t.Fatalf("batchmate %d aborted with the doomed request: %+v", i, p.res)
				}
			}
			if s.metrics.soloAbort.Load() == 0 {
				t.Fatalf("window abort not recorded in solo-fallback metrics")
			}
		})
	}
}

// TestConflictFallout asserts that an in-place request touching a cell an
// earlier window member wrote falls out to the solo path — and still
// commits, after the window.
func TestConflictFallout(t *testing.T) {
	s := volatileStore(t, stm.SNOrec, 4, true)
	key := uint64(11)
	shard := s.shardOfKey(key)
	b := s.batchers[shard]

	first := &Request{Ops: []Op{{Code: OpCmp, Key: key, Cmp: stm.OpGTE, Val: 0}, {Code: OpWrite, Key: key, Val: 1}}}
	second := &Request{Ops: []Op{{Code: OpCmp, Key: key, Cmp: stm.OpGTE, Val: 0}, {Code: OpWrite, Key: key, Val: 2}}}

	var ps []*pending
	b.mu.Lock()
	for _, r := range []*Request{first, second} {
		if err := s.prepare(r); err != nil {
			b.mu.Unlock()
			t.Fatalf("prepare: %v", err)
		}
		p := &pending{req: r}
		ps = append(ps, p)
		b.queue = append(b.queue, p)
	}
	b.carve()
	b.mu.Unlock()
	if len(b.window) != 1 || len(b.fallout) != 1 {
		t.Fatalf("window=%d fallout=%d, want 1/1", len(b.window), len(b.fallout))
	}
	b.runWindow()
	b.runFallout()
	if !ps[0].res.Committed || !ps[1].res.Committed {
		t.Fatalf("results: %+v / %+v", ps[0].res, ps[1].res)
	}
	// Fallout executes after the window: the second write wins.
	if got := readKey(t, s, key); got != 2 {
		t.Fatalf("key = %d, want 2", got)
	}
	if s.metrics.soloConflict.Load() != 1 {
		t.Fatalf("soloConflict = %d, want 1", s.metrics.soloConflict.Load())
	}
}

// TestCrossShardBypass asserts a request whose keys span shards bypasses the
// batcher onto the (two-phase) solo path and still commits.
func TestCrossShardBypass(t *testing.T) {
	s := volatileStore(t, stm.STL2, 8, true)
	// Find two keys on different shards.
	a, b := uint64(1), uint64(2)
	for s.shardOfKey(a) == s.shardOfKey(b) {
		b++
	}
	res := s.Submit(&Request{Ops: []Op{
		{Code: OpInc, Key: a, Val: 1},
		{Code: OpInc, Key: b, Val: 1},
	}})
	if !res.Committed {
		t.Fatalf("cross-shard request: %+v", res)
	}
	if s.metrics.soloCross.Load() != 1 {
		t.Fatalf("soloCross = %d, want 1", s.metrics.soloCross.Load())
	}
	if s.rt.ShardTicket() == 0 {
		t.Fatalf("cross-shard request committed without the two-phase path")
	}
}

// TestSequentialEquivalence replays one seeded request stream through a
// batching store and a non-batching store submitted sequentially: every
// per-request outcome (commit, guard, reads) and the full final state must
// be identical — sequential submission makes the serial orders equal, so
// batching must be completely invisible.
func TestSequentialEquivalence(t *testing.T) {
	for _, algo := range []stm.Algorithm{stm.SNOrec, stm.STL2} {
		for _, shards := range []int{1, 8} {
			t.Run(algo.String(), func(t *testing.T) {
				batched := volatileStore(t, algo, shards, true)
				solo := volatileStore(t, algo, shards, false)
				cfg := LoadConfig{Workload: "mixed", Keys: 512, HotKeys: 64}
				if err := cfg.defaults(); err != nil {
					t.Fatal(err)
				}
				rngA := newTestRng(42)
				rngB := newTestRng(42)
				ra := &Request{}
				rb := &Request{}
				for i := 0; i < 2000; i++ {
					genRequest(rngA, &cfg, ra)
					genRequest(rngB, &cfg, rb)
					resA := batched.Submit(ra)
					resB := solo.Submit(rb)
					if resA.Committed != resB.Committed || resA.GuardOK != resB.GuardOK {
						t.Fatalf("req %d: outcomes diverge: %+v vs %+v", i, resA, resB)
					}
					if len(resA.Reads) != len(resB.Reads) {
						t.Fatalf("req %d: read counts diverge", i)
					}
					for j := range resA.Reads {
						if resA.Reads[j] != resB.Reads[j] {
							t.Fatalf("req %d read %d: %d vs %d", i, j, resA.Reads[j], resB.Reads[j])
						}
					}
				}
				for k := uint64(0); k < cfg.Keys; k++ {
					va := batched.Keyspace("").Var(k).Load()
					vb := solo.Keyspace("").Var(k).Load()
					if va != vb {
						t.Fatalf("key %d: final state %d vs %d", k, va, vb)
					}
				}
			})
		}
	}
}

// TestMetricsRender smoke-checks the Prometheus rendering: every family the
// servegate asserts on must be present.
func TestMetricsRender(t *testing.T) {
	s := volatileStore(t, stm.SNOrec, 4, true)
	for i := 0; i < 32; i++ {
		s.Submit(incReq(uint64(i%4), 1))
	}
	var sb strings.Builder
	s.WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"semstm_requests_total{outcome=\"committed\"}",
		"semstm_batch_size_bucket{le=\"+Inf\"}",
		"semstm_batch_size_count",
		"semstm_merge_inc_ops_total{kind=\"merged\"}",
		"semstm_solo_fallbacks_total{reason=\"conflict\"}",
		"semstm_shard_commits_total{shard=\"0\",kind=\"batched_requests\"}",
		"semstm_engine_commits_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
