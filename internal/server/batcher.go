// The per-shard coalescing batcher: the server-side analogue of the WAL's
// group commit (internal/wal/log.go), one level up the stack. Where the
// walwriter coalesces committed transactions' log frames into one fsync, the
// batcher coalesces *client requests* into one transaction — amortizing the
// whole commit path (descriptor, commit-time clock/seqlock acquisition,
// validation sweep, and durably the WAL append itself) across the window.
//
// Window policy (DESIGN.md §15): no timers. A request arriving at an idle
// shard becomes leader immediately, yields the scheduler once so requests
// already in flight can enqueue (the formation yield — without it a fast
// leader carves windows of one and coalescing never starts), then drains
// whatever has queued — up to MaxBatch. An unloaded store pays one Gosched
// of latency, and windows grow exactly as fast as commits fall behind
// arrivals (the group-commit self-pacing property).
//
// Merge rules: inc-only requests against the same cell fold into one
// deferred delta, applied once at the window's end — they commute, and the
// fold serializes every inc-only request after the window's in-place
// requests (a valid serial order for concurrent requests). In-place
// requests execute back-to-back inside the one descriptor in queue order;
// one whose cells were already written by an earlier window member falls
// out to the solo path (per-request isolation stays trivially auditable and
// the conflict is visible in the solo-fallback counters rather than folded
// silently).
//
// Straggler rule: a window that exhausts its attempt budget is torn apart
// and every member re-executed solo, so one doomed request costs its
// batchmates at most the failed window's attempts — it cannot abort them.
package server

import (
	"runtime"
	"sync"

	"semstm/stm"
)

// pending is one queued request plus its demultiplexed outcome.
type pending struct {
	req  *Request
	res  Result
	done bool // guarded by the batcher mutex
}

// shardBatcher coalesces one shard's requests. Leadership mirrors the
// walwriter: the first submitter to find no leader takes the role, drains a
// window, executes it, then broadcasts; woken submitters whose requests are
// still queued take over leadership. Every queued request always has its
// submitter in the loop, so no window can strand.
type shardBatcher struct {
	s        *Store
	maxBatch int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*pending
	leading bool

	// Leader-only scratch (a single leader per shard at a time): the carved
	// window, its in-place members, the merged-inc fold, and the
	// conflict-fallout set.
	window   []*pending
	inPlace  []*pending
	fallout  []*pending
	incVars  []*stm.Var
	incIdx   map[*stm.Var]int
	incDelta []int64
	written  map[*stm.Var]struct{}
}

func newShardBatcher(s *Store, maxBatch int) *shardBatcher {
	b := &shardBatcher{
		s:        s,
		maxBatch: maxBatch,
		incIdx:   make(map[*stm.Var]int),
		written:  make(map[*stm.Var]struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// submit enqueues the request and blocks until its outcome is demultiplexed
// back, leading windows whenever no other submitter is.
func (b *shardBatcher) submit(r *Request) Result {
	p := &pending{req: r}
	b.mu.Lock()
	b.queue = append(b.queue, p)
	for {
		if p.done {
			b.mu.Unlock()
			return p.res
		}
		if !b.leading {
			b.leading = true
			// Formation yield: let submitters already past genRequest enqueue
			// before the carve. Leadership is held, so nobody else can carve
			// underneath us, and p cannot complete. Repeat while the queue is
			// still growing and short of a full window.
			for len(b.queue) < b.maxBatch {
				before := len(b.queue)
				b.mu.Unlock()
				runtime.Gosched()
				b.mu.Lock()
				if len(b.queue) == before {
					break
				}
			}
			b.carve()
			b.mu.Unlock()
			b.runWindow()
			b.runFallout()
			b.mu.Lock()
			for _, w := range b.window {
				w.done = true
			}
			for _, w := range b.fallout {
				w.done = true
			}
			b.leading = false
			b.cond.Broadcast()
			continue
		}
		b.cond.Wait()
	}
}

// carve pops up to maxBatch requests off the queue head into the window,
// applying the merge/conflict rules. Called with the mutex held; fills the
// leader scratch.
func (b *shardBatcher) carve() {
	b.window = b.window[:0]
	b.inPlace = b.inPlace[:0]
	b.fallout = b.fallout[:0]
	b.incVars = b.incVars[:0]
	b.incDelta = b.incDelta[:0]
	clear(b.incIdx)
	clear(b.written)

	n := len(b.queue)
	if n > b.maxBatch {
		n = b.maxBatch
	}
	for _, p := range b.queue[:n] {
		r := p.req
		if r.incOnly && !r.doom {
			// Mergeable: fold each delta into the per-cell accumulator.
			for i := range r.Ops {
				v := r.vars[i]
				b.s.metrics.incOps.Add(1)
				if j, ok := b.incIdx[v]; ok {
					b.incDelta[j] += r.Ops[i].Val
					b.s.metrics.mergedIncs.Add(1)
				} else {
					b.incIdx[v] = len(b.incVars)
					b.incVars = append(b.incVars, v)
					b.incDelta = append(b.incDelta, r.Ops[i].Val)
				}
				b.written[v] = struct{}{}
			}
			b.window = append(b.window, p)
			continue
		}
		// In-place: joins unless a cell it touches was already written by
		// this window (conflict fallout → solo path).
		conflict := false
		for _, v := range r.vars {
			if _, ok := b.written[v]; ok {
				conflict = true
				break
			}
		}
		if conflict {
			b.fallout = append(b.fallout, p)
			continue
		}
		for i := range r.Ops {
			if c := r.Ops[i].Code; c == OpWrite || c == OpInc {
				b.written[r.vars[i]] = struct{}{}
			}
		}
		b.window = append(b.window, p)
		b.inPlace = append(b.inPlace, p)
	}
	// Pop the carved prefix (window members and fallout alike left the
	// queue; fallout runs solo under this leader).
	rest := copy(b.queue, b.queue[n:])
	for i := rest; i < len(b.queue); i++ {
		b.queue[i] = nil
	}
	b.queue = b.queue[:rest]
}

// runWindow executes the carved window as one batch transaction and
// demultiplexes per-request outcomes; on budget exhaustion it re-executes
// every member solo (the straggler rule).
func (b *shardBatcher) runWindow() {
	w := b.window
	if len(w) == 0 {
		return
	}
	m := b.s.metrics
	err := b.s.rt.AtomicallyBatch(len(w), func(tx *stm.Tx) {
		for _, p := range b.inPlace {
			p.req.execute(tx, &p.res)
		}
		for i, v := range b.incVars {
			tx.Inc(v, b.incDelta[i])
		}
	})
	if err != nil {
		// The window is doomed as a unit; its members may not be. Tear it
		// apart — each request gets its own bounded transaction, so only a
		// request that is itself doomed reports an abort.
		m.soloAbort.Add(uint64(len(w)))
		for _, p := range w {
			b.s.solo(p.req, &p.res)
		}
		return
	}
	m.noteBatch(len(w))
	for _, p := range w {
		p.res.Committed = true
		if p.req.incOnly && !p.req.doom {
			p.res.GuardOK = true
		}
		m.noteOutcome(&p.res)
	}
}

// runFallout executes the window's conflict-fallout requests on the solo
// path, after the window they fell out of.
func (b *shardBatcher) runFallout() {
	if len(b.fallout) == 0 {
		return
	}
	b.s.metrics.soloConflict.Add(uint64(len(b.fallout)))
	for _, p := range b.fallout {
		b.s.solo(p.req, &p.res)
	}
}
