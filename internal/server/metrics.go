// Prometheus-style metrics: the server's own request/batcher counters plus
// the runtime's Snapshot and per-shard commit mix, rendered in the text
// exposition format. Counters are plain atomics — scraping never takes the
// batcher or keyspace locks.
package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// batchBuckets are the batch-size histogram's upper bounds (requests per
// window); the last bucket is +Inf.
var batchBuckets = [...]uint64{1, 2, 4, 8, 16, 32, 64, 128}

// Metrics is the server-level counter block.
type Metrics struct {
	requests    atomic.Uint64 // every submitted request
	committed   atomic.Uint64 // committed with all guards held
	guardFailed atomic.Uint64 // committed empty: a cmp guard failed
	aborted     atomic.Uint64 // attempt budget exhausted

	batches   atomic.Uint64 // committed batch windows
	batched   atomic.Uint64 // requests committed through a window
	batchSum  atomic.Uint64 // sum of committed window sizes
	batchHist [len(batchBuckets) + 1]atomic.Uint64

	incOps     atomic.Uint64 // inc ops entering the merge fold
	mergedIncs atomic.Uint64 // inc ops folded into an existing delta

	soloConflict atomic.Uint64 // window fallout: cell already written
	soloAbort    atomic.Uint64 // window fallout: batch budget exhausted
	soloCross    atomic.Uint64 // bypassed batching: keys span shards
}

func newMetrics() *Metrics { return &Metrics{} }

// noteOutcome tallies one finished request.
func (m *Metrics) noteOutcome(res *Result) {
	m.requests.Add(1)
	switch {
	case !res.Committed:
		m.aborted.Add(1)
	case !res.GuardOK:
		m.guardFailed.Add(1)
	default:
		m.committed.Add(1)
	}
}

// noteBatch tallies one committed window of the given size.
func (m *Metrics) noteBatch(size int) {
	m.batches.Add(1)
	m.batched.Add(uint64(size))
	m.batchSum.Add(uint64(size))
	i := 0
	for i < len(batchBuckets) && uint64(size) > batchBuckets[i] {
		i++
	}
	m.batchHist[i].Add(1)
}

// Requests reports the total submitted request count (throughput probes).
func (m *Metrics) Requests() uint64 { return m.requests.Load() }

// Committed reports requests that committed with all guards held.
func (m *Metrics) Committed() uint64 { return m.committed.Load() }

// Aborted reports requests whose attempt budget exhausted.
func (m *Metrics) Aborted() uint64 { return m.aborted.Load() }

// Batches reports committed batch windows.
func (m *Metrics) Batches() uint64 { return m.batches.Load() }

// Batched reports requests that committed through a batch window.
func (m *Metrics) Batched() uint64 { return m.batched.Load() }

// MeanBatch reports the mean committed window size (0 before any window).
func (m *Metrics) MeanBatch() float64 {
	n := m.batches.Load()
	if n == 0 {
		return 0
	}
	return float64(m.batchSum.Load()) / float64(n)
}

// MergedIncRatio reports the fraction of merge-eligible inc ops that folded
// into an already-present delta (0 before any inc).
func (m *Metrics) MergedIncRatio() float64 {
	n := m.incOps.Load()
	if n == 0 {
		return 0
	}
	return float64(m.mergedIncs.Load()) / float64(n)
}

// SoloFallbacks reports requests pushed onto the solo path by the batcher
// (window conflicts plus torn windows; cross-shard bypasses not included).
func (m *Metrics) SoloFallbacks() uint64 {
	return m.soloConflict.Load() + m.soloAbort.Load()
}

// WriteMetrics renders every counter — server, batcher, runtime, per-shard —
// in the Prometheus text exposition format.
func (s *Store) WriteMetrics(w io.Writer) {
	m := s.metrics
	fmt.Fprintf(w, "# HELP semstm_requests_total Requests by outcome.\n# TYPE semstm_requests_total counter\n")
	fmt.Fprintf(w, "semstm_requests_total{outcome=\"committed\"} %d\n", m.committed.Load())
	fmt.Fprintf(w, "semstm_requests_total{outcome=\"guard_failed\"} %d\n", m.guardFailed.Load())
	fmt.Fprintf(w, "semstm_requests_total{outcome=\"aborted\"} %d\n", m.aborted.Load())

	fmt.Fprintf(w, "# HELP semstm_batch_size Committed batch window sizes.\n# TYPE semstm_batch_size histogram\n")
	cum := uint64(0)
	for i, le := range batchBuckets {
		cum += m.batchHist[i].Load()
		fmt.Fprintf(w, "semstm_batch_size_bucket{le=\"%d\"} %d\n", le, cum)
	}
	cum += m.batchHist[len(batchBuckets)].Load()
	fmt.Fprintf(w, "semstm_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "semstm_batch_size_sum %d\n", m.batchSum.Load())
	fmt.Fprintf(w, "semstm_batch_size_count %d\n", m.batches.Load())

	fmt.Fprintf(w, "# HELP semstm_batched_requests_total Requests committed through a batch window.\n# TYPE semstm_batched_requests_total counter\n")
	fmt.Fprintf(w, "semstm_batched_requests_total %d\n", m.batched.Load())
	fmt.Fprintf(w, "# HELP semstm_merge_inc_ops_total Merge-eligible inc ops (merged = folded into an existing delta).\n# TYPE semstm_merge_inc_ops_total counter\n")
	fmt.Fprintf(w, "semstm_merge_inc_ops_total{kind=\"seen\"} %d\n", m.incOps.Load())
	fmt.Fprintf(w, "semstm_merge_inc_ops_total{kind=\"merged\"} %d\n", m.mergedIncs.Load())
	fmt.Fprintf(w, "# HELP semstm_solo_fallbacks_total Requests pushed off the batch path.\n# TYPE semstm_solo_fallbacks_total counter\n")
	fmt.Fprintf(w, "semstm_solo_fallbacks_total{reason=\"conflict\"} %d\n", m.soloConflict.Load())
	fmt.Fprintf(w, "semstm_solo_fallbacks_total{reason=\"window_abort\"} %d\n", m.soloAbort.Load())
	fmt.Fprintf(w, "semstm_solo_fallbacks_total{reason=\"cross_shard\"} %d\n", m.soloCross.Load())

	sn := s.rt.Stats()
	fmt.Fprintf(w, "# HELP semstm_engine_commits_total Engine-level transaction commits.\n# TYPE semstm_engine_commits_total counter\n")
	fmt.Fprintf(w, "semstm_engine_commits_total %d\n", sn.Commits)
	fmt.Fprintf(w, "# HELP semstm_engine_aborts_total Engine-level attempt aborts.\n# TYPE semstm_engine_aborts_total counter\n")
	fmt.Fprintf(w, "semstm_engine_aborts_total %d\n", sn.Aborts)

	fmt.Fprintf(w, "# HELP semstm_shard_commits_total Per-shard commit mix.\n# TYPE semstm_shard_commits_total counter\n")
	for i, ss := range s.rt.ShardStats() {
		fmt.Fprintf(w, "semstm_shard_commits_total{shard=\"%d\",kind=\"single\"} %d\n", i, ss.SingleCommits)
		fmt.Fprintf(w, "semstm_shard_commits_total{shard=\"%d\",kind=\"cross\"} %d\n", i, ss.CrossCommits)
		fmt.Fprintf(w, "semstm_shard_commits_total{shard=\"%d\",kind=\"batched_requests\"} %d\n", i, ss.BatchedRequests)
	}
	if s.dur != nil {
		ws := s.dur.WALStats()
		fmt.Fprintf(w, "# HELP semstm_wal_fsyncs_total WAL fsyncs issued.\n# TYPE semstm_wal_fsyncs_total counter\n")
		fmt.Fprintf(w, "semstm_wal_fsyncs_total %d\n", ws.Fsyncs)
		fmt.Fprintf(w, "# HELP semstm_wal_appends_total WAL frames appended.\n# TYPE semstm_wal_appends_total counter\n")
		fmt.Fprintf(w, "semstm_wal_appends_total %d\n", ws.Appends)
	}
}
