// The load generator: simulated client connections driving the store with
// the workload mixes the server grid benchmarks (counter-heavy, read-mostly,
// mixed). In-process mode submits straight into the Store from one goroutine
// per simulated connection — the shape the 1-core servegate measures, where
// batching wins by amortizing commit work, not by hiding network latency;
// TCP mode drives a live server over the wire protocol.
package server

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"semstm/stm"
)

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Workload is the mix: "counter" (inc-heavy over a hot key set, the
	// merge showcase), "readmostly" (90% point reads over the full key
	// universe), or "mixed" (reads, writes, incs, and guarded transfers —
	// transfers span shards whenever their two keys hash apart).
	Workload string
	// Connections is the number of simulated client connections.
	Connections int
	// Keys is the key-universe size per keyspace (default 1<<20).
	Keys uint64
	// HotKeys is the counter workload's hot set size (default 4096).
	HotKeys uint64
	// Duration is how long to drive load (default 1s).
	Duration time.Duration
	// Seed makes the generated op stream deterministic.
	Seed uint64
}

func (cfg *LoadConfig) defaults() error {
	switch cfg.Workload {
	case "counter", "readmostly", "mixed":
	default:
		return fmt.Errorf("server: unknown workload %q", cfg.Workload)
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 64
	}
	if cfg.Keys == 0 {
		cfg.Keys = 1 << 20
	}
	if cfg.HotKeys == 0 {
		cfg.HotKeys = 4096
	}
	if cfg.HotKeys > cfg.Keys {
		cfg.HotKeys = cfg.Keys
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	return nil
}

// LoadResult is one load run's outcome tallies.
type LoadResult struct {
	Requests       uint64
	Committed      uint64
	GuardFailed    uint64
	Aborted        uint64
	Elapsed        time.Duration
	RequestsPerSec float64
}

// genRequest fills r with the next request of the connection's stream.
func genRequest(rng *rand.Rand, cfg *LoadConfig, r *Request) {
	r.Ops = r.Ops[:0]
	switch cfg.Workload {
	case "counter":
		k := rng.Uint64() % cfg.HotKeys
		if rng.Intn(100) < 95 {
			r.Ops = append(r.Ops, Op{Code: OpInc, Key: k, Val: 1})
		} else {
			r.Ops = append(r.Ops, Op{Code: OpRead, Key: k})
		}
	case "readmostly":
		k := rng.Uint64() % cfg.Keys
		switch p := rng.Intn(100); {
		case p < 90:
			r.Ops = append(r.Ops, Op{Code: OpRead, Key: k})
		case p < 99:
			r.Ops = append(r.Ops, Op{Code: OpWrite, Key: k, Val: int64(k)})
		default:
			r.Ops = append(r.Ops, Op{Code: OpInc, Key: k, Val: 1})
		}
	case "mixed":
		switch p := rng.Intn(100); {
		case p < 40:
			r.Ops = append(r.Ops, Op{Code: OpRead, Key: rng.Uint64() % cfg.Keys})
		case p < 65:
			r.Ops = append(r.Ops, Op{Code: OpInc, Key: rng.Uint64() % cfg.HotKeys, Val: 1})
		case p < 85:
			// Guarded transfer: overdraft-checked move between two cells —
			// cross-shard whenever the keys hash apart.
			a := rng.Uint64() % cfg.HotKeys
			b := rng.Uint64() % cfg.HotKeys
			r.Ops = append(r.Ops,
				Op{Code: OpCmp, Key: a, Cmp: stm.OpGTE, Val: 1},
				Op{Code: OpInc, Key: a, Val: -1},
				Op{Code: OpInc, Key: b, Val: 1},
			)
		default:
			r.Ops = append(r.Ops, Op{Code: OpWrite, Key: rng.Uint64() % cfg.Keys, Val: rng.Int63n(1000)})
		}
	}
}

// RunLoad drives the store in-process: cfg.Connections goroutines submitting
// generated requests for cfg.Duration.
func RunLoad(s *Store, cfg LoadConfig) (LoadResult, error) {
	if err := cfg.defaults(); err != nil {
		return LoadResult{}, err
	}
	var (
		stop      atomic.Bool
		requests  atomic.Uint64
		committed atomic.Uint64
		guarded   atomic.Uint64
		aborted   atomic.Uint64
		wg        sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < cfg.Connections; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(c)*7919))
			r := &Request{Ops: make([]Op, 0, 4)}
			for !stop.Load() {
				genRequest(rng, &cfg, r)
				res := s.Submit(r)
				requests.Add(1)
				switch {
				case !res.Committed:
					aborted.Add(1)
				case !res.GuardOK:
					guarded.Add(1)
				default:
					committed.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	out := LoadResult{
		Requests:    requests.Load(),
		Committed:   committed.Load(),
		GuardFailed: guarded.Load(),
		Aborted:     aborted.Load(),
		Elapsed:     elapsed,
	}
	out.RequestsPerSec = float64(out.Requests) / elapsed.Seconds()
	return out, nil
}

// RunLoadTCP drives a live server over the wire protocol, one real TCP
// connection per simulated connection.
func RunLoadTCP(addr string, cfg LoadConfig) (LoadResult, error) {
	if err := cfg.defaults(); err != nil {
		return LoadResult{}, err
	}
	clients := make([]*Client, cfg.Connections)
	for i := range clients {
		c, err := Dial(addr)
		if err != nil {
			for _, cc := range clients[:i] {
				cc.Close()
			}
			return LoadResult{}, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	var (
		stop      atomic.Bool
		requests  atomic.Uint64
		committed atomic.Uint64
		guarded   atomic.Uint64
		aborted   atomic.Uint64
		wg        sync.WaitGroup
	)
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(i)*7919))
			r := &Request{Ops: make([]Op, 0, 4)}
			wops := make([]WireOp, 0, 4)
			for !stop.Load() {
				genRequest(rng, &cfg, r)
				wops = wops[:0]
				for _, op := range r.Ops {
					wo := WireOp{Op: op.Code.String(), Ks: op.Ks, Key: op.Key, Val: op.Val}
					if op.Code == OpCmp {
						wo.Cmp = cmpName(op.Cmp)
					}
					wops = append(wops, wo)
				}
				resp, err := c.Do(wops)
				if err != nil {
					return
				}
				requests.Add(1)
				switch {
				case !resp.OK:
					aborted.Add(1)
				case !resp.Guard:
					guarded.Add(1)
				default:
					committed.Add(1)
				}
			}
		}(i, c)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	out := LoadResult{
		Requests:    requests.Load(),
		Committed:   committed.Load(),
		GuardFailed: guarded.Load(),
		Aborted:     aborted.Load(),
		Elapsed:     elapsed,
	}
	out.RequestsPerSec = float64(out.Requests) / elapsed.Seconds()
	return out, nil
}
