// Package server is the networked front-end of the semantic store: named
// keyspaces of int64 cells exposed over a small multi-op transaction
// protocol (read / write / inc / cmp), executed on a sharded semantic
// runtime (stm.NewShardedRuntime), optionally write-ahead logged
// (stm.OpenDurable).
//
// The performance core is the per-shard coalescing batcher (batcher.go): a
// request whose keys all route to one shard enqueues onto that shard's
// queue, and a leader drains a window of queued requests into a single
// Atomically — one descriptor, one commit-time clock acquisition, one
// validation sweep, and (durably) one WAL append + fsync share for the whole
// window, instead of one of each per request. Deferred increments make the
// counter-heavy window even cheaper: inc-only requests against the same key
// merge into a single delta that commits without reading. Requests that
// cannot join a window — keys spanning shards, or touching keys an earlier
// batchmate already wrote — fall out onto the normal per-request path (the
// runtime's two-phase protocol handles the cross-shard ones). Batching is
// invisible to clients: per-request outcomes are demultiplexed back to their
// waiters, and a doomed request is re-executed solo so it cannot abort its
// batchmates.
package server

import (
	"fmt"
	"hash/fnv"
	"sync"

	"semstm/stm"
)

// OpCode is a request operation kind.
type OpCode uint8

const (
	// OpRead returns the cell's value (recorded into Result.Reads).
	OpRead OpCode = iota
	// OpWrite stores Val into the cell.
	OpWrite
	// OpInc adds Val to the cell (a deferred semantic increment).
	OpInc
	// OpCmp guards the request: "cell Cmp Val" must hold or the request's
	// writes are not applied (Result.GuardOK reports the outcome).
	OpCmp
)

// String names the op code as the wire protocol spells it.
func (c OpCode) String() string {
	switch c {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpInc:
		return "inc"
	case OpCmp:
		return "cmp"
	default:
		return fmt.Sprintf("OpCode(%d)", uint8(c))
	}
}

// ParseOpCode maps the wire spelling back to the code.
func ParseOpCode(s string) (OpCode, error) {
	switch s {
	case "read":
		return OpRead, nil
	case "write":
		return OpWrite, nil
	case "inc":
		return OpInc, nil
	case "cmp":
		return OpCmp, nil
	default:
		return 0, fmt.Errorf("server: unknown op %q", s)
	}
}

// ParseCmp maps a wire comparison spelling ("eq", "lt", ...) to the semantic
// operator.
func ParseCmp(s string) (stm.Op, error) {
	switch s {
	case "eq":
		return stm.OpEQ, nil
	case "neq":
		return stm.OpNEQ, nil
	case "gt":
		return stm.OpGT, nil
	case "gte":
		return stm.OpGTE, nil
	case "lt":
		return stm.OpLT, nil
	case "lte":
		return stm.OpLTE, nil
	default:
		return 0, fmt.Errorf("server: unknown comparison %q", s)
	}
}

// Op is one operation of a request.
type Op struct {
	Code OpCode
	Ks   string // keyspace name ("" = "default")
	Key  uint64
	Val  int64  // write value / inc delta / cmp operand
	Cmp  stm.Op // comparison operator (OpCmp only)
}

// Request is one client transaction: its ops execute atomically, guards
// first. If every OpCmp guard holds, the writes and increments apply in op
// order; if any guard fails the request commits empty (reads still
// populated, no state change) with Result.GuardOK false. Either way the
// request occupies one position in the store's serial order.
type Request struct {
	Ops []Op

	// doom makes every execution attempt of this request restart — the
	// deterministic stand-in for a transaction doomed by contention or fault
	// injection, used by the chaos suites to prove a doomed request cannot
	// abort its batchmates.
	doom bool

	// prepare() products: one resolved Var per op, the single shard every
	// key routes to (-1 when they span shards), and whether the request is
	// inc-only (mergeable inside a batch window).
	vars    []*stm.Var
	shard   int
	incOnly bool
}

// Doom marks the request as permanently aborting (testing hook).
func (r *Request) Doom() { r.doom = true }

// Result is the outcome of one request.
type Result struct {
	// Committed reports that the request's transaction committed. False only
	// when the request exhausted its attempt budget (Err holds the abort).
	Committed bool
	// GuardOK reports that every OpCmp guard held, i.e. the request's writes
	// were applied. Vacuously true for guardless requests.
	GuardOK bool
	// Reads holds the value of each OpRead, in op order.
	Reads []int64
	// Err is the typed abort when Committed is false, or a validation error.
	Err error
}

// Config configures Open.
type Config struct {
	Algo   stm.Algorithm // engine family (stm.SNOrec if zero Config is used)
	Shards int           // runtime shard count (default 8)

	// DurableDir, when non-empty, opens the store write-ahead logged under
	// this directory (stm.OpenDurable); Fsync selects the policy ("always",
	// "interval", "none"; default "interval").
	DurableDir string
	Fsync      string

	// Batching enables the per-shard coalescing batcher; when false every
	// request runs the solo path (the control arm of the servegate).
	Batching bool
	// MaxBatch bounds the window a leader drains (default 64).
	MaxBatch int
}

// Store is the served keyspace collection bound to one runtime.
type Store struct {
	rt       *stm.Runtime
	dur      *stm.Durable
	shards   int
	batching bool

	mu        sync.RWMutex
	keyspaces map[string]*Keyspace

	batchers []*shardBatcher
	metrics  *Metrics
}

// Open builds a store per cfg. The caller owns Close when DurableDir is set.
func Open(cfg Config) (*Store, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	s := &Store{
		shards:    cfg.Shards,
		batching:  cfg.Batching,
		keyspaces: make(map[string]*Keyspace),
		metrics:   newMetrics(),
	}
	if cfg.DurableDir != "" {
		policy := cfg.Fsync
		if policy == "" {
			policy = "interval"
		}
		d, err := stm.OpenDurable(cfg.DurableDir, cfg.Algo, cfg.Shards, stm.WithFsync(policy))
		if err != nil {
			return nil, err
		}
		s.dur = d
		s.rt = d.Runtime()
	} else {
		s.rt = stm.NewShardedRuntime(cfg.Algo, cfg.Shards)
	}
	s.batchers = make([]*shardBatcher, cfg.Shards)
	for i := range s.batchers {
		s.batchers[i] = newShardBatcher(s, cfg.MaxBatch)
	}
	return s, nil
}

// Runtime exposes the backing runtime (stats scraping, test configuration).
func (s *Store) Runtime() *stm.Runtime { return s.rt }

// Metrics exposes the server-level counters.
func (s *Store) Metrics() *Metrics { return s.metrics }

// Batching reports whether the coalescing batcher is enabled.
func (s *Store) Batching() bool { return s.batching }

// Close seals the durable log (no-op for a volatile store).
func (s *Store) Close() error {
	if s.dur != nil {
		return s.dur.Close()
	}
	return nil
}

// Keyspace is one named int64 keyspace. Cells are allocated lazily on first
// touch, stamped onto the shard their key hashes to — the same routing
// decision the batcher uses, so a cell's shard is known without consulting
// the engine.
type Keyspace struct {
	store *Store
	name  string
	base  uint64 // durable-key prefix (durable stores only)

	mu    sync.RWMutex
	cells map[uint64]*stm.Var
}

// Keyspace returns (creating on first use) the named keyspace.
func (s *Store) Keyspace(name string) *Keyspace {
	if name == "" {
		name = "default"
	}
	s.mu.RLock()
	ks := s.keyspaces[name]
	s.mu.RUnlock()
	if ks != nil {
		return ks
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ks = s.keyspaces[name]; ks != nil {
		return ks
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	ks = &Keyspace{
		store: s,
		name:  name,
		base:  h.Sum64() | 1, // durable keys must be nonzero
		cells: make(map[uint64]*stm.Var),
	}
	s.keyspaces[name] = ks
	return ks
}

// shardOfKey is the store-wide key→shard routing function.
func (s *Store) shardOfKey(key uint64) int {
	// Fibonacci hash: adjacent client keys spread across shards.
	return int((key * 0x9E3779B97F4A7C15 >> 33) % uint64(s.shards))
}

// Var resolves (allocating on first touch) the cell of key.
func (ks *Keyspace) Var(key uint64) *stm.Var {
	ks.mu.RLock()
	v := ks.cells[key]
	ks.mu.RUnlock()
	if v != nil {
		return v
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if v = ks.cells[key]; v != nil {
		return v
	}
	shard := ks.store.shardOfKey(key)
	if ks.store.dur != nil {
		// Durable key: the keyspace's FNV base mixed with the client key.
		// Collisions across keyspaces are vanishingly rare for served key
		// ranges; stm.Durable panics loudly if one ever occurs.
		v = ks.store.dur.Var(shard, ks.base^(key+0x517CC1B727220A95), 0)
	} else {
		v = stm.NewVarOn(shard, 0)
	}
	ks.cells[key] = v
	return v
}

// Shard reports the shard the key routes to (diagnostics, tests).
func (s *Store) ShardOfKey(key uint64) int { return s.shardOfKey(key) }

// prepare resolves the request's Vars and classifies it for routing: the
// single shard all keys route to (or -1), and inc-only mergeability. Var
// resolution happens outside any transaction, so the batch body does no map
// lookups or allocation.
func (s *Store) prepare(r *Request) error {
	if len(r.Ops) == 0 {
		return fmt.Errorf("server: empty request")
	}
	if cap(r.vars) < len(r.Ops) {
		r.vars = make([]*stm.Var, len(r.Ops))
	} else {
		r.vars = r.vars[:len(r.Ops)]
	}
	r.shard = -2
	r.incOnly = true
	for i := range r.Ops {
		op := &r.Ops[i]
		switch op.Code {
		case OpRead, OpWrite, OpInc:
		case OpCmp:
			if !op.Cmp.Valid() {
				return fmt.Errorf("server: invalid comparison operator %d", op.Cmp)
			}
		default:
			return fmt.Errorf("server: invalid op code %d", op.Code)
		}
		if op.Code != OpInc {
			r.incOnly = false
		}
		r.vars[i] = s.Keyspace(op.Ks).Var(op.Key)
		sh := s.shardOfKey(op.Key)
		switch {
		case r.shard == -2:
			r.shard = sh
		case r.shard != sh:
			r.shard = -1
		}
	}
	return nil
}

// execute runs the request's ops inside tx with guards-first semantics:
// every OpCmp is evaluated first (reads interleaved in op order are still
// recorded on the read path below), and writes/incs apply only when all
// guards held. A guard-failed request therefore commits without effects —
// which is exactly what makes it safe to keep in a batch: it cannot dirty
// its batchmates' window.
func (r *Request) execute(tx *stm.Tx, res *Result) {
	if r.doom {
		tx.Restart()
	}
	res.Reads = res.Reads[:0]
	guardOK := true
	for i := range r.Ops {
		if r.Ops[i].Code == OpCmp {
			if !tx.Cmp(r.vars[i], r.Ops[i].Cmp, r.Ops[i].Val) {
				guardOK = false
			}
		}
	}
	for i := range r.Ops {
		op := &r.Ops[i]
		switch op.Code {
		case OpRead:
			res.Reads = append(res.Reads, tx.Read(r.vars[i]))
		case OpWrite:
			if guardOK {
				tx.Write(r.vars[i], op.Val)
			}
		case OpInc:
			if guardOK {
				tx.Inc(r.vars[i], op.Val)
			}
		}
	}
	res.GuardOK = guardOK
}

// soloAttempts bounds the per-request path (and the straggler re-execution
// after a failed batch). Far below the escalation threshold: a served
// request that cannot commit in this many attempts reports the typed abort
// to its client instead of seizing the irrevocable mode.
const soloAttempts = 32

// Submit executes one request and returns its outcome: through the shard
// batcher when batching is on and the request is single-shard, else solo.
// Submit is safe for concurrent use; it blocks until the request's outcome
// is known.
func (s *Store) Submit(r *Request) Result {
	var res Result
	if err := s.prepare(r); err != nil {
		res.Err = err
		return res
	}
	if s.batching && r.shard >= 0 {
		return s.batchers[r.shard].submit(r)
	}
	if s.batching && r.shard < 0 {
		s.metrics.soloCross.Add(1)
	}
	s.solo(r, &res)
	return res
}

// solo is the per-request execution path: one bounded transaction.
func (s *Store) solo(r *Request, res *Result) {
	err := s.rt.TryAtomically(func(tx *stm.Tx) {
		r.execute(tx, res)
	}, stm.MaxAttempts(soloAttempts))
	res.Committed = err == nil
	res.Err = err
	s.metrics.noteOutcome(res)
}
