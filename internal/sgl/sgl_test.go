package sgl

import (
	"sync"
	"testing"

	"semstm/internal/core"
)

func TestBasicOps(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(5)
	tx := NewTx(g)
	tx.Start()
	if tx.Read(v) != 5 {
		t.Fatal("read")
	}
	tx.Write(v, 6)
	if v.Load() != 6 {
		t.Fatal("SGL writes in place")
	}
	if !tx.Cmp(v, core.OpGT, 0) {
		t.Fatal("cmp")
	}
	if !tx.CmpVars(v, core.OpEQ, v) {
		t.Fatal("cmpvars")
	}
	tx.Inc(v, 4)
	if v.Load() != 10 {
		t.Fatal("inc in place")
	}
	if !tx.CmpSum(core.OpEQ, 20, []*core.Var{v, v}) {
		t.Fatal("cmpsum")
	}
	if !tx.CmpAny([]core.Cond{{Var: v, Op: core.OpGT, Operand: 9}}) {
		t.Fatal("cmpany")
	}
	tx.Commit()
	st := tx.AttemptStats()
	if st.Reads != 1 || st.Writes != 1 || st.Compares != 4 || st.Incs != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestMutualExclusion: SGL transactions serialize fully, so a read-modify-
// write loop from many goroutines never loses updates.
func TestMutualExclusion(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := NewTx(g)
			for i := 0; i < per; i++ {
				tx.Start()
				tx.Write(v, tx.Read(v)+1)
				tx.Commit()
			}
		}()
	}
	wg.Wait()
	if v.Load() != workers*per {
		t.Fatalf("counter = %d", v.Load())
	}
}

// TestCleanupReleasesLock: a panicking transaction body must not wedge the
// runtime.
func TestCleanupReleasesLock(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	tx := NewTx(g)
	tx.Start()
	tx.Cleanup() // simulates the runtime's abort path
	// Lock must be free again:
	tx2 := NewTx(g)
	tx2.Start()
	tx2.Write(v, 1)
	tx2.Commit()
	if v.Load() != 1 {
		t.Fatal("lock leaked")
	}
}
