// Package sgl implements a trivial single-global-lock TM: every transaction
// runs under one mutex, accesses memory in place, and never aborts. It is not
// part of the paper's evaluation but serves as a sanity baseline for tests
// and as the lower bound any speculative algorithm must beat under low
// contention.
package sgl

import (
	"fmt"
	"sync"

	"semstm/internal/core"
)

// Global is the state shared by all transactions of one SGL runtime.
type Global struct {
	mu sync.Mutex
}

// NewGlobal returns a fresh runtime state.
func NewGlobal() *Global { return &Global{} }

// Quiescent verifies the global lock is free (no leak through aborts,
// injected faults, or user panics).
func (g *Global) Quiescent() error {
	if !g.mu.TryLock() {
		return fmt.Errorf("sgl: global lock leaked")
	}
	g.mu.Unlock()
	return nil
}

// Tx is one SGL transaction descriptor.
type Tx struct {
	g     *Global
	fp    *core.FaultPlan // nil unless fault injection is armed
	stats core.TxStats
}

// NewTx returns a transaction descriptor bound to g.
func NewTx(g *Global) *Tx { return &Tx{g: g} }

// Start acquires the global lock; the transaction runs in mutual exclusion.
// SGL mutates memory in place with no undo log, so aborting faults may fire
// only here — after the lock is held (Cleanup's unlock stays balanced) and
// before the body has written anything. Later sites would tear atomicity.
func (tx *Tx) Start() {
	tx.stats.Reset()
	tx.g.mu.Lock()
	if tx.fp != nil {
		tx.fp.Step(core.SiteStart)
	}
}

// SetFaultPlan arms or disarms deterministic fault injection.
func (tx *Tx) SetFaultPlan(p *core.FaultPlan) { tx.fp = p }

// Read loads the variable in place.
func (tx *Tx) Read(v *core.Var) int64 {
	tx.stats.Reads++
	return v.Load()
}

// Write stores the variable in place; there is no roll-back, which is safe
// because SGL transactions cannot abort.
func (tx *Tx) Write(v *core.Var, val int64) {
	tx.stats.Writes++
	v.StoreNT(val)
}

// Cmp evaluates the conditional in place.
func (tx *Tx) Cmp(v *core.Var, op core.Op, operand int64) bool {
	tx.stats.Compares++
	return op.Eval(v.Load(), operand)
}

// CmpVars evaluates the address–address conditional in place.
func (tx *Tx) CmpVars(a *core.Var, op core.Op, b *core.Var) bool {
	tx.stats.Compares++
	return op.Eval(a.Load(), b.Load())
}

// CmpSum evaluates the arithmetic conditional in place.
func (tx *Tx) CmpSum(op core.Op, rhs int64, vars []*core.Var) bool {
	tx.stats.Compares++
	var sum int64
	for _, v := range vars {
		sum += v.Load()
	}
	return op.Eval(sum, rhs)
}

// CmpAny evaluates the composed condition in place.
func (tx *Tx) CmpAny(conds []core.Cond) bool {
	tx.stats.Compares++
	for _, c := range conds {
		if c.Eval() {
			return true
		}
	}
	return false
}

// Inc applies the increment in place.
func (tx *Tx) Inc(v *core.Var, delta int64) {
	tx.stats.Incs++
	v.StoreNT(v.Load() + delta)
}

// Commit releases the global lock. Only the non-aborting commit delay may
// be injected here: the in-place writes are already visible and cannot be
// rolled back.
func (tx *Tx) Commit() {
	if tx.fp != nil {
		tx.fp.CommitDelay()
	}
	tx.g.mu.Unlock()
}

// CommitPrivatize implements core.Privatizer. Mutual exclusion makes the
// commit its own privatization barrier: no transaction runs concurrently, so
// there are no doomed readers to wait out.
func (tx *Tx) CommitPrivatize() { tx.Commit() }

// PrivatizeBarrier is a no-op under mutual exclusion.
func (tx *Tx) PrivatizeBarrier() {}

// Cleanup releases the lock after a user-initiated restart. SGL itself never
// aborts, but user code may call Restart inside an atomic block.
func (tx *Tx) Cleanup() { tx.g.mu.Unlock() }

// AttemptStats exposes the per-attempt operation counters.
func (tx *Tx) AttemptStats() *core.TxStats { return &tx.stats }
