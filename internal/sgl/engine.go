package sgl

import "semstm/internal/core"

// engine adapts the single-global-lock Global to the core.Engine registry
// interface.
type engine struct {
	g *Global
}

func (e engine) NewTx(cfg core.TxConfig) core.TxImpl { return NewTx(e.g) }

func (e engine) Quiescent() error { return e.g.Quiescent() }

func init() {
	core.RegisterEngine(core.EngineDesc{
		ID:           core.EngineSGL,
		Name:         "SGL",
		DisplayOrder: 6,
		Irrevocable:  true,
		New:          func() core.Engine { return engine{g: NewGlobal()} },
	})
}
