package shard

// Unit tests of the composite engine's construction surface: which
// descriptors can be sharded at all, how irrevocable engines degenerate, and
// that an idle partition is quiescent.

import (
	"testing"

	"semstm/internal/core"
	_ "semstm/internal/norec"   // register the NOrec descriptors
	_ "semstm/internal/ringstm" // register the Ring descriptors
	_ "semstm/internal/sgl"     // register the SGL descriptor
)

// desc fetches a registered engine descriptor by ID.
func desc(t *testing.T, id core.EngineID) core.EngineDesc {
	t.Helper()
	d, ok := core.EngineFor(id)
	if !ok {
		t.Fatalf("engine %d not registered", id)
	}
	return d
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

// TestNewEngineRejectsUnshardable pins the constructor contract: shard counts
// below 1, composite descriptors, and engines with neither a two-phase commit
// nor irrevocability have no sound sharded composition.
func TestNewEngineRejectsUnshardable(t *testing.T) {
	mustPanic(t, "NewEngine(NOrec, 0)", func() { NewEngine(desc(t, core.EngineNOrec), 0) })
	mustPanic(t, "NewEngine(composite, 2)", func() {
		NewEngine(core.EngineDesc{Name: "Adaptive", Composite: true}, 2)
	})
	// RingSTM is revocable but has no TwoPhase decomposition — no way to hold
	// phase-1 locks across instances, so it cannot be sharded.
	mustPanic(t, "NewEngine(Ring, 2)", func() { NewEngine(desc(t, core.EngineRing), 2) })
}

// TestIrrevocableDegeneratesToOneInstance asserts the SGL rule: an
// irrevocable engine reports the requested width but is backed by a single
// serializing instance, and every commit folds into shard 0's counters.
func TestIrrevocableDegeneratesToOneInstance(t *testing.T) {
	e := NewEngine(desc(t, core.EngineSGL), 4)
	if e.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want the requested 4", e.NumShards())
	}
	if e.eff != 1 {
		t.Fatalf("eff = %d, want 1 (single serializing instance)", e.eff)
	}
	vs := []*core.Var{core.NewVarOn(0, 0), core.NewVarOn(3, 0)}
	tx := e.NewTx(core.TxConfig{})
	tx.Start()
	for _, v := range vs {
		tx.Write(v, 7)
	}
	tx.Commit()
	snaps := e.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("Snapshots len = %d, want 4", len(snaps))
	}
	// Both variables folded onto the one instance: a single-"shard" commit on
	// entry 0, nothing cross, nothing elsewhere.
	if snaps[0].SingleCommits != 1 || snaps[0].CrossCommits != 0 {
		t.Fatalf("entry 0 = %+v, want one single-shard commit", snaps[0])
	}
	for s := 1; s < 4; s++ {
		if snaps[s] != (ShardSnapshot{}) {
			t.Fatalf("entry %d = %+v, want zero (all traffic folds to entry 0)", s, snaps[s])
		}
	}
	if e.Ticket() != 0 {
		t.Fatalf("ticket = %d on an irrevocable partition", e.Ticket())
	}
	if err := e.Quiescent(); err != nil {
		t.Fatalf("not quiescent after a committed transaction: %v", err)
	}
}

// TestQuiescentCoversEveryShard verifies the idle partition is quiescent and
// that a committed cross-shard transaction leaves it so again.
func TestQuiescentCoversEveryShard(t *testing.T) {
	e := NewEngine(desc(t, core.EngineNOrec), 3)
	if err := e.Quiescent(); err != nil {
		t.Fatalf("fresh partition not quiescent: %v", err)
	}
	a, b := core.NewVarOn(0, 1), core.NewVarOn(2, 2)
	tx := e.NewTx(core.TxConfig{})
	tx.Start()
	tx.Write(a, 10)
	tx.Write(b, 20)
	tx.Commit()
	if a.Load() != 10 || b.Load() != 20 {
		t.Fatalf("cross-shard commit lost writes: a=%d b=%d", a.Load(), b.Load())
	}
	if e.Ticket() != 1 {
		t.Fatalf("ticket = %d after one cross-shard commit, want 1", e.Ticket())
	}
	if err := e.Quiescent(); err != nil {
		t.Fatalf("not quiescent after cross-shard commit: %v", err)
	}
}
