// Package shard composes N independent instances of one concrete STM engine
// into a single partitioned engine (DESIGN.md §11).
//
// Each instance — a "shard" — owns a full copy of the underlying algorithm's
// global metadata: its own TL2 version clock and orec table, or its own NOrec
// sequence lock. Variables carry a shard assignment stamped at allocation
// (core.NewVarOn), and every barrier of a transaction routes to the instance
// of its variable's shard. A transaction that touches a single shard runs
// the underlying algorithm completely unchanged against that shard's private
// metadata and commits with zero cross-shard traffic — disjoint shards never
// share a cache line, which removes the single-clock commit serialization
// that PR3–PR5 left in place ("the last structural scalability ceiling",
// ROADMAP item 1).
//
// Transactions that span shards commit through a two-phase protocol built
// from the core.TwoPhase decomposition the TL2 and NOrec families implement:
//
//	phase 1  Prepare every participating shard in ascending shard order
//	         (global order ⇒ no lock-acquisition cycles), then Validate
//	         every participant with all write locks held — reads,
//	         compare-sets, and deferred-increment preconditions are checked
//	         per shard against that shard's start version, generalizing the
//	         S-TL2 phase-1 extension logic.
//	phase 2  advance the engine-wide commit ticket (the single linearization
//	         point), then Publish every shard — write-back plus lock
//	         release, which the TwoPhase contract guarantees cannot fail.
//
// Live multi-shard snapshots stay opaque through the ticket: a transaction
// becomes "multi" the moment it touches its second shard, snapshots the
// ticket, and re-certifies every started shard whenever the ticket moves —
// one shared load per barrier, the instrumentation budget the HyTM cost
// analysis allows the cross-shard path (PAPERS.md). Single-shard
// transactions never load the ticket at all, keeping the common path
// progressive in the sense of the progressive-TM model (PAPERS.md).
//
// Irrevocable engines (SGL) cannot run the two-phase protocol — they take
// their lock at Start and have no rollback — so a sharded irrevocable engine
// degenerates to one serializing instance backing every shard. That keeps
// the Adaptive ladder's last rung (and the starvation escalation path) valid
// under sharding.
package shard

import (
	"errors"
	"fmt"
	"sync/atomic"

	"semstm/internal/core"
	"semstm/internal/wal"
)

// Logger is the durable redo sink a shard engine drives (DESIGN.md §12) —
// in production the wal.Set of the runtime's log directory. LogSingle
// appends one single-shard commit's records to one shard's log; LogCross
// appends one cross-shard commit's per-participant record subsets, tagged so
// recovery applies them all-or-nothing. Both block until the frame is
// durable per the set's fsync policy and return the log's latched error
// once it has failed or crashed.
type Logger interface {
	LogSingle(shard int, recs []wal.Record) error
	LogCross(parts []int, recs [][]wal.Record) error
}

// shardCounters tracks one shard's commit mix on a private cache line:
// single-shard commits routed entirely to this shard, cross-shard commits
// this shard participated in, and batched logical requests folded into this
// shard's commits by a coalescing caller (stm.AtomicallyBatch).
type shardCounters struct {
	single  atomic.Uint64
	cross   atomic.Uint64
	batched atomic.Uint64
	_       [40]byte
}

// ShardSnapshot is a plain-value copy of one shard's commit counters.
// BatchedRequests counts the logical client requests coalesced into this
// shard's commits — BatchedRequests/SingleCommits is the shard's observed
// amortization factor.
type ShardSnapshot struct {
	SingleCommits   uint64 `json:"single_commits"`
	CrossCommits    uint64 `json:"cross_commits"`
	BatchedRequests uint64 `json:"batched_requests"`
}

// clockProber is the optional probe concrete engines expose so tests can
// assert a shard's commit metadata never moved (tl2: version clock; norec:
// sequence lock).
type clockProber interface {
	ClockValue() uint64
}

// Engine is the partitioned composite engine. It implements core.Engine, so
// a runtime drives it exactly like a concrete engine; the partitioning is
// invisible above this package.
type Engine struct {
	desc core.EngineDesc
	subs []core.Engine
	// n is the requested shard count (the routing/reporting width); eff is
	// the number of engine instances actually backing it — equal to n for
	// two-phase engines, 1 for irrevocable engines.
	n, eff   int
	counters []shardCounters
	// ticket is the engine-wide cross-shard commit counter: bumped once per
	// cross-shard commit between validation and publication, watched by live
	// multi-shard transactions. Padded so the (cross-path-only) ticket line
	// is never dragged into single-shard traffic.
	_      core.PadWord
	ticket atomic.Uint64
	_      core.PadWord

	// Durable pipeline (DESIGN.md §12): when a logger is installed, every
	// barrier on a durable-keyed Var captures a semantic redo record and the
	// commit paths append the records before publication. logFacts
	// additionally captures single-variable cmp outcomes as self-checking
	// fact records. walFailed latches after a real log I/O error: the
	// failing attempt aborts with ReasonLogFail (escalating to the
	// irrevocable mode), and every later commit skips logging — the runtime
	// degrades to volatile instead of wedging on a dead disk.
	logger    Logger
	logFacts  bool
	walFailed atomic.Bool
}

// SetLogger installs the durable redo sink. Call before the engine is
// shared; a nil logger keeps the whole capture path to one pointer test per
// barrier.
func (e *Engine) SetLogger(l Logger, logFacts bool) {
	e.logger = l
	e.logFacts = logFacts
}

// WALFailed reports whether a log-write failure has latched the engine into
// volatile degraded mode.
func (e *Engine) WALFailed() bool { return e.walFailed.Load() }

// NewEngine partitions desc into nshards independent instances. It panics on
// a composite descriptor (composition happens above sharding, in the facade),
// on a shard count below 1, and on an engine that is neither two-phase nor
// irrevocable — such an engine has no sound cross-shard commit.
func NewEngine(desc core.EngineDesc, nshards int) *Engine {
	if nshards < 1 {
		panic(fmt.Sprintf("shard: invalid shard count %d", nshards))
	}
	if desc.Composite {
		panic(fmt.Sprintf("shard: cannot shard composite engine %q", desc.Name))
	}
	eff := nshards
	if desc.Irrevocable {
		eff = 1 // one serializing instance backs every shard
	} else if !desc.TwoPhase {
		panic(fmt.Sprintf("shard: engine %q supports neither two-phase commit nor irrevocable sharding", desc.Name))
	}
	e := &Engine{
		desc:     desc,
		subs:     make([]core.Engine, eff),
		n:        nshards,
		eff:      eff,
		counters: make([]shardCounters, eff),
	}
	for i := range e.subs {
		e.subs[i] = desc.New()
	}
	return e
}

// NumShards reports the requested shard count.
func (e *Engine) NumShards() int { return e.n }

// Ticket exposes the cross-shard commit ticket (tests and diagnostics).
func (e *Engine) Ticket() uint64 { return e.ticket.Load() }

// ShardOf reports the backing instance a variable routes to — the routing
// decision a coalescing front-end (internal/server) must replicate to
// assemble single-shard batches.
func (e *Engine) ShardOf(v *core.Var) int { return e.shardOf(v) }

// shardOf maps a variable to its backing instance: the stamped shard
// assignment, folded into range for out-of-range stamps (a Var allocated for
// a wider runtime keeps working, just with less isolation).
func (e *Engine) shardOf(v *core.Var) int {
	if e.eff == 1 {
		return 0
	}
	s := v.Shard()
	if s >= e.eff {
		s %= e.eff
	}
	return s
}

// Snapshots returns the per-shard commit counters, one entry per requested
// shard (for an irrevocable engine all traffic folds into entry 0).
func (e *Engine) Snapshots() []ShardSnapshot {
	out := make([]ShardSnapshot, e.n)
	for i := 0; i < e.eff; i++ {
		out[i] = ShardSnapshot{
			SingleCommits:   e.counters[i].single.Load(),
			CrossCommits:    e.counters[i].cross.Load(),
			BatchedRequests: e.counters[i].batched.Load(),
		}
	}
	return out
}

// ClockValue probes shard s's commit metadata (version clock or sequence
// lock). The second result is false when the underlying engine exposes no
// probe or s is out of range.
func (e *Engine) ClockValue(s int) (uint64, bool) {
	if s < 0 || s >= e.eff {
		return 0, false
	}
	if p, ok := e.subs[s].(clockProber); ok {
		return p.ClockValue(), true
	}
	return 0, false
}

// Quiescent verifies every shard's metadata holds no leaked resources.
func (e *Engine) Quiescent() error {
	for i, sub := range e.subs {
		if err := sub.Quiescent(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// hwReporter is the per-shard view of the facade's HTM telemetry probe.
type hwReporter interface {
	Fallbacks() uint64
	HWAborts() uint64
}

// Fallbacks sums the hardware-fallback tallies over the shards whose
// sub-engine exposes them (zero for software engines).
func (e *Engine) Fallbacks() uint64 {
	var n uint64
	for _, sub := range e.subs {
		if r, ok := sub.(hwReporter); ok {
			n += r.Fallbacks()
		}
	}
	return n
}

// HWAborts sums the hardware-abort tallies over the shards whose sub-engine
// exposes them.
func (e *Engine) HWAborts() uint64 {
	var n uint64
	for _, sub := range e.subs {
		if r, ok := sub.(hwReporter); ok {
			n += r.HWAborts()
		}
	}
	return n
}

// NewTx returns a sharded transaction descriptor. Sub-descriptors are
// created lazily on first touch of their shard and cached for the
// descriptor's lifetime, so the steady state allocates nothing.
func (e *Engine) NewTx(cfg core.TxConfig) core.TxImpl {
	// No sub-engine may fall back to an in-engine irrevocable mode: an
	// irrevocable attempt writes in place, which cannot roll back when
	// another shard's Prepare aborts a cross-shard commit. Progress comes
	// from the runtime-level escalation gate instead.
	cfg.NoIrrevocable = true
	return &Tx{
		e:       e,
		cfg:     cfg,
		impls:   make([]core.TxImpl, e.eff),
		two:     make([]core.TwoPhase, e.eff),
		started: make([]bool, e.eff),
		touched: make([]int, 0, e.eff),
	}
}

// Tx is one sharded transaction descriptor. It implements core.TxImpl by
// routing every barrier to the sub-descriptor of the variable's shard and
// owns the cross-shard commit and the ticket-based opacity protocol.
type Tx struct {
	e   *Engine
	cfg core.TxConfig
	// impls caches the lazily-created sub-descriptors across attempts; two
	// caches their TwoPhase view. started/touched are per-attempt: which
	// shards this attempt entered, in first-touch order.
	impls   []core.TxImpl
	two     []core.TwoPhase
	started []bool
	touched []int
	fp      *core.FaultPlan
	// multi flips when the attempt touches its second shard; ticketSeen is
	// the cross-commit ticket the current multi-shard snapshot is certified
	// at.
	multi      bool
	ticketSeen uint64
	stats      core.TxStats // own counters (cross commits / revalidations)
	agg        core.TxStats // scratch for AttemptStats aggregation

	// Durable redo capture: per-shard record buffers filled by the barriers
	// (lazily allocated on the first durable runtime attempt, recycled per
	// attempt), plus scratch for assembling a cross-shard frame list.
	redo     [][]wal.Record
	logParts []int
	logRecs  [][]wal.Record
}

// Start begins a fresh attempt. Sub-descriptors start lazily on first touch
// (each shard snapshot is taken as late as possible — the per-shard start
// versions of DESIGN.md §11), so Start only clears the routing state.
func (tx *Tx) Start() {
	for _, s := range tx.touched {
		tx.started[s] = false
		if tx.redo != nil {
			tx.redo[s] = tx.redo[s][:0]
		}
	}
	tx.touched = tx.touched[:0]
	tx.multi = false
	tx.stats.Reset()
}

// capture appends one semantic redo record for v's shard. Volatile-only
// variables (durable key 0) are never logged.
func (tx *Tx) capture(v *core.Var, op wal.Op, aux uint8, val int64) {
	k := v.DurableKey()
	if k == 0 {
		return
	}
	if tx.redo == nil {
		tx.redo = make([][]wal.Record, tx.e.eff)
	}
	s := tx.e.shardOf(v)
	tx.redo[s] = append(tx.redo[s], wal.Record{Op: op, Aux: aux, Key: k, Val: val})
}

// SetFaultPlan arms or disarms fault injection on every cached
// sub-descriptor (and on ones created later).
func (tx *Tx) SetFaultPlan(p *core.FaultPlan) {
	tx.fp = p
	for _, impl := range tx.impls {
		if impl != nil {
			impl.SetFaultPlan(p)
		}
	}
}

// subAt returns shard s's sub-descriptor, creating and/or starting it on
// first touch of the attempt.
func (tx *Tx) subAt(s int) core.TxImpl {
	impl := tx.impls[s]
	if impl == nil {
		impl = tx.e.subs[s].NewTx(tx.cfg)
		tx.impls[s] = impl
		tx.two[s], _ = impl.(core.TwoPhase)
		if tx.fp != nil {
			impl.SetFaultPlan(tx.fp)
		}
	}
	if !tx.started[s] {
		tx.enter(s, impl)
	}
	return impl
}

// sub routes a variable to its shard's sub-descriptor.
func (tx *Tx) sub(v *core.Var) core.TxImpl {
	return tx.subAt(tx.e.shardOf(v))
}

// enter starts shard s's attempt. Entering the first shard is free; entering
// any further shard makes the attempt multi-shard and must align the shard
// snapshots: snapshot the ticket, start the new shard, then re-certify every
// previously started shard (TwoPhase.Validate extends or aborts) and loop
// until the ticket is stable — after which all started shards are known
// mutually consistent at the observed ticket.
func (tx *Tx) enter(s int, impl core.TxImpl) {
	if len(tx.touched) == 0 {
		tx.started[s] = true
		tx.touched = append(tx.touched, s)
		impl.Start()
		return
	}
	t := tx.e.ticket.Load()
	tx.multi = true
	tx.started[s] = true
	tx.touched = append(tx.touched, s)
	impl.Start()
	for {
		for _, p := range tx.touched {
			if p != s {
				tx.two[p].Validate()
			}
		}
		t2 := tx.e.ticket.Load()
		if t2 == t {
			tx.ticketSeen = t2
			return
		}
		t = t2
		tx.stats.CrossRevals++
	}
}

// recheck is the per-barrier opacity hook of multi-shard attempts: when the
// cross-commit ticket moved since the snapshot was certified, re-certify
// every started shard. Single-shard attempts pay one predictable branch and
// never load the ticket.
func (tx *Tx) recheck() {
	if !tx.multi {
		return
	}
	t := tx.e.ticket.Load()
	for t != tx.ticketSeen {
		for _, p := range tx.touched {
			tx.two[p].Validate()
		}
		tx.ticketSeen = t
		tx.stats.CrossRevals++
		t = tx.e.ticket.Load()
	}
}

// Read routes the classical read barrier.
func (tx *Tx) Read(v *core.Var) int64 {
	tx.recheck()
	return tx.sub(v).Read(v)
}

// Write routes the classical write barrier.
func (tx *Tx) Write(v *core.Var, val int64) {
	tx.recheck()
	tx.sub(v).Write(v, val)
	if tx.e.logger != nil {
		tx.capture(v, wal.OpWrite, 0, val)
	}
}

// Cmp routes the semantic conditional.
func (tx *Tx) Cmp(v *core.Var, op core.Op, operand int64) bool {
	tx.recheck()
	held := tx.sub(v).Cmp(v, op, operand)
	if tx.e.logger != nil && tx.e.logFacts {
		aux := uint8(op)
		if held {
			aux |= wal.FactHeld
		}
		tx.capture(v, wal.OpFact, aux, operand)
	}
	return held
}

// CmpVars routes the address–address conditional. Operands on one shard
// keep the single two-address fact; a pair that spans shards degrades to
// value-pinning the right-hand side on its own shard (an EQ fact there) and
// a one-address fact on the left shard — semantic facts cannot span engine
// instances.
func (tx *Tx) CmpVars(a *core.Var, op core.Op, b *core.Var) bool {
	tx.recheck()
	sa, sb := tx.e.shardOf(a), tx.e.shardOf(b)
	if sa == sb {
		return tx.subAt(sa).CmpVars(a, op, b)
	}
	operand := tx.subAt(sb).Read(b)
	return tx.subAt(sa).Cmp(a, op, operand)
}

// CmpSum routes the arithmetic conditional. Addends on one shard keep the
// composed sum fact; a sum that spans shards degrades to classical reads of
// every addend (value-pinning), like the non-semantic baselines.
func (tx *Tx) CmpSum(op core.Op, rhs int64, vars []*core.Var) bool {
	tx.recheck()
	if len(vars) == 0 {
		return op.Eval(0, rhs)
	}
	s := tx.e.shardOf(vars[0])
	same := true
	for _, v := range vars[1:] {
		if tx.e.shardOf(v) != s {
			same = false
			break
		}
	}
	if same {
		return tx.subAt(s).CmpSum(op, rhs, vars)
	}
	var sum int64
	for _, v := range vars {
		sum += tx.sub(v).Read(v)
	}
	return op.Eval(sum, rhs)
}

// CmpAny routes the composed disjunction. Clauses on one shard keep the
// composed fact; clauses spanning shards degrade to per-clause semantic
// conditionals with short-circuiting (each clause a fact on its own shard).
func (tx *Tx) CmpAny(conds []core.Cond) bool {
	tx.recheck()
	if len(conds) == 0 {
		return false
	}
	s := tx.e.shardOf(conds[0].Var)
	same := true
	for i := range conds[1:] {
		if tx.e.shardOf(conds[1+i].Var) != s {
			same = false
			break
		}
	}
	if same {
		return tx.subAt(s).CmpAny(conds)
	}
	for _, c := range conds {
		if tx.sub(c.Var).Cmp(c.Var, c.Op, c.Operand) {
			return true
		}
	}
	return false
}

// Inc routes the semantic increment. The redo record is the delta itself —
// logging a deferred increment reads nothing, the low-level-semantics
// property that keeps durable counter traffic validation- and read-free.
func (tx *Tx) Inc(v *core.Var, delta int64) {
	tx.recheck()
	tx.sub(v).Inc(v, delta)
	if tx.e.logger != nil {
		tx.capture(v, wal.OpInc, 0, delta)
	}
}

// Commit publishes the attempt. A single-shard attempt commits through its
// shard's unchanged engine commit — the zero-cross-traffic fast path; a
// multi-shard attempt runs the two-phase protocol.
func (tx *Tx) Commit() {
	switch len(tx.touched) {
	case 0:
		// Empty transaction: no shard was entered; step the commit fault
		// site directly so injected commit faults keep firing.
		if tx.fp != nil {
			tx.fp.Step(core.SiteCommit)
		}
		return
	case 1:
		s := tx.touched[0]
		if tx.e.logger != nil && !tx.e.walFailed.Load() && tx.redo != nil && len(tx.redo[s]) > 0 {
			tx.commitSingleDurable(s)
		} else {
			tx.impls[s].Commit()
		}
		tx.e.counters[s].single.Add(1)
		return
	}
	tx.commitCross()
}

// commitSingleDurable is the single-shard durable commit: decompose the
// engine commit through its TwoPhase view so the log append lands between
// validation (the commit is certain, locks held) and publication (nothing
// is visible yet) — log-before-publish, the redo-WAL invariant. A crash
// after the append but before Publish therefore replays to exactly the
// published state; a crash before the append publishes nothing.
func (tx *Tx) commitSingleDurable(s int) {
	if tx.fp != nil {
		tx.fp.Step(core.SiteCommit)
	}
	tp := tx.two[s]
	if tp == nil {
		// Irrevocable engine: it serializes globally and its commit cannot
		// fail once reached, so the append itself is the decision point.
		tx.logSingleFrame(s)
		tx.crashPoint()
		tx.impls[s].Commit()
		return
	}
	tp.Prepare()
	tp.Validate()
	tx.logSingleFrame(s)
	tx.crashPoint()
	tp.Publish()
}

// logSingleFrame appends one shard's redo records, degrading on failure.
func (tx *Tx) logSingleFrame(s int) {
	if err := tx.e.logger.LogSingle(s, tx.redo[s]); err != nil {
		tx.logFailed(err)
	}
	tx.stats.WALAppends++
}

// logFailed handles a log append error: a simulated crash unwinds as
// process death (the runtime releases in-memory locks and re-throws); a
// real I/O error latches the engine into volatile degraded mode and aborts
// the attempt with ReasonLogFail, which the retry loop escalates straight
// to the irrevocable serializing mode.
func (tx *Tx) logFailed(err error) {
	var ce *wal.CrashedError
	if errors.As(err, &ce) {
		core.CrashPanic(ce.Site)
	}
	tx.e.walFailed.Store(true)
	tx.stats.WALFailures++
	core.AbortWith(core.ReasonLogFail)
}

// crashPoint is the post-fsync/pre-publish crash-injection consult: the
// records are durable, nothing is published, and recovery must replay the
// commit all-or-nothing.
func (tx *Tx) crashPoint() {
	if tx.fp != nil && tx.fp.CrashHit(core.CrashPostFsyncPrePublish) {
		core.CrashPanic(core.CrashPostFsyncPrePublish)
	}
}

// commitCross is the two-phase cross-shard commit. Participants are
// processed in ascending shard order — a global acquisition order, so two
// cross-shard commits can never deadlock on each other's Prepare (and the
// bounded waits inside Prepare/Validate break any residual wait cycle
// against single-shard committers). The ticket advance between validation
// and publication is the transaction's single linearization point.
func (tx *Tx) commitCross() {
	if tx.fp != nil {
		tx.fp.Step(core.SiteCommit)
	}
	order := tx.touched
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, s := range order {
		tx.two[s].Prepare()
	}
	for _, s := range order {
		tx.two[s].Validate()
	}
	// Log before the ticket: every participant's redo frame is appended
	// (and made durable per policy) while the commit is still invisible, so
	// the ticket advance below remains the transaction's single
	// linearization point — a crash on either side of it is clean. Before
	// the append: nothing logged, nothing published, the transaction never
	// happened. After: recovery's cross-completeness cut sees every
	// participant's frame and replays the commit whole.
	if tx.e.logger != nil && !tx.e.walFailed.Load() && tx.redo != nil {
		tx.logCrossFrames(order)
		tx.crashPoint()
	}
	tx.e.ticket.Add(1)
	for _, s := range order {
		tx.two[s].Publish()
	}
	tx.stats.CrossCommits++
	for _, s := range order {
		tx.e.counters[s].cross.Add(1)
	}
}

// logCrossFrames appends the cross-shard commit's per-participant record
// subsets. Participants with no redo records (read-only on their shard, or
// touching only volatile vars) get no frame; a commit whose writes all land
// on one shard degenerates to a plain single-shard frame.
func (tx *Tx) logCrossFrames(order []int) {
	parts, recs := tx.logParts[:0], tx.logRecs[:0]
	for _, s := range order {
		if len(tx.redo[s]) > 0 {
			parts = append(parts, s)
			recs = append(recs, tx.redo[s])
		}
	}
	tx.logParts, tx.logRecs = parts, recs
	switch len(parts) {
	case 0:
		return
	case 1:
		tx.logSingleFrame(parts[0])
	default:
		if err := tx.e.logger.LogCross(parts, recs); err != nil {
			tx.logFailed(err)
		}
		tx.stats.WALAppends += uint64(len(parts))
	}
}

// CommitPrivatize implements core.Privatizer: the usual commit (single-shard
// fast path or two-phase cross-shard protocol) followed by a scoped drain.
// An abort unwinds like Commit and performs no drain.
func (tx *Tx) CommitPrivatize() {
	tx.Commit()
	tx.PrivatizeBarrier()
}

// PrivatizeBarrier drains the reader tables of exactly the engine instances
// this transaction touched (DESIGN.md §14) — untouched shards have, by
// construction, no reader that could hold a pointer this commit unlinked
// from *their* metadata, and their traffic never stalls. Valid immediately
// after a successful Commit on the same descriptor.
func (tx *Tx) PrivatizeBarrier() {
	for _, s := range tx.touched {
		if p, ok := tx.impls[s].(core.Privatizer); ok {
			p.PrivatizeBarrier()
		}
	}
}

// Cleanup releases whatever the attempt's started shards hold — after a
// barrier abort nothing is held, after a phase-1 abort each prepared shard
// rolls its locks back. Sub-descriptor Cleanups are idempotent, so cleaning
// participants that never prepared is safe.
func (tx *Tx) Cleanup() {
	for _, s := range tx.touched {
		tx.impls[s].Cleanup()
	}
}

// NoteBatch implements core.BatchNoter: the runtime reports, after a
// successful AtomicallyBatch commit, how many logical requests the commit
// carried; the units are attributed to the shards the attempt touched. The
// coalescing batcher only builds single-shard batches, so the common case is
// exactly one touched shard; units on a cross-shard (or empty) attempt fold
// into the first touched shard (or shard 0) so no request goes unaccounted.
func (tx *Tx) NoteBatch(units int) {
	if units <= 0 {
		return
	}
	s := 0
	if len(tx.touched) > 0 {
		s = tx.touched[0]
	}
	tx.e.counters[s].batched.Add(uint64(units))
}

// AttemptStats aggregates the attempt's counters: the descriptor's own
// cross-shard counters plus every touched shard's sub-descriptor counters.
func (tx *Tx) AttemptStats() *core.TxStats {
	tx.agg = tx.stats
	for _, s := range tx.touched {
		tx.agg.Accumulate(tx.impls[s].AttemptStats())
	}
	return &tx.agg
}
