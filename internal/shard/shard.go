// Package shard composes N independent instances of one concrete STM engine
// into a single partitioned engine (DESIGN.md §11).
//
// Each instance — a "shard" — owns a full copy of the underlying algorithm's
// global metadata: its own TL2 version clock and orec table, or its own NOrec
// sequence lock. Variables carry a shard assignment stamped at allocation
// (core.NewVarOn), and every barrier of a transaction routes to the instance
// of its variable's shard. A transaction that touches a single shard runs
// the underlying algorithm completely unchanged against that shard's private
// metadata and commits with zero cross-shard traffic — disjoint shards never
// share a cache line, which removes the single-clock commit serialization
// that PR3–PR5 left in place ("the last structural scalability ceiling",
// ROADMAP item 1).
//
// Transactions that span shards commit through a two-phase protocol built
// from the core.TwoPhase decomposition the TL2 and NOrec families implement:
//
//	phase 1  Prepare every participating shard in ascending shard order
//	         (global order ⇒ no lock-acquisition cycles), then Validate
//	         every participant with all write locks held — reads,
//	         compare-sets, and deferred-increment preconditions are checked
//	         per shard against that shard's start version, generalizing the
//	         S-TL2 phase-1 extension logic.
//	phase 2  advance the engine-wide commit ticket (the single linearization
//	         point), then Publish every shard — write-back plus lock
//	         release, which the TwoPhase contract guarantees cannot fail.
//
// Live multi-shard snapshots stay opaque through the ticket: a transaction
// becomes "multi" the moment it touches its second shard, snapshots the
// ticket, and re-certifies every started shard whenever the ticket moves —
// one shared load per barrier, the instrumentation budget the HyTM cost
// analysis allows the cross-shard path (PAPERS.md). Single-shard
// transactions never load the ticket at all, keeping the common path
// progressive in the sense of the progressive-TM model (PAPERS.md).
//
// Irrevocable engines (SGL) cannot run the two-phase protocol — they take
// their lock at Start and have no rollback — so a sharded irrevocable engine
// degenerates to one serializing instance backing every shard. That keeps
// the Adaptive ladder's last rung (and the starvation escalation path) valid
// under sharding.
package shard

import (
	"fmt"
	"sync/atomic"

	"semstm/internal/core"
)

// shardCounters tracks one shard's commit mix on a private cache line:
// single-shard commits routed entirely to this shard, and cross-shard
// commits this shard participated in.
type shardCounters struct {
	single atomic.Uint64
	cross  atomic.Uint64
	_      [48]byte
}

// ShardSnapshot is a plain-value copy of one shard's commit counters.
type ShardSnapshot struct {
	SingleCommits uint64 `json:"single_commits"`
	CrossCommits  uint64 `json:"cross_commits"`
}

// clockProber is the optional probe concrete engines expose so tests can
// assert a shard's commit metadata never moved (tl2: version clock; norec:
// sequence lock).
type clockProber interface {
	ClockValue() uint64
}

// Engine is the partitioned composite engine. It implements core.Engine, so
// a runtime drives it exactly like a concrete engine; the partitioning is
// invisible above this package.
type Engine struct {
	desc core.EngineDesc
	subs []core.Engine
	// n is the requested shard count (the routing/reporting width); eff is
	// the number of engine instances actually backing it — equal to n for
	// two-phase engines, 1 for irrevocable engines.
	n, eff   int
	counters []shardCounters
	// ticket is the engine-wide cross-shard commit counter: bumped once per
	// cross-shard commit between validation and publication, watched by live
	// multi-shard transactions. Padded so the (cross-path-only) ticket line
	// is never dragged into single-shard traffic.
	_      core.PadWord
	ticket atomic.Uint64
	_      core.PadWord
}

// NewEngine partitions desc into nshards independent instances. It panics on
// a composite descriptor (composition happens above sharding, in the facade),
// on a shard count below 1, and on an engine that is neither two-phase nor
// irrevocable — such an engine has no sound cross-shard commit.
func NewEngine(desc core.EngineDesc, nshards int) *Engine {
	if nshards < 1 {
		panic(fmt.Sprintf("shard: invalid shard count %d", nshards))
	}
	if desc.Composite {
		panic(fmt.Sprintf("shard: cannot shard composite engine %q", desc.Name))
	}
	eff := nshards
	if desc.Irrevocable {
		eff = 1 // one serializing instance backs every shard
	} else if !desc.TwoPhase {
		panic(fmt.Sprintf("shard: engine %q supports neither two-phase commit nor irrevocable sharding", desc.Name))
	}
	e := &Engine{
		desc:     desc,
		subs:     make([]core.Engine, eff),
		n:        nshards,
		eff:      eff,
		counters: make([]shardCounters, eff),
	}
	for i := range e.subs {
		e.subs[i] = desc.New()
	}
	return e
}

// NumShards reports the requested shard count.
func (e *Engine) NumShards() int { return e.n }

// Ticket exposes the cross-shard commit ticket (tests and diagnostics).
func (e *Engine) Ticket() uint64 { return e.ticket.Load() }

// shardOf maps a variable to its backing instance: the stamped shard
// assignment, folded into range for out-of-range stamps (a Var allocated for
// a wider runtime keeps working, just with less isolation).
func (e *Engine) shardOf(v *core.Var) int {
	if e.eff == 1 {
		return 0
	}
	s := v.Shard()
	if s >= e.eff {
		s %= e.eff
	}
	return s
}

// Snapshots returns the per-shard commit counters, one entry per requested
// shard (for an irrevocable engine all traffic folds into entry 0).
func (e *Engine) Snapshots() []ShardSnapshot {
	out := make([]ShardSnapshot, e.n)
	for i := 0; i < e.eff; i++ {
		out[i] = ShardSnapshot{
			SingleCommits: e.counters[i].single.Load(),
			CrossCommits:  e.counters[i].cross.Load(),
		}
	}
	return out
}

// ClockValue probes shard s's commit metadata (version clock or sequence
// lock). The second result is false when the underlying engine exposes no
// probe or s is out of range.
func (e *Engine) ClockValue(s int) (uint64, bool) {
	if s < 0 || s >= e.eff {
		return 0, false
	}
	if p, ok := e.subs[s].(clockProber); ok {
		return p.ClockValue(), true
	}
	return 0, false
}

// Quiescent verifies every shard's metadata holds no leaked resources.
func (e *Engine) Quiescent() error {
	for i, sub := range e.subs {
		if err := sub.Quiescent(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// NewTx returns a sharded transaction descriptor. Sub-descriptors are
// created lazily on first touch of their shard and cached for the
// descriptor's lifetime, so the steady state allocates nothing.
func (e *Engine) NewTx(cfg core.TxConfig) core.TxImpl {
	return &Tx{
		e:       e,
		cfg:     cfg,
		impls:   make([]core.TxImpl, e.eff),
		two:     make([]core.TwoPhase, e.eff),
		started: make([]bool, e.eff),
		touched: make([]int, 0, e.eff),
	}
}

// Tx is one sharded transaction descriptor. It implements core.TxImpl by
// routing every barrier to the sub-descriptor of the variable's shard and
// owns the cross-shard commit and the ticket-based opacity protocol.
type Tx struct {
	e   *Engine
	cfg core.TxConfig
	// impls caches the lazily-created sub-descriptors across attempts; two
	// caches their TwoPhase view. started/touched are per-attempt: which
	// shards this attempt entered, in first-touch order.
	impls   []core.TxImpl
	two     []core.TwoPhase
	started []bool
	touched []int
	fp      *core.FaultPlan
	// multi flips when the attempt touches its second shard; ticketSeen is
	// the cross-commit ticket the current multi-shard snapshot is certified
	// at.
	multi      bool
	ticketSeen uint64
	stats      core.TxStats // own counters (cross commits / revalidations)
	agg        core.TxStats // scratch for AttemptStats aggregation
}

// Start begins a fresh attempt. Sub-descriptors start lazily on first touch
// (each shard snapshot is taken as late as possible — the per-shard start
// versions of DESIGN.md §11), so Start only clears the routing state.
func (tx *Tx) Start() {
	for _, s := range tx.touched {
		tx.started[s] = false
	}
	tx.touched = tx.touched[:0]
	tx.multi = false
	tx.stats.Reset()
}

// SetFaultPlan arms or disarms fault injection on every cached
// sub-descriptor (and on ones created later).
func (tx *Tx) SetFaultPlan(p *core.FaultPlan) {
	tx.fp = p
	for _, impl := range tx.impls {
		if impl != nil {
			impl.SetFaultPlan(p)
		}
	}
}

// subAt returns shard s's sub-descriptor, creating and/or starting it on
// first touch of the attempt.
func (tx *Tx) subAt(s int) core.TxImpl {
	impl := tx.impls[s]
	if impl == nil {
		impl = tx.e.subs[s].NewTx(tx.cfg)
		tx.impls[s] = impl
		tx.two[s], _ = impl.(core.TwoPhase)
		if tx.fp != nil {
			impl.SetFaultPlan(tx.fp)
		}
	}
	if !tx.started[s] {
		tx.enter(s, impl)
	}
	return impl
}

// sub routes a variable to its shard's sub-descriptor.
func (tx *Tx) sub(v *core.Var) core.TxImpl {
	return tx.subAt(tx.e.shardOf(v))
}

// enter starts shard s's attempt. Entering the first shard is free; entering
// any further shard makes the attempt multi-shard and must align the shard
// snapshots: snapshot the ticket, start the new shard, then re-certify every
// previously started shard (TwoPhase.Validate extends or aborts) and loop
// until the ticket is stable — after which all started shards are known
// mutually consistent at the observed ticket.
func (tx *Tx) enter(s int, impl core.TxImpl) {
	if len(tx.touched) == 0 {
		tx.started[s] = true
		tx.touched = append(tx.touched, s)
		impl.Start()
		return
	}
	t := tx.e.ticket.Load()
	tx.multi = true
	tx.started[s] = true
	tx.touched = append(tx.touched, s)
	impl.Start()
	for {
		for _, p := range tx.touched {
			if p != s {
				tx.two[p].Validate()
			}
		}
		t2 := tx.e.ticket.Load()
		if t2 == t {
			tx.ticketSeen = t2
			return
		}
		t = t2
		tx.stats.CrossRevals++
	}
}

// recheck is the per-barrier opacity hook of multi-shard attempts: when the
// cross-commit ticket moved since the snapshot was certified, re-certify
// every started shard. Single-shard attempts pay one predictable branch and
// never load the ticket.
func (tx *Tx) recheck() {
	if !tx.multi {
		return
	}
	t := tx.e.ticket.Load()
	for t != tx.ticketSeen {
		for _, p := range tx.touched {
			tx.two[p].Validate()
		}
		tx.ticketSeen = t
		tx.stats.CrossRevals++
		t = tx.e.ticket.Load()
	}
}

// Read routes the classical read barrier.
func (tx *Tx) Read(v *core.Var) int64 {
	tx.recheck()
	return tx.sub(v).Read(v)
}

// Write routes the classical write barrier.
func (tx *Tx) Write(v *core.Var, val int64) {
	tx.recheck()
	tx.sub(v).Write(v, val)
}

// Cmp routes the semantic conditional.
func (tx *Tx) Cmp(v *core.Var, op core.Op, operand int64) bool {
	tx.recheck()
	return tx.sub(v).Cmp(v, op, operand)
}

// CmpVars routes the address–address conditional. Operands on one shard
// keep the single two-address fact; a pair that spans shards degrades to
// value-pinning the right-hand side on its own shard (an EQ fact there) and
// a one-address fact on the left shard — semantic facts cannot span engine
// instances.
func (tx *Tx) CmpVars(a *core.Var, op core.Op, b *core.Var) bool {
	tx.recheck()
	sa, sb := tx.e.shardOf(a), tx.e.shardOf(b)
	if sa == sb {
		return tx.subAt(sa).CmpVars(a, op, b)
	}
	operand := tx.subAt(sb).Read(b)
	return tx.subAt(sa).Cmp(a, op, operand)
}

// CmpSum routes the arithmetic conditional. Addends on one shard keep the
// composed sum fact; a sum that spans shards degrades to classical reads of
// every addend (value-pinning), like the non-semantic baselines.
func (tx *Tx) CmpSum(op core.Op, rhs int64, vars []*core.Var) bool {
	tx.recheck()
	if len(vars) == 0 {
		return op.Eval(0, rhs)
	}
	s := tx.e.shardOf(vars[0])
	same := true
	for _, v := range vars[1:] {
		if tx.e.shardOf(v) != s {
			same = false
			break
		}
	}
	if same {
		return tx.subAt(s).CmpSum(op, rhs, vars)
	}
	var sum int64
	for _, v := range vars {
		sum += tx.sub(v).Read(v)
	}
	return op.Eval(sum, rhs)
}

// CmpAny routes the composed disjunction. Clauses on one shard keep the
// composed fact; clauses spanning shards degrade to per-clause semantic
// conditionals with short-circuiting (each clause a fact on its own shard).
func (tx *Tx) CmpAny(conds []core.Cond) bool {
	tx.recheck()
	if len(conds) == 0 {
		return false
	}
	s := tx.e.shardOf(conds[0].Var)
	same := true
	for i := range conds[1:] {
		if tx.e.shardOf(conds[1+i].Var) != s {
			same = false
			break
		}
	}
	if same {
		return tx.subAt(s).CmpAny(conds)
	}
	for _, c := range conds {
		if tx.sub(c.Var).Cmp(c.Var, c.Op, c.Operand) {
			return true
		}
	}
	return false
}

// Inc routes the semantic increment.
func (tx *Tx) Inc(v *core.Var, delta int64) {
	tx.recheck()
	tx.sub(v).Inc(v, delta)
}

// Commit publishes the attempt. A single-shard attempt commits through its
// shard's unchanged engine commit — the zero-cross-traffic fast path; a
// multi-shard attempt runs the two-phase protocol.
func (tx *Tx) Commit() {
	switch len(tx.touched) {
	case 0:
		// Empty transaction: no shard was entered; step the commit fault
		// site directly so injected commit faults keep firing.
		if tx.fp != nil {
			tx.fp.Step(core.SiteCommit)
		}
		return
	case 1:
		s := tx.touched[0]
		tx.impls[s].Commit()
		tx.e.counters[s].single.Add(1)
		return
	}
	tx.commitCross()
}

// commitCross is the two-phase cross-shard commit. Participants are
// processed in ascending shard order — a global acquisition order, so two
// cross-shard commits can never deadlock on each other's Prepare (and the
// bounded waits inside Prepare/Validate break any residual wait cycle
// against single-shard committers). The ticket advance between validation
// and publication is the transaction's single linearization point.
func (tx *Tx) commitCross() {
	if tx.fp != nil {
		tx.fp.Step(core.SiteCommit)
	}
	order := tx.touched
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, s := range order {
		tx.two[s].Prepare()
	}
	for _, s := range order {
		tx.two[s].Validate()
	}
	tx.e.ticket.Add(1)
	for _, s := range order {
		tx.two[s].Publish()
	}
	tx.stats.CrossCommits++
	for _, s := range order {
		tx.e.counters[s].cross.Add(1)
	}
}

// Cleanup releases whatever the attempt's started shards hold — after a
// barrier abort nothing is held, after a phase-1 abort each prepared shard
// rolls its locks back. Sub-descriptor Cleanups are idempotent, so cleaning
// participants that never prepared is safe.
func (tx *Tx) Cleanup() {
	for _, s := range tx.touched {
		tx.impls[s].Cleanup()
	}
}

// AttemptStats aggregates the attempt's counters: the descriptor's own
// cross-shard counters plus every touched shard's sub-descriptor counters.
func (tx *Tx) AttemptStats() *core.TxStats {
	tx.agg = tx.stats
	for _, s := range tx.touched {
		tx.agg.Accumulate(tx.impls[s].AttemptStats())
	}
	return &tx.agg
}
