package core

import "testing"

// Write-set microbenchmarks: the raw container operations behind every
// barrier, free of algorithm logic. GetMiss* are the cases the Bloom
// signature targets; Insert/Reset capture the per-attempt churn a pooled
// transaction descriptor pays.

func benchVars(n int) []*Var {
	vars := make([]*Var, n)
	for i := range vars {
		vars[i] = NewVar(int64(i))
	}
	return vars
}

// BenchmarkWriteSetGetMissSmall: lookups that miss a 4-entry write-set.
func BenchmarkWriteSetGetMissSmall(b *testing.B) {
	ws := NewWriteSet()
	in := benchVars(4)
	out := benchVars(16)
	for i, v := range in {
		ws.PutWrite(v, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ws.Get(out[i%len(out)]) != nil {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkWriteSetGetMissLarge: lookups that miss a 32-entry write-set.
func BenchmarkWriteSetGetMissLarge(b *testing.B) {
	ws := NewWriteSet()
	in := benchVars(32)
	out := benchVars(16)
	for i, v := range in {
		ws.PutWrite(v, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ws.Get(out[i%len(out)]) != nil {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkWriteSetGetHitSmall: lookups that hit a 4-entry write-set.
func BenchmarkWriteSetGetHitSmall(b *testing.B) {
	ws := NewWriteSet()
	in := benchVars(4)
	for i, v := range in {
		ws.PutWrite(v, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ws.Get(in[i%len(in)]) == nil {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkWriteSetGetHitLarge: lookups that hit a 32-entry write-set.
func BenchmarkWriteSetGetHitLarge(b *testing.B) {
	ws := NewWriteSet()
	in := benchVars(32)
	for i, v := range in {
		ws.PutWrite(v, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ws.Get(in[i%len(in)]) == nil {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkWriteSetInsertReset8: fill 8 entries then Reset, the per-attempt
// lifecycle of a small transaction.
func BenchmarkWriteSetInsertReset8(b *testing.B) {
	ws := NewWriteSet()
	vars := benchVars(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range vars {
			ws.PutWrite(v, int64(j))
		}
		ws.Reset()
	}
}

// BenchmarkWriteSetInsertReset64: fill 64 entries then Reset, the large
// transaction lifecycle (beyond any small-set threshold).
func BenchmarkWriteSetInsertReset64(b *testing.B) {
	ws := NewWriteSet()
	vars := benchVars(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range vars {
			ws.PutWrite(v, int64(j))
		}
		ws.Reset()
	}
}

// BenchmarkSemSetDedupHasEQ: the read-dedup ablation's duplicate probe
// against a read-set that grows to 64 facts.
func BenchmarkSemSetDedupHasEQ(b *testing.B) {
	vars := benchVars(64)
	s := NewSemSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			s.Reset()
		}
		v := vars[i%64]
		if !s.HasEQ(v, int64(i%64)) {
			s.Append(v, OpEQ, int64(i%64))
		}
	}
}
