package core

// abortSignal is the sentinel carried by the panic that unwinds an aborted
// transaction back to the runtime retry loop.
type abortSignal struct{}

// Abort unwinds the current transaction attempt. Algorithm code calls it when
// validation fails; the runtime recovers the sentinel, rolls the attempt
// back, applies contention-management backoff, and retries.
func Abort() {
	panic(abortSignal{})
}

// IsAbort reports whether a recovered panic value is the transaction-abort
// sentinel. Any other value is re-thrown by the runtime, so programmer bugs
// inside atomic blocks surface as ordinary panics.
func IsAbort(r any) bool {
	_, ok := r.(abortSignal)
	return ok
}
