package core

// Reason classifies why a transaction attempt aborted. The taxonomy follows
// the failure modes of the implemented algorithm families: value/version
// validation failures, semantic fact flips, lock-acquisition give-ups,
// capacity-style resource exhaustion (HTM buffers, ring wrap), spurious
// failures (simulated hardware events and injected faults), and explicit
// user restarts. The runtime threads the reason of every abort into the
// aggregate statistics and into the typed errors of the bounded execution
// APIs, so a livelocked workload can be diagnosed from counters instead of
// guesswork.
type Reason uint8

const (
	// ReasonUnknown is the zero reason, used by legacy Abort call sites.
	ReasonUnknown Reason = iota
	// ReasonValidation: classical (value- or version-based) validation of
	// the read-set failed — some location read by the transaction changed.
	ReasonValidation
	// ReasonCmpFlip: a recorded semantic fact (cmp outcome, sum or OR
	// expression) no longer holds — the semantic analogue of validation.
	ReasonCmpFlip
	// ReasonOrecLocked: the transaction gave up waiting for an ownership
	// record held by another transaction (bounded-spin timeout).
	ReasonOrecLocked
	// ReasonCapacity: a bounded resource ran out — simulated HTM tracking
	// capacity, or a RingSTM transaction falling off the ring.
	ReasonCapacity
	// ReasonSpurious: a failure with no logical conflict — the simulated
	// HTM's spurious commit failures, or an injected FaultPlan abort.
	ReasonSpurious
	// ReasonExplicit: user code called Tx.Restart.
	ReasonExplicit
	// ReasonLogFail: the durable commit pipeline could not append the
	// transaction's redo records to the write-ahead log (I/O failure). The
	// attempt rolls back with its locks released and the retry loop
	// escalates straight to the irrevocable serializing mode, where the
	// commit proceeds volatile — the runtime degrades instead of panicking,
	// and the WAL stays latched failed for the health probes to report.
	ReasonLogFail
	// ReasonHWConflict: a hardware path of the progressive HyTM engine lost
	// its conflict-detection epoch — another commit (hardware or software)
	// published while the attempt speculated. Unlike ReasonValidation it is
	// typed separately because it drives the per-path demotion policy: the
	// uninstrumented fast path cannot tell a real conflict from a benign
	// one (it keeps no read-set), so repeated hw-conflicts demote the
	// transaction to the instrumented middle path rather than marking the
	// data genuinely contended.
	ReasonHWConflict
	// ReasonHWCapacity: a hardware path of the progressive HyTM engine
	// overflowed the simulated tracking buffers. It demotes immediately
	// (retrying the same footprint on the same path cannot succeed): the
	// fast path falls to the instrumented middle path, whose facts and
	// deferred increments shrink the tracked set, and the middle path falls
	// to the unbounded software slow path.
	ReasonHWCapacity
	// NumReasons bounds the enum; arrays indexed by Reason use it.
	NumReasons
)

// String returns a short stable label for the reason (used in stats exports).
func (r Reason) String() string {
	switch r {
	case ReasonUnknown:
		return "unknown"
	case ReasonValidation:
		return "validation"
	case ReasonCmpFlip:
		return "cmp-flip"
	case ReasonOrecLocked:
		return "orec-locked"
	case ReasonCapacity:
		return "capacity"
	case ReasonSpurious:
		return "spurious"
	case ReasonExplicit:
		return "explicit"
	case ReasonLogFail:
		return "log-fail"
	case ReasonHWConflict:
		return "hw-conflict"
	case ReasonHWCapacity:
		return "hw-capacity"
	default:
		return "invalid"
	}
}

// abortSignal is the sentinel carried by the panic that unwinds an aborted
// transaction back to the runtime retry loop; it records why the attempt
// died.
type abortSignal struct {
	reason Reason
}

// abortSignals pre-boxes one sentinel per reason. panic takes an interface
// value, and converting a fresh abortSignal on every abort would heap-box it
// — one allocation per abort, a cost that scales with contention exactly
// when the allocator and GC are under the most pressure. Panicking with a
// pre-boxed value keeps the whole abort path allocation-free.
var abortSignals [NumReasons]any

func init() {
	for r := Reason(0); r < NumReasons; r++ {
		abortSignals[r] = abortSignal{reason: r}
	}
}

// Abort unwinds the current transaction attempt with ReasonUnknown. Algorithm
// code should prefer AbortWith; Abort remains for call sites (and tests)
// where the cause carries no information.
func Abort() {
	panic(abortSignals[ReasonUnknown])
}

// AbortWith unwinds the current transaction attempt, recording why. The
// runtime recovers the sentinel, rolls the attempt back, folds the reason
// into the per-reason abort counters, applies contention-management backoff,
// and retries (or returns a typed error from the bounded APIs).
func AbortWith(reason Reason) {
	if reason >= NumReasons {
		reason = ReasonUnknown
	}
	panic(abortSignals[reason])
}

// IsAbort reports whether a recovered panic value is the transaction-abort
// sentinel. Any other value is re-thrown by the runtime, so programmer bugs
// inside atomic blocks surface as ordinary panics.
func IsAbort(r any) bool {
	_, ok := r.(abortSignal)
	return ok
}

// ReasonOf extracts the abort reason from a recovered panic value; ok is
// false when the value is not the abort sentinel.
func ReasonOf(r any) (reason Reason, ok bool) {
	s, ok := r.(abortSignal)
	return s.reason, ok
}
