package core

import (
	"testing"
	"testing/quick"
)

func TestCondEval(t *testing.T) {
	v := NewVar(5)
	if !(Cond{Var: v, Op: OpGT, Operand: 4}).Eval() {
		t.Fatal("5 > 4")
	}
	if (Cond{Var: v, Op: OpLT, Operand: 4}).Eval() {
		t.Fatal("!(5 < 4)")
	}
}

func TestExprSumFact(t *testing.T) {
	x, y := NewVar(10), NewVar(-3)
	s := NewExprSet()
	s.AppendSum([]*Var{x, y}, OpGT, 0, true) // 7 > 0
	if !s.HoldsNow() {
		t.Fatal("fact should hold")
	}
	// Compensating updates keep the sum: still holds.
	x.StoreNT(3)
	y.StoreNT(4)
	if !s.HoldsNow() {
		t.Fatal("sum unchanged in outcome; fact must hold")
	}
	// Flip the outcome: broken.
	x.StoreNT(-10)
	if s.HoldsNow() {
		t.Fatal("sum now negative; fact must break")
	}
}

func TestExprSumFalseOutcome(t *testing.T) {
	x := NewVar(-5)
	s := NewExprSet()
	s.AppendSum([]*Var{x}, OpGT, 0, false) // observed false
	if !s.HoldsNow() {
		t.Fatal("false-outcome fact holds while sum stays non-positive")
	}
	x.StoreNT(1)
	if s.HoldsNow() {
		t.Fatal("outcome flipped to true; fact must break")
	}
}

func TestExprOrFact(t *testing.T) {
	x, y := NewVar(5), NewVar(5)
	s := NewExprSet()
	conds := []Cond{{Var: x, Op: OpGT, Operand: 0}, {Var: y, Op: OpGT, Operand: 0}}
	s.AppendOr(conds, true)

	// One clause may die while the other carries the disjunction.
	x.StoreNT(-1)
	if !s.HoldsNow() {
		t.Fatal("y > 0 still carries the OR")
	}
	y.StoreNT(-1)
	if s.HoldsNow() {
		t.Fatal("both clauses false; fact must break")
	}
}

func TestExprSetResetAndCopySemantics(t *testing.T) {
	x := NewVar(1)
	s := NewExprSet()
	vars := []*Var{x}
	s.AppendSum(vars, OpGT, 0, true)
	vars[0] = NewVar(-100) // caller reuses its slice; the set must not care
	if !s.HoldsNow() {
		t.Fatal("entry must have copied the vars slice")
	}
	conds := []Cond{{Var: x, Op: OpGT, Operand: 0}}
	s.AppendOr(conds, true)
	conds[0].Operand = 99 // same for conds
	if !s.HoldsNow() {
		t.Fatal("entry must have copied the conds slice")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Reset()
	if s.Len() != 0 || !s.HoldsNow() {
		t.Fatal("reset failed")
	}
}

// TestExprSumProperty: a recorded sum fact holds after an update iff the
// boolean outcome of the comparison is unchanged.
func TestExprSumProperty(t *testing.T) {
	f := func(opRaw uint8, a, b, a2, b2, rhs int64) bool {
		op := Op(opRaw % uint8(numOps))
		x, y := NewVar(a), NewVar(b)
		s := NewExprSet()
		outcome := op.Eval(a+b, rhs)
		s.AppendSum([]*Var{x, y}, op, rhs, outcome)
		x.StoreNT(a2)
		y.StoreNT(b2)
		return s.HoldsNow() == (op.Eval(a2+b2, rhs) == outcome)
	}
	// Keep magnitudes small to avoid overflow artifacts in the spec itself.
	cfg := &quick.Config{MaxCount: 300, Values: nil}
	if err := quick.Check(func(opRaw uint8, a, b, a2, b2, rhs int16) bool {
		return f(opRaw, int64(a), int64(b), int64(a2), int64(b2), int64(rhs))
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
