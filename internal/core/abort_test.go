package core

import "testing"

// TestAbortReasonRoundTrip verifies AbortWith carries the reason through the
// panic sentinel and ReasonOf recovers it.
func TestAbortReasonRoundTrip(t *testing.T) {
	for r := Reason(0); r < NumReasons; r++ {
		func() {
			defer func() {
				v := recover()
				if !IsAbort(v) {
					t.Fatalf("AbortWith(%v) did not raise the abort sentinel", r)
				}
				got, ok := ReasonOf(v)
				if !ok || got != r {
					t.Fatalf("ReasonOf = (%v, %v), want (%v, true)", got, ok, r)
				}
			}()
			AbortWith(r)
		}()
	}
}

// TestReasonOfForeignPanic verifies non-sentinel values are not mistaken for
// aborts.
func TestReasonOfForeignPanic(t *testing.T) {
	if _, ok := ReasonOf("boom"); ok {
		t.Fatal("ReasonOf accepted a foreign panic value")
	}
	if IsAbort(42) {
		t.Fatal("IsAbort accepted a foreign panic value")
	}
}

// TestReasonStrings verifies every reason has a distinct stable label.
func TestReasonStrings(t *testing.T) {
	seen := map[string]Reason{}
	for r := Reason(0); r < NumReasons; r++ {
		s := r.String()
		if s == "" || s == "invalid" {
			t.Fatalf("reason %d has no label", r)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("reasons %d and %d share label %q", prev, r, s)
		}
		seen[s] = r
	}
}

// TestStatsReasonCounters verifies per-reason counts flow into Snapshot and
// its map view, and survive Sub.
func TestStatsReasonCounters(t *testing.T) {
	var st Stats
	sh := st.Register()
	sh.CountAbortReason(ReasonValidation)
	sh.CountAbortReason(ReasonValidation)
	sh.CountAbortReason(ReasonSpurious)
	sh.CountEscalation()
	sn := st.Snapshot()
	if sn.AbortReasons[ReasonValidation] != 2 || sn.AbortReasons[ReasonSpurious] != 1 {
		t.Fatalf("reason counters wrong: %v", sn.AbortReasons)
	}
	if sn.Escalations != 1 {
		t.Fatalf("Escalations = %d, want 1", sn.Escalations)
	}
	m := sn.ReasonCounts()
	if m["validation"] != 2 || m["spurious"] != 1 || len(m) != 2 {
		t.Fatalf("ReasonCounts = %v", m)
	}
	sh.CountAbortReason(ReasonCmpFlip)
	d := st.Snapshot().Sub(sn)
	if d.AbortReasons[ReasonCmpFlip] != 1 || d.AbortReasons[ReasonValidation] != 0 {
		t.Fatalf("Sub lost reason counters: %v", d.AbortReasons)
	}
}
