package core

import (
	"sync"
	"sync/atomic"
)

// Epoch-based reclamation for retired Vars, plus the per-engine reader
// tables the privatization barrier drains (DESIGN.md §14).
//
// The lifecycle problem: Vars are shared by address, engines index orec
// tables off Var ids, and doomed ("zombie") transactions may hold stale
// *Var pointers in their read/write sets long after a privatizing commit
// unlinked the cell from every structure. Freeing — here, recycling through
// the allocation free list so ids and memory are reused — is only safe once
// no descriptor that could have captured the pointer is still running.
//
// The scheme is the classic three-bucket epoch design:
//
//   - a global epoch clock E (starting at 1 so that pin value 0 can mean
//     "idle");
//   - every transaction descriptor owns an EpochPin and pins the current
//     epoch for the duration of each top-level Atomically (enter on the
//     pooled-descriptor acquire, exit on release — the PR5 lifecycle hooks);
//   - Retire(v) parks the cell on limbo bucket E%3;
//   - the epoch may advance E -> E+1 once every registered pin is idle or
//     pinned at E; at that moment bucket (E+2)%3 — the cells retired during
//     epoch E-1, i.e. two full epochs ago — can no longer be referenced by
//     any live descriptor and moves to the free list, where NewVar* recycles
//     the cells id-intact.
//
// Safety of the two-epoch rule: a cell retired during epoch r was unlinked
// before Retire ran, so only descriptors already running at r (pinned <= r)
// can hold its address. Advancing r -> r+1 certifies every active pin is r;
// advancing r+1 -> r+2 certifies every descriptor from epoch r has since
// exited. The advance from E=r+1 frees bucket (E+2)%3 == r%3 — exactly those
// cells.
//
// Enter uses pin-then-recheck: publish the pin, then confirm the clock did
// not advance past the pinned value in between. Without the recheck a
// descriptor could load E, stall, and publish the pin after an advance
// already scanned the table — an unpinned window the reclaimer would miss.

// epochClock is the global epoch. It starts at 1 (see init) so an EpochPin
// value of 0 unambiguously means "descriptor idle".
var epochClock atomic.Uint64

func init() { epochClock.Store(1) }

// epochAdvanceEvery is the amortization period of the automatic advance:
// every N-th Retire attempts one epoch advance, so retire-heavy churn
// reclaims itself without any caller-side pumping.
const epochAdvanceEvery = 64

// epochState is the mutex-guarded reclamation state. Pins are read
// lock-free by the advance scan; everything else (pin registry, limbo
// buckets, free list, counters) mutates under mu. The mutex is never taken
// on a barrier path — only at descriptor registration, Retire, allocation
// (free-list pop), and advance.
var epochState struct {
	mu    sync.Mutex
	pins  []*EpochPin
	limbo [3][]*Var
	free  []*Var
	// freeLen mirrors len(free) so allocation can skip the lock when the
	// free list is empty (the common case of a growing workload).
	freeLen atomic.Int64
	// limboLen mirrors the total cells parked across the limbo buckets, so
	// an allocation that finds the free list empty can tell "nothing to
	// reclaim" (growing workload — stay off the lock) from "reclaimable
	// cells are waiting on an advance" (churn outrunning the amortized
	// advance — worth one allocate-triggered attempt).
	limboLen atomic.Int64
	// sinceAdvance counts Retires since the last advance attempt.
	sinceAdvance int
	// retired/reclaimed are lifetime counters for the stats probe and the
	// -reclaimgate CI gate.
	retired   uint64
	reclaimed uint64
}

// EpochPin is one descriptor's published epoch. 0 means idle; otherwise it
// holds the epoch the descriptor entered under. Padded so the advance scan
// does not false-share with neighbouring pins.
type EpochPin struct {
	pin atomic.Uint64
	_   PadWord
}

// RegisterEpochPin allocates and registers a pin with the global reclaimer.
// Called once per pooled transaction descriptor (warm-up only, never on a
// barrier path). Pins are never unregistered: pooled descriptors live as
// long as their runtime, and an idle pin (0) costs the advance scan one
// atomic load.
func RegisterEpochPin() *EpochPin {
	p := &EpochPin{}
	epochState.mu.Lock()
	epochState.pins = append(epochState.pins, p)
	epochState.mu.Unlock()
	return p
}

// Enter pins the current epoch for the duration of one top-level
// transaction (all attempts included). Pin-then-recheck: the pin must be
// visible before the epoch can be trusted, or a concurrent advance could
// scan past this descriptor between the load and the store.
func (p *EpochPin) Enter() {
	for {
		e := epochClock.Load()
		p.pin.Store(e)
		if epochClock.Load() == e {
			return
		}
	}
}

// Exit releases the pin. The descriptor must not hold any *Var it obtained
// transactionally past this point.
func (p *EpochPin) Exit() { p.pin.Store(0) }

// Retire parks v for epoch-deferred recycling. The caller asserts that v is
// unreachable through every transactional structure — the contract
// AtomicallyPrivatize establishes — and must not touch v afterwards. Double
// retire panics: it is the use-after-free of this allocator.
//
// Every epochAdvanceEvery-th Retire attempts an epoch advance, so sustained
// churn is self-reclaiming.
func Retire(v *Var) {
	if v == nil {
		panic("core: Retire(nil)")
	}
	if !v.retired.CompareAndSwap(0, 1) {
		panic("core: Var retired twice")
	}
	epochState.mu.Lock()
	e := epochClock.Load()
	epochState.limbo[e%3] = append(epochState.limbo[e%3], v)
	epochState.limboLen.Add(1)
	epochState.retired++
	epochState.sinceAdvance++
	if epochState.sinceAdvance >= epochAdvanceEvery {
		epochState.sinceAdvance = 0
		tryAdvanceLocked()
	}
	epochState.mu.Unlock()
}

// AdvanceEpoch attempts one epoch advance, reclaiming the expired limbo
// bucket into the free list on success. It fails (returns false) while any
// registered descriptor is still pinned to an older epoch. Exported as the
// deterministic pump for tests and the -reclaimgate churn workload; regular
// operation relies on the amortized advance inside Retire.
func AdvanceEpoch() bool {
	epochState.mu.Lock()
	ok := tryAdvanceLocked()
	epochState.mu.Unlock()
	return ok
}

// tryAdvanceLocked advances the epoch if every pin is idle or current, then
// moves the two-epochs-old limbo bucket to the free list. Caller holds
// epochState.mu, which serializes advances; pins are read lock-free.
func tryAdvanceLocked() bool {
	e := epochClock.Load()
	for _, p := range epochState.pins {
		if v := p.pin.Load(); v != 0 && v != e {
			return false
		}
	}
	epochClock.Store(e + 1)
	expired := &epochState.limbo[(e+2)%3]
	if n := len(*expired); n > 0 {
		epochState.free = append(epochState.free, *expired...)
		epochState.freeLen.Add(int64(n))
		epochState.limboLen.Add(int64(-n))
		epochState.reclaimed += uint64(n)
		*expired = (*expired)[:0]
	}
	return true
}

// popFreeVar pops a reclaimed cell off the free list, or returns nil when
// none is available. The freeLen fast path keeps growing workloads (which
// never retire) off the mutex entirely. An empty free list with cells
// waiting in limbo triggers one advance attempt before giving up —
// allocate-triggered reclamation: when churn outruns the amortized advance
// inside Retire (e.g. a pinned descriptor sat descheduled through several
// periods), the allocation that would otherwise mint a fresh cell is exactly
// the moment reclaiming pays for its lock.
func popFreeVar() *Var {
	if epochState.freeLen.Load() == 0 && epochState.limboLen.Load() == 0 {
		return nil
	}
	epochState.mu.Lock()
	if len(epochState.free) == 0 {
		tryAdvanceLocked()
	}
	n := len(epochState.free)
	if n == 0 {
		epochState.mu.Unlock()
		return nil
	}
	v := epochState.free[n-1]
	epochState.free[n-1] = nil
	epochState.free = epochState.free[:n-1]
	epochState.freeLen.Add(-1)
	epochState.mu.Unlock()
	return v
}

// EpochStats is the reclamation probe consumed by tests and the
// -reclaimgate gate.
type EpochStats struct {
	// Epoch is the current global epoch.
	Epoch uint64
	// Retired / Reclaimed are lifetime Retire and free-list-return counts.
	Retired, Reclaimed uint64
	// Limbo is the number of cells parked across all three buckets; Free is
	// the current free-list length.
	Limbo, Free int
}

// ReadEpochStats snapshots the reclaimer's counters.
func ReadEpochStats() EpochStats {
	epochState.mu.Lock()
	s := EpochStats{
		Epoch:     epochClock.Load(),
		Retired:   epochState.retired,
		Reclaimed: epochState.reclaimed,
		Free:      len(epochState.free),
	}
	for i := range epochState.limbo {
		s.Limbo += len(epochState.limbo[i])
	}
	epochState.mu.Unlock()
	return s
}

// VarIDWatermark returns the allocation counter's high-water mark — the
// number of Var identities ever minted. Recycled allocations reuse retired
// identities and do not move it; the unbounded-varID regression test pins
// churn against this probe.
func VarIDWatermark() uint64 { return varID.Load() }

// ---------------------------------------------------------------------------
// Reader tables: the per-engine quiescence surface of the privatization
// barrier.

// ReaderSlot publishes one descriptor's active snapshot to privatizing
// committers. The stored value is snapshot+1 (0 = idle) so that snapshot 0
// — a valid initial seqlock/clock value — is distinguishable from "not
// running". Engines pin at Start (pin-then-recheck against their clock) and
// move the pin forward at every snapshot-extension point; forward movement
// needs no recheck, because a reader revalidated at snapshot s' is, by the
// engine's own opacity argument, no longer a zombie with respect to any
// commit at or before s'.
type ReaderSlot struct {
	v atomic.Uint64
	_ PadWord
}

// Pin publishes snapshot w as this reader's active snapshot.
func (s *ReaderSlot) Pin(w uint64) { s.v.Store(w + 1) }

// Clear marks the reader idle. Idempotent; called from every commit and
// cleanup path.
func (s *ReaderSlot) Clear() { s.v.Store(0) }

// ReaderTable is the per-engine-instance registry of reader slots. Slots
// are allocated once per descriptor bind (warm-up only) and never removed;
// an idle slot costs Drain one atomic load.
type ReaderTable struct {
	mu    sync.Mutex
	slots []*ReaderSlot
}

// NewSlot allocates and registers a reader slot.
func (t *ReaderTable) NewSlot() *ReaderSlot {
	s := &ReaderSlot{}
	t.mu.Lock()
	t.slots = append(t.slots, s)
	t.mu.Unlock()
	return s
}

// Drain blocks until every registered reader is idle or pinned at snapshot
// >= w — the quiescence point after which no in-flight transaction can
// still observe state predating the commit that linearized at w. The caller
// must have cleared its own slot (every engine Commit does) or Drain
// deadlocks on it.
//
// Progress: readers always leave the waited-for state — they commit, abort
// (the engine's validation against the post-w clock dooms genuine zombies),
// or extend their snapshot past w; each of those re-pins forward or clears.
// The scan re-reads the slot list every round so late-registered slots are
// seen, and waits adaptively between rounds.
func (t *ReaderTable) Drain(w uint64) {
	var waiter Waiter
	for {
		if t.quiesced(w) {
			return
		}
		waiter.Wait()
	}
}

func (t *ReaderTable) quiesced(w uint64) bool {
	t.mu.Lock()
	slots := t.slots
	t.mu.Unlock()
	for _, s := range slots {
		if v := s.v.Load(); v != 0 && v-1 < w {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// The privatizing commit variant.

// Privatizer is the optional commit variant a TxImpl provides when its
// engine supports privatization barriers. CommitPrivatize is Commit with
// barrier semantics: after it returns normally, every concurrent
// transaction that could have observed pre-commit state has finished or
// revalidated past the commit, so the caller owns whatever the transaction
// unlinked — plain Load/StoreNT, no instrumentation. It aborts exactly like
// Commit (panic sentinel) and performs no drain in that case.
//
// PrivatizeBarrier is the drain alone, valid immediately after a successful
// Commit/Publish on the same descriptor: the sharded runtime composes it
// per participating shard so a cross-shard privatizing commit drains only
// the engine instances it touched.
type Privatizer interface {
	CommitPrivatize()
	PrivatizeBarrier()
}
