package core

import (
	"testing"
	"time"
)

// TestFaultPlanInert verifies a zero-configured plan never fires and a nil
// receiver is never consulted by backends (they branch on the pointer, so
// there is nothing to test beyond the armed-threshold semantics here).
func TestFaultPlanInert(t *testing.T) {
	p := NewFaultPlan(1)
	for i := 0; i < 10000; i++ {
		for s := FaultSite(0); s < NumFaultSites; s++ {
			if p.SpuriousHit(s) {
				t.Fatalf("inert plan fired spurious at site %d", s)
			}
		}
		if p.ValidationFail() {
			t.Fatal("inert plan forced a validation failure")
		}
	}
}

// TestFaultPlanDeterministic verifies two plans with the same seed replay the
// same decision stream, and a different seed diverges.
func TestFaultPlanDeterministic(t *testing.T) {
	draw := func(seed uint64) []bool {
		p := NewFaultPlan(seed).WithSpurious(SiteRead, 30).WithValidationFail(10)
		out := make([]bool, 0, 2000)
		for i := 0; i < 1000; i++ {
			out = append(out, p.SpuriousHit(SiteRead), p.ValidationFail())
		}
		return out
	}
	a, b, c := draw(42), draw(42), draw(43)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestFaultPlanRates verifies the fixed-point thresholds hit approximately
// their configured probabilities.
func TestFaultPlanRates(t *testing.T) {
	const n = 200000
	for _, pct := range []float64{1, 10, 50, 90} {
		p := NewFaultPlan(7).WithSpurious(SiteCommit, pct)
		hits := 0
		for i := 0; i < n; i++ {
			if p.SpuriousHit(SiteCommit) {
				hits++
			}
		}
		got := float64(hits) / n * 100
		if got < pct-2 || got > pct+2 {
			t.Errorf("pct=%v: observed %.2f%% hits", pct, got)
		}
	}
}

// TestFaultPlanSiteDecorrelation verifies identical thresholds at different
// sites draw from different sub-streams.
func TestFaultPlanSiteDecorrelation(t *testing.T) {
	mk := func() *FaultPlan {
		return NewFaultPlan(99).WithSpurious(SiteStart, 50).WithSpurious(SiteCommit, 50)
	}
	a, b := mk(), mk()
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.SpuriousHit(SiteStart) == b.SpuriousHit(SiteCommit) {
			same++
		}
	}
	if same == n {
		t.Fatal("sites share a decision stream")
	}
}

// TestFaultPlanStep verifies Step unwinds with ReasonSpurious when armed at
// 100% and is a no-op at 0%.
func TestFaultPlanStep(t *testing.T) {
	NewFaultPlan(3).Step(SiteStart) // inert: must not panic

	p := NewFaultPlan(3).WithSpurious(SiteStart, 100)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("armed Step did not abort")
			}
			if !IsAbort(r) {
				panic(r)
			}
			if reason, ok := ReasonOf(r); !ok || reason != ReasonSpurious {
				t.Fatalf("Step aborted with reason %v", reason)
			}
		}()
		p.Step(SiteStart)
	}()
}

// TestFaultPlanCommitDelay verifies the delay stream stalls the caller when
// armed at 100%.
func TestFaultPlanCommitDelay(t *testing.T) {
	p := NewFaultPlan(5).WithCommitDelay(100, 2*time.Millisecond)
	start := time.Now()
	p.CommitDelay()
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("armed CommitDelay returned after %v", d)
	}
}
