package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteSetMergeRules(t *testing.T) {
	v := NewVar(0)
	ws := NewWriteSet()

	// inc on empty: fresh EntryInc (Algorithm 6 line 48).
	ws.PutInc(v, 3)
	if e := ws.Get(v); e == nil || e.Kind != EntryInc || e.Val != 3 {
		t.Fatalf("after inc: %+v", ws.Get(v))
	}

	// inc after inc: accumulate, keep kind (line 46).
	ws.PutInc(v, 4)
	if e := ws.Get(v); e.Kind != EntryInc || e.Val != 7 {
		t.Fatalf("after inc+inc: %+v", e)
	}

	// write after inc: overwrite, flip kind (line 51).
	ws.PutWrite(v, 100)
	if e := ws.Get(v); e.Kind != EntryWrite || e.Val != 100 {
		t.Fatalf("after write: %+v", e)
	}

	// inc after write: accumulate over the written value, keep EntryWrite
	// (line 46: "without changing the entry's flag").
	ws.PutInc(v, -1)
	if e := ws.Get(v); e.Kind != EntryWrite || e.Val != 99 {
		t.Fatalf("after write+inc: %+v", e)
	}

	// write after write: plain overwrite.
	ws.PutWrite(v, 1)
	if e := ws.Get(v); e.Kind != EntryWrite || e.Val != 1 {
		t.Fatalf("after write+write: %+v", e)
	}

	if ws.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (single variable)", ws.Len())
	}
}

func TestWriteSetPromote(t *testing.T) {
	v := NewVar(0)
	ws := NewWriteSet()
	ws.PutInc(v, 5)
	ws.Promote(v, 12) // memory held 7, delta 5
	e := ws.Get(v)
	if e.Kind != EntryWrite || e.Val != 12 {
		t.Fatalf("after promote: %+v", e)
	}
}

func TestWriteSetPromoteMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWriteSet().Promote(NewVar(0), 1)
}

func TestWriteSetResetReuse(t *testing.T) {
	ws := NewWriteSet()
	vars := NewVars(10, 0)
	for i, v := range vars {
		ws.PutWrite(v, int64(i))
	}
	if ws.Len() != 10 {
		t.Fatalf("Len = %d", ws.Len())
	}
	ws.Reset()
	if ws.Len() != 0 {
		t.Fatalf("Len after reset = %d", ws.Len())
	}
	if ws.Get(vars[3]) != nil {
		t.Fatal("stale index entry after reset")
	}
	ws.PutInc(vars[3], 2)
	if e := ws.Get(vars[3]); e == nil || e.Val != 2 || e.Kind != EntryInc {
		t.Fatalf("after reuse: %+v", e)
	}
}

func TestWriteSetOrderPreserved(t *testing.T) {
	ws := NewWriteSet()
	vars := NewVars(5, 0)
	order := []int{2, 0, 4, 1, 3}
	for _, i := range order {
		ws.PutWrite(vars[i], int64(i))
	}
	for j, e := range ws.Entries() {
		if e.Var != vars[order[j]] {
			t.Fatalf("entry %d is var %d, want %d", j, e.Val, order[j])
		}
	}
}

// TestWriteSetModel checks the write-set against a naive model under random
// op sequences: the final entry for each variable must equal the effect of
// replaying writes/incs sequentially, and the kind must be EntryInc iff no
// write ever touched the variable.
func TestWriteSetModel(t *testing.T) {
	type opcode struct {
		VarIdx uint8
		Delta  int64
		Write  bool
	}
	f := func(ops []opcode) bool {
		vars := NewVars(4, 0)
		ws := NewWriteSet()
		type model struct {
			acc     int64
			written bool
			touched bool
		}
		m := make([]model, 4)
		for _, o := range ops {
			i := int(o.VarIdx) % 4
			if o.Write {
				ws.PutWrite(vars[i], o.Delta)
				m[i] = model{acc: o.Delta, written: true, touched: true}
			} else {
				ws.PutInc(vars[i], o.Delta)
				m[i].acc += o.Delta
				m[i].touched = true
			}
		}
		for i, mm := range m {
			e := ws.Get(vars[i])
			if !mm.touched {
				if e != nil {
					return false
				}
				continue
			}
			if e == nil || e.Val != mm.acc {
				return false
			}
			wantKind := EntryInc
			if mm.written {
				wantKind = EntryWrite
			}
			if e.Kind != wantKind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// wsRefModel is a trivially-correct write-set: a map from Var to entry plus
// an insertion-order log, replaying the merge rules of Algorithm 6 directly.
type wsRefModel struct {
	entries map[*Var]*WriteEntry
	order   []*Var
}

func newWSRefModel() *wsRefModel {
	return &wsRefModel{entries: make(map[*Var]*WriteEntry)}
}

func (m *wsRefModel) putWrite(v *Var, val int64) {
	if e, ok := m.entries[v]; ok {
		e.Val, e.Kind = val, EntryWrite
		return
	}
	m.entries[v] = &WriteEntry{Var: v, Val: val, Kind: EntryWrite}
	m.order = append(m.order, v)
}

func (m *wsRefModel) putInc(v *Var, delta int64) {
	if e, ok := m.entries[v]; ok {
		e.Val += delta
		return
	}
	m.entries[v] = &WriteEntry{Var: v, Val: delta, Kind: EntryInc}
	m.order = append(m.order, v)
}

func (m *wsRefModel) promote(v *Var, total int64) bool {
	e, ok := m.entries[v]
	if !ok {
		return false
	}
	e.Val, e.Kind = total, EntryWrite
	return true
}

func (m *wsRefModel) reset() {
	clear(m.entries)
	m.order = m.order[:0]
}

// checkAgainst asserts the write-set matches the model exactly: same entry
// order, kinds, and values, and identical Get outcomes for every variable.
func (m *wsRefModel) checkAgainst(t *testing.T, ws *WriteSet, vars []*Var) {
	t.Helper()
	if ws.Len() != len(m.order) {
		t.Fatalf("Len = %d, model has %d", ws.Len(), len(m.order))
	}
	for i, e := range ws.Entries() {
		want := m.entries[m.order[i]]
		if e.Var != want.Var || e.Val != want.Val || e.Kind != want.Kind {
			t.Fatalf("entry %d = {%v %d %d}, model {%v %d %d}",
				i, e.Var.ID(), e.Val, e.Kind, want.Var.ID(), want.Val, want.Kind)
		}
	}
	for _, v := range vars {
		got := ws.Get(v)
		want, ok := m.entries[v]
		if !ok {
			if got != nil {
				t.Fatalf("Get(%d) = %+v, model says absent", v.ID(), got)
			}
			continue
		}
		if got == nil || got.Val != want.Val || got.Kind != want.Kind {
			t.Fatalf("Get(%d) = %+v, model %+v", v.ID(), got, want)
		}
	}
}

// applyWSScript replays one opcode on both the write-set and the model.
// Opcodes: 0 write, 1 inc, 2 promote (only when present), 3 reset (rare).
func applyWSScript(t *testing.T, ws *WriteSet, m *wsRefModel, vars []*Var, op, varIdx uint8, arg int64) {
	t.Helper()
	v := vars[int(varIdx)%len(vars)]
	switch op % 4 {
	case 0:
		ws.PutWrite(v, arg)
		m.putWrite(v, arg)
	case 1:
		ws.PutInc(v, arg)
		m.putInc(v, arg)
	case 2:
		if m.promote(v, arg) {
			ws.Promote(v, arg)
		}
	case 3:
		// Reset rarely, so sequences still grow past the small-set bound
		// and through table resizes.
		if varIdx%16 == 0 {
			ws.Reset()
			m.reset()
		}
	}
}

// TestWriteSetReferenceModel drives randomized write/inc/promote/reset
// sequences against the map-based reference model. 48 variables over long
// sequences push the set through the small-set scan, the open-addressed
// table build, and at least one probe-table resize, locking the public
// WriteSet behavior (PutWrite/PutInc/Promote/Get/Entries ordering) to the
// pre-overhaul semantics.
func TestWriteSetReferenceModel(t *testing.T) {
	type opcode struct {
		Op, VarIdx uint8
		Arg        int64
	}
	vars := NewVars(48, 0)
	f := func(ops []opcode) bool {
		ws := NewWriteSet()
		m := newWSRefModel()
		for _, o := range ops {
			applyWSScript(t, ws, m, vars, o.Op, o.VarIdx, o.Arg)
		}
		m.checkAgainst(t, ws, vars)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}

	// One deterministic long sequence reusing a single set across resets, the
	// pooled-descriptor lifecycle (table persists cleared between attempts).
	rng := rand.New(rand.NewSource(7))
	ws := NewWriteSet()
	m := newWSRefModel()
	for round := 0; round < 20; round++ {
		for i := 0; i < 200; i++ {
			applyWSScript(t, ws, m, vars, uint8(rng.Intn(3)), uint8(rng.Intn(256)), rng.Int63n(100)-50)
		}
		m.checkAgainst(t, ws, vars)
		ws.Reset()
		m.reset()
		m.checkAgainst(t, ws, vars)
	}
}

// FuzzWriteSetModel is the fuzz-driven variant of the reference-model check:
// the input bytes are decoded as (op, var, arg) triples and replayed on both
// representations.
func FuzzWriteSetModel(f *testing.F) {
	f.Add([]byte{0, 1, 5, 1, 1, 3, 2, 1, 9})
	f.Add(bytes.Repeat([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 24))
	f.Fuzz(func(t *testing.T, script []byte) {
		vars := NewVars(32, 0)
		ws := NewWriteSet()
		m := newWSRefModel()
		for i := 0; i+2 < len(script); i += 3 {
			applyWSScript(t, ws, m, vars, script[i], script[i+1], int64(int8(script[i+2])))
		}
		m.checkAgainst(t, ws, vars)
	})
}

func TestSemSetOutcomeEncoding(t *testing.T) {
	v := NewVar(10)
	s := NewSemSet()
	s.AppendOutcome(v, OpGT, 5, true)   // observed true: store as-is
	s.AppendOutcome(v, OpGT, 50, false) // observed false: store inverse
	e := s.Entries()
	if !e[0].Semantic() || !e[1].Semantic() {
		t.Fatal("outcome facts not marked semantic")
	}
	if op := e[0].Op &^ semFlag; op != OpGT {
		t.Fatalf("true outcome stored as %s", op)
	}
	if op := e[1].Op &^ semFlag; op != OpLTE {
		t.Fatalf("false outcome stored as %s, want <=", op)
	}
	if !s.HoldsNow() {
		t.Fatal("facts should hold against unchanged memory")
	}
}

func TestSemSetHoldsNowDetectsSemanticChange(t *testing.T) {
	v := NewVar(10)
	s := NewSemSet()
	s.AppendOutcome(v, OpGT, 0, true)

	v.StoreNT(3) // still > 0: fact holds although the value changed
	if !s.HoldsNow() {
		t.Fatal("value change that preserves the fact must validate")
	}
	v.StoreNT(-1) // fact broken
	if s.HoldsNow() {
		t.Fatal("sign flip must invalidate the GT fact")
	}
}

func TestSemSetPlainReadIsEQ(t *testing.T) {
	v := NewVar(7)
	s := NewSemSet()
	s.Append(v, OpEQ, 7)
	if !s.HoldsNow() {
		t.Fatal("EQ fact should hold")
	}
	v.StoreNT(8)
	if s.HoldsNow() {
		t.Fatal("any value change must invalidate an EQ fact (value-based validation)")
	}
}

func TestSemSetReset(t *testing.T) {
	s := NewSemSet()
	s.Append(NewVar(1), OpEQ, 1)
	if s.Empty() || s.Len() != 1 {
		t.Fatal("set should be non-empty")
	}
	s.Reset()
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("set should be empty after reset")
	}
	if !s.HoldsNow() {
		t.Fatal("empty set trivially holds")
	}
}

// TestSemSetHasEQIndexed locks the duplicate index to a naive scan: random
// mixes of plain EQ facts, outcome facts, and two-address facts, probed with
// both present and absent pairs, across Reset reuse of one set.
func TestSemSetHasEQIndexed(t *testing.T) {
	vars := NewVars(16, 0)
	naive := func(s *SemSet, v *Var, val int64) bool {
		for _, e := range s.Entries() {
			if e.Var == v && e.Op == OpEQ && e.OperandVar == nil && e.Operand == val {
				return true
			}
		}
		return false
	}
	rng := rand.New(rand.NewSource(42))
	s := NewSemSet()
	for round := 0; round < 10; round++ {
		for i := 0; i < 300; i++ {
			v := vars[rng.Intn(len(vars))]
			val := rng.Int63n(8)
			switch rng.Intn(4) {
			case 0:
				s.Append(v, OpEQ, val)
			case 1:
				s.AppendOutcome(v, OpGT, val, rng.Intn(2) == 0)
			case 2:
				s.AppendOutcomeVar(v, OpNEQ, vars[rng.Intn(len(vars))], true)
			case 3:
				// probe only
			}
			pv, pval := vars[rng.Intn(len(vars))], rng.Int63n(8)
			if got, want := s.HasEQ(pv, pval), naive(s, pv, pval); got != want {
				t.Fatalf("round %d op %d: HasEQ(%d,%d) = %v, naive %v",
					round, i, pv.ID(), pval, got, want)
			}
		}
		s.Reset()
		if s.HasEQ(vars[0], 0) {
			t.Fatal("HasEQ must be false after Reset")
		}
	}
}

// TestWriteSetMayContain: misses must be definitive, hits conservative.
func TestWriteSetMayContain(t *testing.T) {
	ws := NewWriteSet()
	vars := NewVars(32, 0)
	for i, v := range vars[:16] {
		ws.PutWrite(v, int64(i))
		if !ws.MayContain(v) {
			t.Fatalf("MayContain(%d) false for buffered variable", v.ID())
		}
	}
	for _, v := range vars[16:] {
		if ws.Get(v) != nil {
			t.Fatalf("Get(%d) hit for absent variable", v.ID())
		}
	}
	ws.Reset()
	for _, v := range vars {
		if ws.MayContain(v) {
			t.Fatalf("MayContain(%d) true on empty set", v.ID())
		}
	}
}

// TestSemSetValidationProperty: for random (value, op, operand), recording
// the outcome and then re-evaluating against an unchanged variable always
// validates, and validation of "v op operand" recorded at value a fails
// after storing b iff the boolean outcome differs.
func TestSemSetValidationProperty(t *testing.T) {
	f := func(opRaw uint8, a, b, operand int64) bool {
		op := Op(opRaw % uint8(numOps))
		v := NewVar(a)
		s := NewSemSet()
		s.AppendOutcome(v, op, operand, op.Eval(a, operand))
		if !s.HoldsNow() {
			return false
		}
		v.StoreNT(b)
		stillSame := op.Eval(a, operand) == op.Eval(b, operand)
		return s.HoldsNow() == stillSame
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
