package core

import (
	"testing"
	"testing/quick"
)

func TestWriteSetMergeRules(t *testing.T) {
	v := NewVar(0)
	ws := NewWriteSet()

	// inc on empty: fresh EntryInc (Algorithm 6 line 48).
	ws.PutInc(v, 3)
	if e := ws.Get(v); e == nil || e.Kind != EntryInc || e.Val != 3 {
		t.Fatalf("after inc: %+v", ws.Get(v))
	}

	// inc after inc: accumulate, keep kind (line 46).
	ws.PutInc(v, 4)
	if e := ws.Get(v); e.Kind != EntryInc || e.Val != 7 {
		t.Fatalf("after inc+inc: %+v", e)
	}

	// write after inc: overwrite, flip kind (line 51).
	ws.PutWrite(v, 100)
	if e := ws.Get(v); e.Kind != EntryWrite || e.Val != 100 {
		t.Fatalf("after write: %+v", e)
	}

	// inc after write: accumulate over the written value, keep EntryWrite
	// (line 46: "without changing the entry's flag").
	ws.PutInc(v, -1)
	if e := ws.Get(v); e.Kind != EntryWrite || e.Val != 99 {
		t.Fatalf("after write+inc: %+v", e)
	}

	// write after write: plain overwrite.
	ws.PutWrite(v, 1)
	if e := ws.Get(v); e.Kind != EntryWrite || e.Val != 1 {
		t.Fatalf("after write+write: %+v", e)
	}

	if ws.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (single variable)", ws.Len())
	}
}

func TestWriteSetPromote(t *testing.T) {
	v := NewVar(0)
	ws := NewWriteSet()
	ws.PutInc(v, 5)
	ws.Promote(v, 12) // memory held 7, delta 5
	e := ws.Get(v)
	if e.Kind != EntryWrite || e.Val != 12 {
		t.Fatalf("after promote: %+v", e)
	}
}

func TestWriteSetPromoteMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWriteSet().Promote(NewVar(0), 1)
}

func TestWriteSetResetReuse(t *testing.T) {
	ws := NewWriteSet()
	vars := NewVars(10, 0)
	for i, v := range vars {
		ws.PutWrite(v, int64(i))
	}
	if ws.Len() != 10 {
		t.Fatalf("Len = %d", ws.Len())
	}
	ws.Reset()
	if ws.Len() != 0 {
		t.Fatalf("Len after reset = %d", ws.Len())
	}
	if ws.Get(vars[3]) != nil {
		t.Fatal("stale index entry after reset")
	}
	ws.PutInc(vars[3], 2)
	if e := ws.Get(vars[3]); e == nil || e.Val != 2 || e.Kind != EntryInc {
		t.Fatalf("after reuse: %+v", e)
	}
}

func TestWriteSetOrderPreserved(t *testing.T) {
	ws := NewWriteSet()
	vars := NewVars(5, 0)
	order := []int{2, 0, 4, 1, 3}
	for _, i := range order {
		ws.PutWrite(vars[i], int64(i))
	}
	for j, e := range ws.Entries() {
		if e.Var != vars[order[j]] {
			t.Fatalf("entry %d is var %d, want %d", j, e.Val, order[j])
		}
	}
}

// TestWriteSetModel checks the write-set against a naive model under random
// op sequences: the final entry for each variable must equal the effect of
// replaying writes/incs sequentially, and the kind must be EntryInc iff no
// write ever touched the variable.
func TestWriteSetModel(t *testing.T) {
	type opcode struct {
		VarIdx uint8
		Delta  int64
		Write  bool
	}
	f := func(ops []opcode) bool {
		vars := NewVars(4, 0)
		ws := NewWriteSet()
		type model struct {
			acc     int64
			written bool
			touched bool
		}
		m := make([]model, 4)
		for _, o := range ops {
			i := int(o.VarIdx) % 4
			if o.Write {
				ws.PutWrite(vars[i], o.Delta)
				m[i] = model{acc: o.Delta, written: true, touched: true}
			} else {
				ws.PutInc(vars[i], o.Delta)
				m[i].acc += o.Delta
				m[i].touched = true
			}
		}
		for i, mm := range m {
			e := ws.Get(vars[i])
			if !mm.touched {
				if e != nil {
					return false
				}
				continue
			}
			if e == nil || e.Val != mm.acc {
				return false
			}
			wantKind := EntryInc
			if mm.written {
				wantKind = EntryWrite
			}
			if e.Kind != wantKind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSemSetOutcomeEncoding(t *testing.T) {
	v := NewVar(10)
	s := NewSemSet()
	s.AppendOutcome(v, OpGT, 5, true)   // observed true: store as-is
	s.AppendOutcome(v, OpGT, 50, false) // observed false: store inverse
	e := s.Entries()
	if e[0].Op != OpGT {
		t.Fatalf("true outcome stored as %s", e[0].Op)
	}
	if e[1].Op != OpLTE {
		t.Fatalf("false outcome stored as %s, want <=", e[1].Op)
	}
	if !s.HoldsNow() {
		t.Fatal("facts should hold against unchanged memory")
	}
}

func TestSemSetHoldsNowDetectsSemanticChange(t *testing.T) {
	v := NewVar(10)
	s := NewSemSet()
	s.AppendOutcome(v, OpGT, 0, true)

	v.StoreNT(3) // still > 0: fact holds although the value changed
	if !s.HoldsNow() {
		t.Fatal("value change that preserves the fact must validate")
	}
	v.StoreNT(-1) // fact broken
	if s.HoldsNow() {
		t.Fatal("sign flip must invalidate the GT fact")
	}
}

func TestSemSetPlainReadIsEQ(t *testing.T) {
	v := NewVar(7)
	s := NewSemSet()
	s.Append(v, OpEQ, 7)
	if !s.HoldsNow() {
		t.Fatal("EQ fact should hold")
	}
	v.StoreNT(8)
	if s.HoldsNow() {
		t.Fatal("any value change must invalidate an EQ fact (value-based validation)")
	}
}

func TestSemSetReset(t *testing.T) {
	s := NewSemSet()
	s.Append(NewVar(1), OpEQ, 1)
	if s.Empty() || s.Len() != 1 {
		t.Fatal("set should be non-empty")
	}
	s.Reset()
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("set should be empty after reset")
	}
	if !s.HoldsNow() {
		t.Fatal("empty set trivially holds")
	}
}

// TestSemSetValidationProperty: for random (value, op, operand), recording
// the outcome and then re-evaluating against an unchanged variable always
// validates, and validation of "v op operand" recorded at value a fails
// after storing b iff the boolean outcome differs.
func TestSemSetValidationProperty(t *testing.T) {
	f := func(opRaw uint8, a, b, operand int64) bool {
		op := Op(opRaw % uint8(numOps))
		v := NewVar(a)
		s := NewSemSet()
		s.AppendOutcome(v, op, operand, op.Eval(a, operand))
		if !s.HoldsNow() {
			return false
		}
		v.StoreNT(b)
		stillSame := op.Eval(a, operand) == op.Eval(b, operand)
		return s.HoldsNow() == stillSame
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
