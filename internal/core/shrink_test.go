package core

import "testing"

// The shrink tests are white-box on purpose: "memory actually released" means
// the backing arrays were reallocated smaller, which only cap() and len() of
// the internal slices can witness.

func TestShrinkerPolicy(t *testing.T) {
	var s Shrinker
	// Capacities at or below the exemption floor never arm the policy.
	for i := 0; i < 10*ShrinkAfter; i++ {
		if _, ok := s.Note(1, shrinkMinCap); ok {
			t.Fatal("shrank a container at the exemption floor")
		}
	}
	// Well-used capacity (usage ≥ cap/shrinkSlack) keeps the window disarmed.
	for i := 0; i < 10*ShrinkAfter; i++ {
		if _, ok := s.Note(256, 1024); ok {
			t.Fatal("shrank a rightsized container")
		}
	}
	// ShrinkAfter consecutive small attempts trigger, reporting the peak.
	for i := 0; i < ShrinkAfter-2; i++ {
		if _, ok := s.Note(10, 1024); ok {
			t.Fatalf("shrank after %d attempts, want %d", i+1, ShrinkAfter)
		}
	}
	if _, ok := s.Note(30, 1024); ok { // the window's high-water mark
		t.Fatalf("shrank after %d attempts, want %d", ShrinkAfter-1, ShrinkAfter)
	}
	if peak, ok := s.Note(10, 1024); !ok || peak != 30 {
		t.Fatalf("Note = (%d, %v), want the window peak (30, true)", peak, ok)
	}
	// A decision resets the window: the very next small attempt starts at 1.
	if _, ok := s.Note(10, 1024); ok {
		t.Fatal("window not reset after a shrink decision")
	}
}

func TestShrinkerWindowResetsOnBigAttempt(t *testing.T) {
	var s Shrinker
	for i := 0; i < ShrinkAfter-1; i++ {
		if _, ok := s.Note(10, 1024); ok {
			t.Fatal("premature shrink")
		}
	}
	s.Note(512, 1024) // big attempt: usage*slack ≥ cap — disarms the window
	for i := 0; i < ShrinkAfter-1; i++ {
		if _, ok := s.Note(10, 1024); ok {
			t.Fatalf("shrank %d attempts after a big one, want %d", i+1, ShrinkAfter)
		}
	}
	if _, ok := s.Note(10, 1024); !ok {
		t.Fatal("no shrink after a full fresh window of small attempts")
	}
}

// fillWS puts n distinct entries into ws.
func fillWS(ws *WriteSet, vars []*Var, n int) {
	for i := 0; i < n; i++ {
		ws.PutWrite(vars[i], int64(i))
	}
}

func TestWriteSetShrinkReleasesMemory(t *testing.T) {
	vars := NewVars(600, 0)
	ws := NewWriteSet()
	fillWS(ws, vars, 600) // one pathological transaction
	bigCap, bigTable := cap(ws.entries), len(ws.table)
	if bigCap < 600 || bigTable == 0 {
		t.Fatalf("setup: cap=%d table=%d, want a grown set", bigCap, bigTable)
	}
	ws.Reset() // big usage: window stays disarmed
	for i := 0; i < ShrinkAfter; i++ {
		if got := cap(ws.entries); got != bigCap {
			t.Fatalf("attempt %d: cap=%d, clamped before window filled (want %d)", i, got, bigCap)
		}
		fillWS(ws, vars, 4)
		ws.Reset()
	}
	if got, want := cap(ws.entries), ShrinkCap(4, writeSetMinCap); got != want {
		t.Errorf("entries cap after clamp = %d, want %d (was %d)", got, want, bigCap)
	}
	if ws.table != nil {
		t.Errorf("probe table retained (%d slots) for a peak below smallMax", len(ws.table))
	}
	// The clamped set still works, including re-growing past smallMax.
	fillWS(ws, vars, 100)
	for i := 0; i < 100; i++ {
		if e := ws.Get(vars[i]); e == nil || e.Val != int64(i) {
			t.Fatalf("post-clamp lookup of entry %d failed", i)
		}
	}
}

func TestWriteSetShrinkKeepsTableForLargePeak(t *testing.T) {
	vars := NewVars(600, 0)
	ws := NewWriteSet()
	fillWS(ws, vars, 600)
	bigTable := len(ws.table)
	ws.Reset()
	for i := 0; i < ShrinkAfter; i++ {
		fillWS(ws, vars, 16) // peak above smallMax: the table must survive
		ws.Reset()
	}
	if ws.table == nil {
		t.Fatal("probe table dropped for a peak above smallMax")
	}
	if len(ws.table) >= bigTable {
		t.Errorf("probe table not shrunk: %d slots, had %d", len(ws.table), bigTable)
	}
	if got, want := cap(ws.entries), ShrinkCap(16, writeSetMinCap); got != want {
		t.Errorf("entries cap after clamp = %d, want %d", got, want)
	}
	fillWS(ws, vars, 16)
	for i := 0; i < 16; i++ {
		if e := ws.Get(vars[i]); e == nil || e.Val != int64(i) {
			t.Fatalf("post-clamp lookup of entry %d failed", i)
		}
	}
}

func TestSemSetShrinkReleasesMemoryAndEqTable(t *testing.T) {
	vars := NewVars(600, 0)
	s := NewSemSet()
	for i, v := range vars {
		s.Append(v, OpEQ, int64(i))
	}
	if !s.HasEQ(vars[0], 0) {
		t.Fatal("setup: HasEQ missed a recorded fact")
	}
	bigCap, bigEq := cap(s.entries), len(s.eqTable)
	if bigCap < 600 || bigEq == 0 {
		t.Fatalf("setup: cap=%d eqTable=%d, want a grown set with an index", bigCap, bigEq)
	}
	s.Reset()
	for i := 0; i < ShrinkAfter; i++ {
		for j := 0; j < 4; j++ {
			s.Append(vars[j], OpEQ, int64(j))
		}
		s.Reset()
	}
	if got, want := cap(s.entries), ShrinkCap(4, semSetMinCap); got != want {
		t.Errorf("entries cap after clamp = %d, want %d (was %d)", got, want, bigCap)
	}
	if s.eqTable != nil {
		t.Errorf("eq index retained (%d slots) across clamp", len(s.eqTable))
	}
	// The index rebuilds lazily and correctly after the clamp.
	s.Append(vars[0], OpEQ, 7)
	if !s.HasEQ(vars[0], 7) || s.HasEQ(vars[1], 7) {
		t.Error("HasEQ wrong after clamp (index rebuild broken)")
	}
}

func TestExprSetShrinkReleasesMemory(t *testing.T) {
	vars := NewVars(4, 0)
	s := NewExprSet()
	for i := 0; i < 300; i++ {
		s.AppendSum(vars, OpEQ, 0, true)
	}
	bigCap := cap(s.entries)
	if bigCap < 300 {
		t.Fatalf("setup: cap=%d, want ≥ 300", bigCap)
	}
	s.Reset()
	for i := 0; i < ShrinkAfter; i++ {
		s.AppendSum(vars, OpEQ, 0, true)
		s.Reset()
	}
	if got, want := cap(s.entries), ShrinkCap(1, exprSetMinCap); got != want {
		t.Errorf("entries cap after clamp = %d, want %d (was %d)", got, want, bigCap)
	}
	s.AppendSum(vars, OpEQ, 0, true)
	if !s.HoldsNow() {
		t.Error("recycled entry mis-evaluated after clamp")
	}
}
