package core

import (
	"testing"
	"time"
)

// TestWaiterEscalates checks the tier schedule: the first rounds must not
// sleep (they are the fast path under transient contention) and the deep
// rounds must park the thread, which is what lets a preempted lock holder
// run on an oversubscribed machine.
func TestWaiterEscalates(t *testing.T) {
	var w Waiter
	start := time.Now()
	for i := 0; i < waitSpinRounds+waitYieldRounds; i++ {
		if got := w.Wait(); got != i+1 {
			t.Fatalf("round %d: Wait() = %d", i, got)
		}
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("spin+yield tiers took %v; must not sleep", d)
	}
	start = time.Now()
	w.Wait() // first sleep round
	if d := time.Since(start); d < waitSleepBase/2 {
		t.Fatalf("sleep tier waited only %v", d)
	}
	if w.Rounds() != waitSpinRounds+waitYieldRounds+1 {
		t.Fatalf("Rounds() = %d", w.Rounds())
	}
	w.Reset()
	if w.Rounds() != 0 {
		t.Fatalf("Rounds() after Reset = %d", w.Rounds())
	}
}

// TestWaiterSleepCap checks deep rounds stay bounded per round, so a
// starvation bound in rounds translates to a bounded wall-clock timeout.
func TestWaiterSleepCap(t *testing.T) {
	var w Waiter
	for i := 0; i < waitSpinRounds+waitYieldRounds+12; i++ {
		w.Wait()
	}
	start := time.Now()
	w.Wait()
	if d := time.Since(start); d > 10*waitSleepMax {
		t.Fatalf("deep round slept %v, cap is %v", d, waitSleepMax)
	}
}

// TestStatsNewCounters checks the commit-path counters fold through
// Merge/Snapshot/Sub like the Table 3 categories.
func TestStatsNewCounters(t *testing.T) {
	var s Stats
	sh := s.Register()
	ts := TxStats{Validations: 3, ValEntries: 40, ClockAdopts: 2, SpinWaits: 7}
	sh.Merge(&ts, true)
	sn := s.Snapshot()
	if sn.Validations != 3 || sn.ValEntries != 40 || sn.ClockAdopts != 2 || sn.SpinWaits != 7 {
		t.Fatalf("snapshot = %+v", sn)
	}
	sh.Merge(&ts, false)
	d := s.Snapshot().Sub(sn)
	if d.Validations != 3 || d.ValEntries != 40 || d.ClockAdopts != 2 || d.SpinWaits != 7 || d.Aborts != 1 {
		t.Fatalf("diff = %+v", d)
	}
	ts.Reset()
	if ts.Validations != 0 || ts.SpinWaits != 0 {
		t.Fatalf("Reset left %+v", ts)
	}
}
