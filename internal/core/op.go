package core

import "fmt"

// Op is a semantic comparison operator, the first argument of the abstract
// cmp(operator, address, val) method of Section 4 of the paper. OpEQ doubles
// as the operator under which a plain transactional read is recorded in the
// read-set of S-NOrec ("we consider read as a semantic TX_EQ operation").
type Op uint8

// The six conditional operators of Table 1.
const (
	OpEQ Op = iota // ==
	OpNEQ
	OpGT
	OpGTE
	OpLT
	OpLTE
	numOps
)

// Inverse returns the negation of the operator: the operator op' such that
// (a op' b) == !(a op b) for all a, b. S-NOrec and S-TL2 store the inverse
// operator in the read/compare set when the observed outcome of a condition
// is false, so that validation always checks for a true expression.
func (op Op) Inverse() Op {
	switch op {
	case OpEQ:
		return OpNEQ
	case OpNEQ:
		return OpEQ
	case OpGT:
		return OpLTE
	case OpGTE:
		return OpLT
	case OpLT:
		return OpGTE
	case OpLTE:
		return OpGT
	default:
		panic(fmt.Sprintf("core: invalid operator %d", op))
	}
}

// Eval applies the operator to the pair (a, b) and reports the boolean
// outcome of "a op b".
func (op Op) Eval(a, b int64) bool {
	switch op {
	case OpEQ:
		return a == b
	case OpNEQ:
		return a != b
	case OpGT:
		return a > b
	case OpGTE:
		return a >= b
	case OpLT:
		return a < b
	case OpLTE:
		return a <= b
	default:
		panic(fmt.Sprintf("core: invalid operator %d", op))
	}
}

// Valid reports whether op is one of the six defined operators.
func (op Op) Valid() bool { return op < numOps }

// String returns the C-style spelling of the operator.
func (op Op) String() string {
	switch op {
	case OpEQ:
		return "=="
	case OpNEQ:
		return "!="
	case OpGT:
		return ">"
	case OpGTE:
		return ">="
	case OpLT:
		return "<"
	case OpLTE:
		return "<="
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}
