package core

// CacheLine is the assumed coherence granularity. 64 bytes is correct for
// every mainstream x86-64 and arm64 part; on CPUs with 128-byte lines
// (Apple M-series E-cores, POWER) adjacent-line prefetching makes 64-byte
// spacing still remove the worst of the ping-ponging.
const CacheLine = 64

// Pad is cache-line filler for laying out hot shared words. Interpose a Pad
// between two atomics so that writers of one never invalidate readers of the
// other (false sharing): under contention a single shared line can cost
// hundreds of cycles per access in coherence traffic.
type Pad [CacheLine]byte

// PadWord pads one 8-byte word out to a full cache line when embedded in an
// array or struct of hot words.
type PadWord [CacheLine - 8]byte
