package core

import (
	"runtime"
	"time"
)

// Waiter is the adaptive waiter shared by every bounded wait loop on the
// commit path (orec write locks, the NOrec/HTM sequence lock, RingSTM
// write-back publication). It escalates through three tiers:
//
//  1. a short exponential busy-spin — when the owner is running on another
//     core, commit-time holds last tens of nanoseconds and spinning wins;
//  2. processor yields (runtime.Gosched) — hands the P to another goroutine
//     so a same-P owner can make progress;
//  3. brief exponential sleeps — the only tier that parks the OS thread.
//     When cores are oversubscribed (GOMAXPROCS > physical cores, or more
//     workers than cores) the lock holder may be preempted at OS level; a
//     Gosched loop then burns the waiter's entire OS quantum without ever
//     letting the holder run. Sleeping releases the CPU to the holder.
//
// The zero value is ready to use; Reset it between distinct waits. Waiter is
// not safe for concurrent use — each transaction descriptor embeds its own.
type Waiter struct {
	round int
}

// Escalation schedule. The spin tier is deliberately tiny: on a machine
// where the owner cannot run concurrently (single core) spinning is pure
// waste, and on a multicore the first couple of rounds already cover the
// fast-release case.
const (
	waitSpinRounds  = 3                      // busy-spin rounds (tier 1)
	waitYieldRounds = 32                     // Gosched rounds after that (tier 2)
	waitSleepBase   = 20 * time.Microsecond  // first sleep of tier 3
	waitSleepMax    = 640 * time.Microsecond // per-round sleep cap
)

// cpuRelax burns roughly n no-op iterations. The gc compiler does not
// eliminate empty loops, so this needs no sink; it stays out of the inliner
// so the loop cannot be folded into a caller and removed.
//
//go:noinline
func cpuRelax(n uint32) {
	for i := uint32(0); i < n; i++ {
	}
}

// Rounds reports how many wait rounds have elapsed since the last Reset;
// callers compare it against their starvation bound.
func (w *Waiter) Rounds() int { return w.round }

// Reset re-arms the waiter for a new wait.
func (w *Waiter) Reset() { w.round = 0 }

// Wait performs one escalating wait round and returns the total rounds so
// far (so `for { ...; if w.Wait() > bound { abort } }` stays a one-liner).
func (w *Waiter) Wait() int {
	r := w.round
	w.round++
	switch {
	case r < waitSpinRounds:
		cpuRelax(8 << uint(r))
	case r < waitSpinRounds+waitYieldRounds:
		runtime.Gosched()
	default:
		d := waitSleepBase << uint(r-waitSpinRounds-waitYieldRounds)
		if d > waitSleepMax {
			d = waitSleepMax
		}
		time.Sleep(d)
	}
	return w.round
}
