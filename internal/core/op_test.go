package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{OpEQ, 5, 5, true},
		{OpEQ, 5, 6, false},
		{OpNEQ, 5, 6, true},
		{OpNEQ, 5, 5, false},
		{OpGT, 6, 5, true},
		{OpGT, 5, 5, false},
		{OpGT, 4, 5, false},
		{OpGTE, 5, 5, true},
		{OpGTE, 4, 5, false},
		{OpLT, 4, 5, true},
		{OpLT, 5, 5, false},
		{OpLTE, 5, 5, true},
		{OpLTE, 6, 5, false},
		{OpGT, -1, -2, true},
		{OpLT, math.MinInt64, math.MaxInt64, true},
		{OpGT, math.MaxInt64, math.MinInt64, true},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("(%d %s %d) = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

// TestOpInverseNegates is the property the semantic read-set encoding relies
// on: storing the inverse operator when the observed outcome is false makes
// every stored fact a true fact.
func TestOpInverseNegates(t *testing.T) {
	f := func(opRaw uint8, a, b int64) bool {
		op := Op(opRaw % uint8(numOps))
		return op.Inverse().Eval(a, b) == !op.Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpInverseIsInvolution(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.Inverse().Inverse() != op {
			t.Errorf("Inverse(Inverse(%s)) = %s", op, op.Inverse().Inverse())
		}
	}
}

func TestOpValidAndString(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if !op.Valid() {
			t.Errorf("%s should be valid", op)
		}
		if op.String() == "" {
			t.Errorf("empty string for op %d", op)
		}
	}
	if Op(200).Valid() {
		t.Error("Op(200) should be invalid")
	}
}

func TestOpEvalPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Op(99).Eval(1, 2)
}

func TestOpInversePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Op(99).Inverse()
}
