package core

import (
	"sync"
	"testing"
)

func TestNewVarInitialValue(t *testing.T) {
	v := NewVar(42)
	if v.Load() != 42 {
		t.Fatalf("Load = %d", v.Load())
	}
	v.StoreNT(-7)
	if v.Load() != -7 {
		t.Fatalf("Load after store = %d", v.Load())
	}
}

func TestVarIDsUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		v := NewVar(0)
		if v.ID() == 0 {
			t.Fatal("id 0 is reserved")
		}
		if seen[v.ID()] {
			t.Fatalf("duplicate id %d", v.ID())
		}
		seen[v.ID()] = true
	}
}

func TestNewVarsBlock(t *testing.T) {
	vs := NewVars(100, 9)
	if len(vs) != 100 {
		t.Fatalf("len = %d", len(vs))
	}
	ids := make(map[uint64]bool)
	for _, v := range vs {
		if v.Load() != 9 {
			t.Fatalf("initial = %d", v.Load())
		}
		if ids[v.ID()] {
			t.Fatal("duplicate id in block")
		}
		ids[v.ID()] = true
	}
}

func TestVarIDsUniqueUnderConcurrency(t *testing.T) {
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[uint64]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint64, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, NewVar(0).ID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate id %d", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestAbortSignalRoundTrip(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !IsAbort(r) {
			t.Fatalf("IsAbort(%v) = false", r)
		}
	}()
	Abort()
}

func TestIsAbortRejectsOtherPanics(t *testing.T) {
	if IsAbort("boom") || IsAbort(42) || IsAbort(nil) {
		t.Fatal("IsAbort must only accept the sentinel")
	}
}

func TestStatsMergeAndSnapshot(t *testing.T) {
	var s Stats
	ts := TxStats{Reads: 3, Writes: 2, Compares: 5, Incs: 1, Promotes: 1}
	s.Merge(&ts, true)
	s.Merge(&ts, false)
	sn := s.Snapshot()
	if sn.Commits != 1 || sn.Aborts != 1 {
		t.Fatalf("commits/aborts = %d/%d", sn.Commits, sn.Aborts)
	}
	if sn.Reads != 6 || sn.Writes != 4 || sn.Compares != 10 || sn.Incs != 2 || sn.Promotes != 2 {
		t.Fatalf("op counters wrong: %+v", sn)
	}
	if got := sn.AbortRate(); got != 50 {
		t.Fatalf("AbortRate = %v", got)
	}
	diff := sn.Sub(Snapshot{Commits: 1, Reads: 3})
	if diff.Commits != 0 || diff.Reads != 3 || diff.Aborts != 1 {
		t.Fatalf("Sub wrong: %+v", diff)
	}
}

func TestAbortRateEmpty(t *testing.T) {
	if (Snapshot{}).AbortRate() != 0 {
		t.Fatal("empty snapshot must have 0 abort rate")
	}
}

func TestTxStatsReset(t *testing.T) {
	ts := TxStats{Reads: 1, Writes: 1, Compares: 1, Incs: 1, Promotes: 1}
	ts.Reset()
	if ts != (TxStats{}) {
		t.Fatalf("Reset left %+v", ts)
	}
}
