package core

import (
	"testing"
	"time"
)

// drainFreeList consumes every reclaimed cell so a test starts from an empty
// free list and can attribute recycled allocations to its own retirements.
func drainFreeList() {
	for ReadEpochStats().Free > 0 {
		NewVar(0)
	}
}

// pumpReclaim advances the epoch until the target cell count has been
// reclaimed (two successful advances past the retirement).
func pumpReclaim(t *testing.T, wantReclaimed uint64) {
	t.Helper()
	for i := 0; i < 10; i++ {
		if ReadEpochStats().Reclaimed >= wantReclaimed {
			return
		}
		if !AdvanceEpoch() {
			t.Fatal("AdvanceEpoch failed with no pinned descriptors")
		}
	}
	t.Fatalf("cells not reclaimed after 10 advances: %+v", ReadEpochStats())
}

// TestRecyclePreservesIdentity: a reclaimed cell must come back through
// NewVarOn with its allocation id intact (stable orec home) but its shard,
// durable key, and value re-stamped for the new owner.
func TestRecyclePreservesIdentity(t *testing.T) {
	drainFreeList()
	v := NewVarOn(3, 42)
	id := v.ID()
	Retire(v)
	pumpReclaim(t, ReadEpochStats().Retired)

	w := NewVarOn(5, 7)
	if w.ID() != id {
		t.Errorf("recycled id = %d, want %d", w.ID(), id)
	}
	if w.Shard() != 5 {
		t.Errorf("recycled shard = %d, want 5", w.Shard())
	}
	if w.Load() != 7 {
		t.Errorf("recycled value = %d, want 7", w.Load())
	}
	if w.DurableKey() != 0 {
		t.Errorf("recycled durable key = %d, want 0", w.DurableKey())
	}
}

// TestRetireNilPanics and TestDoubleRetirePanics: the allocator's
// use-after-free equivalents must fail loudly.
func TestRetireNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Retire(nil) did not panic")
		}
	}()
	Retire(nil)
}

func TestDoubleRetirePanics(t *testing.T) {
	v := NewVar(0)
	Retire(v)
	defer func() {
		if recover() == nil {
			t.Fatal("double Retire did not panic")
		}
	}()
	Retire(v)
}

// TestPinBlocksAdvance: a descriptor pinned to an older epoch must stall the
// advance (and hence reclamation) until it exits.
func TestPinBlocksAdvance(t *testing.T) {
	p := RegisterEpochPin()
	p.Enter()
	// The pin equals the current epoch, so one advance may still succeed —
	// but afterwards the pin is one epoch behind and must block.
	AdvanceEpoch()
	if AdvanceEpoch() {
		t.Fatal("advance succeeded past a pinned descriptor")
	}
	p.Exit()
	if !AdvanceEpoch() {
		t.Fatal("advance failed after the pin exited")
	}
}

// TestVarIDRecyclingBoundsWatermark is the regression test for unbounded
// varID growth: churning 10x the orec-table size (2^16) through
// NewVar/Retire must recycle identities rather than mint new ones, keeping
// the watermark — and with it every id-indexed orec table — from growing
// past a small steady-state pool.
func TestVarIDRecyclingBoundsWatermark(t *testing.T) {
	drainFreeList()
	const (
		total = 10 * (1 << 16)
		batch = 64
	)
	// Prime the pipeline: the first few batches mint fresh ids because
	// nothing has been reclaimed yet.
	start := VarIDWatermark()
	for done := 0; done < total; done += batch {
		for i := 0; i < batch; i++ {
			Retire(NewVar(int64(i)))
		}
		// Two advances push the oldest limbo bucket to the free list; the
		// amortized advance inside Retire does most of this already.
		AdvanceEpoch()
		AdvanceEpoch()
	}
	growth := VarIDWatermark() - start
	if growth > 4096 {
		t.Fatalf("watermark grew by %d ids over %d churned allocations; want bounded steady-state pool", growth, total)
	}
	s := ReadEpochStats()
	if s.Reclaimed == 0 {
		t.Fatal("no cells reclaimed during churn")
	}
}

// TestReaderTableDrain: Drain(w) must wait for slots pinned below w and
// ignore idle slots and slots at or past w.
func TestReaderTableDrain(t *testing.T) {
	var tab ReaderTable
	doomed := tab.NewSlot()
	fresh := tab.NewSlot()
	_ = tab.NewSlot() // idle slot: never blocks

	doomed.Pin(5) // snapshot 5 < w: must block Drain(6)
	fresh.Pin(6)  // snapshot 6 >= w: must not block

	done := make(chan struct{})
	go func() {
		tab.Drain(6)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Drain returned while a doomed reader was still pinned")
	case <-time.After(20 * time.Millisecond):
	}
	doomed.Clear()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not return after the doomed reader cleared")
	}
}
