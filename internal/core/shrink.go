package core

// Shrinker is the high-water-mark shrink policy shared by the reusable
// transaction-local containers (WriteSet, SemSet, ExprSet, and the TL2
// read-set). Descriptors are pooled and their containers retain capacity
// across Reset, which makes the steady state allocation-free — but it also
// means one pathological transaction (a table rehash touching thousands of
// variables, say) would pin its peak footprint forever. The policy resolves
// that tension with hysteresis: a container is clamped back only after
// ShrinkAfter consecutive attempts whose usage stayed below 1/shrinkSlack of
// the retained capacity, and then only down to twice the recent peak, so an
// oscillating workload does not thrash between shrink and regrow.
//
// Containers call Note once per Reset with the attempt's usage and their
// retained capacity; a true return means "reallocate for about 2×peak now"
// and hands back the observed peak. The call is two compares on the hot path.
type Shrinker struct {
	peak  int // largest usage observed in the current run of small attempts
	small int // consecutive attempts with usage below capacity/shrinkSlack
}

const (
	// ShrinkAfter is how many consecutive small attempts a container
	// tolerates before releasing its oversized backing memory.
	ShrinkAfter = 64
	// shrinkSlack is the oversize factor that arms the policy: capacity must
	// exceed shrinkSlack × usage for an attempt to count as "small".
	shrinkSlack = 4
	// shrinkMinCap exempts small containers: capacities at or below this
	// never shrink (releasing a few hundred bytes is not worth a realloc).
	shrinkMinCap = 32
)

// Note records one attempt's usage against the retained capacity. It returns
// (peak, true) when the container should reallocate for about 2×peak, and
// resets the observation window either way once a decision is reached.
func (s *Shrinker) Note(used, capacity int) (int, bool) {
	if capacity <= shrinkMinCap || used*shrinkSlack >= capacity {
		s.peak, s.small = 0, 0 // rightsized (or recently used in full): disarm
		return 0, false
	}
	if used > s.peak {
		s.peak = used
	}
	s.small++
	if s.small < ShrinkAfter {
		return 0, false
	}
	peak := s.peak
	s.peak, s.small = 0, 0
	return peak, true
}

// ShrinkCap converts an observed peak into a new capacity: twice the peak
// (headroom for jitter around it), floored at min.
func ShrinkCap(peak, min int) int {
	n := 2 * peak
	if n < min {
		n = min
	}
	return n
}
