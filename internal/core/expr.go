package core

// This file implements the complex-expression extension sketched in Section
// 3 of the paper and detailed in its technical report: treating a whole
// composed condition (x > 0 || y > 0) or an arithmetic comparison
// (x + y > 0) as ONE semantic fact, so modifications to individual variables
// that do not flip the overall outcome never abort the reader. The published
// algorithms deliberately leave this out ("we currently do not support those
// complex expressions"); this library ships it as an opt-in extension of the
// value-based algorithms, where re-evaluation is straightforward.

// Cond is one clause of a composed condition: "*Var Op Operand".
type Cond struct {
	Var     *Var
	Op      Op
	Operand int64
}

// Eval evaluates the clause against current memory.
func (c Cond) Eval() bool { return c.Op.Eval(c.Var.Load(), c.Operand) }

// exprKind distinguishes expression-fact flavours.
type exprKind uint8

const (
	exprSum exprKind = iota // (Σ Vars) Op Rhs
	exprOr                  // Conds[0] || Conds[1] || ...
)

// ExprEntry is one recorded expression fact together with its observed
// outcome; validation re-evaluates the expression and fails only when the
// outcome flips.
type ExprEntry struct {
	kind    exprKind
	vars    []*Var
	conds   []Cond
	op      Op
	rhs     int64
	outcome bool
}

// Holds re-evaluates the expression against current memory and reports
// whether the outcome is unchanged.
func (e *ExprEntry) Holds() bool {
	switch e.kind {
	case exprSum:
		var sum int64
		for _, v := range e.vars {
			sum += v.Load()
		}
		return e.op.Eval(sum, e.rhs) == e.outcome
	case exprOr:
		any := false
		for _, c := range e.conds {
			if c.Eval() {
				any = true
				break
			}
		}
		return any == e.outcome
	default:
		return false
	}
}

// ExprSet is an append-only log of expression facts.
type ExprSet struct {
	entries []ExprEntry
}

// NewExprSet returns an empty set.
func NewExprSet() *ExprSet { return &ExprSet{} }

// Reset empties the set, retaining capacity.
func (s *ExprSet) Reset() { s.entries = s.entries[:0] }

// Len reports the number of recorded expression facts.
func (s *ExprSet) Len() int { return len(s.entries) }

// AppendSum records the fact "(Σ vars) op rhs == outcome". The vars slice
// is copied.
func (s *ExprSet) AppendSum(vars []*Var, op Op, rhs int64, outcome bool) {
	s.entries = append(s.entries, ExprEntry{
		kind:    exprSum,
		vars:    append([]*Var(nil), vars...),
		op:      op,
		rhs:     rhs,
		outcome: outcome,
	})
}

// AppendOr records the fact "(c1 || c2 || ...) == outcome". The conds slice
// is copied.
func (s *ExprSet) AppendOr(conds []Cond, outcome bool) {
	s.entries = append(s.entries, ExprEntry{
		kind:    exprOr,
		conds:   append([]Cond(nil), conds...),
		outcome: outcome,
	})
}

// HoldsNow re-evaluates every expression fact against current memory.
func (s *ExprSet) HoldsNow() bool {
	for i := range s.entries {
		if !s.entries[i].Holds() {
			return false
		}
	}
	return true
}
