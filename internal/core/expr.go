package core

// This file implements the complex-expression extension sketched in Section
// 3 of the paper and detailed in its technical report: treating a whole
// composed condition (x > 0 || y > 0) or an arithmetic comparison
// (x + y > 0) as ONE semantic fact, so modifications to individual variables
// that do not flip the overall outcome never abort the reader. The published
// algorithms deliberately leave this out ("we currently do not support those
// complex expressions"); this library ships it as an opt-in extension of the
// value-based algorithms, where re-evaluation is straightforward.

// Cond is one clause of a composed condition: "*Var Op Operand".
type Cond struct {
	Var     *Var
	Op      Op
	Operand int64
}

// Eval evaluates the clause against current memory.
func (c Cond) Eval() bool { return c.Op.Eval(c.Var.Load(), c.Operand) }

// exprKind distinguishes expression-fact flavours.
type exprKind uint8

const (
	exprSum exprKind = iota // (Σ Vars) Op Rhs
	exprOr                  // Conds[0] || Conds[1] || ...
)

// ExprEntry is one recorded expression fact together with its observed
// outcome; validation re-evaluates the expression and fails only when the
// outcome flips.
type ExprEntry struct {
	kind    exprKind
	vars    []*Var
	conds   []Cond
	op      Op
	rhs     int64
	outcome bool
}

// Holds re-evaluates the expression against current memory and reports
// whether the outcome is unchanged.
func (e *ExprEntry) Holds() bool {
	switch e.kind {
	case exprSum:
		var sum int64
		for _, v := range e.vars {
			sum += v.Load()
		}
		return e.op.Eval(sum, e.rhs) == e.outcome
	case exprOr:
		any := false
		for _, c := range e.conds {
			if c.Eval() {
				any = true
				break
			}
		}
		return any == e.outcome
	default:
		return false
	}
}

// ExprSet is an append-only log of expression facts. Reset retains not just
// the entry slice but each entry's vars/conds backing arrays, so recording a
// sum or OR fact is allocation-free once the set has seen its shape — the
// previous copy-on-append (append([]*Var(nil), ...)) allocated on every
// CmpSum/CmpAny of the value-based semantic engines.
type ExprSet struct {
	entries []ExprEntry
	shrink  Shrinker
}

// exprSetMinCap is the entry capacity a clamped set keeps.
const exprSetMinCap = 8

// NewExprSet returns an empty set.
func NewExprSet() *ExprSet { return &ExprSet{} }

// Reset empties the set. Entries beyond the new length keep their operand
// slices for reuse by the next attempt; the high-water-mark shrink policy
// (see WriteSet.Reset) eventually releases both them and the *Var pointers
// they pin once the workload stops recording expression facts of that size.
func (s *ExprSet) Reset() {
	used := len(s.entries)
	s.entries = s.entries[:0]
	if peak, ok := s.shrink.Note(used, cap(s.entries)); ok {
		s.entries = make([]ExprEntry, 0, ShrinkCap(peak, exprSetMinCap))
	}
}

// Len reports the number of recorded expression facts.
func (s *ExprSet) Len() int { return len(s.entries) }

// next extends the log by one entry, recycling a previously used slot (and
// its operand slices) when the backing array has one.
func (s *ExprSet) next() *ExprEntry {
	if len(s.entries) < cap(s.entries) {
		s.entries = s.entries[:len(s.entries)+1]
	} else {
		s.entries = append(s.entries, ExprEntry{})
	}
	return &s.entries[len(s.entries)-1]
}

// AppendSum records the fact "(Σ vars) op rhs == outcome". The vars slice
// is copied (into the recycled entry's buffer when one is available).
func (s *ExprSet) AppendSum(vars []*Var, op Op, rhs int64, outcome bool) {
	e := s.next()
	e.kind = exprSum
	e.vars = append(e.vars[:0], vars...)
	e.conds = e.conds[:0]
	e.op = op
	e.rhs = rhs
	e.outcome = outcome
}

// AppendOr records the fact "(c1 || c2 || ...) == outcome". The conds slice
// is copied (into the recycled entry's buffer when one is available).
func (s *ExprSet) AppendOr(conds []Cond, outcome bool) {
	e := s.next()
	e.kind = exprOr
	e.vars = e.vars[:0]
	e.conds = append(e.conds[:0], conds...)
	e.op = 0
	e.rhs = 0
	e.outcome = outcome
}

// HoldsNow re-evaluates every expression fact against current memory.
func (s *ExprSet) HoldsNow() bool {
	for i := range s.entries {
		if !s.entries[i].Holds() {
			return false
		}
	}
	return true
}
