package core

import "sync/atomic"

// TxStats accumulates per-attempt operation counts. A transaction attempt
// mutates its TxStats locally (no synchronization) and the runtime folds the
// numbers into a StatsShard on commit or abort. The operation categories are
// exactly those of Table 3 of the paper.
type TxStats struct {
	Reads    uint64 // classical transactional reads
	Writes   uint64 // classical transactional writes
	Compares uint64 // semantic cmp operations
	Incs     uint64 // semantic inc operations
	Promotes uint64 // incs promoted to read+write by a read-after-write

	// Commit-path scalability counters (DESIGN.md §8): how much re-checking
	// and waiting the attempt did, beyond the Table 3 operation mix.
	Validations uint64 // read-set/compare-set validation passes
	ValEntries  uint64 // entries re-checked by those passes
	ClockAdopts uint64 // commit CAS failures resolved by adopting the newer clock
	SpinWaits   uint64 // adaptive-waiter rounds spent on locked metadata

	// Sharded-commit counters (DESIGN.md §11): cross-shard two-phase commits
	// and the ticket-triggered whole-transaction revalidations that keep
	// multi-shard snapshots opaque. Always zero on unsharded runtimes.
	CrossCommits uint64 // commits that ran the two-phase cross-shard path
	CrossRevals  uint64 // ticket-movement revalidations of a live multi-shard snapshot

	// Durable-pipeline counters (DESIGN.md §12): write-ahead-log frames this
	// attempt appended (one per participating shard of a durable commit) and
	// log-write failures it absorbed by degrading to the irrevocable
	// volatile mode. Always zero on volatile runtimes.
	WALAppends  uint64 // WAL frames appended by the attempt's commit
	WALFailures uint64 // log-write failures degraded to ReasonLogFail

	// Progressive-HyTM path counters (DESIGN.md §13): which hardware tier a
	// committed attempt ran on. A commit sets at most one of them; slow-path
	// (software) commits set neither, so fast + middle + slow = Commits.
	// Always zero off the HyTM engines.
	HWFastCommits   uint64 // commits on the uninstrumented hardware fast path
	HWMiddleCommits uint64 // commits on the instrumented hardware middle path
	StickyStarts    uint64 // logical transactions the telemetry ladder started on the middle path
}

// Reset zeroes the per-attempt counters.
func (ts *TxStats) Reset() { *ts = TxStats{} }

// Accumulate adds o's counters into ts. A sharded descriptor folds the
// per-shard sub-descriptors' attempt counters into one TxStats with it.
func (ts *TxStats) Accumulate(o *TxStats) {
	ts.Reads += o.Reads
	ts.Writes += o.Writes
	ts.Compares += o.Compares
	ts.Incs += o.Incs
	ts.Promotes += o.Promotes
	ts.Validations += o.Validations
	ts.ValEntries += o.ValEntries
	ts.ClockAdopts += o.ClockAdopts
	ts.SpinWaits += o.SpinWaits
	ts.CrossCommits += o.CrossCommits
	ts.CrossRevals += o.CrossRevals
	ts.WALAppends += o.WALAppends
	ts.WALFailures += o.WALFailures
	ts.HWFastCommits += o.HWFastCommits
	ts.HWMiddleCommits += o.HWMiddleCommits
	ts.StickyStarts += o.StickyStarts
}

// Counter indices of the aggregate layout: commits and aborts first, then
// the Table 3 operation categories in TxStats order, then the robustness
// counters (irrevocable escalations and per-reason abort counts).
const (
	cCommits = iota
	cAborts
	cReads
	cWrites
	cCompares
	cIncs
	cPromotes
	cValidations
	cValEntries
	cClockAdopts
	cSpinWaits
	cCrossCommits
	cCrossRevals
	cWALAppends
	cWALFailures
	cHWFastCommits
	cHWMiddleCommits
	cStickyStarts
	cEscalations
	cEngineSwitches
	cReasonBase
	numCounters = cReasonBase + int(NumReasons)
)

// paddedCounter is one aggregate counter alone on its cache line. Every
// counter is padded uniformly: before sharding, Reads/Writes/Compares/Incs/
// Promotes shared cache lines (only Commits/Aborts were padded), so two
// threads folding different categories still collided.
type paddedCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// StatsShard is one worker's slice of the aggregate counters. Each pooled
// transaction descriptor owns a shard, so in steady state a shard's cache
// lines are written by a single thread and the atomic adds are uncontended —
// this is the fast path; the atomics only arbitrate the rare descriptor
// hand-off through the pool and the Snapshot fold.
type StatsShard struct {
	c [numCounters]paddedCounter
}

// Merge folds one attempt's counters into the shard.
func (sh *StatsShard) Merge(ts *TxStats, committed bool) {
	if committed {
		sh.c[cCommits].n.Add(1)
	} else {
		sh.c[cAborts].n.Add(1)
	}
	if ts.Reads != 0 {
		sh.c[cReads].n.Add(ts.Reads)
	}
	if ts.Writes != 0 {
		sh.c[cWrites].n.Add(ts.Writes)
	}
	if ts.Compares != 0 {
		sh.c[cCompares].n.Add(ts.Compares)
	}
	if ts.Incs != 0 {
		sh.c[cIncs].n.Add(ts.Incs)
	}
	if ts.Promotes != 0 {
		sh.c[cPromotes].n.Add(ts.Promotes)
	}
	if ts.Validations != 0 {
		sh.c[cValidations].n.Add(ts.Validations)
	}
	if ts.ValEntries != 0 {
		sh.c[cValEntries].n.Add(ts.ValEntries)
	}
	if ts.ClockAdopts != 0 {
		sh.c[cClockAdopts].n.Add(ts.ClockAdopts)
	}
	if ts.SpinWaits != 0 {
		sh.c[cSpinWaits].n.Add(ts.SpinWaits)
	}
	if ts.CrossCommits != 0 {
		sh.c[cCrossCommits].n.Add(ts.CrossCommits)
	}
	if ts.CrossRevals != 0 {
		sh.c[cCrossRevals].n.Add(ts.CrossRevals)
	}
	if ts.WALAppends != 0 {
		sh.c[cWALAppends].n.Add(ts.WALAppends)
	}
	if ts.WALFailures != 0 {
		sh.c[cWALFailures].n.Add(ts.WALFailures)
	}
	if ts.HWFastCommits != 0 {
		sh.c[cHWFastCommits].n.Add(ts.HWFastCommits)
	}
	if ts.HWMiddleCommits != 0 {
		sh.c[cHWMiddleCommits].n.Add(ts.HWMiddleCommits)
	}
	if ts.StickyStarts != 0 {
		sh.c[cStickyStarts].n.Add(ts.StickyStarts)
	}
}

// CountAbortReason folds one abort's reason into the per-reason counters
// (the aborted attempt itself is counted by Merge).
func (sh *StatsShard) CountAbortReason(r Reason) {
	if r < NumReasons {
		sh.c[cReasonBase+int(r)].n.Add(1)
	}
}

// CountEscalation records one starvation escalation to irrevocable mode.
func (sh *StatsShard) CountEscalation() {
	sh.c[cEscalations].n.Add(1)
}

// CountEngineSwitch records one online engine switch of an adaptive runtime.
// Switches are rare (a quiescent drain apiece), so they fold into shard 0
// rather than carrying a descriptor shard through the switch path.
func (s *Stats) CountEngineSwitch() {
	s.shards[0].c[cEngineSwitches].n.Add(1)
}

// numShards bounds the shard pool of one Stats. Registrations beyond the
// bound wrap around and share (still correct, still mostly uncontended up to
// numShards concurrent workers); the bound keeps the zero-value Stats a
// fixed-size, leak-free structure.
const numShards = 64

// Stats aggregates runtime-wide counters across all threads as a fixed pool
// of cache-line-padded shards. The zero value is ready to use. Workers
// register a shard once (Runtime does this per pooled transaction
// descriptor) and fold into it on every commit/abort; Snapshot folds the
// shards, so the commit path never touches a shared cache line.
type Stats struct {
	next   atomic.Uint64
	shards [numShards]StatsShard
}

// Register hands out the next shard round-robin. Shards may be shared when
// more than numShards workers register; Merge remains correct either way.
func (s *Stats) Register() *StatsShard {
	return &s.shards[(s.next.Add(1)-1)%numShards]
}

// Merge folds one attempt's counters into shard 0 — the compatibility slow
// path for callers without a registered shard (tests, one-shot tools). Hot
// paths use StatsShard.Merge on a registered shard instead.
func (s *Stats) Merge(ts *TxStats, committed bool) { s.shards[0].Merge(ts, committed) }

// Snapshot is a plain-value copy of the aggregate counters.
type Snapshot struct {
	Commits, Aborts                         uint64
	Reads, Writes, Compares, Incs, Promotes uint64
	// Commit-path scalability counters (DESIGN.md §8).
	Validations, ValEntries, ClockAdopts, SpinWaits uint64
	// Sharded-commit counters (DESIGN.md §11): cross-shard two-phase commits
	// and ticket-triggered multi-shard revalidations.
	CrossCommits, CrossRevals uint64
	// Durable-pipeline counters (DESIGN.md §12): WAL frames appended by
	// durable commits and log-write failures degraded to volatile commits.
	WALAppends, WALFailures uint64
	// Progressive-HyTM path counters (DESIGN.md §13): commits that ran on
	// the uninstrumented hardware fast path and on the instrumented hardware
	// middle path (the remainder of Commits ran the software slow path), and
	// logical transactions the telemetry ladder started directly on the
	// middle path because the fast path's recent failure rate disqualified it.
	HWFastCommits, HWMiddleCommits, StickyStarts uint64
	// Escalations counts transactions that, after repeated aborts, completed
	// in the irrevocable serializing mode (the starvation escape hatch).
	Escalations uint64
	// EngineSwitches counts online engine switches performed by an adaptive
	// runtime (always zero on fixed-engine runtimes).
	EngineSwitches uint64
	// AbortReasons breaks Aborts down by Reason (index with a core Reason
	// value; Reason.String names the buckets).
	AbortReasons [NumReasons]uint64
}

// ReasonCounts returns the non-zero abort-reason buckets keyed by their
// stable string labels, the form the JSON benchmark reports embed.
func (sn Snapshot) ReasonCounts() map[string]uint64 {
	var out map[string]uint64
	for r := Reason(0); r < NumReasons; r++ {
		if n := sn.AbortReasons[r]; n != 0 {
			if out == nil {
				out = make(map[string]uint64)
			}
			out[r.String()] = n
		}
	}
	return out
}

// Snapshot folds all shards into one plain-value copy. It is not atomic
// across counters; callers take snapshots at quiescent points or accept
// small skew.
func (s *Stats) Snapshot() Snapshot {
	var t [numCounters]uint64
	for i := range s.shards {
		for c := range t {
			t[c] += s.shards[i].c[c].n.Load()
		}
	}
	sn := Snapshot{
		Commits:         t[cCommits],
		Aborts:          t[cAborts],
		Reads:           t[cReads],
		Writes:          t[cWrites],
		Compares:        t[cCompares],
		Incs:            t[cIncs],
		Promotes:        t[cPromotes],
		Validations:     t[cValidations],
		ValEntries:      t[cValEntries],
		ClockAdopts:     t[cClockAdopts],
		SpinWaits:       t[cSpinWaits],
		CrossCommits:    t[cCrossCommits],
		CrossRevals:     t[cCrossRevals],
		WALAppends:      t[cWALAppends],
		WALFailures:     t[cWALFailures],
		HWFastCommits:   t[cHWFastCommits],
		HWMiddleCommits: t[cHWMiddleCommits],
		StickyStarts:    t[cStickyStarts],
		Escalations:     t[cEscalations],
		EngineSwitches:  t[cEngineSwitches],
	}
	copy(sn.AbortReasons[:], t[cReasonBase:])
	return sn
}

// AbortRate returns aborts / (commits + aborts) as a percentage, the metric
// plotted in the "Aborts %" panels of Figures 1 and 2.
func (sn Snapshot) AbortRate() float64 {
	total := sn.Commits + sn.Aborts
	if total == 0 {
		return 0
	}
	return 100 * float64(sn.Aborts) / float64(total)
}

// Sub returns the difference sn - old, counter by counter, used to scope
// measurements to a benchmark interval.
func (sn Snapshot) Sub(old Snapshot) Snapshot {
	d := Snapshot{
		Commits:         sn.Commits - old.Commits,
		Aborts:          sn.Aborts - old.Aborts,
		Reads:           sn.Reads - old.Reads,
		Writes:          sn.Writes - old.Writes,
		Compares:        sn.Compares - old.Compares,
		Incs:            sn.Incs - old.Incs,
		Promotes:        sn.Promotes - old.Promotes,
		Validations:     sn.Validations - old.Validations,
		ValEntries:      sn.ValEntries - old.ValEntries,
		ClockAdopts:     sn.ClockAdopts - old.ClockAdopts,
		SpinWaits:       sn.SpinWaits - old.SpinWaits,
		CrossCommits:    sn.CrossCommits - old.CrossCommits,
		CrossRevals:     sn.CrossRevals - old.CrossRevals,
		WALAppends:      sn.WALAppends - old.WALAppends,
		WALFailures:     sn.WALFailures - old.WALFailures,
		HWFastCommits:   sn.HWFastCommits - old.HWFastCommits,
		HWMiddleCommits: sn.HWMiddleCommits - old.HWMiddleCommits,
		StickyStarts:    sn.StickyStarts - old.StickyStarts,
		Escalations:     sn.Escalations - old.Escalations,
		EngineSwitches:  sn.EngineSwitches - old.EngineSwitches,
	}
	for i := range d.AbortReasons {
		d.AbortReasons[i] = sn.AbortReasons[i] - old.AbortReasons[i]
	}
	return d
}
