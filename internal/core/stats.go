package core

import "sync/atomic"

// TxStats accumulates per-attempt operation counts. A transaction attempt
// mutates its TxStats locally (no synchronization) and the runtime folds the
// numbers into the shared Stats on commit or abort. The operation categories
// are exactly those of Table 3 of the paper.
type TxStats struct {
	Reads    uint64 // classical transactional reads
	Writes   uint64 // classical transactional writes
	Compares uint64 // semantic cmp operations
	Incs     uint64 // semantic inc operations
	Promotes uint64 // incs promoted to read+write by a read-after-write
}

// Reset zeroes the per-attempt counters.
func (ts *TxStats) Reset() { *ts = TxStats{} }

// pad keeps hot counters on separate cache lines.
type pad [56]byte

// Stats aggregates runtime-wide counters across all threads.
type Stats struct {
	Commits  atomic.Uint64
	_        pad
	Aborts   atomic.Uint64
	_        pad
	Reads    atomic.Uint64
	Writes   atomic.Uint64
	Compares atomic.Uint64
	Incs     atomic.Uint64
	Promotes atomic.Uint64
}

// Merge folds one attempt's counters into the aggregate.
func (s *Stats) Merge(ts *TxStats, committed bool) {
	if committed {
		s.Commits.Add(1)
	} else {
		s.Aborts.Add(1)
	}
	if ts.Reads != 0 {
		s.Reads.Add(ts.Reads)
	}
	if ts.Writes != 0 {
		s.Writes.Add(ts.Writes)
	}
	if ts.Compares != 0 {
		s.Compares.Add(ts.Compares)
	}
	if ts.Incs != 0 {
		s.Incs.Add(ts.Incs)
	}
	if ts.Promotes != 0 {
		s.Promotes.Add(ts.Promotes)
	}
}

// Snapshot is a plain-value copy of the aggregate counters.
type Snapshot struct {
	Commits, Aborts                         uint64
	Reads, Writes, Compares, Incs, Promotes uint64
}

// Snapshot reads all counters. It is not atomic across counters; callers
// take snapshots at quiescent points or accept small skew.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Commits:  s.Commits.Load(),
		Aborts:   s.Aborts.Load(),
		Reads:    s.Reads.Load(),
		Writes:   s.Writes.Load(),
		Compares: s.Compares.Load(),
		Incs:     s.Incs.Load(),
		Promotes: s.Promotes.Load(),
	}
}

// AbortRate returns aborts / (commits + aborts) as a percentage, the metric
// plotted in the "Aborts %" panels of Figures 1 and 2.
func (sn Snapshot) AbortRate() float64 {
	total := sn.Commits + sn.Aborts
	if total == 0 {
		return 0
	}
	return 100 * float64(sn.Aborts) / float64(total)
}

// Sub returns the difference sn - old, counter by counter, used to scope
// measurements to a benchmark interval.
func (sn Snapshot) Sub(old Snapshot) Snapshot {
	return Snapshot{
		Commits:  sn.Commits - old.Commits,
		Aborts:   sn.Aborts - old.Aborts,
		Reads:    sn.Reads - old.Reads,
		Writes:   sn.Writes - old.Writes,
		Compares: sn.Compares - old.Compares,
		Incs:     sn.Incs - old.Incs,
		Promotes: sn.Promotes - old.Promotes,
	}
}
