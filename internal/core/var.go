package core

import "sync/atomic"

// Var is a transactional memory cell holding a single 64-bit signed word.
// It plays the role of a shared-memory address in the paper: every
// transactional read, write, comparison, and increment targets a Var.
//
// Each Var carries an allocation-time identifier used by version-based
// algorithms (TL2 and S-TL2) to index their ownership-record table, mirroring
// how native STMs hash raw addresses, and a shard assignment used by sharded
// runtimes to route the variable to one of N independent engine instances.
// The struct is padded to a cache line so that adjacent Vars in an array do
// not false-share.
type Var struct {
	val   atomic.Int64
	id    uint64
	dkey  uint64
	shard uint32
	// retired guards the epoch-reclamation lifecycle (epoch.go): 0 while the
	// cell is live, 1 from Retire until the cell is recycled off the free
	// list. Double retire panics — the use-after-free of this allocator.
	retired atomic.Uint32
	_       [32]byte
}

// varID is the global allocation counter for Var identifiers. Identifiers
// start at 1 so that the zero id can be reserved as "invalid". It is a
// high-water mark, not a live count: reclaimed cells are recycled id-intact
// (the id indexes engine orec tables, and a stable id keeps a recycled
// cell's orec home stable), so steady-state churn through Retire does not
// move it.
var varID atomic.Uint64

// recycleVar pops a reclaimed cell off the epoch free list and re-stamps
// its allocation-time properties. The id is deliberately preserved. Returns
// nil when the free list is empty.
func recycleVar(shard int, key uint64, initial int64) *Var {
	v := popFreeVar()
	if v == nil {
		return nil
	}
	v.dkey = key
	v.shard = uint32(shard)
	v.val.Store(initial)
	v.retired.Store(0)
	return v
}

// NewVar allocates a transactional variable with the given initial value on
// shard 0 (the only shard of an unsharded runtime), recycling a reclaimed
// cell when one is available.
func NewVar(initial int64) *Var {
	if v := recycleVar(0, 0, initial); v != nil {
		return v
	}
	v := &Var{id: varID.Add(1)}
	v.val.Store(initial)
	return v
}

// NewVarOn allocates a transactional variable with the given initial value
// and shard affinity. A sharded runtime routes every access to the variable
// through the engine instance of its shard; unsharded runtimes ignore the
// assignment. Negative shards panic — a Var's shard is an allocation-time
// property, not a runtime hint.
func NewVarOn(shard int, initial int64) *Var {
	if shard < 0 {
		panic("core: negative shard")
	}
	if v := recycleVar(shard, 0, initial); v != nil {
		return v
	}
	v := &Var{id: varID.Add(1), shard: uint32(shard)}
	v.val.Store(initial)
	return v
}

// NewVars allocates n transactional variables in one contiguous block, all
// initialized to initial and assigned to shard 0. The returned slice is
// suitable for large shared structures (grids, tables, node pools).
func NewVars(n int, initial int64) []*Var {
	return NewVarsOn(0, n, initial)
}

// NewVarsOn allocates n transactional variables in one contiguous block, all
// initialized to initial and assigned to the given shard — the allocation
// helper for shard-affine structures (one block per shard keeps a shard's
// variables on dense, private cache lines). Block allocation deliberately
// bypasses the recycle free list: contiguity is the point of the API, and
// reclaimed cells are scattered.
func NewVarsOn(shard, n int, initial int64) []*Var {
	if shard < 0 {
		panic("core: negative shard")
	}
	block := make([]Var, n)
	out := make([]*Var, n)
	for i := range block {
		block[i].id = varID.Add(1)
		block[i].shard = uint32(shard)
		if initial != 0 {
			block[i].val.Store(initial)
		}
		out[i] = &block[i]
	}
	return out
}

// NewVarDurable allocates a transactional variable with a stable durable key
// on the given shard. Allocation-time ids are process-local (they restart at
// 1 on every run), so the durable runtime names logged variables by this
// user-assigned key instead: the write-ahead log records carry dkeys and
// Recover rebinds them to the freshly allocated Vars of the next process.
// Key 0 is reserved — it marks a Var as volatile-only (never logged).
func NewVarDurable(shard int, key uint64, initial int64) *Var {
	if shard < 0 {
		panic("core: negative shard")
	}
	if key == 0 {
		panic("core: durable key 0 is reserved")
	}
	if v := recycleVar(shard, key, initial); v != nil {
		return v
	}
	v := &Var{id: varID.Add(1), dkey: key, shard: uint32(shard)}
	v.val.Store(initial)
	return v
}

// ID returns the allocation-time identifier of the variable.
func (v *Var) ID() uint64 { return v.id }

// DurableKey returns the stable durable key of the variable, or 0 for a
// volatile-only Var (one not allocated via NewVarDurable).
func (v *Var) DurableKey() uint64 { return v.dkey }

// Shard returns the allocation-time shard assignment of the variable
// (0 unless allocated with NewVarOn/NewVarsOn).
func (v *Var) Shard() int { return int(v.shard) }

// Load performs a non-transactional (racy) read of the variable. It is the
// analogue of a plain memory load outside any transaction and is used for
// post-quiescence inspection and for the Labyrinth-v2 style "snapshot outside
// the transaction" optimization of [Ruan et al., TRANSACT 2014].
func (v *Var) Load() int64 { return v.val.Load() }

// StoreNT performs a non-transactional store. It must only be used during
// single-threaded initialization or quiescent phases.
func (v *Var) StoreNT(x int64) { v.val.Store(x) }
