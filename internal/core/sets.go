package core

// EntryKind distinguishes the two kinds of write-set entries of the semantic
// algorithms: a standard buffered write and a deferred increment (Section 4:
// "a flag is added to each write-set entry to indicate whether it stores a
// standard write or an increment").
type EntryKind uint8

const (
	// EntryWrite is a buffered write; Val holds the value to store.
	EntryWrite EntryKind = iota
	// EntryInc is a deferred increment; Val holds the accumulated delta to
	// add to the memory content at commit time.
	EntryInc
)

// WriteEntry is one element of a transaction's write-set.
type WriteEntry struct {
	Var  *Var
	Val  int64
	Kind EntryKind
}

// WriteSet is the redo-log of a transaction. It preserves insertion order for
// write-back and offers O(1) lookup for read-after-write handling. The merge
// rules of Algorithm 6 (lines 44–52) are implemented by PutWrite and PutInc:
//
//   - write after write/inc: overwrite the value, set kind to EntryWrite;
//   - inc after write/inc: accumulate the delta, keep the entry's kind.
//
// The representation is built for the barrier hot path, mirroring how native
// STMs filter write-sets with hash signatures (NOrec's value-based filter,
// RingSTM's Bloom signatures):
//
//   - sig is a 64-bit Bloom signature over the IDs of buffered variables.
//     A read barrier whose variable is not covered by the signature — the
//     empty and miss cases, which dominate every workload of Table 3 —
//     skips the lookup entirely with two ALU operations (MayContain).
//   - Up to smallMax entries are indexed by nothing at all: a linear scan of
//     the entry slice beats any hash structure at that size and touches only
//     memory the write-back will touch anyway.
//   - Beyond smallMax, an open-addressed table keyed by Var.ID with linear
//     probing and power-of-two doubling replaces the scan. Unlike the
//     previous map[*Var]int, it performs no runtime map-assign/map-access
//     calls and Reset does not rehash: slots store entry indices, so
//     clearing is one memclr of an int32 slice.
type WriteSet struct {
	entries []WriteEntry
	sig     uint64  // Bloom signature over entry IDs; 0 ⇒ set empty
	table   []int32 // open-addressed index: entry index+1, 0 = free slot
	mask    uint64  // len(table)-1 (table is a power of two)
	shrink  Shrinker
}

// writeSetMinCap is the pre-sized entry capacity of a fresh (or freshly
// clamped) write-set.
const writeSetMinCap = 16

// smallMax is the largest write-set indexed by linear scan alone. Table 3
// puts the median transaction well under 8 distinct written variables, so
// most transactions never build the probe table.
const smallMax = 8

// idMix is the 64-bit Fibonacci multiplier (2^64/φ); multiplying by it mixes
// the low-entropy allocation-order IDs into well-distributed high bits.
const idMix = 0x9E3779B97F4A7C15

// sigMask derives the two Bloom bits for an ID from the top bits of the
// mixed hash. Two probe bits keep the false-positive rate of an 8-entry set
// around (16/64)² ≈ 6% versus 12.5% for a single bit.
func sigMask(id uint64) uint64 {
	h := id * idMix
	return 1<<(h>>58) | 1<<((h>>52)&63)
}

// NewWriteSet returns an empty write-set with some pre-sized capacity.
func NewWriteSet() *WriteSet {
	return &WriteSet{entries: make([]WriteEntry, 0, writeSetMinCap)}
}

// Reset empties the write-set, retaining capacity for reuse across attempts.
// Small transactions (no probe table) reset with two stores; once a table
// exists it is cleared in place (a single memclr) and stays available. The
// retained capacity is subject to the high-water-mark shrink policy
// (Shrinker): after ShrinkAfter consecutive attempts that used a small
// fraction of it, the entry slice and probe table are reallocated near the
// recent peak so one huge transaction cannot pin memory (and per-Reset
// memclr cost) forever.
func (ws *WriteSet) Reset() {
	used := len(ws.entries)
	ws.entries = ws.entries[:0]
	ws.sig = 0
	if ws.table != nil {
		clear(ws.table)
	}
	if peak, ok := ws.shrink.Note(used, cap(ws.entries)); ok {
		ws.clamp(peak)
	}
}

// clamp reallocates the (empty) set's backing memory for about 2×peak
// entries, dropping the probe table entirely when the recent peak fits the
// small-set linear scan.
func (ws *WriteSet) clamp(peak int) {
	ws.entries = make([]WriteEntry, 0, ShrinkCap(peak, writeSetMinCap))
	if ws.table == nil {
		return
	}
	if peak < smallMax {
		ws.table, ws.mask = nil, 0
		return
	}
	n := 4 * smallMax
	for n*3 < 4*ShrinkCap(peak, writeSetMinCap) {
		n *= 2 // keep the clamped table below 3/4 load at 2×peak entries
	}
	ws.table = make([]int32, n)
	ws.mask = uint64(n - 1)
}

// Len reports the number of distinct variables in the write-set.
func (ws *WriteSet) Len() int { return len(ws.entries) }

// MayContain reports whether v can possibly be in the write-set, using only
// the Bloom signature: a false return is definitive, a true return must be
// confirmed by Get. It is the two-ALU-op fast path of every read barrier.
func (ws *WriteSet) MayContain(v *Var) bool {
	m := sigMask(v.id)
	return ws.sig&m == m
}

// find returns the entry index of v, or -1. Callers must have passed the
// signature check; find still returns -1 on Bloom false positives.
func (ws *WriteSet) find(v *Var) int {
	if ws.table == nil {
		for i := range ws.entries {
			if ws.entries[i].Var == v {
				return i
			}
		}
		return -1
	}
	h := v.id * idMix
	for j := (h >> 32) & ws.mask; ; j = (j + 1) & ws.mask {
		slot := ws.table[j]
		if slot == 0 {
			return -1
		}
		if ws.entries[slot-1].Var == v {
			return int(slot - 1)
		}
	}
}

// register indexes the entry about to be appended at len(ws.entries) under
// v's key and folds v into the signature.
func (ws *WriteSet) register(v *Var, m uint64) {
	ws.sig |= m
	idx := len(ws.entries)
	if ws.table == nil {
		if idx < smallMax {
			return // linear scan still covers the set
		}
		ws.grow() // crossing smallMax: build the probe table
	} else if uint64(idx+1)*4 > uint64(len(ws.table))*3 {
		ws.grow() // keep load factor ≤ 3/4
	}
	ws.tableInsert(v.id, int32(idx+1))
}

// grow (re)builds the probe table at double the size (first build: 4× the
// small-set bound, keeping the initial load under 30%).
func (ws *WriteSet) grow() {
	n := 2 * len(ws.table)
	if n == 0 {
		n = 4 * smallMax
	}
	ws.table = make([]int32, n)
	ws.mask = uint64(n - 1)
	for i := range ws.entries {
		ws.tableInsert(ws.entries[i].Var.id, int32(i+1))
	}
}

// tableInsert stores slot at the first free position of id's probe sequence.
func (ws *WriteSet) tableInsert(id uint64, slot int32) {
	h := id * idMix
	for j := (h >> 32) & ws.mask; ; j = (j + 1) & ws.mask {
		if ws.table[j] == 0 {
			ws.table[j] = slot
			return
		}
	}
}

// Get returns a pointer to the entry for v, or nil if v is not in the set.
// The pointer stays valid until the next Put or Reset.
func (ws *WriteSet) Get(v *Var) *WriteEntry {
	if len(ws.entries) == 0 {
		return nil // read-only so far: cheaper than computing the signature
	}
	m := sigMask(v.id)
	if ws.sig&m != m {
		return nil // signature miss: definitely not buffered
	}
	if i := ws.find(v); i >= 0 {
		return &ws.entries[i]
	}
	return nil
}

// PutWrite records a standard write of val to v, overwriting any previous
// entry and marking it as EntryWrite (Algorithm 6 line 51).
func (ws *WriteSet) PutWrite(v *Var, val int64) {
	m := sigMask(v.id)
	if ws.sig&m == m {
		if i := ws.find(v); i >= 0 {
			ws.entries[i].Val = val
			ws.entries[i].Kind = EntryWrite
			return
		}
	}
	ws.register(v, m)
	ws.entries = append(ws.entries, WriteEntry{Var: v, Val: val, Kind: EntryWrite})
}

// PutInc records an increment of v by delta. If an entry already exists the
// delta is accumulated over the entry's value without changing its kind
// (Algorithm 6 line 46); otherwise a fresh EntryInc is created (line 48).
func (ws *WriteSet) PutInc(v *Var, delta int64) {
	m := sigMask(v.id)
	if ws.sig&m == m {
		if i := ws.find(v); i >= 0 {
			ws.entries[i].Val += delta
			return
		}
	}
	ws.register(v, m)
	ws.entries = append(ws.entries, WriteEntry{Var: v, Val: delta, Kind: EntryInc})
}

// Promote rewrites the entry for v as a standard write of total, used when a
// read-after-write finds a pending increment (Algorithm 6 lines 19–21).
func (ws *WriteSet) Promote(v *Var, total int64) {
	i := -1
	if ws.MayContain(v) {
		i = ws.find(v)
	}
	if i < 0 {
		panic("core: Promote on variable not in write-set")
	}
	ws.entries[i].Val = total
	ws.entries[i].Kind = EntryWrite
}

// Entries exposes the ordered entries for write-back. Callers must not
// mutate the returned slice.
func (ws *WriteSet) Entries() []WriteEntry { return ws.entries }

// SemEntry is one element of a semantic read-set (S-NOrec) or compare-set
// (S-TL2): the recorded fact "Var Op Operand held when observed". Plain reads
// are recorded as OpEQ against the observed value. When OperandVar is
// non-nil the fact is the address–address form "*Var Op *OperandVar"
// (_ITM_S2R) and validation re-reads both sides.
type SemEntry struct {
	Var        *Var
	Op         Op // may carry semFlag; mask before evaluating
	Operand    int64
	OperandVar *Var
}

// semFlag marks an entry recorded by a semantic conditional, as opposed to a
// plain read's EQ pin — BrokenReason uses it to classify a failed validation
// as a cmp-flip rather than a read-set invalidation. The flag rides in the
// high bit of the Op byte instead of its own bool field: SemEntry has
// exactly four fields, the compiler's limit for SSA-decomposing a struct,
// and a fifth field would turn every read-set append from four register
// stores into a stack build plus memmove (~50% slower read barrier).
const semFlag Op = 0x80

// Semantic reports whether the entry was recorded by a semantic conditional.
func (e *SemEntry) Semantic() bool { return e.Op&semFlag != 0 }

// Holds re-evaluates the fact against current memory.
func (e *SemEntry) Holds() bool {
	operand := e.Operand
	if e.OperandVar != nil {
		operand = e.OperandVar.Load()
	}
	return (e.Op &^ semFlag).Eval(e.Var.Load(), operand)
}

// SemSet is an append-only log of semantic facts with an in-place validator.
//
// The eq* fields form a lazily-built duplicate index for HasEQ (the
// read-deduplication ablation): plain-read EQ facts are folded into a Bloom
// signature and an exact open-addressed table the first time HasEQ scans
// past them, making every later duplicate probe O(1) instead of a rescan of
// the whole log. Configurations that never call HasEQ — the default,
// matching the paper — pay nothing for the index.
type SemSet struct {
	entries   []SemEntry
	eqSig     uint64  // Bloom over indexed (var, value) pairs
	eqTable   []int32 // open-addressed: entry index+1, 0 = free slot
	eqMask    uint64  // len(eqTable)-1 (power of two)
	eqCount   int     // EQ facts indexed so far
	eqScanned int     // entries[:eqScanned] are folded into the index
	shrink    Shrinker
}

// semSetMinCap is the pre-sized capacity of a fresh (or freshly clamped)
// semantic set.
const semSetMinCap = 32

// eqHash mixes a (variable ID, observed value) pair into one 64-bit hash.
func eqHash(id uint64, val int64) uint64 {
	return (id ^ uint64(val)*0xBF58476D1CE4E5B9) * idMix
}

// NewSemSet returns an empty semantic set with pre-sized capacity.
func NewSemSet() *SemSet {
	return &SemSet{entries: make([]SemEntry, 0, semSetMinCap)}
}

// Reset empties the set, retaining capacity. The duplicate index is cleared
// (one memclr) only if a HasEQ call built it during the attempt. Retained
// capacity follows the high-water-mark shrink policy (see WriteSet.Reset):
// the entry log — read-sets grow by far the largest of the per-transaction
// containers — and the duplicate index are clamped back near the recent peak
// after ShrinkAfter consecutive small attempts.
func (s *SemSet) Reset() {
	used := len(s.entries)
	s.entries = s.entries[:0]
	if s.eqScanned > 0 {
		s.eqSig = 0
		s.eqCount = 0
		s.eqScanned = 0
		clear(s.eqTable)
	}
	if peak, ok := s.shrink.Note(used, cap(s.entries)); ok {
		s.clamp(peak)
	}
}

// clamp reallocates the (empty) set's backing memory for about 2×peak facts.
// The duplicate index, when one was ever built, is dropped outright — it is
// rebuilt lazily by the next HasEQ scan, sized for the live log.
func (s *SemSet) clamp(peak int) {
	s.entries = make([]SemEntry, 0, ShrinkCap(peak, semSetMinCap))
	s.eqTable, s.eqMask = nil, 0
}

// Len reports the number of recorded facts.
func (s *SemSet) Len() int { return len(s.entries) }

// Empty reports whether no fact has been recorded yet; S-TL2 uses this to
// detect whether it is still in phase 1.
func (s *SemSet) Empty() bool { return len(s.entries) == 0 }

// Append records the fact "v op operand".
func (s *SemSet) Append(v *Var, op Op, operand int64) {
	s.entries = append(s.entries, SemEntry{Var: v, Op: op, Operand: operand})
}

// AppendOutcome records a comparison whose observed outcome was result:
// the operator itself when true, its inverse when false (Algorithm 6
// line 34), so that validation always checks for a true expression.
func (s *SemSet) AppendOutcome(v *Var, op Op, operand int64, result bool) {
	if !result {
		op = op.Inverse()
	}
	s.entries = append(s.entries, SemEntry{Var: v, Op: op | semFlag, Operand: operand})
}

// AppendOutcomeVar records an address–address comparison "*a op *b" whose
// observed outcome was result, storing the inverse operator when false.
func (s *SemSet) AppendOutcomeVar(a *Var, op Op, b *Var, result bool) {
	if !result {
		op = op.Inverse()
	}
	s.entries = append(s.entries, SemEntry{Var: a, Op: op | semFlag, OperandVar: b})
}

// Entries exposes the recorded facts. Callers must not mutate the slice.
func (s *SemSet) Entries() []SemEntry { return s.entries }

// HasEQ reports whether an identical plain-read fact (v == val) is already
// recorded — the "overhead of discovering duplicates" the paper weighs
// against duplicate read-set entries; it exists for the
// read-set-deduplication ablation. Each fact is folded into the signature
// and exact index at most once, so the amortized probe cost is O(1): a
// signature miss answers with two ALU ops, a possible hit with a handful of
// table probes. (The previous implementation rescanned the whole log,
// making the dedup-on ablation measure O(n²) scan cost rather than dedup
// cost.)
func (s *SemSet) HasEQ(v *Var, val int64) bool {
	for ; s.eqScanned < len(s.entries); s.eqScanned++ {
		e := &s.entries[s.eqScanned]
		if e.Op != OpEQ || e.OperandVar != nil {
			continue
		}
		if (s.eqCount+1)*4 > len(s.eqTable)*3 {
			s.eqGrow()
		}
		h := eqHash(e.Var.id, e.Operand)
		s.eqInsert(h, int32(s.eqScanned+1))
		s.eqSig |= 1 << (h >> 58)
		s.eqCount++
	}
	h := eqHash(v.id, val)
	if s.eqSig&(1<<(h>>58)) == 0 {
		return false
	}
	for j := (h >> 32) & s.eqMask; ; j = (j + 1) & s.eqMask {
		slot := s.eqTable[j]
		if slot == 0 {
			return false
		}
		e := &s.entries[slot-1]
		if e.Var == v && e.Operand == val {
			return true // indexed entries are always plain EQ facts
		}
	}
}

// eqGrow (re)builds the duplicate index at double the size by rescanning the
// already-folded prefix.
func (s *SemSet) eqGrow() {
	n := 2 * len(s.eqTable)
	if n == 0 {
		n = 64
	}
	s.eqTable = make([]int32, n)
	s.eqMask = uint64(n - 1)
	for i := 0; i < s.eqScanned; i++ {
		e := &s.entries[i]
		if e.Op == OpEQ && e.OperandVar == nil {
			s.eqInsert(eqHash(e.Var.id, e.Operand), int32(i+1))
		}
	}
}

// eqInsert stores slot at the first free position of h's probe sequence.
func (s *SemSet) eqInsert(h uint64, slot int32) {
	for j := (h >> 32) & s.eqMask; ; j = (j + 1) & s.eqMask {
		if s.eqTable[j] == 0 {
			s.eqTable[j] = slot
			return
		}
	}
}

// HoldsNow re-evaluates every recorded fact against the current memory
// content and reports whether all still hold. This is the core of semantic
// validation (Algorithm 6 lines 4–6).
func (s *SemSet) HoldsNow() bool {
	for i := range s.entries {
		if !s.entries[i].Holds() {
			return false
		}
	}
	return true
}

// BrokenReason re-validates like HoldsNow and, on failure, classifies the
// first broken entry: ReasonValidation for a plain read's EQ pin,
// ReasonCmpFlip for a recorded semantic fact. ok is true when every fact
// still holds (reason is then meaningless).
func (s *SemSet) BrokenReason() (ok bool, reason Reason) {
	for i := range s.entries {
		if !s.entries[i].Holds() {
			if s.entries[i].Semantic() {
				return false, ReasonCmpFlip
			}
			return false, ReasonValidation
		}
	}
	return true, ReasonUnknown
}
