package core

// EntryKind distinguishes the two kinds of write-set entries of the semantic
// algorithms: a standard buffered write and a deferred increment (Section 4:
// "a flag is added to each write-set entry to indicate whether it stores a
// standard write or an increment").
type EntryKind uint8

const (
	// EntryWrite is a buffered write; Val holds the value to store.
	EntryWrite EntryKind = iota
	// EntryInc is a deferred increment; Val holds the accumulated delta to
	// add to the memory content at commit time.
	EntryInc
)

// WriteEntry is one element of a transaction's write-set.
type WriteEntry struct {
	Var  *Var
	Val  int64
	Kind EntryKind
}

// WriteSet is the redo-log of a transaction. It preserves insertion order for
// write-back and offers O(1) lookup for read-after-write handling. The merge
// rules of Algorithm 6 (lines 44–52) are implemented by PutWrite and PutInc:
//
//   - write after write/inc: overwrite the value, set kind to EntryWrite;
//   - inc after write/inc: accumulate the delta, keep the entry's kind.
type WriteSet struct {
	entries []WriteEntry
	index   map[*Var]int
}

// NewWriteSet returns an empty write-set with some pre-sized capacity.
func NewWriteSet() *WriteSet {
	return &WriteSet{
		entries: make([]WriteEntry, 0, 16),
		index:   make(map[*Var]int, 16),
	}
}

// Reset empties the write-set, retaining capacity for reuse across attempts.
func (ws *WriteSet) Reset() {
	ws.entries = ws.entries[:0]
	clear(ws.index)
}

// Len reports the number of distinct variables in the write-set.
func (ws *WriteSet) Len() int { return len(ws.entries) }

// Get returns a pointer to the entry for v, or nil if v is not in the set.
// The pointer stays valid until the next Put or Reset.
func (ws *WriteSet) Get(v *Var) *WriteEntry {
	if i, ok := ws.index[v]; ok {
		return &ws.entries[i]
	}
	return nil
}

// PutWrite records a standard write of val to v, overwriting any previous
// entry and marking it as EntryWrite (Algorithm 6 line 51).
func (ws *WriteSet) PutWrite(v *Var, val int64) {
	if i, ok := ws.index[v]; ok {
		ws.entries[i].Val = val
		ws.entries[i].Kind = EntryWrite
		return
	}
	ws.index[v] = len(ws.entries)
	ws.entries = append(ws.entries, WriteEntry{Var: v, Val: val, Kind: EntryWrite})
}

// PutInc records an increment of v by delta. If an entry already exists the
// delta is accumulated over the entry's value without changing its kind
// (Algorithm 6 line 46); otherwise a fresh EntryInc is created (line 48).
func (ws *WriteSet) PutInc(v *Var, delta int64) {
	if i, ok := ws.index[v]; ok {
		ws.entries[i].Val += delta
		return
	}
	ws.index[v] = len(ws.entries)
	ws.entries = append(ws.entries, WriteEntry{Var: v, Val: delta, Kind: EntryInc})
}

// Promote rewrites the entry for v as a standard write of total, used when a
// read-after-write finds a pending increment (Algorithm 6 lines 19–21).
func (ws *WriteSet) Promote(v *Var, total int64) {
	i, ok := ws.index[v]
	if !ok {
		panic("core: Promote on variable not in write-set")
	}
	ws.entries[i].Val = total
	ws.entries[i].Kind = EntryWrite
}

// Entries exposes the ordered entries for write-back. Callers must not
// mutate the returned slice.
func (ws *WriteSet) Entries() []WriteEntry { return ws.entries }

// SemEntry is one element of a semantic read-set (S-NOrec) or compare-set
// (S-TL2): the recorded fact "Var Op Operand held when observed". Plain reads
// are recorded as OpEQ against the observed value. When OperandVar is
// non-nil the fact is the address–address form "*Var Op *OperandVar"
// (_ITM_S2R) and validation re-reads both sides.
type SemEntry struct {
	Var        *Var
	Op         Op
	Operand    int64
	OperandVar *Var
}

// Holds re-evaluates the fact against current memory.
func (e *SemEntry) Holds() bool {
	operand := e.Operand
	if e.OperandVar != nil {
		operand = e.OperandVar.Load()
	}
	return e.Op.Eval(e.Var.Load(), operand)
}

// SemSet is an append-only log of semantic facts with an in-place validator.
type SemSet struct {
	entries []SemEntry
}

// NewSemSet returns an empty semantic set with pre-sized capacity.
func NewSemSet() *SemSet {
	return &SemSet{entries: make([]SemEntry, 0, 32)}
}

// Reset empties the set, retaining capacity.
func (s *SemSet) Reset() { s.entries = s.entries[:0] }

// Len reports the number of recorded facts.
func (s *SemSet) Len() int { return len(s.entries) }

// Empty reports whether no fact has been recorded yet; S-TL2 uses this to
// detect whether it is still in phase 1.
func (s *SemSet) Empty() bool { return len(s.entries) == 0 }

// Append records the fact "v op operand".
func (s *SemSet) Append(v *Var, op Op, operand int64) {
	s.entries = append(s.entries, SemEntry{Var: v, Op: op, Operand: operand})
}

// AppendOutcome records a comparison whose observed outcome was result:
// the operator itself when true, its inverse when false (Algorithm 6
// line 34), so that validation always checks for a true expression.
func (s *SemSet) AppendOutcome(v *Var, op Op, operand int64, result bool) {
	if !result {
		op = op.Inverse()
	}
	s.entries = append(s.entries, SemEntry{Var: v, Op: op, Operand: operand})
}

// AppendOutcomeVar records an address–address comparison "*a op *b" whose
// observed outcome was result, storing the inverse operator when false.
func (s *SemSet) AppendOutcomeVar(a *Var, op Op, b *Var, result bool) {
	if !result {
		op = op.Inverse()
	}
	s.entries = append(s.entries, SemEntry{Var: a, Op: op, OperandVar: b})
}

// Entries exposes the recorded facts. Callers must not mutate the slice.
func (s *SemSet) Entries() []SemEntry { return s.entries }

// HasEQ reports whether an identical plain-read fact (v == val) is already
// recorded. The linear scan is the "overhead of discovering duplicates" the
// paper weighs against duplicate read-set entries; it exists for the
// read-set-deduplication ablation.
func (s *SemSet) HasEQ(v *Var, val int64) bool {
	for i := range s.entries {
		e := &s.entries[i]
		if e.Var == v && e.Op == OpEQ && e.OperandVar == nil && e.Operand == val {
			return true
		}
	}
	return false
}

// HoldsNow re-evaluates every recorded fact against the current memory
// content and reports whether all still hold. This is the core of semantic
// validation (Algorithm 6 lines 4–6).
func (s *SemSet) HoldsNow() bool {
	for i := range s.entries {
		if !s.entries[i].Holds() {
			return false
		}
	}
	return true
}
