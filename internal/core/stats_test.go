package core

import (
	"sync"
	"testing"
)

// TestStatsShardsFoldIntoSnapshot: counters folded through registered shards
// by concurrent workers must sum exactly in Snapshot, together with the
// compatibility Merge path.
func TestStatsShardsFoldIntoSnapshot(t *testing.T) {
	var s Stats
	const workers = 7 // not a divisor of numShards: exercises round-robin
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sh := s.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ts := TxStats{Reads: 2, Writes: 1, Incs: 3}
				sh.Merge(&ts, i%5 != 0)
			}
		}()
	}
	wg.Wait()
	s.Merge(&TxStats{Compares: 9}, true) // slow-path fallback

	sn := s.Snapshot()
	total := uint64(workers * perWorker)
	if sn.Commits+sn.Aborts != total+1 {
		t.Fatalf("commits+aborts = %d, want %d", sn.Commits+sn.Aborts, total+1)
	}
	if sn.Aborts != total/5 {
		t.Fatalf("aborts = %d, want %d", sn.Aborts, total/5)
	}
	if sn.Reads != 2*total || sn.Writes != total || sn.Incs != 3*total || sn.Compares != 9 {
		t.Fatalf("op counters wrong: %+v", sn)
	}
}

// TestStatsRegisterWraps: registrations beyond the shard pool share shards
// rather than failing or allocating.
func TestStatsRegisterWraps(t *testing.T) {
	var s Stats
	first := s.Register()
	for i := 1; i < numShards; i++ {
		s.Register()
	}
	if s.Register() != first {
		t.Fatal("registration numShards+1 must wrap to the first shard")
	}
}
