package core

// TxImpl is the algorithm-facing transaction interface. Each STM algorithm
// (NOrec, S-NOrec, TL2, S-TL2, single-global-lock) provides a concrete
// implementation; the public stm package wraps a TxImpl in a user-facing Tx.
//
// All methods except Commit may be called only between Start and
// Commit/abort. Methods signal an abort by panicking with the sentinel of
// Abort; the runtime retry loop recovers it.
type TxImpl interface {
	// Start begins a fresh attempt, resetting all per-attempt state.
	Start()

	// Read is the classical TM_READ barrier.
	Read(v *Var) int64

	// Write is the classical TM_WRITE barrier.
	Write(v *Var, val int64)

	// Cmp executes the semantic conditional "*v op operand" (address–value
	// form) and returns its outcome. Non-semantic algorithms delegate to
	// Read and evaluate the condition locally.
	Cmp(v *Var, op Op, operand int64) bool

	// CmpVars executes the address–address conditional "*a op *b"
	// (the _ITM_S2R form). Semantic algorithms record a single two-address
	// fact whose validation re-reads both sides (the "straightforward
	// extension" Section 4 of the paper describes); baselines delegate to
	// two classical reads.
	CmpVars(a *Var, op Op, b *Var) bool

	// Inc executes the semantic increment "*v += delta" (TM_INC/TM_DEC;
	// delta may be negative). Non-semantic algorithms delegate to
	// Read followed by Write.
	Inc(v *Var, delta int64)

	// CmpSum evaluates the arithmetic conditional "(Σ *vars) op rhs" — the
	// complex-expression extension of the paper's technical report.
	// Algorithms without native expression support delegate to classical
	// reads (or per-clause semantics where possible).
	CmpSum(op Op, rhs int64, vars []*Var) bool

	// CmpAny evaluates the composed condition "c1 || c2 || ..." as one
	// semantic unit where supported, so clause-level changes that keep the
	// disjunction's outcome do not invalidate the transaction.
	CmpAny(conds []Cond) bool

	// Commit attempts to make the transaction's effects visible. On
	// success it returns normally; on validation failure it aborts by
	// panicking with the sentinel.
	Commit()

	// Cleanup releases any resources (e.g. orec locks) held by a failed
	// attempt. The runtime calls it after recovering an abort; it must be
	// idempotent.
	Cleanup()

	// AttemptStats exposes the per-attempt operation counters.
	AttemptStats() *TxStats

	// SetFaultPlan arms (non-nil) or disarms (nil) deterministic fault
	// injection on this descriptor's Start/Read/Cmp/Commit and validation
	// paths. The runtime disarms the plan while a transaction runs in the
	// irrevocable escalation mode, which must not abort.
	SetFaultPlan(*FaultPlan)
}

// TwoPhase is the decomposed commit a sharded runtime drives when one
// transaction spans several engine instances (DESIGN.md §11). A descriptor
// implementing it splits Commit into:
//
//	Prepare  — acquire this instance's commit locks (orec write locks,
//	           the seqlock) with bounded waiting, aborting via the usual
//	           panic sentinel on timeout or conflict. After Prepare returns,
//	           no other transaction can commit into this instance until
//	           Publish or Cleanup runs.
//	Validate — with every participating instance prepared (so the global
//	           write-set is locked), re-validate this instance's reads,
//	           compare-sets, and deferred-increment preconditions against
//	           its per-shard start version. Aborts via the sentinel; must
//	           leave held locks for Cleanup to release.
//	Validate may also be called while the transaction is still live (no
//	           locks held) to re-certify the instance's snapshot after a
//	           cross-shard commit elsewhere; implementations extend their
//	           snapshot where the algorithm allows it.
//	Publish  — write back, advance this instance's clock, and release the
//	           locks. Must not fail: every failure mode belongs to Prepare
//	           or Validate.
//
// A failed Prepare/Validate unwinds through the runtime, which calls Cleanup
// on every participant; Cleanup must therefore release whatever Prepare
// acquired (in addition to its usual duties).
type TwoPhase interface {
	Prepare()
	Validate()
	Publish()
}

// BatchNoter is the optional accounting hook for batch execution
// (stm.AtomicallyBatch): a descriptor implementing it is told, after each
// successful commit that folded several logical transactions into one engine
// commit, how many units the commit carried. Sharded descriptors attribute
// the units to the shards the attempt touched, making the coalescing
// amortization factor visible in ShardSnapshot.
type BatchNoter interface {
	NoteBatch(units int)
}
