package core

import (
	"fmt"
	"sort"
	"sync"
)

// EngineID identifies one registered STM engine. The public stm.Algorithm
// type is an alias of EngineID, so the same values select engines at the
// facade and index the registry here. IDs are stable across releases: the
// committed BENCH_*.json baselines and the CLI flags refer to engines by the
// names registered under these IDs.
type EngineID int

// The registered engine identifiers. The first nine preserve the numeric
// values of the pre-registry stm.Algorithm constants; EngineAdaptive is the
// composite policy engine that switches between concrete engines online.
// The progressive HyTM pair is appended after it — numeric values only ever
// grow, since the committed BENCH_*.json baselines refer to engines by name
// but the IDs index fixed-size arrays throughout the runtime.
const (
	EngineNOrec EngineID = iota
	EngineSNOrec
	EngineTL2
	EngineSTL2
	EngineSGL
	EngineHTM
	EngineSHTM
	EngineRing
	EngineSRing
	EngineAdaptive
	// EngineHyTM is the progressive hybrid engine (DESIGN.md §13): an
	// uninstrumented hardware fast path, an instrumented hardware middle
	// path, and a software slow path, with typed-abort-driven demotion.
	EngineHyTM
	// EngineHyTMMid is the same engine with the fast path forced off — every
	// hardware attempt starts on the instrumented middle path. It is the
	// instrumentation-cost ablation cell the EXPERIMENTS.md table compares
	// EngineHyTM against.
	EngineHyTMMid
	// NumEngines bounds the enum; arrays indexed by EngineID use it.
	NumEngines
)

// TxConfig carries the per-descriptor tuning knobs from a runtime to an
// engine's descriptor constructor. Engines apply the fields they understand
// and ignore the rest, so one config type serves every registered engine.
// Callers fill every field they care about: values are applied literally
// (a zero HTMSpurious disables spurious aborts, it does not mean "default").
type TxConfig struct {
	// DedupReads enables read-after-read de-duplication (NOrec family).
	DedupReads bool
	// NoExtend disables S-TL2's phase-1 snapshot extension (TL2 family).
	NoExtend bool
	// HTMCapacity, HTMRetries, HTMSpurious tune the simulated hardware
	// (HTM family).
	HTMCapacity int
	HTMRetries  int
	HTMSpurious float64
	// NoIrrevocable disables an engine's in-engine irrevocable fallback
	// (HTM family). Sharded runtimes set it: an irrevocable attempt writes
	// in place, which cannot roll back when another shard's Prepare aborts
	// a cross-shard commit, so under sharding the hybrid engines retry on
	// their software slow path and progress comes from the runtime-level
	// escalation gate instead.
	NoIrrevocable bool
	// Seed decorrelates descriptor-local RNG streams (HTM family).
	Seed int64
}

// Engine is one instantiated STM engine: the algorithm's shared global
// metadata (sequence lock, version clock, orec table, ring) behind a uniform
// constructor-and-health interface. A Runtime owns one Engine per concrete
// algorithm it runs; independent Engine instances do not synchronize with
// each other.
type Engine interface {
	// NewTx returns a fresh transaction descriptor bound to this engine
	// instance, configured from cfg.
	NewTx(cfg TxConfig) TxImpl
	// Quiescent verifies, at a point where no transaction is in flight,
	// that the engine's global metadata holds no leaked resources.
	Quiescent() error
}

// EngineDesc describes one registered engine: its identity, its capability
// flags, and its constructor. The flags replace the per-algorithm switch
// statements the facade used to carry — consumers ask the descriptor instead
// of enumerating algorithms.
type EngineDesc struct {
	// ID is the engine's registry key (and its stm.Algorithm value).
	ID EngineID
	// Name is the conventional display name ("S-NOrec", "TL2", ...).
	Name string
	// DisplayOrder sorts engines in report tables (paper order: baseline
	// before its semantic extension, software families before hardware).
	DisplayOrder int
	// Semantic reports whether the engine executes the semantic primitives
	// natively (true) or delegates them to classical barriers (false).
	Semantic bool
	// ComposedFacts reports whether CmpSum/CmpAny are recorded as single
	// composed facts (clause flips that preserve the outcome do not abort).
	ComposedFacts bool
	// Irrevocable reports whether the engine serializes transactions so a
	// running transaction can never abort (SGL-style).
	Irrevocable bool
	// HTMBacked reports whether the engine runs on the simulated best-effort
	// hardware path.
	HTMBacked bool
	// ProgressiveHTM reports whether the engine implements the three-path
	// progressive HyTM structure (uninstrumented fast path, instrumented
	// middle path, software slow path) with typed-abort demotion — the
	// capability the adaptive policy's capacity-escalation rule and the
	// hybrid benchmark grid key on.
	ProgressiveHTM bool
	// TwoPhase reports whether the engine's descriptors implement the
	// core.TwoPhase decomposed commit, the capability a sharded runtime
	// needs to commit transactions that span engine instances. Engines
	// without it can still be sharded when they are Irrevocable (a single
	// serializing instance backs every shard).
	TwoPhase bool
	// Composite marks a policy engine that runs by delegating to other
	// registered engines (Adaptive). Composite descriptors have no
	// constructor of their own: New is nil and the facade provides the
	// composition.
	Composite bool
	// New constructs a fresh engine instance (nil iff Composite).
	New func() Engine
}

// engineRegistry holds the registered descriptors. Registration happens in
// package init functions (each backend package registers its engines), but
// the mutex keeps the registry safe for late or test-time registration too.
var engineRegistry struct {
	mu    sync.Mutex
	byID  map[EngineID]EngineDesc
	names map[string]EngineID
}

// RegisterEngine adds an engine descriptor to the registry. It panics on an
// out-of-range ID, a duplicate ID or name, or a descriptor whose constructor
// disagrees with its Composite flag — registration bugs are programmer
// errors that must fail loudly at init time, not surface as missing table
// rows later.
func RegisterEngine(d EngineDesc) {
	if d.ID < 0 || d.ID >= NumEngines {
		panic(fmt.Sprintf("core: engine id %d out of range", int(d.ID)))
	}
	if d.Name == "" {
		panic(fmt.Sprintf("core: engine %d registered without a name", int(d.ID)))
	}
	if d.Composite != (d.New == nil) {
		panic(fmt.Sprintf("core: engine %q: exactly the composite engines have no constructor", d.Name))
	}
	engineRegistry.mu.Lock()
	defer engineRegistry.mu.Unlock()
	if engineRegistry.byID == nil {
		engineRegistry.byID = make(map[EngineID]EngineDesc, NumEngines)
		engineRegistry.names = make(map[string]EngineID, NumEngines)
	}
	if prev, dup := engineRegistry.byID[d.ID]; dup {
		panic(fmt.Sprintf("core: engine id %d registered twice (%q, %q)", int(d.ID), prev.Name, d.Name))
	}
	if prev, dup := engineRegistry.names[d.Name]; dup {
		panic(fmt.Sprintf("core: engine name %q registered twice (ids %d, %d)", d.Name, int(prev), int(d.ID)))
	}
	engineRegistry.byID[d.ID] = d
	engineRegistry.names[d.Name] = d.ID
}

// EngineFor returns the descriptor registered under id.
func EngineFor(id EngineID) (EngineDesc, bool) {
	engineRegistry.mu.Lock()
	defer engineRegistry.mu.Unlock()
	d, ok := engineRegistry.byID[id]
	return d, ok
}

// Engines lists every registered engine descriptor in display order.
func Engines() []EngineDesc {
	engineRegistry.mu.Lock()
	out := make([]EngineDesc, 0, len(engineRegistry.byID))
	for _, d := range engineRegistry.byID {
		out = append(out, d)
	}
	engineRegistry.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DisplayOrder < out[j].DisplayOrder })
	return out
}

// String returns the registered name of the engine, or a default marker for
// unregistered values (the registry-exhaustiveness test asserts no selectable
// engine ever prints the default form).
func (id EngineID) String() string {
	if d, ok := EngineFor(id); ok {
		return d.Name
	}
	return fmt.Sprintf("Algorithm(%d)", int(id))
}

// Semantic reports whether the engine executes the semantic primitives
// natively (composite engines report true when their candidate set does).
func (id EngineID) Semantic() bool {
	d, ok := EngineFor(id)
	return ok && d.Semantic
}
