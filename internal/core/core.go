// Package core defines the shared building blocks of the semantic software
// transactional memory (STM) runtime: transactional variables, semantic
// comparison operators, read/compare/write sets, abort signalling, and the
// algorithm-facing transaction interface.
//
// The package reproduces the low-level machinery described in "Extending TM
// Primitives using Low Level Semantics" (SPAA 2016). Concrete STM algorithms
// (NOrec, S-NOrec, TL2, S-TL2, and a single-global-lock baseline) live in
// sibling packages and implement the TxImpl interface declared here; the
// public facade is package stm at the repository root.
package core
