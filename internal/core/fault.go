package core

import (
	"sync/atomic"
	"time"
)

// FaultSite identifies an instrumentation point inside the algorithm
// backends where a FaultPlan may inject a fault. Every backend consults the
// plan (when one is armed) at its Start, Read, Cmp, and Commit paths, plus
// inside its validation routines via ValidationFail.
type FaultSite uint8

const (
	// SiteStart is the beginning of an attempt.
	SiteStart FaultSite = iota
	// SiteRead is the classical read barrier.
	SiteRead
	// SiteCmp is the semantic compare barrier.
	SiteCmp
	// SiteCommit is the commit path, before publication.
	SiteCommit
	// NumFaultSites bounds the enum.
	NumFaultSites
)

// FaultPlan deterministically injects faults into the algorithm backends: at
// each instrumented site it may raise a spurious abort, force a validation
// failure, or stretch the commit window with a delay. All decisions derive
// from one seed through a counter-keyed splitmix64 stream, so a
// single-threaded run replays identically and a concurrent run is
// statistically reproducible. The zero probability everywhere means the plan
// never fires; a nil *FaultPlan (the default — backends keep a nil pointer
// and branch around the call) costs exactly one pointer test per barrier.
//
// Configure before the runtime is shared:
//
//	plan := core.NewFaultPlan(42).
//		WithSpurious(core.SiteRead, 10).
//		WithValidationFail(5).
//		WithCommitDelay(20, 50*time.Microsecond)
//
// FaultPlan methods are safe for concurrent use.
type FaultPlan struct {
	seed     uint64
	ctr      atomic.Uint64
	spurious [NumFaultSites]uint64 // 32-bit thresholds: P(hit) = t / 2^32
	valFail  uint64
	delayHit uint64
	delay    time.Duration
}

// NewFaultPlan returns an inert plan (no injection anywhere) rooted at seed.
func NewFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{seed: seed}
}

// threshold converts a percentage into a 32-bit comparison threshold.
func threshold(pct float64) uint64 {
	if pct <= 0 {
		return 0
	}
	if pct >= 100 {
		return 1 << 32
	}
	return uint64(pct / 100 * (1 << 32))
}

// WithSpurious arms spurious-abort injection at the given site with the
// given probability (percent). Returns the plan for chaining.
func (p *FaultPlan) WithSpurious(site FaultSite, pct float64) *FaultPlan {
	p.spurious[site] = threshold(pct)
	return p
}

// WithValidationFail arms forced validation failures: each backend
// validation pass fails outright with the given probability (percent),
// exercising the abort-with-rollback path with read/compare sets and — at
// commit time — acquired locks in place.
func (p *FaultPlan) WithValidationFail(pct float64) *FaultPlan {
	p.valFail = threshold(pct)
	return p
}

// WithCommitDelay arms commit-window stretching: with the given probability
// (percent) the committing transaction sleeps for d at its serialization
// point, widening the race windows concurrent transactions validate against.
func (p *FaultPlan) WithCommitDelay(pct float64, d time.Duration) *FaultPlan {
	p.delayHit = threshold(pct)
	p.delay = d
	return p
}

// splitmix64 is the SplitMix64 output function: a bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll draws the next 32-bit variate of the seeded stream and compares it to
// the threshold t; the site is folded in so identical thresholds at
// different sites fire on decorrelated sub-streams.
func (p *FaultPlan) roll(site FaultSite, t uint64) bool {
	if t == 0 {
		return false
	}
	x := splitmix64(p.seed + p.ctr.Add(1)*0x9E3779B97F4A7C15 + uint64(site)<<56)
	return x&0xFFFFFFFF < t
}

// Step is the per-site injection hook. If the spurious stream fires for this
// site, the attempt unwinds via AbortWith(ReasonSpurious). Callers hold no
// resources the runtime's Cleanup cannot release.
func (p *FaultPlan) Step(site FaultSite) {
	if p.SpuriousHit(site) {
		AbortWith(ReasonSpurious)
	}
}

// SpuriousHit reports whether the spurious stream fires for site without
// unwinding, for backends that fold injected faults into their own failure
// accounting (the HTM simulation counts them as hardware failures so its
// lock fallback still engages).
func (p *FaultPlan) SpuriousHit(site FaultSite) bool {
	return p.roll(site, p.spurious[site])
}

// ValidationFail reports whether this validation pass must be treated as
// failed. Backends call it at the head of their read-set/compare-set
// validators and abort with the reason that a genuine failure of that
// validator would carry.
func (p *FaultPlan) ValidationFail() bool {
	return p.roll(NumFaultSites, p.valFail)
}

// CommitDelay stalls the caller at its commit serialization point when the
// delay stream fires.
func (p *FaultPlan) CommitDelay() {
	if p.roll(NumFaultSites+1, p.delayHit) {
		time.Sleep(p.delay)
	}
}
