package core

import (
	"sync/atomic"
	"time"
)

// FaultSite identifies an instrumentation point inside the algorithm
// backends where a FaultPlan may inject a fault. Every backend consults the
// plan (when one is armed) at its Start, Read, Cmp, and Commit paths, plus
// inside its validation routines via ValidationFail.
type FaultSite uint8

const (
	// SiteStart is the beginning of an attempt.
	SiteStart FaultSite = iota
	// SiteRead is the classical read barrier.
	SiteRead
	// SiteCmp is the semantic compare barrier.
	SiteCmp
	// SiteCommit is the commit path, before publication.
	SiteCommit
	// NumFaultSites bounds the enum.
	NumFaultSites
)

// CrashSite identifies a crash-injection point on the durable commit
// pipeline (internal/wal and the sharded commit that drives it). Unlike the
// probabilistic FaultSites, a crash fires deterministically on the Nth
// consult of its site (WithCrash) and simulates process death: the write-
// ahead log freezes its on-disk state exactly as a dying process would leave
// it, and the attempt unwinds with the crash sentinel (CrashPanic) instead
// of the retryable abort signal.
type CrashSite uint8

const (
	// CrashPreFsync crashes after the commit records were written but before
	// the fsync: everything since the last completed fsync is lost, the
	// worst case the interval and none policies admit.
	CrashPreFsync CrashSite = iota
	// CrashTornWrite crashes midway through writing a commit record: a
	// prefix of the record reaches the disk (and is even fsynced), leaving a
	// torn tail that recovery must detect by CRC and truncate.
	CrashTornWrite
	// CrashPostFsyncPrePublish crashes after the commit records are durable
	// but before the in-memory publish (for cross-shard commits: before the
	// ticket advance). Recovery must replay the fully-logged transaction —
	// it validated with every lock held, so applying it is a legal serial
	// extension — and the observable state must be exactly all-or-nothing.
	CrashPostFsyncPrePublish
	// NumCrashSites bounds the enum.
	NumCrashSites
)

// String returns a short stable label for the crash site.
func (s CrashSite) String() string {
	switch s {
	case CrashPreFsync:
		return "pre-fsync"
	case CrashTornWrite:
		return "torn-write"
	case CrashPostFsyncPrePublish:
		return "post-fsync-pre-publish"
	default:
		return "invalid"
	}
}

// The observation-counter index space: the per-barrier fault sites, then the
// validation and commit-delay streams, then the crash sites.
const (
	obsValidation  = int(NumFaultSites)
	obsCommitDelay = obsValidation + 1
	obsCrashBase   = obsCommitDelay + 1
	numObsSites    = obsCrashBase + int(NumCrashSites)
)

// FaultSiteNames lists the stable label of every injection point a FaultPlan
// instruments — the barrier fault sites, the validation and commit-delay
// streams, and the crash sites — in observation-counter order. The
// site-exhaustiveness test asserts each one is consulted by at least one
// suite, so dead injection points are caught as the site list grows.
func FaultSiteNames() []string {
	return []string{
		"start", "read", "cmp", "commit",
		"validation", "commit-delay",
		"crash:" + CrashPreFsync.String(),
		"crash:" + CrashTornWrite.String(),
		"crash:" + CrashPostFsyncPrePublish.String(),
	}
}

// FaultPlan deterministically injects faults into the algorithm backends: at
// each instrumented site it may raise a spurious abort, force a validation
// failure, or stretch the commit window with a delay. All decisions derive
// from one seed through a counter-keyed splitmix64 stream, so a
// single-threaded run replays identically and a concurrent run is
// statistically reproducible. The zero probability everywhere means the plan
// never fires; a nil *FaultPlan (the default — backends keep a nil pointer
// and branch around the call) costs exactly one pointer test per barrier.
//
// Configure before the runtime is shared:
//
//	plan := core.NewFaultPlan(42).
//		WithSpurious(core.SiteRead, 10).
//		WithValidationFail(5).
//		WithCommitDelay(20, 50*time.Microsecond)
//
// On durable runtimes the plan additionally drives crash injection
// (WithCrash): the Nth consult of the armed crash site simulates process
// death on the write-ahead log.
//
// FaultPlan methods are safe for concurrent use.
type FaultPlan struct {
	seed     uint64
	ctr      atomic.Uint64
	spurious [NumFaultSites]uint64 // 32-bit thresholds: P(hit) = t / 2^32
	valFail  uint64
	delayHit uint64
	delay    time.Duration

	// Crash injection: the armed site, a countdown of consults before it
	// fires (deterministic, not probabilistic — a crash must land on one
	// reproducible commit), and the latched crashed flag.
	crashArmed bool
	crashSite  CrashSite
	crashLeft  atomic.Int64
	crashed    atomic.Bool

	// seen counts how many times each instrumented site consulted the plan
	// (whether or not anything fired); the site-exhaustiveness test reads it
	// to prove every registered injection point is reachable.
	seen [numObsSites]atomic.Uint64
}

// NewFaultPlan returns an inert plan (no injection anywhere) rooted at seed.
func NewFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{seed: seed}
}

// threshold converts a percentage into a 32-bit comparison threshold.
func threshold(pct float64) uint64 {
	if pct <= 0 {
		return 0
	}
	if pct >= 100 {
		return 1 << 32
	}
	return uint64(pct / 100 * (1 << 32))
}

// WithSpurious arms spurious-abort injection at the given site with the
// given probability (percent). Returns the plan for chaining.
func (p *FaultPlan) WithSpurious(site FaultSite, pct float64) *FaultPlan {
	p.spurious[site] = threshold(pct)
	return p
}

// WithValidationFail arms forced validation failures: each backend
// validation pass fails outright with the given probability (percent),
// exercising the abort-with-rollback path with read/compare sets and — at
// commit time — acquired locks in place.
func (p *FaultPlan) WithValidationFail(pct float64) *FaultPlan {
	p.valFail = threshold(pct)
	return p
}

// WithCommitDelay arms commit-window stretching: with the given probability
// (percent) the committing transaction sleeps for d at its serialization
// point, widening the race windows concurrent transactions validate against.
func (p *FaultPlan) WithCommitDelay(pct float64, d time.Duration) *FaultPlan {
	p.delayHit = threshold(pct)
	p.delay = d
	return p
}

// WithCrash arms deterministic crash injection: the afterN-th consult of
// site (1-based) simulates process death on the durable commit pipeline.
// Exactly one site may be armed per plan — a real crash happens once.
func (p *FaultPlan) WithCrash(site CrashSite, afterN int64) *FaultPlan {
	if afterN < 1 {
		afterN = 1
	}
	p.crashArmed = true
	p.crashSite = site
	p.crashLeft.Store(afterN)
	return p
}

// CrashHit reports whether the armed crash fires at this consult of site.
// The caller (the WAL writer or the sharded commit) then freezes its durable
// state and unwinds via CrashPanic. Once fired, the plan stays Crashed and
// never fires again.
func (p *FaultPlan) CrashHit(site CrashSite) bool {
	p.seen[obsCrashBase+int(site)].Add(1)
	if !p.crashArmed || site != p.crashSite || p.crashed.Load() {
		return false
	}
	if p.crashLeft.Add(-1) == 0 {
		p.crashed.Store(true)
		return true
	}
	return false
}

// Crashed reports whether the armed crash has fired — the chaos suites poll
// it to stop the world once the simulated process death happened.
func (p *FaultPlan) Crashed() bool { return p.crashed.Load() }

// SiteObservations returns how many times each instrumented site consulted
// the plan, keyed by the FaultSiteNames labels.
func (p *FaultPlan) SiteObservations() map[string]uint64 {
	names := FaultSiteNames()
	out := make(map[string]uint64, len(names))
	for i, n := range names {
		out[n] = p.seen[i].Load()
	}
	return out
}

// splitmix64 is the SplitMix64 output function: a bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll draws the next 32-bit variate of the seeded stream and compares it to
// the threshold t; the site is folded in so identical thresholds at
// different sites fire on decorrelated sub-streams.
func (p *FaultPlan) roll(site FaultSite, t uint64) bool {
	if t == 0 {
		return false
	}
	x := splitmix64(p.seed + p.ctr.Add(1)*0x9E3779B97F4A7C15 + uint64(site)<<56)
	return x&0xFFFFFFFF < t
}

// Step is the per-site injection hook. If the spurious stream fires for this
// site, the attempt unwinds via AbortWith(ReasonSpurious). Callers hold no
// resources the runtime's Cleanup cannot release.
func (p *FaultPlan) Step(site FaultSite) {
	if p.SpuriousHit(site) {
		AbortWith(ReasonSpurious)
	}
}

// SpuriousHit reports whether the spurious stream fires for site without
// unwinding, for backends that fold injected faults into their own failure
// accounting (the HTM simulation counts them as hardware failures so its
// lock fallback still engages).
func (p *FaultPlan) SpuriousHit(site FaultSite) bool {
	p.seen[site].Add(1)
	return p.roll(site, p.spurious[site])
}

// ValidationFail reports whether this validation pass must be treated as
// failed. Backends call it at the head of their read-set/compare-set
// validators and abort with the reason that a genuine failure of that
// validator would carry.
func (p *FaultPlan) ValidationFail() bool {
	p.seen[obsValidation].Add(1)
	return p.roll(NumFaultSites, p.valFail)
}

// CommitDelay stalls the caller at its commit serialization point when the
// delay stream fires.
func (p *FaultPlan) CommitDelay() {
	p.seen[obsCommitDelay].Add(1)
	if p.roll(NumFaultSites+1, p.delayHit) {
		time.Sleep(p.delay)
	}
}

// crashSignal is the sentinel carried by the panic that unwinds a simulated
// process crash. It is deliberately NOT the abort sentinel: the runtime's
// retry loop re-throws it after rolling the attempt back, so the "dead"
// worker goroutine surfaces the crash to the chaos harness instead of
// retrying on a log that will never accept another byte.
type crashSignal struct{ site CrashSite }

// CrashPanic unwinds the current attempt as a simulated process death at the
// given crash site. The runtime cleans the attempt up (releasing in-memory
// locks so the surviving test process stays usable) and re-panics; recovery
// correctness is judged purely on the bytes the log froze on disk.
func CrashPanic(site CrashSite) {
	panic(crashSignal{site: site})
}

// IsCrash reports whether a recovered panic value is the simulated-crash
// sentinel, and at which site the crash fired.
func IsCrash(r any) (CrashSite, bool) {
	s, ok := r.(crashSignal)
	return s.site, ok
}
