package txds

import (
	"testing"

	"semstm/stm"
)

// TestChainTableAbortChurnBounded drives inserts through a fault plan that
// aborts half the commit attempts and asserts the node pool's high-water mark
// stays at one node per committed insert: every aborted attempt's allocation
// came back through the abort hook, so abort churn does not grow the pool.
// Before the transaction-aware allocator, each aborted insert leaked a node
// and this workload needed ~2x the capacity.
func TestChainTableAbortChurnBounded(t *testing.T) {
	const inserts = 400
	for _, algo := range []stm.Algorithm{stm.SNOrec, stm.STL2} {
		t.Run(algo.String(), func(t *testing.T) {
			rt := stm.New(algo)
			// Capacity for exactly the committed inserts: any leak panics the
			// pool-exhausted check, making the bound self-enforcing.
			tab := NewChainTable(64, inserts)
			rt.SetFaultPlan(stm.NewFaultPlan(0xC4A1).WithSpurious(stm.SiteCommit, 50))
			for k := int64(1); k <= inserts; k++ {
				rt.Atomically(func(tx *stm.Tx) {
					if !tab.PutIfAbsent(tx, k, k*3) {
						t.Errorf("key %d already present", k)
					}
				})
			}
			if got := tab.SizeNT(); got != inserts {
				t.Fatalf("SizeNT = %d, want %d", got, inserts)
			}
			// High-water: the bump counter minus recycled slack must equal the
			// live population — no abort-leaked nodes outstanding.
			if hw := tab.next.Load() - 1 - int64(len(tab.free)); hw != inserts {
				t.Fatalf("pool in use = %d, want %d (leak)", hw, inserts)
			}
			snap := rt.Stats()
			if snap.Aborts == 0 {
				t.Fatalf("fault plan injected no aborts; churn test vacuous")
			}
		})
	}
}

// TestBSTMapAbortChurnBounded is the BSTMap variant: insert/delete churn
// under 50% injected commit aborts, with pool capacity sized for only the
// committed population. Aborted inserts must return their node through the
// abort hook or the bump counter exhausts the pool.
func TestBSTMapAbortChurnBounded(t *testing.T) {
	const inserts = 400
	for _, algo := range []stm.Algorithm{stm.SNOrec, stm.STL2} {
		t.Run(algo.String(), func(t *testing.T) {
			rt := stm.New(algo)
			m := NewBSTMap(inserts)
			rt.SetFaultPlan(stm.NewFaultPlan(0xB57).WithSpurious(stm.SiteCommit, 50))
			// Interleave inserts with physical deletes so the free list is
			// exercised by both reclamation paths at once.
			for k := int64(1); k <= inserts; k++ {
				key := k * 7653 % 100003
				rt.Atomically(func(tx *stm.Tx) {
					m.Put(tx, key, k)
				})
				if k%4 == 0 {
					m.DeletePrivatize(rt, key)
				}
			}
			if hw := m.next.Load() - 1 - int64(len(m.free)); hw > inserts {
				t.Fatalf("pool in use = %d, want <= %d (leak)", hw, inserts)
			}
			snap := rt.Stats()
			if snap.Aborts == 0 {
				t.Fatalf("fault plan injected no aborts; churn test vacuous")
			}
		})
	}
}

// TestChainTableAbortReclaimConcurrent runs insert churn from several
// goroutines under injected aborts with capacity for exactly the committed
// population — racing abort-hook reclamation against allocation. Run under
// -race this also checks the hook path is data-race free.
func TestChainTableAbortReclaimConcurrent(t *testing.T) {
	const (
		workers = 4
		perW    = 100
	)
	rt := stm.New(stm.SNOrec)
	rt.SetYieldEvery(3)
	tab := NewChainTable(64, workers*perW)
	rt.SetFaultPlan(stm.NewFaultPlan(0xFEED).WithSpurious(stm.SiteCommit, 30))
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < perW; i++ {
				k := int64(w*perW + i + 1)
				rt.Atomically(func(tx *stm.Tx) {
					tab.PutIfAbsent(tx, k, k)
				})
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := tab.SizeNT(); got != workers*perW {
		t.Fatalf("SizeNT = %d, want %d", got, workers*perW)
	}
	if hw := tab.next.Load() - 1 - int64(len(tab.free)); hw != workers*perW {
		t.Fatalf("pool in use = %d, want %d (leak)", hw, workers*perW)
	}
}
