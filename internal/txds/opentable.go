// Package txds provides transactional data structures built on the semantic
// STM API: an open-addressing hash table (the probing pattern of Algorithm 2
// of the paper), an array-based queue (Algorithm 3), a chained hash table,
// and an index-pool binary search tree map. All structures express their
// membership checks through semantic conditionals, so they benefit from
// S-NOrec/S-TL2 automatically while remaining correct (if slower) on the
// classical baselines, which delegate the semantic calls.
package txds

import (
	"fmt"

	"semstm/stm"
)

// Cell encoding of the open-addressing table: the vers word of a cell is
// cellFree for an empty cell, cellRemoved for a tombstone, and a positive
// entry version for a live cell.
const (
	cellFree    = 0
	cellRemoved = -1
)

// OpenTable is a fixed-capacity open-addressing hash set of positive int64
// keys with linear probing, tombstone deletion, and in-place entry
// refreshing. Each cell carries a version word: probing follows Algorithm 2
// — every cell inspection is a semantic conditional —
//
//	while (TM_NEQ(vers[i], FREE) &&
//	       (TM_EQ(vers[i], REMOVED) || TM_NEQ(keys[i], key)))
//	        advance
//
// so a probe records facts like "this cell is live" and "this cell is not my
// key" instead of pinning exact words. Update bumps a live entry's version
// in place (the versioned-record pattern of software caches): probers that
// passed over the entry keep all their facts and, under the semantic
// algorithms, no longer abort — the differential behind the paper's
// hashtable results.
type OpenTable struct {
	vers []*stm.Var // cellFree, cellRemoved, or entry version >= 1
	keys []*stm.Var
	mask int64
}

// NewOpenTable creates a table with capacity rounded up to a power of two.
// The caller must keep the load factor well below 1; inserting into a full
// table panics.
func NewOpenTable(capacity int) *OpenTable { return NewOpenTableOn(0, capacity) }

// NewOpenTableOn creates a table whose cells all carry the given shard
// affinity (stm.NewVarsOn), so a sharded runtime routes every probe of this
// table to that shard's engine.
func NewOpenTableOn(shard, capacity int) *OpenTable {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &OpenTable{
		vers: stm.NewVarsOn(shard, n, cellFree),
		keys: stm.NewVarsOn(shard, n, 0),
		mask: int64(n - 1),
	}
}

// Cap returns the table capacity.
func (t *OpenTable) Cap() int { return len(t.vers) }

// slot is the home position of a key: a plain modulus, as in the paper's
// Algorithm 2 pseudocode.
func (t *OpenTable) slot(key int64) int64 {
	return key & t.mask
}

// probe walks the probe chain of key per Algorithm 2 and returns the index
// where the walk stopped: either a FREE cell (key absent) or the live cell
// holding key.
func (t *OpenTable) probe(tx *stm.Tx, key int64) int64 {
	i := t.slot(key)
	for n := int64(0); ; n++ {
		if n > t.mask {
			panic("txds: open table probe wrapped (table full)")
		}
		if !tx.NEQ(t.vers[i], cellFree) {
			return i // free: not found
		}
		if !(tx.EQ(t.vers[i], cellRemoved) || tx.NEQ(t.keys[i], key)) {
			return i // live cell holding key
		}
		i = (i + 1) & t.mask
	}
}

// Contains reports whether key is in the table.
func (t *OpenTable) Contains(tx *stm.Tx, key int64) bool {
	i := t.probe(tx, key)
	// Algorithm 2's return: vers[i] == FREE ? absent : found.
	return !tx.EQ(t.vers[i], cellFree)
}

// Insert adds key and reports whether it was absent. The probe locates
// either the key (no-op) or the first FREE cell; tombstoned cells on the
// chain are reused when possible.
func (t *OpenTable) Insert(tx *stm.Tx, key int64) bool {
	i := t.slot(key)
	reuse := int64(-1)
	for n := int64(0); ; n++ {
		if n > t.mask {
			panic("txds: open table full")
		}
		if tx.EQ(t.vers[i], cellFree) {
			break
		}
		if tx.EQ(t.vers[i], cellRemoved) {
			if reuse < 0 {
				reuse = i
			}
		} else if tx.EQ(t.keys[i], key) {
			return false // already present
		}
		i = (i + 1) & t.mask
	}
	if reuse >= 0 {
		i = reuse
	}
	tx.Write(t.vers[i], 1)
	tx.Write(t.keys[i], key)
	return true
}

// Remove tombstones key and reports whether it was present.
func (t *OpenTable) Remove(tx *stm.Tx, key int64) bool {
	i := t.probe(tx, key)
	if tx.EQ(t.vers[i], cellFree) {
		return false
	}
	tx.Write(t.vers[i], cellRemoved)
	return true
}

// Update refreshes key's entry in place by bumping its version word with a
// semantic increment, reporting whether the key was present. The cell stays
// live and keeps its key, so every fact recorded by concurrent probers still
// holds; only transactions that pinned the exact version word (the classical
// baselines) are invalidated.
func (t *OpenTable) Update(tx *stm.Tx, key int64) bool {
	i := t.probe(tx, key)
	if tx.EQ(t.vers[i], cellFree) {
		return false
	}
	tx.Inc(t.vers[i], 1)
	return true
}

// Version returns the current version of key's entry (0 if absent), pinning
// it like any exact read.
func (t *OpenTable) Version(tx *stm.Tx, key int64) int64 {
	i := t.probe(tx, key)
	if tx.EQ(t.vers[i], cellFree) {
		return 0
	}
	return tx.Read(t.vers[i])
}

// SizeNT counts live keys non-transactionally (quiescent use only).
func (t *OpenTable) SizeNT() int {
	n := 0
	for _, s := range t.vers {
		if s.Load() >= 1 {
			n++
		}
	}
	return n
}

// String describes the table.
func (t *OpenTable) String() string {
	return fmt.Sprintf("OpenTable(cap=%d)", len(t.vers))
}
