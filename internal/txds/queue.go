package txds

import "semstm/stm"

// Queue is a bounded array-based FIFO queue following Algorithm 3 of the
// paper: the empty/full tests are semantic conditionals on a size counter
// and the head/tail advances are semantic increments, so an enqueuer and a
// dequeuer only conflict when the queue is near empty or near full — the
// concurrency an efficient handcrafted queue provides.
type Queue struct {
	data []*stm.Var
	head *stm.Var // logical index of the next element to pop
	tail *stm.Var // logical index of the next free slot
	size *stm.Var // current number of elements
	n    int64
}

// NewQueue creates a queue with the given capacity.
func NewQueue(capacity int) *Queue {
	return &Queue{
		data: stm.NewVars(capacity, 0),
		head: stm.NewVar(0),
		tail: stm.NewVar(0),
		size: stm.NewVar(0),
		n:    int64(capacity),
	}
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return int(q.n) }

// Enqueue appends item and reports success (false when full). The fullness
// check records the fact "size < n", which concurrent dequeuers only
// strengthen; the tail read pins the slot index, serializing concurrent
// enqueuers — exactly the conflicts a correct queue requires.
func (q *Queue) Enqueue(tx *stm.Tx, item int64) bool {
	if tx.GTE(q.size, q.n) {
		return false // full
	}
	t := tx.Read(q.tail)
	tx.Write(q.data[t%q.n], item)
	tx.Inc(q.tail, 1)
	tx.Inc(q.size, 1)
	return true
}

// Dequeue removes and returns the oldest item (ok=false when empty),
// mirroring Algorithm 3: the emptiness test is semantic (TM_EQ head, tail —
// here expressed on the size counter), the head advance is a TM_INC.
func (q *Queue) Dequeue(tx *stm.Tx) (item int64, ok bool) {
	if tx.LTE(q.size, 0) {
		return 0, false // empty
	}
	h := tx.Read(q.head)
	item = tx.Read(q.data[h%q.n])
	tx.Inc(q.head, 1)
	tx.Inc(q.size, -1)
	return item, true
}

// EmptyByIndices is the literal Algorithm 3 emptiness test — the
// address–address conditional TM_EQ(head, tail) — exposed for tests and for
// workloads that never fill the queue.
func (q *Queue) EmptyByIndices(tx *stm.Tx) bool {
	return tx.CmpVars(q.head, stm.OpEQ, q.tail)
}

// LenNT returns the current size non-transactionally (quiescent use only).
func (q *Queue) LenNT() int { return int(q.size.Load()) }
