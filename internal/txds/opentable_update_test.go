package txds

import (
	"math/rand"
	"testing"

	"semstm/stm"
)

func TestOpenTableUpdate(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	tbl := NewOpenTable(64)
	rt.Atomically(func(tx *stm.Tx) {
		if tbl.Update(tx, 9) {
			t.Error("update of absent key succeeded")
		}
		tbl.Insert(tx, 9)
		if v := tbl.Version(tx, 9); v != 1 {
			t.Errorf("fresh version = %d", v)
		}
		if !tbl.Update(tx, 9) {
			t.Error("update failed")
		}
		if !tbl.Update(tx, 9) {
			t.Error("second update failed")
		}
		if v := tbl.Version(tx, 9); v != 3 {
			t.Errorf("version = %d, want 3", v)
		}
		if !tbl.Contains(tx, 9) {
			t.Error("updated key lost")
		}
		tbl.Remove(tx, 9)
		if tbl.Update(tx, 9) {
			t.Error("update of removed key succeeded")
		}
		if v := tbl.Version(tx, 9); v != 0 {
			t.Errorf("removed version = %d", v)
		}
	})
}

// TestOpenTableUpdatePreservesProbeFacts is the micro-version of the
// Figure 1a differential: a prober passing over an entry keeps its facts
// when the entry is refreshed, so the semantic build commits while the base
// build aborts.
func TestOpenTableUpdatePreservesProbeFacts(t *testing.T) {
	run := func(algo stm.Algorithm) bool {
		rt := stm.New(algo)
		tbl := NewOpenTable(64)
		marker := stm.NewVar(0)
		// key 2 sits on key 66's probe path: 66 & 63 == 2.
		rt.Atomically(func(tx *stm.Tx) {
			tbl.Insert(tx, 2)
			tbl.Insert(tx, 66)
		})
		committed := false
		first := true
		rt.Atomically(func(tx *stm.Tx) {
			// The prober writes too, so its commit validates the probe
			// facts (a read-only commit would legally serialize before the
			// refresh under both builds).
			tx.Write(marker, 1)
			if !first {
				// Retry: the abort we're probing for already happened.
				committed = false
				return
			}
			first = false
			if !tbl.Contains(tx, 66) { // probes over key 2's cell
				t.Fatal("66 must be present")
			}
			// Concurrent refresh of the probed-over entry.
			done := make(chan struct{})
			go func() {
				defer close(done)
				rt.Atomically(func(tx2 *stm.Tx) { tbl.Update(tx2, 2) })
			}()
			<-done
			committed = true // reached commit attempt; abort rewinds this
		})
		return committed
	}
	if !run(stm.SNOrec) {
		t.Error("S-NOrec prober must survive the in-place refresh")
	}
	if run(stm.NOrec) {
		t.Error("base NOrec prober must abort (pinned version word changed)")
	}
}

// TestQueueModel drives the queue against a slice model under random
// single-threaded operations.
func TestQueueModel(t *testing.T) {
	rt := stm.New(stm.STL2)
	q := NewQueue(16)
	var model []int64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 {
			v := rng.Int63n(1000)
			ok := stm.Run(rt, func(tx *stm.Tx) bool { return q.Enqueue(tx, v) })
			if wantOK := len(model) < 16; ok != wantOK {
				t.Fatalf("step %d: Enqueue ok=%v, model %v", i, ok, wantOK)
			}
			if ok {
				model = append(model, v)
			}
		} else {
			var got int64
			var ok bool
			rt.Atomically(func(tx *stm.Tx) { got, ok = q.Dequeue(tx) })
			if wantOK := len(model) > 0; ok != wantOK {
				t.Fatalf("step %d: Dequeue ok=%v, model %v", i, ok, wantOK)
			}
			if ok {
				if got != model[0] {
					t.Fatalf("step %d: Dequeue = %d, want %d", i, got, model[0])
				}
				model = model[1:]
			}
		}
		if q.LenNT() != len(model) {
			t.Fatalf("step %d: len %d, model %d", i, q.LenNT(), len(model))
		}
	}
}

// TestQueueSemanticEmptinessSurvivesFlow: the Algorithm 3 payoff — an
// enqueue+dequeue pair that keeps the queue non-empty does not abort a
// concurrent dequeuer that already checked emptiness.
func TestQueueSemanticEmptinessSurvivesFlow(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	q := NewQueue(16)
	for i := int64(0); i < 4; i++ {
		rt.Atomically(func(tx *stm.Tx) { q.Enqueue(tx, i) })
	}
	attempts := 0
	var got int64
	rt.Atomically(func(tx *stm.Tx) {
		attempts++
		if tx.LTE(nil2(q), 0) { // semantic emptiness check via size
			t.Fatal("queue non-empty")
		}
		if attempts == 1 {
			// Concurrent flow through the queue while we are mid-dequeue:
			// size returns to 4, head/tail advance.
			done := make(chan struct{})
			go func() {
				defer close(done)
				rt.Atomically(func(tx2 *stm.Tx) {
					q.Enqueue(tx2, 99)
				})
			}()
			<-done
		}
		v, ok := q.Dequeue(tx)
		if !ok {
			t.Fatal("dequeue failed")
		}
		got = v
	})
	if attempts != 1 {
		t.Fatalf("dequeuer aborted %d times; the enqueue touches only tail/size (incs)", attempts-1)
	}
	if got != 0 {
		t.Fatalf("got %d, want FIFO head 0", got)
	}
}

// nil2 exposes the queue's size Var for the test above.
func nil2(q *Queue) *stm.Var { return q.size }
