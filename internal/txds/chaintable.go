package txds

import (
	"sync"
	"sync/atomic"

	"semstm/stm"
)

// ChainTable is a transactional chained hash map from int64 keys to int64
// values, used by the Genome (segment de-duplication) and Intruder (flow
// reassembly) workloads. Buckets are head indices into parallel node pools;
// index 0 is the nil sentinel. Chains are prepended, so an insert writes one
// bucket head and the fields of a fresh node.
//
// RemovePrivatize gives the table a full node lifecycle: the unlink commits
// through a privatization barrier, the node's cells go to the epoch-based
// reclaimer (stm.Retire), and the index returns through a free list so the
// pool never grows under churn.
type ChainTable struct {
	buckets []*stm.Var
	keys    []*stm.Var
	vals    []*stm.Var
	nexts   []*stm.Var
	mask    int64
	next    atomic.Int64

	// free holds node indices recycled by Remove (slots retired and nil'd,
	// re-populated with fresh Vars on reuse) and by the transaction-aware
	// allocator's abort hook (slots intact — an aborted insert never
	// committed a write, so the node's Vars are still pristine and reusable
	// as-is).
	freeMu sync.Mutex
	free   []int64
}

// NewChainTable creates a table with the given number of buckets (rounded up
// to a power of two) and storage for at most capacity insertions.
func NewChainTable(buckets, capacity int) *ChainTable {
	n := 1
	for n < buckets {
		n <<= 1
	}
	t := &ChainTable{
		buckets: stm.NewVars(n, 0),
		keys:    stm.NewVars(capacity+1, 0),
		vals:    stm.NewVars(capacity+1, 0),
		nexts:   stm.NewVars(capacity+1, 0),
		mask:    int64(n - 1),
	}
	t.next.Store(1)
	return t
}

func (t *ChainTable) bucket(key int64) *stm.Var {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return t.buckets[int64(h>>33)&t.mask]
}

// findNode walks the chain of key's bucket and returns the node index
// holding key, or 0.
func (t *ChainTable) findNode(tx *stm.Tx, key int64) int64 {
	n := tx.Read(t.bucket(key))
	for n != 0 {
		if tx.Read(t.keys[n]) == key {
			return n
		}
		n = tx.Read(t.nexts[n])
	}
	return 0
}

// Get returns the value stored under key.
func (t *ChainTable) Get(tx *stm.Tx, key int64) (int64, bool) {
	n := t.findNode(tx, key)
	if n == 0 {
		return 0, false
	}
	return tx.Read(t.vals[n]), true
}

// GetVar returns the Var holding key's value for direct semantic operations.
func (t *ChainTable) GetVar(tx *stm.Tx, key int64) (*stm.Var, bool) {
	n := t.findNode(tx, key)
	if n == 0 {
		return nil, false
	}
	return t.vals[n], true
}

// PutIfAbsent inserts key -> val if the key is not present and reports
// whether it inserted — the Genome "insert segment if unseen" primitive.
func (t *ChainTable) PutIfAbsent(tx *stm.Tx, key, val int64) bool {
	if t.findNode(tx, key) != 0 {
		return false
	}
	n := t.alloc(tx)
	b := t.bucket(key)
	tx.Write(t.keys[n], key)
	tx.Write(t.vals[n], val)
	tx.Write(t.nexts[n], tx.Read(b))
	tx.Write(b, n)
	return true
}

// Put inserts or updates key -> val.
func (t *ChainTable) Put(tx *stm.Tx, key, val int64) {
	if n := t.findNode(tx, key); n != 0 {
		tx.Write(t.vals[n], val)
		return
	}
	n := t.alloc(tx)
	b := t.bucket(key)
	tx.Write(t.keys[n], key)
	tx.Write(t.vals[n], val)
	tx.Write(t.nexts[n], tx.Read(b))
	tx.Write(b, n)
}

// Inc adds delta to the value under key, inserting the key with value delta
// if absent. The update is a semantic increment, so concurrent Incs of the
// same existing key do not conflict.
func (t *ChainTable) Inc(tx *stm.Tx, key, delta int64) {
	if n := t.findNode(tx, key); n != 0 {
		tx.Inc(t.vals[n], delta)
		return
	}
	t.Put(tx, key, delta)
}

// alloc reserves a node index for the current attempt. The allocation is a
// non-transactional side effect, so alloc registers an abort hook returning
// the index to the free list: an aborted insert no longer leaks its node
// (the pool stays bounded under abort churn), and since a deferred-update
// engine never wrote the node's Vars, an abort-freed node comes back with
// its Vars pristine — only slots nil'd by Remove's retire path need fresh
// Vars minted.
func (t *ChainTable) alloc(tx *stm.Tx) int64 {
	t.freeMu.Lock()
	if n := len(t.free); n > 0 {
		i := t.free[n-1]
		t.free = t.free[:n-1]
		t.freeMu.Unlock()
		if t.keys[i] == nil {
			// Retired slot: re-populate with fresh Vars (NewVar recycles
			// reclaimed cells when the epoch allows). Publication of index i
			// is transactional — the caller's bucket-link write — so every
			// reader that can reach i observes these stores.
			t.keys[i] = stm.NewVar(0)
			t.vals[i] = stm.NewVar(0)
			t.nexts[i] = stm.NewVar(0)
		}
		t.release(tx, i)
		return i
	}
	t.freeMu.Unlock()
	i := t.next.Add(1) - 1
	if int(i) >= len(t.keys) {
		panic("txds: ChainTable node pool exhausted")
	}
	t.release(tx, i)
	return i
}

// release arms the abort-path reclamation of index i. The hook runs after
// the attempt's rollback, when no write to the node's Vars has been (or can
// ever be) published, so pushing i back onto the free list is safe.
func (t *ChainTable) release(tx *stm.Tx, i int64) {
	tx.OnAbort(func() {
		t.freeMu.Lock()
		t.free = append(t.free, i)
		t.freeMu.Unlock()
	})
}

// Remove deletes key with a privatizing commit and hands the unlinked node to
// the epoch-based reclaimer, reporting whether the key was present. The chain
// unlink makes the node unreachable; the commit's privatization barrier then
// waits out every transaction that could still hold the node's cells in its
// read-set, after which retiring them is safe (DESIGN.md §14). The node index
// recycles through alloc, so sustained insert/remove churn holds the pool —
// and, via id-intact cell recycling, the orec-table footprint — steady.
func (t *ChainTable) Remove(rt *stm.Runtime, key int64) bool {
	victim := int64(0)
	rt.AtomicallyPrivatize(func(tx *stm.Tx) {
		victim = 0
		b := t.bucket(key)
		prev := int64(0)
		for n := tx.Read(b); n != 0; n = tx.Read(t.nexts[n]) {
			if tx.Read(t.keys[n]) == key {
				next := tx.Read(t.nexts[n])
				if prev == 0 {
					tx.Write(b, next)
				} else {
					tx.Write(t.nexts[prev], next)
				}
				victim = n
				return
			}
			prev = n
		}
	})
	if victim == 0 {
		return false
	}
	stm.Retire(t.keys[victim])
	stm.Retire(t.vals[victim])
	stm.Retire(t.nexts[victim])
	t.keys[victim], t.vals[victim], t.nexts[victim] = nil, nil, nil
	t.freeMu.Lock()
	t.free = append(t.free, victim)
	t.freeMu.Unlock()
	return true
}

// SizeNT counts entries non-transactionally by chain walking (quiescent use
// only).
func (t *ChainTable) SizeNT() int {
	n := 0
	for _, b := range t.buckets {
		for i := b.Load(); i != 0; i = t.nexts[i].Load() {
			n++
		}
	}
	return n
}
