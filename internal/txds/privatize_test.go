package txds

import (
	"sync"
	"testing"

	"semstm/stm"
)

// TestChainTableRemove: the privatize-then-retire removal must behave like a
// plain map delete and recycle node indices through the free list.
func TestChainTableRemove(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		// Generous capacity: aborted inserts leak their node, and abort-heavy
		// engines (HTM) can leak many per transaction.
		tbl := NewChainTable(16, 4096)
		rt.Atomically(func(tx *stm.Tx) {
			for k := int64(1); k <= 20; k++ {
				tbl.Put(tx, k, k*10)
			}
		})
		if tbl.Remove(rt, 999) {
			t.Error("removed absent key")
		}
		for k := int64(1); k <= 10; k++ {
			if !tbl.Remove(rt, k) {
				t.Errorf("remove(%d) = false", k)
			}
		}
		if tbl.Remove(rt, 5) {
			t.Error("double remove succeeded")
		}
		rt.Atomically(func(tx *stm.Tx) {
			for k := int64(1); k <= 10; k++ {
				if _, ok := tbl.Get(tx, k); ok {
					t.Errorf("key %d present after remove", k)
				}
			}
			for k := int64(11); k <= 20; k++ {
				if v, ok := tbl.Get(tx, k); !ok || v != k*10 {
					t.Errorf("key %d = %d, %v; want %d, true", k, v, ok, k*10)
				}
			}
		})
		if got := tbl.SizeNT(); got != 10 {
			t.Fatalf("size = %d, want 10", got)
		}
	})
}

// TestChainTableRemoveRecyclesPool: a pool sized for the live set must
// survive far more inserts than its capacity when every insert is paired
// with a privatizing removal — the free list, not the bump counter, feeds
// steady-state allocation.
func TestChainTableRemoveRecyclesPool(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	tbl := NewChainTable(16, 8) // room for ~7 nodes, ever
	for i := int64(0); i < 100; i++ {
		rt.Atomically(func(tx *stm.Tx) { tbl.Put(tx, i, i) })
		if !tbl.Remove(rt, i) {
			t.Fatalf("remove(%d) = false", i)
		}
	}
	if got := tbl.SizeNT(); got != 0 {
		t.Fatalf("size = %d, want 0", got)
	}
}

// TestChainTableRemoveConcurrent races privatizing removers against readers
// and inserters; run with -race to catch any unlink that fails to privatize.
func TestChainTableRemoveConcurrent(t *testing.T) {
	for _, algo := range []stm.Algorithm{stm.SNOrec, stm.STL2, stm.HyTM} {
		t.Run(algo.String(), func(t *testing.T) {
			rt := stm.New(algo)
			const keys = 32
			tbl := NewChainTable(8, keys*256)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						k := int64((w*17 + i) % keys)
						switch i % 3 {
						case 0:
							rt.Atomically(func(tx *stm.Tx) { tbl.Put(tx, k, k) })
						case 1:
							tbl.Remove(rt, k)
						default:
							rt.Atomically(func(tx *stm.Tx) {
								if v, ok := tbl.Get(tx, k); ok && v != k {
									panic("torn value")
								}
							})
						}
					}
				}(w)
			}
			wg.Wait()
			if err := rt.CheckQuiescent(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBSTDeletePrivatize: physical unlink must match lazy-delete visibility
// semantics and reuse node slots in place.
func TestBSTDeletePrivatize(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		m := NewBSTMap(4096) // headroom for abort-leaked nodes
		rt.Atomically(func(tx *stm.Tx) {
			for _, k := range []int64{50, 25, 75, 10, 30, 60, 90, 5} {
				m.Put(tx, k, k)
			}
		})
		if m.DeletePrivatize(rt, 999) {
			t.Error("deleted absent key")
		}
		// Leaf removal (5), single-child removal (10 after 5 is gone),
		// two-child tombstone (50).
		for _, k := range []int64{5, 10, 50} {
			if !m.DeletePrivatize(rt, k) {
				t.Errorf("delete(%d) = false", k)
			}
		}
		if m.DeletePrivatize(rt, 5) {
			t.Error("double delete succeeded")
		}
		rt.Atomically(func(tx *stm.Tx) {
			for _, k := range []int64{5, 10, 50} {
				if _, ok := m.Get(tx, k); ok {
					t.Errorf("key %d present after delete", k)
				}
			}
			for _, k := range []int64{25, 75, 30, 60, 90} {
				if v, ok := m.Get(tx, k); !ok || v != k {
					t.Errorf("key %d = %d, %v; want %d, true", k, v, ok, k)
				}
			}
		})
	})
}

// TestBSTDeletePrivatizeReusesPool: leaf churn must cycle through the free
// list instead of the bump allocator.
func TestBSTDeletePrivatizeReusesPool(t *testing.T) {
	rt := stm.New(stm.STL2)
	m := NewBSTMap(8)
	rt.Atomically(func(tx *stm.Tx) { m.Put(tx, 100, 100) }) // persistent root
	for i := int64(0); i < 50; i++ {
		k := 200 + i
		rt.Atomically(func(tx *stm.Tx) { m.Put(tx, k, k) })
		if !m.DeletePrivatize(rt, k) {
			t.Fatalf("delete(%d) = false", k)
		}
	}
	if got := m.SizeNT(); got != 1 {
		t.Fatalf("size = %d, want 1", got)
	}
}
