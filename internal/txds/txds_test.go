package txds

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"semstm/stm"
)

func eachAlgo(t *testing.T, f func(t *testing.T, rt *stm.Runtime)) {
	t.Helper()
	for _, a := range stm.Algorithms() {
		t.Run(a.String(), func(t *testing.T) { f(t, stm.New(a)) })
	}
}

func TestOpenTableBasics(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		tbl := NewOpenTable(64)
		rt.Atomically(func(tx *stm.Tx) {
			if tbl.Contains(tx, 10) {
				t.Error("empty table contains 10")
			}
			if !tbl.Insert(tx, 10) {
				t.Error("first insert failed")
			}
			if tbl.Insert(tx, 10) {
				t.Error("duplicate insert succeeded")
			}
			if !tbl.Contains(tx, 10) {
				t.Error("lost key 10")
			}
			if !tbl.Remove(tx, 10) {
				t.Error("remove failed")
			}
			if tbl.Contains(tx, 10) {
				t.Error("key present after remove")
			}
			if tbl.Remove(tx, 10) {
				t.Error("double remove succeeded")
			}
		})
		if tbl.SizeNT() != 0 {
			t.Fatalf("size = %d", tbl.SizeNT())
		}
	})
}

// TestOpenTableTombstoneReuse: removing and re-inserting must reuse the
// probe chain correctly (tombstones neither break lookups nor leak slots).
func TestOpenTableTombstoneReuse(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	tbl := NewOpenTable(16)
	rt.Atomically(func(tx *stm.Tx) {
		// Build a deliberate collision chain by inserting many keys, then
		// punch a tombstone in the middle and check probing skips it.
		for k := int64(0); k < 8; k++ {
			tbl.Insert(tx, k)
		}
		tbl.Remove(tx, 3)
		for k := int64(0); k < 8; k++ {
			want := k != 3
			if tbl.Contains(tx, k) != want {
				t.Errorf("Contains(%d) = %v", k, !want)
			}
		}
		if !tbl.Insert(tx, 100) {
			t.Error("insert into tombstoned table failed")
		}
		if !tbl.Contains(tx, 100) {
			t.Error("lost key 100")
		}
	})
}

func TestOpenTableModel(t *testing.T) {
	rt := stm.New(stm.STL2)
	tbl := NewOpenTable(256)
	model := map[int64]bool{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		k := rng.Int63n(100)
		switch rng.Intn(3) {
		case 0:
			got := stm.Run(rt, func(tx *stm.Tx) bool { return tbl.Insert(tx, k) })
			if got != !model[k] {
				t.Fatalf("step %d: Insert(%d) = %v, model %v", i, k, got, model[k])
			}
			model[k] = true
		case 1:
			got := stm.Run(rt, func(tx *stm.Tx) bool { return tbl.Remove(tx, k) })
			if got != model[k] {
				t.Fatalf("step %d: Remove(%d) = %v, model %v", i, k, got, model[k])
			}
			delete(model, k)
		default:
			got := stm.Run(rt, func(tx *stm.Tx) bool { return tbl.Contains(tx, k) })
			if got != model[k] {
				t.Fatalf("step %d: Contains(%d) = %v, model %v", i, k, got, model[k])
			}
		}
	}
	if tbl.SizeNT() != len(model) {
		t.Fatalf("size %d, model %d", tbl.SizeNT(), len(model))
	}
}

func TestOpenTableConcurrentDisjointInserts(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		tbl := NewOpenTable(4096)
		const workers, per = 6, 100
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(base int64) {
				defer wg.Done()
				for i := int64(0); i < per; i++ {
					k := base*per + i
					rt.Atomically(func(tx *stm.Tx) { tbl.Insert(tx, k) })
				}
			}(int64(w))
		}
		wg.Wait()
		if tbl.SizeNT() != workers*per {
			t.Fatalf("size = %d, want %d", tbl.SizeNT(), workers*per)
		}
	})
}

// TestOpenTableConcurrentSameKeys: racing inserts of the same keys must
// yield exactly one logical copy each.
func TestOpenTableConcurrentSameKeys(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		tbl := NewOpenTable(1024)
		const workers, keys = 6, 50
		var inserted [keys]int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := [keys]int64{}
				for k := int64(0); k < keys; k++ {
					if stm.Run(rt, func(tx *stm.Tx) bool { return tbl.Insert(tx, k) }) {
						local[k]++
					}
				}
				mu.Lock()
				for i, c := range local {
					inserted[i] += c
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
		for k, c := range inserted {
			if c != 1 {
				t.Fatalf("key %d inserted %d times", k, c)
			}
		}
		if tbl.SizeNT() != keys {
			t.Fatalf("size = %d", tbl.SizeNT())
		}
	})
}

func TestQueueFIFO(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		q := NewQueue(8)
		rt.Atomically(func(tx *stm.Tx) {
			if _, ok := q.Dequeue(tx); ok {
				t.Error("dequeue from empty succeeded")
			}
			if !q.EmptyByIndices(tx) {
				t.Error("fresh queue not empty by indices")
			}
		})
		for i := int64(1); i <= 8; i++ {
			if !stm.Run(rt, func(tx *stm.Tx) bool { return q.Enqueue(tx, i) }) {
				t.Fatalf("enqueue %d failed", i)
			}
		}
		rt.Atomically(func(tx *stm.Tx) {
			if q.Enqueue(tx, 99) {
				t.Error("enqueue into full queue succeeded")
			}
		})
		for i := int64(1); i <= 8; i++ {
			item, ok := int64(0), false
			rt.Atomically(func(tx *stm.Tx) { item, ok = q.Dequeue(tx) })
			if !ok || item != i {
				t.Fatalf("dequeue = (%d,%v), want (%d,true)", item, ok, i)
			}
		}
		if q.LenNT() != 0 {
			t.Fatalf("len = %d", q.LenNT())
		}
	})
}

// TestQueueWrapAround pushes the logical indices past the capacity several
// times to exercise the modulo addressing.
func TestQueueWrapAround(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	q := NewQueue(4)
	next := int64(0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 4; i++ {
			v := next
			next++
			rt.Atomically(func(tx *stm.Tx) { q.Enqueue(tx, v) })
		}
		for i := 0; i < 4; i++ {
			want := next - 4 + int64(i)
			got := int64(-1)
			rt.Atomically(func(tx *stm.Tx) { got, _ = q.Dequeue(tx) })
			if got != want {
				t.Fatalf("round %d: got %d want %d", round, got, want)
			}
		}
	}
}

// TestQueueProducerConsumer transfers every item exactly once across
// concurrent producers and consumers.
func TestQueueProducerConsumer(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		const producers, per = 4, 200
		const total = producers * per
		q := NewQueue(64)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(base int64) {
				defer wg.Done()
				for i := int64(0); i < per; i++ {
					v := base*per + i
					for !stm.Run(rt, func(tx *stm.Tx) bool { return q.Enqueue(tx, v) }) {
					}
				}
			}(int64(p))
		}
		seen := make([]bool, total)
		var seenMu sync.Mutex
		var remaining atomic.Int64
		remaining.Store(total)
		var consumers sync.WaitGroup
		for c := 0; c < 3; c++ {
			consumers.Add(1)
			go func() {
				defer consumers.Done()
				for remaining.Load() > 0 {
					item, ok := int64(0), false
					rt.Atomically(func(tx *stm.Tx) { item, ok = q.Dequeue(tx) })
					if !ok {
						runtime.Gosched()
						continue
					}
					seenMu.Lock()
					if item < 0 || item >= total || seen[item] {
						t.Errorf("bad or duplicate item %d", item)
					} else {
						seen[item] = true
					}
					seenMu.Unlock()
					remaining.Add(-1)
				}
			}()
		}
		wg.Wait()
		consumers.Wait()
		for i, ok := range seen {
			if !ok {
				t.Fatalf("item %d never consumed", i)
			}
		}
	})
}

func TestBSTMapBasics(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		m := NewBSTMap(128)
		rt.Atomically(func(tx *stm.Tx) {
			if _, ok := m.Get(tx, 5); ok {
				t.Error("empty map has key")
			}
			if !m.Put(tx, 5, 50) {
				t.Error("fresh put reported update")
			}
			if m.Put(tx, 5, 51) {
				t.Error("update reported insert")
			}
			if v, ok := m.Get(tx, 5); !ok || v != 51 {
				t.Errorf("Get = (%d,%v)", v, ok)
			}
			if !m.Delete(tx, 5) {
				t.Error("delete failed")
			}
			if m.Delete(tx, 5) {
				t.Error("double delete succeeded")
			}
			if _, ok := m.Get(tx, 5); ok {
				t.Error("deleted key still present")
			}
			// Revival through a routing node.
			if !m.Put(tx, 5, 99) {
				t.Error("revival must report insert")
			}
			if v, _ := m.Get(tx, 5); v != 99 {
				t.Error("revived value wrong")
			}
		})
	})
}

func TestBSTMapModel(t *testing.T) {
	rt := stm.New(stm.STL2)
	m := NewBSTMap(4096)
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		k := rng.Int63n(200)
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Int63n(1000)
			rt.Atomically(func(tx *stm.Tx) { m.Put(tx, k, v) })
			model[k] = v
		case 2:
			rt.Atomically(func(tx *stm.Tx) { m.Delete(tx, k) })
			delete(model, k)
		default:
			var got int64
			var ok bool
			rt.Atomically(func(tx *stm.Tx) { got, ok = m.Get(tx, k) })
			wantV, wantOK := model[k]
			if ok != wantOK || (ok && got != wantV) {
				t.Fatalf("step %d: Get(%d) = (%d,%v), want (%d,%v)", i, k, got, ok, wantV, wantOK)
			}
		}
	}
	if m.SizeNT() != len(model) {
		t.Fatalf("size %d, model %d", m.SizeNT(), len(model))
	}
}

func TestBSTMapGetVarSemanticUpdate(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	m := NewBSTMap(64)
	rt.Atomically(func(tx *stm.Tx) { m.Put(tx, 7, 100) })
	rt.Atomically(func(tx *stm.Tx) {
		v, ok := m.GetVar(tx, 7)
		if !ok {
			t.Fatal("GetVar failed")
		}
		if tx.GT(v, 0) {
			tx.Inc(v, -1) // the Vacation numFree pattern
		}
	})
	got := stm.Run(rt, func(tx *stm.Tx) int64 { v, _ := m.Get(tx, 7); return v })
	if got != 99 {
		t.Fatalf("value = %d", got)
	}
}

func TestBSTMapConcurrentInserts(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		m := NewBSTMap(1 << 14)
		const workers, per = 6, 100
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(base int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(base))
				for i := int64(0); i < per; i++ {
					k := base*per + i
					v := rng.Int63()
					rt.Atomically(func(tx *stm.Tx) { m.Put(tx, k, v) })
				}
			}(int64(w))
		}
		wg.Wait()
		if m.SizeNT() != workers*per {
			t.Fatalf("size = %d, want %d", m.SizeNT(), workers*per)
		}
	})
}

func TestChainTableBasics(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		c := NewChainTable(16, 256)
		rt.Atomically(func(tx *stm.Tx) {
			if !c.PutIfAbsent(tx, 1, 10) {
				t.Error("first PutIfAbsent failed")
			}
			if c.PutIfAbsent(tx, 1, 20) {
				t.Error("second PutIfAbsent succeeded")
			}
			if v, ok := c.Get(tx, 1); !ok || v != 10 {
				t.Errorf("Get = (%d,%v)", v, ok)
			}
			c.Put(tx, 1, 30)
			if v, _ := c.Get(tx, 1); v != 30 {
				t.Error("Put update lost")
			}
			c.Inc(tx, 1, 5)
			if v, _ := c.Get(tx, 1); v != 35 {
				t.Error("Inc lost")
			}
			c.Inc(tx, 2, 7) // insert-through-Inc
			if v, _ := c.Get(tx, 2); v != 7 {
				t.Error("Inc insert lost")
			}
		})
		if c.SizeNT() != 2 {
			t.Fatalf("size = %d", c.SizeNT())
		}
	})
}

// TestChainTableCollisions forces many keys into few buckets and checks
// chain integrity.
func TestChainTableCollisions(t *testing.T) {
	rt := stm.New(stm.SNOrec)
	c := NewChainTable(2, 512)
	for k := int64(0); k < 100; k++ {
		rt.Atomically(func(tx *stm.Tx) { c.Put(tx, k, k*10) })
	}
	for k := int64(0); k < 100; k++ {
		v, ok := int64(0), false
		rt.Atomically(func(tx *stm.Tx) { v, ok = c.Get(tx, k) })
		if !ok || v != k*10 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	if c.SizeNT() != 100 {
		t.Fatalf("size = %d", c.SizeNT())
	}
}

func TestChainTableConcurrentPutIfAbsent(t *testing.T) {
	eachAlgo(t, func(t *testing.T, rt *stm.Runtime) {
		c := NewChainTable(64, 1<<13)
		const workers, keys = 6, 60
		counts := make([]int64, keys)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := int64(0); k < keys; k++ {
					if stm.Run(rt, func(tx *stm.Tx) bool { return c.PutIfAbsent(tx, k, k) }) {
						mu.Lock()
						counts[k]++
						mu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		for k, n := range counts {
			if n != 1 {
				t.Fatalf("key %d won %d times", k, n)
			}
		}
		if c.SizeNT() != keys {
			t.Fatalf("size = %d", c.SizeNT())
		}
	})
}
