package txds

import (
	"sync/atomic"

	"semstm/stm"
)

// BSTMap is a transactional binary search tree mapping int64 keys to int64
// values, the stand-in for STAMP's red-black trees (see DESIGN.md: random
// keys give expected logarithmic depth without rebalancing, and the access
// profile — chains of internal reads ending in a small update — matches what
// the paper reports for Vacation). Nodes live in parallel Var pools and link
// by index; index 0 is the nil sentinel.
//
// Node allocation uses a non-transactional bump counter: an aborted insert
// leaks its node, which is harmless for benchmarks and tests (native STAMP
// uses a transaction-aware allocator instead).
type BSTMap struct {
	root   *stm.Var
	keys   []*stm.Var
	vals   []*stm.Var
	lefts  []*stm.Var
	rights []*stm.Var
	live   []*stm.Var // 1 = present, 0 = lazily deleted
	next   atomic.Int64
}

// NewBSTMap creates a map with storage for at most capacity insertions
// (including those wasted by aborted attempts).
func NewBSTMap(capacity int) *BSTMap {
	m := &BSTMap{
		root:   stm.NewVar(0),
		keys:   stm.NewVars(capacity+1, 0),
		vals:   stm.NewVars(capacity+1, 0),
		lefts:  stm.NewVars(capacity+1, 0),
		rights: stm.NewVars(capacity+1, 0),
		live:   stm.NewVars(capacity+1, 0),
	}
	m.next.Store(1) // 0 is the nil sentinel
	return m
}

// alloc reserves a fresh node index.
func (m *BSTMap) alloc() int64 {
	i := m.next.Add(1) - 1
	if int(i) >= len(m.keys) {
		panic("txds: BSTMap node pool exhausted")
	}
	return i
}

// find walks from the root to the node holding key. It returns the node
// index (0 if absent) and the parent index plus which child link was
// followed, so callers can attach a new node.
func (m *BSTMap) find(tx *stm.Tx, key int64) (node, parent int64, leftChild bool) {
	parent = 0
	node = tx.Read(m.root)
	for node != 0 {
		k := tx.Read(m.keys[node])
		if k == key {
			return node, parent, leftChild
		}
		parent = node
		if key < k {
			node = tx.Read(m.lefts[node])
			leftChild = true
		} else {
			node = tx.Read(m.rights[node])
			leftChild = false
		}
	}
	return 0, parent, leftChild
}

// Get returns the value stored under key.
func (m *BSTMap) Get(tx *stm.Tx, key int64) (val int64, ok bool) {
	node, _, _ := m.find(tx, key)
	if node == 0 || !tx.EQ(m.live[node], 1) {
		return 0, false
	}
	return tx.Read(m.vals[node]), true
}

// GetVar returns the Var holding the value stored under key, so callers can
// apply semantic operations (cmp, inc) directly to the mapped value — the
// pattern of Vacation's reservation records.
func (m *BSTMap) GetVar(tx *stm.Tx, key int64) (*stm.Var, bool) {
	node, _, _ := m.find(tx, key)
	if node == 0 || !tx.EQ(m.live[node], 1) {
		return nil, false
	}
	return m.vals[node], true
}

// Put inserts or updates key -> val, reporting whether the key was inserted
// (true) or updated (false).
func (m *BSTMap) Put(tx *stm.Tx, key, val int64) bool {
	node, parent, leftChild := m.find(tx, key)
	if node != 0 {
		inserted := !tx.EQ(m.live[node], 1) // revive a lazily deleted node
		tx.Write(m.vals[node], val)
		tx.Write(m.live[node], 1)
		return inserted
	}
	n := m.alloc()
	tx.Write(m.keys[n], key)
	tx.Write(m.vals[n], val)
	tx.Write(m.lefts[n], 0)
	tx.Write(m.rights[n], 0)
	tx.Write(m.live[n], 1)
	switch {
	case parent == 0:
		tx.Write(m.root, n)
	case leftChild:
		tx.Write(m.lefts[parent], n)
	default:
		tx.Write(m.rights[parent], n)
	}
	return true
}

// Delete lazily removes key, reporting whether it was present. The node
// stays in the tree as a routing node, which keeps structural changes — and
// hence conflicts — minimal, like STAMP's rbtree removals of interior nodes.
func (m *BSTMap) Delete(tx *stm.Tx, key int64) bool {
	node, _, _ := m.find(tx, key)
	if node == 0 || !tx.EQ(m.live[node], 1) {
		return false
	}
	tx.Write(m.live[node], 0)
	return true
}

// SizeNT counts live keys non-transactionally (quiescent use only).
func (m *BSTMap) SizeNT() int {
	n := 0
	top := m.next.Load()
	for i := int64(1); i < top; i++ {
		if m.live[i].Load() == 1 {
			n++
		}
	}
	return n
}
