package txds

import (
	"sync"
	"sync/atomic"

	"semstm/stm"
)

// BSTMap is a transactional binary search tree mapping int64 keys to int64
// values, the stand-in for STAMP's red-black trees (see DESIGN.md: random
// keys give expected logarithmic depth without rebalancing, and the access
// profile — chains of internal reads ending in a small update — matches what
// the paper reports for Vacation). Nodes live in parallel Var pools and link
// by index; index 0 is the nil sentinel.
//
// Node allocation is transaction-aware, like native STAMP's allocator: an
// index is reserved off a free list (else a bump counter) and an abort hook
// (stm.Tx.OnAbort) returns it if the inserting attempt aborts, so aborted
// inserts do not leak pool nodes and the pool stays bounded under abort
// churn. An abort-freed node's Vars were never committed to, so it recycles
// with no reset.
type BSTMap struct {
	root   *stm.Var
	keys   []*stm.Var
	vals   []*stm.Var
	lefts  []*stm.Var
	rights []*stm.Var
	live   []*stm.Var // 1 = present, 0 = lazily deleted
	next   atomic.Int64

	// free holds node indices physically reclaimed by DeletePrivatize; the
	// nodes' Vars are reused in place (reset with StoreNT while private).
	freeMu sync.Mutex
	free   []int64
}

// NewBSTMap creates a map with storage for at most capacity insertions
// (aborted attempts reclaim their nodes).
func NewBSTMap(capacity int) *BSTMap {
	m := &BSTMap{
		root:   stm.NewVar(0),
		keys:   stm.NewVars(capacity+1, 0),
		vals:   stm.NewVars(capacity+1, 0),
		lefts:  stm.NewVars(capacity+1, 0),
		rights: stm.NewVars(capacity+1, 0),
		live:   stm.NewVars(capacity+1, 0),
	}
	m.next.Store(1) // 0 is the nil sentinel
	return m
}

// alloc reserves a node index for the current attempt: a reclaimed one when
// available, else a fresh slot off the bump counter. The reservation is a
// non-transactional side effect, so alloc arms an abort hook pushing the
// index back onto the free list — the rollback the engine itself cannot
// perform. Free-list nodes always hold zeroed Vars (DeletePrivatize resets
// them while private; an aborted insert's writes never committed), so reuse
// needs no reset either way.
func (m *BSTMap) alloc(tx *stm.Tx) int64 {
	m.freeMu.Lock()
	if n := len(m.free); n > 0 {
		i := m.free[n-1]
		m.free = m.free[:n-1]
		m.freeMu.Unlock()
		m.release(tx, i)
		return i
	}
	m.freeMu.Unlock()
	i := m.next.Add(1) - 1
	if int(i) >= len(m.keys) {
		panic("txds: BSTMap node pool exhausted")
	}
	m.release(tx, i)
	return i
}

// release arms the abort-path reclamation of index i.
func (m *BSTMap) release(tx *stm.Tx, i int64) {
	tx.OnAbort(func() {
		m.freeMu.Lock()
		m.free = append(m.free, i)
		m.freeMu.Unlock()
	})
}

// find walks from the root to the node holding key. It returns the node
// index (0 if absent) and the parent index plus which child link was
// followed, so callers can attach a new node.
func (m *BSTMap) find(tx *stm.Tx, key int64) (node, parent int64, leftChild bool) {
	parent = 0
	node = tx.Read(m.root)
	for node != 0 {
		k := tx.Read(m.keys[node])
		if k == key {
			return node, parent, leftChild
		}
		parent = node
		if key < k {
			node = tx.Read(m.lefts[node])
			leftChild = true
		} else {
			node = tx.Read(m.rights[node])
			leftChild = false
		}
	}
	return 0, parent, leftChild
}

// Get returns the value stored under key.
func (m *BSTMap) Get(tx *stm.Tx, key int64) (val int64, ok bool) {
	node, _, _ := m.find(tx, key)
	if node == 0 || !tx.EQ(m.live[node], 1) {
		return 0, false
	}
	return tx.Read(m.vals[node]), true
}

// GetVar returns the Var holding the value stored under key, so callers can
// apply semantic operations (cmp, inc) directly to the mapped value — the
// pattern of Vacation's reservation records.
func (m *BSTMap) GetVar(tx *stm.Tx, key int64) (*stm.Var, bool) {
	node, _, _ := m.find(tx, key)
	if node == 0 || !tx.EQ(m.live[node], 1) {
		return nil, false
	}
	return m.vals[node], true
}

// Put inserts or updates key -> val, reporting whether the key was inserted
// (true) or updated (false).
func (m *BSTMap) Put(tx *stm.Tx, key, val int64) bool {
	node, parent, leftChild := m.find(tx, key)
	if node != 0 {
		inserted := !tx.EQ(m.live[node], 1) // revive a lazily deleted node
		tx.Write(m.vals[node], val)
		tx.Write(m.live[node], 1)
		return inserted
	}
	n := m.alloc(tx)
	tx.Write(m.keys[n], key)
	tx.Write(m.vals[n], val)
	tx.Write(m.lefts[n], 0)
	tx.Write(m.rights[n], 0)
	tx.Write(m.live[n], 1)
	switch {
	case parent == 0:
		tx.Write(m.root, n)
	case leftChild:
		tx.Write(m.lefts[parent], n)
	default:
		tx.Write(m.rights[parent], n)
	}
	return true
}

// Delete lazily removes key, reporting whether it was present. The node
// stays in the tree as a routing node, which keeps structural changes — and
// hence conflicts — minimal, like STAMP's rbtree removals of interior nodes.
func (m *BSTMap) Delete(tx *stm.Tx, key int64) bool {
	node, _, _ := m.find(tx, key)
	if node == 0 || !tx.EQ(m.live[node], 1) {
		return false
	}
	tx.Write(m.live[node], 0)
	return true
}

// DeletePrivatize removes key, physically unlinking the node when it has at
// most one child — the structural removal the lazy Delete never performs —
// and reports whether the key was present. A two-child node falls back to
// the lazy tombstone (routing node), like Delete.
//
// The unlink commits through a privatization barrier, so once the call
// returns no concurrent transaction can still observe the node through the
// old parent link. That makes the node's Vars private: they are reset with
// uninstrumented stores and reused in place through the index free list —
// the second reclamation pattern of DESIGN.md §14 (in-place reuse, no
// Retire, pool and Var identities both stable under churn).
func (m *BSTMap) DeletePrivatize(rt *stm.Runtime, key int64) bool {
	present := false
	victim := int64(0)
	rt.AtomicallyPrivatize(func(tx *stm.Tx) {
		present, victim = false, 0
		node, parent, leftChild := m.find(tx, key)
		if node == 0 || !tx.EQ(m.live[node], 1) {
			return
		}
		present = true
		l, r := tx.Read(m.lefts[node]), tx.Read(m.rights[node])
		if l != 0 && r != 0 {
			tx.Write(m.live[node], 0) // two children: lazy tombstone
			return
		}
		child := l + r // at most one is non-zero
		switch {
		case parent == 0:
			tx.Write(m.root, child)
		case leftChild:
			tx.Write(m.lefts[parent], child)
		default:
			tx.Write(m.rights[parent], child)
		}
		victim = node
	})
	if victim != 0 {
		m.keys[victim].StoreNT(0)
		m.vals[victim].StoreNT(0)
		m.lefts[victim].StoreNT(0)
		m.rights[victim].StoreNT(0)
		m.live[victim].StoreNT(0)
		m.freeMu.Lock()
		m.free = append(m.free, victim)
		m.freeMu.Unlock()
	}
	return present
}

// SizeNT counts live keys non-transactionally (quiescent use only).
func (m *BSTMap) SizeNT() int {
	n := 0
	top := m.next.Load()
	for i := int64(1); i < top; i++ {
		if m.live[i].Load() == 1 {
			n++
		}
	}
	return n
}
