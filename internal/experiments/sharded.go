package experiments

// The sharded-runtime grid of the v6 baseline (DESIGN.md §11): the same two
// micro-benchmarks, run over stm.NewShardedRuntime at a fixed high thread
// count under the interleave simulation, sweeping the shard count and the
// cross-shard transaction fraction. The grid answers the PR6 question — how
// much commit-path contention does partitioning the Var space remove, and
// what does the two-phase cross-shard path cost as its fraction grows.

import (
	"fmt"

	"semstm/internal/apps"
	"semstm/internal/harness"
	"semstm/stm"
)

// Sharded-grid constants. The grid is a weak-scaling design: every shard
// carries the same amount of state (accounts, table cells), so the 1-shard
// cell and the 32-shard cell present identical per-shard contention surfaces
// and the throughput ratio isolates the cost of sharing one clock.
const (
	// shardedThreads is the worker count of every sharded cell — far past the
	// knee of the unsharded engines, where a single NOrec seqlock serializes
	// every commit against every reader.
	shardedThreads = 32
	// shardedYield is the interleave-simulation period (SetYieldEvery) of the
	// sharded grid; the cells pin GOMAXPROCS=1, so the forced yields are what
	// interleaves the 32 workers (the figure-experiment convention, not the
	// classic grid's width=threads policy).
	shardedYield = 4
	// shardedGOMAXPROCS pins each sharded cell to one P so the interleave
	// simulation governs scheduling.
	shardedGOMAXPROCS = 1
	// shardedBankPerShard / shardedBankInitial size each bank shard.
	shardedBankPerShard = 2048
	shardedBankInitial  = 1000
	// shardedTableCap sizes each hashtable shard.
	shardedTableCap = 512
)

// shardedAlgos is the sharded grid's engine pair: the value-validating
// baseline (where one global seqlock hurts most) and its semantic variant.
var shardedAlgos = []stm.Algorithm{stm.NOrec, stm.SNOrec}

// shardedShardCounts is the swept shard axis.
var shardedShardCounts = []int{1, 8, 32}

// shardedCrossFractions is the swept cross-shard fraction; the 1-shard cells
// only run 0 (there is no boundary to cross).
var shardedCrossFractions = []float64{0, 0.01, 0.10}

// shardedWorkload builds one of the two sharded drivers by name.
func shardedWorkload(name string, cross float64) (harness.Builder, error) {
	switch name {
	case "bank":
		return func(rt *stm.Runtime) harness.Workload {
			return apps.NewShardedBank(rt, shardedBankPerShard, shardedBankInitial, cross)
		}, nil
	case "hashtable":
		return func(rt *stm.Runtime) harness.Workload {
			return apps.NewShardedHashtable(rt, shardedTableCap, cross)
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown sharded workload %q", name)
}

// runShardedCell measures one sharded cell best-of-reps, mirroring the
// classic grid's measurement discipline.
func runShardedCell(cfg Config, workload string, algo stm.Algorithm, nshards int, cross float64) (BaselineCell, error) {
	build, err := shardedWorkload(workload, cross)
	if err != nil {
		return BaselineCell{}, err
	}
	var res harness.Result
	for i := 0; i < cfg.reps(); i++ {
		rt := stm.NewShardedRuntime(algo, nshards)
		rt.SetYieldEvery(shardedYield)
		// Retry immediately on abort: the grid measures raw commit-path
		// contention, and the default exponential backoff would mask exactly
		// the abort storms the shard axis is swept to expose.
		rt.SetBackoff(stm.BackoffNone)
		w := build(rt)
		restore := harness.ApplyProcs(shardedGOMAXPROCS, shardedThreads)
		r, err := harness.RunTimed(rt, w, shardedThreads, cfg.duration())
		restore()
		if err != nil {
			return BaselineCell{}, err
		}
		if i == 0 || r.ThroughputKTx() > res.ThroughputKTx() {
			res = r
		}
	}
	return BaselineCell{
		Workload:     workload,
		Algorithm:    algo.String(),
		Threads:      shardedThreads,
		GOMAXPROCS:   res.GOMAXPROCS,
		ThroughputK:  res.ThroughputKTx(),
		AbortRatePct: res.AbortPct(),
		Commits:      res.Stats.Commits,
		Aborts:       res.Stats.Aborts,
		ElapsedSec:   res.Elapsed.Seconds(),
		Validations:  res.Stats.Validations,
		ValEntries:   res.Stats.ValEntries,
		ClockAdopts:  res.Stats.ClockAdopts,
		SpinWaits:    res.Stats.SpinWaits,
		Escalations:  res.Stats.Escalations,
		AbortReasons: res.Stats.ReasonCounts(),
		AllocsPerTx:  res.AllocsPerTx,
		BytesPerTx:   res.BytesPerTx,
		GCPauseUS:    float64(res.GCPause.Nanoseconds()) / 1e3,
		Shards:       nshards,
		CrossPct:     cross,
		CrossCommits: res.Stats.CrossCommits,
		CrossRevals:  res.Stats.CrossRevals,
		YieldEvery:   shardedYield,
	}, nil
}

// shardedCells measures the whole sharded grid: {bank, hashtable} ×
// shardedAlgos × shardedShardCounts × shardedCrossFractions, at
// shardedThreads workers.
func shardedCells(cfg Config) ([]BaselineCell, error) {
	var cells []BaselineCell
	for _, wl := range []string{"hashtable", "bank"} {
		for _, algo := range shardedAlgos {
			for _, n := range shardedShardCounts {
				for _, cross := range shardedCrossFractions {
					if n == 1 && cross != 0 {
						continue
					}
					cell, err := runShardedCell(cfg, wl, algo, n, cross)
					if err != nil {
						return nil, err
					}
					cells = append(cells, cell)
				}
			}
		}
	}
	return cells, nil
}

// ShardScalingResult is one shard-scaling gate measurement: the 1-shard cell
// against the n-shard cell of the same workload × engine, both single-shard
// transactions only (cross = 0).
type ShardScalingResult struct {
	Workload  string
	Algorithm string
	Shards    int
	BaseK     float64 // 1-shard throughput, k tx/s
	ShardedK  float64 // n-shard throughput, k tx/s
	Ratio     float64
}

// ShardScaling measures the shard-scaling ratio the CI gate defends
// (scripts/check.sh): n-shard single-shard-only throughput over the 1-shard
// cell, same workload, same engine, same thread count.
func ShardScaling(cfg Config, workload string, algo stm.Algorithm, nshards int) (ShardScalingResult, error) {
	base, err := runShardedCell(cfg, workload, algo, 1, 0)
	if err != nil {
		return ShardScalingResult{}, err
	}
	wide, err := runShardedCell(cfg, workload, algo, nshards, 0)
	if err != nil {
		return ShardScalingResult{}, err
	}
	r := ShardScalingResult{
		Workload:  workload,
		Algorithm: algo.String(),
		Shards:    nshards,
		BaseK:     base.ThroughputK,
		ShardedK:  wide.ThroughputK,
	}
	if r.BaseK > 0 {
		r.Ratio = r.ShardedK / r.BaseK
	}
	return r, nil
}
