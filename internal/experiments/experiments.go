// Package experiments defines one runnable reproduction per table and figure
// of the paper's evaluation (Section 7). Both cmd/semstm-bench and the
// repository's testing.B benchmarks drive experiments through this registry,
// so the CLI output and the bench output come from the same code.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semstm/internal/apps"
	"semstm/internal/harness"
	"semstm/internal/stamp"
	"semstm/internal/txprogs"
	"semstm/internal/txvm"
	"semstm/stm"
)

// Config scales an experiment run. Zero fields take experiment defaults.
type Config struct {
	// Threads overrides the thread sweep.
	Threads []int
	// Duration is the per-cell measurement window for throughput panels.
	Duration time.Duration
	// TotalOps is the fixed work for execution-time (STAMP) panels.
	TotalOps int
	// YieldEvery tunes the interleave simulation (Runtime.SetYieldEvery):
	// 0 takes the default, negative disables it.
	YieldEvery int
	// GOMAXPROCS is the per-cell scheduler-width policy (harness.ApplyProcs):
	// 0 matches each cell's thread count, > 0 pins a width, < 0 keeps the
	// process setting.
	GOMAXPROCS int
	// Reps is how many times the baseline measures each cell, keeping the
	// best-throughput rep (0 takes the default of 3).
	Reps int
}

func (c Config) threads(def []int) []int {
	if len(c.Threads) > 0 {
		return c.Threads
	}
	return def
}

func (c Config) duration() time.Duration {
	if c.Duration > 0 {
		return c.Duration
	}
	return 300 * time.Millisecond
}

func (c Config) reps() int {
	if c.Reps > 0 {
		return c.Reps
	}
	return 3
}

func (c Config) totalOps(def int) int {
	if c.TotalOps > 0 {
		return c.TotalOps
	}
	return def
}

// yieldEvery resolves the interleave-simulation setting: low-core machines
// need mid-transaction yields for the conflict dynamics of a multicore to
// appear (see DESIGN.md).
func (c Config) yieldEvery() int {
	switch {
	case c.YieldEvery < 0:
		return 0
	case c.YieldEvery == 0:
		return 4
	default:
		return c.YieldEvery
	}
}

// microThreads follows Figure 1's micro-benchmark sweep (the paper uses
// 2..24 on 24 cores; adjust with -threads on smaller machines).
var microThreads = []int{2, 4, 8, 12, 16, 20, 24}

// stampThreads follows the STAMP panels (the paper shows up to 12).
var stampThreads = []int{2, 4, 8, 12}

// rstmAlgos are the four algorithms of Figure 1.
var rstmAlgos = []stm.Algorithm{stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the CLI name (e.g. "fig1a").
	ID string
	// Panels names the paper panels the experiment regenerates.
	Panels string
	// Title describes the workload.
	Title string
	// Run executes the experiment and returns its formatted report.
	Run func(cfg Config) (string, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1a", Panels: "Figure 1a/1b", Title: "Hashtable (open addressing) — throughput and aborts", Run: runHashtable},
		{ID: "fig1c", Panels: "Figure 1c/1d", Title: "Bank — throughput and aborts", Run: runBank},
		{ID: "fig1e", Panels: "Figure 1e/1f", Title: "LRU Cache — throughput and aborts", Run: runLRU},
		{ID: "fig1g", Panels: "Figure 1g/1h", Title: "Kmeans — execution time and aborts", Run: runKmeans},
		{ID: "fig1i", Panels: "Figure 1i/1j", Title: "Vacation — execution time and aborts", Run: runVacation},
		{ID: "fig1k", Panels: "Figure 1k/1l", Title: "Labyrinth (original) — execution time and aborts", Run: runLabyrinth1},
		{ID: "fig1m", Panels: "Figure 1m/1n", Title: "Labyrinth (TRANSACT'14-optimized) — execution time and aborts", Run: runLabyrinth2},
		{ID: "fig1o", Panels: "Figure 1o/1p", Title: "Yada — execution time and aborts", Run: runYada},
		{ID: "fig2a", Panels: "Figure 2a/2b", Title: "Hashtable via GCC (TxC-compiled) — throughput and aborts", Run: runGCCHashtable},
		{ID: "fig2c", Panels: "Figure 2c/2d", Title: "Vacation via GCC (TxC-compiled) — execution time and aborts", Run: runGCCVacation},
		{ID: "table3", Panels: "Table 3", Title: "Average operations per transaction, base vs semantic", Run: runTable3},
		{ID: "ext-ring", Panels: "extension", Title: "RingSTM vs S-RingSTM (signature-based validation, beyond the paper)", Run: runExtRing},
		{ID: "ext-htm", Panels: "extension", Title: "HTM vs S-HTM (simulated best-effort hardware, the paper's future work)", Run: runExtHTM},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

func timedReport(title string, build harness.Builder, cfg Config, threads []int) (string, error) {
	s, err := harness.Sweep(title, build, harness.SweepConfig{
		Algorithms: rstmAlgos,
		Threads:    cfg.threads(threads),
		Timed:      true,
		Duration:   cfg.duration(),
		YieldEvery: cfg.yieldEvery(),
		GOMAXPROCS: cfg.GOMAXPROCS,
	})
	if err != nil {
		return "", err
	}
	return s.FormatThroughput() + "\n" + s.FormatAborts(), nil
}

func fixedReport(title string, build harness.Builder, cfg Config, threads []int, defOps int) (string, error) {
	s, err := harness.Sweep(title, build, harness.SweepConfig{
		Algorithms: rstmAlgos,
		Threads:    cfg.threads(threads),
		Timed:      false,
		TotalOps:   cfg.totalOps(defOps),
		YieldEvery: cfg.yieldEvery(),
		GOMAXPROCS: cfg.GOMAXPROCS,
	})
	if err != nil {
		return "", err
	}
	return s.FormatTime() + "\n" + s.FormatAborts(), nil
}

func runHashtable(cfg Config) (string, error) {
	return timedReport("Figure 1a/1b — Hashtable", func(rt *stm.Runtime) harness.Workload {
		return apps.NewHashtable(rt, 2048)
	}, cfg, microThreads)
}

func runBank(cfg Config) (string, error) {
	return timedReport("Figure 1c/1d — Bank", func(rt *stm.Runtime) harness.Workload {
		return apps.NewBank(rt, 1024, 1000)
	}, cfg, microThreads)
}

func runLRU(cfg Config) (string, error) {
	return timedReport("Figure 1e/1f — LRU Cache", func(rt *stm.Runtime) harness.Workload {
		return apps.NewLRUCache(rt, 64, 8)
	}, cfg, microThreads)
}

func runKmeans(cfg Config) (string, error) {
	return fixedReport("Figure 1g/1h — Kmeans", func(rt *stm.Runtime) harness.Workload {
		return stamp.NewKmeans(rt, 16, 8)
	}, cfg, stampThreads, 12000)
}

func runVacation(cfg Config) (string, error) {
	return fixedReport("Figure 1i/1j — Vacation", func(rt *stm.Runtime) harness.Workload {
		return stamp.NewVacation(rt, 512)
	}, cfg, stampThreads, 4000)
}

func runLabyrinth1(cfg Config) (string, error) {
	return fixedReport("Figure 1k/1l — Labyrinth (original)", func(rt *stm.Runtime) harness.Workload {
		return stamp.NewLabyrinth(rt, 16, 16, 2, false)
	}, cfg, stampThreads, 500)
}

func runLabyrinth2(cfg Config) (string, error) {
	return fixedReport("Figure 1m/1n — Labyrinth (optimized)", func(rt *stm.Runtime) harness.Workload {
		return stamp.NewLabyrinth(rt, 16, 16, 2, true)
	}, cfg, stampThreads, 1500)
}

func runYada(cfg Config) (string, error) {
	ops := cfg.totalOps(1500)
	return fixedReport("Figure 1o/1p — Yada", func(rt *stm.Runtime) harness.Workload {
		// Pool sizing: initial elements + CavityFan per refinement step
		// (4 steps per op) with generous slack for aborted allocations.
		return stamp.NewYada(rt, 120, 120+ops*4*2*4)
	}, cfg, stampThreads, ops)
}

// vmWorkload adapts a compiled TxC entry point to the harness: each worker
// goroutine borrows a VM thread from the pool.
type vmWorkload struct {
	vm    *txvm.VM
	entry string
	args  func(rng *rand.Rand) []int64
	pool  sync.Pool
	check func(vm *txvm.VM) error
	fail  atomic.Pointer[string]
}

func newVMWorkload(vm *txvm.VM, entry string, args func(*rand.Rand) []int64, check func(*txvm.VM) error) *vmWorkload {
	w := &vmWorkload{vm: vm, entry: entry, args: args, check: check}
	var seed atomic.Int64
	w.pool.New = func() any { return vm.NewThread(seed.Add(1)) }
	return w
}

func (w *vmWorkload) Op(rng *rand.Rand) {
	th := w.pool.Get().(*txvm.Thread)
	defer w.pool.Put(th)
	var args []int64
	if w.args != nil {
		args = w.args(rng)
	}
	if _, err := th.Call(w.entry, args...); err != nil {
		msg := err.Error()
		w.fail.Store(&msg)
	}
}

func (w *vmWorkload) Check() error {
	if msg := w.fail.Load(); msg != nil {
		return fmt.Errorf("txvm: %s", *msg)
	}
	if w.check != nil {
		return w.check(w.vm)
	}
	return nil
}

// gccSweep runs one TxC program under the three Figure 2 configurations.
func gccSweep(title, src, entry string, args func(*rand.Rand) []int64,
	setup func(vm *txvm.VM) error, check func(*txvm.VM) error,
	cfg Config, threads []int, timed bool, defOps int) (*harness.Series, error) {

	s := &harness.Series{Title: title, Threads: cfg.threads(threads)}
	for _, mode := range txprogs.Modes() {
		for _, th := range s.Threads {
			vm, _, err := txprogs.Build(src, mode)
			if err != nil {
				return nil, err
			}
			vm.Runtime().SetYieldEvery(cfg.yieldEvery())
			if setup != nil {
				if err := setup(vm); err != nil {
					return nil, err
				}
			}
			w := newVMWorkload(vm, entry, args, check)
			var res harness.Result
			if timed {
				res, err = harness.RunTimed(vm.Runtime(), w, th, cfg.duration())
			} else {
				res, err = harness.RunFixed(vm.Runtime(), w, th, cfg.totalOps(defOps))
			}
			if err != nil {
				return nil, fmt.Errorf("%s [%v x%d]: %w", title, mode, th, err)
			}
			s.AddCell(mode.String(), th, res)
		}
	}
	return s, nil
}

func runGCCHashtable(cfg Config) (string, error) {
	s, err := gccSweep("Figure 2a/2b — Hashtable via GCC", txprogs.HashtableSrc,
		"txn10", nil, PrefillGCCHashtable, nil, cfg, microThreads, true, 0)
	if err != nil {
		return "", err
	}
	return s.FormatThroughput() + "\n" + s.FormatAborts(), nil
}

// PrefillGCCHashtable seeds the compiled hashtable at ~50% load (keys land
// on their home slots) so probes immediately exercise occupied chains.
func PrefillGCCHashtable(vm *txvm.VM) error {
	for k := int64(1); k <= 512; k++ {
		if err := vm.SetShared("states", k, 1); err != nil {
			return err
		}
		if err := vm.SetShared("set", k, k); err != nil {
			return err
		}
	}
	return nil
}

func runGCCVacation(cfg Config) (string, error) {
	setup := func(vm *txvm.VM) error {
		for i := int64(0); i < 256; i++ {
			if err := vm.SetShared("numfree", i, 1_000_000); err != nil {
				return err
			}
			if err := vm.SetShared("price", i, 100+i); err != nil {
				return err
			}
		}
		return nil
	}
	s, err := gccSweep("Figure 2c/2d — Vacation via GCC", txprogs.VacationSrc,
		"client", func(rng *rand.Rand) []int64 { return []int64{rng.Int63n(100)} },
		setup, nil, cfg, microThreads, false, 10000)
	if err != nil {
		return "", err
	}
	return s.FormatTime() + "\n" + s.FormatAborts(), nil
}

// runExtRing contrasts classic signature-based RingSTM with its semantic
// extension on the hashtable and bank workloads: Bloom false positives and
// benign value changes both stop aborting readers.
func runExtRing(cfg Config) (string, error) {
	algos := []stm.Algorithm{stm.Ring, stm.SRing}
	out := ""
	for _, wl := range []struct {
		title string
		build harness.Builder
	}{
		{"Extension — Hashtable on RingSTM", func(rt *stm.Runtime) harness.Workload { return apps.NewHashtable(rt, 2048) }},
		{"Extension — Bank on RingSTM", func(rt *stm.Runtime) harness.Workload { return apps.NewBank(rt, 1024, 1000) }},
	} {
		s, err := harness.Sweep(wl.title, wl.build, harness.SweepConfig{
			Algorithms: algos,
			Threads:    cfg.threads([]int{2, 4, 8}),
			Timed:      true,
			Duration:   cfg.duration(),
			YieldEvery: cfg.yieldEvery(),
			GOMAXPROCS: cfg.GOMAXPROCS,
		})
		if err != nil {
			return "", err
		}
		out += s.FormatThroughput() + "\n" + s.FormatAborts() + "\n"
	}
	return out, nil
}

// runExtHTM contrasts the simulated best-effort hardware TM with its
// semantic extension on the increment-heavy Kmeans kernel, where deferred
// increments halve the tracked footprint and with it the capacity aborts.
func runExtHTM(cfg Config) (string, error) {
	s := &harness.Series{Title: "Extension — Kmeans on hybrid HTM (capacity 24)", Threads: cfg.threads([]int{2, 4, 8})}
	var notes strings.Builder
	for _, a := range []stm.Algorithm{stm.HTM, stm.SHTM} {
		for _, th := range s.Threads {
			rt := stm.New(a)
			rt.ConfigureHTM(24, 4, 0.5)
			rt.SetYieldEvery(cfg.yieldEvery())
			w := stamp.NewKmeans(rt, 16, 8)
			res, err := harness.RunFixed(rt, w, th, cfg.totalOps(6000))
			if err != nil {
				return "", err
			}
			s.AddCell(a.String(), th, res)
			fb, hw := rt.HTMStats()
			fmt.Fprintf(&notes, "%-8s x%-2d  fallbacks=%-6d hw-aborts=%d\n", a, th, fb, hw)
		}
	}
	return s.FormatTime() + "\n" + s.FormatAborts() + "\n" + notes.String(), nil
}

// table3Workloads lists the benchmarks of Table 3 in paper order.
func table3Workloads() []struct {
	name  string
	build harness.Builder
	ops   int
} {
	return []struct {
		name  string
		build harness.Builder
		ops   int
	}{
		{"Hashtable", func(rt *stm.Runtime) harness.Workload { return apps.NewHashtable(rt, 2048) }, 400},
		{"Bank", func(rt *stm.Runtime) harness.Workload { return apps.NewBank(rt, 1024, 1000) }, 400},
		{"LRU", func(rt *stm.Runtime) harness.Workload { return apps.NewLRUCache(rt, 64, 8) }, 400},
		{"Vacation", func(rt *stm.Runtime) harness.Workload { return stamp.NewVacation(rt, 512) }, 400},
		{"Kmeans", func(rt *stm.Runtime) harness.Workload { return stamp.NewKmeans(rt, 16, 8) }, 200},
		{"Labyrinth", func(rt *stm.Runtime) harness.Workload { return stamp.NewLabyrinth(rt, 16, 16, 2, false) }, 40},
		{"Yada", func(rt *stm.Runtime) harness.Workload { return stamp.NewYada(rt, 120, 40000) }, 300},
		{"SSCA2", func(rt *stm.Runtime) harness.Workload { return stamp.NewSSCA2(rt, 512, 64) }, 400},
		{"Genome", func(rt *stm.Runtime) harness.Workload { return stamp.NewGenome(rt, 6400, 800) }, 400},
		{"Intruder", func(rt *stm.Runtime) harness.Workload { return stamp.NewIntruder(rt, 500) }, 400},
	}
}

func runTable3(cfg Config) (string, error) {
	var rows []harness.OpRow
	for _, wl := range table3Workloads() {
		row := harness.OpRow{Benchmark: wl.name}
		for _, semantic := range []bool{false, true} {
			algo := stm.NOrec
			if semantic {
				algo = stm.SNOrec
			}
			rt := stm.New(algo)
			rt.SetYieldEvery(cfg.yieldEvery())
			w := wl.build(rt)
			// Two threads: enough concurrency to exercise the promote
			// paths without inflating counts with aborted work. RunFixed
			// scopes the counters to the run, excluding setup.
			res, err := harness.RunFixed(rt, w, 2, cfg.totalOps(wl.ops))
			if err != nil {
				return "", fmt.Errorf("table3 %s: %w", wl.name, err)
			}
			if semantic {
				row.Semantic = res.OpsPerCommit()
			} else {
				row.Base = res.OpsPerCommit()
			}
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString(harness.FormatTable3(rows))
	b.WriteString("\nNote: counts are per committed transaction and include work done by aborted attempts.\n")
	return b.String(), nil
}
