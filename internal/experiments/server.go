package experiments

// The server grid of the v10 baseline and the -servegate CI gate
// (DESIGN.md §15): the networked store's Submit path driven by the
// in-process load generator, sweeping the coalescing batcher's toggle
// against connection and shard counts. The grid answers the PR10 question —
// what does routing requests through the per-shard batcher cost or buy at
// each load shape — and the gate defends the configuration batching exists
// for: a durable store that must fsync every acknowledged request, where a
// window of coalesced requests pays the WAL group-commit bill once instead
// of once per request.

import (
	"os"
	"runtime"

	"semstm/internal/server"
	"semstm/stm"
)

// serverAlgo is the server grid's engine: the semantic NOrec variant whose
// deferred increments make the counter workload's merge fold possible.
var serverAlgo = stm.SNOrec

// serverConnections is the swept simulated-connection axis: a lightly loaded
// point and the gate's heavily oversubscribed point.
var serverConnections = []int{64, 1024}

// serverShardCounts is the swept shard axis of the server grid.
var serverShardCounts = []int{1, 8}

// serverWorkload is the grid workload: counter-heavy traffic is where the
// batcher's inc merging and commit amortization both engage.
const serverWorkload = "counter"

// runServerCell measures one server-grid cell best-of-reps: a volatile store
// under the in-process load generator, with the batcher's own counters
// tagged onto batching-on cells.
func runServerCell(cfg Config, conns, shards int, batching bool) (BaselineCell, error) {
	var best server.LoadResult
	var m *server.Metrics
	var sn stm.Snapshot
	for i := 0; i < cfg.reps(); i++ {
		s, err := server.Open(server.Config{
			Algo: serverAlgo, Shards: shards, Batching: batching,
		})
		if err != nil {
			return BaselineCell{}, err
		}
		res, err := server.RunLoad(s, server.LoadConfig{
			Workload:    serverWorkload,
			Connections: conns,
			Duration:    cfg.duration(),
			Seed:        uint64(i) + 1,
		})
		if err != nil {
			s.Close()
			return BaselineCell{}, err
		}
		if i == 0 || res.RequestsPerSec > best.RequestsPerSec {
			best = res
			m = s.Metrics()
			sn = s.Runtime().Stats()
		}
		if err := s.Close(); err != nil {
			return BaselineCell{}, err
		}
	}
	mode := "off"
	if batching {
		mode = "on"
	}
	cell := BaselineCell{
		Workload:     "server-" + serverWorkload,
		Algorithm:    serverAlgo.String(),
		Threads:      conns,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		ThroughputK:  best.RequestsPerSec / 1000,
		AbortRatePct: pct(best.Aborted, best.Requests),
		Commits:      sn.Commits,
		Aborts:       sn.Aborts,
		ElapsedSec:   best.Elapsed.Seconds(),
		Shards:       shards,
		Connections:  conns,
		Batching:     mode,
	}
	if batching {
		cell.Batches = m.Batches()
		cell.BatchMean = m.MeanBatch()
		cell.MergedIncPct = 100 * m.MergedIncRatio()
		cell.SoloFallbacks = m.SoloFallbacks()
	}
	return cell, nil
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// serverCells measures the server grid: batching {on, off} × connections ×
// shard counts on the counter workload.
func serverCells(cfg Config) ([]BaselineCell, error) {
	var cells []BaselineCell
	for _, conns := range serverConnections {
		for _, shards := range serverShardCounts {
			for _, batching := range []bool{false, true} {
				cell, err := runServerCell(cfg, conns, shards, batching)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// ServeGateResult is the commit-coalescing gate measurement: counter-heavy
// throughput through the batcher vs per-request execution on an otherwise
// identical durable store that fsyncs every acknowledged request. The ratio
// is the PR10 acceptance number — coalescing must amortize the commit +
// WAL-fsync path at least -servegate-min times over, or the batcher is
// machinery without payoff.
type ServeGateResult struct {
	Algorithm   string
	Connections int
	Shards      int
	Fsync       string
	BatchedK    float64 // batched requests/s, thousands
	UnbatchedK  float64 // per-request requests/s, thousands
	Ratio       float64
	// Batcher shape of the best batched rep: mean committed window size,
	// merged share of merge-eligible incs, and solo fallbacks.
	BatchMean     float64
	MergedIncPct  float64
	SoloFallbacks uint64
}

// serveGateArm measures one gate arm best-of-reps: a fresh durable store per
// rep (no rep pays another's recovery), fsync "always" so every acknowledged
// request is durable before its response — the serving configuration the
// batcher is for.
func serveGateArm(cfg Config, conns, shards int, batching bool) (server.LoadResult, *server.Metrics, error) {
	var best server.LoadResult
	var m *server.Metrics
	for i := 0; i < cfg.reps(); i++ {
		dir, err := os.MkdirTemp("", "semstm-servegate-")
		if err != nil {
			return best, nil, err
		}
		s, err := server.Open(server.Config{
			Algo: serverAlgo, Shards: shards, Batching: batching,
			DurableDir: dir, Fsync: "always",
		})
		if err != nil {
			os.RemoveAll(dir)
			return best, nil, err
		}
		res, err := server.RunLoad(s, server.LoadConfig{
			Workload:    serverWorkload,
			Connections: conns,
			Duration:    cfg.duration(),
			Seed:        uint64(i) + 1,
		})
		closeErr := s.Close()
		os.RemoveAll(dir)
		if err != nil {
			return best, nil, err
		}
		if closeErr != nil {
			return best, nil, closeErr
		}
		if i == 0 || res.RequestsPerSec > best.RequestsPerSec {
			best = res
			m = s.Metrics()
		}
	}
	return best, m, nil
}

// ServeGate runs the -servegate comparison at the given connection and shard
// counts. The unbatched arm's elapsed time includes draining its in-flight
// requests — at fsync "always" that drain is itself fsync-bound, so keep
// cfg.Duration short (the gate default in scripts/check.sh is 300ms).
func ServeGate(cfg Config, conns, shards int) (ServeGateResult, error) {
	res := ServeGateResult{
		Algorithm:   serverAlgo.String(),
		Connections: conns,
		Shards:      shards,
		Fsync:       "always",
	}
	batched, m, err := serveGateArm(cfg, conns, shards, true)
	if err != nil {
		return res, err
	}
	unbatched, _, err := serveGateArm(cfg, conns, shards, false)
	if err != nil {
		return res, err
	}
	res.BatchedK = batched.RequestsPerSec / 1000
	res.UnbatchedK = unbatched.RequestsPerSec / 1000
	if res.UnbatchedK > 0 {
		res.Ratio = res.BatchedK / res.UnbatchedK
	}
	res.BatchMean = m.MeanBatch()
	res.MergedIncPct = 100 * m.MergedIncRatio()
	res.SoloFallbacks = m.SoloFallbacks()
	return res, nil
}
