package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyCfg keeps test runs to a couple of seconds per experiment.
var tinyCfg = Config{
	Threads:  []int{2},
	Duration: 50 * time.Millisecond,
	TotalOps: 60,
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Panels == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// One experiment per figure pair plus Table 3 plus the two extensions:
	// 8 RSTM panels + 2 GCC panels + table3 + ext-ring + ext-htm.
	if len(ids) != 13 {
		t.Fatalf("registry holds %d experiments, want 13", len(ids))
	}
}

func TestFind(t *testing.T) {
	e, err := Find("fig1a")
	if err != nil || e.ID != "fig1a" {
		t.Fatalf("Find(fig1a) = %+v, %v", e, err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("Find(nope) must fail")
	}
}

func TestMicroExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig1a", "fig1c", "fig1e"} {
		e, _ := Find(id)
		out, err := e.Run(tinyCfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, col := range []string{"NOrec", "S-NOrec", "TL2", "S-TL2"} {
			if !strings.Contains(out, col) {
				t.Fatalf("%s output missing column %s:\n%s", id, col, out)
			}
		}
		if !strings.Contains(out, "throughput") || !strings.Contains(out, "aborts") {
			t.Fatalf("%s output missing panels:\n%s", id, out)
		}
	}
}

func TestStampExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig1g", "fig1i", "fig1k", "fig1m", "fig1o"} {
		e, _ := Find(id)
		out, err := e.Run(tinyCfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "time (s)") || !strings.Contains(out, "aborts") {
			t.Fatalf("%s output missing panels:\n%s", id, out)
		}
	}
}

func TestGCCExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig2a", "fig2c"} {
		e, _ := Find(id)
		out, err := e.Run(tinyCfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, col := range []string{"NOrec", "Modified-GCC", "S-NOrec"} {
			if !strings.Contains(out, col) {
				t.Fatalf("%s output missing column %s:\n%s", id, col, out)
			}
		}
	}
}

func TestExtensionExperimentsRun(t *testing.T) {
	for _, id := range []string{"ext-ring", "ext-htm"} {
		e, _ := Find(id)
		out, err := e.Run(tinyCfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) == 0 {
			t.Fatalf("%s: empty report", id)
		}
	}
	e, _ := Find("ext-ring")
	out, _ := e.Run(tinyCfg)
	if !strings.Contains(out, "S-RingSTM") {
		t.Fatalf("ext-ring missing column:\n%s", out)
	}
}

func TestTable3Run(t *testing.T) {
	e, _ := Find("table3")
	out, err := e.Run(Config{TotalOps: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Hashtable", "Bank", "LRU", "Vacation", "Kmeans",
		"Labyrinth", "Yada", "SSCA2", "Genome", "Intruder"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table3 missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "semantic") || !strings.Contains(out, "base") {
		t.Fatalf("table3 missing build rows:\n%s", out)
	}
}
