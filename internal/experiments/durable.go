package experiments

// The durable grid of the v7 baseline (DESIGN.md §12): the sharded bank
// benchmark over stm.OpenDurable, sweeping the group-commit fsync policy
// against the shard count at the same thread count, cross fraction, and
// interleave policy as the volatile sharded grid. The grid answers the PR7
// question — what does writing every commit ahead to the semantic redo log
// cost, and how much of the fsync bill does group commit amortize away.

import (
	"fmt"
	"os"

	"semstm/internal/apps"
	"semstm/internal/harness"
	"semstm/stm"
)

// Durable-grid constants. The swept axes deliberately reuse the sharded
// grid's bank sizing so every durable cell has a volatile twin (same
// workload, algorithm, threads, shards, cross fraction; fsync_policy empty)
// to diff against in bench-compare.
const (
	// durableCross is the fixed cross-shard fraction of the durable grid: the
	// high point of the volatile sweep, so the log-before-ticket path of the
	// two-phase commit is always exercised.
	durableCross = 0.10
)

// durableAlgo is the durable grid's engine: the semantic NOrec variant the
// redo log's deferred-increment records are designed around.
var durableAlgo = stm.SNOrec

// durablePolicies is the swept fsync-policy axis, ordered from strongest to
// weakest guarantee.
var durablePolicies = []string{"always", "interval", "none"}

// durableShardCounts is the swept shard axis (no 1-shard cell: OpenDurable
// accepts it, but the grid's question is how the log writer scales with the
// shard-partitioned commit pipeline).
var durableShardCounts = []int{8, 32}

// durableBank opens a durable runtime in a fresh temp directory and wires
// the sharded bank over durable account blocks. The caller must Close the
// returned Durable and remove dir.
func durableBank(nshards int, policy string) (*stm.Durable, *apps.ShardedBank, string, error) {
	dir, err := os.MkdirTemp("", "semstm-durable-bench-")
	if err != nil {
		return nil, nil, "", err
	}
	d, err := stm.OpenDurable(dir, durableAlgo, nshards, stm.WithFsync(policy))
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, "", err
	}
	blocks := make([][]*stm.Var, nshards)
	for s := range blocks {
		first := uint64(s*shardedBankPerShard + 1)
		blocks[s] = d.Vars(s, first, shardedBankPerShard, shardedBankInitial)
	}
	bank := apps.NewShardedBankVars(d.Runtime(), blocks, shardedBankInitial, durableCross)
	return d, bank, dir, nil
}

// runDurableCell measures one durable bank cell best-of-reps, mirroring the
// sharded grid's measurement discipline. Each rep runs against a fresh log
// directory so no rep pays recovery or replays another rep's history.
func runDurableCell(cfg Config, nshards int, policy string) (BaselineCell, error) {
	var res harness.Result
	var stats stm.WALStats
	for i := 0; i < cfg.reps(); i++ {
		d, bank, dir, err := durableBank(nshards, policy)
		if err != nil {
			return BaselineCell{}, err
		}
		rt := d.Runtime()
		rt.SetYieldEvery(shardedYield)
		rt.SetBackoff(stm.BackoffNone)
		restore := harness.ApplyProcs(shardedGOMAXPROCS, shardedThreads)
		r, err := harness.RunTimed(rt, bank, shardedThreads, cfg.duration())
		restore()
		st := d.WALStats()
		failed := d.WALFailed()
		closeErr := d.Close()
		os.RemoveAll(dir)
		if err != nil {
			return BaselineCell{}, err
		}
		if closeErr != nil {
			return BaselineCell{}, fmt.Errorf("experiments: durable cell close: %w", closeErr)
		}
		if failed {
			return BaselineCell{}, fmt.Errorf("experiments: durable cell degraded to volatile mode (log failure)")
		}
		if i == 0 || r.ThroughputKTx() > res.ThroughputKTx() {
			res = r
			stats = st
		}
	}
	return BaselineCell{
		Workload:     "bank",
		Algorithm:    durableAlgo.String(),
		Threads:      shardedThreads,
		GOMAXPROCS:   res.GOMAXPROCS,
		ThroughputK:  res.ThroughputKTx(),
		AbortRatePct: res.AbortPct(),
		Commits:      res.Stats.Commits,
		Aborts:       res.Stats.Aborts,
		ElapsedSec:   res.Elapsed.Seconds(),
		Validations:  res.Stats.Validations,
		ValEntries:   res.Stats.ValEntries,
		ClockAdopts:  res.Stats.ClockAdopts,
		SpinWaits:    res.Stats.SpinWaits,
		Escalations:  res.Stats.Escalations,
		AbortReasons: res.Stats.ReasonCounts(),
		AllocsPerTx:  res.AllocsPerTx,
		BytesPerTx:   res.BytesPerTx,
		GCPauseUS:    float64(res.GCPause.Nanoseconds()) / 1e3,
		Shards:       nshards,
		CrossPct:     durableCross,
		CrossCommits: res.Stats.CrossCommits,
		CrossRevals:  res.Stats.CrossRevals,
		YieldEvery:   shardedYield,
		FsyncPolicy:  policy,
		WALAppends:   stats.Appends,
		WALFsyncs:    stats.Fsyncs,
		WALGroupSize: stats.GroupSize,
	}, nil
}

// durableCells measures the whole durable grid: bank × durablePolicies ×
// durableShardCounts at shardedThreads workers, cross fraction durableCross.
func durableCells(cfg Config) ([]BaselineCell, error) {
	var cells []BaselineCell
	for _, n := range durableShardCounts {
		for _, policy := range durablePolicies {
			cell, err := runDurableCell(cfg, n, policy)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// DurableOverheadResult is one durability-overhead gate measurement: the
// volatile sharded bank cell against the durable cell of the same shape
// (same engine, threads, shards, cross fraction), differing only in the
// write-ahead log.
type DurableOverheadResult struct {
	Workload  string
	Algorithm string
	Shards    int
	Policy    string
	VolatileK float64 // volatile throughput, k tx/s
	DurableK  float64 // durable throughput, k tx/s
	Ratio     float64 // DurableK / VolatileK
	// WALAppends / WALFsyncs / GroupSize are the durable cell's log
	// accounting, reported so a failing gate shows whether fsync
	// amortization collapsed.
	WALAppends uint64
	WALFsyncs  uint64
	GroupSize  float64
}

// DurableOverhead measures the durability-overhead ratio the CI gate
// defends (scripts/check.sh): durable bank throughput under the given fsync
// policy over the volatile cell of the same shape. PR7's acceptance bar is
// the "interval" policy at 32 shards staying within 35% (ratio >= 0.65).
func DurableOverhead(cfg Config, nshards int, policy string) (DurableOverheadResult, error) {
	vol, err := runShardedCell(cfg, "bank", durableAlgo, nshards, durableCross)
	if err != nil {
		return DurableOverheadResult{}, err
	}
	dur, err := runDurableCell(cfg, nshards, policy)
	if err != nil {
		return DurableOverheadResult{}, err
	}
	r := DurableOverheadResult{
		Workload:   "bank",
		Algorithm:  durableAlgo.String(),
		Shards:     nshards,
		Policy:     policy,
		VolatileK:  vol.ThroughputK,
		DurableK:   dur.ThroughputK,
		WALAppends: dur.WALAppends,
		WALFsyncs:  dur.WALFsyncs,
		GroupSize:  dur.WALGroupSize,
	}
	if r.VolatileK > 0 {
		r.Ratio = r.DurableK / r.VolatileK
	}
	return r, nil
}
