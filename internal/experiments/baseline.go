package experiments

import (
	"encoding/json"
	"runtime"
	"time"

	"semstm/internal/apps"
	"semstm/internal/harness"
	"semstm/stm"
)

// BaselineCell is one (workload, algorithm, threads) measurement of the
// committed perf baseline (the BENCH_*.json convention): enough to compare
// throughput and abort-rate trajectories across perf PRs.
type BaselineCell struct {
	Workload     string  `json:"workload"`
	Algorithm    string  `json:"algorithm"`
	Threads      int     `json:"threads"`
	ThroughputK  float64 `json:"throughput_ktx_per_sec"`
	AbortRatePct float64 `json:"abort_rate_pct"`
	Commits      uint64  `json:"commits"`
	Aborts       uint64  `json:"aborts"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	// Escalations counts starvation escalations to the irrevocable
	// serializing mode (zero on healthy runs; omitted when zero).
	Escalations uint64 `json:"escalations,omitempty"`
	// AbortReasons breaks Aborts down by typed reason (validation,
	// cmp-flip, orec-locked, capacity, spurious, explicit); only non-zero
	// buckets are emitted.
	AbortReasons map[string]uint64 `json:"abort_reasons,omitempty"`
}

// BaselineReport is the top-level schema of a BENCH_*.json file.
type BaselineReport struct {
	Schema     string         `json:"schema"`
	Generated  string         `json:"generated"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	DurationMS int64          `json:"duration_ms_per_cell"`
	YieldEvery int            `json:"yield_every"`
	Cells      []BaselineCell `json:"cells"`
}

// baselineThreads is the committed sweep: single-threaded barrier cost plus
// two contended points.
var baselineThreads = []int{1, 4, 8}

// Baseline measures the micro-benchmark grid of the BENCH_*.json baseline:
// {hashtable, bank} × {NOrec, S-NOrec, TL2, S-TL2} × {1, 4, 8} threads,
// each cell timed for cfg.Duration (default 300ms).
func Baseline(cfg Config) (BaselineReport, error) {
	rep := BaselineReport{
		Schema:     "semstm-bench-baseline/v2",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		DurationMS: cfg.duration().Milliseconds(),
		YieldEvery: cfg.yieldEvery(),
	}
	workloads := []struct {
		name  string
		build harness.Builder
	}{
		{"hashtable", func(rt *stm.Runtime) harness.Workload { return apps.NewHashtable(rt, 2048) }},
		{"bank", func(rt *stm.Runtime) harness.Workload { return apps.NewBank(rt, 1024, 1000) }},
	}
	for _, wl := range workloads {
		for _, algo := range rstmAlgos {
			for _, th := range cfg.threads(baselineThreads) {
				rt := stm.New(algo)
				rt.SetYieldEvery(cfg.yieldEvery())
				w := wl.build(rt)
				res, err := harness.RunTimed(rt, w, th, cfg.duration())
				if err != nil {
					return rep, err
				}
				rep.Cells = append(rep.Cells, BaselineCell{
					Workload:     wl.name,
					Algorithm:    algo.String(),
					Threads:      th,
					ThroughputK:  res.ThroughputKTx(),
					AbortRatePct: res.AbortPct(),
					Commits:      res.Stats.Commits,
					Aborts:       res.Stats.Aborts,
					ElapsedSec:   res.Elapsed.Seconds(),
					Escalations:  res.Stats.Escalations,
					AbortReasons: res.Stats.ReasonCounts(),
				})
			}
		}
	}
	return rep, nil
}

// MarshalIndent renders the report in the committed BENCH_*.json layout.
func (r BaselineReport) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
