package experiments

import (
	"encoding/json"
	"runtime"
	"time"

	"semstm/internal/apps"
	"semstm/internal/harness"
	"semstm/stm"
)

// BaselineCell is one (workload, algorithm, threads) measurement of the
// committed perf baseline (the BENCH_*.json convention): enough to compare
// throughput, abort-rate, and commit-path-cost trajectories across perf PRs.
type BaselineCell struct {
	Workload  string `json:"workload"`
	Algorithm string `json:"algorithm"`
	Threads   int    `json:"threads"`
	// GOMAXPROCS is the scheduler width this cell ran under (schema v3): on
	// machines with fewer cores than threads it is what separates a
	// parallelism measurement from an oversubscription measurement, so every
	// cell records it.
	GOMAXPROCS   int     `json:"gomaxprocs"`
	ThroughputK  float64 `json:"throughput_ktx_per_sec"`
	AbortRatePct float64 `json:"abort_rate_pct"`
	Commits      uint64  `json:"commits"`
	Aborts       uint64  `json:"aborts"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	// Commit-path scalability counters (schema v3, DESIGN.md §8): validation
	// passes and entries re-checked by them, commit CAS failures resolved by
	// adopting the newer clock value, and adaptive-waiter rounds spent on
	// locked metadata. Omitted when zero.
	Validations uint64 `json:"validations,omitempty"`
	ValEntries  uint64 `json:"val_entries,omitempty"`
	ClockAdopts uint64 `json:"clock_adopts,omitempty"`
	SpinWaits   uint64 `json:"spin_waits,omitempty"`
	// Escalations counts starvation escalations to the irrevocable
	// serializing mode (zero on healthy runs; omitted when zero).
	Escalations uint64 `json:"escalations,omitempty"`
	// AbortReasons breaks Aborts down by typed reason (validation,
	// cmp-flip, orec-locked, capacity, spurious, explicit); only non-zero
	// buckets are emitted.
	AbortReasons map[string]uint64 `json:"abort_reasons,omitempty"`
	// EngineSwitches counts online engine switches the adaptive policy
	// performed during the cell (schema v4; zero on fixed-engine cells and
	// then omitted).
	EngineSwitches uint64 `json:"engine_switches,omitempty"`
	// FinalEngine is the concrete engine the cell ended on (schema v4);
	// emitted only when it differs from Algorithm, i.e. on adaptive cells.
	FinalEngine string `json:"final_engine,omitempty"`
	// AllocsPerTx and BytesPerTx are the cell's heap-allocation rates (schema
	// v5): process-wide runtime.MemStats deltas over the measured interval
	// divided by transactions (commits + aborts). They are emitted even when
	// zero — zero is the steady-state target the allocation-regression gate
	// defends, and presence of the fields is what marks a v5 report.
	AllocsPerTx float64 `json:"allocs_per_tx"`
	BytesPerTx  float64 `json:"bytes_per_tx"`
	// GCPauseUS is the total stop-the-world GC pause time accumulated during
	// the cell, in microseconds (schema v5; omitted when no GC ran).
	GCPauseUS float64 `json:"gc_pause_us,omitempty"`
	// Shards marks a sharded-runtime cell (schema v6): the runtime was built
	// with stm.NewShardedRuntime(algo, Shards) and the workload distributed
	// its state shard-affine. Zero (omitted) means the classic single-runtime
	// cell, directly comparable with v5 reports.
	Shards int `json:"shards,omitempty"`
	// CrossPct is the fraction of transactions that deliberately crossed a
	// shard boundary — the swept knob of the sharded grid (schema v6).
	CrossPct float64 `json:"cross_pct,omitempty"`
	// CrossCommits counts transactions that actually committed through the
	// two-phase cross-shard path (schema v6).
	CrossCommits uint64 `json:"cross_commits,omitempty"`
	// CrossRevals counts ticket-driven live revalidations multi-shard
	// transactions performed (schema v6).
	CrossRevals uint64 `json:"cross_revals,omitempty"`
	// YieldEvery is recorded per cell when it differs from the report-level
	// setting (schema v6): the sharded grid runs under the interleave
	// simulation while the classic grid keeps the v5 policy.
	YieldEvery int `json:"yield_every,omitempty"`
	// FsyncPolicy marks a durable-runtime cell (schema v7): the runtime was
	// opened with stm.OpenDurable and every commit was written ahead to the
	// semantic WAL under this group-commit fsync policy ("always",
	// "interval", "none"). Empty (omitted) means the volatile cell the
	// durable ones are compared against.
	FsyncPolicy string `json:"fsync_policy,omitempty"`
	// WALAppends / WALFsyncs are the cell's write-ahead-log frame and fsync
	// counts; WALGroupSize is frames per batch — the group-commit
	// amortization factor the fsync policies trade durability against
	// (schema v7, durable cells only).
	WALAppends   uint64  `json:"wal_appends,omitempty"`
	WALFsyncs    uint64  `json:"wal_fsyncs,omitempty"`
	WALGroupSize float64 `json:"wal_group_size,omitempty"`
	// Progressive-hybrid counters (schema v8, HTM-backed cells only).
	// HWFastCommits / HWMiddleCommits split commits by hardware path —
	// uninstrumented fast path vs instrumented middle path; the remainder
	// committed through the software slow path. HWCapacityAborts is the
	// "hw-capacity" bucket of AbortReasons surfaced as a first-class column
	// (it is the footprint signal the adaptive ladder escalates on).
	// HWFallbacks / HWAborts are the engine-level tallies from
	// Runtime.HTMStats(): irrevocable-fallback acquisitions and failed
	// hardware attempts. All omitted when zero, keeping v7 cells byte-stable.
	HWFastCommits    uint64 `json:"hw_fast_commits,omitempty"`
	HWMiddleCommits  uint64 `json:"hw_middle_commits,omitempty"`
	HWCapacityAborts uint64 `json:"hw_capacity_aborts,omitempty"`
	HWFallbacks      uint64 `json:"hw_fallbacks,omitempty"`
	HWAborts         uint64 `json:"hw_aborts,omitempty"`
	// SnapshotMode marks a snapshot-analytics cell (schema v9): "privatized"
	// scans flip the double buffer with a privatizing commit and sum it
	// uninstrumented, "instrumented" scans read the live buffer inside an
	// ordinary transaction. Empty (omitted) on every other cell.
	SnapshotMode string `json:"snapshot_mode,omitempty"`
	// Retired / Reclaimed are the epoch reclaimer's counter deltas across the
	// cell (schema v9): cells parked on the limbo lists and cells returned to
	// the allocation free list. Non-zero only on cells that exercise the
	// Var retirement lifecycle (snapshot, reclaim-churn).
	Retired   uint64 `json:"retired,omitempty"`
	Reclaimed uint64 `json:"reclaimed,omitempty"`
	// Connections marks a server-grid cell (schema v10): simulated client
	// connections driving the networked store's Submit path through the
	// internal/server load generator; Threads mirrors it so the cell key
	// stays comparable across schema versions. Batching records the
	// coalescing batcher's toggle ("on" / "off") and is part of the cell's
	// identity in bench-compare.
	Connections int    `json:"connections,omitempty"`
	Batching    string `json:"batching,omitempty"`
	// Batcher-shape counters (schema v10, batching-on cells only): committed
	// windows, mean window size, the merged share of merge-eligible inc ops,
	// and requests pushed onto the solo path by conflicts or torn windows.
	Batches       uint64  `json:"batches,omitempty"`
	BatchMean     float64 `json:"batch_mean,omitempty"`
	MergedIncPct  float64 `json:"merged_inc_pct,omitempty"`
	SoloFallbacks uint64  `json:"solo_fallbacks,omitempty"`
}

// BaselineReport is the top-level schema of a BENCH_*.json file.
type BaselineReport struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	// NumCPU is the machine's logical CPU count (schema v3); GOMAXPROCS is
	// the process-wide setting outside the cells, which set their own width
	// (recorded per cell).
	NumCPU     int   `json:"num_cpu"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	DurationMS int64 `json:"duration_ms_per_cell"`
	// RepsPerCell is how many times each cell was measured; the committed
	// cell is the best-throughput rep. Best-of-N filters out scheduler and
	// host noise (CFS throttling, frequency ramps) that a single timed run
	// soaks up, which matters when comparing thin scaling margins.
	RepsPerCell int            `json:"reps_per_cell"`
	YieldEvery  int            `json:"yield_every"`
	Cells       []BaselineCell `json:"cells"`
}

// baselineThreads is the committed sweep: single-threaded barrier cost, the
// first two contended points (where the scaling target — 4-thread throughput
// above 1-thread — is checked), and an oversubscribed tail.
var baselineThreads = []int{1, 2, 4, 8}

// baselineAlgos is the committed grid: the four Figure 1 algorithms, the
// ring pair (so the signature-based commit path is tracked by the baseline
// too), and the adaptive composite (schema v4), whose cells also record the
// switch count and the engine they ended on.
var baselineAlgos = []stm.Algorithm{
	stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2, stm.Ring, stm.SRing, stm.Adaptive,
}

// Baseline measures the micro-benchmark grid of the BENCH_*.json baseline:
// {hashtable, bank} × {NOrec, S-NOrec, TL2, S-TL2, RingSTM, S-RingSTM,
// Adaptive} × {1, 2, 4, 8} threads, each cell timed for cfg.Duration
// (default 300ms)
// under the cfg.GOMAXPROCS policy (default: width = thread count), best of
// cfg.Reps measurements (default 3).
//
// Unlike the paper-figure experiments, the baseline disables the interleave
// simulation by default (cfg.YieldEvery == 0 means off here, not the
// figure default of 4): the simulation compensates for running every cell at
// scheduler width 1, and the baseline's policy is width = thread count, so
// the OS provides real interleaving. Keeping the forced yield on top of true
// concurrency charges multi-thread cells a context switch every few barriers
// that the single-thread cell never pays — it measures the simulation, not
// the commit path (DESIGN.md §8). Pass YieldEvery > 0 to reinstate it
// uniformly.
func Baseline(cfg Config) (BaselineReport, error) {
	yieldEvery := cfg.YieldEvery
	if yieldEvery <= 0 {
		yieldEvery = 0
	}
	rep := BaselineReport{
		Schema:      "semstm-bench-baseline/v10",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		DurationMS:  cfg.duration().Milliseconds(),
		RepsPerCell: cfg.reps(),
		YieldEvery:  yieldEvery,
	}
	workloads := []struct {
		name  string
		build harness.Builder
	}{
		{"hashtable", func(rt *stm.Runtime) harness.Workload { return apps.NewHashtable(rt, 2048) }},
		{"bank", func(rt *stm.Runtime) harness.Workload { return apps.NewBank(rt, 1024, 1000) }},
	}
	for _, wl := range workloads {
		for _, algo := range baselineAlgos {
			for _, th := range cfg.threads(baselineThreads) {
				var res harness.Result
				for i := 0; i < cfg.reps(); i++ {
					rt := stm.New(algo)
					rt.SetYieldEvery(yieldEvery)
					w := wl.build(rt)
					restore := harness.ApplyProcs(cfg.GOMAXPROCS, th)
					r, err := harness.RunTimed(rt, w, th, cfg.duration())
					restore()
					if err != nil {
						return rep, err
					}
					if i == 0 || r.ThroughputKTx() > res.ThroughputKTx() {
						res = r
					}
				}
				cell := BaselineCell{
					Workload:       wl.name,
					Algorithm:      algo.String(),
					Threads:        th,
					GOMAXPROCS:     res.GOMAXPROCS,
					ThroughputK:    res.ThroughputKTx(),
					AbortRatePct:   res.AbortPct(),
					Commits:        res.Stats.Commits,
					Aborts:         res.Stats.Aborts,
					ElapsedSec:     res.Elapsed.Seconds(),
					Validations:    res.Stats.Validations,
					ValEntries:     res.Stats.ValEntries,
					ClockAdopts:    res.Stats.ClockAdopts,
					SpinWaits:      res.Stats.SpinWaits,
					Escalations:    res.Stats.Escalations,
					AbortReasons:   res.Stats.ReasonCounts(),
					EngineSwitches: res.Stats.EngineSwitches,
					AllocsPerTx:    res.AllocsPerTx,
					BytesPerTx:     res.BytesPerTx,
					GCPauseUS:      float64(res.GCPause.Nanoseconds()) / 1e3,
				}
				if res.FinalAlgorithm != res.Algorithm {
					cell.FinalEngine = res.FinalAlgorithm.String()
				}
				rep.Cells = append(rep.Cells, cell)
			}
		}
	}
	sharded, err := shardedCells(cfg)
	if err != nil {
		return rep, err
	}
	rep.Cells = append(rep.Cells, sharded...)
	durable, err := durableCells(cfg)
	if err != nil {
		return rep, err
	}
	rep.Cells = append(rep.Cells, durable...)
	hybrid, err := hybridCells(cfg)
	if err != nil {
		return rep, err
	}
	rep.Cells = append(rep.Cells, hybrid...)
	snapshot, err := snapshotCells(cfg)
	if err != nil {
		return rep, err
	}
	rep.Cells = append(rep.Cells, snapshot...)
	srv, err := serverCells(cfg)
	if err != nil {
		return rep, err
	}
	rep.Cells = append(rep.Cells, srv...)
	return rep, nil
}

// MarshalIndent renders the report in the committed BENCH_*.json layout.
func (r BaselineReport) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
