package experiments

// The progressive-hybrid grid of the v8 baseline (DESIGN.md §13): the four
// HTM-backed engines, most to least instrumented — classic HTM (full
// value-pinning read instrumentation), S-HTM (semantic facts), the HyTM-mid
// ablation that forces every hardware transaction through the instrumented
// middle path, and HyTM with its uninstrumented fast path — over a
// read-mostly hashtable (where the fast path sheds the most bookkeeping), a
// capacity-edge scan variant (where instrumentation inflates the tracked
// footprint past the hardware budget), the default write-heavy hashtable,
// and the bank transfer kernel. The grid is the instrumentation-cost
// ablation: same simulated hardware, same retry budgets, same workloads; the
// only swept axis is how much per-location bookkeeping a hardware
// transaction performs.

import (
	"fmt"

	"semstm/internal/apps"
	"semstm/internal/harness"
	"semstm/stm"
)

// Hybrid-grid constants. The hardware tuple is generous on capacity (the
// hashtable's probe chains make long transactions, and the ablation measures
// instrumentation cost, not capacity pressure) with the default retry budget
// and a mild spurious-abort rate so the fallback machinery stays exercised.
const (
	hybridCapacity = 512
	hybridRetries  = 4
	hybridSpurious = 0.5
	// hybridScanCapacity is the hardware budget of the capacity-edge scan
	// cells: inside the tail of a fully instrumented scan transaction's
	// ~230-240-entry tracked set, comfortably above the distinct
	// first-touch footprint of an uninstrumented one (see
	// apps.NewScanHashtable).
	hybridScanCapacity = 256
	// hybridTableCap sizes the hashtable variants (the classic-grid size).
	hybridTableCap = 2048
)

// hybridAlgos is the swept instrumentation axis, most to least instrumented:
// HTM (classic, every barrier a value-pinning read), S-HTM (single semantic
// path), HyTM-mid (progressive engine, fast path disabled), HyTM
// (progressive engine, fast path on).
var hybridAlgos = []stm.Algorithm{stm.HTM, stm.SHTM, stm.HyTMMid, stm.HyTM}

// hybridThreads is the committed thread sweep: solo barrier cost plus the two
// contended points of the classic grid.
var hybridThreads = []int{1, 4, 8}

// hybridWorkload builds one of the three hybrid drivers by name.
func hybridWorkload(name string) (harness.Builder, error) {
	switch name {
	case "hashtable-rm":
		return func(rt *stm.Runtime) harness.Workload {
			return apps.NewReadMostlyHashtable(rt, hybridTableCap)
		}, nil
	case "hashtable-scan":
		return func(rt *stm.Runtime) harness.Workload {
			return apps.NewScanHashtable(rt, hybridTableCap)
		}, nil
	case "hashtable":
		return func(rt *stm.Runtime) harness.Workload {
			return apps.NewHashtable(rt, hybridTableCap)
		}, nil
	case "bank":
		return func(rt *stm.Runtime) harness.Workload {
			return apps.NewBank(rt, 1024, 1000)
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown hybrid workload %q", name)
}

// runHybridCell measures one hybrid cell best-of-reps under the classic
// grid's policy (width = thread count, no interleave simulation), recording
// the per-path commit counters and the engine-level fallback and
// hardware-abort tallies the v8 schema added.
func runHybridCell(cfg Config, workload string, algo stm.Algorithm, th int) (BaselineCell, error) {
	build, err := hybridWorkload(workload)
	if err != nil {
		return BaselineCell{}, err
	}
	capacity := hybridCapacity
	if workload == "hashtable-scan" {
		capacity = hybridScanCapacity
	}
	var res harness.Result
	var fallbacks, hwAborts uint64
	for i := 0; i < cfg.reps(); i++ {
		rt := stm.New(algo)
		rt.ConfigureHTM(capacity, hybridRetries, hybridSpurious)
		w := build(rt)
		restore := harness.ApplyProcs(cfg.GOMAXPROCS, th)
		r, err := harness.RunTimed(rt, w, th, cfg.duration())
		restore()
		if err != nil {
			return BaselineCell{}, err
		}
		if i == 0 || r.ThroughputKTx() > res.ThroughputKTx() {
			res = r
			// The engine tallies live on the runtime, not the snapshot:
			// capture them with the rep they belong to.
			fallbacks, hwAborts = rt.HTMStats()
		}
	}
	reasons := res.Stats.ReasonCounts()
	return BaselineCell{
		Workload:         workload,
		Algorithm:        algo.String(),
		Threads:          th,
		GOMAXPROCS:       res.GOMAXPROCS,
		ThroughputK:      res.ThroughputKTx(),
		AbortRatePct:     res.AbortPct(),
		Commits:          res.Stats.Commits,
		Aborts:           res.Stats.Aborts,
		ElapsedSec:       res.Elapsed.Seconds(),
		Validations:      res.Stats.Validations,
		ValEntries:       res.Stats.ValEntries,
		ClockAdopts:      res.Stats.ClockAdopts,
		SpinWaits:        res.Stats.SpinWaits,
		Escalations:      res.Stats.Escalations,
		AbortReasons:     reasons,
		AllocsPerTx:      res.AllocsPerTx,
		BytesPerTx:       res.BytesPerTx,
		GCPauseUS:        float64(res.GCPause.Nanoseconds()) / 1e3,
		HWFastCommits:    res.Stats.HWFastCommits,
		HWMiddleCommits:  res.Stats.HWMiddleCommits,
		HWCapacityAborts: reasons["hw-capacity"],
		HWFallbacks:      fallbacks,
		HWAborts:         hwAborts,
	}, nil
}

// hybridCells measures the whole hybrid grid: {hashtable-rm, hashtable-scan,
// hashtable, bank} × {HTM, S-HTM, HyTM-mid, HyTM} × hybridThreads.
func hybridCells(cfg Config) ([]BaselineCell, error) {
	var cells []BaselineCell
	for _, wl := range []string{"hashtable-rm", "hashtable-scan", "hashtable", "bank"} {
		for _, algo := range hybridAlgos {
			for _, th := range cfg.threads(hybridThreads) {
				cell, err := runHybridCell(cfg, wl, algo, th)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// HybridGateResult is one instrumentation-cost gate measurement: the
// fast-path-enabled HyTM cell against the fully instrumented classic-HTM
// cell of the read-mostly scan grid, same threads, same hardware tuple. The
// ratio is what the -hybridgate CI gate defends — the whole point of the
// progressive design is that shedding instrumentation buys measurable
// throughput. The gate runs at the capacity edge because that is where the
// mechanism is structural rather than a wall-clock delta: the tail of the
// fully instrumented engine's per-barrier footprint overflows the hardware
// budget, and every overflowing transaction burns its whole retry budget,
// backs off, and finishes irrevocably, while the uninstrumented fast path's
// first-touch footprint fits and commits in hardware.
type HybridGateResult struct {
	Workload string
	Threads  int
	FastK    float64 // HyTM (uninstrumented fast path on), k tx/s
	InstK    float64 // classic HTM (every barrier value-pinning), k tx/s
	Ratio    float64
	// FastCommits is the HyTM cell's uninstrumented-path commit count: a gate
	// run where this is zero proves nothing about instrumentation cost, so
	// the CLI fails it regardless of the ratio.
	FastCommits uint64
}

// HybridGate measures the instrumentation-cost ratio the CI gate defends
// (scripts/check.sh): capacity-edge scan throughput on HyTM over classic
// fully instrumented HTM at the given thread count.
func HybridGate(cfg Config, threads int) (HybridGateResult, error) {
	fast, err := runHybridCell(cfg, "hashtable-scan", stm.HyTM, threads)
	if err != nil {
		return HybridGateResult{}, err
	}
	inst, err := runHybridCell(cfg, "hashtable-scan", stm.HTM, threads)
	if err != nil {
		return HybridGateResult{}, err
	}
	r := HybridGateResult{
		Workload:    "hashtable-scan",
		Threads:     threads,
		FastK:       fast.ThroughputK,
		InstK:       inst.ThroughputK,
		FastCommits: fast.HWFastCommits,
	}
	if r.InstK > 0 {
		r.Ratio = r.FastK / r.InstK
	}
	return r, nil
}
