package experiments

// The reclamation and privatization cells of the v9 baseline (DESIGN.md §14):
// the snapshot-analytics grid — the same double-buffer workload scanned
// through an ordinary instrumented read-only transaction vs through a
// privatizing flip and uninstrumented loads — plus a retire-heavy churn cell
// that exercises the epoch reclaimer's full allocate/retire/recycle loop and
// records its lifetime counters. Two CI gates ride on the same machinery:
// -privgate defends the point of privatization (uninstrumented snapshot
// scans must beat instrumented ones by >= 5x) and -reclaimgate defends the
// point of reclamation (steady-state heap under churn stays bounded).

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"semstm/internal/apps"
	"semstm/internal/core"
	"semstm/internal/harness"
	"semstm/stm"
)

// snapshotAlgos is the snapshot grid's engine axis: the two semantic
// single-instance engines whose privatization fences differ most — S-NOrec
// (seqlock drain) and S-TL2 (orec-version fence).
var snapshotAlgos = []stm.Algorithm{stm.SNOrec, stm.STL2}

// snapshotThreads is the committed snapshot-grid thread count: enough writer
// concurrency that instrumented scans pay real invalidation traffic.
const snapshotThreads = 4

// runSnapshotCell measures one snapshot-analytics cell best-of-reps under
// the classic grid's policy, tagging the scan mode and the epoch-reclaimer
// counter deltas accumulated across the cell's reps.
func runSnapshotCell(cfg Config, algo stm.Algorithm, privatized bool) (BaselineCell, error) {
	mode := "instrumented"
	if privatized {
		mode = "privatized"
	}
	before := core.ReadEpochStats()
	var res harness.Result
	for i := 0; i < cfg.reps(); i++ {
		rt := stm.New(algo)
		s := apps.NewSnapshotAnalytics(rt)
		s.Privatized = privatized
		restore := harness.ApplyProcs(cfg.GOMAXPROCS, snapshotThreads)
		r, err := harness.RunTimed(rt, s, snapshotThreads, cfg.duration())
		restore()
		if err != nil {
			return BaselineCell{}, err
		}
		if i == 0 || r.ThroughputKTx() > res.ThroughputKTx() {
			res = r
		}
	}
	after := core.ReadEpochStats()
	return BaselineCell{
		Workload:     "snapshot",
		Algorithm:    algo.String(),
		Threads:      snapshotThreads,
		GOMAXPROCS:   res.GOMAXPROCS,
		ThroughputK:  res.ThroughputKTx(),
		AbortRatePct: res.AbortPct(),
		Commits:      res.Stats.Commits,
		Aborts:       res.Stats.Aborts,
		ElapsedSec:   res.Elapsed.Seconds(),
		Validations:  res.Stats.Validations,
		ValEntries:   res.Stats.ValEntries,
		ClockAdopts:  res.Stats.ClockAdopts,
		SpinWaits:    res.Stats.SpinWaits,
		Escalations:  res.Stats.Escalations,
		AbortReasons: res.Stats.ReasonCounts(),
		AllocsPerTx:  res.AllocsPerTx,
		BytesPerTx:   res.BytesPerTx,
		GCPauseUS:    float64(res.GCPause.Nanoseconds()) / 1e3,
		SnapshotMode: mode,
		Retired:      after.Retired - before.Retired,
		Reclaimed:    after.Reclaimed - before.Reclaimed,
	}, nil
}

// churnWorkload is the retire-heavy driver of the reclaim cell and gate:
// every operation allocates a Var, uses it transactionally, and retires it —
// the full lifecycle of the epoch reclaimer, with the recycle path (NewVar
// popping the free list) carrying the steady state.
type churnWorkload struct {
	rt *stm.Runtime
}

func (w *churnWorkload) Op(rng *rand.Rand) {
	v := stm.NewVar(rng.Int63())
	w.rt.Atomically(func(tx *stm.Tx) { tx.Inc(v, 1) })
	stm.Retire(v)
}

func (w *churnWorkload) Check() error { return nil }

// reclaimCells measures the churn cell: lifecycle throughput plus the
// retired/reclaimed counter deltas that show the free list carrying the load.
func reclaimCells(cfg Config) ([]BaselineCell, error) {
	before := core.ReadEpochStats()
	var res harness.Result
	for i := 0; i < cfg.reps(); i++ {
		rt := stm.New(stm.SNOrec)
		restore := harness.ApplyProcs(cfg.GOMAXPROCS, snapshotThreads)
		r, err := harness.RunTimed(rt, &churnWorkload{rt: rt}, snapshotThreads, cfg.duration())
		restore()
		if err != nil {
			return nil, err
		}
		if i == 0 || r.ThroughputKTx() > res.ThroughputKTx() {
			res = r
		}
	}
	after := core.ReadEpochStats()
	return []BaselineCell{{
		Workload:     "reclaim-churn",
		Algorithm:    stm.SNOrec.String(),
		Threads:      snapshotThreads,
		GOMAXPROCS:   res.GOMAXPROCS,
		ThroughputK:  res.ThroughputKTx(),
		AbortRatePct: res.AbortPct(),
		Commits:      res.Stats.Commits,
		Aborts:       res.Stats.Aborts,
		ElapsedSec:   res.Elapsed.Seconds(),
		AllocsPerTx:  res.AllocsPerTx,
		BytesPerTx:   res.BytesPerTx,
		GCPauseUS:    float64(res.GCPause.Nanoseconds()) / 1e3,
		Retired:      after.Retired - before.Retired,
		Reclaimed:    after.Reclaimed - before.Reclaimed,
	}}, nil
}

// snapshotCells measures the snapshot-analytics grid:
// {S-NOrec, S-TL2} × {instrumented, privatized} at snapshotThreads, plus the
// reclaim churn cell.
func snapshotCells(cfg Config) ([]BaselineCell, error) {
	var cells []BaselineCell
	for _, algo := range snapshotAlgos {
		for _, privatized := range []bool{false, true} {
			cell, err := runSnapshotCell(cfg, algo, privatized)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	churn, err := reclaimCells(cfg)
	if err != nil {
		return nil, err
	}
	return append(cells, churn...), nil
}

// PrivGateResult is the privatization-payoff gate measurement: snapshot scan
// rates (full-buffer sums per second) in both modes over the same live
// writer load. The ratio is the PR9 acceptance number — privatized snapshot
// reads must run at least 5x faster than instrumented transactional reads,
// or the entire epoch/barrier machinery is overhead without payoff.
type PrivGateResult struct {
	Algorithm string
	Threads   int // writer threads behind each scan loop
	PrivScans float64
	InstScans float64
	Ratio     float64
}

// measureScanRate runs `threads` writer goroutines against one scan loop for
// dur and returns completed scans per second. The gate runs under the
// figure-experiment convention — GOMAXPROCS pinned to 1 with the interleave
// simulation providing concurrency (SetYieldEvery, DESIGN.md §8) — so writer
// commits actually land mid-scan: that is what makes the instrumented scan
// pay invalidation and keeps the privatization drain a cooperative handoff
// instead of a scheduler-quantum wait. Only transactional barriers yield, so
// the privatized mode's uninstrumented sum loop runs at full speed — exactly
// the asymmetry the gate defends.
func measureScanRate(algo stm.Algorithm, threads int, dur time.Duration, privatized bool) (float64, error) {
	restore := harness.ApplyProcs(1, threads)
	defer restore()
	rt := stm.New(algo)
	rt.SetYieldEvery(4)
	s := apps.NewSnapshotAnalytics(rt)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Inc(rng)
			}
		}(int64(w) + 1)
	}
	scans := 0
	start := time.Now()
	for time.Since(start) < dur {
		if privatized {
			s.ScanPrivatized()
		} else {
			s.ScanInstrumented()
		}
		scans++
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if err := s.Check(); err != nil {
		return 0, err
	}
	return float64(scans) / elapsed.Seconds(), nil
}

// PrivatizationGate measures the scan-rate ratio the -privgate CI gate
// defends, best of cfg.reps() per mode. S-NOrec is the gate engine: its
// value-based validation makes the instrumented scan pay the full
// revalidation bill on every writer commit, so it is the honest baseline for
// what privatization buys.
func PrivatizationGate(cfg Config, threads int) (PrivGateResult, error) {
	res := PrivGateResult{Algorithm: stm.SNOrec.String(), Threads: threads}
	for i := 0; i < cfg.reps(); i++ {
		p, err := measureScanRate(stm.SNOrec, threads, cfg.duration(), true)
		if err != nil {
			return res, fmt.Errorf("privatized rep: %w", err)
		}
		n, err := measureScanRate(stm.SNOrec, threads, cfg.duration(), false)
		if err != nil {
			return res, fmt.Errorf("instrumented rep: %w", err)
		}
		if p > res.PrivScans {
			res.PrivScans = p
		}
		if n > res.InstScans {
			res.InstScans = n
		}
	}
	if res.InstScans > 0 {
		res.Ratio = res.PrivScans / res.InstScans
	}
	return res, nil
}

// ReclaimGateResult is the bounded-heap gate measurement: live heap bytes
// after each of three identical retire-heavy churn windows (each window ends
// with an epoch pump and a forced GC), plus the reclaimer's counter deltas
// over the whole run. If reclamation works, the later windows sit on the
// steady-state pool the first window built; if retired cells leak, the heap
// climbs window over window.
type ReclaimGateResult struct {
	Windows   [3]uint64 // HeapAlloc after each window, bytes
	Retired   uint64
	Reclaimed uint64
}

// GrowthPct is the relative heap growth from the first to the last window.
func (r ReclaimGateResult) GrowthPct() float64 {
	if r.Windows[0] == 0 {
		return 0
	}
	return (float64(r.Windows[2]) - float64(r.Windows[0])) / float64(r.Windows[0]) * 100
}

// Bounded reports whether the run passes: some reclamation happened, and the
// last window's heap stayed within maxGrowthPct of the first (plus an
// absolute slack for allocator and GC noise).
func (r ReclaimGateResult) Bounded(maxGrowthPct float64, slackBytes uint64) bool {
	limit := r.Windows[0] + uint64(float64(r.Windows[0])*maxGrowthPct/100) + slackBytes
	return r.Reclaimed > 0 && r.Windows[2] <= limit
}

// ReclaimGate runs the steady-state-heap gate: three cfg.duration() windows
// of `threads`-way allocate/use/retire churn, sampling runtime.MemStats
// after each. The churn deliberately routes every allocation through the
// public stm lifecycle (NewVar -> Atomically -> Retire) so the measurement
// covers the pin windows of real transactions, not just the reclaimer's
// bookkeeping.
//
// The gate defaults to threads == 1 (see cmd/semstm-bench): a pinned
// descriptor that the scheduler parks mid-transaction legitimately holds
// back every epoch advance for its whole off-CPU quantum, so on a host with
// fewer cores than churners the free-list high-water mark tracks the
// scheduler's preemption tail rather than the allocator — real retention,
// but not the leak this gate is for. Concurrent lifecycle correctness is the
// chaos suites' job.
func ReclaimGate(cfg Config, threads int) (ReclaimGateResult, error) {
	rt := stm.New(stm.SNOrec)
	before := core.ReadEpochStats()
	var res ReclaimGateResult
	// Warm-up window, unsampled: the reclaimer's free list is a pool that
	// grows to its high-water mark (in-flight limbo plus recycling slack)
	// during the first churn interval and then plateaus. The gate defends
	// the plateau — a leak grows every window; the pool grows once.
	if _, err := harness.RunTimed(rt, &churnWorkload{rt: rt}, threads, cfg.duration()); err != nil {
		return res, err
	}
	for w := 0; w < 3; w++ {
		if _, err := harness.RunTimed(rt, &churnWorkload{rt: rt}, threads, cfg.duration()); err != nil {
			return res, err
		}
		// Quiesce: pump the epoch so the limbo buckets empty into the free
		// list, then force a full GC so HeapAlloc reflects live retention.
		for i := 0; i < 4; i++ {
			stm.AdvanceEpoch()
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		res.Windows[w] = ms.HeapAlloc
	}
	after := core.ReadEpochStats()
	res.Retired = after.Retired - before.Retired
	res.Reclaimed = after.Reclaimed - before.Reclaimed
	return res, nil
}
