package htm

import (
	"sync"
	"testing"

	"semstm/internal/core"
	"semstm/internal/txtest"
)

// newQuietTx returns a descriptor with spurious aborts disabled so tests are
// deterministic.
func newQuietTx(g *Global, semantic bool) *Tx {
	tx := NewTx(g, semantic, 1)
	tx.SpuriousPct = 0
	return tx
}

func TestCommitVisibility(t *testing.T) {
	for _, semantic := range []bool{false, true} {
		g := NewGlobal()
		v := core.NewVar(1)
		tx := newQuietTx(g, semantic)
		tx.NewEpoch()
		if !txtest.MustCommit(tx, func() {
			if got := tx.Read(v); got != 1 {
				t.Fatalf("Read = %d", got)
			}
			tx.Write(v, 2)
		}) {
			t.Fatal("solo hardware commit must succeed")
		}
		if v.Load() != 2 {
			t.Fatalf("memory = %d", v.Load())
		}
		if g.Fallbacks() != 0 {
			t.Fatal("no fallback expected")
		}
	}
}

func TestCapacityAbortAndFallback(t *testing.T) {
	g := NewGlobal()
	vars := core.NewVars(100, 0)
	tx := newQuietTx(g, false)
	tx.Capacity = 16
	tx.MaxHWRetries = 2
	tx.NewEpoch()

	body := func() {
		for i, v := range vars {
			tx.Write(v, int64(i)+1)
		}
	}
	// Hardware attempts exhaust the budget on capacity...
	attempts := 0
	for !txtest.MustCommit(tx, body) {
		attempts++
		if attempts > 10 {
			t.Fatal("never fell back")
		}
	}
	// ...and the fallback eventually commits everything.
	if g.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", g.Fallbacks())
	}
	if g.HWAborts() != uint64(tx.MaxHWRetries)+1 {
		t.Fatalf("hw aborts = %d, want %d", g.HWAborts(), tx.MaxHWRetries+1)
	}
	for i, v := range vars {
		if v.Load() != int64(i)+1 {
			t.Fatalf("write %d lost", i)
		}
	}
	// The fallback lock must be released: another hardware txn commits.
	t2 := newQuietTx(g, false)
	t2.NewEpoch()
	if !txtest.MustCommit(t2, func() { t2.Write(vars[0], 77) }) {
		t.Fatal("post-fallback hardware commit failed")
	}
}

// TestSemanticSavesCapacity is the S-HTM headline: a transaction of pure
// increments larger than the tracked-read capacity... still fits, because
// deferred increments occupy only write-set slots and record no reads, while
// the base build doubles the footprint with read entries.
func TestSemanticSavesCapacity(t *testing.T) {
	const n = 40
	run := func(semantic bool) (fallbacks uint64) {
		g := NewGlobal()
		vars := core.NewVars(n, 0)
		tx := newQuietTx(g, semantic)
		tx.Capacity = n + n/2 // fits n incs, not n reads + n writes
		tx.MaxHWRetries = 1
		tx.NewEpoch()
		for !txtest.MustCommit(tx, func() {
			for _, v := range vars {
				tx.Inc(v, 1)
			}
		}) {
		}
		return g.Fallbacks()
	}
	if fb := run(true); fb != 0 {
		t.Fatalf("S-HTM fell back %d times; deferred incs must fit", fb)
	}
	if fb := run(false); fb == 0 {
		t.Fatal("base HTM must exceed capacity and fall back")
	}
}

func TestSpuriousAbortsRetry(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	tx := NewTx(g, false, 7)
	tx.SpuriousPct = 100 // every hardware commit fails
	tx.MaxHWRetries = 3
	tx.NewEpoch()
	committed := false
	for i := 0; i < 10 && !committed; i++ {
		committed = txtest.MustCommit(tx, func() { tx.Write(v, 5) })
	}
	if !committed {
		t.Fatal("fallback must rescue a spurious-abort storm")
	}
	if g.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d", g.Fallbacks())
	}
	if v.Load() != 5 {
		t.Fatal("write lost")
	}
}

func TestLockSubscription(t *testing.T) {
	g := NewGlobal()
	x, y := core.NewVar(0), core.NewVar(0)

	// A fallback transaction holds the lock...
	fb := newQuietTx(g, false)
	fb.MaxHWRetries = -1 // force immediate fallback
	fb.NewEpoch()
	fb.Start()
	fb.Write(x, 1)

	// ...so a hardware transaction cannot even start; it must block until
	// the fallback commits.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hw := newQuietTx(g, false)
		hw.NewEpoch()
		hw.Start() // blocks on the odd sequence lock
		if got := hw.Read(x); got != 1 {
			t.Errorf("hardware txn read %d, want the fallback's write", got)
		}
		hw.Write(y, 2)
		hw.Commit()
		close(done)
	}()

	fb.Write(y, 1)
	fb.Commit()
	<-done
	wg.Wait()
	if y.Load() != 2 {
		t.Fatalf("y = %d", y.Load())
	}
}

func TestSemanticFactsSurviveInHardware(t *testing.T) {
	g := NewGlobal()
	x, z := core.NewVar(5), core.NewVar(0)
	t1 := newQuietTx(g, true)
	t2 := newQuietTx(g, true)
	t1.NewEpoch()
	t2.NewEpoch()

	t1.Start()
	if !t1.Cmp(x, core.OpGT, 0) {
		t.Fatal("x > 0 must hold")
	}
	t2.NewEpoch()
	txtest.MustCommit(t2, func() { t2.Inc(x, 3) })
	if !txtest.MustCommitRest(t1, func() { t1.Write(z, 1) }) {
		t.Fatal("S-HTM must commit: the fact x > 0 still holds")
	}
}
